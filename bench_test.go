package gandivafair

// One benchmark per paper artifact (tables and figures, DESIGN.md §5)
// plus micro-benchmarks of the scheduler's hot paths. The experiment
// benches run the same code as cmd/gfbench in quick mode; use
//
//	go test -bench=. -benchmem
//
// to regenerate every artifact and time it.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fairshare"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/placement"
	"repro/internal/simclock"
	"repro/internal/stride"
	"repro/internal/trade"
	"repro/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(experiments.Options{Quick: true, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
	}
}

// Paper artifacts.
func BenchmarkE01_Table1_ModelSpeedups(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE02_Table2_ClusterComposition(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkE03_SingleServerFairness(b *testing.B)      { benchExperiment(b, "E3") }
func BenchmarkE04_GangAwareStride(b *testing.B)           { benchExperiment(b, "E4") }
func BenchmarkE05_UserFairness(b *testing.B)              { benchExperiment(b, "E5") }
func BenchmarkE06_VsTiresias(b *testing.B)                { benchExperiment(b, "E6") }
func BenchmarkE07_WorkConservation(b *testing.B)          { benchExperiment(b, "E7") }
func BenchmarkE08_MigrationOverhead(b *testing.B)         { benchExperiment(b, "E8") }
func BenchmarkE09_LoadBalance(b *testing.B)               { benchExperiment(b, "E9") }
func BenchmarkE10_TradingWinWin(b *testing.B)             { benchExperiment(b, "E10") }
func BenchmarkE11_TradingAtScale(b *testing.B)            { benchExperiment(b, "E11") }
func BenchmarkE12_EndToEnd(b *testing.B)                  { benchExperiment(b, "E12") }

// Ablations.
func BenchmarkAblation_TradePricePolicy(b *testing.B)     { benchExperiment(b, "A1") }
func BenchmarkAblation_Quantum(b *testing.B)              { benchExperiment(b, "A2") }
func BenchmarkAblation_ProfilerNoise(b *testing.B)        { benchExperiment(b, "A3") }
func BenchmarkAblation_FaultTolerance(b *testing.B)       { benchExperiment(b, "A4") }
func BenchmarkAblation_SchedulerScalability(b *testing.B) { benchExperiment(b, "A5") }

// ---------------------------------------------------------------------------
// Component micro-benchmarks: the per-round hot paths whose cost
// bounds how large a cluster one central scheduler can drive.

func BenchmarkStrideSelect1000Jobs(b *testing.B) {
	s := stride.New(stride.GangAware)
	cands := make([]stride.Candidate, 1000)
	for i := range cands {
		cands[i] = stride.Candidate{ID: job.ID(i + 1), Gang: 1 << (i % 4), Tickets: 1}
	}
	s.Select(cands, 200) // warm the pass table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel := s.Select(cands, 200)
		for _, id := range sel {
			s.Charge(id, 60, 1)
		}
	}
}

func BenchmarkWaterFilling100Users(b *testing.B) {
	tickets := map[job.UserID]float64{}
	demand := map[job.UserID]float64{}
	for i := 0; i < 100; i++ {
		u := job.UserID(rune('a'+i%26)) + job.UserID(rune('a'+i/26))
		tickets[u] = float64(1 + i%5)
		demand[u] = float64(1 + i%40)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fairshare.Compute(tickets, demand, 200)
	}
}

func BenchmarkTrading10Users(b *testing.B) {
	alloc := fairshare.Allocation{}
	vals := trade.Values{}
	for i := 0; i < 10; i++ {
		u := job.UserID(rune('a' + i))
		alloc[u] = fairshare.Entitlement{gpu.K80: 10, gpu.P100: 5, gpu.V100: 4}
		var v [gpu.NumGenerations]float64
		v[gpu.K80] = 1
		v[gpu.P100] = 1 + float64(i)*0.3
		v[gpu.V100] = 1 + float64(i)*0.5
		vals[u] = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := trade.Run(alloc, vals, nil, trade.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlacement200GPUs(b *testing.B) {
	cluster := gpu.Default200()
	zoo := workload.DefaultZoo()
	perf := zoo.MustGet("resnet50")
	var reqs []placement.Request
	id := job.ID(1)
	for _, g := range cluster.GensPresent() {
		left := cluster.Capacity(g)
		for left > 0 {
			gang := 4
			if left < 4 {
				gang = left
			}
			j := job.MustNew(job.Spec{ID: id, User: "u", Perf: perf, Gang: gang, TotalMB: 1e9})
			reqs = append(reqs, placement.Request{Job: j, Gen: g})
			id++
			left -= gang
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := placement.Place(cluster, nil, reqs, placement.Options{AllowMigration: true})
		if len(res.Unplaced) != 0 {
			b.Fatal("unplaced jobs in a saturating request set")
		}
	}
}

func BenchmarkSchedulerRound200GPUs300Jobs(b *testing.B) {
	// One full Decide+Place round at paper scale.
	cluster := gpu.Default200()
	zoo := workload.DefaultZoo()
	specs := workload.MustGenerate(zoo, workload.Config{
		Seed: 1,
		Users: []workload.UserSpec{
			{User: "a", NumJobs: 100, MeanK80Hours: 1e5},
			{User: "b", NumJobs: 100, MeanK80Hours: 1e5},
			{User: "c", NumJobs: 100, MeanK80Hours: 1e5},
		},
		MinK80Hours: 1e5, MaxK80Hours: 1e5,
	})
	sim, err := core.New(core.Config{Cluster: cluster, Specs: specs, Seed: 1},
		core.MustNewFairPolicy(core.FairConfig{EnableTrading: true}))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	// Each iteration advances one more quantum of a persistent run.
	if _, err := sim.Run(simclock.Time(float64(b.N) * 360)); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSimulatedDay200GPUs(b *testing.B) {
	zoo := workload.DefaultZoo()
	for i := 0; i < b.N; i++ {
		specs := workload.MustGenerate(zoo, workload.Config{
			Seed: int64(i + 1),
			Users: []workload.UserSpec{
				{User: "a", NumJobs: 60, ArrivalRatePerHour: 4, MeanK80Hours: 4},
				{User: "b", NumJobs: 60, ArrivalRatePerHour: 4, MeanK80Hours: 4},
				{User: "c", NumJobs: 60, ArrivalRatePerHour: 4, MeanK80Hours: 4},
				{User: "d", NumJobs: 60, ArrivalRatePerHour: 4, MeanK80Hours: 4},
			},
		})
		res, err := Simulate(Config{Cluster: Default200Cluster(), Specs: specs, Seed: int64(i)},
			MustNewScheduler(SchedulerConfig{EnableTrading: true}), Time(Day))
		if err != nil {
			b.Fatal(err)
		}
		if res.Rounds == 0 {
			b.Fatal("no rounds simulated")
		}
	}
}
