// Package simclock provides a deterministic discrete-event simulation
// clock. All time in the simulator is virtual: events are callbacks
// scheduled at absolute virtual times and executed in (time, insertion)
// order. Nothing in this package is safe for concurrent use; the
// simulation is single-threaded by design so that runs are
// bit-reproducible.
package simclock

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// Common durations, in seconds.
const (
	Second Duration = 1
	Minute Duration = 60
	Hour   Duration = 3600
	Day    Duration = 86400
)

// Forever is a time later than any event a simulation will schedule.
const Forever Time = Time(math.MaxFloat64)

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string {
	s := float64(t)
	h := int(s / 3600)
	s -= float64(h) * 3600
	m := int(s / 60)
	s -= float64(m) * 60
	return fmt.Sprintf("%dh%02dm%04.1fs", h, m, s)
}

// Event is a scheduled callback. The zero Event is meaningless; events
// are created by Clock.At and Clock.After and may be cancelled.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index, -1 once popped or cancelled
	cancelled bool
}

// At returns the virtual time the event fires at.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called on the event before it ran.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Clock is a discrete-event simulation clock. The zero value is not
// usable; call New.
type Clock struct {
	now  Time
	heap eventHeap
	seq  uint64

	// executed counts events that have run, for diagnostics.
	executed uint64
}

// New returns a clock at time zero with no pending events.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Pending returns the number of scheduled (non-cancelled) events.
func (c *Clock) Pending() int {
	n := 0
	for _, e := range c.heap {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// Executed returns the number of events that have fired so far.
func (c *Clock) Executed() uint64 { return c.executed }

// At schedules fn to run at virtual time t. Scheduling in the past
// (t < Now) panics: it would silently reorder causality.
func (c *Clock) At(t Time, fn func()) *Event {
	if t < c.now {
		panic(fmt.Sprintf("simclock: schedule at %v before now %v", t, c.now))
	}
	if fn == nil {
		panic("simclock: nil event func")
	}
	c.seq++
	e := &Event{at: t, seq: c.seq, fn: fn}
	heap.Push(&c.heap, e)
	return e
}

// After schedules fn to run d seconds from now. Negative d panics.
func (c *Clock) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v", d))
	}
	return c.At(c.now.Add(d), fn)
}

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired or was already cancelled is a no-op.
func (c *Clock) Cancel(e *Event) {
	if e == nil || e.cancelled || e.index < 0 {
		if e != nil {
			e.cancelled = true
		}
		return
	}
	e.cancelled = true
	heap.Remove(&c.heap, e.index)
	e.index = -1
}

// Step runs the earliest pending event, advancing the clock to its
// time. It returns false when no events remain.
func (c *Clock) Step() bool {
	for len(c.heap) > 0 {
		e := heap.Pop(&c.heap).(*Event)
		if e.cancelled {
			continue
		}
		c.now = e.at
		c.executed++
		e.fn()
		return true
	}
	return false
}

// Run executes events until none remain.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
// Events scheduled exactly at t do run.
func (c *Clock) RunUntil(t Time) {
	for {
		next, ok := c.peek()
		if !ok || next.at > t {
			break
		}
		c.Step()
	}
	if t > c.now {
		c.now = t
	}
}

func (c *Clock) peek() (*Event, bool) {
	for len(c.heap) > 0 {
		e := c.heap[0]
		if e.cancelled {
			heap.Pop(&c.heap)
			continue
		}
		return e, true
	}
	return nil, false
}

// NextEventTime returns the time of the earliest pending event, or
// Forever if none is scheduled.
func (c *Clock) NextEventTime() Time {
	if e, ok := c.peek(); ok {
		return e.at
	}
	return Forever
}
