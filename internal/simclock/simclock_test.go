package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyClock(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	if c.Step() {
		t.Fatal("Step on empty clock returned true")
	}
	if got := c.NextEventTime(); got != Forever {
		t.Fatalf("NextEventTime = %v, want Forever", got)
	}
}

func TestEventOrdering(t *testing.T) {
	c := New()
	var order []int
	c.At(10, func() { order = append(order, 2) })
	c.At(5, func() { order = append(order, 1) })
	c.At(20, func() { order = append(order, 3) })
	c.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if c.Now() != 20 {
		t.Fatalf("final time %v, want 20", c.Now())
	}
}

func TestTieBreakByInsertion(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(7, func() { order = append(order, i) })
	}
	c.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("ties not in insertion order: %v", order)
		}
	}
}

func TestAfter(t *testing.T) {
	c := New()
	var at Time
	c.After(30, func() {
		at = c.Now()
		c.After(15, func() { at = c.Now() })
	})
	c.Run()
	if at != 45 {
		t.Fatalf("nested After fired at %v, want 45", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	c := New()
	c.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		c.At(5, func() {})
	})
	c.Run()
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil event func did not panic")
		}
	}()
	New().At(1, nil)
}

func TestNegativeAfterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	New().After(-1, func() {})
}

func TestCancel(t *testing.T) {
	c := New()
	fired := false
	e := c.At(10, func() { fired = true })
	c.Cancel(e)
	c.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// Double cancel and cancel-nil must not panic.
	c.Cancel(e)
	c.Cancel(nil)
}

func TestCancelDuringRun(t *testing.T) {
	c := New()
	fired := false
	var e *Event
	e = c.At(20, func() { fired = true })
	c.At(10, func() { c.Cancel(e) })
	c.Run()
	if fired {
		t.Fatal("event cancelled by an earlier event still fired")
	}
}

func TestRunUntil(t *testing.T) {
	c := New()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		c.At(at, func() { fired = append(fired, at) })
	}
	c.RunUntil(15)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want events at 5,10,15", fired)
	}
	if c.Now() != 15 {
		t.Fatalf("Now = %v, want 15", c.Now())
	}
	c.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v, want 4 events", fired)
	}
	if c.Now() != 100 {
		t.Fatalf("Now = %v, want 100 (advance past last event)", c.Now())
	}
}

func TestRunUntilBeforeFirstEvent(t *testing.T) {
	c := New()
	fired := false
	c.At(50, func() { fired = true })
	c.RunUntil(10)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if c.Now() != 10 {
		t.Fatalf("Now = %v, want 10", c.Now())
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", c.Pending())
	}
}

func TestEventSchedulingDuringEvent(t *testing.T) {
	c := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			c.After(10, tick)
		}
	}
	c.After(10, tick)
	c.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if c.Now() != 50 {
		t.Fatalf("Now = %v, want 50", c.Now())
	}
	if c.Executed() != 5 {
		t.Fatalf("Executed = %d, want 5", c.Executed())
	}
}

// Property: for any set of scheduled times, events fire in sorted order
// and the clock never moves backwards.
func TestPropertyOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		c := New()
		times := make([]Time, len(raw))
		var fired []Time
		for i, r := range raw {
			at := Time(r)
			times[i] = at
			c.At(at, func() { fired = append(fired, c.Now()) })
		}
		c.Run()
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		if len(fired) != len(times) {
			return false
		}
		for i := range times {
			if fired[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the complement to
// fire, still in order.
func TestPropertyCancelSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		c := New()
		n := 1 + rng.Intn(100)
		events := make([]*Event, n)
		firedCount := 0
		var last Time = -1
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(1000))
			events[i] = c.At(at, func() {
				if c.Now() < last {
					t.Fatal("clock moved backwards")
				}
				last = c.Now()
				firedCount++
			})
		}
		cancelled := 0
		for _, e := range events {
			if rng.Intn(2) == 0 {
				c.Cancel(e)
				cancelled++
			}
		}
		c.Run()
		if firedCount != n-cancelled {
			t.Fatalf("fired %d, want %d", firedCount, n-cancelled)
		}
	}
}

func TestTimeString(t *testing.T) {
	got := Time(3723.5).String()
	if got != "1h02m03.5s" {
		t.Fatalf("String = %q, want 1h02m03.5s", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(100).Add(50)
	if tm != 150 {
		t.Fatalf("Add = %v", tm)
	}
	if d := Time(150).Sub(100); d != 50 {
		t.Fatalf("Sub = %v", d)
	}
}
