package sweep

import (
	"context"
	"encoding/csv"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// testPoints builds n small, mutually independent points: two users on
// one 4-GPU K80 server, distinct seeds, strict audit.
func testPoints(n int) []Point {
	zoo := workload.DefaultZoo()
	points := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		seed := int64(i + 1)
		specs := workload.MustGenerate(zoo, workload.Config{
			Seed: seed,
			Users: []workload.UserSpec{
				{User: "a", NumJobs: 4, MeanK80Hours: 1, GangDist: []workload.GangWeight{{Gang: 1, Weight: 1}}},
				{User: "b", NumJobs: 4, MeanK80Hours: 1, GangDist: []workload.GangWeight{{Gang: 1, Weight: 1}}},
			},
			MaxK80Hours: 3,
		})
		points = append(points, Point{
			Label: fmt.Sprintf("fair/seed=%d", seed),
			Group: "fair",
			Config: core.Config{
				Cluster: gpu.MustNew(gpu.Spec{Gen: gpu.K80, Servers: 1, GPUsPerSrv: 4}),
				Specs:   specs,
				Seed:    seed,
			},
			Policy:  func() (core.Policy, error) { return core.NewFairPolicy(core.FairConfig{}) },
			Horizon: simclock.Time(12 * simclock.Hour),
		})
	}
	return points
}

// TestRunDeterministicOrdering checks that results come back in point
// order with identical contents regardless of worker count.
func TestRunDeterministicOrdering(t *testing.T) {
	points := testPoints(6)
	serial := Run(context.Background(), points, Options{Workers: 1})
	parallel := Run(context.Background(), points, Options{Workers: 4})
	if len(serial) != len(points) || len(parallel) != len(points) {
		t.Fatalf("result lengths %d/%d, want %d", len(serial), len(parallel), len(points))
	}
	for i := range points {
		s, p := serial[i], parallel[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("point %d errored: serial=%v parallel=%v", i, s.Err, p.Err)
		}
		if s.Index != i || p.Index != i || s.Label != points[i].Label {
			t.Fatalf("point %d out of order: serial index %d label %q", i, s.Index, s.Label)
		}
		if s.Result.Rounds != p.Result.Rounds ||
			len(s.Result.Finished) != len(p.Result.Finished) ||
			math.Abs(s.Result.MaxShareError()-p.Result.MaxShareError()) > 1e-12 ||
			math.Abs(s.Result.Utilization.Fraction()-p.Result.Utilization.Fraction()) > 1e-12 {
			t.Errorf("point %d diverges between worker counts", i)
		}
		if s.Result.Audit == nil || !s.Result.Audit.Clean() {
			t.Errorf("point %d audit not clean: %v", i, s.Result.Audit)
		}
	}
}

// panicPolicy blows up in Decide to exercise panic capture.
type panicPolicy struct{}

func (panicPolicy) Name() string                          { return "panic" }
func (panicPolicy) Decide(*core.RoundState) core.Decision { panic("boom") }
func (panicPolicy) Executed(*core.ExecReport)             {}
func (panicPolicy) JobFinished(job.ID)                    {}

func TestRunCapturesPanics(t *testing.T) {
	points := testPoints(3)
	points[1].Policy = func() (core.Policy, error) { return panicPolicy{}, nil }
	points[1].Label = "panics"
	results := Run(context.Background(), points, Options{Workers: 2})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy points failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "panicked: boom") {
		t.Fatalf("panic not captured: %v", results[1].Err)
	}
	if results[1].Result != nil {
		t.Fatal("panicked point returned a result")
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := Run(ctx, testPoints(4), Options{Workers: 2})
	for i, r := range results {
		if r.Err == nil {
			t.Errorf("point %d ran despite cancelled context", i)
		}
	}
}

func TestRunErrorIsolation(t *testing.T) {
	points := testPoints(3)
	points[0].Config.Cluster = nil // invalid config
	points[2].Policy = nil         // missing factory
	results := Run(context.Background(), points, Options{})
	if results[0].Err == nil || results[2].Err == nil {
		t.Fatal("invalid points did not error")
	}
	if results[1].Err != nil {
		t.Fatalf("valid point failed: %v", results[1].Err)
	}
}

func TestSummarize(t *testing.T) {
	points := testPoints(5)
	points = append(points, Point{Label: "broken", Group: "broken"}) // no policy
	results := Run(context.Background(), points, Options{})
	sum := Summarize(results)
	if len(sum.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(sum.Groups))
	}
	fair := sum.Groups[0]
	if fair.Group != "fair" || fair.Runs != 5 || fair.Errors != 0 {
		t.Fatalf("fair group = %+v", fair)
	}
	if fair.JCT.N == 0 || fair.JCT.Mean <= 0 || fair.JCT.P50 > fair.JCT.P99 {
		t.Errorf("JCT dist malformed: %+v", fair.JCT)
	}
	if fair.Utilization.Mean <= 0 || fair.Utilization.Mean > 1 {
		t.Errorf("utilization mean %v outside (0,1]", fair.Utilization.Mean)
	}
	if fair.AuditViolations != 0 {
		t.Errorf("audit violations = %d", fair.AuditViolations)
	}
	broken := sum.Groups[1]
	if broken.Group != "broken" || broken.Errors != 1 || broken.Runs != 0 {
		t.Fatalf("broken group = %+v", broken)
	}
	var b strings.Builder
	if err := sum.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "fair") || !strings.Contains(out, "clean") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestDistOf(t *testing.T) {
	if d := DistOf(nil); d.N != 0 || d.Mean != 0 {
		t.Errorf("empty dist = %+v", d)
	}
	d := DistOf([]float64{4})
	if d.N != 1 || d.Mean != 4 || d.P50 != 4 || d.P99 != 4 || d.Min != 4 || d.Max != 4 {
		t.Errorf("singleton dist = %+v", d)
	}
	d = DistOf([]float64{3, 1, 2})
	if d.N != 3 || math.Abs(d.Mean-2) > 1e-12 || d.P50 != 2 || d.Min != 1 || d.Max != 3 {
		t.Errorf("dist = %+v", d)
	}
	if d.P99 < d.P50 || d.P99 > d.Max {
		t.Errorf("p99 %v outside [p50, max]", d.P99)
	}
}

func TestGridPoints(t *testing.T) {
	gridJSON := `{
		"scenario": {
			"cluster": [{"gen": "K80", "servers": 1, "gpus_per_server": 4}],
			"users": [
				{"name": "a", "jobs": 4, "mean_k80_hours": 1, "gangs": [{"gang": 1, "weight": 1}]},
				{"name": "b", "jobs": 4, "mean_k80_hours": 1, "gangs": [{"gang": 1, "weight": 1}]}
			],
			"horizon_hours": 8
		},
		"policies": ["gandiva-fair", "tiresias", "fifo"],
		"seeds": [1, 2, 3, 4, 5]
	}`
	grid, err := LoadGrid(strings.NewReader(gridJSON))
	if err != nil {
		t.Fatal(err)
	}
	points, err := grid.Points(core.AuditStrict)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 15 {
		t.Fatalf("points = %d, want 3 policies × 5 seeds = 15", len(points))
	}
	if points[0].Group != "gandiva-fair-no-trade" || points[5].Group != "tiresias-l" {
		t.Errorf("groups = %q, %q", points[0].Group, points[5].Group)
	}
	if points[0].Config.Seed != 1 || points[4].Config.Seed != 5 {
		t.Errorf("seeds not threaded: %d, %d", points[0].Config.Seed, points[4].Config.Seed)
	}
	results := Run(context.Background(), points, Options{})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Label, r.Err)
		}
	}
	sum := Summarize(results)
	if len(sum.Groups) != 3 {
		t.Fatalf("summary groups = %d, want 3", len(sum.Groups))
	}
	for _, g := range sum.Groups {
		if g.Runs != 5 {
			t.Errorf("group %s runs = %d, want 5", g.Group, g.Runs)
		}
	}
}

func TestGridRejectsUnknownFieldsAndBadPolicies(t *testing.T) {
	if _, err := LoadGrid(strings.NewReader(`{"nope": 1}`)); err == nil {
		t.Error("unknown top-level field accepted")
	}
	grid, err := LoadGrid(strings.NewReader(`{
		"scenario": {
			"users": [{"name": "a", "jobs": 1}],
			"horizon_hours": 1
		},
		"policies": ["no-such-policy"],
		"seeds": [1]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := grid.Points(core.AuditStrict); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestProfileAddsPhaseColumns checks the Profile option: phase timing
// distributions are aggregated per group and surfaced as table
// columns, while unprofiled sweeps keep the original table shape and
// identical simulation outcomes.
func TestProfileAddsPhaseColumns(t *testing.T) {
	points := testPoints(3)
	plain := Run(context.Background(), points, Options{Workers: 2})
	prof := Run(context.Background(), points, Options{Workers: 2, Profile: true})

	for i := range points {
		if plain[i].Err != nil || prof[i].Err != nil {
			t.Fatalf("point %d errored: %v / %v", i, plain[i].Err, prof[i].Err)
		}
		// Profiling must not perturb outcomes.
		if a, b := plain[i].Result.Rounds, prof[i].Result.Rounds; a != b {
			t.Errorf("point %d rounds %d != %d with profiling", i, a, b)
		}
		if a, b := len(plain[i].Result.Finished), len(prof[i].Result.Finished); a != b {
			t.Errorf("point %d finished %d != %d with profiling", i, a, b)
		}
		if plain[i].Result.PhaseTotalsSeconds != nil {
			t.Error("unprofiled run has phase totals")
		}
		if prof[i].Result.PhaseTotalsSeconds == nil {
			t.Error("profiled run missing phase totals")
		}
	}

	var plainTbl, profTbl strings.Builder
	if err := Summarize(plain).Render(&plainTbl); err != nil {
		t.Fatal(err)
	}
	if err := Summarize(prof).Render(&profTbl); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plainTbl.String(), "execute ms") {
		t.Error("unprofiled table grew phase columns")
	}
	for _, col := range []string{"decide ms", "placement ms", "execute ms"} {
		if !strings.Contains(profTbl.String(), col) {
			t.Errorf("profiled table missing column %q:\n%s", col, profTbl.String())
		}
	}
	g := Summarize(prof).Groups[0]
	if g.PhaseMsPerRound == nil || g.PhaseMsPerRound["execute"].N != 3 {
		t.Errorf("phase dist not aggregated across runs: %+v", g.PhaseMsPerRound)
	}
}

// TestSummarizeSLOAndCSV pins the fairness-SLO aggregation (ρ,
// makespan) and the machine-readable CSV export: every run carries a
// finite positive worst-user ρ (underloaded clusters can beat the
// 1/n ideal, so ρ < 1 is legitimate) and a positive makespan, and the CSV grows
// one row per group under a stable header.
func TestSummarizeSLOAndCSV(t *testing.T) {
	results := Run(context.Background(), testPoints(3), Options{})
	sum := Summarize(results)
	g := sum.Groups[0]
	if g.RhoMax.N != 3 || g.RhoMax.Mean <= 0 || math.IsInf(g.RhoMax.Mean, 0) {
		t.Errorf("rho max dist malformed: %+v", g.RhoMax)
	}
	if g.Makespan.N != 3 || g.Makespan.Mean <= 0 {
		t.Errorf("makespan dist malformed: %+v", g.Makespan)
	}
	if g.JCT.P50 > g.JCT.P95 || g.JCT.P95 > g.JCT.P99 {
		t.Errorf("JCT quantiles out of order: %+v", g.JCT)
	}

	var b strings.Builder
	if err := sum.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("summary CSV not parseable: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want header + 1 group", len(rows))
	}
	want := []string{"group", "runs", "errors", "finished_mean",
		"jct_mean_s", "jct_p50_s", "jct_p95_s", "jct_p99_s",
		"rho_max_mean", "rho_max_worst", "makespan_mean_s",
		"share_err_mean", "util_mean", "migrations_mean", "trades_mean",
		"audit_violations"}
	for i, col := range want {
		if rows[0][i] != col {
			t.Fatalf("header[%d] = %q, want %q", i, rows[0][i], col)
		}
	}
	if rows[1][0] != "fair" {
		t.Errorf("group cell = %q", rows[1][0])
	}
	rho, err := strconv.ParseFloat(rows[1][8], 64)
	if err != nil || rho <= 0 {
		t.Errorf("rho_max_mean cell %q bad (err %v)", rows[1][8], err)
	}
}
