package sweep

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// benchPoints is sized so one iteration runs 8 independent
// simulations; with >1 core the parallel benchmark should approach
// workers× the serial throughput (≥2× on 4 cores).
func benchPoints(b *testing.B) []Point {
	points := testPoints(8)
	// Warm once so the benchmark measures simulation, not lazy init.
	r := runOne(context.Background(), 0, points[0], false)
	if r.Err != nil {
		b.Fatal(r.Err)
	}
	return points
}

func benchmarkRun(b *testing.B, workers int) {
	points := benchPoints(b)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		results := Run(context.Background(), points, Options{Workers: workers})
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkRun compares the same 8-point sweep at 1 worker vs
// GOMAXPROCS workers. Compare ns/op between the two sub-benchmarks:
//
//	go test -bench 'Run/' -benchtime 3x ./internal/sweep
//
// On a 4-core machine workers=max should be ≥2× faster than
// workers=1 (simulation points are fully independent, so the only
// overheads are channel dispatch and the final tail latency).
func BenchmarkRun(b *testing.B) {
	b.Run("workers=1", func(b *testing.B) { benchmarkRun(b, 1) })
	b.Run(fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		benchmarkRun(b, runtime.GOMAXPROCS(0))
	})
}
