package sweep

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Dist summarizes a sample with the quantiles the sweep reports.
type Dist struct {
	N                             int
	Mean, P50, P95, P99, Min, Max float64
}

// DistOf computes a Dist over xs (not modified). Empty input returns
// the zero Dist.
func DistOf(xs []float64) Dist {
	if len(xs) == 0 {
		return Dist{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	return Dist{
		N:    len(s),
		Mean: sum / float64(len(s)),
		P50:  quantile(s, 0.5),
		P95:  quantile(s, 0.95),
		P99:  quantile(s, 0.99),
		Min:  s[0],
		Max:  s[len(s)-1],
	}
}

// quantile interpolates the q-quantile of sorted data.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GroupSummary aggregates every successful run of one group (usually:
// one policy across seeds).
type GroupSummary struct {
	Group  string
	Runs   int // successful runs
	Errors int // failed runs (config, engine, audit, panic)

	// JCT pools every finished job's completion time across the
	// group's runs, in seconds.
	JCT Dist

	// FinishedJobs, MaxShareError, Utilization, Migrations and Trades
	// are distributions of per-run scalars across seeds.
	FinishedJobs  Dist
	MaxShareError Dist
	Utilization   Dist
	Migrations    Dist
	Trades        Dist

	// RhoMax distributes each run's worst-user finish-time fairness ρ
	// (Themis: JCT over an ideal 1/n-cluster run; 1.0 is perfectly
	// fair, higher is worse) across seeds. Makespan distributes each
	// run's last-finish time in seconds. Runs where no job finished
	// contribute zeros.
	RhoMax   Dist
	Makespan Dist

	// AuditViolations totals invariant violations across runs (always
	// zero under strict audit, which fails the run instead). Audited
	// counts the runs that produced an audit report at all, so "no
	// violations" can be told apart from "auditing was off".
	AuditViolations int
	Audited         int

	// PhaseMsPerRound distributes each scheduler phase's wall-clock
	// cost in milliseconds per round across the group's instrumented
	// runs (Options.Profile or an explicit Config.Obs). Nil when no run
	// carried an observer.
	PhaseMsPerRound map[string]Dist
}

// Summary is the aggregate of a whole sweep, one entry per group in
// first-appearance order.
type Summary struct {
	Groups []GroupSummary
}

// Summarize aggregates raw sweep results by group.
func Summarize(results []RunResult) *Summary {
	type acc struct {
		g                                       GroupSummary
		jcts, fin, shareErr, util, migs, trades []float64
		rhoMax, makespan                        []float64
		phases                                  map[string][]float64
	}
	var order []string
	accs := make(map[string]*acc)
	for _, r := range results {
		a := accs[r.Group]
		if a == nil {
			a = &acc{g: GroupSummary{Group: r.Group}}
			accs[r.Group] = a
			order = append(order, r.Group)
		}
		if r.Err != nil {
			a.g.Errors++
			continue
		}
		res := r.Result
		a.g.Runs++
		a.jcts = append(a.jcts, res.JCTs()...)
		a.fin = append(a.fin, float64(len(res.Finished)))
		a.shareErr = append(a.shareErr, res.MaxShareError())
		a.util = append(a.util, res.Utilization.Fraction())
		a.migs = append(a.migs, float64(res.Migrations))
		a.trades = append(a.trades, float64(res.TradeCount))
		a.rhoMax = append(a.rhoMax, res.SLO.RhoMax)
		a.makespan = append(a.makespan, res.SLO.MakespanSeconds)
		if res.Audit != nil {
			a.g.Audited++
			a.g.AuditViolations += res.Audit.Total()
		}
		if res.PhaseTotalsSeconds != nil && res.Rounds > 0 {
			if a.phases == nil {
				a.phases = make(map[string][]float64)
			}
			for p, tot := range res.PhaseTotalsSeconds {
				a.phases[p] = append(a.phases[p], 1e3*tot/float64(res.Rounds))
			}
		}
	}
	s := &Summary{}
	for _, name := range order {
		a := accs[name]
		a.g.JCT = DistOf(a.jcts)
		a.g.FinishedJobs = DistOf(a.fin)
		a.g.MaxShareError = DistOf(a.shareErr)
		a.g.Utilization = DistOf(a.util)
		a.g.Migrations = DistOf(a.migs)
		a.g.Trades = DistOf(a.trades)
		a.g.RhoMax = DistOf(a.rhoMax)
		a.g.Makespan = DistOf(a.makespan)
		if a.phases != nil {
			a.g.PhaseMsPerRound = make(map[string]Dist, len(a.phases))
			for p, xs := range a.phases {
				a.g.PhaseMsPerRound[p] = DistOf(xs)
			}
		}
		s.Groups = append(s.Groups, a.g)
	}
	return s
}

// phaseCols lists the phases any group actually timed, in canonical
// phase order, so the table only widens when profiling is on.
func (s *Summary) phaseCols() []string {
	seen := make(map[string]bool)
	for _, g := range s.Groups {
		for p := range g.PhaseMsPerRound {
			seen[p] = true
		}
	}
	var out []string
	for _, p := range obs.AllPhases {
		if seen[string(p)] {
			out = append(out, string(p))
		}
	}
	return out
}

// Render writes the summary as an aligned text table, one row per
// group. JCT statistics are in hours. Profiled sweeps grow one extra
// "<phase> ms" column per observed scheduler phase (mean wall-clock
// milliseconds per round).
func (s *Summary) Render(w io.Writer) error {
	cols := []string{"group", "runs", "errs", "finished", "JCT mean h", "JCT p50 h", "JCT p99 h", "rho max", "makespan h", "share err", "util", "audit"}
	phases := s.phaseCols()
	for _, p := range phases {
		cols = append(cols, p+" ms")
	}
	rows := [][]string{cols}
	for _, g := range s.Groups {
		audit := "clean"
		switch {
		case g.AuditViolations > 0:
			audit = fmt.Sprintf("%d VIOL", g.AuditViolations)
		case g.Audited == 0:
			audit = "-"
		}
		row := []string{
			g.Group,
			fmt.Sprint(g.Runs),
			fmt.Sprint(g.Errors),
			fmt.Sprintf("%.1f", g.FinishedJobs.Mean),
			fmt.Sprintf("%.2f", g.JCT.Mean/3600),
			fmt.Sprintf("%.2f", g.JCT.P50/3600),
			fmt.Sprintf("%.2f", g.JCT.P99/3600),
			fmt.Sprintf("%.2f", g.RhoMax.Mean),
			fmt.Sprintf("%.2f", g.Makespan.Mean/3600),
			fmt.Sprintf("%.1f%%", 100*g.MaxShareError.Mean),
			fmt.Sprintf("%.1f%%", 100*g.Utilization.Mean),
			audit,
		}
		for _, p := range phases {
			d, ok := g.PhaseMsPerRound[p]
			if !ok {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.3f", d.Mean))
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(cols))
	for _, row := range rows {
		for i, c := range row {
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
		}
		b.WriteString("\n")
	}
	writeRow(rows[0])
	sep := make([]string, len(cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows[1:] {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the summary machine-readably, one row per group.
// Times are seconds (not the table's hours) so downstream analysis
// never re-derives units; ratios are raw fractions. Profiled sweeps
// append one phase_<name>_ms column per observed phase in canonical
// order.
func (s *Summary) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"group", "runs", "errors", "finished_mean",
		"jct_mean_s", "jct_p50_s", "jct_p95_s", "jct_p99_s",
		"rho_max_mean", "rho_max_worst", "makespan_mean_s",
		"share_err_mean", "util_mean",
		"migrations_mean", "trades_mean", "audit_violations",
	}
	phases := s.phaseCols()
	for _, p := range phases {
		header = append(header, "phase_"+p+"_ms")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, g := range s.Groups {
		row := []string{
			g.Group,
			strconv.Itoa(g.Runs),
			strconv.Itoa(g.Errors),
			f(g.FinishedJobs.Mean),
			f(g.JCT.Mean), f(g.JCT.P50), f(g.JCT.P95), f(g.JCT.P99),
			f(g.RhoMax.Mean), f(g.RhoMax.Max), f(g.Makespan.Mean),
			f(g.MaxShareError.Mean), f(g.Utilization.Mean),
			f(g.Migrations.Mean), f(g.Trades.Mean),
			strconv.Itoa(g.AuditViolations),
		}
		for _, p := range phases {
			d, ok := g.PhaseMsPerRound[p]
			if !ok {
				row = append(row, "")
				continue
			}
			row = append(row, f(d.Mean))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
