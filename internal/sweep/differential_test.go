package sweep

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// TestDifferentialEngines is the engine equivalence harness: every
// (config, policy, seed) point of the checked-in scenario grids runs
// through both the incremental and the rescan engine, with the strict
// auditor on, and the two canonical SHA-256 digests must be equal.
// The digest covers the full observable output — trace counters,
// fault counters, and per-user occupancy/fair/useful/deficit — so any
// divergence in the incremental indices shows up here.
func TestDifferentialEngines(t *testing.T) {
	type point struct {
		label  string
		sc     scenario.Scenario
		policy string
		seed   int64
	}
	var points []point

	// scenarios/sweep.json is a grid: cross its policies × seeds.
	f, err := os.Open("../../scenarios/sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	grid, err := LoadGrid(f)
	_ = f.Close()
	if err != nil {
		t.Fatal(err)
	}
	seeds := grid.Seeds
	if testing.Short() && len(seeds) > 2 {
		seeds = seeds[:2]
	}
	for _, pol := range grid.Policies {
		for _, seed := range seeds {
			points = append(points, point{
				label:  fmt.Sprintf("sweep/%s/seed=%d", pol, seed),
				sc:     grid.Scenario,
				policy: pol,
				seed:   seed,
			})
		}
	}

	// scenarios/faulty.json is a single scenario (full fault model,
	// declared failure, quarantine): run it as its own point.
	sf, err := os.Open("../../scenarios/faulty.json")
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := scenario.Load(sf)
	_ = sf.Close()
	if err != nil {
		t.Fatal(err)
	}
	points = append(points, point{
		label:  fmt.Sprintf("faulty/%s/seed=%d", "gandiva-fair", faulty.Seed),
		sc:     *faulty,
		policy: faulty.Policy,
		seed:   faulty.Seed,
	})

	for _, pt := range points {
		pt := pt
		t.Run(pt.label, func(t *testing.T) {
			t.Parallel()
			digests := make(map[string]string, 2)
			for _, engine := range []string{"incremental", "rescan"} {
				sc := pt.sc
				sc.Policy = pt.policy
				sc.Seed = pt.seed
				sc.Engine = engine
				digests[engine] = runScenarioDigest(t, sc)
			}
			if digests["incremental"] != digests["rescan"] {
				t.Errorf("engine digests diverge:\n  incremental %s\n  rescan      %s",
					digests["incremental"], digests["rescan"])
			}
		})
	}
}

// runScenarioDigest builds and runs one scenario to its horizon (the
// strict auditor is the config default) and returns the canonical
// digest of the result.
func runScenarioDigest(t *testing.T, sc scenario.Scenario) string {
	t.Helper()
	cfg, policy, horizon, err := sc.Build()
	if err != nil {
		t.Fatalf("build (%s): %v", sc.Engine, err)
	}
	sim, err := core.New(cfg, policy)
	if err != nil {
		t.Fatalf("new (%s): %v", sc.Engine, err)
	}
	res, err := sim.Run(horizon)
	if err != nil {
		t.Fatalf("run (%s): %v", sc.Engine, err)
	}
	return core.CanonicalDigest(res)
}
