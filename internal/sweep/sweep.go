// Package sweep is the parallel scenario-sweep engine: it fans a grid
// of engine configurations × policies × seeds across a worker pool,
// one simulation per goroutine, and aggregates the per-seed results
// into distribution statistics (mean/p50/p99 of JCT, share error,
// utilization). Every fairness or efficiency claim in this repository
// can thereby be a swept, audited number instead of a single-seed
// anecdote.
//
// Design points:
//
//   - deterministic output: results are returned in point order
//     regardless of completion order or worker count, and each
//     simulation is itself bit-reproducible for a fixed seed;
//   - panic isolation: a panicking policy or engine bug fails its own
//     point (captured stack in RunResult.Err), never the sweep;
//   - cancellation: a cancelled context stops dispatching points;
//     already-running simulations finish, undispatched points report
//     the context error.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/simclock"
)

// PolicyFactory builds a fresh policy instance for one run. Policies
// are stateful, so every point needs its own.
type PolicyFactory func() (core.Policy, error)

// Point is one cell of a sweep grid: a full engine config, a policy,
// and a horizon.
type Point struct {
	// Label identifies the point in logs and errors, e.g.
	// "tiresias/seed=3".
	Label string

	// Group keys aggregation: points sharing a Group are summarized
	// together (typically the policy name, varying seeds within).
	// Empty defaults to Label.
	Group string

	Config  core.Config
	Policy  PolicyFactory
	Horizon simclock.Time
}

func (p Point) group() string {
	if p.Group != "" {
		return p.Group
	}
	return p.Label
}

// RunResult is one point's outcome. Exactly one of Result/Err is
// meaningful: Err is non-nil on config, policy, engine, audit, panic,
// or cancellation failure.
type RunResult struct {
	Index int // position in the input slice
	Label string
	Group string
	Seed  int64

	Result *core.Result
	Err    error
}

// Options tunes sweep execution.
type Options struct {
	// Workers is the pool size; ≤0 means runtime.GOMAXPROCS(0).
	Workers int

	// Profile attaches a fresh observer to every point whose config
	// does not already carry one, so the aggregate table can report
	// per-phase scheduler timings. Instrumentation never changes
	// simulation outcomes (see internal/obs), only adds wall-clock
	// measurement cost.
	Profile bool
}

// Run executes every point and returns results in point order. It
// never returns an error itself — per-point failures are in the
// corresponding RunResult.Err, so one bad cell cannot mask the rest of
// the grid.
func Run(ctx context.Context, points []Point, opt Options) []RunResult {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	results := make([]RunResult, len(points))
	if len(points) == 0 {
		return results
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runOne(ctx, i, points[i], opt.Profile)
			}
		}()
	}
	// Dispatch in order; on cancellation the undispatched tail is
	// marked with the context error (indices never sent are written
	// only here, so there is no data race with the workers).
	for i := range points {
		select {
		case jobs <- i:
		case <-ctx.Done():
			for j := i; j < len(points); j++ {
				p := points[j]
				results[j] = RunResult{
					Index: j, Label: p.Label, Group: p.group(),
					Seed: p.Config.Seed, Err: ctx.Err(),
				}
			}
			close(jobs)
			wg.Wait()
			return results
		}
	}
	close(jobs)
	wg.Wait()
	return results
}

// runOne executes a single point with panic capture.
func runOne(ctx context.Context, i int, p Point, profile bool) (rr RunResult) {
	rr = RunResult{Index: i, Label: p.Label, Group: p.group(), Seed: p.Config.Seed}
	defer func() {
		if r := recover(); r != nil {
			rr.Result = nil
			rr.Err = fmt.Errorf("sweep: point %q panicked: %v\n%s", p.Label, r, debug.Stack())
		}
	}()
	if err := ctx.Err(); err != nil {
		rr.Err = err
		return rr
	}
	if p.Policy == nil {
		rr.Err = fmt.Errorf("sweep: point %q has no policy factory", p.Label)
		return rr
	}
	policy, err := p.Policy()
	if err != nil {
		rr.Err = fmt.Errorf("sweep: point %q: %w", p.Label, err)
		return rr
	}
	if profile && p.Config.Obs == nil {
		p.Config.Obs = obs.New() // per-run: registries are cheap and unshared
	}
	sim, err := core.New(p.Config, policy)
	if err != nil {
		rr.Err = fmt.Errorf("sweep: point %q: %w", p.Label, err)
		return rr
	}
	res, err := sim.Run(p.Horizon)
	if err != nil {
		rr.Err = fmt.Errorf("sweep: point %q: %w", p.Label, err)
		return rr
	}
	rr.Result = res
	return rr
}
