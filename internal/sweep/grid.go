package sweep

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/scenario"
)

// Grid is the JSON schema cmd/gfsweep consumes: one base scenario
// (the schema of internal/scenario, shared with cmd/gfsim -scenario)
// crossed with a list of policies and a list of seeds. Every policy ×
// seed combination becomes one Point; the seed drives both workload
// generation and engine noise, so each seed is an independent draw of
// the same statistical scenario.
type Grid struct {
	// Scenario is the base configuration. Its own policy/seed fields
	// are the fallback when Policies/Seeds are empty.
	Scenario scenario.Scenario `json:"scenario"`

	// Policies to sweep: gandiva-fair (default), tiresias, gandiva-rr,
	// static, fifo. Empty means just the scenario's policy.
	Policies []string `json:"policies,omitempty"`

	// Seeds to sweep. Empty means just the scenario's seed.
	Seeds []int64 `json:"seeds,omitempty"`
}

// LoadGrid parses a grid from JSON, rejecting unknown fields so typos
// fail loudly.
func LoadGrid(r io.Reader) (*Grid, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	return &g, nil
}

// Points expands the grid into runnable points (policy-major, then
// seed order). Each point carries its own freshly built config and
// policy instance, so points share no mutable state. audit overrides
// every point's audit mode.
func (g *Grid) Points(audit core.AuditMode) ([]Point, error) {
	policies := g.Policies
	if len(policies) == 0 {
		policies = []string{g.Scenario.Policy}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{g.Scenario.Seed}
	}
	points := make([]Point, 0, len(policies)*len(seeds))
	for _, pname := range policies {
		for _, seed := range seeds {
			sc := g.Scenario // shallow copy; Build does not mutate shared slices
			sc.Policy = pname
			sc.Seed = seed
			cfg, policy, horizon, err := sc.Build()
			if err != nil {
				return nil, fmt.Errorf("sweep: policy %q seed %d: %w", pname, seed, err)
			}
			cfg.Audit = audit
			points = append(points, Point{
				Label:   fmt.Sprintf("%s/seed=%d", policy.Name(), seed),
				Group:   policy.Name(),
				Config:  cfg,
				Policy:  func() (core.Policy, error) { return policy, nil },
				Horizon: horizon,
			})
		}
	}
	return points, nil
}
