// Package netchaos is a deterministic network fault injector for the
// distributed runtime: a comm.Transport middleware that disturbs
// traffic between named endpoints according to a precompiled,
// round-indexed fault schedule. It injects message drops,
// duplication, reordering, one-round delay, payload corruption
// (always detectable — envelopes are sealed before the payload is
// mutated, so receivers' checksums catch it), asymmetric one-way
// partitions, and full partitions.
//
// Determinism: faults are keyed by (link, round) windows compiled
// into faults.RoundSet span lists, and probabilistic faults flip a
// hash-based coin over (seed, fault, link, round, sequence number)
// rather than drawing from a shared RNG stream — concurrent senders
// cannot perturb each other's outcomes, so a given seed reproduces
// the exact same disturbance schedule regardless of goroutine
// interleaving.
//
// The harness drives time explicitly: call Advance(round) before each
// scheduling round so round windows take effect and delayed messages
// release, and Flush at teardown so nothing is held forever. Shutdown
// messages are exempt from injection — teardown of the harness itself
// is out of scope for the fault model.
package netchaos

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/comm"
	"repro/internal/faults"
	"repro/internal/obs"
)

// Kind names one disturbance.
type Kind string

const (
	// Drop silently swallows the message (packet loss): the sender
	// sees success, the receiver sees nothing.
	Drop Kind = "drop"
	// Dup delivers the message twice, back to back, with identical
	// sequence number and checksum — the receiver's dedup must drop
	// the second copy.
	Dup Kind = "dup"
	// Reorder holds the message and releases it after the next
	// message on the same link (or at Advance/Flush), swapping
	// delivery order.
	Reorder Kind = "reorder"
	// Delay holds the message until the next Advance — a bounded
	// one-round delay, the deterministic model of a straggler that
	// misses the collect deadline.
	Delay Kind = "delay"
	// Corrupt mutates the payload after the envelope was sealed,
	// without resealing: the receiver's checksum verification must
	// detect it and drop the message (corruption is never applied).
	Corrupt Kind = "corrupt"
	// OneWay errors every send in the fault's From→To direction only
	// (an asymmetric partition: one side still hears the other).
	OneWay Kind = "oneway"
	// Partition errors every send in both directions between From and
	// To (a full partition; senders see a connection error at once,
	// which feeds the central's undeliverable-plan→immediate-miss
	// path).
	Partition Kind = "partition"
)

// Fault scripts one disturbance on one link for a window of rounds.
type Fault struct {
	Kind Kind
	// From and To name the link's endpoints ("*" matches any). OneWay
	// applies to the From→To direction; Partition to both.
	From, To string
	// Rounds is the active window [From, To). The zero interval means
	// "every round".
	Rounds faults.RoundInterval
	// Prob fires the fault on each matching message with this
	// probability (hash-coin, see package docs); <= 0 or >= 1 means
	// always.
	Prob float64
	// Max caps total firings (0 = unlimited). With wildcard links and
	// concurrent senders the cap's attribution can race; schedules
	// that must reproduce exactly pin From and To.
	Max int
}

// Config builds an Injector.
type Config struct {
	Seed   int64
	Faults []Fault
	// Obs counts injected faults on the gf_net_*_total counters (nil
	// is fine).
	Obs *obs.Observer
}

// Injector implements the fault schedule. Wrap each endpoint's
// transport with Wrap; one Injector serves every endpoint of a run so
// partitions and link faults see both directions.
type Injector struct {
	mu     sync.Mutex
	seed   int64
	obs    *obs.Observer
	round  int
	faults []*compiledFault
	counts map[Kind]int
	// delayed messages release at the next Advance; reorder holds one
	// message per link until the link's next send.
	delayed []held
	reorder map[string]*held
}

type compiledFault struct {
	idx   int // position in Config.Faults, feeds the hash coin
	f     Fault
	spans *faults.RoundSet // nil = every round
	fired int
}

type held struct {
	tr  comm.Transport
	to  string
	env comm.Envelope
}

// New compiles the schedule.
func New(cfg Config) *Injector {
	in := &Injector{
		seed:    cfg.Seed,
		obs:     cfg.Obs,
		counts:  make(map[Kind]int),
		reorder: make(map[string]*held),
	}
	for i, f := range cfg.Faults {
		cf := &compiledFault{idx: i, f: f}
		if !f.Rounds.Empty() {
			cf.spans = faults.CompileRounds([]faults.RoundInterval{f.Rounds})
		}
		in.faults = append(in.faults, cf)
	}
	return in
}

// SetObserver attaches (or replaces) the observer counting injected
// faults.
func (in *Injector) SetObserver(o *obs.Observer) {
	in.mu.Lock()
	in.obs = o
	in.mu.Unlock()
}

// Wrap returns tr with this injector spliced into its Send path.
// Recv, Name and Close pass through.
func (in *Injector) Wrap(tr comm.Transport) comm.Transport {
	return &wrapped{Transport: tr, in: in}
}

type wrapped struct {
	comm.Transport
	in *Injector
}

func (w *wrapped) Send(to string, e comm.Envelope) error {
	return w.in.send(w.Transport, to, e)
}

// Advance moves the injector to the given scheduling round: round
// windows switch accordingly and every delayed message releases into
// its destination (ahead of the round's own traffic, so a one-round
// delay is exactly one round late).
func (in *Injector) Advance(round int) {
	in.mu.Lock()
	if round > in.round {
		in.round = round
	}
	release := in.delayed
	in.delayed = nil
	in.mu.Unlock()
	for _, h := range release {
		_ = h.tr.Send(h.to, h.env)
	}
}

// Flush delivers everything still held (delayed and reordered).
// Call at teardown.
func (in *Injector) Flush() {
	in.mu.Lock()
	release := in.delayed
	in.delayed = nil
	links := make([]string, 0, len(in.reorder))
	for l := range in.reorder {
		links = append(links, l)
	}
	sort.Strings(links)
	for _, l := range links {
		release = append(release, *in.reorder[l])
		delete(in.reorder, l)
	}
	in.mu.Unlock()
	for _, h := range release {
		_ = h.tr.Send(h.to, h.env)
	}
}

// Stats returns how many times each fault kind fired.
func (in *Injector) Stats() map[Kind]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]int, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Fired returns one kind's firing count.
func (in *Injector) Fired(k Kind) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[k]
}

func matches(pat, name string) bool { return pat == "*" || pat == name }

// linkMatches reports whether fault f applies to a send from→to.
func linkMatches(f Fault, from, to string) bool {
	if matches(f.From, from) && matches(f.To, to) {
		return true
	}
	// A full partition cuts both directions.
	return f.Kind == Partition && matches(f.From, to) && matches(f.To, from)
}

// coin flips the deterministic hash coin for fault cf on this message.
func (in *Injector) coin(cf *compiledFault, from, to string, seq uint64) bool {
	p := cf.f.Prob
	if p <= 0 || p >= 1 {
		return true
	}
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(in.seed))
	_, _ = h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(cf.idx))
	_, _ = h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(in.round))
	_, _ = h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], seq)
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(from))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(to))
	u := h.Sum64() % 1_000_000_007
	return float64(u)/1_000_000_007 < p
}

// pick selects the first armed fault matching this send (declaration
// order; a script that wants a specific disturbance lists it first).
// Caller holds the mutex.
func (in *Injector) pick(from, to string, e comm.Envelope) *compiledFault {
	for _, cf := range in.faults {
		if cf.spans != nil && !cf.spans.Active(in.round) {
			continue
		}
		if cf.f.Max > 0 && cf.fired >= cf.f.Max {
			continue
		}
		if !linkMatches(cf.f, from, to) {
			continue
		}
		if !in.coin(cf, from, to, e.Seq) {
			continue
		}
		cf.fired++
		in.counts[cf.f.Kind]++
		return cf
	}
	return nil
}

// corrupt returns a mutated copy of the payload. Only scalar fields
// are touched so the mutation never aliases slices the sender still
// owns; the point is solely that the bytes no longer match the seal.
func corrupt(m comm.Message) comm.Message {
	switch v := m.(type) {
	case comm.RoundPlan:
		v.Round += 1 << 20
		v.Quantum = v.Quantum*2 + 1
		return v
	case comm.RoundReport:
		v.Round += 1 << 20
		return v
	case comm.Register:
		v.GPUs += 1 << 20
		return v
	case comm.RegisterAck:
		v.OK = !v.OK
		v.Reason = v.Reason + "?"
		return v
	default:
		return fmt.Sprintf("netchaos: corrupted %T", m)
	}
}

func (in *Injector) send(tr comm.Transport, to string, e comm.Envelope) error {
	if _, isShutdown := e.Msg.(comm.Shutdown); isShutdown {
		return tr.Send(to, e)
	}
	from := tr.Name()
	in.mu.Lock()
	cf := in.pick(from, to, e)
	var kind Kind
	if cf != nil {
		kind = cf.f.Kind
	}
	o := in.obs
	switch kind {
	case OneWay, Partition:
		in.mu.Unlock()
		o.NoteNet(string(kind))
		return fmt.Errorf("netchaos: link %s→%s partitioned", from, to)
	case Drop:
		in.mu.Unlock()
		o.NoteNet(string(kind))
		return nil
	case Delay:
		in.delayed = append(in.delayed, held{tr: tr, to: to, env: e})
		in.mu.Unlock()
		o.NoteNet(string(kind))
		return nil
	case Reorder:
		link := from + "\x00" + to
		prev := in.reorder[link]
		in.reorder[link] = &held{tr: tr, to: to, env: e}
		in.mu.Unlock()
		o.NoteNet(string(kind))
		if prev != nil {
			// The previously held message goes out now, behind every
			// message sent since it was held — that is the reorder.
			return tr.Send(prev.to, prev.env)
		}
		return nil
	case Corrupt:
		in.mu.Unlock()
		o.NoteNet(string(kind))
		e.Msg = corrupt(e.Msg)
		return tr.Send(to, e)
	case Dup:
		in.mu.Unlock()
		o.NoteNet(string(kind))
		if err := tr.Send(to, e); err != nil {
			return err
		}
		return tr.Send(to, e)
	default:
		// No fault: a reordered predecessor on this link still goes
		// out behind this message.
		link := from + "\x00" + to
		prev := in.reorder[link]
		delete(in.reorder, link)
		in.mu.Unlock()
		if err := tr.Send(to, e); err != nil {
			return err
		}
		if prev != nil {
			return tr.Send(prev.to, prev.env)
		}
		return nil
	}
}
