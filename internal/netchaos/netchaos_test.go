package netchaos

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/faults"
)

// sink records everything delivered through it.
type sink struct {
	name string
	got  []comm.Envelope
	tos  []string
}

func (s *sink) Send(to string, e comm.Envelope) error {
	s.got = append(s.got, e)
	s.tos = append(s.tos, to)
	return nil
}
func (s *sink) Recv() <-chan comm.Envelope { return nil }
func (s *sink) Name() string               { return s.name }
func (s *sink) Close() error               { return nil }

func rep(round int, seq uint64) comm.Envelope {
	e, err := comm.Seal(comm.Envelope{From: "a", Seq: seq, Msg: comm.RoundReport{Agent: "a", Round: round}})
	if err != nil {
		panic(err)
	}
	return e
}

func window(from, to int) faults.RoundInterval { return faults.RoundInterval{From: from, To: to} }

func TestDropOnlyInsideWindow(t *testing.T) {
	s := &sink{name: "a"}
	in := New(Config{Seed: 1, Faults: []Fault{
		{Kind: Drop, From: "a", To: "central", Rounds: window(2, 3)},
	}})
	tr := in.Wrap(s)

	in.Advance(1)
	if err := tr.Send("central", rep(1, 1)); err != nil {
		t.Fatal(err)
	}
	in.Advance(2)
	if err := tr.Send("central", rep(2, 2)); err != nil {
		t.Fatal(err) // a drop looks like success to the sender
	}
	in.Advance(3)
	if err := tr.Send("central", rep(3, 3)); err != nil {
		t.Fatal(err)
	}
	if len(s.got) != 2 {
		t.Fatalf("delivered %d messages, want 2 (round-2 send dropped)", len(s.got))
	}
	for _, e := range s.got {
		if e.Msg.(comm.RoundReport).Round == 2 {
			t.Error("round-2 message delivered despite drop window")
		}
	}
	if in.Fired(Drop) != 1 {
		t.Errorf("drop fired %d times, want 1", in.Fired(Drop))
	}
}

func TestDupDeliversIdenticalTwin(t *testing.T) {
	s := &sink{name: "a"}
	in := New(Config{Seed: 1, Faults: []Fault{{Kind: Dup, From: "a", To: "central"}}})
	tr := in.Wrap(s)
	if err := tr.Send("central", rep(1, 7)); err != nil {
		t.Fatal(err)
	}
	if len(s.got) != 2 {
		t.Fatalf("delivered %d copies, want 2", len(s.got))
	}
	if s.got[0].Seq != s.got[1].Seq || s.got[0].Sum != s.got[1].Sum {
		t.Errorf("duplicate differs from original: %+v vs %+v", s.got[0], s.got[1])
	}
}

func TestReorderSwapsWithNextSend(t *testing.T) {
	s := &sink{name: "a"}
	in := New(Config{Seed: 1, Faults: []Fault{
		{Kind: Reorder, From: "a", To: "central", Max: 1},
	}})
	tr := in.Wrap(s)
	if err := tr.Send("central", rep(1, 1)); err != nil {
		t.Fatal(err) // held
	}
	if len(s.got) != 0 {
		t.Fatalf("reordered message delivered immediately")
	}
	if err := tr.Send("central", rep(2, 2)); err != nil {
		t.Fatal(err) // goes out first, then releases the held one behind it
	}
	if len(s.got) != 2 {
		t.Fatalf("delivered %d, want 2", len(s.got))
	}
	if r0 := s.got[0].Msg.(comm.RoundReport).Round; r0 != 2 {
		t.Errorf("first delivery is round %d, want 2 (order swapped)", r0)
	}
	if r1 := s.got[1].Msg.(comm.RoundReport).Round; r1 != 1 {
		t.Errorf("second delivery is round %d, want 1", r1)
	}
}

func TestDelayReleasesAtAdvanceAndFlushDrainsEverything(t *testing.T) {
	s := &sink{name: "a"}
	in := New(Config{Seed: 1, Faults: []Fault{
		{Kind: Delay, From: "a", To: "central", Max: 1},
		{Kind: Reorder, From: "a", To: "central", Max: 1},
	}})
	tr := in.Wrap(s)
	if err := tr.Send("central", rep(1, 1)); err != nil {
		t.Fatal(err) // delayed until the next Advance
	}
	if err := tr.Send("central", rep(1, 2)); err != nil {
		t.Fatal(err) // held by the reorder
	}
	if len(s.got) != 0 {
		t.Fatalf("held messages leaked early: %d delivered", len(s.got))
	}
	in.Advance(2)
	if len(s.got) != 1 || s.got[0].Seq != 1 {
		t.Fatalf("Advance released %d messages (want the delayed seq-1 one)", len(s.got))
	}
	in.Flush()
	if len(s.got) != 2 {
		t.Fatalf("Flush left a message held: %d delivered, want 2", len(s.got))
	}
}

// TestCorruptAlwaysDetectable: corruption happens after sealing and
// never reseals, so the receiver-side checksum must reject every
// corrupted delivery — corruption can be detected, never applied.
func TestCorruptAlwaysDetectable(t *testing.T) {
	s := &sink{name: "central"}
	in := New(Config{Seed: 1, Faults: []Fault{{Kind: Corrupt, From: "central", To: "*"}}})
	tr := in.Wrap(s)
	msgs := []comm.Message{
		comm.RoundPlan{Round: 4, Quantum: 360},
		comm.RoundReport{Agent: "x", Round: 4},
		comm.Register{Agent: "x", Gen: 1, GPUs: 2},
		comm.RegisterAck{OK: true},
	}
	for i, m := range msgs {
		e, err := comm.Seal(comm.Envelope{From: "central", Seq: uint64(i + 1), Msg: m})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Send("agent-0", e); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.got) != len(msgs) {
		t.Fatalf("delivered %d, want %d", len(s.got), len(msgs))
	}
	for i, e := range s.got {
		if comm.Verify(e) {
			t.Errorf("corrupted %T still verifies", msgs[i])
		}
	}
	// Shutdown is exempt: harness teardown is out of the fault model.
	sd := comm.Envelope{From: "central", Msg: comm.Shutdown{}}
	if err := tr.Send("agent-0", sd); err != nil {
		t.Fatal(err)
	}
	if !comm.Verify(s.got[len(s.got)-1]) {
		t.Error("shutdown was disturbed")
	}
}

func TestPartitionCutsBothDirectionsOneWayOnlyOne(t *testing.T) {
	a := &sink{name: "a"}
	b := &sink{name: "b"}
	in := New(Config{Seed: 1, Faults: []Fault{
		{Kind: Partition, From: "a", To: "b", Rounds: window(1, 2)},
		{Kind: OneWay, From: "a", To: "c", Rounds: window(1, 2)},
	}})
	ta, tb := in.Wrap(a), in.Wrap(b)
	in.Advance(1)
	if err := ta.Send("b", rep(1, 1)); err == nil {
		t.Error("a→b send survived the full partition")
	}
	if err := tb.Send("a", rep(1, 1)); err == nil {
		t.Error("b→a send survived the full partition")
	}
	if err := ta.Send("c", rep(1, 2)); err == nil {
		t.Error("a→c send survived the one-way partition")
	}
	// One-way means the reverse direction still works. The "c" side
	// reuses a's sink transport under a different name.
	c := &sink{name: "c"}
	if err := in.Wrap(c).Send("a", rep(1, 3)); err != nil {
		t.Errorf("c→a should pass a one-way a→c partition: %v", err)
	}
	in.Advance(2)
	if err := ta.Send("b", rep(2, 4)); err != nil {
		t.Errorf("partition did not heal at window end: %v", err)
	}
}

// TestHashCoinDeterminism: a probabilistic fault's firing pattern is
// a pure function of (seed, fault, round, seq, link) — two injectors
// with the same seed agree on every message, regardless of call
// order or timing.
func TestHashCoinDeterminism(t *testing.T) {
	pattern := func(seed int64) []bool {
		s := &sink{name: "a"}
		in := New(Config{Seed: seed, Faults: []Fault{
			{Kind: Drop, From: "a", To: "central", Prob: 0.5},
		}})
		tr := in.Wrap(s)
		var out []bool
		for round := 1; round <= 4; round++ {
			in.Advance(round)
			for seq := uint64(1); seq <= 8; seq++ {
				before := len(s.got)
				if err := tr.Send("central", rep(round, uint64(round)*100+seq)); err != nil {
					t.Fatal(err)
				}
				out = append(out, len(s.got) == before) // true = dropped
			}
		}
		return out
	}
	p1, p2 := pattern(99), pattern(99)
	dropped := 0
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed diverged at message %d", i)
		}
		if p1[i] {
			dropped++
		}
	}
	// Sanity: the coin is actually probabilistic, not constant.
	if dropped == 0 || dropped == len(p1) {
		t.Errorf("Prob 0.5 dropped %d of %d — coin looks constant", dropped, len(p1))
	}
}

func TestFirstArmedFaultWinsAndMaxCaps(t *testing.T) {
	s := &sink{name: "a"}
	in := New(Config{Seed: 1, Faults: []Fault{
		{Kind: Drop, From: "a", To: "central", Max: 1},
		{Kind: Dup, From: "a", To: "central"},
	}})
	tr := in.Wrap(s)
	if err := tr.Send("central", rep(1, 1)); err != nil {
		t.Fatal(err) // drop wins while armed
	}
	if err := tr.Send("central", rep(1, 2)); err != nil {
		t.Fatal(err) // drop capped out; dup takes over
	}
	if got := in.Fired(Drop); got != 1 {
		t.Errorf("drop fired %d, want 1 (Max respected)", got)
	}
	if got := in.Fired(Dup); got != 1 {
		t.Errorf("dup fired %d, want 1", got)
	}
	if len(s.got) != 2 {
		t.Errorf("delivered %d, want 2 (message 1 dropped, message 2 duplicated)", len(s.got))
	}
}
