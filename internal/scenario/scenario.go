// Package scenario loads complete simulation scenarios from JSON:
// cluster inventory, workload, tickets, failures, runtime ticket
// changes and policy selection. It is the file-driven front door used
// by cmd/gfsim -scenario, so experiments can be versioned and shared
// as data instead of flag soup.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/fairshare"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/simclock"
	"repro/internal/trade"
	"repro/internal/workload"
)

// Scenario is the JSON schema. All durations are in hours for human
// editing; they convert to simulation seconds on Build.
type Scenario struct {
	// Cluster inventory; empty means the default 200-GPU testbed.
	Cluster []ClusterSpec `json:"cluster,omitempty"`

	// Users drives workload generation. Required unless Jobs is set.
	Users []UserSpec `json:"users,omitempty"`

	// Policy: gandiva-fair (default), tiresias, gandiva-rr, static,
	// fifo.
	Policy string `json:"policy,omitempty"`

	// Trading enables resource trading (gandiva-fair only).
	Trading bool `json:"trading,omitempty"`

	// PricePolicy: geometric (default), midpoint, seller-floor,
	// buyer-ceiling.
	PricePolicy string `json:"price_policy,omitempty"`

	// Hierarchy, when present, switches gandiva-fair to two-level
	// org → user fairness.
	Hierarchy map[string]OrgSpec `json:"hierarchy,omitempty"`

	// Tickets per user (flat fairness); defaults to 1 each.
	Tickets map[string]float64 `json:"tickets,omitempty"`

	HorizonHours float64 `json:"horizon_hours"`
	QuantumSecs  float64 `json:"quantum_secs,omitempty"`
	Seed         int64   `json:"seed,omitempty"`

	DisableMigration bool `json:"disable_migration,omitempty"`

	Failures      []FailureSpec      `json:"failures,omitempty"`
	TicketChanges []TicketChangeSpec `json:"ticket_changes,omitempty"`

	// Faults, when present, turns on the probabilistic fault model
	// (seeded from Seed): transient server crashes, flaky servers,
	// GPU degradation, job crash-restart, migration failures and
	// flaky-server quarantine. Declared Failures above still apply
	// and merge into the same timeline.
	Faults *FaultModelSpec `json:"faults,omitempty"`

	// DisableCompensation turns off fairness-preserving failure
	// compensation (gandiva-fair only) — the ablation where GPU time
	// lost to faults is never repaid.
	DisableCompensation bool `json:"disable_compensation,omitempty"`

	// Engine selects the round-loop implementation: "incremental"
	// (default) or "rescan" (the legacy full-rescan loop, kept for
	// differential testing). Both produce byte-identical output for
	// the same scenario and seed.
	Engine string `json:"engine,omitempty"`
}

// ClusterSpec is one group of identical servers.
type ClusterSpec struct {
	Gen     string `json:"gen"`
	Servers int    `json:"servers"`
	GPUs    int    `json:"gpus_per_server"`
}

// UserSpec drives one user's workload generation.
type UserSpec struct {
	Name            string     `json:"name"`
	Jobs            int        `json:"jobs"`
	ArrivalsPerHour float64    `json:"arrivals_per_hour,omitempty"`
	MeanK80Hours    float64    `json:"mean_k80_hours,omitempty"`
	Models          []string   `json:"models,omitempty"`
	Gangs           []GangSpec `json:"gangs,omitempty"` // default: Philly mix (1..16)
}

// GangSpec is one bucket of a user's gang-size distribution.
type GangSpec struct {
	Gang   int     `json:"gang"`
	Weight float64 `json:"weight"`
}

// OrgSpec is one organization in a hierarchy.
type OrgSpec struct {
	Tickets float64            `json:"tickets"`
	Members map[string]float64 `json:"members"` // user → weight
}

// FaultModelSpec is the JSON form of faults.Config — the knobs of
// the seeded probabilistic fault model. Zero-valued rate knobs leave
// that fault class disabled; zero-valued shape knobs take the
// documented defaults (see internal/faults).
type FaultModelSpec struct {
	ServerMTBFHours       float64 `json:"server_mtbf_hours,omitempty"`
	ServerOutageMeanHours float64 `json:"server_outage_mean_hours,omitempty"`

	FlakyServers       int     `json:"flaky_servers,omitempty"`
	FlakyMTBFHours     float64 `json:"flaky_mtbf_hours,omitempty"`
	FlakyOutageMinutes float64 `json:"flaky_outage_minutes,omitempty"`

	DegradeMTBFHours float64 `json:"degrade_mtbf_hours,omitempty"`
	DegradeFactor    float64 `json:"degrade_factor,omitempty"`
	DegradeMeanHours float64 `json:"degrade_mean_hours,omitempty"`

	JobCrashMTBFHours float64 `json:"job_crash_mtbf_hours,omitempty"`
	CheckpointSecs    float64 `json:"checkpoint_secs,omitempty"`

	MigrationFailProb         float64 `json:"migration_fail_prob,omitempty"`
	MigrationBackoffRounds    int     `json:"migration_backoff_rounds,omitempty"`
	MigrationBackoffCapRounds int     `json:"migration_backoff_cap_rounds,omitempty"`

	QuarantineFailures     int     `json:"quarantine_failures,omitempty"`
	QuarantineWindowHours  float64 `json:"quarantine_window_hours,omitempty"`
	QuarantineCooloffHours float64 `json:"quarantine_cooloff_hours,omitempty"`

	MinOutageSecs float64 `json:"min_outage_secs,omitempty"`
}

func (f *FaultModelSpec) toConfig() *faults.Config {
	if f == nil {
		return nil
	}
	return &faults.Config{
		ServerMTBFHours:           f.ServerMTBFHours,
		ServerOutageMeanHours:     f.ServerOutageMeanHours,
		FlakyServers:              f.FlakyServers,
		FlakyMTBFHours:            f.FlakyMTBFHours,
		FlakyOutageMinutes:        f.FlakyOutageMinutes,
		DegradeMTBFHours:          f.DegradeMTBFHours,
		DegradeFactor:             f.DegradeFactor,
		DegradeMeanHours:          f.DegradeMeanHours,
		JobCrashMTBFHours:         f.JobCrashMTBFHours,
		CheckpointSecs:            f.CheckpointSecs,
		MigrationFailProb:         f.MigrationFailProb,
		MigrationBackoffRounds:    f.MigrationBackoffRounds,
		MigrationBackoffCapRounds: f.MigrationBackoffCapRounds,
		QuarantineFailures:        f.QuarantineFailures,
		QuarantineWindowHours:     f.QuarantineWindowHours,
		QuarantineCooloffHours:    f.QuarantineCooloffHours,
		MinOutageSecs:             f.MinOutageSecs,
	}
}

// FailureSpec schedules a server outage.
type FailureSpec struct {
	Server        int     `json:"server"`
	AtHours       float64 `json:"at_hours"`
	DurationHours float64 `json:"duration_hours"`
}

// TicketChangeSpec reassigns a user's tickets at runtime.
type TicketChangeSpec struct {
	AtHours float64 `json:"at_hours"`
	User    string  `json:"user"`
	Tickets float64 `json:"tickets"`
}

// Load parses a scenario from JSON, rejecting unknown fields so typos
// fail loudly.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &s, nil
}

// Build materializes the scenario: a validated engine config, the
// selected policy, and the horizon.
func (s *Scenario) Build() (core.Config, core.Policy, simclock.Time, error) {
	var zero core.Config
	if s.HorizonHours <= 0 {
		return zero, nil, 0, fmt.Errorf("scenario: horizon_hours must be positive")
	}

	cluster, err := s.buildCluster()
	if err != nil {
		return zero, nil, 0, err
	}
	zoo := workload.DefaultZoo()
	specs, err := s.buildWorkload(zoo)
	if err != nil {
		return zero, nil, 0, err
	}

	engine, err := core.ParseEngineMode(s.Engine)
	if err != nil {
		return zero, nil, 0, fmt.Errorf("scenario: %w", err)
	}
	cfg := core.Config{
		Cluster:          cluster,
		Specs:            specs,
		Quantum:          s.QuantumSecs,
		Seed:             s.Seed,
		DisableMigration: s.DisableMigration,
		Faults:           s.Faults.toConfig(),
		Engine:           engine,
	}
	if len(s.Tickets) > 0 {
		cfg.Tickets = make(map[job.UserID]float64, len(s.Tickets))
		for u, t := range s.Tickets {
			cfg.Tickets[job.UserID(u)] = t
		}
	}
	for _, f := range s.Failures {
		cfg.Failures = append(cfg.Failures, core.Failure{
			Server:   gpu.ServerID(f.Server),
			At:       simclock.Time(f.AtHours * simclock.Hour),
			Duration: f.DurationHours * simclock.Hour,
		})
	}
	for _, tc := range s.TicketChanges {
		cfg.TicketChanges = append(cfg.TicketChanges, core.TicketChange{
			At:      simclock.Time(tc.AtHours * simclock.Hour),
			User:    job.UserID(tc.User),
			Tickets: tc.Tickets,
		})
	}

	policy, err := s.buildPolicy()
	if err != nil {
		return zero, nil, 0, err
	}
	if err := cfg.Validate(); err != nil {
		return zero, nil, 0, err
	}
	return cfg, policy, simclock.Time(s.HorizonHours * simclock.Hour), nil
}

func (s *Scenario) buildCluster() (*gpu.Cluster, error) {
	if len(s.Cluster) == 0 {
		return gpu.Default200(), nil
	}
	var specs []gpu.Spec
	for _, c := range s.Cluster {
		gen, err := gpu.ParseGeneration(c.Gen)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		specs = append(specs, gpu.Spec{Gen: gen, Servers: c.Servers, GPUsPerSrv: c.GPUs})
	}
	return gpu.New(specs...)
}

func (s *Scenario) buildWorkload(zoo *workload.Zoo) ([]job.Spec, error) {
	if len(s.Users) == 0 {
		return nil, fmt.Errorf("scenario: no users")
	}
	var users []workload.UserSpec
	for _, u := range s.Users {
		us := workload.UserSpec{
			User:               job.UserID(u.Name),
			NumJobs:            u.Jobs,
			ArrivalRatePerHour: u.ArrivalsPerHour,
			MeanK80Hours:       u.MeanK80Hours,
			Models:             u.Models,
		}
		for _, g := range u.Gangs {
			us.GangDist = append(us.GangDist, workload.GangWeight{Gang: g.Gang, Weight: g.Weight})
		}
		users = append(users, us)
	}
	return workload.Generate(zoo, workload.Config{Seed: s.Seed, Users: users})
}

func (s *Scenario) buildPolicy() (core.Policy, error) {
	switch s.Policy {
	case "", "gandiva-fair":
		fc := core.FairConfig{
			EnableTrading:       s.Trading,
			DisableCompensation: s.DisableCompensation,
		}
		switch s.PricePolicy {
		case "", "geometric":
			fc.Trade.Policy = trade.Geometric
		case "midpoint":
			fc.Trade.Policy = trade.Midpoint
		case "seller-floor":
			fc.Trade.Policy = trade.SellerFloor
		case "buyer-ceiling":
			fc.Trade.Policy = trade.BuyerCeiling
		default:
			return nil, fmt.Errorf("scenario: unknown price_policy %q", s.PricePolicy)
		}
		if len(s.Hierarchy) > 0 {
			orgs := make(map[string]*fairshare.Org, len(s.Hierarchy))
			for name, o := range s.Hierarchy {
				weights := make(map[job.UserID]float64, len(o.Members))
				for u, w := range o.Members {
					weights[job.UserID(u)] = w
				}
				orgs[name] = &fairshare.Org{Tickets: o.Tickets, Weights: weights}
			}
			h, err := fairshare.NewHierarchy(orgs)
			if err != nil {
				return nil, err
			}
			fc.Hierarchy = h
		}
		return core.NewFairPolicy(fc)
	case "tiresias":
		return baselines.NewTiresias(baselines.TiresiasConfig{}), nil
	case "gandiva-rr":
		return baselines.NewGandivaRR(), nil
	case "static":
		var users []job.UserID
		for _, u := range s.Users {
			users = append(users, job.UserID(u.Name))
		}
		return baselines.NewStaticQuota(users), nil
	case "fifo":
		return baselines.NewFIFO(), nil
	default:
		return nil, fmt.Errorf("scenario: unknown policy %q", s.Policy)
	}
}
