package scenario

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/simclock"
)

const fullScenario = `{
  "cluster": [
    {"gen": "K80", "servers": 2, "gpus_per_server": 4},
    {"gen": "V100", "servers": 2, "gpus_per_server": 4}
  ],
  "users": [
    {"name": "mem", "jobs": 8, "models": ["vae"], "mean_k80_hours": 2,
     "gangs": [{"gang": 1, "weight": 0.8}, {"gang": 2, "weight": 0.2}]},
    {"name": "dense", "jobs": 8, "models": ["resnext50"], "arrivals_per_hour": 2,
     "gangs": [{"gang": 1, "weight": 1}]}
  ],
  "policy": "gandiva-fair",
  "trading": true,
  "price_policy": "midpoint",
  "tickets": {"mem": 1, "dense": 3},
  "horizon_hours": 24,
  "quantum_secs": 120,
  "seed": 9,
  "failures": [{"server": 1, "at_hours": 2, "duration_hours": 1}],
  "ticket_changes": [{"at_hours": 6, "user": "mem", "tickets": 2}]
}`

func TestLoadAndBuildFull(t *testing.T) {
	s, err := Load(strings.NewReader(fullScenario))
	if err != nil {
		t.Fatal(err)
	}
	cfg, policy, horizon, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Cluster.NumDevices() != 16 {
		t.Errorf("devices = %d", cfg.Cluster.NumDevices())
	}
	if len(cfg.Specs) != 16 {
		t.Errorf("specs = %d", len(cfg.Specs))
	}
	if cfg.Quantum != 120 || cfg.Seed != 9 {
		t.Errorf("quantum=%v seed=%v", cfg.Quantum, cfg.Seed)
	}
	if cfg.Tickets["dense"] != 3 {
		t.Errorf("tickets = %v", cfg.Tickets)
	}
	if len(cfg.Failures) != 1 || cfg.Failures[0].Server != 1 ||
		cfg.Failures[0].At != simclock.Time(2*simclock.Hour) {
		t.Errorf("failures = %+v", cfg.Failures)
	}
	if len(cfg.TicketChanges) != 1 || cfg.TicketChanges[0].Tickets != 2 {
		t.Errorf("ticket changes = %+v", cfg.TicketChanges)
	}
	if policy.Name() != "gandiva-fair" {
		t.Errorf("policy = %s", policy.Name())
	}
	if horizon != simclock.Time(24*simclock.Hour) {
		t.Errorf("horizon = %v", horizon)
	}
	// And the scenario actually runs.
	sim, err := core.New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Finished) == 0 {
		t.Error("scenario ran no jobs")
	}
}

func TestDefaultsAndMinimal(t *testing.T) {
	s, err := Load(strings.NewReader(`{
	  "users": [{"name": "u", "jobs": 2}],
	  "horizon_hours": 1
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, policy, _, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Cluster.NumDevices() != 200 {
		t.Errorf("default cluster = %d devices", cfg.Cluster.NumDevices())
	}
	if policy.Name() != "gandiva-fair-no-trade" {
		t.Errorf("default policy = %s", policy.Name())
	}
}

func TestHierarchyScenario(t *testing.T) {
	s, err := Load(strings.NewReader(`{
	  "cluster": [{"gen": "P100", "servers": 2, "gpus_per_server": 4}],
	  "users": [{"name": "r1", "jobs": 2}, {"name": "p1", "jobs": 2}],
	  "hierarchy": {
	    "research": {"tickets": 1, "members": {"r1": 1}},
	    "prod": {"tickets": 1, "members": {"p1": 1}}
	  },
	  "horizon_hours": 2
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestAllPolicies(t *testing.T) {
	for _, p := range []string{"gandiva-fair", "tiresias", "gandiva-rr", "static", "fifo"} {
		s := &Scenario{
			Users:        []UserSpec{{Name: "u", Jobs: 1}},
			Policy:       p,
			HorizonHours: 1,
		}
		if _, _, _, err := s.Build(); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	bad := map[string]string{
		"not json":      `{`,
		"unknown field": `{"horizon_hours": 1, "users": [{"name":"u","jobs":1}], "nope": 1}`,
	}
	for name, body := range bad {
		if _, err := Load(strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	cases := map[string]Scenario{
		"no horizon":     {Users: []UserSpec{{Name: "u", Jobs: 1}}},
		"no users":       {HorizonHours: 1},
		"bad gen":        {HorizonHours: 1, Users: []UserSpec{{Name: "u", Jobs: 1}}, Cluster: []ClusterSpec{{Gen: "TPU", Servers: 1, GPUs: 4}}},
		"bad policy":     {HorizonHours: 1, Users: []UserSpec{{Name: "u", Jobs: 1}}, Policy: "mystery"},
		"bad price":      {HorizonHours: 1, Users: []UserSpec{{Name: "u", Jobs: 1}}, PricePolicy: "free"},
		"bad model":      {HorizonHours: 1, Users: []UserSpec{{Name: "u", Jobs: 1, Models: []string{"nope"}}}},
		"bad hierarchy":  {HorizonHours: 1, Users: []UserSpec{{Name: "u", Jobs: 1}}, Hierarchy: map[string]OrgSpec{"o": {Tickets: 0, Members: map[string]float64{"u": 1}}}},
		"bad failure":    {HorizonHours: 1, Users: []UserSpec{{Name: "u", Jobs: 1}}, Failures: []FailureSpec{{Server: 999, AtHours: 1, DurationHours: 1}}},
		"bad tkt change": {HorizonHours: 1, Users: []UserSpec{{Name: "u", Jobs: 1}}, TicketChanges: []TicketChangeSpec{{AtHours: 1, User: "", Tickets: 1}}},
	}
	for name, s := range cases {
		s := s
		if _, _, _, err := s.Build(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestGenParseInScenario(t *testing.T) {
	// gpu.ParseGeneration is case-sensitive by design; the scenario
	// schema documents uppercase names.
	if _, err := gpu.ParseGeneration("V100"); err != nil {
		t.Fatal(err)
	}
}

func TestFaultModelScenario(t *testing.T) {
	const src = `{
	  "users": [{"name": "u", "jobs": 4, "models": ["vae"], "mean_k80_hours": 2}],
	  "horizon_hours": 12,
	  "seed": 3,
	  "disable_compensation": true,
	  "failures": [{"server": 0, "at_hours": 1, "duration_hours": 0.5}],
	  "faults": {
	    "server_mtbf_hours": 8,
	    "flaky_servers": 1,
	    "migration_fail_prob": 0.25,
	    "job_crash_mtbf_hours": 6,
	    "quarantine_failures": 3,
	    "quarantine_window_hours": 2,
	    "quarantine_cooloff_hours": 4
	  }
	}`
	s, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, _, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := cfg.Faults
	if f == nil {
		t.Fatal("faults block did not reach core.Config")
	}
	if f.ServerMTBFHours != 8 || f.FlakyServers != 1 || f.MigrationFailProb != 0.25 ||
		f.JobCrashMTBFHours != 6 || f.QuarantineFailures != 3 {
		t.Errorf("fault knobs mistranslated: %+v", f)
	}
	// Declared failures coexist with the probabilistic model.
	if len(cfg.Failures) != 1 {
		t.Errorf("declared failures dropped: %+v", cfg.Failures)
	}

	// Omitting the faults block must leave the legacy path (nil
	// Faults — byte-identical engine behavior).
	s2, err := Load(strings.NewReader(`{
	  "users": [{"name": "u", "jobs": 2, "models": ["vae"]}],
	  "horizon_hours": 4
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg2, _, _, err := s2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Faults != nil {
		t.Errorf("faults non-nil without a faults block: %+v", cfg2.Faults)
	}

	// An invalid fault knob must fail Build via Config.Validate.
	s3, err := Load(strings.NewReader(`{
	  "users": [{"name": "u", "jobs": 2, "models": ["vae"]}],
	  "horizon_hours": 4,
	  "faults": {"migration_fail_prob": 1.5}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s3.Build(); err == nil {
		t.Error("migration_fail_prob=1.5 accepted")
	}
}
