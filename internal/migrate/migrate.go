// Package migrate models the cost of Gandiva-style job control:
// suspend/resume at time-slice boundaries and checkpoint-based
// migration between servers or GPU generations.
//
// Gandiva_fair inherits Gandiva's mechanisms and shows their costs
// are amortized at minute-scale scheduling quanta; this package is
// the cost model the simulation charges so that the amortization
// claim is reproduced rather than assumed.
package migrate

import (
	"fmt"

	"repro/internal/job"
	"repro/internal/simclock"
)

// CostModel parameterizes control-operation overheads.
type CostModel struct {
	// ResumeSecs is the cost of resuming a suspended job on the same
	// devices at a quantum boundary (GPU context restore, a few
	// seconds in Gandiva).
	ResumeSecs float64

	// MigrateBaseSecs is the fixed cost of a migration: framework
	// teardown, container start, training-loop warmup.
	MigrateBaseSecs float64

	// CheckpointMBps is the effective end-to-end bandwidth at which a
	// checkpoint is written, copied and restored during migration.
	CheckpointMBps float64

	// CrossServerEff is the throughput multiplier applied per
	// additional server a gang spans (synchronous all-reduce over the
	// network instead of NVLink/PCIe). 1.0 disables the penalty.
	CrossServerEff float64
}

// Default returns the repository's standard cost model: 3 s resume,
// 15 s migration base + checkpoint at 10 MB/s effective (so a 480 MB
// transformer checkpoint costs ≈63 s and a 15 MB VAE ≈17 s), and a 8%
// throughput penalty per extra server spanned.
func Default() CostModel {
	return CostModel{
		ResumeSecs:      3,
		MigrateBaseSecs: 15,
		CheckpointMBps:  10,
		CrossServerEff:  0.92,
	}
}

// Validate checks model parameters.
func (m CostModel) Validate() error {
	if m.ResumeSecs < 0 || m.MigrateBaseSecs < 0 {
		return fmt.Errorf("migrate: negative cost")
	}
	if m.CheckpointMBps <= 0 {
		return fmt.Errorf("migrate: CheckpointMBps must be positive")
	}
	if m.CrossServerEff <= 0 || m.CrossServerEff > 1 {
		return fmt.Errorf("migrate: CrossServerEff %v outside (0,1]", m.CrossServerEff)
	}
	return nil
}

// MigrationCost returns the seconds a job loses when migrated:
// checkpoint, transfer and restore scale with the model's checkpoint
// size.
func (m CostModel) MigrationCost(p *job.Perf) simclock.Duration {
	return m.MigrateBaseSecs + p.CheckpointMB/m.CheckpointMBps
}

// ResumeCost returns the seconds lost resuming a suspended job
// without moving it.
func (m CostModel) ResumeCost() simclock.Duration { return m.ResumeSecs }

// SpanPenalty returns the throughput multiplier for a gang spanning
// nServers servers: CrossServerEff^(nServers−1).
func (m CostModel) SpanPenalty(nServers int) float64 {
	if nServers <= 1 {
		return 1
	}
	pen := 1.0
	for i := 1; i < nServers; i++ {
		pen *= m.CrossServerEff
	}
	return pen
}

// OverheadFraction is a convenience for experiments: the fraction of
// a quantum lost if a job pays cost once within it.
func OverheadFraction(cost, quantum simclock.Duration) float64 {
	if quantum <= 0 {
		return 1
	}
	if cost >= quantum {
		return 1
	}
	return cost / quantum
}
