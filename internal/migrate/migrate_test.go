package migrate

import (
	"math"
	"testing"

	"repro/internal/simclock"
	"repro/internal/workload"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []CostModel{
		{ResumeSecs: -1, MigrateBaseSecs: 1, CheckpointMBps: 1, CrossServerEff: 1},
		{ResumeSecs: 1, MigrateBaseSecs: -1, CheckpointMBps: 1, CrossServerEff: 1},
		{ResumeSecs: 1, MigrateBaseSecs: 1, CheckpointMBps: 0, CrossServerEff: 1},
		{ResumeSecs: 1, MigrateBaseSecs: 1, CheckpointMBps: 1, CrossServerEff: 0},
		{ResumeSecs: 1, MigrateBaseSecs: 1, CheckpointMBps: 1, CrossServerEff: 1.1},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestMigrationCostScalesWithCheckpoint(t *testing.T) {
	m := Default()
	z := workload.DefaultZoo()
	small := m.MigrationCost(z.MustGet("vae"))         // 15 MB
	large := m.MigrationCost(z.MustGet("transformer")) // 480 MB
	if small >= large {
		t.Fatalf("vae cost %v ≥ transformer cost %v", small, large)
	}
	if math.Abs(small-(15+15.0/10)) > 1e-9 {
		t.Errorf("vae cost %v, want 16.5", small)
	}
	if math.Abs(large-(15+480.0/10)) > 1e-9 {
		t.Errorf("transformer cost %v, want 63", large)
	}
}

func TestResumeCheaperThanMigration(t *testing.T) {
	m := Default()
	z := workload.DefaultZoo()
	for _, p := range z.Models() {
		if m.ResumeCost() >= m.MigrationCost(p) {
			t.Errorf("%s: resume %v not cheaper than migration %v",
				p.Model, m.ResumeCost(), m.MigrationCost(p))
		}
	}
}

func TestSpanPenalty(t *testing.T) {
	m := Default()
	if p := m.SpanPenalty(1); p != 1 {
		t.Errorf("SpanPenalty(1) = %v", p)
	}
	if p := m.SpanPenalty(0); p != 1 {
		t.Errorf("SpanPenalty(0) = %v", p)
	}
	if p := m.SpanPenalty(2); math.Abs(p-0.92) > 1e-12 {
		t.Errorf("SpanPenalty(2) = %v, want 0.92", p)
	}
	if p := m.SpanPenalty(3); math.Abs(p-0.92*0.92) > 1e-12 {
		t.Errorf("SpanPenalty(3) = %v", p)
	}
	none := m
	none.CrossServerEff = 1
	if p := none.SpanPenalty(5); p != 1 {
		t.Errorf("disabled penalty = %v", p)
	}
}

func TestOverheadFraction(t *testing.T) {
	if f := OverheadFraction(6, simclock.Minute); math.Abs(f-0.1) > 1e-12 {
		t.Errorf("OverheadFraction(6, 60) = %v, want 0.1", f)
	}
	if f := OverheadFraction(120, simclock.Minute); f != 1 {
		t.Errorf("cost > quantum → %v, want 1", f)
	}
	if f := OverheadFraction(5, 0); f != 1 {
		t.Errorf("zero quantum → %v, want 1", f)
	}
}

func TestAmortizationAtMinuteQuanta(t *testing.T) {
	// The paper's claim: at minute-scale quanta, suspend/resume
	// overhead is a few percent. With a 60 s quantum and 3 s resume,
	// a job resumed every single quantum loses 5%; at the default
	// 6-minute quantum it loses under 1%.
	m := Default()
	if f := OverheadFraction(m.ResumeCost(), 6*simclock.Minute); f > 0.01 {
		t.Errorf("resume overhead at 6-min quantum = %v, want ≤1%%", f)
	}
	z := workload.DefaultZoo()
	worst := 0.0
	for _, p := range z.Models() {
		f := OverheadFraction(m.MigrationCost(p), 30*simclock.Minute)
		worst = math.Max(worst, f)
	}
	if worst > 0.04 {
		t.Errorf("worst migration overhead per 30-min window = %v, want ≤4%%", worst)
	}
}
