package stride

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/job"
)

func TestSelectEmpty(t *testing.T) {
	s := New(GangAware)
	if got := s.Select(nil, 4); got != nil {
		t.Errorf("Select(nil) = %v", got)
	}
	if got := s.Select([]Candidate{{ID: 1, Gang: 1, Tickets: 1}}, 0); got != nil {
		t.Errorf("Select with zero capacity = %v", got)
	}
}

func TestSelectSkipsInvalidCandidates(t *testing.T) {
	s := New(GangAware)
	got := s.Select([]Candidate{
		{ID: 1, Gang: 0, Tickets: 1},
		{ID: 2, Gang: 1, Tickets: 0},
		{ID: 3, Gang: 1, Tickets: 1},
	}, 4)
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("Select = %v, want [3]", got)
	}
}

func TestSelectFillsCapacity(t *testing.T) {
	s := New(GangAware)
	cands := []Candidate{
		{ID: 1, Gang: 2, Tickets: 1},
		{ID: 2, Gang: 1, Tickets: 1},
		{ID: 3, Gang: 1, Tickets: 1},
	}
	got := s.Select(cands, 4)
	if len(got) != 3 {
		t.Errorf("Select = %v, want all three jobs (capacity 4)", got)
	}
}

func TestSelectGangSkip(t *testing.T) {
	// Capacity 3: a 4-GPU job at min pass cannot fit; gang-aware mode
	// must keep going and schedule the 1-GPU jobs.
	s := New(GangAware)
	s.pass[10] = 0 // big job, min pass
	s.pass[11] = 5
	s.pass[12] = 5
	cands := []Candidate{
		{ID: 10, Gang: 4, Tickets: 1},
		{ID: 11, Gang: 1, Tickets: 1},
		{ID: 12, Gang: 1, Tickets: 1},
	}
	got := s.Select(cands, 3)
	if len(got) != 2 {
		t.Fatalf("Select = %v, want the two 1-GPU jobs", got)
	}
	for _, id := range got {
		if id == 10 {
			t.Fatalf("4-GPU job selected into capacity 3")
		}
	}
}

func TestNaiveBlockingStopsAtBigJob(t *testing.T) {
	s := New(NaiveBlocking)
	s.pass[10] = 0
	s.pass[11] = 5
	cands := []Candidate{
		{ID: 10, Gang: 4, Tickets: 1},
		{ID: 11, Gang: 1, Tickets: 1},
	}
	got := s.Select(cands, 3)
	if len(got) != 0 {
		t.Fatalf("naive mode selected %v, want head-of-line block", got)
	}
}

func TestJoinRule(t *testing.T) {
	s := New(GangAware)
	s.pass[1] = 100
	s.pass[2] = 150
	s.Select([]Candidate{
		{ID: 1, Gang: 1, Tickets: 1},
		{ID: 2, Gang: 1, Tickets: 1},
		{ID: 3, Gang: 1, Tickets: 1}, // newcomer
	}, 1)
	if p := s.Pass(3); p != 100 {
		t.Errorf("newcomer joined at pass %v, want current min 100", p)
	}
}

func TestChargeAndRemove(t *testing.T) {
	s := New(GangAware)
	s.Select([]Candidate{{ID: 1, Gang: 2, Tickets: 4}}, 2)
	s.Charge(1, 120, 4) // 2 GPUs × 60s / 4 tickets
	if p := s.Pass(1); p != 30 {
		t.Errorf("pass = %v, want 30", p)
	}
	s.Remove(1)
	if s.Len() != 0 {
		t.Errorf("Len = %d after Remove", s.Len())
	}
	s.Remove(99) // no-op
}

func TestChargePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	s := New(GangAware)
	mustPanic("unknown job", func() { s.Charge(9, 1, 1) })
	s.Select([]Candidate{{ID: 1, Gang: 1, Tickets: 1}}, 1)
	mustPanic("zero tickets", func() { s.Charge(1, 1, 0) })
	mustPanic("negative resources", func() { s.Charge(1, -1, 1) })
}

func TestDeterministicTieBreak(t *testing.T) {
	// Equal pass: larger gang first, then lower ID.
	s := New(GangAware)
	cands := []Candidate{
		{ID: 3, Gang: 1, Tickets: 1},
		{ID: 1, Gang: 2, Tickets: 1},
		{ID: 2, Gang: 2, Tickets: 1},
	}
	got := s.Select(cands, 2)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Select = %v, want [1] (bigger gang, lower ID wins tie)", got)
	}
}

// simulate runs many rounds over a fixed job set and returns
// accumulated GPU-seconds per job.
func simulate(t *testing.T, s *Scheduler, cands []Candidate, capacity, rounds int, quantum float64) map[job.ID]float64 {
	t.Helper()
	acc := make(map[job.ID]float64)
	gang := make(map[job.ID]int)
	tickets := make(map[job.ID]float64)
	for _, c := range cands {
		gang[c.ID] = c.Gang
		tickets[c.ID] = c.Tickets
	}
	for r := 0; r < rounds; r++ {
		sel := s.Select(cands, capacity)
		for _, id := range sel {
			res := float64(gang[id]) * quantum
			acc[id] += res
			s.Charge(id, res, tickets[id])
		}
	}
	return acc
}

func TestLongRunProportionality(t *testing.T) {
	// 3 jobs with tickets 1:2:3 on 2 GPUs — GPU time must converge to
	// ticket proportion.
	s := New(GangAware)
	cands := []Candidate{
		{ID: 1, Gang: 1, Tickets: 1},
		{ID: 2, Gang: 1, Tickets: 2},
		{ID: 3, Gang: 1, Tickets: 3},
	}
	acc := simulate(t, s, cands, 2, 6000, 60)
	total := acc[1] + acc[2] + acc[3]
	wants := map[job.ID]float64{1: 1.0 / 6, 2: 2.0 / 6, 3: 3.0 / 6}
	for id, want := range wants {
		got := acc[id] / total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("job %d share %v, want %v", id, got, want)
		}
	}
}

func TestMixedGangShares(t *testing.T) {
	// Equal tickets, gangs 1/2/4 on 4 GPUs. Work-conserving backfill
	// plus gang granularity means standalone greedy selection cannot
	// deliver exact 1/3 shares (the user-level deficit quotas in the
	// core provide that guarantee); here we assert the invariants that
	// do hold: nobody starves, the 4-GPU job keeps a substantial
	// share, and the pool stays busy.
	s := New(GangAware)
	cands := []Candidate{
		{ID: 1, Gang: 1, Tickets: 1},
		{ID: 2, Gang: 2, Tickets: 1},
		{ID: 3, Gang: 4, Tickets: 1},
	}
	acc := simulate(t, s, cands, 4, 9000, 60)
	total := acc[1] + acc[2] + acc[3]
	for id := job.ID(1); id <= 3; id++ {
		got := acc[id] / total
		if got < 0.15 {
			t.Errorf("job %d GPU-time share %v, want ≥0.15 (no starvation)", id, got)
		}
	}
	// Any round without the 4-GPU job can use at most 3 of 4 GPUs
	// (total other demand is 3), so 0.75 is the floor for a
	// work-conserving scheduler here; naive blocking drops below it.
	if util := total / (9000 * 60 * 4); util < 0.75 {
		t.Errorf("pool utilization %v, want ≥0.75 (work conservation)", util)
	}
}

func TestBigGangNoStarvation(t *testing.T) {
	// A 4-GPU job among six 1-GPU jobs on 4 GPUs: gang-aware stride
	// must give the big job its proportional share.
	s := New(GangAware)
	cands := []Candidate{{ID: 100, Gang: 4, Tickets: 1}}
	for i := 1; i <= 6; i++ {
		cands = append(cands, Candidate{ID: job.ID(i), Gang: 1, Tickets: 1})
	}
	acc := simulate(t, s, cands, 4, 14000, 60)
	var total float64
	for _, id := range job.SortedIDs(acc) {
		total += acc[id]
	}
	got := acc[100] / total
	if math.Abs(got-1.0/7) > 0.02 {
		t.Errorf("big gang share %v, want ≈1/7", got)
	}
}

func TestGangAwareBeatsNaiveUtilization(t *testing.T) {
	// Capacity 3 with a 4-GPU job present: naive blocks whenever the
	// big job reaches min pass and never schedules it (it can't fit),
	// repeatedly wasting the round; gang-aware keeps the pool busy.
	cands := []Candidate{
		{ID: 1, Gang: 4, Tickets: 1},
		{ID: 2, Gang: 1, Tickets: 1},
		{ID: 3, Gang: 1, Tickets: 1},
		{ID: 4, Gang: 1, Tickets: 1},
	}
	use := func(mode Mode) float64 {
		s := New(mode)
		var used float64
		for r := 0; r < 1000; r++ {
			sel := s.Select(cands, 3)
			for _, id := range sel {
				g := 1
				if id == 1 {
					g = 4
				}
				used += float64(g)
				s.Charge(id, float64(g)*60, 1)
			}
		}
		return used / (1000 * 3)
	}
	ga, naive := use(GangAware), use(NaiveBlocking)
	if ga < 0.99 {
		t.Errorf("gang-aware utilization %v, want ≈1", ga)
	}
	if naive > 0.9*ga {
		t.Errorf("naive utilization %v not clearly worse than gang-aware %v", naive, ga)
	}
}

func TestChurnFairness(t *testing.T) {
	// Jobs arrive and leave; the survivors' shares stay proportional.
	rng := rand.New(rand.NewSource(3))
	s := New(GangAware)
	type jb struct {
		c      Candidate
		joined int
	}
	var jobs []jb
	acc := make(map[job.ID]float64)
	rounds := 4000
	nextID := job.ID(1)
	for r := 0; r < rounds; r++ {
		if len(jobs) < 6 && rng.Intn(10) == 0 {
			jobs = append(jobs, jb{Candidate{ID: nextID, Gang: 1 + rng.Intn(2), Tickets: 1 + float64(rng.Intn(3))}, r})
			nextID++
		}
		if len(jobs) > 2 && rng.Intn(40) == 0 {
			i := rng.Intn(len(jobs))
			s.Remove(jobs[i].c.ID)
			jobs = append(jobs[:i], jobs[i+1:]...)
		}
		cands := make([]Candidate, len(jobs))
		for i, j := range jobs {
			cands[i] = j.c
		}
		for _, id := range s.Select(cands, 4) {
			for _, j := range jobs {
				if j.c.ID == id {
					res := float64(j.c.Gang) * 60
					acc[id] += res
					s.Charge(id, res, j.c.Tickets)
				}
			}
		}
	}
	// Smoke invariants: no negative accumulation, scheduler tracked
	// set matches live jobs.
	if s.Len() != len(jobs) {
		t.Errorf("scheduler tracks %d jobs, %d live", s.Len(), len(jobs))
	}
}

// waterfillPerRound computes each 1-GPU job's fair GPU-rounds per
// round: ticket-proportional, capped at 1, surplus redistributed.
func waterfillPerRound(cands []Candidate, capacity int) map[job.ID]float64 {
	out := make(map[job.ID]float64)
	remaining := float64(capacity)
	active := append([]Candidate(nil), cands...)
	for len(active) > 0 && remaining > 1e-9 {
		var tsum float64
		for _, c := range active {
			tsum += c.Tickets
		}
		capped := false
		next := active[:0]
		for _, c := range active {
			if slice := remaining * c.Tickets / tsum; slice >= 1 {
				out[c.ID] = 1
				capped = true
			} else {
				next = append(next, c)
			}
		}
		if !capped {
			for _, c := range next {
				out[c.ID] = remaining * c.Tickets / tsum
			}
			return out
		}
		var used float64
		for _, id := range job.SortedIDs(out) {
			used += out[id]
		}
		remaining = float64(capacity) - used
		active = next
	}
	return out
}

// Property: for random ticket vectors over 1-GPU jobs (no gang
// granularity effects), long-run GPU time converges to the
// water-filled ticket shares within 2%.
func TestPropertyTicketConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		capacity := 1 + rng.Intn(n-1) // strictly scarcer than demand
		if capacity >= n {
			capacity = n - 1
		}
		cands := make([]Candidate, n)
		var ticketSum float64
		for i := range cands {
			cands[i] = Candidate{ID: job.ID(i + 1), Gang: 1, Tickets: float64(1 + rng.Intn(9))}
			ticketSum += cands[i].Tickets
		}
		s := New(GangAware)
		acc := make(map[job.ID]float64)
		rounds := 8000
		for r := 0; r < rounds; r++ {
			for _, id := range s.Select(cands, capacity) {
				acc[id] += 1
				for _, c := range cands {
					if c.ID == id {
						s.Charge(id, 60, c.Tickets)
					}
				}
			}
		}
		// Expected shares are the water-filled entitlements: a 1-GPU
		// job is capped at one GPU-round per round, and its surplus
		// redistributes by tickets.
		want := waterfillPerRound(cands, capacity)
		total := float64(rounds * capacity)
		for _, c := range cands {
			got := acc[c.ID] / total
			if math.Abs(got-want[c.ID]/float64(capacity)) > 0.02 {
				t.Fatalf("trial %d (n=%d cap=%d): job %d share %.4f, want %.4f",
					trial, n, capacity, c.ID, got, want[c.ID]/float64(capacity))
			}
		}
	}
}

func TestRebasePreservesOrder(t *testing.T) {
	s := New(GangAware)
	s.pass[1] = 1000
	s.pass[2] = 1500
	s.pass[3] = 1200
	s.Rebase()
	if s.Pass(1) != 0 || s.Pass(2) != 500 || s.Pass(3) != 200 {
		t.Errorf("Rebase gave %v %v %v", s.Pass(1), s.Pass(2), s.Pass(3))
	}
	s2 := New(GangAware)
	s2.Rebase() // empty: no-op
}

// Property: over random candidate sets, Select never overcommits
// capacity, never selects a job twice, and in gang-aware mode leaves
// no selectable job behind (maximal fill w.r.t. pass order).
func TestPropertySelectValid(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		s := New(GangAware)
		n := 1 + rng.Intn(10)
		cands := make([]Candidate, n)
		for i := range cands {
			cands[i] = Candidate{
				ID:      job.ID(i + 1),
				Gang:    1 << rng.Intn(4),
				Tickets: 1 + float64(rng.Intn(4)),
			}
			s.pass[cands[i].ID] = float64(rng.Intn(100))
		}
		capacity := 1 + rng.Intn(16)
		sel := s.Select(cands, capacity)
		used := 0
		seen := map[job.ID]bool{}
		gangOf := map[job.ID]int{}
		for _, c := range cands {
			gangOf[c.ID] = c.Gang
		}
		for _, id := range sel {
			if seen[id] {
				t.Fatalf("job %d selected twice", id)
			}
			seen[id] = true
			used += gangOf[id]
		}
		if used > capacity {
			t.Fatalf("selected %d GPUs into capacity %d", used, capacity)
		}
		// Maximality: no unselected candidate fits in the remainder.
		for _, c := range cands {
			if !seen[c.ID] && c.Gang <= capacity-used {
				t.Fatalf("job %d (gang %d) fits in remaining %d but was skipped",
					c.ID, c.Gang, capacity-used)
			}
		}
	}
}
