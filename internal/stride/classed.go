package stride

import (
	"math"
	"sort"

	"repro/internal/job"
)

// Classed is the split-stride variant of gang-aware scheduling: jobs
// are partitioned into gang-size classes, each class receives a
// water-filled GPU budget proportional to its aggregate tickets
// (capped by its demand), and fractional budgets accrue into per-class
// deficit carries — so a class whose gang does not divide its budget
// this round catches up in later rounds instead of starving.
//
// Compared to the plain greedy pass-order Scheduler, Classed restores
// near-exact proportional GPU time under mixed gang sizes at the cost
// of slightly more bookkeeping:
//
//   - big classes run at their fair rate even when smaller jobs could
//     always backfill ahead of them;
//   - leftover capacity is still backfilled greedily by pass order
//     (charged), so the pool stays work-conserving.
//
// Within a class, members are picked by the shared stride pass state,
// so per-job fairness inside a class also holds.
type Classed struct {
	inner *Scheduler
	carry map[int]float64 // per gang-size class, in GPU-rounds
}

// NewClassed returns an empty classed scheduler.
func NewClassed() *Classed {
	return &Classed{inner: New(GangAware), carry: make(map[int]float64)}
}

// Pass exposes the underlying pass value (for tests).
func (s *Classed) Pass(id job.ID) float64 { return s.inner.Pass(id) }

// Charge advances a job's pass; see Scheduler.Charge.
func (s *Classed) Charge(id job.ID, gpuSeconds, tickets float64) {
	s.inner.Charge(id, gpuSeconds, tickets)
}

// Remove forgets a job.
func (s *Classed) Remove(id job.ID) { s.inner.Remove(id) }

// Select picks one round's jobs for a pool of capacity GPUs.
func (s *Classed) Select(cands []Candidate, capacity int) []job.ID {
	if capacity <= 0 || len(cands) == 0 {
		return nil
	}
	// Partition into classes and compute class tickets/demands.
	classes := make(map[int][]Candidate)
	tickets := make(map[int]float64)
	demand := make(map[int]float64)
	for _, c := range cands {
		if c.Gang <= 0 || c.Tickets <= 0 {
			continue
		}
		classes[c.Gang] = append(classes[c.Gang], c)
		tickets[c.Gang] += c.Tickets
		demand[c.Gang] += float64(c.Gang)
	}
	if len(classes) == 0 {
		return nil
	}
	// Drop carries for classes with no members this round.
	for g := range s.carry {
		if _, ok := classes[g]; !ok {
			delete(s.carry, g)
		}
	}
	// Water-fill capacity among classes by aggregate tickets, capped
	// by class demand.
	budgets := waterfillClasses(tickets, demand, float64(capacity))
	gangs := make([]int, 0, len(classes))
	for g := range classes {
		gangs = append(gangs, g)
		s.carry[g] += budgets[g]
		// Bounded catch-up credit: enough to absorb rounds lost to a
		// full-pool gang from another class, but not unbounded.
		if limit := 2*demand[g] + float64(g); s.carry[g] > limit {
			s.carry[g] = limit
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(gangs)))

	selected := make(map[job.ID]bool)
	gangOf := make(map[job.ID]int, len(cands))
	var out []job.ID
	remaining := capacity
	// Budgeted phase: each class spends whole gangs from its carry,
	// big classes first so their slots are not fragmented away.
	for _, g := range gangs {
		members := classes[g]
		slots := int(math.Floor(s.carry[g]/float64(g) + 1e-9))
		if max := remaining / g; slots > max {
			slots = max
		}
		if slots <= 0 {
			continue
		}
		ids := s.inner.Order(members)
		if len(ids) > slots {
			ids = ids[:slots]
		}
		for _, id := range ids {
			selected[id] = true
			gangOf[id] = g
			out = append(out, id)
			remaining -= g
			s.carry[g] -= float64(g)
		}
	}
	// Backfill phase: leftover capacity goes to unselected jobs by
	// global pass order, gang-aware, without touching carries.
	if remaining > 0 {
		var rest []Candidate
		for _, c := range cands {
			if !selected[c.ID] && c.Gang > 0 && c.Tickets > 0 {
				rest = append(rest, c)
			}
		}
		for _, id := range s.inner.Select(rest, remaining) {
			for _, c := range rest {
				if c.ID == id {
					gangOf[id] = c.Gang
				}
			}
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		gi, gj := gangOf[out[i]], gangOf[out[j]]
		if gi != gj {
			return gi > gj
		}
		return out[i] < out[j]
	})
	return out
}

// waterfillClasses is max–min water-filling keyed by gang class.
func waterfillClasses(tickets, demand map[int]float64, capacity float64) map[int]float64 {
	out := make(map[int]float64, len(demand))
	type cls struct {
		g    int
		t, d float64
	}
	var active []cls
	for g, d := range demand {
		if d > 1e-9 && tickets[g] > 1e-9 {
			active = append(active, cls{g, tickets[g], d})
		}
	}
	sort.Slice(active, func(i, j int) bool { return active[i].g < active[j].g })
	remaining := capacity
	used := 0.0
	for len(active) > 0 && remaining > 1e-9 {
		var tsum float64
		for _, c := range active {
			tsum += c.t
		}
		capped := false
		next := active[:0]
		for _, c := range active {
			if slice := remaining * c.t / tsum; c.d <= slice+1e-9 {
				out[c.g] += c.d
				used += c.d
				capped = true
			} else {
				next = append(next, c)
			}
		}
		if !capped {
			for _, c := range next {
				out[c.g] += remaining * c.t / tsum
			}
			return out
		}
		// used accumulates in deterministic finalization order; summing
		// the out map here would tie the float rounding to map
		// iteration order, which varies between processes.
		remaining = capacity - used
		active = next
	}
	return out
}
