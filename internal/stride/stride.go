// Package stride implements gang-aware stride scheduling, the
// proportional-share core of Gandiva_fair.
//
// Classic stride scheduling keeps a pass value per client and always
// runs the client with the minimum pass, advancing it by
// stride = constant/tickets per quantum received. Gandiva_fair
// extends this to DLT gangs: a job needs all of its GPUs at once, and
// a round schedules many jobs onto a pool of GPUs simultaneously.
//
// Gang awareness here means two things:
//
//  1. Selection considers jobs in pass order but *skips* a job whose
//     gang does not fit in the remaining capacity, continuing with
//     smaller jobs (no head-of-line blocking, so the pool stays
//     utilized). A skipped job's pass does not advance, so it drifts
//     to the minimum and is eventually scheduled first, when the whole
//     pool is still free — big gangs cannot starve.
//  2. Pass advances by resources actually consumed (gang × seconds)
//     divided by tickets, so a 8-GPU job is charged 8× a 1-GPU job
//     per second and long-run GPU-time converges to ticket proportion
//     regardless of gang sizes.
//
// The ablation mode NaiveBlocking implements strict stride semantics
// (stop filling the pool when the minimum-pass job does not fit),
// which the E4 ablation shows wastes capacity.
package stride

import (
	"fmt"
	"sort"

	"repro/internal/job"
)

// Mode selects the selection discipline.
type Mode int

const (
	// GangAware skips jobs that do not fit and keeps filling (the
	// paper's scheduler).
	GangAware Mode = iota
	// NaiveBlocking stops at the first job that does not fit (strict
	// stride order; ablation baseline).
	NaiveBlocking
)

func (m Mode) String() string {
	switch m {
	case GangAware:
		return "gang-aware"
	case NaiveBlocking:
		return "naive-blocking"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Candidate is one runnable job presented to a selection round.
type Candidate struct {
	ID      job.ID
	Gang    int     // GPUs needed, all-or-nothing
	Tickets float64 // share weight for this job (user tickets / user's job count)
}

// Scheduler holds per-job pass state across rounds. It is not safe
// for concurrent use; the simulation core drives it from one
// goroutine.
type Scheduler struct {
	mode Mode
	pass map[job.ID]float64
}

// New returns an empty scheduler in the given mode.
func New(mode Mode) *Scheduler {
	return &Scheduler{mode: mode, pass: make(map[job.ID]float64)}
}

// Mode returns the selection discipline.
func (s *Scheduler) Mode() Mode { return s.mode }

// Pass returns a job's current pass value (0 for unknown jobs).
func (s *Scheduler) Pass(id job.ID) float64 { return s.pass[id] }

// Has reports whether the scheduler tracks the job.
func (s *Scheduler) Has(id job.ID) bool {
	_, ok := s.pass[id]
	return ok
}

// Len returns the number of tracked jobs.
func (s *Scheduler) Len() int { return len(s.pass) }

// Select chooses the jobs to run for one round on a pool of capacity
// identical GPUs. Jobs are considered in increasing pass order (ties:
// larger gang first, then lower ID, so rounds are deterministic).
// Newly seen candidates join at the current minimum pass among the
// candidate set, the standard stride join rule that prevents a new
// job from either monopolizing the pool or being starved.
//
// Select does not advance pass values — call Charge with the
// resources each selected job actually consumed. The returned slice
// lists selected IDs in placement-priority order (big gangs first).
func (s *Scheduler) Select(cands []Candidate, capacity int) []job.ID {
	if capacity <= 0 || len(cands) == 0 {
		return nil
	}
	order := s.Order(cands)
	gangOf := make(map[job.ID]int, len(cands))
	for _, c := range cands {
		gangOf[c.ID] = c.Gang
	}

	var selected []job.ID
	remaining := capacity
	for _, id := range order {
		if remaining == 0 {
			break
		}
		if gangOf[id] > remaining {
			if s.mode == NaiveBlocking {
				break
			}
			continue
		}
		selected = append(selected, id)
		remaining -= gangOf[id]
	}
	sort.Slice(selected, func(i, j int) bool {
		gi, gj := gangOf[selected[i]], gangOf[selected[j]]
		if gi != gj {
			return gi > gj
		}
		return selected[i] < selected[j]
	})
	return selected
}

// Order registers candidates (applying the same join rule as Select)
// and returns their IDs in scheduling priority order: increasing
// pass, ties broken by larger gang then lower ID. Callers that need
// to interleave per-candidate constraints (e.g. per-generation
// budgets) iterate this order themselves and Charge what ran.
func (s *Scheduler) Order(cands []Candidate) []job.ID {
	if len(cands) == 0 {
		return nil
	}
	minPass := 0.0
	found := false
	for _, c := range cands {
		if p, ok := s.pass[c.ID]; ok {
			if !found || p < minPass {
				minPass = p
				found = true
			}
		}
	}
	for _, c := range cands {
		if _, ok := s.pass[c.ID]; !ok {
			s.pass[c.ID] = minPass
		}
	}
	order := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		if c.Gang > 0 && c.Tickets > 0 {
			order = append(order, c)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		pi, pj := s.pass[order[i].ID], s.pass[order[j].ID]
		if pi != pj {
			return pi < pj
		}
		if order[i].Gang != order[j].Gang {
			return order[i].Gang > order[j].Gang
		}
		return order[i].ID < order[j].ID
	})
	ids := make([]job.ID, len(order))
	for i, c := range order {
		ids[i] = c.ID
	}
	return ids
}

// Charge advances a job's pass by the resources it consumed this
// round: gang-GPU-seconds divided by its tickets. Charging an unknown
// job, non-positive tickets, or negative resources panics — those are
// core bugs, not runtime conditions.
func (s *Scheduler) Charge(id job.ID, gpuSeconds, tickets float64) {
	if _, ok := s.pass[id]; !ok {
		panic(fmt.Sprintf("stride: Charge for unknown job %d", id))
	}
	if tickets <= 0 {
		panic(fmt.Sprintf("stride: Charge job %d with tickets %v", id, tickets))
	}
	if gpuSeconds < 0 {
		panic(fmt.Sprintf("stride: Charge job %d with negative resources", id))
	}
	s.pass[id] += gpuSeconds / tickets
}

// Remove forgets a job (finished or cancelled). Removing an unknown
// job is a no-op.
func (s *Scheduler) Remove(id job.ID) { delete(s.pass, id) }

// Rebase shifts all pass values so the minimum becomes zero,
// preventing unbounded float growth in very long simulations. Pass
// ordering (the only thing selection uses) is unchanged.
func (s *Scheduler) Rebase() {
	if len(s.pass) == 0 {
		return
	}
	min := 0.0
	first := true
	for _, p := range s.pass {
		if first || p < min {
			min = p
			first = false
		}
	}
	if min == 0 {
		return
	}
	for id := range s.pass {
		s.pass[id] -= min
	}
}
