package stride

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/job"
)

// runClassed drives rounds and accumulates GPU-rounds per job.
func runClassed(s *Classed, cands []Candidate, capacity, rounds int) (acc map[job.ID]float64, used float64) {
	acc = make(map[job.ID]float64)
	gang := make(map[job.ID]int)
	tick := make(map[job.ID]float64)
	for _, c := range cands {
		gang[c.ID] = c.Gang
		tick[c.ID] = c.Tickets
	}
	for r := 0; r < rounds; r++ {
		for _, id := range s.Select(cands, capacity) {
			res := float64(gang[id])
			acc[id] += res
			used += res
			s.Charge(id, res*60, tick[id])
		}
	}
	return acc, used
}

func TestClassedMixedGangFairnessAndUtilization(t *testing.T) {
	// The scenario where plain greedy pass-order selection tops out
	// around 74% utilization with a skewed big-job share (see E4):
	// classed budgets must hold both near the ideal.
	cands := []Candidate{
		{ID: 1, Gang: 8, Tickets: 1},
		{ID: 2, Gang: 4, Tickets: 1},
		{ID: 3, Gang: 2, Tickets: 1},
		{ID: 4, Gang: 1, Tickets: 1},
		{ID: 5, Gang: 1, Tickets: 1},
		{ID: 6, Gang: 1, Tickets: 1},
	}
	s := NewClassed()
	acc, used := runClassed(s, cands, 8, 20000)
	// ~86% is the packing ceiling here once fairness binds: in rounds
	// where neither the 8- nor the 4-gang's budget is ready, the
	// singles+pair only cover 5 of 8 GPUs. Greedy gets 74%, naive 60%.
	util := used / (20000 * 8)
	if util < 0.84 {
		t.Errorf("classed utilization %v, want ≥0.84", util)
	}
	var total float64
	for _, id := range job.SortedIDs(acc) {
		total += acc[id]
	}
	// Water-filled entitlements on 8 GPUs with demands (8,4,2,1,1,1)
	// and equal tickets: singles cap at 1 each; remainder splits
	// among 8/4/2... classes of equal tickets → big job well above
	// the ~15% greedy gives it.
	bigShare := acc[1] / total
	if bigShare < 0.2 {
		t.Errorf("8-GPU job share %v, want ≥0.2 under classed budgets", bigShare)
	}
}

func TestClassedSingleClassMatchesGreedy(t *testing.T) {
	// All jobs 1-GPU: classed degenerates to plain stride fairness.
	cands := []Candidate{
		{ID: 1, Gang: 1, Tickets: 1},
		{ID: 2, Gang: 1, Tickets: 2},
		{ID: 3, Gang: 1, Tickets: 3},
	}
	s := NewClassed()
	acc, _ := runClassed(s, cands, 2, 9000)
	total := acc[1] + acc[2] + acc[3]
	wants := map[job.ID]float64{1: 1.0 / 6, 2: 2.0 / 6, 3: 3.0 / 6}
	for id, want := range wants {
		if got := acc[id] / total; math.Abs(got-want) > 0.02 {
			t.Errorf("job %d share %v, want %v", id, got, want)
		}
	}
}

func TestClassedEdgeCases(t *testing.T) {
	s := NewClassed()
	if got := s.Select(nil, 8); got != nil {
		t.Errorf("Select(nil) = %v", got)
	}
	if got := s.Select([]Candidate{{ID: 1, Gang: 1, Tickets: 1}}, 0); got != nil {
		t.Errorf("zero capacity = %v", got)
	}
	if got := s.Select([]Candidate{{ID: 1, Gang: 0, Tickets: 1}, {ID: 2, Gang: 1, Tickets: 0}}, 4); got != nil {
		t.Errorf("all-invalid candidates = %v", got)
	}
	s.Remove(99) // no-op
}

func TestClassedCarryPersistsForBigGangs(t *testing.T) {
	// A 4-gang sharing 4 GPUs with four 1-GPU jobs, equal tickets:
	// class budgets are 2/2, so the big job runs every other round via
	// carry accumulation.
	cands := []Candidate{{ID: 10, Gang: 4, Tickets: 4}}
	for i := 1; i <= 4; i++ {
		cands = append(cands, Candidate{ID: job.ID(i), Gang: 1, Tickets: 1})
	}
	s := NewClassed()
	acc, used := runClassed(s, cands, 4, 10000)
	var total float64
	for _, id := range job.SortedIDs(acc) {
		total += acc[id]
	}
	if got := acc[10] / total; math.Abs(got-0.5) > 0.03 {
		t.Errorf("big job share %v, want ≈0.5 (tickets 4 of 8)", got)
	}
	if util := used / (10000 * 4); util < 0.95 {
		t.Errorf("utilization %v", util)
	}
}

func TestClassedNoSelectionDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		s := NewClassed()
		n := 1 + rng.Intn(10)
		cands := make([]Candidate, n)
		for i := range cands {
			cands[i] = Candidate{ID: job.ID(i + 1), Gang: 1 << rng.Intn(4), Tickets: 1 + float64(rng.Intn(3))}
		}
		capacity := 1 + rng.Intn(16)
		for round := 0; round < 5; round++ {
			sel := s.Select(cands, capacity)
			seen := map[job.ID]bool{}
			usedGPUs := 0
			for _, id := range sel {
				if seen[id] {
					t.Fatalf("trial %d: duplicate selection of %d", trial, id)
				}
				seen[id] = true
				for _, c := range cands {
					if c.ID == id {
						usedGPUs += c.Gang
						s.Charge(id, float64(c.Gang)*60, c.Tickets)
					}
				}
			}
			if usedGPUs > capacity {
				t.Fatalf("trial %d: selected %d GPUs into %d", trial, usedGPUs, capacity)
			}
		}
	}
}
