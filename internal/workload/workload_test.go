package workload

import (
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/simclock"
)

func TestDefaultZoo(t *testing.T) {
	z := DefaultZoo()
	if z.Len() != 12 {
		t.Fatalf("zoo has %d models, want 12", z.Len())
	}
	for _, p := range z.Models() {
		if err := p.Validate(); err != nil {
			t.Errorf("model %s invalid: %v", p.Model, err)
		}
		// Speedups must be monotone across generations (newer ≥ older)
		// and normalized to K80 = 1.
		prev := 0.0
		for _, g := range gpu.Generations() {
			s := p.Speedup(g, gpu.K80)
			if s < prev {
				t.Errorf("%s: speedup not monotone at %v: %v < %v", p.Model, g, s, prev)
			}
			prev = s
		}
		if s := p.Speedup(gpu.K80, gpu.K80); math.Abs(s-1) > 1e-12 {
			t.Errorf("%s: K80 self-speedup = %v", p.Model, s)
		}
	}
}

func TestZooTable1Shape(t *testing.T) {
	// The trading mechanism needs a wide spread of V100 marginal
	// utility: some models ≈1.2×, some ≥4×.
	z := DefaultZoo()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range z.Models() {
		s := p.Speedup(gpu.V100, gpu.K80)
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	if lo > 1.4 {
		t.Errorf("min V100 speedup %v, want a near-1 memory-bound model", lo)
	}
	if hi < 4 {
		t.Errorf("max V100 speedup %v, want a ≥4× compute-bound model", hi)
	}
}

func TestZooLookup(t *testing.T) {
	z := DefaultZoo()
	p, err := z.Get("resnet50")
	if err != nil || p.Model != "resnet50" {
		t.Fatalf("Get(resnet50) = %v, %v", p, err)
	}
	if _, err := z.Get("alexnet"); err == nil {
		t.Error("Get(unknown) succeeded")
	}
	names := z.Names()
	if len(names) != z.Len() {
		t.Fatalf("Names() has %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

func TestNewZooValidation(t *testing.T) {
	if _, err := NewZoo(); err == nil {
		t.Error("empty zoo accepted")
	}
	p := DefaultZoo().MustGet("vae")
	if _, err := NewZoo(p, p); err == nil {
		t.Error("duplicate model accepted")
	}
	bad := &job.Perf{Model: "bad", ScalingEff: 2}
	if _, err := NewZoo(bad); err == nil {
		t.Error("invalid profile accepted")
	}
	z, err := NewZoo(p)
	if err != nil || z.Len() != 1 {
		t.Fatalf("single-model zoo: %v, %v", z, err)
	}
}

func TestSpeedupTable(t *testing.T) {
	z := DefaultZoo()
	rows := z.SpeedupTable()
	if len(rows) != z.Len() {
		t.Fatalf("%d rows, want %d", len(rows), z.Len())
	}
	for _, r := range rows {
		if math.Abs(r.Speedup[gpu.K80]-1) > 1e-12 {
			t.Errorf("%s: K80 column = %v, want 1", r.Model, r.Speedup[gpu.K80])
		}
		if r.Speedup[gpu.V100] <= 1 {
			t.Errorf("%s: V100 column = %v, want >1", r.Model, r.Speedup[gpu.V100])
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	z := DefaultZoo()
	cfg := Config{
		Seed: 7,
		Users: []UserSpec{
			{User: "a", NumJobs: 50, ArrivalRatePerHour: 2},
			{User: "b", NumJobs: 30, ArrivalRatePerHour: 1},
		},
	}
	s1 := MustGenerate(z, cfg)
	s2 := MustGenerate(z, cfg)
	if len(s1) != 80 || len(s2) != 80 {
		t.Fatalf("generated %d, %d jobs, want 80", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("trace not deterministic at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
	s3 := MustGenerate(z, Config{Seed: 8, Users: cfg.Users})
	same := true
	for i := range s1 {
		if s1[i] != s3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateProperties(t *testing.T) {
	z := DefaultZoo()
	specs := MustGenerate(z, Config{
		Seed: 42,
		Users: []UserSpec{
			{User: "u1", NumJobs: 200, ArrivalRatePerHour: 4, MeanK80Hours: 1.5},
			{User: "u2", NumJobs: 100, Models: []string{"vae", "resnet50"}},
		},
	})
	if len(specs) != 300 {
		t.Fatalf("%d specs, want 300", len(specs))
	}
	prevArr := simclock.Time(-1)
	for i, s := range specs {
		if s.ID != job.ID(i+1) {
			t.Fatalf("IDs not dense: spec %d has ID %d", i, s.ID)
		}
		if s.Arrival < prevArr {
			t.Fatalf("arrivals not sorted at %d", i)
		}
		prevArr = s.Arrival
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid generated spec: %v", err)
		}
		if s.User == "u2" {
			if s.Arrival != 0 {
				t.Fatalf("batch user job arrived at %v, want 0", s.Arrival)
			}
			if m := s.Perf.Model; m != "vae" && m != "resnet50" {
				t.Fatalf("u2 got model %s outside its mix", m)
			}
		}
	}
	// Duration clamps: standalone K80 runtime within [0.1h, 48h].
	for _, s := range specs {
		rate := s.Perf.RatePerGPU[gpu.K80] * float64(s.Gang) * s.Perf.GangEff(s.Gang)
		hours := s.TotalMB / rate / simclock.Hour
		if hours < 0.1-1e-9 || hours > 48+1e-9 {
			t.Fatalf("job duration %v hours outside clamp", hours)
		}
	}
}

func TestGenerateGangDistribution(t *testing.T) {
	z := DefaultZoo()
	specs := MustGenerate(z, Config{
		Seed:  1,
		Users: []UserSpec{{User: "u", NumJobs: 5000}},
	})
	counts := map[int]int{}
	for _, s := range specs {
		counts[s.Gang]++
	}
	for _, gw := range PhillyGangDist() {
		frac := float64(counts[gw.Gang]) / 5000
		if math.Abs(frac-gw.Weight) > 0.03 {
			t.Errorf("gang %d frequency %v, want ≈%v", gw.Gang, frac, gw.Weight)
		}
	}
	for g := range counts {
		found := false
		for _, gw := range PhillyGangDist() {
			if gw.Gang == g {
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected gang size %d generated", g)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	z := DefaultZoo()
	cases := []Config{
		{},
		{Users: []UserSpec{{User: "", NumJobs: 1}}},
		{Users: []UserSpec{{User: "u", NumJobs: 0}}},
		{Users: []UserSpec{{User: "u", NumJobs: 1, Models: []string{"nope"}}}},
		{Users: []UserSpec{{User: "u", NumJobs: 1, GangDist: []GangWeight{{Gang: 0, Weight: 1}}}}},
		{Users: []UserSpec{{User: "u", NumJobs: 1, GangDist: []GangWeight{{Gang: 1, Weight: 0}}}}},
		{Users: []UserSpec{{User: "u", NumJobs: 1}}, MinK80Hours: 10, MaxK80Hours: 1},
	}
	for i, cfg := range cases {
		if _, err := Generate(z, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := Generate(nil, Config{Users: []UserSpec{{User: "u", NumJobs: 1}}}); err == nil {
		t.Error("nil zoo accepted")
	}
}

func TestBatchJobsAndAssignIDs(t *testing.T) {
	z := DefaultZoo()
	p := z.MustGet("resnet50")
	specs := BatchJobs("alice", p, 4, 2, 1.0)
	if len(specs) != 4 {
		t.Fatalf("%d specs", len(specs))
	}
	specs = append(specs, BatchJobs("bob", z.MustGet("vae"), 2, 8, 0.5)...)
	specs, err := AssignIDs(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		if s.ID != job.ID(i+1) {
			t.Fatalf("ID %d at index %d", s.ID, i)
		}
	}
	// Standalone runtime check: gang 2 resnet50 for 1 K80-hour.
	j := job.MustNew(specs[0])
	if r := j.RemainingTime(gpu.K80); math.Abs(r-simclock.Hour) > 1e-6 {
		t.Errorf("standalone runtime %v, want 1h", r)
	}
}

func TestAssignIDsRejectsInvalid(t *testing.T) {
	specs := []job.Spec{{User: "", Gang: 1, TotalMB: 1}}
	if _, err := AssignIDs(specs); err == nil {
		t.Error("invalid spec accepted")
	}
}
