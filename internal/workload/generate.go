package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/job"
	"repro/internal/simclock"
)

// GangWeight is one bucket of the gang-size distribution.
type GangWeight struct {
	Gang   int
	Weight float64
}

// PhillyGangDist is the default gang-size mix, shaped like Microsoft's
// Philly trace: single-GPU jobs dominate, with a tail of 2/4/8/16-GPU
// gangs.
func PhillyGangDist() []GangWeight {
	return []GangWeight{
		{Gang: 1, Weight: 0.70},
		{Gang: 2, Weight: 0.10},
		{Gang: 4, Weight: 0.10},
		{Gang: 8, Weight: 0.08},
		{Gang: 16, Weight: 0.02},
	}
}

// UserSpec describes one tenant's workload.
type UserSpec struct {
	User    job.UserID
	Tickets float64 // fair-share weight (informational here; the scheduler consumes it)

	// ArrivalRatePerHour is the Poisson job-arrival rate. Zero means
	// all jobs arrive at time zero (a batch user).
	ArrivalRatePerHour float64

	// NumJobs is the number of jobs to generate for this user.
	NumJobs int

	// Models restricts the user's jobs to these zoo models; empty
	// means the full zoo. Skewing this per user creates the
	// speedup-heterogeneity that the trading mechanism arbitrages.
	Models []string

	// GangDist overrides the gang-size distribution; nil means
	// PhillyGangDist.
	GangDist []GangWeight

	// MeanK80Hours is the mean standalone runtime of a job on K80s
	// (lognormal, heavy-tailed). Zero means the default 2.0 hours.
	MeanK80Hours float64

	// SigmaLog is the lognormal shape parameter. Zero means the
	// default 1.2 (heavy tail, like Philly).
	SigmaLog float64
}

// Config drives trace generation.
type Config struct {
	Users []UserSpec
	Seed  int64

	// MinK80Hours / MaxK80Hours clamp sampled job durations. Zero
	// values default to 0.1 and 48 hours.
	MinK80Hours float64
	MaxK80Hours float64
}

const (
	defaultMeanK80Hours = 2.0
	defaultSigmaLog     = 1.2
)

// Generate produces a deterministic job trace for the config, sorted
// by arrival time with IDs assigned in arrival order.
func Generate(z *Zoo, cfg Config) ([]job.Spec, error) {
	if z == nil || z.Len() == 0 {
		return nil, fmt.Errorf("workload: nil or empty zoo")
	}
	if len(cfg.Users) == 0 {
		return nil, fmt.Errorf("workload: no users")
	}
	minH := cfg.MinK80Hours
	if minH <= 0 {
		minH = 0.1
	}
	maxH := cfg.MaxK80Hours
	if maxH <= 0 {
		maxH = 48
	}
	if maxH < minH {
		return nil, fmt.Errorf("workload: MaxK80Hours %v < MinK80Hours %v", maxH, minH)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var specs []job.Spec
	for _, u := range cfg.Users {
		if u.User == "" {
			return nil, fmt.Errorf("workload: user with empty name")
		}
		if u.NumJobs <= 0 {
			return nil, fmt.Errorf("workload: user %s: NumJobs must be positive", u.User)
		}
		models, err := resolveModels(z, u.Models)
		if err != nil {
			return nil, fmt.Errorf("workload: user %s: %w", u.User, err)
		}
		gangs := u.GangDist
		if gangs == nil {
			gangs = PhillyGangDist()
		}
		if err := validateGangDist(gangs); err != nil {
			return nil, fmt.Errorf("workload: user %s: %w", u.User, err)
		}
		mean := u.MeanK80Hours
		if mean <= 0 {
			mean = defaultMeanK80Hours
		}
		sigma := u.SigmaLog
		if sigma <= 0 {
			sigma = defaultSigmaLog
		}
		// lognormal with E[X] = mean ⇒ mu = ln(mean) − sigma²/2.
		mu := math.Log(mean) - sigma*sigma/2

		arrival := simclock.Time(0)
		for i := 0; i < u.NumJobs; i++ {
			if u.ArrivalRatePerHour > 0 {
				gap := rng.ExpFloat64() / u.ArrivalRatePerHour * simclock.Hour
				arrival = arrival.Add(gap)
			}
			perf := models[rng.Intn(len(models))]
			gang := sampleGang(rng, gangs)
			hours := math.Exp(mu + sigma*rng.NormFloat64())
			hours = math.Min(math.Max(hours, minH), maxH)
			// TotalMB such that the job's standalone runtime on K80s
			// at its gang size is `hours`.
			rate := perf.RatePerGPU[0] * float64(gang) * perf.GangEff(gang) // K80 gang rate
			specs = append(specs, job.Spec{
				User:    u.User,
				Perf:    perf,
				Gang:    gang,
				TotalMB: rate * hours * simclock.Hour,
				Arrival: arrival,
			})
		}
	}

	sort.SliceStable(specs, func(i, j int) bool { return specs[i].Arrival < specs[j].Arrival })
	for i := range specs {
		specs[i].ID = job.ID(i + 1)
		if err := specs[i].Validate(); err != nil {
			return nil, fmt.Errorf("workload: generated invalid spec: %w", err)
		}
	}
	return specs, nil
}

// MustGenerate is Generate but panics on error; for fixtures.
func MustGenerate(z *Zoo, cfg Config) []job.Spec {
	specs, err := Generate(z, cfg)
	if err != nil {
		panic(err)
	}
	return specs
}

func resolveModels(z *Zoo, names []string) ([]*job.Perf, error) {
	if len(names) == 0 {
		return z.Models(), nil
	}
	out := make([]*job.Perf, 0, len(names))
	for _, n := range names {
		p, err := z.Get(n)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func validateGangDist(gw []GangWeight) error {
	var sum float64
	for _, g := range gw {
		if g.Gang <= 0 {
			return fmt.Errorf("gang size %d must be positive", g.Gang)
		}
		if g.Weight < 0 {
			return fmt.Errorf("negative gang weight")
		}
		sum += g.Weight
	}
	if sum <= 0 {
		return fmt.Errorf("gang distribution has zero total weight")
	}
	return nil
}

func sampleGang(rng *rand.Rand, gw []GangWeight) int {
	var sum float64
	for _, g := range gw {
		sum += g.Weight
	}
	x := rng.Float64() * sum
	for _, g := range gw {
		x -= g.Weight
		if x < 0 {
			return g.Gang
		}
	}
	return gw[len(gw)-1].Gang
}

// BatchJobs is a convenience for experiments: n identical jobs for one
// user, all arriving at time zero, each sized to run standalone for
// k80Hours on K80s at the given gang size.
func BatchJobs(user job.UserID, perf *job.Perf, n, gang int, k80Hours float64) []job.Spec {
	specs := make([]job.Spec, n)
	rate := perf.RatePerGPU[0] * float64(gang) * perf.GangEff(gang)
	for i := range specs {
		specs[i] = job.Spec{
			User:    user,
			Perf:    perf,
			Gang:    gang,
			TotalMB: rate * k80Hours * simclock.Hour,
		}
	}
	return specs
}

// AssignIDs renumbers a spec slice 1..n in place (after concatenating
// hand-built batches) and validates each spec.
func AssignIDs(specs []job.Spec) ([]job.Spec, error) {
	for i := range specs {
		specs[i].ID = job.ID(i + 1)
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
	}
	return specs, nil
}
