// Package workload provides the model zoo (per-model performance
// profiles across GPU generations, shaped like the paper's Table 1)
// and a synthetic multi-user trace generator with Philly-like
// distributions.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/gpu"
	"repro/internal/job"
)

// zooEntry is the compact literal form of a model profile. Speedups
// are relative to K80 = 1.0 (the paper's Table 1 normalization).
type zooEntry struct {
	name       string
	baseRate   float64 // minibatches/sec on one K80
	p40        float64 // speedup over K80
	p100       float64
	v100       float64
	scalingEff float64
	memGB      float64
	ckptMB     float64
}

// defaultEntries reproduces the shape of the paper's Table 1: the
// marginal utility of newer GPUs varies widely across models —
// memory-bound models (VAE, SuperResolution) gain almost nothing from
// a V100 (~1.2×), while compute-dense models (ResNeXt, Transformer)
// gain 4–6×. Absolute rates are calibrated so typical jobs take
// hours, matching Philly-scale durations.
//
// These are synthetic calibration values (the paper's exact cell
// values are not reproduced from the text); only the spread and
// ordering matter to the scheduler, and those follow the paper.
var defaultEntries = []zooEntry{
	{"vae", 20.0, 1.10, 1.16, 1.22, 0.97, 1.5, 15},
	{"superres", 12.0, 1.18, 1.30, 1.49, 0.96, 3.0, 60},
	{"dcgan", 8.0, 1.32, 1.58, 2.35, 0.94, 4.0, 110},
	{"pix2pix", 6.0, 1.40, 1.76, 2.60, 0.93, 5.0, 210},
	{"cyclegan", 4.0, 1.48, 1.95, 3.10, 0.92, 7.5, 260},
	{"lstm", 10.0, 1.37, 1.73, 2.22, 0.90, 4.5, 190},
	{"gru", 11.0, 1.42, 1.81, 2.46, 0.90, 4.0, 170},
	{"resnet50", 5.0, 1.75, 2.36, 3.54, 0.92, 9.0, 100},
	{"resnext50", 3.5, 1.98, 2.75, 4.46, 0.92, 10.0, 100},
	{"densenet121", 4.2, 1.86, 2.52, 3.72, 0.91, 9.5, 32},
	{"squeezenet", 14.0, 1.28, 1.66, 2.16, 0.95, 2.5, 5},
	{"transformer", 2.8, 2.15, 3.05, 5.20, 0.89, 11.0, 480},
}

// Zoo is an immutable catalog of model performance profiles.
type Zoo struct {
	models []*job.Perf
	byName map[string]*job.Perf
}

// DefaultZoo returns the repository's standard 12-model zoo.
func DefaultZoo() *Zoo {
	z := &Zoo{byName: make(map[string]*job.Perf)}
	for _, e := range defaultEntries {
		p := &job.Perf{
			Model:        e.name,
			ScalingEff:   e.scalingEff,
			MemGBPerGPU:  e.memGB,
			CheckpointMB: e.ckptMB,
		}
		p.RatePerGPU[gpu.K80] = e.baseRate
		p.RatePerGPU[gpu.P40] = e.baseRate * e.p40
		p.RatePerGPU[gpu.P100] = e.baseRate * e.p100
		p.RatePerGPU[gpu.V100] = e.baseRate * e.v100
		if err := p.Validate(); err != nil {
			panic(fmt.Sprintf("workload: bad zoo entry: %v", err))
		}
		z.models = append(z.models, p)
		z.byName[e.name] = p
	}
	return z
}

// NewZoo builds a zoo from caller-supplied profiles (validated).
func NewZoo(profiles ...*job.Perf) (*Zoo, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("workload: empty zoo")
	}
	z := &Zoo{byName: make(map[string]*job.Perf, len(profiles))}
	for _, p := range profiles {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if _, dup := z.byName[p.Model]; dup {
			return nil, fmt.Errorf("workload: duplicate model %q", p.Model)
		}
		z.models = append(z.models, p)
		z.byName[p.Model] = p
	}
	return z, nil
}

// Get returns the profile for a model name.
func (z *Zoo) Get(name string) (*job.Perf, error) {
	p, ok := z.byName[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown model %q", name)
	}
	return p, nil
}

// MustGet is Get but panics on unknown names; for fixtures.
func (z *Zoo) MustGet(name string) *job.Perf {
	p, err := z.Get(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Models returns all profiles in catalog order. Do not mutate.
func (z *Zoo) Models() []*job.Perf { return z.models }

// Names returns the model names sorted ascending.
func (z *Zoo) Names() []string {
	names := make([]string, 0, len(z.byName))
	for n := range z.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of models.
func (z *Zoo) Len() int { return len(z.models) }

// SpeedupTable returns, for each model, the speedup over K80 on each
// generation — the data behind the paper's Table 1. Rows follow
// catalog order; columns follow gpu.Generations().
func (z *Zoo) SpeedupTable() []SpeedupRow {
	rows := make([]SpeedupRow, 0, len(z.models))
	for _, p := range z.models {
		r := SpeedupRow{Model: p.Model}
		for _, g := range gpu.Generations() {
			r.Speedup[g] = p.Speedup(g, gpu.K80)
		}
		rows = append(rows, r)
	}
	return rows
}

// SpeedupRow is one row of the Table-1-style speedup matrix.
type SpeedupRow struct {
	Model   string
	Speedup [gpu.NumGenerations]float64
}
