package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/job"
	"repro/internal/simclock"
)

// csvHeader is the trace file schema, stable across tools.
var csvHeader = []string{"id", "user", "model", "gang", "total_minibatches", "arrival_seconds"}

// WriteCSV serializes a job trace. The format round-trips through
// ReadCSV given the same zoo (per-model performance profiles are
// referenced by name, not embedded).
func WriteCSV(w io.Writer, specs []job.Spec) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	for _, s := range specs {
		rec := []string{
			strconv.FormatInt(int64(s.ID), 10),
			string(s.User),
			s.Perf.Model,
			strconv.Itoa(s.Gang),
			strconv.FormatFloat(s.TotalMB, 'g', -1, 64),
			strconv.FormatFloat(float64(s.Arrival), 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	return nil
}

// ReadCSV parses a trace written by WriteCSV, resolving model names
// against the zoo and validating every spec.
func ReadCSV(r io.Reader, z *Zoo) ([]job.Spec, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: empty trace file")
	}
	for i, col := range csvHeader {
		if rows[0][i] != col {
			return nil, fmt.Errorf("workload: bad trace header: column %d is %q, want %q", i, rows[0][i], col)
		}
	}
	specs := make([]job.Spec, 0, len(rows)-1)
	for n, row := range rows[1:] {
		line := n + 2
		id, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad id %q", line, row[0])
		}
		perf, err := z.Get(row[2])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		gang, err := strconv.Atoi(row[3])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad gang %q", line, row[3])
		}
		total, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad total_minibatches %q", line, row[4])
		}
		arrival, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad arrival %q", line, row[5])
		}
		spec := job.Spec{
			ID:      job.ID(id),
			User:    job.UserID(row[1]),
			Perf:    perf,
			Gang:    gang,
			TotalMB: total,
			Arrival: simclock.Time(arrival),
		}
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}
