package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/job"
)

func TestCSVRoundTrip(t *testing.T) {
	z := DefaultZoo()
	specs := MustGenerate(z, Config{
		Seed: 5,
		Users: []UserSpec{
			{User: "a", NumJobs: 30, ArrivalRatePerHour: 2},
			{User: "b", NumJobs: 20},
		},
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, specs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, z)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(specs) {
		t.Fatalf("round trip lost jobs: %d → %d", len(specs), len(got))
	}
	for i := range specs {
		if got[i] != specs[i] {
			t.Fatalf("spec %d differs:\n  want %+v\n  got  %+v", i, specs[i], got[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	z := DefaultZoo()
	cases := map[string]string{
		"empty":       "",
		"bad header":  "id,user,nope,gang,total_minibatches,arrival_seconds\n",
		"bad id":      "id,user,model,gang,total_minibatches,arrival_seconds\nx,a,vae,1,10,0\n",
		"bad model":   "id,user,model,gang,total_minibatches,arrival_seconds\n1,a,nope,1,10,0\n",
		"bad gang":    "id,user,model,gang,total_minibatches,arrival_seconds\n1,a,vae,x,10,0\n",
		"bad total":   "id,user,model,gang,total_minibatches,arrival_seconds\n1,a,vae,1,x,0\n",
		"bad arrival": "id,user,model,gang,total_minibatches,arrival_seconds\n1,a,vae,1,10,x\n",
		"invalid":     "id,user,model,gang,total_minibatches,arrival_seconds\n1,,vae,1,10,0\n",
		"short row":   "id,user,model,gang,total_minibatches,arrival_seconds\n1,a,vae\n",
	}
	for name, body := range cases {
		if _, err := ReadCSV(strings.NewReader(body), z); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadCSVMinimal(t *testing.T) {
	z := DefaultZoo()
	body := "id,user,model,gang,total_minibatches,arrival_seconds\n" +
		"7,alice,resnet50,2,3600,120.5\n"
	specs, err := ReadCSV(strings.NewReader(body), z)
	if err != nil {
		t.Fatal(err)
	}
	s := specs[0]
	if s.ID != 7 || s.User != "alice" || s.Perf.Model != "resnet50" ||
		s.Gang != 2 || s.TotalMB != 3600 || s.Arrival != 120.5 {
		t.Fatalf("parsed %+v", s)
	}
}

// TestWriteCSVGoldenRoundTrip pins the exact serialized bytes —
// including a non-ASCII user ID and a zero arrival time — then parses
// them back and requires spec equality. Any format drift (header
// order, float formatting, quoting) breaks this test on purpose:
// traces on disk must stay readable by future versions.
func TestWriteCSVGoldenRoundTrip(t *testing.T) {
	z := DefaultZoo()
	specs := []job.Spec{
		{ID: 1, User: "björk-研究室", Perf: z.MustGet("vae"), Gang: 1, TotalMB: 1000, Arrival: 0},
		{ID: 2, User: "ω-lab", Perf: z.MustGet("resnet50"), Gang: 4, TotalMB: 2.5e6, Arrival: 7200},
		{ID: 3, User: "plain", Perf: z.MustGet("gru"), Gang: 2, TotalMB: 360.25, Arrival: 90.5},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, specs); err != nil {
		t.Fatal(err)
	}
	golden := "id,user,model,gang,total_minibatches,arrival_seconds\n" +
		"1,björk-研究室,vae,1,1000,0\n" +
		"2,ω-lab,resnet50,4,2.5e+06,7200\n" +
		"3,plain,gru,2,360.25,90.5\n"
	if buf.String() != golden {
		t.Fatalf("serialized bytes drifted:\n got: %q\nwant: %q", buf.String(), golden)
	}
	got, err := ReadCSV(bytes.NewReader(buf.Bytes()), z)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(specs) {
		t.Fatalf("round-trip returned %d specs, want %d", len(got), len(specs))
	}
	for i := range specs {
		if got[i] != specs[i] {
			t.Errorf("spec %d: %+v → %+v", i, specs[i], got[i])
		}
	}
}
