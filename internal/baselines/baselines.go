// Package baselines implements the comparison schedulers the paper
// evaluates Gandiva_fair against, behind the same core.Policy
// interface so every policy runs on the identical simulated
// substrate:
//
//   - Tiresias-L: discretized two-dimensional least-attained-service.
//     Job-level service fairness, no user-level guarantee — the
//     paper's fairness comparison target.
//   - Gandiva-RR: Gandiva-style efficiency-only round-robin
//     time-slicing (every job gets slices in turn, regardless of
//     owner or gang width).
//   - Static quota: each user owns a fixed partition sized by
//     tickets. Fair but not work-conserving.
//   - FIFO: arrival order with gang-aware backfill — the cluster
//     default the intro motivates against.
//
// All baselines are heterogeneity-blind: they treat a free GPU as a
// free GPU, preferring newer generations and the job's previous
// generation (to avoid gratuitous migrations), but never reason about
// per-model marginal utility.
package baselines

import (
	"sort"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/placement"
)

// fill assigns jobs, in the given priority order, to generations with
// remaining capacity: the job's previous generation first (no
// migration), then newest to oldest. Jobs that fit nowhere are
// skipped (gang-aware backfill).
func fill(ordered []*job.Job, st *core.RoundState) []placement.Request {
	caps := st.CapacityByGen()
	remaining := make(map[gpu.Generation]int, len(caps))
	gens := make([]gpu.Generation, 0, len(caps))
	for g, c := range caps {
		remaining[g] = c
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })

	var run []placement.Request
	for _, j := range ordered {
		g, ok := pickGen(j, st.PrevGen, gens, remaining)
		if !ok {
			continue
		}
		remaining[g] -= j.Gang
		run = append(run, placement.Request{Job: j, Gen: g})
	}
	return run
}

func pickGen(j *job.Job, prevGen map[job.ID]gpu.Generation, gens []gpu.Generation, remaining map[gpu.Generation]int) (gpu.Generation, bool) {
	if prev, ok := prevGen[j.ID]; ok && j.Perf.FitsOn(prev) && remaining[prev] >= j.Gang {
		return prev, true
	}
	for _, g := range gens {
		if j.Perf.FitsOn(g) && remaining[g] >= j.Gang {
			return g, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Tiresias-L

// TiresiasConfig tunes the discretized 2D-LAS queues.
type TiresiasConfig struct {
	// QueueThresholds are attained-service boundaries in
	// gang-GPU-seconds; a job with attained service below
	// Thresholds[i] sits in queue i (lower queue = higher priority).
	// Nil means the defaults {1, 4, 16} GPU-hours.
	QueueThresholds []float64
}

// Tiresias implements Tiresias-L: jobs are prioritized by discretized
// least attained service (gang × time), FIFO within a queue. It is
// preemptive at quantum boundaries and entirely job-centric: a user
// who submits more jobs simply owns more of the cluster, which is
// exactly the unfairness Gandiva_fair's evaluation demonstrates.
type Tiresias struct {
	thresholds []float64
}

// NewTiresias constructs the baseline.
func NewTiresias(cfg TiresiasConfig) *Tiresias {
	th := cfg.QueueThresholds
	if th == nil {
		th = []float64{1 * 3600, 4 * 3600, 16 * 3600}
	}
	sort.Float64s(th)
	return &Tiresias{thresholds: th}
}

// Name implements core.Policy.
func (t *Tiresias) Name() string { return "tiresias-l" }

func (t *Tiresias) queueOf(attained float64) int {
	for i, th := range t.thresholds {
		if attained < th {
			return i
		}
	}
	return len(t.thresholds)
}

// Decide implements core.Policy.
func (t *Tiresias) Decide(st *core.RoundState) core.Decision {
	ordered := make([]*job.Job, len(st.Jobs))
	copy(ordered, st.Jobs)
	sort.SliceStable(ordered, func(i, k int) bool {
		qi, qk := t.queueOf(ordered[i].AttainedService()), t.queueOf(ordered[k].AttainedService())
		if qi != qk {
			return qi < qk
		}
		if ordered[i].Arrival != ordered[k].Arrival {
			return ordered[i].Arrival < ordered[k].Arrival
		}
		return ordered[i].ID < ordered[k].ID
	})
	return core.Decision{Run: fill(ordered, st)}
}

// Executed implements core.Policy (Tiresias reads attained service
// straight off the jobs; nothing to account).
func (t *Tiresias) Executed(*core.ExecReport) {}

// JobFinished implements core.Policy.
func (t *Tiresias) JobFinished(job.ID) {}

// ---------------------------------------------------------------------------
// Gandiva-RR

// GandivaRR is Gandiva without fairness: round-robin time-slicing at
// job granularity. Every runnable job receives scheduling rounds in
// turn (tracked by a per-job rounds-served counter), maximizing
// utilization and time-slicing overhead amortization but providing no
// user-level guarantee at all.
type GandivaRR struct {
	served map[job.ID]int
}

// NewGandivaRR constructs the baseline.
func NewGandivaRR() *GandivaRR {
	return &GandivaRR{served: make(map[job.ID]int)}
}

// Name implements core.Policy.
func (g *GandivaRR) Name() string { return "gandiva-rr" }

// Decide implements core.Policy.
func (g *GandivaRR) Decide(st *core.RoundState) core.Decision {
	// Join rule mirrors stride: newcomers start at the current
	// minimum so they neither monopolize nor starve.
	min := 0
	found := false
	for _, j := range st.Jobs {
		if n, ok := g.served[j.ID]; ok && (!found || n < min) {
			min, found = n, true
		}
	}
	for _, j := range st.Jobs {
		if _, ok := g.served[j.ID]; !ok {
			g.served[j.ID] = min
		}
	}
	ordered := make([]*job.Job, len(st.Jobs))
	copy(ordered, st.Jobs)
	sort.SliceStable(ordered, func(i, k int) bool {
		ni, nk := g.served[ordered[i].ID], g.served[ordered[k].ID]
		if ni != nk {
			return ni < nk
		}
		return ordered[i].ID < ordered[k].ID
	})
	return core.Decision{Run: fill(ordered, st)}
}

// Executed implements core.Policy.
func (g *GandivaRR) Executed(rep *core.ExecReport) {
	for id := range rep.Ran {
		g.served[id]++
	}
}

// JobFinished implements core.Policy.
func (g *GandivaRR) JobFinished(id job.ID) { delete(g.served, id) }

// ---------------------------------------------------------------------------
// Static quota

// StaticQuota partitions every generation among all known users in
// ticket proportion, permanently. Each user schedules their own jobs
// (least attained service first) strictly inside their partition:
// perfectly fair, but idle partitions are never lent out, so cluster
// efficiency collapses when demand is uneven — the paper's motivation
// for sharing.
type StaticQuota struct {
	users []job.UserID // fixed at construction: quota holders
}

// NewStaticQuota constructs the baseline for a fixed user population
// (static partitioning cannot react to arrivals by design).
func NewStaticQuota(users []job.UserID) *StaticQuota {
	us := make([]job.UserID, len(users))
	copy(us, users)
	sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
	return &StaticQuota{users: us}
}

// Name implements core.Policy.
func (s *StaticQuota) Name() string { return "static-quota" }

// Decide implements core.Policy.
func (s *StaticQuota) Decide(st *core.RoundState) core.Decision {
	if len(s.users) == 0 {
		return core.Decision{}
	}
	// Per-generation quota: largest-remainder split of capacity by
	// tickets over the fixed user set.
	caps := st.CapacityByGen()
	quota := make(map[job.UserID]map[gpu.Generation]int, len(s.users))
	for _, u := range s.users {
		quota[u] = make(map[gpu.Generation]int, len(caps))
	}
	var ticketSum float64
	for _, u := range s.users {
		tk := st.Tickets[u]
		if tk <= 0 {
			tk = 1
		}
		ticketSum += tk
	}
	for g, c := range caps {
		type rem struct {
			u    job.UserID
			frac float64
		}
		var rems []rem
		assigned := 0
		for _, u := range s.users {
			tk := st.Tickets[u]
			if tk <= 0 {
				tk = 1
			}
			exact := float64(c) * tk / ticketSum
			n := int(exact)
			quota[u][g] = n
			assigned += n
			rems = append(rems, rem{u, exact - float64(n)})
		}
		sort.SliceStable(rems, func(i, j int) bool {
			if rems[i].frac != rems[j].frac {
				return rems[i].frac > rems[j].frac
			}
			return rems[i].u < rems[j].u
		})
		for i := 0; assigned < c && i < len(rems); i++ {
			quota[rems[i].u][g]++
			assigned++
		}
	}

	byUser := make(map[job.UserID][]*job.Job)
	for _, j := range st.Jobs {
		byUser[j.User] = append(byUser[j.User], j)
	}
	var run []placement.Request
	gens := make([]gpu.Generation, 0, len(caps))
	for g := range caps {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for _, u := range s.users {
		js := byUser[u]
		sort.SliceStable(js, func(i, k int) bool {
			ai, ak := js[i].AttainedService(), js[k].AttainedService()
			if ai != ak {
				return ai < ak
			}
			return js[i].ID < js[k].ID
		})
		remaining := quota[u]
		for _, j := range js {
			g, ok := pickGen(j, st.PrevGen, gens, remaining)
			if !ok {
				continue
			}
			remaining[g] -= j.Gang
			run = append(run, placement.Request{Job: j, Gen: g})
		}
	}
	return core.Decision{Run: run}
}

// Executed implements core.Policy.
func (s *StaticQuota) Executed(*core.ExecReport) {}

// JobFinished implements core.Policy.
func (s *StaticQuota) JobFinished(job.ID) {}

// ---------------------------------------------------------------------------
// FIFO

// FIFO runs jobs in arrival order with gang-aware backfill and no
// preemption pressure: once running, a job keeps its GPUs until it
// finishes (it always sorts ahead of anything that arrived later).
type FIFO struct{}

// NewFIFO constructs the baseline.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements core.Policy.
func (f *FIFO) Name() string { return "fifo" }

// Decide implements core.Policy.
func (f *FIFO) Decide(st *core.RoundState) core.Decision {
	ordered := make([]*job.Job, len(st.Jobs))
	copy(ordered, st.Jobs)
	sort.SliceStable(ordered, func(i, k int) bool {
		if ordered[i].Arrival != ordered[k].Arrival {
			return ordered[i].Arrival < ordered[k].Arrival
		}
		return ordered[i].ID < ordered[k].ID
	})
	return core.Decision{Run: fill(ordered, st)}
}

// Executed implements core.Policy.
func (f *FIFO) Executed(*core.ExecReport) {}

// JobFinished implements core.Policy.
func (f *FIFO) JobFinished(job.ID) {}
