package baselines

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/workload"
)

var zoo = workload.DefaultZoo()

func k80Cluster(servers, gpus int) *gpu.Cluster {
	return gpu.MustNew(gpu.Spec{Gen: gpu.K80, Servers: servers, GPUsPerSrv: gpus})
}

func run(t *testing.T, cfg core.Config, p core.Policy, until simclock.Time) *core.Result {
	t.Helper()
	sim, err := core.New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(until)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// skewedSpecs: user "many" floods 12 jobs, user "few" has 4, all
// identical 1-GPU long jobs.
func skewedSpecs() []job.Spec {
	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("many", zoo.MustGet("lstm"), 12, 1, 300)...)
	specs = append(specs, workload.BatchJobs("few", zoo.MustGet("lstm"), 4, 1, 300)...)
	specs, _ = workload.AssignIDs(specs)
	return specs
}

func TestTiresiasJobLevelNotUserLevel(t *testing.T) {
	// With identical jobs, Tiresias-L equalizes per-JOB service, so
	// the user with 3× the jobs gets ≈3× the GPU time — the paper's
	// core unfairness demonstration.
	res := run(t, core.Config{Cluster: k80Cluster(2, 4), Specs: skewedSpecs(), Seed: 1},
		NewTiresias(TiresiasConfig{}), simclock.Time(12*simclock.Hour))
	sh := metrics.ShareFractions(res.TotalUsageByUser())
	// Job-count proportionality predicts ≈0.75; within-queue FIFO tie
	// breaking skews it further toward the flooder. Either way, far
	// from the 0.5 a user-level fair scheduler delivers.
	if sh["many"] < 0.70 {
		t.Fatalf("tiresias shares = %v, want many ≥ 0.70 (job-level unfairness)", sh)
	}
	if res.Utilization.Fraction() < 0.9 {
		t.Errorf("utilization %v", res.Utilization.Fraction())
	}
}

func TestTiresiasPrioritizesYoungJobs(t *testing.T) {
	// A newly arrived job must preempt long-served ones immediately
	// (LAS), giving it a short JCT even on a busy cluster.
	specs := workload.BatchJobs("u", zoo.MustGet("gru"), 4, 1, 100)
	late := workload.BatchJobs("u", zoo.MustGet("gru"), 1, 1, 0.25)
	late[0].Arrival = simclock.Time(4 * simclock.Hour)
	specs = append(specs, late...)
	specs, _ = workload.AssignIDs(specs)
	res := run(t, core.Config{Cluster: k80Cluster(1, 2), Specs: specs, Seed: 2},
		NewTiresias(TiresiasConfig{}), simclock.Time(12*simclock.Hour))
	var lateJCT float64 = -1
	for _, j := range res.Finished {
		if j.TotalMB < 1000*3600 { // the short one
			lateJCT = j.JCT()
		}
	}
	if lateJCT < 0 {
		t.Fatal("short late job did not finish")
	}
	if lateJCT > 2*simclock.Hour {
		t.Errorf("late short job JCT = %v, want fast LAS service", lateJCT)
	}
}

func TestGandivaRREqualRounds(t *testing.T) {
	// RR equalizes rounds per job; with equal 1-GPU jobs that is also
	// equal GPU time per job (so per-user ∝ job count).
	res := run(t, core.Config{Cluster: k80Cluster(2, 4), Specs: skewedSpecs(), Seed: 3},
		NewGandivaRR(), simclock.Time(12*simclock.Hour))
	sh := metrics.ShareFractions(res.TotalUsageByUser())
	if math.Abs(sh["many"]-0.75) > 0.06 {
		t.Fatalf("gandiva-rr shares = %v, want many≈0.75", sh)
	}
	if res.Utilization.Fraction() < 0.9 {
		t.Errorf("utilization %v", res.Utilization.Fraction())
	}
}

func TestStaticQuotaFairButNotWorkConserving(t *testing.T) {
	// few's partition sits idle once its jobs finish... here: "few"
	// has NO jobs at all, so half the cluster idles while "many" is
	// backlogged — the efficiency cost of static partitioning.
	specs := workload.BatchJobs("many", zoo.MustGet("lstm"), 12, 1, 300)
	specs, _ = workload.AssignIDs(specs)
	pol := NewStaticQuota([]job.UserID{"many", "ghost"})
	res := run(t, core.Config{Cluster: k80Cluster(2, 4), Specs: specs, Seed: 4},
		pol, simclock.Time(12*simclock.Hour))
	if u := res.Utilization.Fraction(); u > 0.55 {
		t.Fatalf("static quota utilization %v, want ≈0.5 (ghost partition idles)", u)
	}
	// And with both users active, shares are fair.
	res2 := run(t, core.Config{Cluster: k80Cluster(2, 4), Specs: skewedSpecs(), Seed: 5},
		NewStaticQuota([]job.UserID{"many", "few"}), simclock.Time(12*simclock.Hour))
	sh := metrics.ShareFractions(res2.TotalUsageByUser())
	if math.Abs(sh["many"]-0.5) > 0.05 {
		t.Fatalf("static quota shares = %v, want 0.5 each", sh)
	}
}

func TestStaticQuotaTicketProportion(t *testing.T) {
	// Both users fully backlogged (12 jobs each) so quotas bind.
	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("many", zoo.MustGet("lstm"), 12, 1, 300)...)
	specs = append(specs, workload.BatchJobs("few", zoo.MustGet("lstm"), 12, 1, 300)...)
	specs, _ = workload.AssignIDs(specs)
	res := run(t, core.Config{
		Cluster: k80Cluster(2, 4),
		Specs:   specs,
		Tickets: map[job.UserID]float64{"many": 1, "few": 3},
		Seed:    6,
	}, NewStaticQuota([]job.UserID{"many", "few"}), simclock.Time(12*simclock.Hour))
	sh := metrics.ShareFractions(res.TotalUsageByUser())
	if math.Abs(sh["few"]-0.75) > 0.05 {
		t.Fatalf("shares = %v, want few≈0.75", sh)
	}
}

func TestFIFOArrivalOrder(t *testing.T) {
	// Two 2-GPU jobs on 2 GPUs: strictly sequential completion in
	// arrival order.
	specs := workload.BatchJobs("u", zoo.MustGet("dcgan"), 2, 2, 1)
	specs[1].Arrival = 10
	specs, _ = workload.AssignIDs(specs)
	res := run(t, core.Config{Cluster: k80Cluster(1, 2), Specs: specs, Seed: 7},
		NewFIFO(), simclock.Time(6*simclock.Hour))
	if len(res.Finished) != 2 {
		t.Fatalf("finished %d", len(res.Finished))
	}
	if res.Finished[0].ID != 1 || res.Finished[1].ID != 2 {
		t.Fatalf("completion order %d, %d; want 1, 2", res.Finished[0].ID, res.Finished[1].ID)
	}
	// Second job's JCT ≈ 2× standalone (waits for the first).
	if jct := res.Finished[1].JCT(); jct < 1.8*simclock.Hour {
		t.Errorf("second job JCT %v, want ≈2h (waited)", jct)
	}
}

func TestFIFOBackfillsAroundBigGang(t *testing.T) {
	// First arrival needs 4 GPUs on a 2-GPU cluster... impossible —
	// use: big job 4 GPUs arrives first on 4-GPU cluster, then two
	// 1-GPU jobs. While the big job runs nothing fits; after it
	// completes the small ones run. But if the big job arrives SECOND
	// on a busy cluster, smaller later arrivals must backfill the
	// leftover GPUs instead of head-of-line blocking.
	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("u", zoo.MustGet("lstm"), 1, 2, 3)...) // occupies 2 of 4
	specs = append(specs, workload.BatchJobs("u", zoo.MustGet("lstm"), 1, 4, 1)...) // can't fit yet
	specs = append(specs, workload.BatchJobs("u", zoo.MustGet("lstm"), 2, 1, 0.5)...)
	specs[1].Arrival = 10
	specs[2].Arrival = 20
	specs[3].Arrival = 30
	specs, _ = workload.AssignIDs(specs)
	res := run(t, core.Config{Cluster: k80Cluster(1, 4), Specs: specs, Seed: 8},
		NewFIFO(), simclock.Time(12*simclock.Hour))
	if len(res.Finished) != 4 {
		t.Fatalf("finished %d of 4", len(res.Finished))
	}
	// The two 1-GPU jobs (IDs 3, 4) must finish before the 4-GPU job
	// (ID 2): they backfilled the idle pair of GPUs.
	finishOf := map[job.ID]simclock.Time{}
	for _, j := range res.Finished {
		finishOf[j.ID] = j.FinishTime()
	}
	if !(finishOf[3] < finishOf[2] && finishOf[4] < finishOf[2]) {
		t.Errorf("backfill failed: finish times %v", finishOf)
	}
}

func TestAllBaselinesRunOnHeterogeneousCluster(t *testing.T) {
	cluster := gpu.MustNew(
		gpu.Spec{Gen: gpu.K80, Servers: 2, GPUsPerSrv: 4},
		gpu.Spec{Gen: gpu.V100, Servers: 1, GPUsPerSrv: 4},
	)
	specs := workload.MustGenerate(zoo, workload.Config{
		Seed: 9,
		Users: []workload.UserSpec{
			{User: "a", NumJobs: 15, ArrivalRatePerHour: 3, GangDist: []workload.GangWeight{{Gang: 1, Weight: 0.8}, {Gang: 2, Weight: 0.2}}},
			{User: "b", NumJobs: 15, ArrivalRatePerHour: 3, GangDist: []workload.GangWeight{{Gang: 1, Weight: 0.8}, {Gang: 4, Weight: 0.2}}},
		},
		MaxK80Hours: 4,
	})
	policies := []core.Policy{
		NewTiresias(TiresiasConfig{}),
		NewGandivaRR(),
		NewStaticQuota([]job.UserID{"a", "b"}),
		NewFIFO(),
	}
	for _, p := range policies {
		res := run(t, core.Config{Cluster: cluster, Specs: specs, Seed: 9}, p,
			simclock.Time(2*simclock.Day))
		if len(res.Finished) == 0 {
			t.Errorf("%s finished no jobs", p.Name())
		}
		if res.Unfinished > 0 && res.End < simclock.Time(2*simclock.Day) {
			t.Errorf("%s stopped early with %d unfinished", p.Name(), res.Unfinished)
		}
	}
}

// TestFuzzBaselineInvariants runs random scenarios (churn, failures,
// mixed gangs) through every baseline and checks the engine-level
// invariants hold for them too — the Policy contract is shared.
func TestFuzzBaselineInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 12; trial++ {
		cluster := gpu.MustNew(
			gpu.Spec{Gen: gpu.K80, Servers: 1 + rng.Intn(3), GPUsPerSrv: 2 + rng.Intn(3)},
			gpu.Spec{Gen: gpu.V100, Servers: 1 + rng.Intn(2), GPUsPerSrv: 2 + rng.Intn(3)},
		)
		maxGang := cluster.Capacity(gpu.K80)
		if c := cluster.Capacity(gpu.V100); c > maxGang {
			maxGang = c
		}
		users := []job.UserID{"a", "b", "c"}
		var us []workload.UserSpec
		for _, u := range users {
			us = append(us, workload.UserSpec{
				User: u, NumJobs: 2 + rng.Intn(8), ArrivalRatePerHour: float64(rng.Intn(4)),
				MeanK80Hours: 0.5 + rng.Float64()*2,
				GangDist: []workload.GangWeight{
					{Gang: 1, Weight: 0.7},
					{Gang: 1 + rng.Intn(maxGang), Weight: 0.3},
				},
			})
		}
		specs := workload.MustGenerate(zoo, workload.Config{Seed: int64(trial), Users: us, MaxK80Hours: 4})
		cfg := core.Config{Cluster: cluster, Specs: specs, Seed: int64(trial)}
		if rng.Intn(2) == 0 {
			cfg.Failures = []core.Failure{{
				Server:   gpu.ServerID(rng.Intn(cluster.NumServers())),
				At:       simclock.Time(rng.Intn(8) * 3600),
				Duration: simclock.Hour,
			}}
		}
		policies := []core.Policy{
			NewTiresias(TiresiasConfig{}),
			NewGandivaRR(),
			NewStaticQuota(users),
			NewFIFO(),
		}
		for _, p := range policies {
			res := run(t, cfg, p, simclock.Time(2*simclock.Day))
			if len(res.Finished)+res.Unfinished != len(specs) {
				t.Fatalf("trial %d %s: job conservation broken: %d+%d != %d",
					trial, p.Name(), len(res.Finished), res.Unfinished, len(specs))
			}
			if res.Utilization.Fraction() > 1+1e-9 {
				t.Fatalf("trial %d %s: utilization %v > 1", trial, p.Name(), res.Utilization.Fraction())
			}
			occupied := res.TotalUsageByUser()
			for u, useful := range res.UsefulByUser {
				if useful > occupied[u]+1e-6 {
					t.Fatalf("trial %d %s: useful %v > occupied %v for %s",
						trial, p.Name(), useful, occupied[u], u)
				}
			}
		}
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]core.Policy{
		"tiresias-l":   NewTiresias(TiresiasConfig{}),
		"gandiva-rr":   NewGandivaRR(),
		"static-quota": NewStaticQuota(nil),
		"fifo":         NewFIFO(),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
}

func TestTiresiasQueueOf(t *testing.T) {
	tr := NewTiresias(TiresiasConfig{QueueThresholds: []float64{10, 100}})
	cases := map[float64]int{0: 0, 9.9: 0, 10: 1, 99: 1, 100: 2, 1e9: 2}
	for att, want := range cases {
		if got := tr.queueOf(att); got != want {
			t.Errorf("queueOf(%v) = %d, want %d", att, got, want)
		}
	}
}
