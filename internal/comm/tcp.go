package comm

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// wireFrame is the on-wire unit for the TCP transport.
type wireFrame struct {
	From string
	To   string
	Msg  Message
}

// ---------------------------------------------------------------------------
// Server side (central scheduler)

// TCPServer is the listening end of the TCP transport: agents dial
// in, announce their name with their first frame, and are then
// addressable by it.
type TCPServer struct {
	name string
	ln   net.Listener

	mu     sync.Mutex
	peers  map[string]*peerConn
	conns  map[net.Conn]bool // every accepted conn, named or not
	inbox  chan Envelope
	closed bool
}

type peerConn struct {
	conn net.Conn
	enc  *gob.Encoder
	mu   sync.Mutex
}

func (p *peerConn) send(f wireFrame) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.enc.Encode(f)
}

// ListenTCP starts a transport server on addr (e.g. "127.0.0.1:0").
func ListenTCP(name, addr string) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: %w", err)
	}
	s := &TCPServer{
		name:  name,
		ln:    ln,
		peers: make(map[string]*peerConn),
		conns: make(map[net.Conn]bool),
		inbox: make(chan Envelope, 256),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	s.conns[conn] = true
	s.mu.Unlock()
	dec := gob.NewDecoder(conn)
	pc := &peerConn{conn: conn, enc: gob.NewEncoder(conn)}
	var peer string
	for {
		var f wireFrame
		if err := dec.Decode(&f); err != nil {
			break
		}
		if peer == "" {
			peer = f.From
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				break
			}
			s.peers[peer] = pc
			s.mu.Unlock()
		}
		s.deliver(Envelope{From: f.From, Msg: f.Msg})
	}
	_ = conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	if peer != "" && s.peers[peer] == pc {
		delete(s.peers, peer)
	}
	s.mu.Unlock()
}

func (s *TCPServer) deliver(e Envelope) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return
	}
	select {
	case s.inbox <- e:
	default:
	}
}

// Send implements Transport.
func (s *TCPServer) Send(to string, e Envelope) error {
	s.mu.Lock()
	pc, ok := s.peers[to]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("comm: no connected peer %q", to)
	}
	return pc.send(wireFrame{From: e.From, To: to, Msg: e.Msg})
}

// Recv implements Transport.
func (s *TCPServer) Recv() <-chan Envelope { return s.inbox }

// Name implements Transport.
func (s *TCPServer) Name() string { return s.name }

// Close implements Transport.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		//gflint:ignore maprange live sockets have no order; close order is immaterial
		conns = append(conns, c)
	}
	s.conns = map[net.Conn]bool{}
	s.peers = map[string]*peerConn{}
	s.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	err := s.ln.Close()
	close(s.inbox)
	return err
}

// ---------------------------------------------------------------------------
// Client side (server agent)

// TCPClient is the dialing end; all Sends go to the listening peer
// regardless of the `to` argument (the protocol is strictly
// agent↔central).
type TCPClient struct {
	name string
	conn net.Conn
	enc  *gob.Encoder
	mu   sync.Mutex

	inbox  chan Envelope
	closed bool
	cmu    sync.Mutex
}

// DialTCP connects an agent endpoint to a TCPServer. The first Send
// (or an explicit Hello) announces the name; DialTCP sends a hello
// frame immediately so the server can address the agent right away.
func DialTCP(name, addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: %w", err)
	}
	c := &TCPClient{
		name:  name,
		conn:  conn,
		enc:   gob.NewEncoder(conn),
		inbox: make(chan Envelope, 256),
	}
	go c.recvLoop()
	return c, nil
}

func (c *TCPClient) recvLoop() {
	dec := gob.NewDecoder(c.conn)
	for {
		var f wireFrame
		if err := dec.Decode(&f); err != nil {
			break
		}
		c.cmu.Lock()
		if !c.closed {
			select {
			case c.inbox <- Envelope{From: f.From, Msg: f.Msg}:
			default:
			}
		}
		c.cmu.Unlock()
	}
	_ = c.Close()
}

// Send implements Transport.
func (c *TCPClient) Send(to string, e Envelope) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(wireFrame{From: c.name, To: to, Msg: e.Msg})
}

// Recv implements Transport.
func (c *TCPClient) Recv() <-chan Envelope { return c.inbox }

// Name implements Transport.
func (c *TCPClient) Name() string { return c.name }

// Close implements Transport.
func (c *TCPClient) Close() error {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	err := c.conn.Close()
	close(c.inbox)
	return err
}

var (
	_ Transport = (*TCPServer)(nil)
	_ Transport = (*TCPClient)(nil)
)
