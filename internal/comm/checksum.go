package comm

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
)

// encodeMessage gob-encodes m (as an interface value, so the concrete
// type must be registered) into w.
func encodeMessage(w io.Writer, m Message) error {
	if m == nil {
		return fmt.Errorf("comm: nil message")
	}
	return gob.NewEncoder(w).Encode(&m)
}

// Checksum returns the FNV-64a hash of m's gob encoding. Gob encoding
// of the registered protocol structs is deterministic (a fresh
// encoder always emits the same type preamble for the same concrete
// type), so sender and receiver compute identical sums for identical
// payloads. Messages gob cannot encode (unregistered test doubles,
// nil) return an error; callers treat them as unsealable.
func Checksum(m Message) (uint64, error) {
	h := fnv.New64a()
	if err := encodeMessage(h, m); err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}

// Seal stamps e.Sum with the payload checksum. Zero is reserved to
// mean "unsealed", so a (vanishingly unlikely) zero hash is mapped to
// one. Sealing an unencodable payload returns the envelope unchanged
// along with the error.
func Seal(e Envelope) (Envelope, error) {
	sum, err := Checksum(e.Msg)
	if err != nil {
		return e, err
	}
	if sum == 0 {
		sum = 1
	}
	e.Sum = sum
	return e, nil
}

// Verify reports whether the envelope's payload matches its checksum.
// Unsealed envelopes (Sum 0) pass: sealing is opt-in, so raw
// Transport.Send callers and old peers keep working. A sealed
// envelope whose payload no longer hashes to Sum — corruption in
// flight — fails, as does one whose payload became unencodable.
func Verify(e Envelope) bool {
	if e.Sum == 0 {
		return true
	}
	sum, err := Checksum(e.Msg)
	if err != nil {
		return false
	}
	if sum == 0 {
		sum = 1
	}
	return sum == e.Sum
}

// Dedup detects redelivered sequenced envelopes per peer. Memory is
// bounded: once a peer's seen-set exceeds the window, sequence
// numbers far below its maximum are pruned and treated as already
// seen (they are, by the sender's monotonicity, ancient retransmits).
// Safe for concurrent use.
type Dedup struct {
	mu     sync.Mutex
	window int
	peers  map[string]*peerSeen
}

type peerSeen struct {
	seen  map[uint64]bool
	max   uint64
	floor uint64 // every seq <= floor counts as seen
}

// NewDedup builds a Dedup with a 4096-sequence window per peer.
func NewDedup() *Dedup {
	return &Dedup{window: 4096, peers: make(map[string]*peerSeen)}
}

// Duplicate records (from, seq) and reports whether it was already
// seen. Unsequenced envelopes (seq 0) are never duplicates.
func (d *Dedup) Duplicate(from string, seq uint64) bool {
	if seq == 0 {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.peers[from]
	if p == nil {
		p = &peerSeen{seen: make(map[uint64]bool)}
		d.peers[from] = p
	}
	if seq <= p.floor || p.seen[seq] {
		return true
	}
	p.seen[seq] = true
	if seq > p.max {
		p.max = seq
	}
	if len(p.seen) > d.window {
		floor := uint64(0)
		if p.max > uint64(d.window/2) {
			floor = p.max - uint64(d.window/2)
		}
		p.floor = floor
		for s := range p.seen {
			if s <= floor {
				delete(p.seen, s)
			}
		}
	}
	return false
}

// Reset forgets a peer's history. Called when a peer legitimately
// restarts (a fresh Register): its new process restarts its sequence
// space, which must not collide with its predecessor's.
func (d *Dedup) Reset(from string) {
	d.mu.Lock()
	delete(d.peers, from)
	d.mu.Unlock()
}
