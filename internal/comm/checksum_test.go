package comm

import (
	"fmt"
	"testing"
)

func TestSealVerifyRoundTrip(t *testing.T) {
	msgs := []Message{
		Register{Agent: "a", Gen: 1, GPUs: 4},
		RegisterAck{OK: true},
		RoundPlan{Round: 3, Epoch: 2, Lease: 4, AckRound: 1, Quantum: 360,
			Jobs: []JobAssignment{{JobID: 7, User: "u", Gang: 1, LocalGPUs: []int{0}, TotalMB: 100}}},
		RoundReport{Agent: "a", Round: 3, Epoch: 2,
			Jobs: []JobProgress{{JobID: 7, DoneMB: 50, UsedSecs: 360}}},
		Shutdown{},
	}
	for i, m := range msgs {
		e, err := Seal(Envelope{From: "a", Seq: uint64(i + 1), Msg: m})
		if err != nil {
			t.Fatalf("seal %T: %v", m, err)
		}
		if e.Sum == 0 {
			t.Fatalf("seal %T left Sum 0", m)
		}
		if !Verify(e) {
			t.Errorf("sealed %T does not verify", m)
		}
	}
}

func TestVerifyDetectsMutation(t *testing.T) {
	e, err := Seal(Envelope{From: "a", Seq: 1, Msg: RoundReport{Agent: "a", Round: 2,
		Jobs: []JobProgress{{JobID: 1, DoneMB: 10}}}})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the payload after sealing, exactly like the corruption
	// injector does: the checksum no longer matches.
	m := e.Msg.(RoundReport)
	m.Round += 1 << 20
	e.Msg = m
	if Verify(e) {
		t.Error("mutated payload verified")
	}
	// The sequence number is not covered by the payload checksum (the
	// dedup layer owns it), but the checksum still rejects a swapped
	// payload under any seq.
	e2, _ := Seal(Envelope{From: "a", Seq: 9, Msg: RoundReport{Agent: "a", Round: 2}})
	e2.Msg = RoundReport{Agent: "a", Round: 3}
	if Verify(e2) {
		t.Error("swapped payload verified")
	}
}

func TestVerifyUnsealedPasses(t *testing.T) {
	// Sum 0 means "not sealed" (legacy senders, unencodable payloads):
	// verification must not reject it.
	if !Verify(Envelope{From: "a", Seq: 1, Msg: Shutdown{}}) {
		t.Error("unsealed envelope rejected")
	}
}

func TestDedupDropsReplays(t *testing.T) {
	d := NewDedup()
	if d.Duplicate("a", 5) {
		t.Error("first delivery flagged as duplicate")
	}
	if !d.Duplicate("a", 5) {
		t.Error("replay not flagged")
	}
	if d.Duplicate("a", 4) {
		t.Error("out-of-order first delivery flagged")
	}
	if !d.Duplicate("a", 4) {
		t.Error("out-of-order replay not flagged")
	}
	// Seq 0 opts out of dedup entirely (legacy raw sends).
	if d.Duplicate("a", 0) || d.Duplicate("a", 0) {
		t.Error("seq-0 envelopes must never be flagged")
	}
	// Peers are independent.
	if d.Duplicate("b", 5) {
		t.Error("peer b's first delivery flagged")
	}
}

func TestDedupResetForgetsPeer(t *testing.T) {
	d := NewDedup()
	if d.Duplicate("a", 1) {
		t.Fatal("first delivery flagged")
	}
	d.Reset("a")
	// A restarted agent restarts its sequence space: after Reset the
	// old numbers are fresh again.
	if d.Duplicate("a", 1) {
		t.Error("post-reset delivery flagged as duplicate")
	}
}

func TestDedupWindowBounded(t *testing.T) {
	d := NewDedup()
	n := uint64(3 * 4096) // far past the retention window
	for i := uint64(1); i <= n; i++ {
		if d.Duplicate("a", i) {
			t.Fatalf("fresh seq %d flagged", i)
		}
	}
	// Recent history is still exact.
	if !d.Duplicate("a", n) {
		t.Error("recent replay not flagged")
	}
	// Sequence numbers below the pruned floor are conservatively
	// treated as duplicates rather than remembered individually.
	if !d.Duplicate("a", 1) {
		t.Error("ancient replay below the window not flagged")
	}
}

// flakyDupTransport fails the first Send per destination, then
// delivers every successful send twice — the worst-case wire for a
// retrying sender.
type flakyDupTransport struct {
	Transport
	failed map[string]bool
}

func (f *flakyDupTransport) Send(to string, e Envelope) error {
	if !f.failed[to] {
		f.failed[to] = true
		return fmt.Errorf("flaky: first attempt to %s dropped", to)
	}
	if err := f.Transport.Send(to, e); err != nil {
		return err
	}
	return f.Transport.Send(to, e)
}

// TestRetrierDedupInterplay drives a Retrier over a transport that
// both fails (forcing retries) and duplicates deliveries: because the
// sequence number is stamped once per logical send, the receiving
// Dedup applies each message exactly once no matter how many copies
// the wire produced.
func TestRetrierDedupInterplay(t *testing.T) {
	hub := NewHub()
	sender, err := hub.Attach("sender")
	if err != nil {
		t.Fatal(err)
	}
	recv, err := hub.Attach("recv")
	if err != nil {
		t.Fatal(err)
	}
	wire := &flakyDupTransport{Transport: sender, failed: make(map[string]bool)}
	r := NewRetrier(RetryPolicy{MaxAttempts: 3, BaseDelay: 1, MaxDelay: 1, Seed: 1})

	const sends = 20
	for i := 0; i < sends; i++ {
		if err := r.Send(wire, "recv", Envelope{From: "sender", Msg: RoundReport{Agent: "sender", Round: i + 1}}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	d := NewDedup()
	applied := 0
	for i := 0; i < sends*2; i++ { // every send delivered twice
		env := <-recv.Recv()
		if !Verify(env) {
			t.Fatalf("delivery %d failed verification", i)
		}
		if d.Duplicate(env.From, env.Seq) {
			continue
		}
		applied++
	}
	if applied != sends {
		t.Errorf("applied %d of %d logical sends (duplication leaked through)", applied, sends)
	}
}
