// Package comm provides the message protocol and transports for
// Gandiva_fair's distributed architecture: a central scheduler
// exchanging typed messages with per-server agents. Two transports
// are provided — an in-memory hub (deterministic tests, examples)
// and TCP with gob encoding (the real wire, exercised by
// examples/distributed) — behind one Transport interface, so the
// scheduler and agents are oblivious to which carries them.
package comm

import (
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/obs/span"
)

// Message is a protocol message. Concrete types are registered with
// gob in this package's init so they cross the TCP transport.
type Message interface{}

// Envelope wraps a message with its sender plus the two fields the
// partition-tolerant protocol rides on:
//
//   - Seq is a per-sender (strictly: per Retrier, per destination)
//     monotone sequence number. Receivers feed it to Dedup so a
//     duplicated or replayed delivery is detected and dropped. Zero
//     means "unsequenced" — raw Transport.Send callers and old peers
//     keep working, they just opt out of duplicate detection.
//   - Sum is a checksum over the gob encoding of Msg (see Seal).
//     Receivers call Verify before acting on a message, so payload
//     corruption on the wire is detected and counted, never applied.
//     Zero means "unsealed" and passes verification for the same
//     backward-compatibility reason.
type Envelope struct {
	From string
	Seq  uint64
	Sum  uint64
	Msg  Message
}

// Transport moves envelopes between named endpoints.
type Transport interface {
	// Send delivers to the named endpoint. It must not block
	// indefinitely; delivery to a closed endpoint returns an error.
	Send(to string, e Envelope) error
	// Recv returns the endpoint's inbox channel; it is closed when
	// the transport closes.
	Recv() <-chan Envelope
	// Name returns this endpoint's address.
	Name() string
	// Close tears the endpoint down.
	Close() error
}

// ---------------------------------------------------------------------------
// Protocol messages

// Register announces an agent and its server inventory.
type Register struct {
	Agent string
	Gen   int // gpu.Generation as int (gob-friendly)
	GPUs  int
}

// RegisterAck confirms registration.
type RegisterAck struct {
	OK     bool
	Reason string
}

// JobAssignment places one job on an agent for the coming quantum.
type JobAssignment struct {
	JobID     int64
	User      string
	Model     string
	Gang      int
	LocalGPUs []int // indices within the agent's server
	// Checkpoint carries the job's training state on (re)placement:
	// minibatches done and total. The agent is stateless across
	// migrations — exactly Gandiva's checkpoint semantics.
	DoneMB, TotalMB float64
	GangRate        float64 // whole-gang minibatches/sec on this agent's generation
	Overhead        float64 // seconds lost to resume/migration this quantum

	// Shard is the fraction of the job's gang running on this agent
	// (1 for single-server jobs). Degraded-mode agents only trust
	// their local progress for whole jobs, never cross-server shards.
	// Zero (a plan from an old central) is read as 1.
	Shard float64
}

// RoundPlan is the central scheduler's decision for one agent.
type RoundPlan struct {
	Round   int
	Quantum float64 // seconds of training time this round
	Jobs    []JobAssignment

	// Epoch fences central incarnations: it increases monotonically
	// across central restarts (persisted in the snapshot), agents
	// reject plans older than the newest epoch they have seen, and the
	// central rejects reports from older epochs — a restarted or
	// partitioned-then-healed central can never split-brain the
	// cluster. Zero means an unfenced (legacy/test) plan.
	Epoch int

	// Lease is the degraded-mode budget in rounds: an agent cut off
	// from the central keeps its local job state and buffers unacked
	// reports for up to Lease rounds before parking (discarding) them.
	// Zero disables degraded mode (exactly the pre-lease protocol).
	Lease int

	// AckRound is the highest round of this agent's reports the
	// central has applied; the agent prunes its resend backlog up to
	// it (cumulative ack).
	AckRound int

	// Trace/Span propagate the central scheduler's trace context so
	// one logical round forms a single cross-process trace: Trace is
	// the round's trace ID, Span the central round-root span the
	// agent's spans parent under. Zero when tracing is off (old
	// centrals still speak the protocol — gob treats absent fields as
	// zero).
	Trace uint64
	Span  uint64
}

// JobProgress reports one job's state after a round.
type JobProgress struct {
	JobID    int64
	DoneMB   float64
	Finished bool
	UsedSecs float64 // productive seconds within the quantum
}

// RoundReport is an agent's response to a RoundPlan.
type RoundReport struct {
	Agent string
	Round int
	Jobs  []JobProgress

	// Epoch echoes the plan's epoch so the central can fence reports
	// produced under a previous incarnation (zero = unfenced).
	Epoch int

	// Spans are the agent's spans for this round (present only when
	// the plan carried a trace context); the central scheduler
	// injects them into its tracer to complete the round's trace.
	Spans []span.Span
}

// Shutdown tells an agent to exit.
type Shutdown struct{}

func init() {
	gob.Register(Register{})
	gob.Register(RegisterAck{})
	gob.Register(RoundPlan{})
	gob.Register(RoundReport{})
	gob.Register(Shutdown{})
}

// ---------------------------------------------------------------------------
// In-memory hub

// Hub is an in-process transport fabric. Endpoints attach by name and
// exchange envelopes through buffered channels.
type Hub struct {
	mu        sync.Mutex
	endpoints map[string]*hubEndpoint
}

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{endpoints: make(map[string]*hubEndpoint)}
}

type hubEndpoint struct {
	hub    *Hub
	name   string
	inbox  chan Envelope
	closed bool
	mu     sync.Mutex
}

// Attach creates an endpoint on the hub. Names must be unique.
func (h *Hub) Attach(name string) (Transport, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.endpoints[name]; dup {
		return nil, fmt.Errorf("comm: endpoint %q already attached", name)
	}
	ep := &hubEndpoint{hub: h, name: name, inbox: make(chan Envelope, 256)}
	h.endpoints[name] = ep
	return ep, nil
}

func (e *hubEndpoint) Send(to string, env Envelope) error {
	e.hub.mu.Lock()
	dst, ok := e.hub.endpoints[to]
	e.hub.mu.Unlock()
	if !ok {
		return fmt.Errorf("comm: no endpoint %q", to)
	}
	dst.mu.Lock()
	defer dst.mu.Unlock()
	if dst.closed {
		return fmt.Errorf("comm: endpoint %q closed", to)
	}
	select {
	case dst.inbox <- env:
		return nil
	default:
		return fmt.Errorf("comm: endpoint %q inbox full", to)
	}
}

func (e *hubEndpoint) Recv() <-chan Envelope { return e.inbox }
func (e *hubEndpoint) Name() string          { return e.name }

func (e *hubEndpoint) Close() error {
	e.hub.mu.Lock()
	delete(e.hub.endpoints, e.name)
	e.hub.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed {
		e.closed = true
		close(e.inbox)
	}
	return nil
}
