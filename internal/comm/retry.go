package comm

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy parameterizes Retrier: capped exponential backoff with
// deterministic jitter around Transport.Send. The zero value is
// usable and means "use the defaults below".
type RetryPolicy struct {
	// MaxAttempts is the total number of Send attempts, including the
	// first (default 4). 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 10ms);
	// it doubles per retry up to MaxDelay (default 500ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// JitterFrac perturbs each delay by ±JitterFrac of itself
	// (default 0.2) from a stream seeded with Seed, so retry storms
	// decorrelate but tests stay reproducible.
	JitterFrac float64
	Seed       int64

	// SeqBase offsets the per-destination sequence numbers this
	// Retrier stamps onto outbound envelopes (the first send to a
	// destination carries SeqBase+1). Epoch-scoped senders — a
	// restarted central — set it so a new incarnation's sequence space
	// never collides with its predecessor's at receivers that kept
	// their dedup history.
	SeqBase uint64

	// Sleep is a test hook; nil means time.Sleep.
	Sleep func(time.Duration)
	// OnRetry, if set, observes every retry (attempt numbers the
	// failed attempt, starting at 1) before the backoff sleep.
	OnRetry func(attempt int, err error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 500 * time.Millisecond
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = 0.2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Retrier wraps Transport.Send with the policy's backoff. It is safe
// for concurrent use; the jitter stream is shared and mutex-guarded.
type Retrier struct {
	pol RetryPolicy
	mu  sync.Mutex
	rng *rand.Rand
	seq map[string]uint64 // per-destination sequence counters
}

// NewRetrier builds a Retrier; zero-value fields of pol take the
// documented defaults.
func NewRetrier(pol RetryPolicy) *Retrier {
	pol = pol.withDefaults()
	return &Retrier{pol: pol, rng: rand.New(rand.NewSource(pol.Seed)), seq: make(map[string]uint64)}
}

// delay returns the jittered backoff before retry number n (1-based).
func (r *Retrier) delay(n int) time.Duration {
	d := r.pol.BaseDelay << uint(n-1)
	if d > r.pol.MaxDelay || d <= 0 { // <=0 guards shift overflow
		d = r.pol.MaxDelay
	}
	r.mu.Lock()
	f := 1 + r.pol.JitterFrac*(2*r.rng.Float64()-1)
	r.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// Send attempts tr.Send up to MaxAttempts times, backing off between
// attempts. It returns the last error when every attempt fails.
//
// Unless the caller pre-stamped them, Send assigns the envelope a
// per-destination sequence number and seals it with the payload
// checksum. Both happen once, before the first attempt, so every
// retry of one logical send carries the same Seq — a retry that races
// a slow first delivery is detected as a duplicate at the receiver,
// never applied twice. Payloads gob cannot encode travel unsealed
// (Sum 0), exactly like a raw Transport.Send.
func (r *Retrier) Send(tr Transport, to string, e Envelope) error {
	if e.Seq == 0 {
		r.mu.Lock()
		r.seq[to]++
		e.Seq = r.pol.SeqBase + r.seq[to]
		r.mu.Unlock()
	}
	if e.Sum == 0 {
		if sealed, err := Seal(e); err == nil {
			e = sealed
		}
	}
	var err error
	for attempt := 1; ; attempt++ {
		if err = tr.Send(to, e); err == nil {
			return nil
		}
		if attempt >= r.pol.MaxAttempts {
			return fmt.Errorf("comm: send to %q failed after %d attempts: %w", to, attempt, err)
		}
		if r.pol.OnRetry != nil {
			r.pol.OnRetry(attempt, err)
		}
		r.pol.Sleep(r.delay(attempt))
	}
}
