package comm

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// flakyTransport fails the first n Sends, then delegates to the
// wrapped transport.
type flakyTransport struct {
	Transport
	mu       sync.Mutex
	failures int
	sends    int
}

func (f *flakyTransport) Send(to string, e Envelope) error {
	f.mu.Lock()
	f.sends++
	fail := f.sends <= f.failures
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("flaky: injected failure %d", f.sends)
	}
	return f.Transport.Send(to, e)
}

func TestRetrierRecoversFromTransientFailure(t *testing.T) {
	hub := NewHub()
	a, _ := hub.Attach("a")
	b, _ := hub.Attach("b")
	fl := &flakyTransport{Transport: a, failures: 2}

	var retries []int
	r := NewRetrier(RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Microsecond,
		Sleep:   func(time.Duration) {},
		OnRetry: func(n int, err error) { retries = append(retries, n) },
	})
	if err := r.Send(fl, "b", Envelope{From: "a", Msg: Register{Agent: "a"}}); err != nil {
		t.Fatalf("send after transient failures: %v", err)
	}
	if len(retries) != 2 {
		t.Errorf("retried %d times, want 2", len(retries))
	}
	select {
	case env := <-b.Recv():
		if env.From != "a" {
			t.Errorf("delivered from %q", env.From)
		}
	default:
		t.Fatal("message never delivered")
	}
}

func TestRetrierGivesUpAfterMaxAttempts(t *testing.T) {
	hub := NewHub()
	a, _ := hub.Attach("a")
	fl := &flakyTransport{Transport: a, failures: 1 << 30}
	r := NewRetrier(RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}})
	err := r.Send(fl, "nobody", Envelope{})
	if err == nil {
		t.Fatal("send to permanently failing transport succeeded")
	}
	if fl.sends != 3 {
		t.Errorf("made %d attempts, want 3", fl.sends)
	}
}

func TestRetrierBackoffCappedAndJittered(t *testing.T) {
	r := NewRetrier(RetryPolicy{
		BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond,
		JitterFrac: 0.2, Seed: 7,
	})
	for n := 1; n <= 10; n++ {
		d := r.delay(n)
		if d <= 0 {
			t.Fatalf("retry %d: non-positive delay %v", n, d)
		}
		if max := time.Duration(float64(40*time.Millisecond) * 1.2); d > max {
			t.Errorf("retry %d: delay %v above jittered cap %v", n, d, max)
		}
	}
	// Same seed, same jitter stream.
	r2 := NewRetrier(RetryPolicy{
		BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond,
		JitterFrac: 0.2, Seed: 7,
	})
	for n := 1; n <= 5; n++ {
		if a, b := r2.delay(n), r2.delay(n); a == b {
			// jitter streams advance per call; equal values would mean
			// the stream is stuck
			t.Errorf("retry %d: jitter stream did not advance (%v)", n, a)
		}
	}
}
