package comm

import (
	"fmt"
	"testing"
	"time"
)

func recvOne(t *testing.T, tr Transport) Envelope {
	t.Helper()
	select {
	case e, ok := <-tr.Recv():
		if !ok {
			t.Fatal("inbox closed")
		}
		return e
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for envelope")
	}
	return Envelope{}
}

func TestHubBasic(t *testing.T) {
	hub := NewHub()
	a, err := hub.Attach("central")
	if err != nil {
		t.Fatal(err)
	}
	b, err := hub.Attach("agent-1")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "central" || b.Name() != "agent-1" {
		t.Fatal("names wrong")
	}
	if err := b.Send("central", Envelope{From: "agent-1", Msg: Register{Agent: "agent-1", Gen: 3, GPUs: 4}}); err != nil {
		t.Fatal(err)
	}
	e := recvOne(t, a)
	reg, ok := e.Msg.(Register)
	if !ok || reg.GPUs != 4 || e.From != "agent-1" {
		t.Fatalf("got %+v", e)
	}
	if err := a.Send("agent-1", Envelope{From: "central", Msg: RegisterAck{OK: true}}); err != nil {
		t.Fatal(err)
	}
	if ack := recvOne(t, b).Msg.(RegisterAck); !ack.OK {
		t.Fatal("ack not ok")
	}
}

func TestHubErrors(t *testing.T) {
	hub := NewHub()
	a, _ := hub.Attach("a")
	if _, err := hub.Attach("a"); err == nil {
		t.Error("duplicate attach accepted")
	}
	if err := a.Send("ghost", Envelope{}); err == nil {
		t.Error("send to unknown endpoint succeeded")
	}
	b, _ := hub.Attach("b")
	_ = b.Close()
	if err := a.Send("b", Envelope{}); err == nil {
		t.Error("send to closed endpoint succeeded")
	}
	_ = b.Close() // double close is a no-op
}

func TestHubBackpressure(t *testing.T) {
	hub := NewHub()
	hubA, _ := hub.Attach("a")
	b, _ := hub.Attach("b")
	_ = hubA
	overflowed := false
	for i := 0; i < 1000; i++ {
		if err := b.Send("a", Envelope{From: "b", Msg: Shutdown{}}); err != nil {
			overflowed = true
			break
		}
	}
	if !overflowed {
		t.Error("unbounded inbox: expected overflow error")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := ListenTCP("central", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := DialTCP("agent-1", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Agent announces itself.
	if err := cli.Send("central", Envelope{From: "agent-1", Msg: Register{Agent: "agent-1", Gen: 0, GPUs: 8}}); err != nil {
		t.Fatal(err)
	}
	e := recvOne(t, srv)
	if reg := e.Msg.(Register); reg.GPUs != 8 {
		t.Fatalf("register = %+v", reg)
	}

	// Central addresses the agent by name with a full round plan.
	plan := RoundPlan{
		Round:   3,
		Quantum: 360,
		Jobs: []JobAssignment{{
			JobID: 7, User: "alice", Model: "resnet50", Gang: 2,
			LocalGPUs: []int{0, 1}, DoneMB: 100, TotalMB: 1e6, GangRate: 5,
		}},
	}
	if err := srv.Send("agent-1", Envelope{From: "central", Msg: plan}); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, cli).Msg.(RoundPlan)
	if got.Round != 3 || len(got.Jobs) != 1 || got.Jobs[0].User != "alice" || got.Jobs[0].LocalGPUs[1] != 1 {
		t.Fatalf("plan = %+v", got)
	}

	// Report back.
	rep := RoundReport{Agent: "agent-1", Round: 3, Jobs: []JobProgress{{JobID: 7, DoneMB: 3700, UsedSecs: 357}}}
	if err := cli.Send("central", Envelope{From: "agent-1", Msg: rep}); err != nil {
		t.Fatal(err)
	}
	if r := recvOne(t, srv).Msg.(RoundReport); r.Jobs[0].DoneMB != 3700 {
		t.Fatalf("report = %+v", r)
	}
}

func TestTCPMultipleAgents(t *testing.T) {
	srv, err := ListenTCP("central", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const n = 5
	clients := make([]*TCPClient, n)
	for i := range clients {
		name := fmt.Sprintf("agent-%d", i)
		c, err := DialTCP(name, srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
		if err := c.Send("central", Envelope{From: name, Msg: Register{Agent: name, GPUs: i + 1}}); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]int{}
	for i := 0; i < n; i++ {
		e := recvOne(t, srv)
		seen[e.From] = e.Msg.(Register).GPUs
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("agent-%d", i)
		if seen[name] != i+1 {
			t.Fatalf("agent %s registered %d GPUs", name, seen[name])
		}
		// Address each one individually.
		if err := srv.Send(name, Envelope{From: "central", Msg: Shutdown{}}); err != nil {
			t.Fatal(err)
		}
		if _, ok := recvOne(t, clients[i]).Msg.(Shutdown); !ok {
			t.Fatalf("agent %s did not get shutdown", name)
		}
	}
}

func TestTCPSendToUnknownPeer(t *testing.T) {
	srv, err := ListenTCP("central", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Send("nobody", Envelope{}); err == nil {
		t.Error("send to unknown peer succeeded")
	}
}

func TestTCPServerClose(t *testing.T) {
	srv, err := ListenTCP("central", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialTCP("agent", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Send("central", Envelope{From: "agent", Msg: Register{Agent: "agent"}}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, srv)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	_ = srv.Close() // idempotent
	// Client's recv loop should observe EOF and close its inbox.
	select {
	case _, ok := <-cli.Recv():
		if ok {
			// a queued frame is fine; drain until closed
			for range cli.Recv() {
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("client inbox did not close after server shutdown")
	}
}

func TestClientSendAfterServerGone(t *testing.T) {
	srv, err := ListenTCP("central", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialTCP("agent", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_ = srv.Close()
	// Wait for the client's recv loop to notice EOF.
	for range cli.Recv() {
	}
	// Sends now fail (possibly after one buffered write) rather than
	// hanging.
	var failed bool
	for i := 0; i < 10; i++ {
		if err := cli.Send("central", Envelope{From: "agent", Msg: Shutdown{}}); err != nil {
			failed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !failed {
		t.Fatal("sends kept succeeding against a dead server")
	}
}

func TestServerNameAndDoubleClientClose(t *testing.T) {
	srv, err := ListenTCP("boss", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Name() != "boss" {
		t.Errorf("Name = %q", srv.Name())
	}
	cli, err := DialTCP("agent", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if cli.Name() != "agent" {
		t.Errorf("client Name = %q", cli.Name())
	}
	_ = cli.Close()
	_ = cli.Close() // idempotent
}
