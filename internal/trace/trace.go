// Package trace records simulation events and exports them as CSV or
// JSON for offline analysis (the figures in EXPERIMENTS.md are
// regenerated from these streams).
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/job"
	"repro/internal/simclock"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the simulation core.
const (
	KindArrival   Kind = "arrival"
	KindStart     Kind = "start"
	KindFinish    Kind = "finish"
	KindMigration Kind = "migration"
	KindTrade     Kind = "trade"
	KindRound     Kind = "round"
	KindFailure   Kind = "failure"
	KindRecovery  Kind = "recovery"

	// Fault-model events (see internal/faults).
	KindJobCrash     Kind = "jobcrash"     // job crashed, rolled back to checkpoint
	KindMigFail      Kind = "migfail"      // migration attempt failed; job stays put
	KindQuarantine   Kind = "quarantine"   // circuit breaker excluded a server
	KindUnquarantine Kind = "unquarantine" // quarantine cool-off expired
	KindDegrade      Kind = "degrade"      // server entered degraded (slowed) state
	KindDegradeEnd   Kind = "degrade-end"  // server back to full speed

	// Partition-tolerance events (see internal/distrib).
	KindLeaseExpire   Kind = "lease-expire"   // cut-off agent's lease ran out; it parks
	KindPartitionHeal Kind = "partition-heal" // suspected agent reached the central again
	KindFenceReject   Kind = "fence-reject"   // message from a dead central epoch rejected
)

// Event is one timestamped record.
type Event struct {
	At     simclock.Time `json:"at"`
	Kind   Kind          `json:"kind"`
	Job    job.ID        `json:"job,omitempty"`
	User   job.UserID    `json:"user,omitempty"`
	Detail string        `json:"detail,omitempty"`
}

// Log is an append-only event stream. Not safe for concurrent use.
//
// By default the log grows without bound. SetCap turns it into a
// ring over the most recent events so unbounded-horizon runs and
// long sweeps keep memory flat; Dropped reports how many events the
// ring has discarded.
type Log struct {
	events []Event
	max    int // 0 = unbounded
	start  int // ring head when max > 0 and the ring is full
	drops  int
}

// SetCap bounds the log to the most recent n events (ring
// semantics). n <= 0 removes the bound. If more than n events are
// already recorded, the oldest are dropped immediately.
func (l *Log) SetCap(n int) {
	l.events = l.Events() // linearize any existing ring
	l.start = 0
	if n <= 0 {
		l.max = 0
		return
	}
	l.max = n
	if over := len(l.events) - n; over > 0 {
		kept := make([]Event, n)
		copy(kept, l.events[over:])
		l.events = kept
		l.drops += over
	}
}

// Cap returns the configured bound (0 = unbounded).
func (l *Log) Cap() int { return l.max }

// Dropped returns how many events the cap has discarded.
func (l *Log) Dropped() int { return l.drops }

// Append adds an event, evicting the oldest when capped and full.
func (l *Log) Append(e Event) {
	if l.max > 0 && len(l.events) == l.max {
		l.events[l.start] = e
		l.start = (l.start + 1) % l.max
		l.drops++
		return
	}
	l.events = append(l.events, e)
}

// Add is a convenience constructor-append.
func (l *Log) Add(at simclock.Time, kind Kind, j job.ID, u job.UserID, detail string) {
	l.Append(Event{At: at, Kind: kind, Job: j, User: u, Detail: detail})
}

// Events returns the recorded stream oldest-first. Callers must not
// mutate.
func (l *Log) Events() []Event {
	if l.start == 0 {
		return l.events
	}
	out := make([]Event, 0, len(l.events))
	out = append(out, l.events[l.start:]...)
	return append(out, l.events[:l.start]...)
}

// Len returns the event count.
func (l *Log) Len() int { return len(l.events) }

// Filter returns events of one kind.
func (l *Log) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// WriteCSV emits the stream with a header row.
func (l *Log) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_seconds", "kind", "job", "user", "detail"}); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	for _, e := range l.Events() {
		rec := []string{
			strconv.FormatFloat(float64(e.At), 'f', 3, 64),
			string(e.Kind),
			strconv.FormatInt(int64(e.Job), 10),
			string(e.User),
			e.Detail,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the stream as a JSON array (empty logs emit []).
func (l *Log) WriteJSON(w io.Writer) error {
	events := l.Events()
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(events); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// ReadCSV parses a stream written by WriteCSV. The header row is
// required and checked, so a workload CSV fed in by mistake fails
// loudly instead of half-parsing.
func ReadCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	want := []string{"at_seconds", "kind", "job", "user", "detail"}
	for i, col := range want {
		if header[i] != col {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], col)
		}
	}
	var events []Event
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		at, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad at_seconds %q: %w", rec[0], err)
		}
		id, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad job id %q: %w", rec[2], err)
		}
		events = append(events, Event{
			At:     simclock.Time(at),
			Kind:   Kind(rec[1]),
			Job:    job.ID(id),
			User:   job.UserID(rec[3]),
			Detail: rec[4],
		})
	}
}

// ReadJSON parses a stream written by WriteJSON.
func ReadJSON(r io.Reader) ([]Event, error) {
	var events []Event
	if err := json.NewDecoder(r).Decode(&events); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return events, nil
}
