// Package trace records simulation events and exports them as CSV or
// JSON for offline analysis (the figures in EXPERIMENTS.md are
// regenerated from these streams).
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/job"
	"repro/internal/simclock"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the simulation core.
const (
	KindArrival   Kind = "arrival"
	KindStart     Kind = "start"
	KindFinish    Kind = "finish"
	KindMigration Kind = "migration"
	KindTrade     Kind = "trade"
	KindRound     Kind = "round"
	KindFailure   Kind = "failure"
	KindRecovery  Kind = "recovery"
)

// Event is one timestamped record.
type Event struct {
	At     simclock.Time `json:"at"`
	Kind   Kind          `json:"kind"`
	Job    job.ID        `json:"job,omitempty"`
	User   job.UserID    `json:"user,omitempty"`
	Detail string        `json:"detail,omitempty"`
}

// Log is an append-only event stream. Not safe for concurrent use.
type Log struct {
	events []Event
}

// Append adds an event.
func (l *Log) Append(e Event) { l.events = append(l.events, e) }

// Add is a convenience constructor-append.
func (l *Log) Add(at simclock.Time, kind Kind, j job.ID, u job.UserID, detail string) {
	l.Append(Event{At: at, Kind: kind, Job: j, User: u, Detail: detail})
}

// Events returns the recorded stream. Callers must not mutate.
func (l *Log) Events() []Event { return l.events }

// Len returns the event count.
func (l *Log) Len() int { return len(l.events) }

// Filter returns events of one kind.
func (l *Log) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// WriteCSV emits the stream with a header row.
func (l *Log) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_seconds", "kind", "job", "user", "detail"}); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	for _, e := range l.events {
		rec := []string{
			strconv.FormatFloat(float64(e.At), 'f', 3, 64),
			string(e.Kind),
			strconv.FormatInt(int64(e.Job), 10),
			string(e.User),
			e.Detail,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the stream as a JSON array.
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(l.events); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}
