package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/simclock"
)

func fixture() *Log {
	l := &Log{}
	l.Add(0, KindArrival, 1, "alice", "")
	l.Add(60, KindStart, 1, "alice", "gen=V100")
	l.Add(120, KindMigration, 1, "alice", "K80->V100")
	l.Add(3600.5, KindFinish, 1, "alice", "")
	return l
}

func TestAppendAndFilter(t *testing.T) {
	l := fixture()
	if l.Len() != 4 {
		t.Fatalf("Len = %d", l.Len())
	}
	mig := l.Filter(KindMigration)
	if len(mig) != 1 || mig[0].Detail != "K80->V100" {
		t.Fatalf("Filter = %+v", mig)
	}
	if len(l.Filter(KindTrade)) != 0 {
		t.Error("Filter invented events")
	}
}

func TestWriteCSVRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := fixture().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want header+4", len(rows))
	}
	if rows[0][0] != "at_seconds" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[4][0] != "3600.500" || rows[4][1] != "finish" || rows[4][3] != "alice" {
		t.Errorf("last row = %v", rows[4])
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := fixture().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []Event
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("decoded %d events", len(events))
	}
	if events[1].Kind != KindStart || events[1].Detail != "gen=V100" {
		t.Errorf("event 1 = %+v", events[1])
	}
}

func TestEmptyLog(t *testing.T) {
	var l Log
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Errorf("empty CSV has %d lines, want header only", got)
	}
}

func TestEventKindsComplete(t *testing.T) {
	kinds := []Kind{
		KindArrival, KindStart, KindFinish, KindMigration,
		KindTrade, KindRound, KindFailure, KindRecovery,
	}
	l := &Log{}
	for i, k := range kinds {
		l.Add(simclock.Time(i), k, 1, "u", "")
	}
	for _, k := range kinds {
		if len(l.Filter(k)) != 1 {
			t.Errorf("kind %s not round-tripped through Filter", k)
		}
	}
}

func TestEventsAccessor(t *testing.T) {
	l := fixture()
	ev := l.Events()
	if len(ev) != l.Len() {
		t.Fatalf("Events() returned %d of %d", len(ev), l.Len())
	}
	if ev[0].Kind != KindArrival {
		t.Errorf("first event = %+v", ev[0])
	}
}

// failWriter errors after n bytes to exercise writer error paths.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errWrite
	}
	take := len(p)
	if take > w.n {
		take = w.n
	}
	w.n -= take
	if take < len(p) {
		return take, errWrite
	}
	return take, nil
}

var errWrite = errors.New("writer full")

func TestWriteErrorsPropagate(t *testing.T) {
	l := fixture()
	if err := l.WriteCSV(&failWriter{n: 10}); err == nil {
		t.Error("WriteCSV swallowed the writer error")
	}
	if err := l.WriteJSON(&failWriter{n: 10}); err == nil {
		t.Error("WriteJSON swallowed the writer error")
	}
}
