package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/simclock"
)

func fixture() *Log {
	l := &Log{}
	l.Add(0, KindArrival, 1, "alice", "")
	l.Add(60, KindStart, 1, "alice", "gen=V100")
	l.Add(120, KindMigration, 1, "alice", "K80->V100")
	l.Add(3600.5, KindFinish, 1, "alice", "")
	return l
}

func TestAppendAndFilter(t *testing.T) {
	l := fixture()
	if l.Len() != 4 {
		t.Fatalf("Len = %d", l.Len())
	}
	mig := l.Filter(KindMigration)
	if len(mig) != 1 || mig[0].Detail != "K80->V100" {
		t.Fatalf("Filter = %+v", mig)
	}
	if len(l.Filter(KindTrade)) != 0 {
		t.Error("Filter invented events")
	}
}

func TestWriteCSVRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := fixture().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want header+4", len(rows))
	}
	if rows[0][0] != "at_seconds" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[4][0] != "3600.500" || rows[4][1] != "finish" || rows[4][3] != "alice" {
		t.Errorf("last row = %v", rows[4])
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := fixture().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []Event
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("decoded %d events", len(events))
	}
	if events[1].Kind != KindStart || events[1].Detail != "gen=V100" {
		t.Errorf("event 1 = %+v", events[1])
	}
}

func TestEmptyLog(t *testing.T) {
	var l Log
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Errorf("empty CSV has %d lines, want header only", got)
	}
}

func TestEventKindsComplete(t *testing.T) {
	kinds := []Kind{
		KindArrival, KindStart, KindFinish, KindMigration,
		KindTrade, KindRound, KindFailure, KindRecovery,
		KindJobCrash, KindMigFail, KindQuarantine, KindUnquarantine,
		KindDegrade, KindDegradeEnd,
	}
	l := &Log{}
	for i, k := range kinds {
		l.Add(simclock.Time(i), k, 1, "u", "")
	}
	for _, k := range kinds {
		if len(l.Filter(k)) != 1 {
			t.Errorf("kind %s not round-tripped through Filter", k)
		}
	}
}

func TestEventsAccessor(t *testing.T) {
	l := fixture()
	ev := l.Events()
	if len(ev) != l.Len() {
		t.Fatalf("Events() returned %d of %d", len(ev), l.Len())
	}
	if ev[0].Kind != KindArrival {
		t.Errorf("first event = %+v", ev[0])
	}
}

// failWriter errors after n bytes to exercise writer error paths.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errWrite
	}
	take := len(p)
	if take > w.n {
		take = w.n
	}
	w.n -= take
	if take < len(p) {
		return take, errWrite
	}
	return take, nil
}

var errWrite = errors.New("writer full")

func TestWriteErrorsPropagate(t *testing.T) {
	l := fixture()
	if err := l.WriteCSV(&failWriter{n: 10}); err == nil {
		t.Error("WriteCSV swallowed the writer error")
	}
	if err := l.WriteJSON(&failWriter{n: 10}); err == nil {
		t.Error("WriteJSON swallowed the writer error")
	}
}

// TestExportRoundTripsEveryKind pushes one event of every Kind through
// both exporters and back.
func TestExportRoundTripsEveryKind(t *testing.T) {
	kinds := []Kind{
		KindArrival, KindStart, KindFinish, KindMigration,
		KindTrade, KindRound, KindFailure, KindRecovery,
		KindJobCrash, KindMigFail, KindQuarantine, KindUnquarantine,
		KindDegrade, KindDegradeEnd,
	}
	l := &Log{}
	for i, k := range kinds {
		l.Add(simclock.Time(i)*100, k, job.ID(int64(i+1)), "user-x", "d="+string(k))
	}

	var cbuf bytes.Buffer
	if err := l.WriteCSV(&cbuf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&cbuf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(kinds)+1 {
		t.Fatalf("%d CSV rows, want header+%d", len(rows), len(kinds))
	}
	for i, k := range kinds {
		if rows[i+1][1] != string(k) || rows[i+1][4] != "d="+string(k) {
			t.Errorf("CSV row %d = %v, want kind %s", i+1, rows[i+1], k)
		}
	}

	var jbuf bytes.Buffer
	if err := l.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var events []Event
	if err := json.Unmarshal(jbuf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	for i, k := range kinds {
		if events[i].Kind != k || events[i].Job != job.ID(int64(i+1)) {
			t.Errorf("JSON event %d = %+v, want kind %s", i, events[i], k)
		}
	}
}

// TestEmptyLogJSON checks an empty log exports [] rather than null.
func TestEmptyLogJSON(t *testing.T) {
	var l Log
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" {
		t.Errorf("empty JSON export = %q, want []", s)
	}
	var events []Event
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("decoded %d events from empty log", len(events))
	}
}

// TestNonASCIIDetail runs multibyte and quote-laden details through
// both exporters: content must survive escaping byte-for-byte.
func TestNonASCIIDetail(t *testing.T) {
	details := []string{
		"移行 K80→V100 α=1.4",
		"préempté, «guillemets», ümlauts",
		`comma, "quotes" and
newline`,
		"emoji ⚡🤝 trade",
	}
	l := &Log{}
	for i, d := range details {
		l.Add(simclock.Time(i), KindTrade, 1, "пользователь", d)
	}

	var cbuf bytes.Buffer
	if err := l.WriteCSV(&cbuf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&cbuf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range details {
		if rows[i+1][4] != d {
			t.Errorf("CSV detail %d = %q, want %q", i+1, rows[i+1][4], d)
		}
		if rows[i+1][3] != "пользователь" {
			t.Errorf("CSV user %d = %q", i+1, rows[i+1][3])
		}
	}

	var jbuf bytes.Buffer
	if err := l.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var events []Event
	if err := json.Unmarshal(jbuf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	for i, d := range details {
		if events[i].Detail != d {
			t.Errorf("JSON detail %d = %q, want %q", i, events[i].Detail, d)
		}
	}
}

// TestSetCapRingSemantics covers the bounded-log satellite: eviction
// order, Dropped accounting, trimming on late SetCap, and unbounding.
func TestSetCapRingSemantics(t *testing.T) {
	l := &Log{}
	l.SetCap(3)
	if l.Cap() != 3 {
		t.Fatalf("Cap = %d", l.Cap())
	}
	for i := 0; i < 7; i++ {
		l.Add(simclock.Time(i), KindRound, job.ID(int64(i)), "u", "")
	}
	if l.Len() != 3 || l.Dropped() != 4 {
		t.Fatalf("Len=%d Dropped=%d, want 3/4", l.Len(), l.Dropped())
	}
	ev := l.Events()
	for i, want := range []int64{4, 5, 6} {
		if int64(ev[i].Job) != want {
			t.Errorf("event %d = job %d, want %d (newest kept, oldest-first order)", i, ev[i].Job, want)
		}
	}
	// Exporters see the linearized ring.
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, _ := csv.NewReader(&buf).ReadAll()
	if len(rows) != 4 || rows[1][2] != "4" {
		t.Errorf("capped CSV export rows = %v", rows)
	}

	// Late SetCap trims the oldest immediately.
	l2 := &Log{}
	for i := 0; i < 5; i++ {
		l2.Add(simclock.Time(i), KindRound, job.ID(int64(i)), "u", "")
	}
	l2.SetCap(2)
	if l2.Len() != 2 || l2.Dropped() != 3 {
		t.Fatalf("late cap: Len=%d Dropped=%d, want 2/3", l2.Len(), l2.Dropped())
	}
	if ev := l2.Events(); int64(ev[0].Job) != 3 || int64(ev[1].Job) != 4 {
		t.Errorf("late cap kept %+v", ev)
	}

	// Unbounding keeps contents and stops evicting.
	l2.SetCap(0)
	for i := 5; i < 10; i++ {
		l2.Add(simclock.Time(i), KindRound, job.ID(int64(i)), "u", "")
	}
	if l2.Len() != 7 || l2.Dropped() != 3 {
		t.Errorf("after unbound: Len=%d Dropped=%d, want 7/3", l2.Len(), l2.Dropped())
	}
}
