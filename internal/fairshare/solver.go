// Dirty-set water-filling: incremental front-ends over Compute and
// ComputeAllocation that re-solve only when an input actually changed
// since the last solve, and return the memoized result otherwise.
//
// Why memoization rather than a partial re-solve: the water level
// couples every active user — raising one user's demand can lower
// everyone else's surplus redistribution — so a numerically sound
// "re-solve only the dirty users" does not exist; any change to the
// dirty set's inputs can move every share. What IS sound is exact
// change tracking: demands are sums of integer gang widths held in
// float64 (exact arithmetic), tickets and capacities are compared
// bitwise, so "nothing changed" is decidable exactly, and the cached
// result is byte-identical to what a fresh solve would produce. At
// production scale (long-running jobs, rare arrivals) most rounds are
// clean, so the full solve — and all its map allocation — amortizes
// away.
package fairshare

import (
	"repro/internal/gpu"
	"repro/internal/job"
)

// Solver memoizes Compute for the engine's fairness reference. The
// caller owns the change feed: AddDemand with exact gang-width deltas
// as jobs arrive and retire, SetTickets on operator reconfiguration,
// SetCapacity every round (a no-op when unchanged). Shares returns the
// cached result when no input changed since the last call; the map is
// shared storage and must be treated read-only.
type Solver struct {
	tickets  map[job.UserID]float64
	demand   map[job.UserID]float64
	capacity float64

	// clean snapshots the value each dirty key had when the cache was
	// last valid; a key whose current value drifted back (a finish and
	// an arrival of equal width in one round) is not really dirty.
	cleanDemand  map[job.UserID]float64
	cleanTickets map[job.UserID]float64
	capDirty     bool

	shares map[job.UserID]float64 //gflint:noretain solver cache, rewritten on re-solve
	valid  bool

	solves, reuses int // statistics, exposed for tests and benchmarks
}

// NewSolver returns an empty solver: no users, zero capacity.
func NewSolver() *Solver {
	return &Solver{
		tickets:      make(map[job.UserID]float64),
		demand:       make(map[job.UserID]float64),
		cleanDemand:  make(map[job.UserID]float64),
		cleanTickets: make(map[job.UserID]float64),
	}
}

// AddDemand adjusts user u's demand by delta GPUs (positive on
// arrival, negative on retirement). Demands are integer gang sums, so
// the float arithmetic is exact and a zero demand is exactly zero.
func (s *Solver) AddDemand(u job.UserID, delta float64) {
	if delta == 0 {
		return
	}
	old := s.demand[u]
	if s.valid {
		if _, seen := s.cleanDemand[u]; !seen {
			s.cleanDemand[u] = old
		}
	}
	nw := old + delta
	if nw == 0 {
		delete(s.demand, u)
	} else {
		s.demand[u] = nw
	}
}

// SetTickets sets user u's ticket weight.
func (s *Solver) SetTickets(u job.UserID, t float64) {
	old, had := s.tickets[u]
	if had && old == t {
		return
	}
	if s.valid {
		if _, seen := s.cleanTickets[u]; !seen {
			s.cleanTickets[u] = old
		}
	}
	s.tickets[u] = t
}

// SetCapacity sets the round's total available capacity.
func (s *Solver) SetCapacity(c float64) {
	if c == s.capacity {
		return
	}
	s.capacity = c
	s.capDirty = true
}

// dirty reports whether any input really differs from the cached
// solve's inputs, clearing snapshot entries that drifted back.
func (s *Solver) dirty() bool {
	if !s.valid || s.capDirty {
		return true
	}
	for u, was := range s.cleanDemand {
		if s.demand[u] != was {
			return true
		}
	}
	for u, was := range s.cleanTickets {
		if s.tickets[u] != was {
			return true
		}
	}
	return false
}

// Shares returns the water-fill of the current inputs, re-solving
// only when an input changed since the last call. The returned map is
// the solver's cache: read-only, valid until the next Shares call
// after a change.
//
//gflint:noretain
func (s *Solver) Shares() map[job.UserID]float64 {
	if s.dirty() {
		s.shares = Compute(s.tickets, s.demand, s.capacity)
		s.valid = true
		s.solves++
	} else {
		s.reuses++
	}
	s.capDirty = false
	for u := range s.cleanDemand {
		delete(s.cleanDemand, u)
	}
	for u := range s.cleanTickets {
		delete(s.cleanTickets, u)
	}
	return s.shares
}

// Stats reports (full solves, cache reuses) since construction.
func (s *Solver) Stats() (solves, reuses int) { return s.solves, s.reuses }

// AllocationSolver memoizes ComputeAllocation for policies that
// rebuild their inputs from scratch each round: Solve diffs the given
// tickets/demand/capacities against the previous round's and returns
// the cached Allocation when nothing changed. The returned Allocation
// is shared storage: callers must not mutate it (trade.Run clones its
// input, so the trading path is safe).
//
// The debt path (ComputeAllocationWithDebt) is deliberately not
// memoized: debt rounds follow fault events, are rare, and their
// inputs (the deficit drain) change every round by construction.
type AllocationSolver struct {
	tickets map[job.UserID]float64
	demand  map[job.UserID]float64
	caps    map[gpu.Generation]int

	alloc Allocation //gflint:noretain solver cache, rewritten on re-solve
	valid bool

	solves, reuses int
}

// NewAllocationSolver returns an empty solver.
func NewAllocationSolver() *AllocationSolver {
	return &AllocationSolver{
		tickets: make(map[job.UserID]float64),
		demand:  make(map[job.UserID]float64),
		caps:    make(map[gpu.Generation]int),
	}
}

// Solve returns ComputeAllocation(tickets, demand, capacities),
// re-solving only when an input differs from the previous call.
//
//gflint:noretain
func (s *AllocationSolver) Solve(tickets, demand map[job.UserID]float64, capacities map[gpu.Generation]int) Allocation {
	if s.valid &&
		floatMapEqual(s.tickets, tickets) &&
		floatMapEqual(s.demand, demand) &&
		intMapEqual(s.caps, capacities) {
		s.reuses++
		return s.alloc
	}
	s.alloc = ComputeAllocation(tickets, demand, capacities)
	s.valid = true
	s.solves++
	s.tickets = copyFloatMap(s.tickets, tickets)
	s.demand = copyFloatMap(s.demand, demand)
	s.caps = copyIntMap(s.caps, capacities)
	return s.alloc
}

// Stats reports (full solves, cache reuses) since construction.
func (s *AllocationSolver) Stats() (solves, reuses int) { return s.solves, s.reuses }

func floatMapEqual[K comparable](a, b map[K]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func intMapEqual[K comparable](a, b map[K]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func copyFloatMap[K comparable](dst, src map[K]float64) map[K]float64 {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

func copyIntMap[K comparable](dst, src map[K]int) map[K]int {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
	return dst
}
