package fairshare

import (
	"math"
	"testing"

	"repro/internal/job"
)

func orgFixture() map[string]*Org {
	return map[string]*Org{
		"research": {Tickets: 2, Weights: map[job.UserID]float64{"r1": 1, "r2": 1, "r3": 2}},
		"prod":     {Tickets: 2, Weights: map[job.UserID]float64{"p1": 1}},
	}
}

func TestNewHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(nil); err == nil {
		t.Error("empty hierarchy accepted")
	}
	bad := []map[string]*Org{
		{"a": nil},
		{"a": {Tickets: 0, Weights: map[job.UserID]float64{"u": 1}}},
		{"a": {Tickets: 1, Weights: nil}},
		{"a": {Tickets: 1, Weights: map[job.UserID]float64{"u": 0}}},
		{"a": {Tickets: 1, Weights: map[job.UserID]float64{"u": 1}},
			"b": {Tickets: 1, Weights: map[job.UserID]float64{"u": 1}}}, // dup user
	}
	for i, o := range bad {
		if _, err := NewHierarchy(o); err == nil {
			t.Errorf("bad hierarchy %d accepted", i)
		}
	}
	if _, err := NewHierarchy(orgFixture()); err != nil {
		t.Fatalf("valid hierarchy rejected: %v", err)
	}
}

func TestHierarchyUsers(t *testing.T) {
	h := MustNewHierarchy(orgFixture())
	users := h.Users()
	want := []job.UserID{"p1", "r1", "r2", "r3"}
	if len(users) != len(want) {
		t.Fatalf("Users = %v", users)
	}
	for i := range want {
		if users[i] != want[i] {
			t.Fatalf("Users = %v, want %v", users, want)
		}
	}
}

func TestFlattenAllActive(t *testing.T) {
	h := MustNewHierarchy(orgFixture())
	tk := h.Flatten([]job.UserID{"r1", "r2", "r3", "p1"})
	// research's 2 tickets split 1:1:2 over r1,r2,r3; prod's 2 go to p1.
	if !almost(tk["r1"], 0.5) || !almost(tk["r2"], 0.5) || !almost(tk["r3"], 1.0) {
		t.Errorf("research tickets = %v", tk)
	}
	if !almost(tk["p1"], 2.0) {
		t.Errorf("prod tickets = %v", tk["p1"])
	}
}

func TestFlattenPartialActivity(t *testing.T) {
	h := MustNewHierarchy(orgFixture())
	// Only r1 active in research: it inherits the whole org pool, so
	// the org's standing against prod is preserved.
	tk := h.Flatten([]job.UserID{"r1", "p1"})
	if !almost(tk["r1"], 2.0) || !almost(tk["p1"], 2.0) {
		t.Errorf("tickets = %v, want r1 and p1 at 2 each", tk)
	}
	if _, ok := tk["r2"]; ok {
		t.Error("inactive user got tickets")
	}
	// Unknown users get nothing.
	tk = h.Flatten([]job.UserID{"stranger"})
	if len(tk) != 0 {
		t.Errorf("stranger got %v", tk)
	}
}

func TestFlattenOrgFullyIdle(t *testing.T) {
	h := MustNewHierarchy(orgFixture())
	tk := h.Flatten([]job.UserID{"p1"})
	if len(tk) != 1 || !almost(tk["p1"], 2) {
		t.Errorf("tickets = %v", tk)
	}
}

// Org-level fairness end to end: whatever the member counts, the two
// orgs' aggregate water-filled shares stay 1:1.
func TestHierarchyOrgLevelShares(t *testing.T) {
	h := MustNewHierarchy(orgFixture())
	active := []job.UserID{"r1", "r2", "r3", "p1"}
	tk := h.Flatten(active)
	demand := map[job.UserID]float64{"r1": 100, "r2": 100, "r3": 100, "p1": 100}
	shares := Compute(tk, demand, 40)
	research := shares["r1"] + shares["r2"] + shares["r3"]
	prod := shares["p1"]
	if !almost(research, 20) || !almost(prod, 20) {
		t.Fatalf("org shares research=%v prod=%v, want 20/20", research, prod)
	}
	// Intra-org: r3 has weight 2 ⇒ twice r1's share.
	if math.Abs(shares["r3"]-2*shares["r1"]) > 1e-9 {
		t.Errorf("intra-org weights not honored: %v", shares)
	}
}
