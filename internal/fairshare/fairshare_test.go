package fairshare

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gpu"
	"repro/internal/job"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestComputeEqualTicketsAmpleDemand(t *testing.T) {
	tk := EqualTickets("a", "b", "c", "d")
	dm := map[job.UserID]float64{"a": 100, "b": 100, "c": 100, "d": 100}
	sh := Compute(tk, dm, 40)
	for u, s := range sh {
		if !almost(s, 10) {
			t.Errorf("share[%s] = %v, want 10", u, s)
		}
	}
}

func TestComputeProportionalTickets(t *testing.T) {
	tk := map[job.UserID]float64{"a": 3, "b": 1}
	dm := map[job.UserID]float64{"a": 100, "b": 100}
	sh := Compute(tk, dm, 40)
	if !almost(sh["a"], 30) || !almost(sh["b"], 10) {
		t.Errorf("shares = %v, want a:30 b:10", sh)
	}
}

func TestComputeWaterFillingRedistribution(t *testing.T) {
	// a can only use 2 GPUs; its surplus flows to b and c in ticket
	// proportion.
	tk := EqualTickets("a", "b", "c")
	dm := map[job.UserID]float64{"a": 2, "b": 100, "c": 100}
	sh := Compute(tk, dm, 30)
	if !almost(sh["a"], 2) {
		t.Errorf("capped user got %v, want 2", sh["a"])
	}
	if !almost(sh["b"], 14) || !almost(sh["c"], 14) {
		t.Errorf("surplus not redistributed: %v", sh)
	}
}

func TestComputeCascadingCaps(t *testing.T) {
	// Two rounds of capping: a caps at 1, then b caps at 5.
	tk := EqualTickets("a", "b", "c")
	dm := map[job.UserID]float64{"a": 1, "b": 5, "c": 100}
	sh := Compute(tk, dm, 30)
	if !almost(sh["a"], 1) || !almost(sh["b"], 5) || !almost(sh["c"], 24) {
		t.Errorf("shares = %v, want a:1 b:5 c:24", sh)
	}
}

func TestComputeUndersubscribed(t *testing.T) {
	tk := EqualTickets("a", "b")
	dm := map[job.UserID]float64{"a": 3, "b": 4}
	sh := Compute(tk, dm, 100)
	if !almost(sh["a"], 3) || !almost(sh["b"], 4) {
		t.Errorf("undersubscribed shares = %v, want demand met exactly", sh)
	}
}

func TestComputeEdgeCases(t *testing.T) {
	if sh := Compute(nil, nil, 10); len(sh) != 0 {
		t.Errorf("empty inputs → %v", sh)
	}
	if sh := Compute(EqualTickets("a"), map[job.UserID]float64{"a": 5}, 0); len(sh) != 0 {
		t.Errorf("zero capacity → %v", sh)
	}
	// Zero tickets ⇒ no share even with demand.
	sh := Compute(map[job.UserID]float64{"a": 0, "b": 1},
		map[job.UserID]float64{"a": 10, "b": 10}, 10)
	if sh["a"] != 0 || !almost(sh["b"], 10) {
		t.Errorf("zero-ticket user: %v", sh)
	}
	// Zero demand ⇒ no share.
	sh = Compute(EqualTickets("a", "b"), map[job.UserID]float64{"a": 0, "b": 10}, 10)
	if sh["a"] != 0 || !almost(sh["b"], 10) {
		t.Errorf("zero-demand user: %v", sh)
	}
}

// Property suite for water-filling.
func TestPropertyWaterFilling(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(8)
		tk := map[job.UserID]float64{}
		dm := map[job.UserID]float64{}
		var users []job.UserID
		for i := 0; i < n; i++ {
			u := job.UserID(string(rune('a' + i)))
			users = append(users, u)
			tk[u] = float64(rng.Intn(5)) // may be zero
			dm[u] = float64(rng.Intn(20))
		}
		capacity := float64(rng.Intn(50))
		sh := Compute(tk, dm, capacity)

		var shareSum, demandSum float64
		for _, u := range users {
			if sh[u] < -1e-9 {
				t.Fatalf("negative share %v", sh[u])
			}
			if sh[u] > dm[u]+1e-6 {
				t.Fatalf("share %v exceeds demand %v", sh[u], dm[u])
			}
			shareSum += sh[u]
			if tk[u] > 0 {
				demandSum += dm[u]
			}
		}
		if shareSum > capacity+1e-6 {
			t.Fatalf("allocated %v > capacity %v", shareSum, capacity)
		}
		// Work conservation: all capacity used or all demand met.
		if shareSum < math.Min(capacity, demandSum)-1e-6 {
			t.Fatalf("left capacity on the table: allocated %v, capacity %v, demand %v",
				shareSum, capacity, demandSum)
		}
		// Uncapped users (share < demand) must be ticket-proportional
		// to each other.
		type unc struct{ s, t float64 }
		var us []unc
		for _, u := range users {
			if tk[u] > 0 && sh[u] < dm[u]-1e-6 && sh[u] > 1e-9 {
				us = append(us, unc{sh[u], tk[u]})
			}
		}
		for i := 1; i < len(us); i++ {
			r0 := us[0].s / us[0].t
			ri := us[i].s / us[i].t
			if math.Abs(r0-ri) > 1e-6 {
				t.Fatalf("uncapped users not proportional: %v vs %v", r0, ri)
			}
		}
	}
}

func TestSplitByGen(t *testing.T) {
	caps := map[gpu.Generation]int{gpu.K80: 40, gpu.V100: 10}
	e := SplitByGen(10, caps)
	if !almost(e[gpu.K80], 8) || !almost(e[gpu.V100], 2) {
		t.Errorf("split = %v, want K80:8 V100:2", e)
	}
	if len(SplitByGen(0, caps)) != 0 {
		t.Error("zero total split nonempty")
	}
	if len(SplitByGen(5, nil)) != 0 {
		t.Error("nil capacities split nonempty")
	}
}

func TestComputeAllocationAndValidate(t *testing.T) {
	caps := map[gpu.Generation]int{gpu.K80: 30, gpu.V100: 10}
	tk := EqualTickets("a", "b")
	dm := map[job.UserID]float64{"a": 100, "b": 100}
	alloc := ComputeAllocation(tk, dm, caps)
	if err := alloc.Validate(dm, caps); err != nil {
		t.Fatal(err)
	}
	if !almost(alloc["a"].Total(), 20) || !almost(alloc["b"].Total(), 20) {
		t.Errorf("totals = %v", alloc)
	}
	if !almost(alloc["a"][gpu.V100], 5) {
		t.Errorf("a's V100 share = %v, want 5", alloc["a"][gpu.V100])
	}
	byGen := alloc.TotalByGen()
	if !almost(byGen[gpu.K80], 30) || !almost(byGen[gpu.V100], 10) {
		t.Errorf("per-gen totals = %v", byGen)
	}
}

func TestAllocationValidateCatchesViolations(t *testing.T) {
	caps := map[gpu.Generation]int{gpu.K80: 10}
	dm := map[job.UserID]float64{"a": 5}
	over := Allocation{"a": {gpu.K80: 11}}
	if over.Validate(dm, caps) == nil {
		t.Error("over-capacity allocation validated")
	}
	overDemand := Allocation{"a": {gpu.K80: 6}}
	if overDemand.Validate(dm, caps) == nil {
		t.Error("over-demand allocation validated")
	}
	neg := Allocation{"a": {gpu.K80: -1}}
	if neg.Validate(dm, caps) == nil {
		t.Error("negative allocation validated")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Allocation{"a": {gpu.K80: 1, gpu.V100: 2}}
	b := a.Clone()
	b["a"][gpu.K80] = 99
	if a["a"][gpu.K80] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestJobTickets(t *testing.T) {
	tk := map[job.UserID]float64{"a": 6, "b": 2, "c": 0}
	jobs := map[job.UserID]int{"a": 3, "b": 1, "c": 4, "d": 2}
	jt := JobTickets(tk, jobs)
	if !almost(jt["a"], 2) || !almost(jt["b"], 2) {
		t.Errorf("job tickets = %v", jt)
	}
	if _, ok := jt["c"]; ok {
		t.Error("zero-ticket user present")
	}
	if _, ok := jt["d"]; ok {
		t.Error("unknown user present")
	}
	if len(JobTickets(tk, map[job.UserID]int{"a": 0})) != 0 {
		t.Error("user with zero jobs got tickets")
	}
}

func TestFairFractions(t *testing.T) {
	tk := map[job.UserID]float64{"a": 1, "b": 3}
	fr := FairFractions(tk, []job.UserID{"a", "b"})
	if !almost(fr["a"], 0.25) || !almost(fr["b"], 0.75) {
		t.Errorf("fractions = %v", fr)
	}
	// Inactive users excluded from the denominator.
	fr = FairFractions(tk, []job.UserID{"b"})
	if !almost(fr["b"], 1) {
		t.Errorf("single active fraction = %v", fr["b"])
	}
	if len(FairFractions(tk, nil)) != 0 {
		t.Error("no active users → nonempty fractions")
	}
	fr = FairFractions(map[job.UserID]float64{"a": 0}, []job.UserID{"a"})
	if len(fr) != 0 {
		t.Errorf("all-zero tickets → %v", fr)
	}
}

func TestMaxShareError(t *testing.T) {
	ideal := map[job.UserID]float64{"a": 0.5, "b": 0.5}
	obs := map[job.UserID]float64{"a": 0.45, "b": 0.55}
	if e := MaxShareError(obs, ideal); !almost(e, 0.05) {
		t.Errorf("MaxShareError = %v, want 0.05", e)
	}
	if e := MaxShareError(map[job.UserID]float64{}, ideal); !almost(e, 0.5) {
		t.Errorf("missing observations → %v, want 0.5", e)
	}
}

func TestComputeAllocationWithDebt(t *testing.T) {
	caps := map[gpu.Generation]int{gpu.K80: 12}
	tickets := map[job.UserID]float64{"a": 1, "b": 1, "c": 1}
	demand := map[job.UserID]float64{"a": 12, "b": 12, "c": 12}

	// No debt behaves exactly like ComputeAllocation.
	alloc, granted := ComputeAllocationWithDebt(tickets, demand, caps, nil, 0.25)
	if len(granted) != 0 {
		t.Errorf("grants without debt: %v", granted)
	}
	plain := ComputeAllocation(tickets, demand, caps)
	for u := range tickets {
		if !almost(alloc[u].Total(), plain[u].Total()) {
			t.Errorf("user %s: debt-free %v != plain %v", u, alloc[u].Total(), plain[u].Total())
		}
	}

	// A debtor is repaid off the top: a gets its equal share PLUS the
	// marginal grant, and the grant equals the reported repayment.
	debt := map[job.UserID]float64{"a": 2}
	alloc, granted = ComputeAllocationWithDebt(tickets, demand, caps, debt, 0.25)
	if err := alloc.Validate(demand, caps); err != nil {
		t.Fatal(err)
	}
	if granted["a"] <= 0 {
		t.Fatalf("debtor granted nothing: %v", granted)
	}
	if got := alloc["a"].Total(); !almost(got, plain["a"].Total()+granted["a"]) {
		t.Errorf("debtor share %v != base %v + grant %v", got, plain["a"].Total(), granted["a"])
	}

	// The repayment budget caps the round's total grants.
	hugeDebt := map[job.UserID]float64{"a": 100, "b": 100}
	_, granted = ComputeAllocationWithDebt(tickets, demand, caps, hugeDebt, 0.25)
	var sum float64
	for _, u := range []job.UserID{"a", "b"} {
		sum += granted[u]
	}
	if sum > 0.25*12+1e-6 {
		t.Errorf("grants %v exceed 25%% budget", sum)
	}

	// maxRepayFrac <= 0 disables repayment entirely.
	_, granted = ComputeAllocationWithDebt(tickets, demand, caps, debt, 0)
	if len(granted) != 0 {
		t.Errorf("grants despite zero budget: %v", granted)
	}

	// Repayment is demand-capped: a debtor with no runnable work
	// cannot be granted catch-up capacity.
	idleDemand := map[job.UserID]float64{"a": 0, "b": 12, "c": 12}
	alloc, granted = ComputeAllocationWithDebt(tickets, idleDemand, caps, debt, 0.25)
	if len(granted) != 0 {
		t.Errorf("idle debtor granted %v", granted)
	}
	if err := alloc.Validate(idleDemand, caps); err != nil {
		t.Fatal(err)
	}
}
