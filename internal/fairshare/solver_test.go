package fairshare

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/gpu"
	"repro/internal/job"
)

// TestSolverMatchesCompute drives the incremental Solver through
// randomized demand/ticket/capacity churn and requires its shares to
// equal a fresh Compute of the same inputs, bit for bit, every step.
func TestSolverMatchesCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	users := []job.UserID{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 20; trial++ {
		s := NewSolver()
		tickets := map[job.UserID]float64{}
		demand := map[job.UserID]float64{}
		for _, u := range users {
			w := 1 + rng.Float64()*3
			tickets[u] = w
			s.SetTickets(u, w)
		}
		capacity := float64(10 + rng.Intn(50))
		s.SetCapacity(capacity)

		for step := 0; step < 60; step++ {
			switch rng.Intn(4) {
			case 0: // arrival
				u := users[rng.Intn(len(users))]
				g := float64(1 + rng.Intn(8))
				demand[u] += g
				s.AddDemand(u, g)
			case 1: // retirement
				u := users[rng.Intn(len(users))]
				if demand[u] > 0 {
					g := float64(1 + rng.Intn(int(demand[u])))
					demand[u] -= g
					if demand[u] == 0 {
						delete(demand, u)
					}
					s.AddDemand(u, -g)
				}
			case 2: // ticket change
				u := users[rng.Intn(len(users))]
				w := 0.5 + rng.Float64()*4
				tickets[u] = w
				s.SetTickets(u, w)
			case 3: // capacity change (quarantine / recovery)
				capacity = float64(10 + rng.Intn(50))
				s.SetCapacity(capacity)
			}
			want := Compute(tickets, demand, capacity)
			got := s.Shares()
			if !sharesEqual(got, want) {
				t.Fatalf("trial %d step %d: solver %v, want %v", trial, step, got, want)
			}
		}
	}
}

// TestSolverReusesCleanRounds checks the memoization actually fires:
// repeated Shares calls with untouched inputs, including changes that
// net out to zero, must not re-solve.
func TestSolverReusesCleanRounds(t *testing.T) {
	s := NewSolver()
	s.SetTickets("a", 1)
	s.SetTickets("b", 2)
	s.AddDemand("a", 4)
	s.AddDemand("b", 8)
	s.SetCapacity(10)
	first := s.Shares()
	for i := 0; i < 5; i++ {
		s.SetCapacity(10) // unchanged: no-op
		if got := s.Shares(); !sharesEqual(got, first) {
			t.Fatalf("clean round %d changed shares", i)
		}
	}
	// A finish and an arrival of equal width in the same round nets to
	// zero: still clean.
	s.AddDemand("a", -2)
	s.AddDemand("a", 2)
	s.Shares()
	solves, reuses := s.Stats()
	if solves != 1 {
		t.Fatalf("solves = %d, want 1 (reuses %d)", solves, reuses)
	}
	if reuses != 6 {
		t.Fatalf("reuses = %d, want 6", reuses)
	}
	// A real change re-solves.
	s.AddDemand("a", 3)
	s.Shares()
	if solves, _ := s.Stats(); solves != 2 {
		t.Fatalf("solves = %d after real change, want 2", solves)
	}
}

// TestAllocationSolverMatchesComputeAllocation randomizes the policy
// inputs and requires Solve to equal a fresh ComputeAllocation.
func TestAllocationSolverMatchesComputeAllocation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	users := []job.UserID{"u1", "u2", "u3", "u4"}
	s := NewAllocationSolver()
	tickets := map[job.UserID]float64{}
	demand := map[job.UserID]float64{}
	caps := map[gpu.Generation]int{gpu.K80: 12, gpu.V100: 8}
	for _, u := range users {
		tickets[u] = 1 + rng.Float64()*2
		demand[u] = float64(rng.Intn(12))
	}
	for step := 0; step < 80; step++ {
		// Mutate sometimes; identical inputs the rest of the time.
		if rng.Intn(3) == 0 {
			u := users[rng.Intn(len(users))]
			demand[u] = float64(rng.Intn(12))
		}
		if rng.Intn(10) == 0 {
			caps[gpu.K80] = 8 + rng.Intn(8)
		}
		want := ComputeAllocation(tickets, demand, caps)
		got := s.Solve(tickets, demand, caps)
		if !reflect.DeepEqual(allocAsString(got), allocAsString(want)) {
			t.Fatalf("step %d: solver %v, want %v", step, got, want)
		}
	}
	solves, reuses := s.Stats()
	if reuses == 0 {
		t.Fatalf("memoization never fired (solves %d)", solves)
	}
	if solves == 80 {
		t.Fatal("every step re-solved despite identical inputs")
	}
}

func sharesEqual(a, b map[job.UserID]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for u, v := range a {
		if bv, ok := b[u]; !ok || bv != v {
			return false
		}
	}
	return true
}

// allocAsString canonicalizes an Allocation for exact comparison
// (%.17g round-trips float64 exactly).
func allocAsString(a Allocation) map[job.UserID]string {
	out := make(map[job.UserID]string, len(a))
	for u, e := range a {
		s := ""
		for _, g := range gpu.Generations() {
			if v, ok := e[g]; ok {
				s += fmt.Sprintf("%v=%.17g ", g, v)
			}
		}
		out[u] = s
	}
	return out
}
