package fairshare

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/job"
)

// adversarialByUser builds a per-user map whose values span ~36 orders
// of magnitude, so any summation whose order follows Go's randomized
// map iteration rounds differently between calls. Repeating a
// computation many times over such a map is the regression harness for
// the gflint maprange fixes: each call sees a fresh iteration order.
func adversarialByUser(n int) map[job.UserID]float64 {
	out := make(map[job.UserID]float64, n)
	for i := 0; i < n; i++ {
		out[job.UserID(fmt.Sprintf("u%03d", i))] = math.Exp2(float64(i%60-30)) * (1 + float64(i)/math.Pi)
	}
	return out
}

// repeatable runs fn many times and reports the first call whose
// result differs bit-for-bit from the first.
func repeatable[K comparable](t *testing.T, name string, fn func() map[K]float64) {
	t.Helper()
	want := fn()
	for trial := 1; trial < 150; trial++ {
		got := fn()
		if len(got) != len(want) {
			t.Fatalf("%s: trial %d returned %d entries, first call %d", name, trial, len(got), len(want))
		}
		for k, v := range want {
			if g, ok := got[k]; !ok || g != v {
				t.Fatalf("%s: trial %d differs at %v: %v vs %v", name, trial, k, g, v)
			}
		}
	}
}

func TestSplitByGenRepeatable(t *testing.T) {
	capacities := make(map[gpu.Generation]int)
	for i, g := range gpu.Generations() {
		capacities[g] = 3*i + 1
	}
	repeatable(t, "SplitByGen", func() map[gpu.Generation]float64 {
		return SplitByGen(math.Pi, capacities)
	})
}

func TestComputeAllocationRepeatable(t *testing.T) {
	tickets := adversarialByUser(40)
	demand := adversarialByUser(40)
	capacities := make(map[gpu.Generation]int)
	for i, g := range gpu.Generations() {
		capacities[g] = 7 * (i + 1)
	}
	run := func() Allocation { return ComputeAllocation(tickets, demand, capacities) }
	want := run()
	for trial := 1; trial < 150; trial++ {
		got := run()
		for u, ent := range want {
			for g, v := range ent {
				if got[u][g] != v {
					t.Fatalf("trial %d differs at %s/%v: %v vs %v", trial, u, g, got[u][g], v)
				}
			}
		}
	}
}

func TestFlattenRepeatable(t *testing.T) {
	weights := adversarialByUser(40)
	h := MustNewHierarchy(map[string]*Org{
		"big":   {Tickets: 3, Weights: weights},
		"small": {Tickets: 1, Weights: map[job.UserID]float64{"z-solo": 1}},
	})
	var active []job.UserID
	for _, u := range job.SortedUsers(weights) {
		if u != "u000" { // one idle member, so wsum is a strict subset sum
			active = append(active, u)
		}
	}
	active = append(active, "z-solo")
	repeatable(t, "Flatten", func() map[job.UserID]float64 {
		return h.Flatten(active)
	})
}
