package fairshare

import (
	"fmt"
	"sort"

	"repro/internal/job"
)

// Hierarchy describes two-level fairness: organizations hold tickets
// against each other, and each organization's share is divided among
// its users by intra-org weight. This generalizes the paper's flat
// per-user tickets to the org → user structure most clusters bill by.
//
// The flattening is demand-aware: an org's tickets are split only
// among its *active* users each round, so one org cannot lose share
// because some of its members are idle (the same work-conservation
// principle the flat scheme gets from water-filling).
type Hierarchy struct {
	orgs map[string]*Org
}

// Org is one organization's ticket pool and membership.
type Org struct {
	Tickets float64
	// Weights maps member users to their intra-org weight.
	Weights map[job.UserID]float64
}

// NewHierarchy validates and builds a hierarchy. Every user may
// belong to exactly one org.
func NewHierarchy(orgs map[string]*Org) (*Hierarchy, error) {
	if len(orgs) == 0 {
		return nil, fmt.Errorf("fairshare: empty hierarchy")
	}
	seen := make(map[job.UserID]string)
	for name, o := range orgs {
		if o == nil || o.Tickets <= 0 {
			return nil, fmt.Errorf("fairshare: org %q needs positive tickets", name)
		}
		if len(o.Weights) == 0 {
			return nil, fmt.Errorf("fairshare: org %q has no members", name)
		}
		for u, w := range o.Weights {
			if w <= 0 {
				return nil, fmt.Errorf("fairshare: user %s in org %q has non-positive weight", u, name)
			}
			if prev, dup := seen[u]; dup {
				return nil, fmt.Errorf("fairshare: user %s in both %q and %q", u, prev, name)
			}
			seen[u] = name
		}
	}
	return &Hierarchy{orgs: orgs}, nil
}

// MustNewHierarchy is NewHierarchy but panics on invalid input.
func MustNewHierarchy(orgs map[string]*Org) *Hierarchy {
	h, err := NewHierarchy(orgs)
	if err != nil {
		panic(err)
	}
	return h
}

// Users returns all member users, sorted.
func (h *Hierarchy) Users() []job.UserID {
	var out []job.UserID
	for _, o := range h.orgs {
		for u := range o.Weights {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Flatten converts the hierarchy into per-user tickets for one round
// given the currently active users: each org's tickets divide among
// its active members by weight; orgs with no active member contribute
// nothing (their share is implicitly redistributed by the outer
// water-filling, which only sees active users' demand). Users not in
// any org get no tickets.
func (h *Hierarchy) Flatten(active []job.UserID) map[job.UserID]float64 {
	activeSet := make(map[job.UserID]bool, len(active))
	for _, u := range active {
		activeSet[u] = true
	}
	out := make(map[job.UserID]float64)
	for _, o := range h.orgs {
		var wsum float64
		for _, u := range job.SortedUsers(o.Weights) {
			if activeSet[u] {
				wsum += o.Weights[u]
			}
		}
		if wsum <= 0 {
			continue
		}
		for u, w := range o.Weights {
			if activeSet[u] {
				out[u] = o.Tickets * w / wsum
			}
		}
	}
	return out
}
