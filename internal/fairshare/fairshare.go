// Package fairshare implements ticket-based fair-share accounting
// with max–min water-filling, the foundation of Gandiva_fair's
// fairness guarantee: cluster-wide GPU time is divided among active
// users in ticket proportion, and share a user cannot consume (demand
// below entitlement) is redistributed to the others, again in ticket
// proportion (work conservation).
package fairshare

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/gpu"
	"repro/internal/job"
)

// Epsilon below which shares and demands are treated as zero.
const eps = 1e-9

// Compute performs max–min water-filling: it divides capacity GPUs
// among users in proportion to tickets, capping each user at their
// demand and redistributing the surplus until either all capacity is
// assigned or all demand is met. Users absent from tickets get weight
// zero; users with zero demand get zero share.
//
// The returned shares are fractional GPUs (realized over time by
// time-slicing). Invariants: 0 ≤ share[u] ≤ demand[u];
// Σ share = min(capacity, Σ demand).
func Compute(tickets, demand map[job.UserID]float64, capacity float64) map[job.UserID]float64 {
	shares := make(map[job.UserID]float64, len(demand))
	if capacity <= eps {
		return shares
	}
	type user struct {
		id job.UserID
		t  float64
		d  float64
	}
	var active []user
	for id, d := range demand {
		t := tickets[id]
		if d > eps && t > eps {
			active = append(active, user{id, t, d})
		}
	}
	// Deterministic iteration order regardless of map layout.
	sort.Slice(active, func(i, j int) bool { return active[i].id < active[j].id })

	remaining := capacity
	used := 0.0
	for len(active) > 0 && remaining > eps {
		var ticketSum float64
		for _, u := range active {
			ticketSum += u.t
		}
		// Tentatively split remaining capacity by tickets; users whose
		// demand caps below their slice are finalized at demand.
		capped := false
		next := active[:0]
		for _, u := range active {
			slice := remaining * u.t / ticketSum
			if u.d <= slice+eps {
				shares[u.id] += u.d
				used += u.d
				capped = true
			} else {
				next = append(next, u)
			}
		}
		if !capped {
			// No one capped: everyone takes their proportional slice.
			for _, u := range next {
				shares[u.id] += remaining * u.t / ticketSum
			}
			remaining = 0
			break
		}
		// Recompute remaining after finalizing capped users. used is
		// accumulated in the deterministic finalization order — summing
		// the shares map here would make the float rounding (and hence
		// the whole simulation trajectory) depend on map iteration
		// order, which changes between processes.
		remaining = capacity - used
		active = next
	}
	return shares
}

// SplitByGen apportions a user's total share across GPU generations in
// proportion to cluster capacity — the heterogeneity-blind entitlement
// the trading mechanism then improves upon. capacities maps each
// present generation to its GPU count.
func SplitByGen(total float64, capacities map[gpu.Generation]int) map[gpu.Generation]float64 {
	out := make(map[gpu.Generation]float64, len(capacities))
	var sum float64
	for _, g := range gpu.Generations() {
		sum += float64(capacities[g])
	}
	if sum <= eps || total <= eps {
		return out
	}
	for g, c := range capacities {
		out[g] = total * float64(c) / sum
	}
	return out
}

// Entitlement is a user's per-generation fair share for one scheduling
// round, in (fractional) GPUs.
type Entitlement map[gpu.Generation]float64

// Total sums the entitlement across generations. Generations are
// visited in fixed order so the float rounding is identical across
// processes regardless of map layout.
func (e Entitlement) Total() float64 {
	var s float64
	for _, g := range gpu.Generations() {
		s += e[g]
	}
	return s
}

// Clone deep-copies the entitlement.
func (e Entitlement) Clone() Entitlement {
	out := make(Entitlement, len(e))
	for g, v := range e {
		out[g] = v
	}
	return out
}

// Allocation is the full per-user entitlement map for one round.
type Allocation map[job.UserID]Entitlement

// Clone deep-copies the allocation.
func (a Allocation) Clone() Allocation {
	out := make(Allocation, len(a))
	for u, e := range a {
		out[u] = e.Clone()
	}
	return out
}

// TotalByGen sums entitlements per generation across users. Users are
// visited in sorted order so the float rounding is identical across
// processes regardless of map layout.
func (a Allocation) TotalByGen() map[gpu.Generation]float64 {
	users := make([]job.UserID, 0, len(a))
	for u := range a {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	out := make(map[gpu.Generation]float64)
	for _, u := range users {
		for _, g := range gpu.Generations() {
			if v, ok := a[u][g]; ok {
				out[g] += v
			}
		}
	}
	return out
}

// ComputeAllocation runs the full fair-share pipeline for one round:
// water-fill total cluster capacity by tickets and demand, then split
// each user's share across generations by capacity proportion.
//
// demand[u] is the user's total runnable gang width in GPUs.
func ComputeAllocation(tickets, demand map[job.UserID]float64, capacities map[gpu.Generation]int) Allocation {
	var total float64
	for _, g := range gpu.Generations() {
		total += float64(capacities[g])
	}
	shares := Compute(tickets, demand, total)
	alloc := make(Allocation, len(shares))
	for u, s := range shares {
		alloc[u] = SplitByGen(s, capacities)
	}
	return alloc
}

// ComputeAllocationWithDebt is ComputeAllocation with failure
// compensation: users owed debt GPUs (GPU-seconds lost to faults,
// expressed in GPUs for this round) are repaid off the top — their
// repayment is granted before the remaining capacity is water-filled
// over the reduced demands — so surplus redistribution cannot starve a
// user's catch-up. Repayment per round is bounded by
// maxRepayFrac × capacity (≤ 0 disables repayment), and by each
// debtor's own demand: a user cannot consume more than they ask for.
//
// The second return value is the GPUs each debtor was granted beyond
// their no-debt water-fill share — the marginal repayment the caller
// should drain from the debt. Marginal accounting matters: capacity a
// debtor would have received anyway is their ordinary share, not a
// repayment, so counting it would drain debt without restoring the
// user's cumulative position.
func ComputeAllocationWithDebt(tickets, demand map[job.UserID]float64, capacities map[gpu.Generation]int, debt map[job.UserID]float64, maxRepayFrac float64) (Allocation, map[job.UserID]float64) {
	var total float64
	for _, g := range gpu.Generations() {
		total += float64(capacities[g])
	}
	base := Compute(tickets, demand, total)

	// Demand-capped repayment targets, scaled down to the budget if
	// the round's total debt exceeds it. Deterministic order: debtors
	// sorted by ID.
	debtors := make([]job.UserID, 0, len(debt))
	for u := range debt {
		debtors = append(debtors, u)
	}
	sort.Slice(debtors, func(i, j int) bool { return debtors[i] < debtors[j] })
	target := make(map[job.UserID]float64, len(debtors))
	var want float64
	for _, u := range debtors {
		r := math.Min(debt[u], demand[u])
		if r <= eps {
			continue
		}
		target[u] = r
		want += r
	}
	budget := maxRepayFrac * total
	if budget < 0 {
		budget = 0
	}
	if want > budget {
		scale := 0.0
		if want > eps {
			scale = budget / want
		}
		for _, u := range debtors {
			target[u] *= scale
		}
		want = budget
	}

	// Off-the-top grants, then water-fill the rest over the reduced
	// demands and remaining capacity.
	reduced := make(map[job.UserID]float64, len(demand))
	for u, d := range demand {
		reduced[u] = d
	}
	for _, u := range debtors {
		reduced[u] -= target[u]
	}
	rest := Compute(tickets, reduced, total-want)
	shares := make(map[job.UserID]float64, len(rest))
	for u, s := range rest {
		shares[u] = s
	}
	granted := make(map[job.UserID]float64, len(target))
	for _, u := range debtors {
		t := target[u]
		if t <= eps {
			continue
		}
		shares[u] += t
		// Never drain more debt than the grant itself, even if the
		// two water-fills round apart.
		if extra := math.Min(shares[u]-base[u], t); extra > eps {
			granted[u] = extra
		}
	}

	alloc := make(Allocation, len(shares))
	for u, s := range shares {
		alloc[u] = SplitByGen(s, capacities)
	}
	return alloc, granted
}

// Validate checks allocation invariants against capacity and demand:
// per-generation totals within capacity and per-user totals within
// demand (both up to floating-point slack). It returns the first
// violation found.
func (a Allocation) Validate(demand map[job.UserID]float64, capacities map[gpu.Generation]int) error {
	const slack = 1e-6
	for g, tot := range a.TotalByGen() {
		if tot > float64(capacities[g])+slack {
			return fmt.Errorf("fairshare: generation %v over-allocated: %v > %d", g, tot, capacities[g])
		}
	}
	for u, e := range a {
		if t := e.Total(); t > demand[u]+slack {
			return fmt.Errorf("fairshare: user %s over demand: %v > %v", u, t, demand[u])
		}
		for g, v := range e {
			if v < -slack {
				return fmt.Errorf("fairshare: user %s negative share on %v: %v", u, g, v)
			}
		}
	}
	return nil
}

// JobTickets splits a user's tickets equally among their runnable
// jobs, so a user cannot increase their share by splitting work into
// more jobs (the paper's two-level ticket hierarchy). jobsPerUser maps
// user → number of runnable jobs.
func JobTickets(tickets map[job.UserID]float64, jobsPerUser map[job.UserID]int) map[job.UserID]float64 {
	out := make(map[job.UserID]float64, len(jobsPerUser))
	for u, n := range jobsPerUser {
		if n <= 0 {
			continue
		}
		t := tickets[u]
		if t <= eps {
			continue
		}
		out[u] = t / float64(n)
	}
	return out
}

// FairFractions returns each active user's ideal share fraction:
// t_u / Σ t_v over the active set. Metrics use this as the fairness
// baseline. Users with nonpositive tickets get fraction zero.
func FairFractions(tickets map[job.UserID]float64, active []job.UserID) map[job.UserID]float64 {
	out := make(map[job.UserID]float64, len(active))
	var sum float64
	for _, u := range active {
		if t := tickets[u]; t > eps {
			sum += t
		}
	}
	if sum <= eps {
		return out
	}
	for _, u := range active {
		if t := tickets[u]; t > eps {
			out[u] = t / sum
		} else {
			out[u] = 0
		}
	}
	return out
}

// EqualTickets builds a ticket map giving every listed user weight 1.
func EqualTickets(users ...job.UserID) map[job.UserID]float64 {
	m := make(map[job.UserID]float64, len(users))
	for _, u := range users {
		m[u] = 1
	}
	return m
}

// MaxShareError returns the largest absolute deviation between
// observed share fractions and ideal fractions — a scalar fairness
// score used across the experiments (0 = perfectly fair).
func MaxShareError(observed, ideal map[job.UserID]float64) float64 {
	var worst float64
	for u, want := range ideal {
		worst = math.Max(worst, math.Abs(observed[u]-want))
	}
	return worst
}
