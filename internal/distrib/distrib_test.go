package distrib

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/workload"
)

var zoo = workload.DefaultZoo()

// startAgents launches n agents of the given generations on the hub.
func startAgents(t *testing.T, hub *comm.Hub, gens []gpu.Generation, gpus int) []chan error {
	t.Helper()
	var waits []chan error
	for i, g := range gens {
		tr, err := hub.Attach(fmt.Sprintf("agent-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewAgent(tr, "central", g, gpus)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- a.Run() }()
		waits = append(waits, done)
	}
	return waits
}

func TestDistributedEndToEndHub(t *testing.T) {
	hub := comm.NewHub()
	central, err := hub.Attach("central")
	if err != nil {
		t.Fatal(err)
	}
	waits := startAgents(t, hub, []gpu.Generation{gpu.K80, gpu.K80}, 4)

	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("alice", zoo.MustGet("lstm"), 4, 1, 0.5)...)
	specs = append(specs, workload.BatchJobs("bob", zoo.MustGet("gru"), 4, 1, 0.5)...)
	specs, _ = workload.AssignIDs(specs)

	c, err := NewCentral(central, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{
		Specs: specs, Quantum: 360,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Finished) != 8 || sum.Unfinished != 0 {
		t.Fatalf("finished %d, unfinished %d; want 8/0", len(sum.Finished), sum.Unfinished)
	}
	// 8 GPUs, 8 half-hour jobs: everything runs concurrently and
	// completes in ~6 rounds of 360 s.
	for _, j := range sum.Finished {
		if jct := j.JCT(); jct < 1700 || jct > 2600 {
			t.Errorf("job %d JCT %v, want ≈1800s (+overheads, round granularity)", j.ID, jct)
		}
	}
	// Equal users: equal usage.
	if a, b := sum.UsageByUser["alice"], sum.UsageByUser["bob"]; math.Abs(a-b) > 0.05*(a+b) {
		t.Errorf("usage alice=%v bob=%v, want ≈equal", a, b)
	}
	for _, w := range waits {
		select {
		case err := <-w:
			if err != nil {
				t.Errorf("agent exited with %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("agent did not shut down")
		}
	}
}

func TestDistributedContention(t *testing.T) {
	// 1 agent × 4 GPUs, 2 users × 4 long jobs: shares must be fair
	// even though only half the jobs fit at once.
	hub := comm.NewHub()
	central, _ := hub.Attach("central")
	startAgents(t, hub, []gpu.Generation{gpu.K80}, 4)

	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("alice", zoo.MustGet("lstm"), 4, 1, 100)...)
	specs = append(specs, workload.BatchJobs("bob", zoo.MustGet("gru"), 4, 1, 100)...)
	specs, _ = workload.AssignIDs(specs)

	c, err := NewCentral(central, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sum.UsageByUser["alice"], sum.UsageByUser["bob"]
	if a == 0 || b == 0 || math.Abs(a-b) > 0.1*(a+b) {
		t.Fatalf("contended shares alice=%v bob=%v, want ≈equal", a, b)
	}
}

func TestDistributedOverTCP(t *testing.T) {
	srv, err := comm.ListenTCP("central", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	agentDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		cli, err := comm.DialTCP(fmt.Sprintf("agent-%d", i), srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		gen := gpu.K80
		if i == 1 {
			gen = gpu.V100
		}
		a, err := NewAgent(cli, "central", gen, 2)
		if err != nil {
			t.Fatal(err)
		}
		go func() { agentDone <- a.Run() }()
	}

	specs := workload.BatchJobs("alice", zoo.MustGet("resnet50"), 2, 2, 0.3)
	specs, _ = workload.AssignIDs(specs)
	c, err := NewCentral(srv, core.MustNewFairPolicy(core.FairConfig{EnableTrading: true}),
		CentralConfig{Specs: specs, Quantum: 360})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Finished) != 2 {
		t.Fatalf("finished %d of 2 over TCP", len(sum.Finished))
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-agentDone:
			if err != nil {
				t.Errorf("agent error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("agent hung")
		}
	}
}

func TestCentralValidation(t *testing.T) {
	hub := comm.NewHub()
	tr, _ := hub.Attach("central")
	pol := core.MustNewFairPolicy(core.FairConfig{})
	if _, err := NewCentral(nil, pol, CentralConfig{}); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := NewCentral(tr, nil, CentralConfig{}); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := NewCentral(tr, pol, CentralConfig{}); err == nil {
		t.Error("no jobs accepted")
	}
	specs := workload.BatchJobs("u", zoo.MustGet("vae"), 1, 1, 1)
	specs, _ = workload.AssignIDs(specs)
	c, err := NewCentral(tr, pol, CentralConfig{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	// Run before WaitForAgents must fail.
	if _, err := c.Run(1); err == nil {
		t.Error("Run without agents accepted")
	}
	// Registration timeout.
	if err := c.WaitForAgents(1, 50*time.Millisecond); err == nil {
		t.Error("WaitForAgents did not time out")
	}
}

func TestAgentValidation(t *testing.T) {
	hub := comm.NewHub()
	tr, _ := hub.Attach("a")
	if _, err := NewAgent(nil, "c", gpu.K80, 4); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := NewAgent(tr, "c", gpu.Generation(99), 4); err == nil {
		t.Error("bad generation accepted")
	}
	if _, err := NewAgent(tr, "c", gpu.K80, 0); err == nil {
		t.Error("zero GPUs accepted")
	}
}

// blackHoleAgent registers like a real agent but never answers round
// plans — a hung or partitioned server.
func blackHoleAgent(t *testing.T, hub *comm.Hub, name string, gen gpu.Generation, gpus int) {
	t.Helper()
	tr, err := hub.Attach(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Send("central", comm.Envelope{From: name, Msg: comm.Register{
		Agent: name, Gen: int(gen), GPUs: gpus,
	}}); err != nil {
		t.Fatal(err)
	}
	go func() {
		for range tr.Recv() { // swallow everything, reply to nothing
		}
	}()
}

func TestSilentAgentTolerated(t *testing.T) {
	hub := comm.NewHub()
	central, _ := hub.Attach("central")
	startAgents(t, hub, []gpu.Generation{gpu.K80}, 4) // agent-0, healthy
	blackHoleAgent(t, hub, "agent-z", gpu.K80, 4)     // never reports

	// 6 one-GPU jobs across 8 GPUs: placement spills at least two onto
	// the black hole's server.
	specs := workload.BatchJobs("u", zoo.MustGet("lstm"), 6, 1, 0.3)
	specs, _ = workload.AssignIDs(specs)
	c, err := NewCentral(central, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{
		Specs:         specs,
		Quantum:       360,
		ReportTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	// Failure detection marks the silent agent down after two missed
	// reports; its jobs migrate to the healthy server and all finish.
	if len(sum.Finished) != 6 {
		t.Fatalf("finished %d of 6 with a silent agent present", len(sum.Finished))
	}
	if sum.MissedReports == 0 {
		t.Error("silent agent produced no missed reports?")
	}
}

func TestSilentAgentStrictModeFails(t *testing.T) {
	hub := comm.NewHub()
	central, _ := hub.Attach("central")
	blackHoleAgent(t, hub, "agent-z", gpu.K80, 4)

	specs := workload.BatchJobs("u", zoo.MustGet("lstm"), 2, 1, 0.3)
	specs, _ = workload.AssignIDs(specs)
	c, err := NewCentral(central, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{
		Specs:         specs,
		ReportTimeout: 100 * time.Millisecond,
		StrictReports: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(10); err == nil {
		t.Fatal("strict mode did not fail on a silent agent")
	}
}

func TestTimeoutBudgetExhausted(t *testing.T) {
	hub := comm.NewHub()
	central, _ := hub.Attach("central")
	blackHoleAgent(t, hub, "agent-z", gpu.K80, 4)

	specs := workload.BatchJobs("u", zoo.MustGet("lstm"), 2, 1, 10)
	specs, _ = workload.AssignIDs(specs)
	// Budget of 1: the second consecutive miss (which happens before
	// failure detection stops planning onto the agent) exceeds it.
	c, err := NewCentral(central, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{
		Specs:            specs,
		ReportTimeout:    50 * time.Millisecond,
		MaxAgentTimeouts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(100); err == nil {
		t.Fatal("run did not abort after exhausting the timeout budget")
	}
}

func TestAgentExecuteSemantics(t *testing.T) {
	hub := comm.NewHub()
	tr, _ := hub.Attach("agent")
	a, _ := NewAgent(tr, "central", gpu.K80, 4)
	plan := comm.RoundPlan{Round: 1, Quantum: 100, Jobs: []comm.JobAssignment{
		{JobID: 1, DoneMB: 0, TotalMB: 1000, GangRate: 5, Overhead: 20},  // 80s × 5 = 400 mb
		{JobID: 2, DoneMB: 990, TotalMB: 1000, GangRate: 5, Overhead: 0}, // finishes in 2 s
		{JobID: 3, DoneMB: 0, TotalMB: 1000, GangRate: 5, Overhead: 150}, // overhead eats the round
	}}
	rep := a.execute(plan)
	if len(rep.Jobs) != 3 {
		t.Fatalf("%d progress entries", len(rep.Jobs))
	}
	if p := rep.Jobs[0]; math.Abs(p.DoneMB-400) > 1e-9 || p.Finished {
		t.Errorf("job 1 progress %+v", p)
	}
	if p := rep.Jobs[1]; !p.Finished || p.DoneMB != 1000 || math.Abs(p.UsedSecs-2) > 1e-9 {
		t.Errorf("job 2 progress %+v", p)
	}
	if p := rep.Jobs[2]; p.DoneMB != 0 || p.UsedSecs != 0 {
		t.Errorf("job 3 progress %+v", p)
	}
}
