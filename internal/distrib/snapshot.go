package distrib

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/migrate"
	"repro/internal/placement"
	"repro/internal/profiler"
	"repro/internal/simclock"
)

// SnapshotFile is the state file's name inside CentralConfig.SnapshotDir.
const SnapshotFile = "central.snap.json"

// AgentState is one registered agent's inventory in a snapshot.
type AgentState struct {
	Name string `json:"name"`
	Gen  int    `json:"gen"`
	GPUs int    `json:"gpus"`
}

// State is the serializable form of the central scheduler: everything
// needed to resume a run after a coordinator crash. Job records carry
// the same checkpoint the wire protocol ships to agents, so a
// restored central re-dispatches from exactly the progress it had
// acknowledged — agents stay stateless either way.
type State struct {
	SavedRound int `json:"saved_round"`
	// Epoch is the central incarnation that wrote the snapshot; a
	// restore resumes at Epoch+1 so agents can fence the dead
	// incarnation's straggling messages.
	Epoch    int                       `json:"epoch,omitempty"`
	Now      simclock.Time             `json:"now"`
	Timeouts int                       `json:"timeouts"`
	Agents   []AgentState              `json:"agents"`
	Missed   map[string]int            `json:"missed,omitempty"`
	Pending  []job.Spec                `json:"pending,omitempty"`
	Active   []job.Checkpoint          `json:"active,omitempty"`
	Done     []job.Checkpoint          `json:"done,omitempty"`
	Prev     map[job.ID][]gpu.DeviceID `json:"prev,omitempty"`
	PrevGen  map[job.ID]gpu.Generation `json:"prev_gen,omitempty"`
	Usage    map[job.UserID]float64    `json:"usage,omitempty"`
	Tickets  map[job.UserID]float64    `json:"tickets,omitempty"`
}

// Snapshot captures the scheduler's current state. Call between
// rounds (Run snapshots automatically when SnapshotDir is set).
func (c *Central) Snapshot() *State {
	st := &State{
		SavedRound: c.rounds,
		Epoch:      c.epoch,
		Now:        c.now,
		Timeouts:   c.timeouts,
		Missed:     make(map[string]int, len(c.missed)),
		Pending:    append([]job.Spec(nil), c.pending...),
		Prev:       make(map[job.ID][]gpu.DeviceID, len(c.prev)),
		PrevGen:    make(map[job.ID]gpu.Generation, len(c.prevGen)),
		Usage:      make(map[job.UserID]float64, len(c.usage)),
		Tickets:    make(map[job.UserID]float64, len(c.cfg.Tickets)),
	}
	for _, a := range c.agents {
		st.Agents = append(st.Agents, AgentState{Name: a.name, Gen: int(a.gen), GPUs: a.gpus})
	}
	for name, n := range c.missed {
		st.Missed[name] = n
	}
	for _, j := range c.active {
		st.Active = append(st.Active, j.Checkpoint())
	}
	// Deterministic file contents: active is a map, so order it.
	sort.Slice(st.Active, func(i, k int) bool { return st.Active[i].Spec.ID < st.Active[k].Spec.ID })
	for _, j := range c.done {
		st.Done = append(st.Done, j.Checkpoint())
	}
	for id, devs := range c.prev {
		st.Prev[id] = append([]gpu.DeviceID(nil), devs...)
	}
	for id, g := range c.prevGen {
		st.PrevGen[id] = g
	}
	for u, s := range c.usage {
		st.Usage[u] = s
	}
	for u, t := range c.cfg.Tickets {
		st.Tickets[u] = t
	}
	return st
}

// SaveSnapshot atomically writes the current state into
// dir/central.snap.json (write to a temp file, then rename, so a
// crash mid-write never leaves a truncated snapshot).
func (c *Central) SaveSnapshot(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(c.Snapshot(), "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, SnapshotFile))
}

// maybeSnapshot persists state per the configured period.
func (c *Central) maybeSnapshot() error {
	if c.cfg.SnapshotDir == "" {
		return nil
	}
	every := c.cfg.SnapshotEvery
	if every <= 0 {
		every = 1
	}
	if c.rounds%every != 0 {
		return nil
	}
	if err := c.SaveSnapshot(c.cfg.SnapshotDir); err != nil {
		return fmt.Errorf("distrib: snapshot after round %d: %w", c.rounds, err)
	}
	c.cfg.Obs.NoteProtocol("snapshot_saved")
	return nil
}

// LoadSnapshot reads the snapshot in dir.
func LoadSnapshot(dir string) (*State, error) {
	raw, err := os.ReadFile(filepath.Join(dir, SnapshotFile))
	if err != nil {
		return nil, err
	}
	var st State
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("distrib: corrupt snapshot: %w", err)
	}
	return &st, nil
}

// RestoreCentral rebuilds a coordinator from a snapshot: inventory,
// job records, per-user usage and failure-detector state all resume
// where the crashed coordinator stopped. The policy is fresh (its
// round-to-round credit state is recomputed as scheduling resumes);
// cfg supplies operational knobs (timeouts, retry, snapshot dir) and
// its Specs/Tickets are ignored in favor of the snapshot's.
//
// Over the in-memory hub a restored central can resume immediately on
// the surviving transport. Over TCP the old process's connections
// died with it, so call WaitForRejoin to let agents re-register
// before scheduling.
func RestoreCentral(tr comm.Transport, policy core.Policy, cfg CentralConfig, st *State) (*Central, error) {
	if tr == nil || policy == nil {
		return nil, fmt.Errorf("distrib: nil transport or policy")
	}
	if st == nil || len(st.Agents) == 0 {
		return nil, fmt.Errorf("distrib: snapshot has no agents")
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 360
	}
	if (cfg.Costs == migrate.CostModel{}) {
		cfg.Costs = migrate.Default()
	}
	if cfg.ReportTimeout == 0 {
		cfg.ReportTimeout = 5 * time.Second
	}
	if cfg.MaxAgentTimeouts == 0 {
		cfg.MaxAgentTimeouts = 50
	}
	cfg.Tickets = make(map[job.UserID]float64, len(st.Tickets))
	for u, t := range st.Tickets {
		cfg.Tickets[u] = t
	}
	prof, err := profiler.New(0.25, 0, 1)
	if err != nil {
		return nil, err
	}
	c := &Central{
		cfg:      cfg,
		tr:       tr,
		policy:   policy,
		prof:     prof,
		serverOf: make(map[gpu.ServerID]int),
		active:   make(map[job.ID]*job.Job),
		missed:   make(map[string]int, len(st.Missed)),
		prev:     placement.Assignment{},
		prevGen:  make(map[job.ID]gpu.Generation, len(st.PrevGen)),
		usage:    make(map[job.UserID]float64, len(st.Usage)),
		now:      st.Now,
		rounds:   st.SavedRound,
		timeouts: st.Timeouts,
		// A legacy snapshot (Epoch 0) restores as epoch 1, same as a
		// fresh central; any newer snapshot bumps past its writer so
		// the dead incarnation's traffic is fenced on both sides.
		epoch: st.Epoch + 1,
	}
	c.initProtocol()
	c.retry = c.newRetrier()
	for _, a := range st.Agents {
		g := gpu.Generation(a.Gen)
		if a.Name == "" || !g.Valid() || a.GPUs <= 0 {
			return nil, fmt.Errorf("distrib: snapshot agent %q has invalid inventory", a.Name)
		}
		if c.agentIndex(a.Name) >= 0 {
			return nil, fmt.Errorf("distrib: snapshot agent %q duplicated", a.Name)
		}
		c.agents = append(c.agents, agentInfo{name: a.Name, gen: g, gpus: a.GPUs})
	}
	if err := c.buildCluster(); err != nil {
		return nil, err
	}
	for name, n := range st.Missed {
		if c.agentIndex(name) < 0 {
			return nil, fmt.Errorf("distrib: snapshot misses unknown agent %q", name)
		}
		c.missed[name] = n
	}
	c.pending = append([]job.Spec(nil), st.Pending...)
	for i := range c.pending {
		if err := c.pending[i].Validate(); err != nil {
			return nil, fmt.Errorf("distrib: snapshot pending: %w", err)
		}
	}
	for _, cp := range st.Active {
		j, err := job.FromCheckpoint(cp)
		if err != nil {
			return nil, fmt.Errorf("distrib: snapshot active: %w", err)
		}
		if j.Finished() {
			return nil, fmt.Errorf("distrib: snapshot lists finished job %d as active", j.ID)
		}
		c.active[j.ID] = j
	}
	for _, cp := range st.Done {
		j, err := job.FromCheckpoint(cp)
		if err != nil {
			return nil, fmt.Errorf("distrib: snapshot done: %w", err)
		}
		if !j.Finished() {
			return nil, fmt.Errorf("distrib: snapshot lists unfinished job %d as done", j.ID)
		}
		c.done = append(c.done, j)
	}
	for id, devs := range st.Prev {
		if c.active[id] == nil {
			continue // job finished or lost between snapshot and crash
		}
		c.prev[id] = append([]gpu.DeviceID(nil), devs...)
	}
	for id, g := range st.PrevGen {
		if c.active[id] == nil {
			continue
		}
		c.prevGen[id] = g
	}
	for u, s := range st.Usage {
		if s < 0 {
			return nil, fmt.Errorf("distrib: snapshot usage for %q negative", u)
		}
		c.usage[u] = s
	}
	cfg.Obs.NoteProtocol("restored")
	return c, nil
}

// WaitForRejoin blocks until n of the restored inventory's agents
// re-register (TCP agents reconnect after a central restart), acking
// each through the rejoin reconciliation.
func (c *Central) WaitForRejoin(n int, timeout time.Duration) error {
	if c.cluster == nil {
		return fmt.Errorf("distrib: no inventory to rejoin")
	}
	if n > len(c.agents) {
		return fmt.Errorf("distrib: waiting for %d rejoins with only %d known agents", n, len(c.agents))
	}
	//gflint:ignore wallclock rejoin deadline on a real transport, not simulated time
	deadline := time.After(timeout)
	seen := make(map[string]bool)
	for len(seen) < n {
		select {
		case env, ok := <-c.tr.Recv():
			if !ok {
				return fmt.Errorf("distrib: transport closed during rejoin")
			}
			reg, isReg := env.Msg.(comm.Register)
			if !isReg {
				continue
			}
			if c.handleRejoin(reg) {
				seen[reg.Agent] = true
			}
		case <-deadline:
			return fmt.Errorf("distrib: only %d of %d agents rejoined", len(seen), n)
		}
	}
	return nil
}
