package distrib

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// oneJobSpecs builds a single single-GPU job sized to quanta quanta
// of useful K80 time.
func oneJobSpecs(t *testing.T, user string, quanta float64) []job.Spec {
	t.Helper()
	hours := quanta * 360 / simclock.Hour
	specs, err := workload.AssignIDs(workload.BatchJobs(job.UserID(user), zoo.MustGet("lstm"), 1, 1, hours))
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// TestReplayedReportCountedOnce is the idempotency regression test:
// an agent that delivers every report twice (byte-identical envelope,
// same seq) and additionally replays an old round's report under a
// fresh sequence number must still be charged exactly once per round.
// The duplicate copy dies at the dedup layer; the cross-round replay
// reaches the reconciliation queue and dies against the per-(agent,
// round) applied set.
func TestReplayedReportCountedOnce(t *testing.T) {
	hub := comm.NewHub()
	central, err := hub.Attach("central")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := hub.Attach("agent-0")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent(tr, "central", gpu.K80, 1)
	if err != nil {
		t.Fatal(err)
	}

	agentDone := make(chan error, 1)
	go func() {
		seq := uint64(1)
		send := func(rep comm.RoundReport, s uint64) (comm.Envelope, error) {
			e, err := comm.Seal(comm.Envelope{From: "agent-0", Seq: s, Msg: rep})
			if err != nil {
				return e, err
			}
			return e, tr.Send("central", e)
		}
		reg, err := comm.Seal(comm.Envelope{From: "agent-0", Seq: seq, Msg: comm.Register{
			Agent: "agent-0", Gen: int(gpu.K80), GPUs: 1,
		}})
		if err != nil {
			agentDone <- err
			return
		}
		if err := tr.Send("central", reg); err != nil {
			agentDone <- err
			return
		}
		var rep1 comm.RoundReport
		for env := range tr.Recv() {
			switch m := env.Msg.(type) {
			case comm.RoundPlan:
				rep := a.execute(m)
				seq++
				e, err := send(rep, seq)
				if err != nil {
					agentDone <- err
					return
				}
				// Deliver the exact same envelope again: the wire
				// duplicated it.
				if err := tr.Send("central", e); err != nil {
					agentDone <- err
					return
				}
				if m.Round == 1 {
					rep1 = rep
				}
				if m.Round == 2 {
					// Replay round 1's report as a fresh logical send
					// (new seq, like a backlog resend): it must be
					// recognized as already applied, not recharged.
					seq++
					if _, err := send(rep1, seq); err != nil {
						agentDone <- err
						return
					}
				}
			case comm.Shutdown:
				agentDone <- nil
				return
			}
		}
		agentDone <- nil
	}()

	ob := obs.New()
	c, err := NewCentral(central, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{
		Specs: oneJobSpecs(t, "alice", 2.2), Quantum: 360,
		LeaseRounds: 2, CollectDeadline: 2 * time.Second, Obs: ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-agentDone; err != nil {
		t.Fatal(err)
	}
	if len(sum.Finished) != 1 {
		t.Fatalf("finished %d jobs, want 1", len(sum.Finished))
	}
	// 2.2 quanta of work = exactly 3 charged rounds. Any double-count
	// from the duplicated or replayed deliveries would show up here.
	if got, want := sum.UsageByUser["alice"], 3*360.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("usage %v, want %v (each round charged exactly once)", got, want)
	}
	// Duplicates of rounds 1 and 2 are drained (and dropped) at the
	// next round's start; the final round's duplicate arrives after
	// the run is over, so only two are observable.
	if n := ob.ProtocolEvents("dup_dropped"); n < 2 {
		t.Errorf("dup_dropped = %v, want one per drained duplicate delivery (>= 2)", n)
	}
	if n := ob.ProtocolEvents("late_report_dropped"); n != 1 {
		t.Errorf("late_report_dropped = %v, want exactly 1 (the cross-round replay)", n)
	}
	if n := ob.ProtocolEvents("late_report_applied"); n != 0 {
		t.Errorf("late_report_applied = %v, want 0 (the replayed round was already counted)", n)
	}
}

// fencePlan builds a minimal sealed plan for the agent-side fencing
// tests: one endless job so every plan produces a report.
func fencePlan(round, epoch int) comm.Envelope {
	return comm.Envelope{From: "central", Msg: comm.RoundPlan{
		Round: round, Epoch: epoch, Quantum: 360, Lease: 2,
		Jobs: []comm.JobAssignment{{
			JobID: 1, User: "u", Gang: 1, LocalGPUs: []int{0},
			TotalMB: 1e9, GangRate: 1, Shard: 1,
		}},
	}}
}

// TestAgentFencesStaleEpochPlan drives a real agent from a
// hand-rolled central: plans from an older epoch are rejected without
// execution, duplicate rounds within an epoch are dropped, and a
// newer epoch resets the agent's round horizon.
func TestAgentFencesStaleEpochPlan(t *testing.T) {
	hub := comm.NewHub()
	ctr, err := hub.Attach("central")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := hub.Attach("agent-0")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent(tr, "central", gpu.K80, 1)
	if err != nil {
		t.Fatal(err)
	}
	ob := obs.New()
	a.SetObserver(ob)
	done := make(chan error, 1)
	go func() { done <- a.Run() }()

	// Drain the agent's registration.
	if _, ok := (<-ctr.Recv()).Msg.(comm.Register); !ok {
		t.Fatal("expected Register first")
	}
	retry := comm.NewRetrier(comm.RetryPolicy{})
	sendPlan := func(round, epoch int) {
		t.Helper()
		if err := retry.Send(ctr, "agent-0", fencePlan(round, epoch)); err != nil {
			t.Fatal(err)
		}
	}
	wantReport := func(round, epoch int) {
		t.Helper()
		rep, ok := (<-ctr.Recv()).Msg.(comm.RoundReport)
		if !ok || rep.Round != round || rep.Epoch != epoch {
			t.Fatalf("got %+v, want report for round %d epoch %d", rep, round, epoch)
		}
	}

	sendPlan(1, 2) // current incarnation
	wantReport(1, 2)
	sendPlan(2, 1) // stale epoch: a dead central's plan — fenced, no report
	sendPlan(3, 2) // next live plan; its report must be the next message
	wantReport(3, 2)
	sendPlan(3, 2) // duplicated round within the epoch — dropped
	sendPlan(1, 3) // new incarnation: round horizon resets, round 1 runs again
	wantReport(1, 3)

	if err := retry.Send(ctr, "agent-0", comm.Envelope{From: "central", Msg: comm.Shutdown{}}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if n := ob.ProtocolEvents("fence_reject"); n != 1 {
		t.Errorf("fence_reject = %v, want 1", n)
	}
	if n := ob.ProtocolEvents("stale_plan_dropped"); n != 1 {
		t.Errorf("stale_plan_dropped = %v, want 1", n)
	}
}

// TestCentralFencesStaleEpochReport exercises the central half of the
// fence directly: reports from any epoch other than the central's own
// are rejected; unfenced (epoch-0, legacy) reports pass.
func TestCentralFencesStaleEpochReport(t *testing.T) {
	hub := comm.NewHub()
	ctr, err := hub.Attach("central")
	if err != nil {
		t.Fatal(err)
	}
	ob := obs.New()
	c, err := NewCentral(ctr, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{
		Specs: oneJobSpecs(t, "alice", 2), Obs: ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.epoch != 1 {
		t.Fatalf("fresh central epoch = %d, want 1", c.epoch)
	}
	if c.fenced(comm.RoundReport{Agent: "a", Round: 1, Epoch: 0}) {
		t.Error("legacy epoch-0 report fenced")
	}
	if c.fenced(comm.RoundReport{Agent: "a", Round: 1, Epoch: 1}) {
		t.Error("current-epoch report fenced")
	}
	if !c.fenced(comm.RoundReport{Agent: "a", Round: 1, Epoch: 2}) {
		t.Error("foreign-epoch report not fenced")
	}
	c.epoch = 3 // as if restored from a snapshot written at epoch 2
	if !c.fenced(comm.RoundReport{Agent: "a", Round: 1, Epoch: 2}) {
		t.Error("pre-restore epoch report not fenced")
	}
	if n := ob.ProtocolEvents("fence_reject"); n != 2 {
		t.Errorf("fence_reject = %v, want 2", n)
	}
}

// TestLeaseExpiryParksAtCheckpoint: an agent whose reports are never
// acknowledged keeps training on local state for the lease duration,
// then parks — discarding local progress and resyncing to the plan's
// checkpoint — once the oldest unacknowledged round ages out.
func TestLeaseExpiryParksAtCheckpoint(t *testing.T) {
	hub := comm.NewHub()
	ctr, err := hub.Attach("central")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := hub.Attach("agent-0")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent(tr, "central", gpu.K80, 1)
	if err != nil {
		t.Fatal(err)
	}
	ob := obs.New()
	a.SetObserver(ob)
	done := make(chan error, 1)
	go func() { done <- a.Run() }()
	if _, ok := (<-ctr.Recv()).Msg.(comm.Register); !ok {
		t.Fatal("expected Register first")
	}

	retry := comm.NewRetrier(comm.RetryPolicy{})
	// Every plan carries the same stale checkpoint (DoneMB 0) and acks
	// nothing — the central never heard a report.
	sendPlan := func(round int) {
		t.Helper()
		if err := retry.Send(ctr, "agent-0", fencePlan(round, 1)); err != nil {
			t.Fatal(err)
		}
	}
	recvReport := func() comm.RoundReport {
		t.Helper()
		rep, ok := (<-ctr.Recv()).Msg.(comm.RoundReport)
		if !ok {
			t.Fatal("expected RoundReport")
		}
		return rep
	}

	sendPlan(1)
	r1 := recvReport() // round 1, fresh start: one quantum of progress
	if r1.Jobs[0].DoneMB != 360 {
		t.Fatalf("round 1 DoneMB = %v, want 360 (quantum at rate 1)", r1.Jobs[0].DoneMB)
	}
	sendPlan(2)
	// The backlog resends round 1's report ahead of round 2's.
	if rep := recvReport(); rep.Round != 1 {
		t.Fatalf("expected backlog resend of round 1, got round %d", rep.Round)
	}
	r2 := recvReport()
	// Degraded mode: round 2 continued from local progress (720),
	// not the plan's stale checkpoint (0 + 360).
	if r2.Jobs[0].DoneMB != 720 {
		t.Errorf("round 2 DoneMB = %v, want 720 (local progress trusted under lease)", r2.Jobs[0].DoneMB)
	}
	// Round 5 with lease 2: the oldest unacked round (1) is <= 5-2, so
	// the lease is spent. The agent parks: local state and backlog are
	// dropped, and execution restarts from the plan's checkpoint.
	sendPlan(5)
	r5 := recvReport()
	if r5.Round != 5 {
		t.Fatalf("expected round 5 report (backlog discarded on park), got round %d", r5.Round)
	}
	if r5.Jobs[0].DoneMB != r1.Jobs[0].DoneMB {
		t.Errorf("post-park DoneMB = %v, want %v (resynced to the plan checkpoint)",
			r5.Jobs[0].DoneMB, r1.Jobs[0].DoneMB)
	}
	if n := ob.ProtocolEvents("lease_expired"); n != 1 {
		t.Errorf("lease_expired = %v, want 1", n)
	}

	if err := retry.Send(ctr, "agent-0", comm.Envelope{From: "central", Msg: comm.Shutdown{}}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestStragglerCutoffReconcilesLateReport: an agent that withholds
// its round-1 report is cut off at the collect deadline (the round
// proceeds, charging a miss), then delivers the late report alongside
// round 2's — the central reconciles it idempotently before applying
// round 2, so every executed round is charged exactly once.
func TestStragglerCutoffReconcilesLateReport(t *testing.T) {
	hub := comm.NewHub()
	central, err := hub.Attach("central")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := hub.Attach("agent-0")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent(tr, "central", gpu.K80, 1)
	if err != nil {
		t.Fatal(err)
	}

	agentDone := make(chan error, 1)
	go func() {
		seq := uint64(1)
		send := func(rep comm.RoundReport) error {
			seq++
			e, err := comm.Seal(comm.Envelope{From: "agent-0", Seq: seq, Msg: rep})
			if err != nil {
				return err
			}
			return tr.Send("central", e)
		}
		reg, err := comm.Seal(comm.Envelope{From: "agent-0", Seq: seq, Msg: comm.Register{
			Agent: "agent-0", Gen: int(gpu.K80), GPUs: 1,
		}})
		if err != nil {
			agentDone <- err
			return
		}
		if err := tr.Send("central", reg); err != nil {
			agentDone <- err
			return
		}
		var withheld *comm.RoundReport
		for env := range tr.Recv() {
			switch m := env.Msg.(type) {
			case comm.RoundPlan:
				rep := a.execute(m)
				if m.Round == 1 {
					// Straggle: execute but stay silent past the
					// deadline. Local state keeps the progress.
					withheld = &rep
					continue
				}
				if withheld != nil {
					if err := send(*withheld); err != nil {
						agentDone <- err
						return
					}
					withheld = nil
				}
				if err := send(rep); err != nil {
					agentDone <- err
					return
				}
			case comm.Shutdown:
				agentDone <- nil
				return
			}
		}
		agentDone <- nil
	}()

	ob := obs.New()
	c, err := NewCentral(central, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{
		Specs: oneJobSpecs(t, "alice", 2.2), Quantum: 360,
		LeaseRounds: 3, CollectDeadline: 150 * time.Millisecond, Obs: ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-agentDone; err != nil {
		t.Fatal(err)
	}
	if len(sum.Finished) != 1 {
		t.Fatalf("finished %d jobs, want 1", len(sum.Finished))
	}
	// Rounds 1 (late), 2 and 3 each charged once: the withheld report
	// was reconciled, not lost and not double-counted, and the work it
	// carried was never redone (the agent trusted local progress).
	if got, want := sum.UsageByUser["alice"], 3*360.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("usage %v, want %v", got, want)
	}
	if n := ob.ProtocolEvents("report_timeout"); n != 1 {
		t.Errorf("report_timeout = %v, want 1 (the straggler cutoff)", n)
	}
	if n := ob.ProtocolEvents("late_report_applied"); n != 1 {
		t.Errorf("late_report_applied = %v, want 1", n)
	}
}

// planWire wraps the central's transport: it force-fails the first
// `fails` RoundPlan sends to one agent (registration acks and
// shutdowns pass through) and duplicates every successful delivery.
type planWire struct {
	comm.Transport
	mu     sync.Mutex
	failTo string
	fails  int
}

func (w *planWire) Send(to string, e comm.Envelope) error {
	if _, isPlan := e.Msg.(comm.RoundPlan); isPlan {
		w.mu.Lock()
		fail := to == w.failTo && w.fails > 0
		if fail {
			w.fails--
		}
		w.mu.Unlock()
		if fail {
			return fmt.Errorf("planWire: dropped plan to %s", to)
		}
	}
	if err := w.Transport.Send(to, e); err != nil {
		return err
	}
	return w.Transport.Send(to, e) // the wire duplicates everything it carries
}

// TestUndeliverablePlanImmediateMiss: when a plan exhausts its send
// retries the central charges the miss immediately — it does not
// burn the collect deadline waiting for a report that can never come
// — and the duplicated deliveries on the healthy links never
// double-apply anywhere.
func TestUndeliverablePlanImmediateMiss(t *testing.T) {
	hub := comm.NewHub()
	central, err := hub.Attach("central")
	if err != nil {
		t.Fatal(err)
	}
	ob := obs.New()
	var waits []chan error
	for i := 0; i < 2; i++ {
		tr, err := hub.Attach(fmt.Sprintf("agent-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewAgent(tr, "central", gpu.K80, 1)
		if err != nil {
			t.Fatal(err)
		}
		a.SetObserver(ob)
		done := make(chan error, 1)
		go func() { done <- a.Run() }()
		waits = append(waits, done)
	}

	specs := append(oneJobSpecs(t, "alice", 2.2), oneJobSpecs(t, "bob", 2.2)...)
	specs, err = workload.AssignIDs(specs)
	if err != nil {
		t.Fatal(err)
	}
	// All three attempts of one round-1 plan fail: an immediate miss.
	wire := &planWire{Transport: central, failTo: "agent-1", fails: 3}
	c, err := NewCentral(wire, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{
		Specs: specs, Quantum: 360,
		LeaseRounds: 3, CollectDeadline: 2 * time.Second, Obs: ob,
		Retry: comm.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	sum, err := c.Run(10)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range waits {
		if err := <-w; err != nil {
			t.Fatal(err)
		}
	}
	if len(sum.Finished) != 2 {
		t.Fatalf("finished %d jobs, want 2", len(sum.Finished))
	}
	// Both jobs get their exact 3 charged rounds; the cut-off job just
	// starts one round later. Duplicated plans and reports changed
	// nothing (dedup dropped them).
	for _, u := range []job.UserID{"alice", "bob"} {
		if got, want := sum.UsageByUser[u], 3*360.0; math.Abs(got-want) > 1e-9 {
			t.Errorf("usage[%s] = %v, want %v", u, got, want)
		}
	}
	if n := ob.ProtocolEvents("plan_send_failed"); n != 1 {
		t.Errorf("plan_send_failed = %v, want 1", n)
	}
	if n := ob.ProtocolEvents("send_retry"); n < 2 {
		t.Errorf("send_retry = %v, want >= 2 (the failed plan's retries)", n)
	}
	// The miss was immediate: no collect deadline was burned waiting
	// for the unreachable agent (the deadline is 2 s per round; the
	// whole run must finish well under one such wait).
	if n := ob.ProtocolEvents("report_timeout"); n != 0 {
		t.Errorf("report_timeout = %v, want 0 (miss charged at send time)", n)
	}
	if elapsed > time.Second {
		t.Errorf("run took %v; an undeliverable plan must not wait out the collect deadline", elapsed)
	}
	if n := ob.ProtocolEvents("dup_dropped"); n == 0 {
		t.Error("dup_dropped = 0, want > 0 (every delivery was duplicated)")
	}
}
