package distrib

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/netchaos"
	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// ChaosConfig scripts a deterministic fault-injection run of the
// distributed deployment over the in-memory hub: an undisturbed
// baseline and a faulted run share one workload, and the harness
// asserts the faulted run still terminates with exactly the
// baseline's per-user usage accounting.
//
// Faults injected (all on a fixed seed):
//   - one agent is killed after KillAtRound and restarted
//     RestartAfterRounds later; it rejoins via re-registration;
//   - round plans are dropped with probability DropProb (at most
//     MaxDrops total), exercising the report-timeout path;
//   - agent reports are delayed by up to MaxDelay;
//   - the central scheduler is "crashed" after SnapshotAtRound and
//     rebuilt from its on-disk snapshot.
type ChaosConfig struct {
	Seed int64

	// Workload shape: Users users × JobsPerUser single-GPU jobs each,
	// every job sized to JobQuanta scheduling quanta of useful work
	// plus half a quantum of slack (so fault overheads never push a
	// job into an extra round and usage totals stay comparable).
	// Defaults: 2 users × 2 jobs of 4.5 quanta.
	Users       int
	JobsPerUser int
	JobQuanta   float64

	// Cluster shape: Agents servers (default 3) of GPUsPerAgent K80s
	// (default 2). Capacity must survive one kill without contention;
	// the defaults leave 4 GPUs for 4 jobs after the kill.
	Agents       int
	GPUsPerAgent int

	Quantum       simclock.Duration // default 360
	MaxRounds     int               // faulted-run round budget (default 60)
	ReportTimeout time.Duration     // default 300ms

	DropProb float64       // per-plan drop probability (default 0)
	MaxDrops int           // cap on dropped plans (default 2)
	MaxDelay time.Duration // report delay upper bound (default 0)

	KillAtRound        int // kill a busy agent after this round (0 = no kill)
	RestartAfterRounds int // rejoin delay in rounds (default 2)

	SnapshotAtRound int    // crash+restore the central after this round (0 = never)
	SnapshotDir     string // required when SnapshotAtRound > 0

	// Net scripts a deterministic network fault schedule (drops,
	// duplication, reordering, delay, corruption, partitions) injected
	// into the faulted run's links; see internal/netchaos. Nil injects
	// nothing.
	Net *netchaos.Config

	// LeaseRounds and CollectDeadline configure the partition-tolerant
	// protocol on both runs (see CentralConfig); zero values keep the
	// legacy protocol.
	LeaseRounds     int
	CollectDeadline time.Duration

	// AllowUsageDrift tolerates per-user usage exceeding the baseline
	// instead of demanding byte-identity. Arbitrary (e.g. fuzzed)
	// fault schedules can legitimately add charged rounds — a reorder
	// that holds a job's finishing report forces one more planned
	// round — but must never lose one, so drift is only ever upward.
	// Curated schedules like NetChaosConfig keep this false.
	AllowUsageDrift bool

	Obs *obs.Observer // instruments the faulted run's central and agents (optional)
}

func (cfg ChaosConfig) withDefaults() ChaosConfig {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Users <= 0 {
		cfg.Users = 2
	}
	if cfg.JobsPerUser <= 0 {
		cfg.JobsPerUser = 2
	}
	if cfg.JobQuanta <= 0 {
		cfg.JobQuanta = 4.5
	}
	if cfg.Agents <= 0 {
		cfg.Agents = 3
	}
	if cfg.GPUsPerAgent <= 0 {
		cfg.GPUsPerAgent = 2
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 360
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 60
	}
	if cfg.ReportTimeout == 0 {
		cfg.ReportTimeout = 300 * time.Millisecond
	}
	if cfg.MaxDrops == 0 {
		cfg.MaxDrops = 2
	}
	if cfg.RestartAfterRounds <= 0 {
		cfg.RestartAfterRounds = 2
	}
	return cfg
}

// ChaosSummary is the outcome of both runs plus the fault log.
type ChaosSummary struct {
	Baseline *Summary
	Faulted  *Summary
	// Events chronicles the injected faults ("kill agent-1", ...).
	Events []string
	// DroppedPlans is how many round plans the chaos layer swallowed.
	DroppedPlans int
	// NetStats counts how often each network fault kind fired (empty
	// when no netchaos schedule was configured).
	NetStats map[netchaos.Kind]int
}

// UsageDigest fingerprints a run's per-user occupied usage: a SHA-256
// over the sorted users and the exact bit patterns of their GPU-second
// totals. Two runs with byte-identical fairness books produce the same
// digest, so CI can compare a disturbed matrix against its baseline
// with one string.
func UsageDigest(s *Summary) string {
	h := sha256.New()
	for _, u := range job.SortedUsers(s.UsageByUser) {
		_, _ = h.Write([]byte(u))
		_, _ = h.Write([]byte{0})
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(s.UsageByUser[u]))
		_, _ = h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Digests returns (baseline, faulted) usage digests.
func (s *ChaosSummary) Digests() (string, string) {
	return UsageDigest(s.Baseline), UsageDigest(s.Faulted)
}

// UsageIdentical reports whether both runs finished with exactly the
// same per-user occupied GPU-seconds.
func (s *ChaosSummary) UsageIdentical() bool {
	if len(s.Baseline.UsageByUser) != len(s.Faulted.UsageByUser) {
		return false
	}
	for u, b := range s.Baseline.UsageByUser {
		f, ok := s.Faulted.UsageByUser[u]
		if !ok || b != f {
			return false
		}
	}
	return true
}

// chaosSend wraps the central's transport, dropping outbound round
// plans with a seeded probability (up to a cap).
type chaosSend struct {
	comm.Transport
	mu       sync.Mutex
	rng      *rand.Rand
	dropProb float64
	maxDrops int
	dropped  int
}

func (t *chaosSend) Send(to string, e comm.Envelope) error {
	if _, isPlan := e.Msg.(comm.RoundPlan); isPlan && t.dropProb > 0 {
		t.mu.Lock()
		drop := t.dropped < t.maxDrops && t.rng.Float64() < t.dropProb
		if drop {
			t.dropped++
		}
		t.mu.Unlock()
		if drop {
			return nil // swallowed by the "network"
		}
	}
	return t.Transport.Send(to, e)
}

// delaySend wraps an agent's transport, delaying outbound reports by
// a seeded random fraction of maxDelay.
type delaySend struct {
	comm.Transport
	mu       sync.Mutex
	rng      *rand.Rand
	maxDelay time.Duration
}

func (t *delaySend) Send(to string, e comm.Envelope) error {
	if _, isRep := e.Msg.(comm.RoundReport); isRep && t.maxDelay > 0 {
		t.mu.Lock()
		d := time.Duration(t.rng.Float64() * float64(t.maxDelay))
		t.mu.Unlock()
		//gflint:ignore wallclock chaos harness injects real wire delay into a real transport
		time.Sleep(d)
	}
	return t.Transport.Send(to, e)
}

// chaosSpecs builds the shared workload: identical single-GPU jobs
// per user, each sized to JobQuanta quanta of useful K80 time.
func chaosSpecs(cfg ChaosConfig) ([]job.Spec, error) {
	zoo := workload.DefaultZoo()
	models := []string{"lstm", "gru", "vae", "resnet50"}
	hours := cfg.JobQuanta * float64(cfg.Quantum) / simclock.Hour
	var specs []job.Spec
	for u := 0; u < cfg.Users; u++ {
		user := job.UserID(fmt.Sprintf("user%02d", u+1))
		perf := zoo.MustGet(models[u%len(models)])
		specs = append(specs, workload.BatchJobs(user, perf, cfg.JobsPerUser, 1, hours)...)
	}
	return workload.AssignIDs(specs)
}

// fastRetry keeps chaos runs quick: tight backoff, deterministic.
func fastRetry(seed int64) comm.RetryPolicy {
	return comm.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Seed:        seed,
	}
}

type chaosAgent struct {
	tr   comm.Transport
	done chan error
}

func startChaosAgent(hub *comm.Hub, name string, gpus int, seed int64, maxDelay time.Duration, inj *netchaos.Injector, o *obs.Observer) (*chaosAgent, error) {
	tr, err := hub.Attach(name)
	if err != nil {
		return nil, err
	}
	var wire comm.Transport = tr
	if maxDelay > 0 {
		wire = &delaySend{Transport: tr, rng: rand.New(rand.NewSource(seed)), maxDelay: maxDelay}
	}
	if inj != nil {
		wire = inj.Wrap(wire)
	}
	a, err := NewAgent(wire, "central", gpu.K80, gpus)
	if err != nil {
		_ = tr.Close()
		return nil, err
	}
	a.SetObserver(o)
	a.SetRetry(fastRetry(seed))
	ca := &chaosAgent{tr: tr, done: make(chan error, 1)}
	go func() { ca.done <- a.Run() }()
	return ca, nil
}

// runUndisturbed executes the baseline: same workload and cluster, no
// faults.
func runUndisturbed(cfg ChaosConfig, specs []job.Spec) (*Summary, error) {
	hub := comm.NewHub()
	ctr, err := hub.Attach("central")
	if err != nil {
		return nil, err
	}
	agents := make([]*chaosAgent, cfg.Agents)
	for i := range agents {
		if agents[i], err = startChaosAgent(hub, fmt.Sprintf("agent-%d", i), cfg.GPUsPerAgent, cfg.Seed+int64(i), 0, nil, nil); err != nil {
			return nil, err
		}
	}
	central, err := NewCentral(ctr, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{
		Specs:           specs,
		Quantum:         cfg.Quantum,
		ReportTimeout:   cfg.ReportTimeout,
		CollectDeadline: cfg.CollectDeadline,
		LeaseRounds:     cfg.LeaseRounds,
		Retry:           fastRetry(cfg.Seed),
	})
	if err != nil {
		return nil, err
	}
	if err := central.WaitForAgents(cfg.Agents, 10*time.Second); err != nil {
		return nil, err
	}
	sum, err := central.Run(cfg.MaxRounds)
	if err != nil {
		return nil, err
	}
	for _, a := range agents {
		if err := waitAgent(a); err != nil {
			return nil, fmt.Errorf("distrib: baseline agent: %w", err)
		}
	}
	return sum, nil
}

func waitAgent(a *chaosAgent) error {
	select {
	case err := <-a.done:
		return err
	//gflint:ignore wallclock shutdown timeout for a real goroutine, not simulated time
	case <-time.After(10 * time.Second):
		return fmt.Errorf("agent did not shut down")
	}
}

// RunChaos executes the baseline and the faulted run and verifies the
// invariants the distributed runtime promises under churn: the
// faulted run terminates, every job finishes, per-user useful service
// never exceeds occupied service, and — because job sizing leaves
// fault overheads inside each job's slack — per-user occupied usage
// is byte-identical to the undisturbed run's.
func RunChaos(cfg ChaosConfig) (*ChaosSummary, error) {
	cfg = cfg.withDefaults()
	if cfg.SnapshotAtRound > 0 && cfg.SnapshotDir == "" {
		return nil, fmt.Errorf("distrib: SnapshotAtRound needs SnapshotDir")
	}
	specs, err := chaosSpecs(cfg)
	if err != nil {
		return nil, err
	}
	baseline, err := runUndisturbed(cfg, specs)
	if err != nil {
		return nil, fmt.Errorf("distrib: baseline run: %w", err)
	}
	if baseline.Unfinished != 0 {
		return nil, fmt.Errorf("distrib: baseline left %d jobs unfinished", baseline.Unfinished)
	}

	out := &ChaosSummary{Baseline: baseline}

	hub := comm.NewHub()
	ctr, err := hub.Attach("central")
	if err != nil {
		return nil, err
	}
	dropWire := &chaosSend{
		Transport: ctr,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		dropProb:  cfg.DropProb,
		maxDrops:  cfg.MaxDrops,
	}
	var wire comm.Transport = dropWire
	var inj *netchaos.Injector
	if cfg.Net != nil {
		net := *cfg.Net
		if net.Obs == nil {
			net.Obs = cfg.Obs
		}
		inj = netchaos.New(net)
		wire = inj.Wrap(wire)
	}
	agents := make(map[string]*chaosAgent, cfg.Agents)
	for i := 0; i < cfg.Agents; i++ {
		name := fmt.Sprintf("agent-%d", i)
		a, err := startChaosAgent(hub, name, cfg.GPUsPerAgent, cfg.Seed+int64(i), cfg.MaxDelay, inj, cfg.Obs)
		if err != nil {
			return nil, err
		}
		agents[name] = a
	}
	ccfg := CentralConfig{
		Specs:           specs,
		Quantum:         cfg.Quantum,
		ReportTimeout:   cfg.ReportTimeout,
		CollectDeadline: cfg.CollectDeadline,
		LeaseRounds:     cfg.LeaseRounds,
		Retry:           fastRetry(cfg.Seed),
		SnapshotDir:     cfg.SnapshotDir,
		Obs:             cfg.Obs,
	}
	central, err := NewCentral(ctr, core.MustNewFairPolicy(core.FairConfig{}), ccfg)
	if err != nil {
		return nil, err
	}
	// The central speaks through the fault-injecting wire.
	central.tr = wire
	if err := central.WaitForAgents(cfg.Agents, 10*time.Second); err != nil {
		return nil, err
	}

	var (
		victim    string
		killed    bool
		restarted bool
		restored  bool
		faulted   *Summary
	)
	for step := 0; step < cfg.MaxRounds; step++ {
		if inj != nil {
			// The round about to execute: fault windows switch and
			// delayed messages release ahead of its traffic.
			inj.Advance(central.rounds + 1)
		}
		sum, err := central.Steps(1)
		if err != nil {
			return nil, fmt.Errorf("distrib: faulted run, round %d: %w", sum.Rounds, err)
		}
		faulted = sum
		if sum.Unfinished == 0 {
			break
		}
		round := sum.Rounds

		if cfg.KillAtRound > 0 && !killed && round >= cfg.KillAtRound {
			busy := central.BusyAgents()
			if len(busy) > 0 {
				victim = busy[len(busy)-1]
				_ = agents[victim].tr.Close()
				if err := waitAgent(agents[victim]); err != ErrTransportClosed && err != nil {
					return nil, fmt.Errorf("distrib: killed agent exited oddly: %w", err)
				}
				killed = true
				out.Events = append(out.Events, fmt.Sprintf("round %d: killed %s", round, victim))
			}
		}
		if killed && !restarted && round >= cfg.KillAtRound+cfg.RestartAfterRounds {
			a, err := startChaosAgent(hub, victim, cfg.GPUsPerAgent, cfg.Seed+100, cfg.MaxDelay, inj, cfg.Obs)
			if err != nil {
				return nil, fmt.Errorf("distrib: restarting %s: %w", victim, err)
			}
			agents[victim] = a
			restarted = true
			out.Events = append(out.Events, fmt.Sprintf("round %d: restarted %s (rejoin)", round, victim))
		}
		if cfg.SnapshotAtRound > 0 && !restored && round >= cfg.SnapshotAtRound {
			st, err := LoadSnapshot(cfg.SnapshotDir)
			if err != nil {
				return nil, fmt.Errorf("distrib: loading snapshot: %w", err)
			}
			central, err = RestoreCentral(wire, core.MustNewFairPolicy(core.FairConfig{}), ccfg, st)
			if err != nil {
				return nil, fmt.Errorf("distrib: restoring central: %w", err)
			}
			restored = true
			out.Events = append(out.Events,
				fmt.Sprintf("round %d: central crashed, restored from snapshot at round %d", round, st.SavedRound))
		}
	}
	if inj != nil {
		inj.Flush()
		out.NetStats = inj.Stats()
	}
	central.ShutdownAgents()
	for name, a := range agents {
		if err := waitAgent(a); err != nil {
			return nil, fmt.Errorf("distrib: faulted agent %s: %w", name, err)
		}
	}
	out.Faulted = faulted
	out.DroppedPlans = dropWire.dropped

	// Invariants.
	if faulted == nil || faulted.Unfinished != 0 {
		n := -1
		if faulted != nil {
			n = faulted.Unfinished
		}
		return nil, fmt.Errorf("distrib: faulted run left %d jobs unfinished after %d rounds", n, cfg.MaxRounds)
	}
	useful := make(map[job.UserID]float64)
	for _, j := range faulted.Finished {
		useful[j.User] += j.AttainedService()
	}
	for u, us := range useful {
		if occ := faulted.UsageByUser[u]; us > occ+1e-6 {
			return nil, fmt.Errorf("distrib: user %s useful %v exceeds occupied %v", u, us, occ)
		}
	}
	if !out.UsageIdentical() {
		if !cfg.AllowUsageDrift {
			return nil, fmt.Errorf("distrib: per-user usage diverged: baseline %v, faulted %v",
				baseline.UsageByUser, faulted.UsageByUser)
		}
		// Drift is tolerated but must balance: a fault may cost a job
		// an extra charged round, never erase one.
		for u, b := range baseline.UsageByUser {
			if f := faulted.UsageByUser[u]; f < b-1e-6 {
				return nil, fmt.Errorf("distrib: user %s lost usage under faults: baseline %v, faulted %v", u, b, f)
			}
		}
	}
	// Guard against a degenerate comparison (nothing ran at all).
	var total float64
	for _, v := range faulted.UsageByUser {
		//gflint:ignore maprange sum of nonnegatives feeds only a >0 sanity check
		total += v
	}
	if total <= 0 || math.IsNaN(total) {
		return nil, fmt.Errorf("distrib: faulted run recorded no usage")
	}
	return out, nil
}

// NetChaosConfig scripts the standard partition-tolerance matrix: one
// deterministic run that exercises every network fault kind plus a
// central crash/restore mid-schedule, shaped so the faulted run's
// per-user usage digest must stay byte-identical to the baseline's.
//
// Shape: 2 users × 3 single-GPU jobs on 3 agents × 2 GPUs — every
// agent stays busy, so placement is static and the books depend only
// on how many rounds each job is charged. Jobs are sized to 4.2
// quanta (5 charged rounds each; the 0.8-quantum slack absorbs resume
// overheads), and the lease of 4 rounds covers the longest outage.
//
// The schedule, by agent (round windows are half-open):
//   - agent-0: its reports are duplicated (rounds 1–2, dedup must
//     drop the copies), reordered (rounds 3–4, the displaced report
//     reconciles late), and one is corrupted (round 5, detected by
//     checksum and never applied);
//   - agent-1: one plan is dropped (round 2, an uncharged lost
//     round), its round-5 report is delayed across the central's
//     crash/restore after round 5 — the old-epoch report must be
//     fence-rejected — and it is fully partitioned rounds 6–7
//     (undeliverable plans charge immediate misses);
//   - agent-2: its round-2 report is delayed one round (straggler past
//     the collect deadline, reconciled next round) and its report path
//     is cut one-way rounds 3–4 (degraded mode: it keeps executing
//     leased plans and its backlog reconciles on heal).
func NetChaosConfig(seed int64, snapshotDir string) ChaosConfig {
	return ChaosConfig{
		Seed:            seed,
		Users:           2,
		JobsPerUser:     3,
		JobQuanta:       4.2,
		Agents:          3,
		GPUsPerAgent:    2,
		ReportTimeout:   250 * time.Millisecond,
		CollectDeadline: 250 * time.Millisecond,
		LeaseRounds:     4,
		SnapshotAtRound: 5,
		SnapshotDir:     snapshotDir,
		Net: &netchaos.Config{
			Seed: seed,
			Faults: []netchaos.Fault{
				{Kind: netchaos.Dup, From: "agent-0", To: "central", Rounds: faults.RoundInterval{From: 1, To: 3}},
				{Kind: netchaos.Reorder, From: "agent-0", To: "central", Rounds: faults.RoundInterval{From: 3, To: 5}},
				{Kind: netchaos.Corrupt, From: "agent-0", To: "central", Rounds: faults.RoundInterval{From: 5, To: 6}, Max: 1},
				{Kind: netchaos.Drop, From: "central", To: "agent-1", Rounds: faults.RoundInterval{From: 2, To: 3}, Max: 1},
				{Kind: netchaos.Delay, From: "agent-1", To: "central", Rounds: faults.RoundInterval{From: 5, To: 6}},
				{Kind: netchaos.Partition, From: "central", To: "agent-1", Rounds: faults.RoundInterval{From: 6, To: 8}},
				{Kind: netchaos.Delay, From: "agent-2", To: "central", Rounds: faults.RoundInterval{From: 2, To: 3}},
				{Kind: netchaos.OneWay, From: "agent-2", To: "central", Rounds: faults.RoundInterval{From: 3, To: 5}},
			},
		},
	}
}
