package distrib

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/netchaos"
)

// decodeFault turns one recipe byte into a bounded network fault:
// bits 0-2 pick the kind, bits 3-4 the agent, bit 5 the direction,
// bits 6-7 the start round (1..4, two rounds long). Zero means no
// fault. Windows stay within rounds 1..6 and the lease below is six
// rounds, so no schedule can push an agent past the down threshold —
// placement stays static and books must balance on heal.
func decodeFault(b uint8) *netchaos.Fault {
	if b == 0 {
		return nil
	}
	kinds := []netchaos.Kind{
		netchaos.Drop, netchaos.Dup, netchaos.Reorder, netchaos.Delay,
		netchaos.Corrupt, netchaos.OneWay, netchaos.Partition,
	}
	agent := fmt.Sprintf("agent-%d", (b>>3)%3)
	from, to := agent, "central"
	if (b>>5)&1 == 1 {
		from, to = "central", agent
	}
	start := 1 + int((b>>6)&3)
	return &netchaos.Fault{
		Kind: kinds[b%7], From: from, To: to,
		Rounds: faults.RoundInterval{From: start, To: start + 2},
	}
}

// FuzzNetChaos is a native fuzz target for the partition-tolerant
// protocol: the fuzzer composes up to three network faults from a
// compact byte recipe and runs the full distributed chaos harness.
// Every input must terminate with all jobs finished and balanced
// books — per-user usage never below the undisturbed baseline (a
// fault may cost an extra charged round, e.g. a reorder displacing a
// job's finishing report, but can never erase one) — on top of the
// harness's own invariants (useful ≤ occupied, nonzero usage).
//
// Run with: go test -fuzz FuzzNetChaos -fuzztime 30s ./internal/distrib
func FuzzNetChaos(f *testing.F) {
	// Seed corpus: (seed, three fault recipe bytes). Covers every
	// kind, both directions, and stacked same-link faults.
	f.Add(int64(1), uint8(0x41), uint8(0), uint8(0))       // drop central→agent-0 rounds 1-2
	f.Add(int64(2), uint8(0x0a), uint8(0x83), uint8(0))    // reorder + delay, agent-side
	f.Add(int64(3), uint8(0x2d), uint8(0xe6), uint8(0))    // oneway out, partition back
	f.Add(int64(4), uint8(0x04), uint8(0x44), uint8(0))    // corrupt both directions
	f.Add(int64(5), uint8(0x09), uint8(0x49), uint8(0x89)) // dup storm across windows
	f.Fuzz(func(t *testing.T, seed int64, b1, b2, b3 uint8) {
		var fs []netchaos.Fault
		for _, b := range []uint8{b1, b2, b3} {
			if ft := decodeFault(b); ft != nil {
				fs = append(fs, *ft)
			}
		}
		if len(fs) == 0 {
			return
		}
		if seed == 0 {
			seed = 1
		}
		cfg := ChaosConfig{
			Seed:  seed,
			Users: 2, JobsPerUser: 3, JobQuanta: 3.2,
			Agents: 3, GPUsPerAgent: 2,
			MaxRounds:       40,
			ReportTimeout:   100 * time.Millisecond,
			CollectDeadline: 100 * time.Millisecond,
			LeaseRounds:     6,
			AllowUsageDrift: true,
			Net:             &netchaos.Config{Seed: seed, Faults: fs},
		}
		sum, err := RunChaos(cfg)
		if err != nil {
			t.Fatalf("schedule %v: %v", fs, err)
		}
		for u, base := range sum.Baseline.UsageByUser {
			got := sum.Faulted.UsageByUser[u]
			if got < base-1e-6 {
				t.Errorf("user %s lost usage: baseline %v, faulted %v (schedule %v)", u, base, got, fs)
			}
			// Drift is bounded: at worst each fault displaces each of
			// the user's job finishes by one charged round.
			slack := float64(len(fs)) * float64(cfg.JobsPerUser) * float64(cfg.Quantum)
			if cfg.Quantum == 0 {
				slack = float64(len(fs)) * float64(cfg.JobsPerUser) * 360
			}
			if got > base+slack+1e-6 {
				t.Errorf("user %s overcharged: baseline %v, faulted %v, slack %v (schedule %v)", u, base, got, slack, fs)
			}
		}
	})
}
