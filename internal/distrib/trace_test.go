package distrib

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/workload"
)

// TestDistributedTraceIsConnected runs an instrumented hub deployment
// and verifies the tentpole trace property: one logical round forms a
// single trace spanning the central process and every agent — agent
// spans carry the round's trace ID and parent under the central round
// root — and the whole thing renders as valid Chrome trace JSON with
// one process row per endpoint.
func TestDistributedTraceIsConnected(t *testing.T) {
	hub := comm.NewHub()
	central, err := hub.Attach("central")
	if err != nil {
		t.Fatal(err)
	}
	waits := startAgents(t, hub, []gpu.Generation{gpu.K80, gpu.K80}, 4)

	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("alice", zoo.MustGet("lstm"), 4, 1, 0.5)...)
	specs = append(specs, workload.BatchJobs("bob", zoo.MustGet("gru"), 4, 1, 0.5)...)
	specs, _ = workload.AssignIDs(specs)

	o := obs.New()
	tr := span.New("central", 0)
	o.SetTracer(tr)
	c, err := NewCentral(central, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{
		Specs: specs, Quantum: 360, Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	for _, w := range waits {
		<-w
	}

	// Pick round 1 (the first scheduling round) and dissect its trace.
	spans := tr.RoundSpans(1)
	if len(spans) == 0 {
		t.Fatal("no spans for round 1")
	}
	var root span.Span
	procs := map[string]int{}
	for _, s := range spans {
		procs[s.Proc]++
		if s.Name == "round" && s.Proc == "central" {
			root = s
		}
		if s.Trace != 2 { // trace ID = round + 1
			t.Fatalf("span %s/%s trace = %d, want 2", s.Proc, s.Name, s.Trace)
		}
	}
	if root.ID == 0 {
		t.Fatal("central round root missing")
	}
	if procs["agent-0"] == 0 || procs["agent-1"] == 0 {
		t.Fatalf("agent spans missing from central trace: %v", procs)
	}

	// Every agent round root parents under the central round root, and
	// agent execute spans parent under their agent root — one
	// connected tree across three processes.
	byID := map[span.ID]span.Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	agentRoots := 0
	for _, s := range spans {
		switch {
		case s.Name == "agent-round":
			agentRoots++
			if s.Parent != root.ID {
				t.Errorf("agent root %s parent = %#x, want central root %#x", s.Proc, s.Parent, root.ID)
			}
		case s.Proc != "central":
			p, ok := byID[s.Parent]
			if !ok || p.Name != "agent-round" || p.Proc != s.Proc {
				t.Errorf("agent span %s/%s not parented under its agent root", s.Proc, s.Name)
			}
		}
	}
	if agentRoots != 2 {
		t.Errorf("agent roots = %d, want 2", agentRoots)
	}

	// Central phases are in the same trace.
	wantPhases := map[string]bool{"dispatch": false, "collect": false, "apply": false, "decide": false}
	for _, s := range spans {
		if s.Proc == "central" {
			if _, ok := wantPhases[s.Name]; ok {
				wantPhases[s.Name] = true
			}
		}
	}
	for ph, seen := range wantPhases {
		if !seen {
			t.Errorf("central phase span %q missing from trace", ph)
		}
	}

	// The Perfetto export is valid JSON with one process row per
	// endpoint and flow arrows for the cross-process links.
	var buf bytes.Buffer
	if err := span.WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not parseable: %v", err)
	}
	metaNames := map[string]bool{}
	flows := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" {
			if args, ok := ev["args"].(map[string]any); ok {
				metaNames[args["name"].(string)] = true
			}
		}
		if ev["ph"] == "s" {
			flows++
		}
	}
	for _, proc := range []string{"central", "agent-0", "agent-1"} {
		if !metaNames[proc] {
			t.Errorf("process row %q missing from chrome trace", proc)
		}
	}
	if flows != 2 {
		t.Errorf("cross-process flow arrows = %d, want 2", flows)
	}
}

// TestUntracedPlansCarryNoSpans pins the wire behavior with tracing
// off: plans ship a zero trace context and reports stay span-free, so
// the protocol is byte-compatible with pre-tracing builds.
func TestUntracedPlansCarryNoSpans(t *testing.T) {
	tr, err := comm.NewHub().Attach("agent-x")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent(tr, "central", gpu.K80, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep := a.execute(comm.RoundPlan{Round: 3, Quantum: 360, Jobs: []comm.JobAssignment{
		{JobID: 1, User: "u", Model: "lstm", Gang: 1, LocalGPUs: []int{0}, TotalMB: 100, GangRate: 1},
	}})
	if rep.Spans != nil {
		t.Fatalf("untraced report carries spans: %+v", rep.Spans)
	}
	if a.tracer != nil {
		t.Fatal("untraced plan created a tracer")
	}
}
