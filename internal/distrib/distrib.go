// Package distrib runs Gandiva_fair as the distributed system the
// paper deploys: a central scheduler making round decisions and one
// agent per server executing its slice of the plan, connected by the
// comm transports (in-memory for tests, TCP for real processes).
//
// The central scheduler reuses the exact same policy and placement
// code the simulation core runs — distribution only changes who
// executes a quantum and how the results travel back. Job state
// crosses the wire on every (re)placement (checkpoint semantics), so
// agents are stateless and migration falls out of the protocol.
package distrib

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/placement"
	"repro/internal/profiler"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// ErrTransportClosed reports that an agent's transport closed before
// the central scheduler sent Shutdown — a central crash or network
// partition. Callers that support rejoin redial and Run again.
var ErrTransportClosed = errors.New("distrib: transport closed before shutdown")

// Agent executes round plans for one server. Run blocks until
// Shutdown or transport closure.
//
// Beyond plain execution the agent speaks the partition-tolerant
// protocol: it verifies envelope checksums, drops duplicate
// deliveries, fences plans from stale central epochs, and — when
// plans carry a lease — keeps local job state and a backlog of
// unacknowledged reports so a report-path partition degrades service
// instead of losing work (the central reconciles the backlog on
// heal). All of that state is plan-paced: the agent never speculates
// on wall-clock time, so runs stay deterministic.
type Agent struct {
	tr      comm.Transport
	central string
	gen     gpu.Generation
	gpus    int
	obs     *obs.Observer
	retry   *comm.Retrier
	tracer  *span.Tracer // lazily created on the first traced plan

	dedup     *comm.Dedup
	epoch     int // newest central epoch seen (0 until the first fenced plan)
	lastRound int // newest round executed within the current epoch
	// local carries per-job progress while a lease is active, so a
	// degraded agent keeps training past a stale plan's checkpoint
	// instead of redoing work the central never heard about.
	local map[int64]float64
	// backlog holds executed-but-unacknowledged reports, oldest
	// first; it is resent ahead of each new report and pruned by the
	// plans' cumulative AckRound.
	backlog []comm.RoundReport
}

// SetObserver attaches instrumentation (nil is fine and is the
// default: every observer method is nil-safe).
func (a *Agent) SetObserver(o *obs.Observer) { a.obs = o }

// SetRetry replaces the default send retry/backoff policy.
func (a *Agent) SetRetry(pol comm.RetryPolicy) { a.retry = a.newRetrier(pol) }

func (a *Agent) newRetrier(pol comm.RetryPolicy) *comm.Retrier {
	user := pol.OnRetry
	pol.OnRetry = func(n int, err error) {
		a.obs.NoteProtocol("send_retry")
		if user != nil {
			user(n, err)
		}
	}
	return comm.NewRetrier(pol)
}

// NewAgent wires an agent for a server of gpus devices of one
// generation.
func NewAgent(tr comm.Transport, central string, gen gpu.Generation, gpus int) (*Agent, error) {
	if tr == nil {
		return nil, fmt.Errorf("distrib: nil transport")
	}
	if !gen.Valid() || gpus <= 0 {
		return nil, fmt.Errorf("distrib: invalid server inventory")
	}
	a := &Agent{tr: tr, central: central, gen: gen, gpus: gpus, dedup: comm.NewDedup()}
	a.retry = a.newRetrier(comm.RetryPolicy{})
	return a, nil
}

// Run registers with the central scheduler and serves round plans
// until shut down. Sends go through the retry/backoff policy, so a
// transient wire failure does not kill the agent. Returns
// ErrTransportClosed when the connection dies before Shutdown, so
// supervisors can distinguish a crash from a clean exit.
func (a *Agent) Run() error {
	err := a.retry.Send(a.tr, a.central, comm.Envelope{From: a.tr.Name(), Msg: comm.Register{
		Agent: a.tr.Name(), Gen: int(a.gen), GPUs: a.gpus,
	}})
	if err != nil {
		return err
	}
	a.obs.NoteProtocol("register_sent")
	for env := range a.tr.Recv() {
		if !comm.Verify(env) {
			a.obs.NoteProtocol("corrupt_detected")
			continue
		}
		if a.dedup.Duplicate(env.From, env.Seq) {
			a.obs.NoteProtocol("dup_dropped")
			continue
		}
		switch m := env.Msg.(type) {
		case comm.RegisterAck:
			if !m.OK {
				return fmt.Errorf("distrib: registration rejected: %s", m.Reason)
			}
		case comm.RoundPlan:
			if m.Epoch > 0 {
				if m.Epoch < a.epoch {
					// A plan from a dead central incarnation: acting on
					// it would split-brain the cluster.
					a.obs.NoteProtocol("fence_reject")
					continue
				}
				if m.Epoch > a.epoch {
					// New central incarnation: everything local belongs
					// to an epoch whose books are closed. The plan's
					// checkpoint is the authoritative restart point.
					a.epoch = m.Epoch
					a.lastRound = 0
					a.local = nil
					a.backlog = nil
				}
				if m.Round <= a.lastRound {
					// Duplicate or reordered plan for a round already
					// executed; running it again would double work.
					a.obs.NoteProtocol("stale_plan_dropped")
					continue
				}
			}
			a.obs.NoteProtocol("plan_received")
			a.pruneAcked(m.AckRound)
			if m.Lease > 0 && len(a.backlog) > 0 && a.backlog[0].Round <= m.Round-m.Lease {
				// Lease expired: the oldest unacknowledged round has
				// aged out of the central's reconciliation window, so
				// that work can never be credited. Park at the plan's
				// checkpoint: drop local state and resync to the
				// central's view.
				a.local = nil
				a.backlog = nil
				a.obs.NoteProtocol("lease_expired")
			}
			rep := a.execute(m)
			a.lastRound = m.Round
			if m.Lease > 0 {
				a.backlog = append(a.backlog, rep)
				if err := a.sendBacklog(); err != nil {
					// The report path is down. The lease covers us:
					// keep executing plans (they may still arrive on an
					// asymmetric partition) and keep buffering; the
					// central reconciles the backlog on heal.
					a.obs.NoteProtocol("report_send_failed")
					continue
				}
				a.obs.NoteProtocol("report_sent")
			} else {
				if err := a.retry.Send(a.tr, a.central, comm.Envelope{From: a.tr.Name(), Msg: rep}); err != nil {
					return err
				}
				a.obs.NoteProtocol("report_sent")
			}
		case comm.Shutdown:
			return nil
		}
	}
	return ErrTransportClosed
}

// pruneAcked drops backlog entries the central has applied (AckRound
// is a cumulative ack).
func (a *Agent) pruneAcked(ackRound int) {
	for len(a.backlog) > 0 && a.backlog[0].Round <= ackRound {
		a.backlog = a.backlog[1:]
	}
}

// sendBacklog ships the unacknowledged window oldest-first (the
// current round's report is its newest entry). Replayed entries are
// idempotent at the central: its per-(agent, round) applied set
// drops rounds it already counted.
func (a *Agent) sendBacklog() error {
	for _, r := range a.backlog {
		if err := a.retry.Send(a.tr, a.central, comm.Envelope{From: a.tr.Name(), Msg: r}); err != nil {
			return err
		}
	}
	return nil
}

// execute runs one quantum's worth of training for the assigned jobs.
// The agent is stateless apart from tracing: everything it needs to
// compute arrives in the plan; when the plan carries a trace context,
// the agent's spans parent under the central round root and ride back
// on the report.
func (a *Agent) execute(plan comm.RoundPlan) comm.RoundReport {
	rep := comm.RoundReport{Agent: a.tr.Name(), Round: plan.Round, Epoch: plan.Epoch}
	var execSpan span.ID
	traced := plan.Trace != 0
	if traced {
		if a.tracer == nil {
			a.tracer = span.New(a.tr.Name(), span.DefaultCap)
		}
		a.tracer.BeginRemote(plan.Trace, plan.Round, 0, "agent-round", span.ID(plan.Span))
		execSpan = a.tracer.Start(string(obs.PhaseExecute))
	}
	for _, as := range plan.Jobs {
		useful := plan.Quantum - as.Overhead
		if useful < 0 {
			useful = 0
		}
		done := as.DoneMB
		// Whole jobs (never cross-server shards) under a lease trust
		// local progress over the plan's checkpoint: a plan built
		// while our reports were cut off carries a stale base, and
		// redoing that work would both waste the quantum and
		// double-charge usage once the backlog reconciles.
		wholeJob := as.Shard == 0 || as.Shard >= 1
		if plan.Lease > 0 && wholeJob {
			if ld, ok := a.local[as.JobID]; ok && ld > done {
				done = ld
			}
		}
		used := useful
		finished := false
		if as.GangRate > 0 {
			need := (as.TotalMB - done) / as.GangRate
			if need <= useful {
				used = need
				finished = true
				done = as.TotalMB
			} else {
				done += as.GangRate * useful
			}
		} else {
			used = 0
		}
		if plan.Lease > 0 && wholeJob {
			if a.local == nil {
				a.local = make(map[int64]float64)
			}
			a.local[as.JobID] = done
		}
		rep.Jobs = append(rep.Jobs, comm.JobProgress{
			JobID: as.JobID, DoneMB: done, Finished: finished, UsedSecs: used,
		})
	}
	if plan.Lease > 0 && len(a.backlog) == 0 && len(a.local) > 0 {
		// Nothing awaits reconciliation, so local state for jobs no
		// longer assigned here is stale (they migrated or finished;
		// their truth lives centrally). Keeping it could skip work if
		// a job ever returns after the central discarded progress.
		inPlan := make(map[int64]bool, len(plan.Jobs))
		for _, as := range plan.Jobs {
			inPlan[as.JobID] = true
		}
		ids := make([]int64, 0, len(a.local))
		for id := range a.local {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
		for _, id := range ids {
			if !inPlan[id] {
				delete(a.local, id)
			}
		}
	}
	if traced {
		a.tracer.End(execSpan)
		a.tracer.EndRound()
		rep.Spans = a.tracer.RoundSpans(plan.Round)
	}
	return rep
}

// ---------------------------------------------------------------------------
// Central scheduler

// CentralConfig drives the central scheduler.
type CentralConfig struct {
	Specs   []job.Spec
	Tickets map[job.UserID]float64

	// Quantum is the virtual training time per round in seconds
	// (default 360). Rounds execute as fast as the agents answer —
	// the distributed run is still a simulation of training time, it
	// just executes on real processes over a real wire.
	Quantum simclock.Duration

	// Costs is the overhead model used to compute the per-assignment
	// overhead sent to agents.
	Costs migrate.CostModel

	// ReportTimeout bounds the wait for agent reports each round
	// (default 5 s of wall time).
	ReportTimeout time.Duration

	// CollectDeadline, when positive, overrides ReportTimeout as the
	// straggler cutoff: the collect phase proceeds without agents
	// that have not reported by then, charges their jobs as misses,
	// and (with LeaseRounds > 0) reconciles their late reports
	// idempotently in a following round.
	CollectDeadline time.Duration

	// LeaseRounds enables lease-based degraded mode: every plan
	// grants the agent a lease of this many rounds. An agent cut off
	// from the central keeps executing its latest plans on local
	// state and buffers unacknowledged reports until the lease
	// expires, then parks at the plan checkpoint; the central keeps
	// the agent's placement sticky for suspectThreshold+LeaseRounds
	// missed rounds and reconciles the buffered reports when the
	// partition heals, so fairness books balance. It also bounds the
	// late-report reconciliation window. Zero disables degraded mode
	// and reconciliation — exactly the legacy protocol.
	LeaseRounds int

	// StrictReports makes a missing agent report a fatal error. By
	// default the round proceeds without the silent agent's progress:
	// its jobs simply make no progress this quantum and are replaced
	// elsewhere next round (their state lives in the central
	// scheduler's records, so nothing is lost).
	StrictReports bool

	// MaxAgentTimeouts aborts the run after this many total missed
	// reports (guard against a permanently dead deployment). Zero
	// means 50.
	MaxAgentTimeouts int

	// Retry shapes the send retry/backoff (capped exponential with
	// jitter) wrapped around every plan, ack and shutdown send.
	// Zero-value fields take comm's documented defaults.
	Retry comm.RetryPolicy

	// SnapshotDir, when non-empty, persists the scheduler's full
	// state (jobs, usage, failure-detector counters) to
	// SnapshotDir/central.snap.json after every SnapshotEvery rounds
	// so a crashed coordinator can resume via RestoreCentral.
	SnapshotDir string

	// SnapshotEvery is the snapshot period in rounds (default 1).
	SnapshotEvery int

	// Obs receives metrics, phase timings, and decision explanations
	// for the central scheduler. Nil disables instrumentation at zero
	// cost (all observer methods are nil-safe).
	Obs *obs.Observer

	// Trace, when non-nil, records protocol lifecycle events
	// (lease-expiry, partition-heal, fence-reject) at simulated
	// timestamps.
	Trace *trace.Log
}

// Central is the coordinator. It reuses core.FairPolicy (or any
// core.Policy) for decisions and placement for device assignment.
type Central struct {
	cfg    CentralConfig
	tr     comm.Transport
	policy core.Policy
	prof   *profiler.Profiler

	agents  []agentInfo // sorted by name; fixed after WaitForAgents
	cluster *gpu.Cluster
	// serverOf maps cluster ServerID → agent index.
	serverOf map[gpu.ServerID]int

	retry *comm.Retrier

	now      simclock.Time
	rounds   int // scheduling rounds executed (idle quanta excluded)
	timeouts int
	missed   map[string]int // consecutive missed reports per agent
	pending  []job.Spec
	active   map[job.ID]*job.Job
	done     []*job.Job
	prev     placement.Assignment
	prevGen  map[job.ID]gpu.Generation

	usage map[job.UserID]float64

	// Partition-tolerance state. epoch fences central incarnations
	// (fresh = 1, restored = snapshot+1); dedup drops duplicate
	// envelope deliveries; the rest implements idempotent late-report
	// reconciliation: lastApplied is the newest round counted per
	// job, appliedRound the newest round counted per agent (the
	// plans' cumulative AckRound), appliedSet the per-(agent, round)
	// idempotency record, plannedWin the retained window of what each
	// agent was asked to run (what a late report may be charged
	// against), and lateQ the late reports awaiting reconciliation.
	epoch        int
	dedup        *comm.Dedup
	lastApplied  map[job.ID]int
	appliedRound map[string]int
	appliedSet   map[string]map[int]bool
	plannedWin   map[int]map[string]map[job.ID]plannedEntry
	lateQ        []comm.RoundReport
}

// plannedEntry is what the central recorded about one job's
// assignment to one agent in one round, retained for LeaseRounds
// rounds so a late report can be verified and charged exactly as the
// on-time report would have been.
type plannedEntry struct {
	gen  gpu.Generation
	gang int
	frac float64
}

type agentInfo struct {
	name string
	gen  gpu.Generation
	gpus int
}

// NewCentral builds the coordinator. Call WaitForAgents before Run.
func NewCentral(tr comm.Transport, policy core.Policy, cfg CentralConfig) (*Central, error) {
	if tr == nil || policy == nil {
		return nil, fmt.Errorf("distrib: nil transport or policy")
	}
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("distrib: no jobs")
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 360
	}
	if (cfg.Costs == migrate.CostModel{}) {
		cfg.Costs = migrate.Default()
	}
	if cfg.ReportTimeout == 0 {
		cfg.ReportTimeout = 5 * time.Second
	}
	if cfg.MaxAgentTimeouts == 0 {
		cfg.MaxAgentTimeouts = 50
	}
	if cfg.Tickets == nil {
		cfg.Tickets = map[job.UserID]float64{}
	}
	prof, err := profiler.New(0.25, 0, 1) // noiseless: agents report true rates
	if err != nil {
		return nil, err
	}
	c := &Central{
		cfg:      cfg,
		tr:       tr,
		policy:   policy,
		prof:     prof,
		serverOf: make(map[gpu.ServerID]int),
		active:   make(map[job.ID]*job.Job),
		missed:   make(map[string]int),
		prev:     placement.Assignment{},
		prevGen:  make(map[job.ID]gpu.Generation),
		usage:    make(map[job.UserID]float64),
		epoch:    1,
	}
	c.initProtocol()
	c.retry = c.newRetrier()
	c.pending = make([]job.Spec, len(cfg.Specs))
	copy(c.pending, cfg.Specs)
	sort.SliceStable(c.pending, func(i, j int) bool { return c.pending[i].Arrival < c.pending[j].Arrival })
	for i := range c.pending {
		if err := c.pending[i].Validate(); err != nil {
			return nil, err
		}
		if _, ok := cfg.Tickets[c.pending[i].User]; !ok {
			cfg.Tickets[c.pending[i].User] = 1
		}
	}
	return c, nil
}

// initProtocol builds the partition-tolerance state for a fresh or
// restored central. Call after c.epoch is set.
func (c *Central) initProtocol() {
	c.dedup = comm.NewDedup()
	c.lastApplied = make(map[job.ID]int)
	c.appliedRound = make(map[string]int)
	c.appliedSet = make(map[string]map[int]bool)
	c.plannedWin = make(map[int]map[string]map[job.ID]plannedEntry)
	c.cfg.Obs.SetEpoch(c.epoch)
}

// collectDeadline is the straggler cutoff for the collect phase.
func (c *Central) collectDeadline() time.Duration {
	if c.cfg.CollectDeadline > 0 {
		return c.cfg.CollectDeadline
	}
	return c.cfg.ReportTimeout
}

// newRetrier builds the central's send retrier, instrumenting every
// retry through the observer. The sequence space is epoch-salted so a
// restarted central's envelopes are never mistaken for replays of its
// predecessor's (or vice versa) by agents that kept dedup history.
func (c *Central) newRetrier() *comm.Retrier {
	pol := c.cfg.Retry
	pol.SeqBase = uint64(c.epoch) << 32
	user := pol.OnRetry
	pol.OnRetry = func(n int, err error) {
		c.cfg.Obs.NoteProtocol("send_retry")
		if user != nil {
			user(n, err)
		}
	}
	return comm.NewRetrier(pol)
}

// accept runs the protocol's receive-side defenses on one envelope:
// checksum verification (corruption is detected and counted, never
// applied) and duplicate-delivery suppression. Register messages are
// exempt from dedup — a legitimately restarted agent restarts its
// sequence space, so an accepted Register instead resets its peer's
// history (registration itself is idempotent upstream).
func (c *Central) accept(env comm.Envelope) bool {
	if !comm.Verify(env) {
		c.cfg.Obs.NoteProtocol("corrupt_detected")
		return false
	}
	if _, isReg := env.Msg.(comm.Register); isReg {
		c.dedup.Reset(env.From)
		return true
	}
	if c.dedup.Duplicate(env.From, env.Seq) {
		c.cfg.Obs.NoteProtocol("dup_dropped")
		return false
	}
	return true
}

// fenced reports whether a round report belongs to a dead epoch.
// Unfenced (epoch-0) reports from legacy peers pass.
func (c *Central) fenced(rep comm.RoundReport) bool {
	if rep.Epoch == 0 || rep.Epoch == c.epoch {
		return false
	}
	c.cfg.Obs.NoteProtocol("fence_reject")
	if c.cfg.Trace != nil {
		c.cfg.Trace.Add(c.now, trace.KindFenceReject, 0, "",
			fmt.Sprintf("report round %d epoch %d from %s (epoch now %d)", rep.Round, rep.Epoch, rep.Agent, c.epoch))
	}
	return true
}

// noteAlive records proof of life from an agent: its miss counter
// resets, and if it had been cut off long enough to be suspected the
// recovery is a partition heal.
func (c *Central) noteAlive(agent string) {
	if c.missed[agent] >= suspectThreshold {
		c.cfg.Obs.NoteProtocol("partition_heal")
		if c.cfg.Trace != nil {
			c.cfg.Trace.Add(c.now, trace.KindPartitionHeal, 0, "", agent)
		}
	}
	c.missed[agent] = 0
}

// WaitForAgents blocks until n distinct agents registered (or
// timeout), builds the cluster inventory from their announcements,
// and acks each. A retried registration for an already-known name is
// idempotent when the inventory matches and rejected when it does
// not, so duplicate Register messages cannot corrupt the inventory.
func (c *Central) WaitForAgents(n int, timeout time.Duration) error {
	//gflint:ignore wallclock registration deadline on a real transport, not simulated time
	deadline := time.After(timeout)
	for len(c.agents) < n {
		select {
		case env, ok := <-c.tr.Recv():
			if !ok {
				return fmt.Errorf("distrib: transport closed during registration")
			}
			if !c.accept(env) {
				continue
			}
			reg, isReg := env.Msg.(comm.Register)
			if !isReg {
				continue
			}
			g := gpu.Generation(reg.Gen)
			if !g.Valid() || reg.GPUs <= 0 {
				c.ackRegister(reg.Agent, false, "invalid inventory")
				continue
			}
			if i := c.agentIndex(reg.Agent); i >= 0 {
				if c.agents[i].gen == g && c.agents[i].gpus == reg.GPUs {
					// Retried registration: already recorded, one ack
					// below covers it.
					c.cfg.Obs.NoteProtocol("register_duplicate")
				} else {
					c.ackRegister(reg.Agent, false, fmt.Sprintf(
						"agent %q already registered with %d× %v", reg.Agent, c.agents[i].gpus, c.agents[i].gen))
				}
				continue
			}
			c.agents = append(c.agents, agentInfo{name: reg.Agent, gen: g, gpus: reg.GPUs})
			c.cfg.Obs.NoteProtocol("register_received")
		case <-deadline:
			return fmt.Errorf("distrib: only %d of %d agents registered", len(c.agents), n)
		}
	}
	if err := c.buildCluster(); err != nil {
		return err
	}
	// Reject jobs that can never be placed on the registered
	// inventory (a gang needs one generation with enough GPUs).
	for i := range c.pending {
		sp := &c.pending[i]
		placeable := false
		for _, g := range c.cluster.GensPresent() {
			if sp.Perf.FitsOn(g) && sp.Gang <= c.cluster.Capacity(g) {
				placeable = true
				break
			}
		}
		if !placeable {
			return fmt.Errorf("distrib: job %d (gang %d, %s) fits no registered generation",
				sp.ID, sp.Gang, sp.Perf.Model)
		}
	}
	for _, a := range c.agents {
		if err := c.retry.Send(c.tr, a.name, comm.Envelope{From: c.tr.Name(), Msg: comm.RegisterAck{OK: true}}); err != nil {
			return err
		}
	}
	return nil
}

// buildCluster derives deterministic server IDs from the registered
// agents: sort by name, one server each.
func (c *Central) buildCluster() error {
	sort.Slice(c.agents, func(i, j int) bool { return c.agents[i].name < c.agents[j].name })
	specs := make([]gpu.Spec, len(c.agents))
	for i, a := range c.agents {
		specs[i] = gpu.Spec{Gen: a.gen, Servers: 1, GPUsPerSrv: a.gpus}
	}
	cluster, err := gpu.New(specs...)
	if err != nil {
		return err
	}
	c.cluster = cluster
	for i, srv := range cluster.Servers() {
		c.serverOf[srv.ID] = i
	}
	return nil
}

// agentIndex returns the index of the named agent, or -1.
func (c *Central) agentIndex(name string) int {
	for i, a := range c.agents {
		if a.name == name {
			return i
		}
	}
	return -1
}

// ackRegister answers a Register best-effort (the agent re-registers
// if the ack is lost, so a failed ack send is not fatal).
func (c *Central) ackRegister(agent string, ok bool, reason string) {
	_ = c.retry.Send(c.tr, agent, comm.Envelope{From: c.tr.Name(),
		Msg: comm.RegisterAck{OK: ok, Reason: reason}})
}

// handleRejoin reconciles a mid-run re-registration against the
// fixed inventory: a known agent announcing its original inventory
// is welcomed back (its server is marked up and its failure counter
// reset); anything else is rejected with a reason. Returns whether
// the rejoin was accepted.
func (c *Central) handleRejoin(reg comm.Register) bool {
	g := gpu.Generation(reg.Gen)
	i := c.agentIndex(reg.Agent)
	switch {
	case i < 0:
		c.ackRegister(reg.Agent, false, fmt.Sprintf(
			"unknown agent %q: the inventory is fixed after startup", reg.Agent))
	case c.agents[i].gen != g || c.agents[i].gpus != reg.GPUs:
		c.ackRegister(reg.Agent, false, fmt.Sprintf(
			"inventory mismatch: %q registered %d× %v, rejoined with %d× %v",
			reg.Agent, c.agents[i].gpus, c.agents[i].gen, reg.GPUs, g))
	default:
		c.missed[reg.Agent] = 0
		c.ackRegister(reg.Agent, true, "")
		c.cfg.Obs.NoteProtocol("rejoin_accepted")
		return true
	}
	c.cfg.Obs.NoteProtocol("rejoin_rejected")
	return false
}

// drainControl processes queued control messages (rejoin
// registrations) without blocking. Round reports found here arrived
// after their round's collect phase closed — straggler or
// partition-buffered traffic — and are queued for idempotent
// reconciliation instead of dropped, so a healed agent's degraded-mode
// work is credited.
func (c *Central) drainControl() {
	for {
		select {
		case env, ok := <-c.tr.Recv():
			if !ok {
				return
			}
			if !c.accept(env) {
				continue
			}
			switch m := env.Msg.(type) {
			case comm.Register:
				c.handleRejoin(m)
			case comm.RoundReport:
				if !c.fenced(m) {
					c.lateQ = append(c.lateQ, m)
				}
			}
		default:
			return
		}
	}
}

// reconcileLate replays queued late reports against the retained
// planning window before round `round` plans. Each (agent, round)
// report is applied at most once, only for whole-job assignments the
// central actually planned on that agent, and only when it advances
// the job — so duplicated, reordered, and replayed backlog deliveries
// are all safe. Any late report is proof of life and heals the
// agent's failure detector even when its usage was already charged.
// With LeaseRounds disabled the queue is drained without applying:
// the legacy protocol has no reconciliation window.
func (c *Central) reconcileLate(round int) {
	if len(c.lateQ) == 0 {
		return
	}
	reps := c.lateQ
	c.lateQ = nil
	// Oldest round first so multi-round backlogs replay in execution
	// order; ties by agent for determinism.
	sort.SliceStable(reps, func(i, k int) bool {
		if reps[i].Round != reps[k].Round {
			return reps[i].Round < reps[k].Round
		}
		return reps[i].Agent < reps[k].Agent
	})
	for _, rep := range reps {
		c.noteAlive(rep.Agent)
		if c.cfg.LeaseRounds <= 0 {
			continue
		}
		if rep.Round >= round || rep.Round <= round-1-c.cfg.LeaseRounds {
			continue // outside the reconciliation window
		}
		if c.appliedSet[rep.Agent][rep.Round] {
			// Backlog replay of a round already counted: the
			// idempotency record absorbs it.
			c.cfg.Obs.NoteProtocol("late_report_dropped")
			continue
		}
		planned := c.plannedWin[rep.Round][rep.Agent]
		if planned == nil {
			continue // never asked this agent to run that round
		}
		applied := false
		for _, p := range rep.Jobs {
			id := job.ID(p.JobID)
			pe, ok := planned[id]
			if !ok || pe.frac < 1 {
				// Not planned here, or a cross-server shard: a shard's
				// progress only means something merged with its
				// siblings in the same round, which is gone.
				continue
			}
			j := c.active[id]
			if j == nil || j.Finished() {
				continue
			}
			if c.lastApplied[id] >= rep.Round {
				continue // a newer round already counted this job
			}
			if p.DoneMB < j.DoneMB()-1e-6 {
				continue // stale progress; applying would move the job backwards
			}
			// Charge exactly as the on-time report would have been:
			// the round's end time is in the past relative to c.now,
			// but usage and progress are time-independent.
			j.ApplyReport(p.DoneMB, pe.gen, float64(pe.gang)*p.UsedSecs, p.Finished, c.now)
			c.usage[j.User] += float64(pe.gang) * c.cfg.Quantum
			c.lastApplied[id] = rep.Round
			if j.Finished() {
				c.finishJob(id, j)
			}
			applied = true
		}
		if c.appliedSet[rep.Agent] == nil {
			c.appliedSet[rep.Agent] = make(map[int]bool)
		}
		c.appliedSet[rep.Agent][rep.Round] = true
		if rep.Round > c.appliedRound[rep.Agent] {
			c.appliedRound[rep.Agent] = rep.Round
		}
		if applied {
			c.cfg.Obs.NoteProtocol("late_report_applied")
		} else {
			c.cfg.Obs.NoteProtocol("late_report_dropped")
		}
	}
}

// finishJob retires a finished job from every scheduler structure.
func (c *Central) finishJob(id job.ID, j *job.Job) {
	c.done = append(c.done, j)
	c.policy.JobFinished(id)
	c.prof.Remove(id)
	delete(c.active, id)
	delete(c.prevGen, id)
	delete(c.prev, id)
	delete(c.lastApplied, id)
	c.cfg.Obs.NoteFinish()
}

// Summary reports the distributed run's outcome.
type Summary struct {
	// Rounds counts scheduling rounds actually executed; quanta that
	// passed with no active job (waiting for arrivals) are excluded.
	Rounds         int
	Finished       []*job.Job
	Unfinished     int
	UsageByUser    map[job.UserID]float64 // occupied GPU-seconds
	VirtualSeconds simclock.Duration
	// MissedReports counts agent round-reports that timed out and
	// were tolerated.
	MissedReports int
}

// Run executes up to maxRounds scheduling quanta (stopping early when
// all jobs finish) and shuts the agents down.
func (c *Central) Run(maxRounds int) (*Summary, error) {
	sum, err := c.Steps(maxRounds)
	if err != nil {
		return nil, err
	}
	c.ShutdownAgents()
	return sum, nil
}

// Steps advances the schedule by up to maxSteps quanta without
// shutting the agents down, so a supervisor (the chaos harness, an
// operator console) can interleave scheduling with control actions.
// It stops early when every job has finished. The returned summary
// reflects progress so far.
func (c *Central) Steps(maxSteps int) (*Summary, error) {
	if c.cluster == nil {
		return nil, fmt.Errorf("distrib: WaitForAgents first")
	}
	for step := 0; step < maxSteps; step++ {
		if err := c.admit(); err != nil {
			return nil, err
		}
		if len(c.active) == 0 {
			if len(c.pending) == 0 {
				break
			}
			c.now = c.now.Add(c.cfg.Quantum)
			continue
		}
		if err := c.runRound(c.rounds + 1); err != nil {
			return nil, err
		}
		c.rounds++
		c.now = c.now.Add(c.cfg.Quantum)
		if err := c.maybeSnapshot(); err != nil {
			return nil, err
		}
	}
	return c.summary(), nil
}

// ShutdownAgents tells every agent to exit (best-effort, retried).
func (c *Central) ShutdownAgents() {
	for _, a := range c.agents {
		_ = c.retry.Send(c.tr, a.name, comm.Envelope{From: c.tr.Name(), Msg: comm.Shutdown{}})
	}
}

func (c *Central) summary() *Summary {
	sort.Slice(c.done, func(i, j int) bool { return c.done[i].FinishTime() < c.done[j].FinishTime() })
	return &Summary{
		Rounds:         c.rounds,
		Finished:       c.done,
		Unfinished:     len(c.active) + len(c.pending),
		UsageByUser:    c.usage,
		VirtualSeconds: simclock.Duration(c.now),
		MissedReports:  c.timeouts,
	}
}

// admit moves arrived specs into the active set. Specs are validated
// at construction, so a job that fails to build here is a hard error
// — silently dropping it would lose the job without trace.
func (c *Central) admit() error {
	n := 0
	for len(c.pending) > 0 && c.pending[0].Arrival <= c.now {
		j, err := job.New(c.pending[0])
		if err != nil {
			return fmt.Errorf("distrib: admitting job %d: %w", c.pending[0].ID, err)
		}
		c.active[j.ID] = j
		n++
		c.pending = c.pending[1:]
	}
	c.cfg.Obs.NoteAdmitted(n)
	return nil
}

// BusyAgents returns the names (sorted) of agents hosting at least
// one job in the most recent round's assignment. The chaos harness
// uses it to aim a kill at a server that actually has work.
func (c *Central) BusyAgents() []string {
	busy := make(map[int]bool)
	for _, devs := range c.prev {
		for _, d := range devs {
			busy[c.serverOf[c.cluster.Device(d).Server]] = true
		}
	}
	var names []string
	for i, a := range c.agents {
		if busy[i] {
			names = append(names, a.name)
		}
	}
	sort.Strings(names)
	return names
}

// suspectThreshold is how many consecutive missed reports mark an
// agent's server down until it reports again.
const suspectThreshold = 2

// downThreshold is the miss count at which an agent's server is
// treated as down. Leases extend the base threshold: a leased agent
// may legitimately be executing in degraded mode for LeaseRounds
// rounds, so its placement stays sticky that much longer.
func (c *Central) downThreshold() int { return suspectThreshold + c.cfg.LeaseRounds }

// noteMiss charges one missed report against an agent. When a leased
// agent crosses the down threshold its lease has expired from the
// central's point of view: the agent (if alive) parks at its next
// plan, and its jobs become placeable elsewhere.
func (c *Central) noteMiss(name string) {
	c.missed[name]++
	c.timeouts++
	if c.cfg.LeaseRounds > 0 && c.missed[name] == c.downThreshold() {
		c.cfg.Obs.NoteProtocol("lease_expired")
		if c.cfg.Trace != nil {
			c.cfg.Trace.Add(c.now, trace.KindLeaseExpire, 0, "", name)
		}
	}
}

// downServers returns servers whose agents are currently suspected
// dead (failure detection by missed round reports).
func (c *Central) downServers() map[gpu.ServerID]bool {
	down := make(map[gpu.ServerID]bool)
	for i, a := range c.agents {
		if c.missed[a.name] >= c.downThreshold() {
			for sid, ai := range c.serverOf {
				if ai == i {
					down[sid] = true
				}
			}
		}
	}
	return down
}

func (c *Central) runRound(round int) error {
	o := c.cfg.Obs
	c.drainControl()
	// Reconcile before planning so plans carry the freshest checkpoint
	// (a healed agent's backlog may have advanced jobs past what the
	// central charged so far).
	c.reconcileLate(round)
	o.BeginRound(round, float64(c.now))
	// Trace context shipped in every plan so agent spans join this
	// round's trace (both zero when tracing is off).
	ctr := o.Tracer()
	ctrace := ctr.Trace()
	croot := uint64(ctr.Root())
	jobs := make([]*job.Job, 0, len(c.active))
	for _, j := range c.active {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	for _, j := range jobs {
		if c.prof.Samples(j.ID, c.cluster.GensPresent()[0]) == 0 {
			c.prof.ProbeAll(j)
		}
	}

	down := c.downServers()
	st := &core.RoundState{
		Now: c.now, Quantum: c.cfg.Quantum, Cluster: c.cluster,
		Jobs: jobs, Tickets: c.cfg.Tickets, Prof: c.prof, PrevGen: c.prevGen,
		Down: down,
		Obs:  o,
	}
	o.PhaseStart(obs.PhaseDecide)
	dec := c.policy.Decide(st)
	o.PhaseEnd(obs.PhaseDecide)
	for _, t := range dec.Trades {
		o.NoteTrade(string(t.Buyer), string(t.Seller), t.Fast.String(), t.Slow.String(),
			t.FastGPUs, t.SlowGPUs, t.Price)
	}
	o.PhaseStart(obs.PhasePlacement)
	res := placement.Place(c.cluster, c.prev, dec.Run, placement.Options{AllowMigration: true, Down: down})
	if err := placement.Validate(c.cluster, res.Assignment); err != nil {
		return err
	}
	o.PhaseEnd(obs.PhasePlacement)
	migrated := make(map[job.ID]bool)
	for _, id := range res.Migrated {
		migrated[id] = true
	}
	o.NoteUnplaced(len(res.Unplaced))
	if o != nil {
		for _, id := range job.SortedIDs(res.Assignment) {
			devs := res.Assignment[id]
			j := c.active[id]
			if j == nil {
				continue
			}
			gen := c.cluster.Device(devs[0]).Gen
			ds := make([]int, len(devs))
			for i, d := range devs {
				ds[i] = int(d)
			}
			fromGen := ""
			if migrated[id] {
				if pg, ok := c.prevGen[id]; ok {
					fromGen = pg.String()
				}
			}
			o.RecordPlacement(int64(id), string(j.User), gen.String(), j.Gang, ds, migrated[id], fromGen)
		}
	}

	// Build per-agent plans.
	o.PhaseStart(obs.PhaseDispatch)
	plans := make(map[int]*comm.RoundPlan)
	genOf := make(map[job.ID]gpu.Generation)
	gangOf := make(map[job.ID]int)
	baseDone := make(map[job.ID]float64)
	// shardFrac[id][agent] is the fraction of the job's gang that
	// runs on that agent's server, used to weight the shard's
	// reported useful seconds when merging (each shard spans the same
	// wall quantum, so summing unweighted would multiply a gang's
	// useful time by its server count).
	shardFrac := make(map[job.ID]map[string]float64)
	for id, devs := range res.Assignment {
		j := c.active[id]
		gen := c.cluster.Device(devs[0]).Gen
		genOf[id] = gen
		gangOf[id] = j.Gang
		baseDone[id] = j.DoneMB()
		var overhead simclock.Duration
		switch {
		case migrated[id]:
			overhead = c.cfg.Costs.MigrationCost(j.Perf)
			j.NoteMigration()
		case !j.RanLastQuantum():
			overhead = c.cfg.Costs.ResumeCost()
		}
		// Group the job's devices by server; each agent gets its local
		// slice. Multi-server gangs run at the full rate split across
		// agents proportional to local GPUs (the span penalty is
		// folded into overhead here for simplicity).
		byServer := make(map[gpu.ServerID][]int)
		for _, d := range devs {
			dev := c.cluster.Device(d)
			srv := c.cluster.Server(dev.Server)
			local := 0
			for li, sd := range srv.Devices {
				if sd == d {
					local = li
				}
			}
			byServer[dev.Server] = append(byServer[dev.Server], local)
		}
		gangRate := j.GangRate(gen)
		for sid, locals := range byServer {
			ai := c.serverOf[sid]
			plan := plans[ai]
			if plan == nil {
				plan = &comm.RoundPlan{Round: round, Quantum: c.cfg.Quantum, Trace: ctrace, Span: croot}
				plans[ai] = plan
			}
			frac := float64(len(locals)) / float64(len(devs))
			if shardFrac[id] == nil {
				shardFrac[id] = make(map[string]float64, 1)
			}
			shardFrac[id][c.agents[ai].name] = frac
			if c.cfg.LeaseRounds > 0 {
				// Retain what this agent was asked to run so a report
				// arriving after the collect deadline can still be
				// verified and charged (see reconcileLate).
				name := c.agents[ai].name
				if c.plannedWin[round] == nil {
					c.plannedWin[round] = make(map[string]map[job.ID]plannedEntry)
				}
				if c.plannedWin[round][name] == nil {
					c.plannedWin[round][name] = make(map[job.ID]plannedEntry)
				}
				c.plannedWin[round][name][id] = plannedEntry{gen: gen, gang: j.Gang, frac: frac}
			}
			plan.Jobs = append(plan.Jobs, comm.JobAssignment{
				JobID: int64(id), User: string(j.User), Model: j.Perf.Model,
				Gang: len(locals), LocalGPUs: locals, Shard: frac,
				DoneMB: j.DoneMB(), TotalMB: j.TotalMB,
				GangRate: gangRate * frac,
				Overhead: overhead,
			})
		}
	}

	// Ship plans and collect reports. A plan that cannot be
	// delivered even after retries means the agent is unreachable
	// right now: rather than aborting the run (or stalling the round
	// on a timeout the agent can never answer), it is charged as a
	// missed report immediately and the round proceeds without it.
	want := make(map[string]bool)
	ais := make([]int, 0, len(plans))
	for ai := range plans {
		ais = append(ais, ai)
	}
	sort.Ints(ais) // deterministic send order (drops/retries reproduce)
	for _, ai := range ais {
		plan := plans[ai]
		name := c.agents[ai].name
		plan.Epoch = c.epoch
		plan.Lease = c.cfg.LeaseRounds
		plan.AckRound = c.appliedRound[name]
		if err := c.retry.Send(c.tr, name, comm.Envelope{From: c.tr.Name(), Msg: *plan}); err != nil {
			if c.cfg.StrictReports {
				return fmt.Errorf("distrib: round %d: plan for %q undeliverable: %w", round, name, err)
			}
			o.NoteProtocol("plan_send_failed")
			c.noteMiss(name)
			continue
		}
		o.NoteProtocol("plan_sent")
		want[name] = true
	}
	if c.timeouts > c.cfg.MaxAgentTimeouts {
		return fmt.Errorf("distrib: %d missed agent reports, giving up", c.timeouts)
	}
	if c.cfg.LeaseRounds > 0 {
		// Probe degraded agents that got no assignment: an empty plan
		// paces a cut-off agent's protocol (ack, lease bookkeeping) and
		// gives a healed report path something to answer, so recovery
		// does not depend on the agent still hosting work. Probes are
		// best-effort: no reply expected, failures charge nothing.
		for i, a := range c.agents {
			if c.missed[a.name] == 0 || plans[i] != nil {
				continue
			}
			probe := comm.RoundPlan{
				Round: round, Quantum: c.cfg.Quantum,
				Epoch: c.epoch, Lease: c.cfg.LeaseRounds, AckRound: c.appliedRound[a.name],
			}
			if err := c.retry.Send(c.tr, a.name, comm.Envelope{From: c.tr.Name(), Msg: probe}); err != nil {
				o.NoteProtocol("probe_send_failed")
				continue
			}
			o.NoteProtocol("probe_sent")
		}
		// The reconciliation window slides: plans and applied-round
		// records older than the lease can never be charged again.
		floor := round - 1 - c.cfg.LeaseRounds
		old := make([]int, 0, len(c.plannedWin))
		for r := range c.plannedWin {
			if r <= floor {
				old = append(old, r)
			}
		}
		sort.Ints(old)
		for _, r := range old {
			delete(c.plannedWin, r)
		}
		for _, a := range c.agents {
			rounds := make([]int, 0, len(c.appliedSet[a.name]))
			for r := range c.appliedSet[a.name] {
				if r <= floor {
					rounds = append(rounds, r)
				}
			}
			sort.Ints(rounds)
			for _, r := range rounds {
				delete(c.appliedSet[a.name], r)
			}
		}
	}
	o.PhaseEnd(obs.PhaseDispatch)
	o.PhaseStart(obs.PhaseCollect)
	progress := make(map[job.ID]comm.JobProgress)
	//gflint:ignore wallclock straggler-cutoff deadline on a real transport, not simulated time
	deadline := time.After(c.collectDeadline())
	for len(want) > 0 {
		select {
		case env, ok := <-c.tr.Recv():
			if !ok {
				return fmt.Errorf("distrib: transport closed mid-round")
			}
			if !c.accept(env) {
				continue
			}
			if reg, isReg := env.Msg.(comm.Register); isReg {
				// A crashed agent restarting mid-round; reconcile it
				// now so its server is schedulable next round.
				c.handleRejoin(reg)
				continue
			}
			rep, isRep := env.Msg.(comm.RoundReport)
			if !isRep || c.fenced(rep) {
				continue
			}
			if rep.Round < round {
				// A straggler's earlier round or a healed agent's
				// backlog: queue for idempotent reconciliation.
				c.lateQ = append(c.lateQ, rep)
				continue
			}
			if rep.Round != round || !want[rep.Agent] {
				// Same-round traffic outside the want set — a probe
				// answer or a replayed copy of a report already
				// accepted. Proof of life, nothing to apply.
				c.noteAlive(rep.Agent)
				continue
			}
			delete(want, rep.Agent)
			c.noteAlive(rep.Agent)
			o.NoteProtocol("report_received")
			if c.cfg.LeaseRounds > 0 {
				// The on-time apply below counts this (agent, round);
				// record that so backlog replays of the same round are
				// never applied again, and the agent's ack advances.
				if c.appliedSet[rep.Agent] == nil {
					c.appliedSet[rep.Agent] = make(map[int]bool)
				}
				c.appliedSet[rep.Agent][round] = true
				if round > c.appliedRound[rep.Agent] {
					c.appliedRound[rep.Agent] = round
				}
			}
			ctr.Inject(rep.Spans)
			for _, p := range rep.Jobs {
				id := job.ID(p.JobID)
				// Weight this shard's useful seconds by its share of
				// the gang so the merged value measures gang-time
				// (frac is 1 for single-server jobs).
				p.UsedSecs *= shardFrac[id][rep.Agent]
				prev, seen := progress[id]
				if !seen {
					progress[id] = p
					continue
				}
				// Multi-server gang: each shard reports progress at
				// its fraction of the gang rate over the same base, so
				// increments add (and the gang finishes when the
				// summed progress reaches the total).
				prev.DoneMB += p.DoneMB - baseDone[id]
				if prev.DoneMB >= c.active[id].TotalMB-1e-6 {
					prev.DoneMB = c.active[id].TotalMB
					prev.Finished = true
				}
				prev.UsedSecs += p.UsedSecs
				progress[id] = prev
			}
		case <-deadline:
			if c.cfg.StrictReports {
				return fmt.Errorf("distrib: round %d: %d agents did not report", round, len(want))
			}
			// Straggler cutoff: the round proceeds without the late
			// agents. Their jobs are charged as misses now; with
			// leases their reports reconcile idempotently when they
			// arrive.
			names := make([]string, 0, len(want))
			for name := range want {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				o.NoteProtocol("report_timeout")
				c.noteMiss(name)
			}
			if c.timeouts > c.cfg.MaxAgentTimeouts {
				return fmt.Errorf("distrib: %d missed agent reports, giving up", c.timeouts)
			}
			want = map[string]bool{}
		}
	}

	o.PhaseEnd(obs.PhaseCollect)
	// Backlog that rode in with this round's reports reconciles before
	// apply: an agent whose round-r report was delayed sends rounds
	// r and r+1 together, and r must be charged first so r+1's apply
	// sees monotone progress and both rounds count exactly once.
	c.reconcileLate(round)

	// Apply reports, exactly as the paper's central scheduler updates
	// its view from server heartbeats.
	o.PhaseStart(obs.PhaseApply)
	rep := &core.ExecReport{Ran: make(map[job.ID]core.RanInfo)}
	ranThisRound := make(map[job.ID]bool)
	// Sorted order keeps the per-user usage sums and the profiler's
	// noise-sample consumption identical across runs of one seed.
	for _, id := range job.SortedIDs(progress) {
		p := progress[id]
		j := c.active[id]
		if j == nil {
			continue
		}
		gen := genOf[id]
		gang := float64(gangOf[id])
		if c.cfg.LeaseRounds > 0 && p.DoneMB < j.DoneMB() {
			// A reconciled late report already advanced this job past
			// the reported checkpoint (the plan was built from a stale
			// base). The round still ran and is still charged; progress
			// just never moves backwards.
			p.DoneMB = j.DoneMB()
		}
		j.ApplyReport(p.DoneMB, gen, gang*p.UsedSecs, p.Finished, c.now.Add(c.cfg.Quantum))
		c.usage[j.User] += gang * c.cfg.Quantum
		c.lastApplied[id] = round
		ranThisRound[id] = true
		rep.Ran[id] = core.RanInfo{
			User: j.User, Gen: gen, Gang: gangOf[id],
			OccupiedSecs: c.cfg.Quantum, UsefulSecs: p.UsedSecs,
			Migrated: migrated[id], Finished: p.Finished,
		}
		if !p.Finished {
			c.prof.Observe(j, gen)
		}
	}
	rep.Unplaced = res.Unplaced
	c.policy.Executed(rep)

	newPrev := placement.Assignment{}
	for _, id := range job.SortedIDs(res.Assignment) {
		devs := res.Assignment[id]
		j := c.active[id]
		if j == nil {
			continue
		}
		if j.Finished() {
			c.finishJob(id, j)
			continue
		}
		newPrev[id] = devs
		c.prevGen[id] = genOf[id]
	}
	for id, j := range c.active {
		if j.State() == job.Running && !ranThisRound[id] {
			j.SetRunning(false)
		}
		if !j.Finished() && ranThisRound[id] && j.State() != job.Running {
			j.SetRunning(true)
		}
		j.NoteQuantum(ranThisRound[id])
	}
	c.prev = newPrev
	o.PhaseEnd(obs.PhaseApply)
	c.publishShares()
	o.SetEpoch(c.epoch)
	deg := 0
	if c.cfg.LeaseRounds > 0 {
		thr := c.downThreshold()
		for _, a := range c.agents {
			if m := c.missed[a.name]; m > 0 && m < thr {
				deg++
			}
		}
	}
	o.SetDegradedAgents(deg)
	o.EndRound(len(c.active), len(c.pending))
	return nil
}

// publishShares exports per-user usage and fair-share fractions to
// the observer's gauges. No-op when uninstrumented.
func (c *Central) publishShares() {
	if c.cfg.Obs == nil {
		return
	}
	var totalUse, totalTickets float64
	for _, u := range job.SortedUsers(c.usage) {
		totalUse += c.usage[u]
	}
	for _, u := range job.SortedUsers(c.cfg.Tickets) {
		totalTickets += c.cfg.Tickets[u]
	}
	for _, user := range job.SortedUsers(c.cfg.Tickets) {
		useFrac := 0.0
		if totalUse > 0 {
			useFrac = c.usage[user] / totalUse
		}
		fairFrac := 0.0
		if totalTickets > 0 {
			fairFrac = c.cfg.Tickets[user] / totalTickets
		}
		c.cfg.Obs.SetShare(string(user), useFrac, fairFrac)
	}
}
