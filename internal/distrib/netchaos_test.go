package distrib

import (
	"testing"

	"repro/internal/netchaos"
	"repro/internal/obs"
)

// The partition-tolerance acceptance run: the full network fault
// matrix — duplication, reordering, corruption, a dropped plan, a
// delayed straggler report, a one-way partition, a full partition,
// and a central crash/restore mid-partition — on a fixed seed must
// leave per-user usage byte-identical to the undisturbed baseline.
func TestNetChaosMatrix(t *testing.T) {
	ob := obs.New()
	cfg := NetChaosConfig(911, t.TempDir())
	cfg.Obs = ob
	sum, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, faulted := sum.Digests()
	if base != faulted {
		t.Errorf("usage digest diverged:\nbaseline %s %v\nfaulted  %s %v",
			base, sum.Baseline.UsageByUser, faulted, sum.Faulted.UsageByUser)
	}
	// Every scripted fault kind actually fired.
	for _, k := range []netchaos.Kind{
		netchaos.Drop, netchaos.Dup, netchaos.Reorder, netchaos.Delay,
		netchaos.Corrupt, netchaos.OneWay, netchaos.Partition,
	} {
		if sum.NetStats[k] == 0 {
			t.Errorf("fault %q never fired: %v", k, sum.NetStats)
		}
	}
	// Corruption is always detected (by either side's checksum) and
	// never applied: one detection per injected corruption.
	if det, inj := ob.ProtocolEvents("corrupt_detected"), ob.NetFaults("corrupt"); det != inj {
		t.Errorf("corrupt: injected %v, detected %v", inj, det)
	}
	// Duplicate deliveries were dropped by dedup, the dead epoch's
	// straggler was fenced after the restore, and degraded-mode
	// backlogs reconciled on heal.
	for _, ev := range []string{"dup_dropped", "fence_reject", "late_report_applied", "partition_heal"} {
		if ob.ProtocolEvents(ev) == 0 {
			t.Errorf("protocol event %q never happened", ev)
		}
	}
	// The restored central runs one epoch ahead of the crashed one.
	if got := ob.Epoch(); got != 2 {
		t.Errorf("epoch gauge = %v, want 2 after one restore", got)
	}
	t.Logf("events: %v; net: %v; digest %s", sum.Events, sum.NetStats, faulted)
}

// Same seed, same schedule: the matrix must reproduce its outcome
// exactly (hash-coin determinism regardless of goroutine interleaving).
func TestNetChaosDeterministic(t *testing.T) {
	run := func() (string, map[netchaos.Kind]int) {
		sum, err := RunChaos(NetChaosConfig(911, t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		_, d := sum.Digests()
		return d, sum.NetStats
	}
	d1, n1 := run()
	d2, n2 := run()
	if d1 != d2 {
		t.Errorf("digest not reproducible: %s vs %s", d1, d2)
	}
	if len(n1) != len(n2) {
		t.Fatalf("fault stats not reproducible: %v vs %v", n1, n2)
	}
	for k, v := range n1 {
		if n2[k] != v {
			t.Errorf("fault %q fired %d then %d times", k, v, n2[k])
		}
	}
}
