package distrib

import (
	"strings"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TestCentralObservability runs an instrumented end-to-end hub
// deployment and checks the observer saw the protocol: rounds,
// per-phase timings including dispatch/collect/apply, plan/report
// counters, explained placements, and share gauges in /metrics form.
func TestCentralObservability(t *testing.T) {
	hub := comm.NewHub()
	central, err := hub.Attach("central")
	if err != nil {
		t.Fatal(err)
	}
	waits := startAgents(t, hub, []gpu.Generation{gpu.K80, gpu.V100}, 4)

	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("alice", zoo.MustGet("lstm"), 4, 1, 0.5)...)
	specs = append(specs, workload.BatchJobs("bob", zoo.MustGet("gru"), 4, 1, 0.5)...)
	specs, _ = workload.AssignIDs(specs)

	o := obs.New()
	c, err := NewCentral(central, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{
		Specs: specs, Quantum: 360, Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range waits {
		<-w
	}

	snap := o.Snapshot()
	if int(snap.Rounds) != sum.Rounds {
		t.Errorf("observer rounds %v != summary rounds %d", snap.Rounds, sum.Rounds)
	}
	for _, p := range []obs.Phase{obs.PhaseDecide, obs.PhasePlacement,
		obs.PhaseDispatch, obs.PhaseCollect, obs.PhaseApply} {
		if snap.PhaseTotals[string(p)] <= 0 {
			t.Errorf("phase %s saw no time: %v", p, snap.PhaseTotals)
		}
	}
	if len(snap.Decisions) == 0 {
		t.Error("no placements explained")
	}
	for _, d := range snap.Decisions {
		if d.User == "" || d.Gen == "" || len(d.Devices) == 0 {
			t.Errorf("incomplete decision: %+v", d)
		}
	}

	var sb strings.Builder
	if err := o.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"gf_protocol_events_total{event=\"plan_sent\"}",
		"gf_protocol_events_total{event=\"report_received\"}",
		"gf_protocol_events_total{event=\"register_received\"}",
		"gf_user_usage_fraction{user=\"alice\"}",
		"gf_user_fair_fraction{user=\"bob\"}",
		"gf_round_phase_seconds_bucket",
		"gf_jobs_finished_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestAgentObservability checks the agent-side protocol counters.
func TestAgentObservability(t *testing.T) {
	hub := comm.NewHub()
	central, err := hub.Attach("central")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := hub.Attach("agent-0")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent(tr, "central", gpu.K80, 4)
	if err != nil {
		t.Fatal(err)
	}
	ao := obs.New()
	a.SetObserver(ao)
	done := make(chan error, 1)
	go func() { done <- a.Run() }()

	specs, _ := workload.AssignIDs(workload.BatchJobs("u", zoo.MustGet("lstm"), 2, 1, 0.5))
	c, err := NewCentral(central, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{
		Specs: specs, Quantum: 360,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(50); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := ao.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"gf_protocol_events_total{event=\"register_sent\"} 1",
		"gf_protocol_events_total{event=\"plan_received\"}",
		"gf_protocol_events_total{event=\"report_sent\"}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("agent metrics missing %q", want)
		}
	}
}
