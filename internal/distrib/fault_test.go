package distrib

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Regression: a gang spanning two servers produces two shard reports
// per round. Each shard's UsedSecs must be weighted by its fraction
// of the gang before merging, or useful GPU-seconds double-count and
// exceed the occupied GPU-seconds the user is charged for.
func TestGangSpanningServersNoDoubleCount(t *testing.T) {
	hub := comm.NewHub()
	central, _ := hub.Attach("central")
	// Two 2-GPU servers: a gang-4 job can only run split 2+2.
	waits := startAgents(t, hub, []gpu.Generation{gpu.K80, gpu.K80}, 2)

	specs := workload.BatchJobs("alice", zoo.MustGet("resnet50"), 1, 4, 0.4)
	specs, _ = workload.AssignIDs(specs)
	c, err := NewCentral(central, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{
		Specs: specs, Quantum: 360,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Finished) != 1 {
		t.Fatalf("gang-4 job did not finish across two servers (finished %d)", len(sum.Finished))
	}
	useful := sum.Finished[0].AttainedService()
	occupied := sum.UsageByUser["alice"]
	if useful > occupied+1e-6 {
		t.Errorf("useful gang GPU-seconds %v exceed occupied %v: shard double-count", useful, occupied)
	}
	if useful <= 0 {
		t.Error("no useful service recorded")
	}
	for _, w := range waits {
		<-w
	}
}

// Duplicate Register messages (an agent retrying because an ack was
// slow) must not corrupt the inventory: a matching duplicate is
// idempotent, a mismatched one is rejected with a reason.
func TestDuplicateRegistrationIdempotent(t *testing.T) {
	hub := comm.NewHub()
	central, _ := hub.Attach("central")
	waits := startAgents(t, hub, []gpu.Generation{gpu.K80}, 2) // agent-0

	dup, err := hub.Attach("dup")
	if err != nil {
		t.Fatal(err)
	}
	reg := comm.Envelope{From: "dup", Msg: comm.Register{Agent: "dup", Gen: int(gpu.K80), GPUs: 2}}
	for i := 0; i < 3; i++ { // original + two retries
		if err := dup.Send("central", reg); err != nil {
			t.Fatal(err)
		}
	}
	// A mismatched "duplicate" claiming different inventory.
	if err := dup.Send("central", comm.Envelope{From: "dup",
		Msg: comm.Register{Agent: "dup", Gen: int(gpu.V100), GPUs: 8}}); err != nil {
		t.Fatal(err)
	}

	specs := workload.BatchJobs("u", zoo.MustGet("lstm"), 2, 1, 0.3)
	specs, _ = workload.AssignIDs(specs)
	o := obs.New()
	c, err := NewCentral(central, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{
		Specs: specs, Quantum: 360, Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if len(c.agents) != 2 {
		t.Fatalf("inventory has %d agents after duplicate registrations, want 2", len(c.agents))
	}
	if c.cluster.NumDevices() != 4 {
		t.Fatalf("cluster has %d GPUs, want 4 (2+2): duplicates corrupted inventory", c.cluster.NumDevices())
	}

	// The mismatched attempt got a rejection ack with a reason; the
	// matching duplicates got the one OK ack everyone gets.
	sawReject, sawOK := false, false
	timeout := time.After(2 * time.Second)
	for !sawReject || !sawOK {
		select {
		case env := <-dup.Recv():
			if ack, ok := env.Msg.(comm.RegisterAck); ok {
				if ack.OK {
					sawOK = true
				} else if strings.Contains(ack.Reason, "already registered") {
					sawReject = true
				}
			}
		case <-timeout:
			t.Fatalf("acks missing: reject=%v ok=%v", sawReject, sawOK)
		}
	}

	var sb strings.Builder
	_ = o.Registry().WritePrometheus(&sb) // strings.Builder writes cannot fail
	if !strings.Contains(sb.String(), `gf_protocol_events_total{event="register_duplicate"} 2`) {
		t.Error("duplicate registrations not counted")
	}

	// The run must still work; the phantom inventory would have made
	// placement address GPUs that do not exist.
	go func() {
		for env := range dup.Recv() { // serve dup's shard like a real agent
			if plan, ok := env.Msg.(comm.RoundPlan); ok {
				a := &Agent{tr: dup, central: "central"}
				_ = dup.Send("central", comm.Envelope{From: "dup", Msg: a.execute(plan)})
			}
			if _, ok := env.Msg.(comm.Shutdown); ok {
				return
			}
		}
	}()
	sum, err := c.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Unfinished != 0 {
		t.Errorf("%d jobs unfinished after duplicate registrations", sum.Unfinished)
	}
	for _, w := range waits {
		<-w
	}
}

// Summary.Rounds counts executed scheduling rounds only: quanta that
// pass while waiting for the first arrival must advance virtual time
// but not the round counter.
func TestRoundsExcludesIdleQuanta(t *testing.T) {
	hub := comm.NewHub()
	central, _ := hub.Attach("central")
	startAgents(t, hub, []gpu.Generation{gpu.K80}, 4)

	specs := workload.BatchJobs("u", zoo.MustGet("lstm"), 2, 1, 0.3)
	for i := range specs {
		specs[i].Arrival = 3 * 360 // three idle quanta before any work exists
	}
	specs, _ = workload.AssignIDs(specs)
	c, err := NewCentral(central, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{
		Specs: specs, Quantum: 360,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Unfinished != 0 {
		t.Fatalf("%d unfinished", sum.Unfinished)
	}
	elapsed := int(sum.VirtualSeconds / 360)
	if sum.Rounds != elapsed-3 {
		t.Errorf("Rounds = %d with %d quanta elapsed and 3 idle; want %d",
			sum.Rounds, elapsed, elapsed-3)
	}
	// The old derivation (now / quantum) would have returned elapsed.
	if sum.Rounds >= elapsed {
		t.Errorf("Rounds %d counts idle quanta (elapsed %d)", sum.Rounds, elapsed)
	}
}

// A spec that fails to build at admission is a hard error, not a
// silently dropped job.
func TestAdmitFailurePropagates(t *testing.T) {
	hub := comm.NewHub()
	central, _ := hub.Attach("central")
	startAgents(t, hub, []gpu.Generation{gpu.K80}, 4)

	specs := workload.BatchJobs("u", zoo.MustGet("lstm"), 2, 1, 0.3)
	specs, _ = workload.AssignIDs(specs)
	c, err := NewCentral(central, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{
		Specs: specs, Quantum: 360,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Corrupt a pending spec the way a bad producer would (zero work):
	// admit must surface the job.New error instead of losing the job.
	c.pending[1].TotalMB = -1
	if _, err := c.Run(10); err == nil || !strings.Contains(err.Error(), "admitting job") {
		t.Fatalf("corrupt pending spec not surfaced: %v", err)
	}
}

// Rejoin reconciliation: a known agent announcing its original
// inventory is welcomed back and its failure counter reset; unknown
// agents and changed inventories are rejected with a reason.
func TestRejoinReconciliation(t *testing.T) {
	hub := comm.NewHub()
	central, _ := hub.Attach("central")
	agentTr, _ := hub.Attach("agent-0")
	stranger, _ := hub.Attach("stranger")

	if err := agentTr.Send("central", comm.Envelope{From: "agent-0",
		Msg: comm.Register{Agent: "agent-0", Gen: int(gpu.K80), GPUs: 4}}); err != nil {
		t.Fatal(err)
	}
	specs := workload.BatchJobs("u", zoo.MustGet("lstm"), 1, 1, 0.3)
	specs, _ = workload.AssignIDs(specs)
	o := obs.New()
	c, err := NewCentral(central, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{
		Specs: specs, Quantum: 360, Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	drainAcks(t, agentTr) // registration ack

	c.missed["agent-0"] = suspectThreshold // the agent went silent, server marked down
	if len(c.downServers()) != 1 {
		t.Fatal("suspected agent's server not marked down")
	}

	// Matching rejoin: accepted, failure counter reset, server back up.
	if !c.handleRejoin(comm.Register{Agent: "agent-0", Gen: int(gpu.K80), GPUs: 4}) {
		t.Error("matching rejoin rejected")
	}
	if c.missed["agent-0"] != 0 || len(c.downServers()) != 0 {
		t.Errorf("rejoin did not reset failure state: missed=%d down=%d",
			c.missed["agent-0"], len(c.downServers()))
	}
	if ack := recvAck(t, agentTr); !ack.OK {
		t.Errorf("matching rejoin acked with %+v", ack)
	}

	// Same name, different inventory: rejected.
	if c.handleRejoin(comm.Register{Agent: "agent-0", Gen: int(gpu.K80), GPUs: 8}) {
		t.Error("inventory-changing rejoin accepted")
	}
	if ack := recvAck(t, agentTr); ack.OK || !strings.Contains(ack.Reason, "inventory mismatch") {
		t.Errorf("mismatch rejoin acked with %+v", ack)
	}

	// Unknown agent: rejected (inventory is fixed after startup).
	if c.handleRejoin(comm.Register{Agent: "stranger", Gen: int(gpu.K80), GPUs: 4}) {
		t.Error("unknown agent's rejoin accepted")
	}
	if ack := recvAck(t, stranger); ack.OK || !strings.Contains(ack.Reason, "unknown agent") {
		t.Errorf("stranger rejoin acked with %+v", ack)
	}

	var sb strings.Builder
	_ = o.Registry().WritePrometheus(&sb) // strings.Builder writes cannot fail
	for _, want := range []string{
		`gf_protocol_events_total{event="rejoin_accepted"} 1`,
		`gf_protocol_events_total{event="rejoin_rejected"} 2`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

func recvAck(t *testing.T, tr comm.Transport) comm.RegisterAck {
	t.Helper()
	for {
		select {
		case env := <-tr.Recv():
			if ack, ok := env.Msg.(comm.RegisterAck); ok {
				return ack
			}
		case <-time.After(2 * time.Second):
			t.Fatal("no ack arrived")
		}
	}
}

func drainAcks(t *testing.T, tr comm.Transport) {
	t.Helper()
	for {
		select {
		case <-tr.Recv():
		case <-time.After(50 * time.Millisecond):
			return
		}
	}
}

// Snapshot/restore fidelity: a central rebuilt from its snapshot
// carries identical state (its own snapshot is byte-identical) and
// resumes to the same per-user usage a never-crashed run produces.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	run := func(crashAfter int, dir string) map[job.UserID]float64 {
		hub := comm.NewHub()
		central, _ := hub.Attach("central")
		waits := startAgents(t, hub, []gpu.Generation{gpu.K80, gpu.K80}, 2)
		var specs []job.Spec
		specs = append(specs, workload.BatchJobs("alice", zoo.MustGet("lstm"), 2, 1, 0.45)...)
		specs = append(specs, workload.BatchJobs("bob", zoo.MustGet("gru"), 2, 1, 0.45)...)
		specs, _ = workload.AssignIDs(specs)
		cfg := CentralConfig{Specs: specs, Quantum: 360, SnapshotDir: dir}
		c, err := NewCentral(central, core.MustNewFairPolicy(core.FairConfig{}), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.WaitForAgents(2, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		if crashAfter > 0 {
			if _, err := c.Steps(crashAfter); err != nil {
				t.Fatal(err)
			}
			st, err := LoadSnapshot(dir)
			if err != nil {
				t.Fatal(err)
			}
			if st.SavedRound != crashAfter {
				t.Fatalf("snapshot at round %d, want %d", st.SavedRound, crashAfter)
			}
			// The old coordinator object is abandoned ("crashed");
			// the replacement resumes on the surviving transport.
			c, err = RestoreCentral(central, core.MustNewFairPolicy(core.FairConfig{}), cfg, st)
			if err != nil {
				t.Fatal(err)
			}
			// Structural fidelity: re-snapshotting the restored
			// central reproduces the file it was built from, except
			// that the restored incarnation runs one epoch ahead of
			// the snapshot's writer (that is the fencing contract).
			st.Epoch++
			a, _ := json.Marshal(st)
			b, _ := json.Marshal(c.Snapshot())
			if string(a) != string(b) {
				t.Errorf("restored state differs from snapshot:\n%s\nvs\n%s", a, b)
			}
		}
		sum, err := c.Run(60)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Unfinished != 0 {
			t.Fatalf("%d unfinished (crashAfter=%d)", sum.Unfinished, crashAfter)
		}
		for _, w := range waits {
			if err := <-w; err != nil {
				t.Errorf("agent: %v", err)
			}
		}
		return sum.UsageByUser
	}

	baseline := run(0, t.TempDir())
	restored := run(2, t.TempDir())
	for u, want := range baseline {
		if got := restored[u]; got != want {
			t.Errorf("user %s usage after restore %v, want %v (baseline)", u, got, want)
		}
	}
}

// Failure-detector lifecycle over the wire: an agent that answers
// nothing is suspected after two missed reports and its jobs migrate;
// when it comes back and re-registers it is schedulable again and the
// run finishes with its help.
func TestFailureDetectorSuspectRecover(t *testing.T) {
	hub := comm.NewHub()
	central, _ := hub.Attach("central")
	startAgents(t, hub, []gpu.Generation{gpu.K80}, 4) // healthy agent-0

	// agent-z registers, then ignores everything for two rounds.
	zTr, err := hub.Attach("agent-z")
	if err != nil {
		t.Fatal(err)
	}
	if err := zTr.Send("central", comm.Envelope{From: "agent-z",
		Msg: comm.Register{Agent: "agent-z", Gen: int(gpu.K80), GPUs: 4}}); err != nil {
		t.Fatal(err)
	}

	specs := workload.BatchJobs("u", zoo.MustGet("lstm"), 6, 1, 0.5)
	specs, _ = workload.AssignIDs(specs)
	o := obs.New()
	c, err := NewCentral(central, core.MustNewFairPolicy(core.FairConfig{}), CentralConfig{
		Specs:         specs,
		Quantum:       360,
		ReportTimeout: 150 * time.Millisecond,
		Obs:           o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Swallow plans until suspected, then come back as a real agent on
	// the same transport — its Register is a rejoin.
	go func() {
		dropped := 0
		for env := range zTr.Recv() {
			if _, isPlan := env.Msg.(comm.RoundPlan); !isPlan {
				continue
			}
			dropped++
			if dropped < suspectThreshold {
				continue
			}
			a, err := NewAgent(zTr, "central", gpu.K80, 4)
			if err != nil {
				panic(err)
			}
			_ = a.Run() // exits on central crash; the rejoin below is the assertion
			return
		}
	}()

	sum, err := c.Run(80)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Unfinished != 0 {
		t.Fatalf("%d unfinished with a recovering agent", sum.Unfinished)
	}
	if sum.MissedReports < suspectThreshold {
		t.Errorf("only %d missed reports; the agent was never suspected", sum.MissedReports)
	}
	var sb strings.Builder
	_ = o.Registry().WritePrometheus(&sb) // strings.Builder writes cannot fail
	if !strings.Contains(sb.String(), `gf_protocol_events_total{event="rejoin_accepted"}`) {
		t.Error("recovered agent's re-registration was not reconciled as a rejoin")
	}
}
