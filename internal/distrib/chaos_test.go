package distrib

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// The acceptance run: one agent killed mid-run and rejoining, the
// central crashed and restored from a snapshot, plans dropped and
// reports delayed — and per-user usage must still come out
// byte-identical to the undisturbed baseline.
func TestChaosKillRejoinSnapshotRestore(t *testing.T) {
	ob := obs.New()
	sum, err := RunChaos(ChaosConfig{
		Seed:               42,
		DropProb:           0.3,
		MaxDrops:           2,
		MaxDelay:           5 * time.Millisecond,
		KillAtRound:        1,
		RestartAfterRounds: 2,
		SnapshotAtRound:    2,
		SnapshotDir:        t.TempDir(),
		Obs:                ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Baseline.Unfinished != 0 || sum.Faulted.Unfinished != 0 {
		t.Fatalf("unfinished jobs: baseline %d, faulted %d",
			sum.Baseline.Unfinished, sum.Faulted.Unfinished)
	}
	if !sum.UsageIdentical() {
		t.Errorf("usage diverged:\nbaseline %v\nfaulted  %v",
			sum.Baseline.UsageByUser, sum.Faulted.UsageByUser)
	}
	var sawKill, sawRejoin, sawRestore bool
	for _, e := range sum.Events {
		switch {
		case strings.Contains(e, "killed"):
			sawKill = true
		case strings.Contains(e, "rejoin"):
			sawRejoin = true
		case strings.Contains(e, "restored from snapshot"):
			sawRestore = true
		}
	}
	if !sawKill || !sawRejoin || !sawRestore {
		t.Errorf("missing chaos events (kill=%v rejoin=%v restore=%v): %v",
			sawKill, sawRejoin, sawRestore, sum.Events)
	}
	t.Logf("events: %v; dropped plans: %d", sum.Events, sum.DroppedPlans)
}

// Same seed twice must produce the same fault script and outcome.
func TestChaosDeterministic(t *testing.T) {
	cfg := ChaosConfig{
		Seed:               7,
		DropProb:           0.5,
		MaxDrops:           2,
		KillAtRound:        2,
		RestartAfterRounds: 1,
	}
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.DroppedPlans != b.DroppedPlans {
		t.Errorf("dropped plans differ across identical seeds: %d vs %d",
			a.DroppedPlans, b.DroppedPlans)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event logs differ: %v vs %v", a.Events, b.Events)
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Errorf("event %d differs: %q vs %q", i, a.Events[i], b.Events[i])
		}
	}
	for u, s := range a.Faulted.UsageByUser {
		if b.Faulted.UsageByUser[u] != s {
			t.Errorf("usage for %s differs across identical seeds", u)
		}
	}
}

// Drops alone: a swallowed round plan stalls that agent's jobs for a
// round but the on-the-wire checkpoints mean no progress or usage is
// ever double-counted.
func TestChaosPlanDropsOnly(t *testing.T) {
	sum, err := RunChaos(ChaosConfig{
		Seed:     3,
		DropProb: 1.0, // drop the first MaxDrops plans outright
		MaxDrops: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.DroppedPlans == 0 {
		t.Fatal("chaos layer dropped nothing despite DropProb=1")
	}
	if !sum.UsageIdentical() {
		t.Errorf("usage diverged after %d dropped plans:\nbaseline %v\nfaulted  %v",
			sum.DroppedPlans, sum.Baseline.UsageByUser, sum.Faulted.UsageByUser)
	}
	// Dropped plans cost wall-clock rounds, never accounting.
	if sum.Faulted.Rounds < sum.Baseline.Rounds {
		t.Errorf("faulted run took fewer rounds (%d) than baseline (%d)",
			sum.Faulted.Rounds, sum.Baseline.Rounds)
	}
}
