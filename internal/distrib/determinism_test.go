package distrib

import (
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/workload"
)

// TestDistributedCrossRunDeterminism runs the same distributed
// workload twice over fresh hubs and requires bit-identical per-user
// usage and finish times. The apply loop consumes agent reports from a
// map whose insertion order follows wire arrival, so this is the
// regression harness for the sorted-ID iteration there (usage sums,
// profiler observations) and in publishShares/RecordPlacement.
func TestDistributedCrossRunDeterminism(t *testing.T) {
	run := func() *Summary {
		hub := comm.NewHub()
		central, err := hub.Attach("central")
		if err != nil {
			t.Fatal(err)
		}
		waits := startAgents(t, hub, []gpu.Generation{gpu.K80, gpu.V100}, 4)

		var specs []job.Spec
		specs = append(specs, workload.BatchJobs("alice", zoo.MustGet("lstm"), 4, 1, 0.5)...)
		specs = append(specs, workload.BatchJobs("bob", zoo.MustGet("gru"), 4, 1, 0.5)...)
		specs, _ = workload.AssignIDs(specs)

		c, err := NewCentral(central, core.MustNewFairPolicy(core.FairConfig{EnableTrading: true}),
			CentralConfig{Specs: specs, Quantum: 360})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.WaitForAgents(2, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		sum, err := c.Run(100)
		if err != nil {
			t.Fatal(err)
		}
		c.ShutdownAgents()
		for _, w := range waits {
			select {
			case <-w:
			case <-time.After(5 * time.Second):
				t.Fatal("agent did not shut down")
			}
		}
		return sum
	}

	s1, s2 := run(), run()
	if len(s1.Finished) != len(s2.Finished) || s1.Rounds != s2.Rounds {
		t.Fatalf("runs differ: %d/%d finished, %d/%d rounds",
			len(s1.Finished), len(s2.Finished), s1.Rounds, s2.Rounds)
	}
	for u, v := range s1.UsageByUser {
		if s2.UsageByUser[u] != v {
			t.Errorf("usage differs for %s: %v vs %v", u, v, s2.UsageByUser[u])
		}
	}
	for i := range s1.Finished {
		a, b := s1.Finished[i], s2.Finished[i]
		if a.ID != b.ID || a.FinishTime() != b.FinishTime() {
			t.Errorf("finish %d differs: job %d@%v vs job %d@%v",
				i, a.ID, a.FinishTime(), b.ID, b.FinishTime())
		}
	}
}
