package job

import (
	"sort"
	"testing"
)

func TestSortedUsers(t *testing.T) {
	m := map[UserID]int{"carol": 1, "alice": 2, "bob": 3}
	got := SortedUsers(m)
	if len(got) != len(m) || !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("SortedUsers = %v, want all 3 keys ascending", got)
	}
	for _, u := range got {
		if _, ok := m[u]; !ok {
			t.Fatalf("SortedUsers returned foreign key %q", u)
		}
	}
	if out := SortedUsers(map[UserID]struct{}{}); len(out) != 0 {
		t.Fatalf("empty map gave %v", out)
	}
}

func TestSortedIDs(t *testing.T) {
	m := map[ID]string{9: "", 1: "", 5: ""}
	got := SortedIDs(m)
	want := []ID{1, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("SortedIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedIDs = %v, want %v", got, want)
		}
	}
}
