package job

import (
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/simclock"
)

func TestApplyReportProgress(t *testing.T) {
	j := MustNew(specFixture(perfFixture()))
	j.ApplyReport(300, gpu.K80, 150, false, 100)
	if j.DoneMB() != 300 {
		t.Fatalf("DoneMB = %v", j.DoneMB())
	}
	if j.GPUSeconds(gpu.K80) != 150 {
		t.Fatalf("GPUSeconds = %v", j.GPUSeconds(gpu.K80))
	}
	if j.Finished() {
		t.Fatal("finished prematurely")
	}
	j.ApplyReport(1000, gpu.V100, 200, true, 500)
	if !j.Finished() || j.FinishTime() != 500 {
		t.Fatalf("finish state: %v at %v", j.Finished(), j.FinishTime())
	}
	if j.GPUSeconds(gpu.V100) != 200 {
		t.Fatalf("V100 seconds = %v", j.GPUSeconds(gpu.V100))
	}
}

func TestApplyReportClampsAtTotal(t *testing.T) {
	j := MustNew(specFixture(perfFixture()))
	// A report within float slack of TotalMB is accepted and clamped.
	j.ApplyReport(j.TotalMB+1e-7, gpu.K80, 10, false, 50)
	if j.DoneMB() != j.TotalMB {
		t.Fatalf("DoneMB = %v, want clamped to %v", j.DoneMB(), j.TotalMB)
	}
}

func TestApplyReportPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	j := MustNew(specFixture(perfFixture()))
	j.ApplyReport(500, gpu.K80, 10, false, 50)
	mustPanic("regression", func() { j.ApplyReport(100, gpu.K80, 10, false, 60) })
	mustPanic("overflow", func() { j.ApplyReport(5000, gpu.K80, 10, false, 60) })
	mustPanic("negative service", func() { j.ApplyReport(600, gpu.K80, -1, false, 60) })
	j.ApplyReport(1000, gpu.K80, 10, true, 70)
	mustPanic("after done", func() { j.ApplyReport(1000, gpu.K80, 10, true, 80) })
}

func TestApplyReportInvalidGenIgnoredForAccounting(t *testing.T) {
	j := MustNew(specFixture(perfFixture()))
	j.ApplyReport(100, gpu.Generation(77), 40, false, 10)
	if j.DoneMB() != 100 {
		t.Fatalf("progress not applied: %v", j.DoneMB())
	}
	if j.AttainedService() != 0 {
		t.Fatalf("service booked against invalid generation: %v", j.AttainedService())
	}
}

func TestStandaloneTime(t *testing.T) {
	j := MustNew(specFixture(perfFixture())) // total 1000, K80 gang rate 1.8
	if got := j.StandaloneTime(gpu.K80); math.Abs(got-1000/1.8) > 1e-9 {
		t.Fatalf("StandaloneTime = %v", got)
	}
	p := perfFixture()
	p.RatePerGPU[gpu.P40] = 0
	j2 := MustNew(Spec{ID: 5, User: "u", Perf: p, Gang: 1, TotalMB: 10})
	if got := j2.StandaloneTime(gpu.P40); got != simclock.Duration(simclock.Forever) {
		t.Fatalf("unusable generation StandaloneTime = %v", got)
	}
	// StandaloneTime ignores progress (it is the from-zero bound).
	j.Advance(gpu.K80, 100, 0)
	if got := j.StandaloneTime(gpu.K80); math.Abs(got-1000/1.8) > 1e-9 {
		t.Fatalf("StandaloneTime changed with progress: %v", got)
	}
}
