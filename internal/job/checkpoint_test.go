package job

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/gpu"
)

func ckptPerf() *Perf {
	p := &Perf{Model: "m", ScalingEff: 0.9, MemGBPerGPU: 4, CheckpointMB: 100}
	p.RatePerGPU[gpu.K80] = 2
	p.RatePerGPU[gpu.V100] = 5
	return p
}

func TestCheckpointRoundTrip(t *testing.T) {
	j := MustNew(Spec{ID: 7, User: "alice", Perf: ckptPerf(), Gang: 2, TotalMB: 1000, Arrival: 10})
	j.SetRunning(true)
	j.NoteFirstRun(360)
	j.Advance(gpu.K80, 100, 360)
	j.AddOverhead(3)
	j.NoteMigration()
	j.NoteQuantum(true)

	cp := j.Checkpoint()
	// Through JSON, as the snapshot file stores it.
	raw, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var back Checkpoint
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	r, err := FromCheckpoint(back)
	if err != nil {
		t.Fatal(err)
	}
	if r.DoneMB() != j.DoneMB() || r.State() != j.State() ||
		r.AttainedService() != j.AttainedService() ||
		r.OverheadSeconds() != j.OverheadSeconds() ||
		r.Migrations() != j.Migrations() ||
		r.RanLastQuantum() != j.RanLastQuantum() {
		t.Errorf("restored job differs: %+v vs %+v", r, j)
	}
	if qd, ok := r.QueueDelay(); !ok || qd != 350 {
		t.Errorf("queue delay lost: %v %v", qd, ok)
	}
	if !reflect.DeepEqual(r.Checkpoint(), cp) {
		t.Errorf("re-checkpoint differs:\n%+v\n%+v", r.Checkpoint(), cp)
	}
}

func TestCheckpointFinishedJob(t *testing.T) {
	j := MustNew(Spec{ID: 1, User: "u", Perf: ckptPerf(), Gang: 1, TotalMB: 10, Arrival: 0})
	j.Advance(gpu.V100, 1000, 0)
	if !j.Finished() {
		t.Fatal("job should have finished")
	}
	r, err := FromCheckpoint(j.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Finished() || r.FinishTime() != j.FinishTime() || r.JCT() != j.JCT() {
		t.Errorf("finished state lost: %v vs %v", r, j)
	}
}

func TestCheckpointValidation(t *testing.T) {
	base := MustNew(Spec{ID: 1, User: "u", Perf: ckptPerf(), Gang: 1, TotalMB: 10, Arrival: 0}).Checkpoint()
	for name, mut := range map[string]func(*Checkpoint){
		"bad state":     func(c *Checkpoint) { c.State = State(42) },
		"negative done": func(c *Checkpoint) { c.DoneMB = -1 },
		"overdone":      func(c *Checkpoint) { c.DoneMB = 11 },
		"done too soon": func(c *Checkpoint) { c.State = Done; c.DoneMB = 5 },
		"neg service":   func(c *Checkpoint) { c.GPUSecs[0] = -1 },
		"neg overhead":  func(c *Checkpoint) { c.OverheadSecs = -1 },
		"nil perf":      func(c *Checkpoint) { c.Spec.Perf = nil },
	} {
		cp := base
		mut(&cp)
		if _, err := FromCheckpoint(cp); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
