package job

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gpu"
	"repro/internal/simclock"
)

// perfFixture: runs everywhere, 2× faster on V100 than K80.
func perfFixture() *Perf {
	return &Perf{
		Model:        "toy",
		RatePerGPU:   [gpu.NumGenerations]float64{1.0, 1.2, 1.5, 2.0},
		ScalingEff:   0.9,
		MemGBPerGPU:  8,
		CheckpointMB: 400,
	}
}

func specFixture(p *Perf) Spec {
	return Spec{ID: 1, User: "alice", Perf: p, Gang: 2, TotalMB: 1000, Arrival: 0}
}

func TestPerfValidate(t *testing.T) {
	good := perfFixture()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid perf rejected: %v", err)
	}
	bad := []*Perf{
		{Model: "", RatePerGPU: good.RatePerGPU, ScalingEff: 0.9},
		{Model: "x", RatePerGPU: good.RatePerGPU, ScalingEff: 0},
		{Model: "x", RatePerGPU: good.RatePerGPU, ScalingEff: 1.5},
		{Model: "x", ScalingEff: 0.9}, // no generation
		{Model: "x", RatePerGPU: [gpu.NumGenerations]float64{-1, 0, 0, 1}, ScalingEff: 0.9},
		{Model: "x", RatePerGPU: good.RatePerGPU, ScalingEff: 0.9, MemGBPerGPU: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad perf %d accepted", i)
		}
	}
}

func TestFitsOnMemory(t *testing.T) {
	p := perfFixture()
	p.MemGBPerGPU = 20 // only P40 (24 GB) can hold it
	for _, g := range gpu.Generations() {
		want := g == gpu.P40
		if got := p.FitsOn(g); got != want {
			t.Errorf("FitsOn(%v) = %v, want %v", g, got, want)
		}
	}
	if p.FitsOn(gpu.Generation(42)) {
		t.Error("FitsOn(invalid) = true")
	}
}

func TestSpeedup(t *testing.T) {
	p := perfFixture()
	if s := p.Speedup(gpu.V100, gpu.K80); math.Abs(s-2.0) > 1e-12 {
		t.Errorf("Speedup(V100,K80) = %v, want 2", s)
	}
	if s := p.Speedup(gpu.K80, gpu.V100); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("Speedup(K80,V100) = %v, want 0.5", s)
	}
	p2 := perfFixture()
	p2.RatePerGPU[gpu.K80] = 0
	if s := p2.Speedup(gpu.V100, gpu.K80); s != 0 {
		t.Errorf("Speedup with unusable slow gen = %v, want 0", s)
	}
}

func TestSpecValidate(t *testing.T) {
	p := perfFixture()
	good := specFixture(p)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	mut := []func(*Spec){
		func(s *Spec) { s.User = "" },
		func(s *Spec) { s.Perf = nil },
		func(s *Spec) { s.Gang = 0 },
		func(s *Spec) { s.Gang = -2 },
		func(s *Spec) { s.TotalMB = 0 },
		func(s *Spec) { s.Arrival = -1 },
	}
	for i, m := range mut {
		s := specFixture(p)
		m(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGangRate(t *testing.T) {
	p := perfFixture()
	j := MustNew(specFixture(p)) // gang 2, eff 0.9
	want := 1.0 * 2 * 0.9
	if r := j.GangRate(gpu.K80); math.Abs(r-want) > 1e-12 {
		t.Errorf("GangRate(K80) = %v, want %v", r, want)
	}
	j1 := MustNew(Spec{ID: 2, User: "a", Perf: p, Gang: 1, TotalMB: 10})
	if r := j1.GangRate(gpu.K80); math.Abs(r-1.0) > 1e-12 {
		t.Errorf("single-GPU GangRate = %v, want 1 (no scaling loss)", r)
	}
}

func TestAdvanceBasics(t *testing.T) {
	j := MustNew(specFixture(perfFixture())) // rate on K80 = 1.8 mb/s
	used, fin := j.Advance(gpu.K80, 100, 0)
	if fin || used != 100 {
		t.Fatalf("Advance = (%v, %v), want (100, false)", used, fin)
	}
	if math.Abs(j.DoneMB()-180) > 1e-9 {
		t.Fatalf("DoneMB = %v, want 180", j.DoneMB())
	}
	if math.Abs(j.GPUSeconds(gpu.K80)-200) > 1e-9 {
		t.Fatalf("GPUSeconds = %v, want 200 (gang 2 × 100s)", j.GPUSeconds(gpu.K80))
	}
	if math.Abs(j.AttainedService()-200) > 1e-9 {
		t.Fatalf("AttainedService = %v, want 200", j.AttainedService())
	}
}

func TestAdvanceCompletion(t *testing.T) {
	j := MustNew(specFixture(perfFixture())) // total 1000 mb, K80 rate 1.8/s → 555.55s
	now := simclock.Time(50)
	used, fin := j.Advance(gpu.K80, 10000, now)
	if !fin {
		t.Fatal("job did not finish")
	}
	wantUsed := 1000.0 / 1.8
	if math.Abs(used-wantUsed) > 1e-9 {
		t.Fatalf("used = %v, want %v", used, wantUsed)
	}
	if j.DoneMB() != j.TotalMB {
		t.Fatalf("DoneMB = %v, want exactly TotalMB", j.DoneMB())
	}
	if !j.Finished() || j.State() != Done {
		t.Fatal("state not Done")
	}
	if got := j.FinishTime(); math.Abs(float64(got)-(50+wantUsed)) > 1e-9 {
		t.Fatalf("FinishTime = %v", got)
	}
	if math.Abs(j.JCT()-(50+wantUsed)) > 1e-9 {
		t.Fatalf("JCT = %v", j.JCT())
	}
}

func TestAdvancePanics(t *testing.T) {
	j := MustNew(specFixture(perfFixture()))
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("negative dur", func() { j.Advance(gpu.K80, -1, 0) })
	p := perfFixture()
	p.RatePerGPU[gpu.P40] = 0
	j2 := MustNew(Spec{ID: 3, User: "a", Perf: p, Gang: 1, TotalMB: 10})
	mustPanic("unusable generation", func() { j2.Advance(gpu.P40, 1, 0) })
	j.Advance(gpu.K80, 1e9, 0) // finish it
	mustPanic("advance done", func() { j.Advance(gpu.K80, 1, 0) })
	mustPanic("SetRunning done", func() { j.SetRunning(true) })
	j3 := MustNew(specFixture(perfFixture()))
	mustPanic("FinishTime unfinished", func() { j3.FinishTime() })
}

func TestOverheadAndMigrationAccounting(t *testing.T) {
	j := MustNew(specFixture(perfFixture()))
	j.AddOverhead(30)
	j.AddOverhead(12)
	j.NoteMigration()
	if j.OverheadSeconds() != 42 {
		t.Errorf("OverheadSeconds = %v, want 42", j.OverheadSeconds())
	}
	if j.Migrations() != 1 {
		t.Errorf("Migrations = %d, want 1", j.Migrations())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative overhead did not panic")
		}
	}()
	j.AddOverhead(-1)
}

func TestStateTransitionsAndPreemptions(t *testing.T) {
	j := MustNew(specFixture(perfFixture()))
	if j.State() != Runnable {
		t.Fatalf("initial state %v", j.State())
	}
	j.SetRunning(true)
	if j.State() != Running {
		t.Fatalf("state after SetRunning(true) = %v", j.State())
	}
	j.SetRunning(false)
	j.SetRunning(true)
	j.SetRunning(false)
	if j.Preemptions() != 2 {
		t.Errorf("Preemptions = %d, want 2", j.Preemptions())
	}
	// Runnable→Runnable is not a preemption.
	j.SetRunning(false)
	if j.Preemptions() != 2 {
		t.Errorf("Preemptions after no-op = %d, want 2", j.Preemptions())
	}
}

func TestRemainingTime(t *testing.T) {
	j := MustNew(specFixture(perfFixture()))
	if r := j.RemainingTime(gpu.K80); math.Abs(r-1000/1.8) > 1e-9 {
		t.Errorf("RemainingTime = %v", r)
	}
	p := perfFixture()
	p.RatePerGPU[gpu.P100] = 0
	j2 := MustNew(Spec{ID: 9, User: "a", Perf: p, Gang: 1, TotalMB: 10})
	if r := j2.RemainingTime(gpu.P100); !math.IsInf(r, 1) && r != simclock.Duration(simclock.Forever) {
		t.Errorf("RemainingTime on unusable gen = %v, want Forever", r)
	}
}

func TestQuantumNotes(t *testing.T) {
	j := MustNew(specFixture(perfFixture()))
	if j.RanLastQuantum() {
		t.Error("fresh job claims it ran")
	}
	j.NoteQuantum(true)
	if !j.RanLastQuantum() {
		t.Error("NoteQuantum(true) not recorded")
	}
	j.NoteQuantum(false)
	if j.RanLastQuantum() {
		t.Error("NoteQuantum(false) not recorded")
	}
}

// Property: progress conservation — splitting a run into arbitrary
// chunks across generations yields the same total minibatches as the
// sum of rate×time, and never exceeds TotalMB.
func TestPropertyProgressConservation(t *testing.T) {
	p := perfFixture()
	f := func(chunks []uint8, genSel []uint8) bool {
		j := MustNew(Spec{ID: 7, User: "u", Perf: p, Gang: 3, TotalMB: 5000})
		var want float64
		now := simclock.Time(0)
		for i, c := range chunks {
			if j.Finished() {
				break
			}
			g := gpu.K80
			if i < len(genSel) {
				g = gpu.Generation(int(genSel[i]) % gpu.NumGenerations)
			}
			d := simclock.Duration(c)
			used, _ := j.Advance(g, d, now)
			want += j.GangRate(g) * used
			now = now.Add(used)
		}
		if j.DoneMB() > j.TotalMB+1e-9 {
			return false
		}
		return math.Abs(j.DoneMB()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringCoverage(t *testing.T) {
	j := MustNew(specFixture(perfFixture()))
	if s := j.String(); s == "" {
		t.Error("empty String()")
	}
	for _, st := range []State{Runnable, Running, Done, State(9)} {
		if st.String() == "" {
			t.Errorf("State(%d).String empty", int(st))
		}
	}
}
