package job

import "sort"

// SortedUsers returns m's user keys in ascending order. Iterating a
// per-user map through it keeps float sums, appends, and event
// emission independent of Go's randomized map order (gflint maprange).
func SortedUsers[V any](m map[UserID]V) []UserID {
	out := make([]UserID, 0, len(m))
	for u := range m {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SortedIDs is SortedUsers for per-job maps.
func SortedIDs[V any](m map[ID]V) []ID {
	out := make([]ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
