// Package job models deep-learning training (DLT) jobs as the
// scheduler sees them: a gang of GPUs, a stream of minibatches whose
// per-iteration time depends on the GPU generation, and
// suspend/resume/migration costs.
//
// The scheduler never looks inside a training framework; everything it
// needs is (a) progress per unit time per generation, observable at
// iteration boundaries, and (b) the cost of moving or pausing the job.
// Both are modeled explicitly here, which is what makes the simulated
// substrate faithful for scheduling purposes.
package job

import (
	"fmt"
	"math"

	"repro/internal/gpu"
	"repro/internal/simclock"
)

// ID identifies a job, unique within a simulation.
type ID int64

// UserID identifies the user (tenant) owning a job.
type UserID string

// Perf is a model's performance profile: how fast one minibatch runs
// on each GPU generation, how the job scales with gang size, and how
// expensive it is to checkpoint. Profiles are shared (one per model in
// the zoo) and must be treated as immutable.
type Perf struct {
	Model string

	// RatePerGPU is minibatches/second when running on a single GPU
	// of each generation. A zero entry means the model cannot run on
	// that generation at all.
	RatePerGPU [gpu.NumGenerations]float64

	// ScalingEff is the per-GPU efficiency when the gang grows: a
	// gang of n GPUs achieves n·eff(n) single-GPU throughput where
	// eff(1)=1 and eff(n)=ScalingEff for n>1 (synchronous SGD loses a
	// roughly constant fraction to all-reduce). Must be in (0, 1].
	ScalingEff float64

	// MemGBPerGPU is device memory needed per GPU; the job only fits
	// on generations with at least this much memory.
	MemGBPerGPU float64

	// CheckpointMB is the serialized checkpoint size, which drives
	// migration cost.
	CheckpointMB float64
}

// Validate reports whether the profile is internally consistent.
func (p *Perf) Validate() error {
	if p.Model == "" {
		return fmt.Errorf("job: perf with empty model name")
	}
	if p.ScalingEff <= 0 || p.ScalingEff > 1 {
		return fmt.Errorf("job: %s: ScalingEff %v outside (0,1]", p.Model, p.ScalingEff)
	}
	any := false
	for _, r := range p.RatePerGPU {
		if r < 0 {
			return fmt.Errorf("job: %s: negative rate", p.Model)
		}
		if r > 0 {
			any = true
		}
	}
	if !any {
		return fmt.Errorf("job: %s: runs on no generation", p.Model)
	}
	if p.MemGBPerGPU < 0 || p.CheckpointMB < 0 {
		return fmt.Errorf("job: %s: negative memory or checkpoint size", p.Model)
	}
	return nil
}

// FitsOn reports whether the model can run on generation g (nonzero
// rate and enough device memory).
func (p *Perf) FitsOn(g gpu.Generation) bool {
	return g.Valid() && p.RatePerGPU[g] > 0 && p.MemGBPerGPU <= g.MemGB()
}

// Speedup returns the per-GPU throughput ratio of generation fast over
// generation slow — the marginal utility the trading mechanism
// arbitrages. Returns 0 if the model does not run on either.
func (p *Perf) Speedup(fast, slow gpu.Generation) float64 {
	if !p.FitsOn(fast) || !p.FitsOn(slow) {
		return 0
	}
	return p.RatePerGPU[fast] / p.RatePerGPU[slow]
}

// GangEff returns the scaling efficiency for a gang of n GPUs.
func (p *Perf) GangEff(n int) float64 {
	if n <= 1 {
		return 1
	}
	return p.ScalingEff
}

// State is a job's lifecycle state.
type State int

const (
	// Runnable: arrived and waiting for (more) GPU time.
	Runnable State = iota
	// Running: currently assigned GPUs for the ongoing quantum.
	Running
	// Done: training complete.
	Done
)

func (s State) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Spec is the immutable description of a job at submission time.
type Spec struct {
	ID      ID
	User    UserID
	Perf    *Perf
	Gang    int     // number of GPUs required, all-or-nothing
	TotalMB float64 // minibatches to completion
	Arrival simclock.Time
}

// Validate checks the spec.
func (s *Spec) Validate() error {
	if s.User == "" {
		return fmt.Errorf("job %d: empty user", s.ID)
	}
	if s.Perf == nil {
		return fmt.Errorf("job %d: nil perf profile", s.ID)
	}
	if err := s.Perf.Validate(); err != nil {
		return fmt.Errorf("job %d: %w", s.ID, err)
	}
	if s.Gang <= 0 {
		return fmt.Errorf("job %d: gang %d must be positive", s.ID, s.Gang)
	}
	if s.TotalMB <= 0 {
		return fmt.Errorf("job %d: total minibatches %v must be positive", s.ID, s.TotalMB)
	}
	if s.Arrival < 0 {
		return fmt.Errorf("job %d: negative arrival", s.ID)
	}
	return nil
}

// Job is the mutable runtime record of one DLT job. It is owned by the
// simulation core; all mutation happens on the single simulation
// goroutine.
type Job struct {
	Spec

	state  State
	doneMB float64
	finish simclock.Time

	// Accounting.
	gpuSecs    [gpu.NumGenerations]float64 // gang-GPU-seconds of useful service per generation
	overheadS  float64                     // seconds of occupied-but-useless time (resume, migration)
	migrations int
	preempts   int
	lastRan    bool // ran in previous quantum (for resume-overhead modeling)
	firstRun   simclock.Time
	everRan    bool

	// Fault-model state: progress as of the last durable checkpoint
	// and how many times the job has crashed (see Crash).
	ckptMB  float64
	crashes int
}

// New constructs a runtime job from a validated spec.
func New(spec Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Job{Spec: spec, state: Runnable}, nil
}

// MustNew is New but panics on invalid specs; for tests and fixtures.
func MustNew(spec Spec) *Job {
	j, err := New(spec)
	if err != nil {
		panic(err)
	}
	return j
}

// State returns the lifecycle state.
func (j *Job) State() State { return j.state }

// SetRunning transitions between Runnable and Running; the core calls
// this at quantum boundaries. Transitioning a Done job panics.
func (j *Job) SetRunning(running bool) {
	if j.state == Done {
		panic(fmt.Sprintf("job %d: SetRunning on done job", j.ID))
	}
	if running {
		j.state = Running
	} else {
		if j.state == Running {
			j.preempts++
		}
		j.state = Runnable
	}
}

// NoteFirstRun records when the job first received GPUs; only the
// first call has any effect.
func (j *Job) NoteFirstRun(at simclock.Time) {
	if !j.everRan {
		j.everRan = true
		j.firstRun = at
	}
}

// QueueDelay returns the time the job waited from arrival to its
// first quantum; ok is false if it never ran.
func (j *Job) QueueDelay() (simclock.Duration, bool) {
	if !j.everRan {
		return 0, false
	}
	return j.firstRun.Sub(j.Arrival), true
}

// RanLastQuantum reports whether the job held GPUs in the previous
// quantum; the core uses it to decide whether resume overhead applies.
func (j *Job) RanLastQuantum() bool { return j.lastRan }

// NoteQuantum records whether the job ran this quantum, for the next
// round's overhead decision.
func (j *Job) NoteQuantum(ran bool) { j.lastRan = ran }

// GangRate returns the whole-gang minibatch rate on generation g.
func (j *Job) GangRate(g gpu.Generation) float64 {
	if !j.Perf.FitsOn(g) {
		return 0
	}
	return j.Perf.RatePerGPU[g] * float64(j.Gang) * j.Perf.GangEff(j.Gang)
}

// Advance runs the gang on generation g for up to dur seconds of
// useful compute. It returns the duration actually consumed (less than
// dur only when the job completes mid-quantum) and whether the job
// finished. now is the virtual time at the start of the useful period,
// used to stamp the finish time. Calling Advance on a generation the
// job does not fit panics: the placement layer must never do that.
func (j *Job) Advance(g gpu.Generation, dur simclock.Duration, now simclock.Time) (used simclock.Duration, finished bool) {
	if j.state == Done {
		panic(fmt.Sprintf("job %d: Advance on done job", j.ID))
	}
	if dur < 0 {
		panic(fmt.Sprintf("job %d: negative duration %v", j.ID, dur))
	}
	rate := j.GangRate(g)
	if rate <= 0 {
		panic(fmt.Sprintf("job %d (%s): advanced on unusable generation %v", j.ID, j.Perf.Model, g))
	}
	need := (j.TotalMB - j.doneMB) / rate
	used = dur
	if need <= dur {
		used = need
		finished = true
	}
	j.doneMB += rate * used
	j.gpuSecs[g] += float64(j.Gang) * used
	if finished {
		j.doneMB = j.TotalMB
		j.state = Done
		j.finish = now.Add(used)
	}
	return used, finished
}

// ApplyReport overwrites progress from a remote agent's round report
// (the distributed mode, where execution happens on server agents and
// the central scheduler's job records mirror their reports). Progress
// must be monotone and within TotalMB; violations panic because they
// mean a corrupted or replayed report.
func (j *Job) ApplyReport(doneMB float64, g gpu.Generation, gpuSecs float64, finished bool, at simclock.Time) {
	if j.state == Done {
		panic(fmt.Sprintf("job %d: ApplyReport on done job", j.ID))
	}
	if doneMB < j.doneMB-1e-6 || doneMB > j.TotalMB+1e-6 {
		panic(fmt.Sprintf("job %d: report done %v outside [%v, %v]", j.ID, doneMB, j.doneMB, j.TotalMB))
	}
	if gpuSecs < 0 {
		panic(fmt.Sprintf("job %d: negative reported service", j.ID))
	}
	j.doneMB = math.Min(doneMB, j.TotalMB)
	if g.Valid() {
		j.gpuSecs[g] += gpuSecs
	}
	if finished {
		j.doneMB = j.TotalMB
		j.state = Done
		j.finish = at
	}
}

// AddOverhead charges d seconds of occupied-but-useless GPU time
// (suspend/resume or migration restore). The GPUs are held but no
// minibatches complete.
func (j *Job) AddOverhead(d simclock.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("job %d: negative overhead", j.ID))
	}
	j.overheadS += d
}

// NoteMigration counts one migration of this job.
func (j *Job) NoteMigration() { j.migrations++ }

// NoteCheckpoint records a durable checkpoint at the current progress.
// The core calls it on suspend, on migration, and on the periodic
// checkpoint interval; a later Crash rolls progress back to this point.
func (j *Job) NoteCheckpoint() { j.ckptMB = j.doneMB }

// CheckpointedMB returns progress as of the last durable checkpoint.
func (j *Job) CheckpointedMB() float64 { return j.ckptMB }

// Crash models a job crash: progress rolls back to the last durable
// checkpoint, the job drops to Runnable, and its next quantum pays
// resume overhead (restart from checkpoint). It returns the minibatches
// of useful work lost. Crashing a Done job panics — a finished job has
// durably written its result.
func (j *Job) Crash() (lostMB float64) {
	if j.state == Done {
		panic(fmt.Sprintf("job %d: Crash on done job", j.ID))
	}
	lostMB = j.doneMB - j.ckptMB
	j.doneMB = j.ckptMB
	j.state = Runnable
	j.lastRan = false
	j.crashes++
	return lostMB
}

// Crashes returns how many times the job has crashed.
func (j *Job) Crashes() int { return j.crashes }

// DoneMB returns minibatches completed so far.
func (j *Job) DoneMB() float64 { return j.doneMB }

// Progress returns completion fraction in [0, 1].
func (j *Job) Progress() float64 { return j.doneMB / j.TotalMB }

// Finished reports completion.
func (j *Job) Finished() bool { return j.state == Done }

// FinishTime returns when the job completed; calling it on an
// unfinished job panics.
func (j *Job) FinishTime() simclock.Time {
	if j.state != Done {
		panic(fmt.Sprintf("job %d: FinishTime before completion", j.ID))
	}
	return j.finish
}

// JCT returns the job completion time (finish − arrival).
func (j *Job) JCT() simclock.Duration {
	return j.FinishTime().Sub(j.Arrival)
}

// StandaloneTime returns the job's total runtime if run without
// interruption on generation g from the start; +Inf if it cannot run
// there. This is the physics lower bound on its completion time.
func (j *Job) StandaloneTime(g gpu.Generation) simclock.Duration {
	rate := j.GangRate(g)
	if rate <= 0 {
		return simclock.Duration(simclock.Forever)
	}
	return j.TotalMB / rate
}

// RemainingTime estimates seconds to completion at full gang speed on
// generation g; +Inf if the job cannot run there.
func (j *Job) RemainingTime(g gpu.Generation) simclock.Duration {
	rate := j.GangRate(g)
	if rate <= 0 {
		return simclock.Duration(simclock.Forever)
	}
	return (j.TotalMB - j.doneMB) / rate
}

// AttainedService returns total useful gang-GPU-seconds across all
// generations (the quantity Tiresias prioritizes by).
func (j *Job) AttainedService() float64 {
	var s float64
	for _, v := range j.gpuSecs {
		s += v
	}
	return s
}

// GPUSeconds returns useful gang-GPU-seconds on one generation.
func (j *Job) GPUSeconds(g gpu.Generation) float64 {
	if !g.Valid() {
		return 0
	}
	return j.gpuSecs[g]
}

// OverheadSeconds returns accumulated overhead (resume+migration).
func (j *Job) OverheadSeconds() float64 { return j.overheadS }

// Migrations returns how many times the job was migrated.
func (j *Job) Migrations() int { return j.migrations }

// Preemptions returns how many times the job was suspended after
// running.
func (j *Job) Preemptions() int { return j.preempts }

func (j *Job) String() string {
	return fmt.Sprintf("job %d[user=%s model=%s gang=%d %.0f%% %v]",
		j.ID, j.User, j.Perf.Model, j.Gang, 100*j.Progress(), j.state)
}
