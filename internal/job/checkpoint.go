package job

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/simclock"
)

// Checkpoint is a serializable snapshot of one job's full runtime
// state. The distributed central scheduler persists these to disk so
// a restarted coordinator resumes exactly where the crashed one
// stopped — the on-disk analogue of the checkpoint-on-the-wire
// semantics agents already work with.
type Checkpoint struct {
	Spec         Spec
	State        State
	DoneMB       float64
	Finish       simclock.Time
	GPUSecs      [gpu.NumGenerations]float64
	OverheadSecs float64
	Migrations   int
	Preemptions  int
	LastRan      bool
	FirstRun     simclock.Time
	EverRan      bool
	CkptMB       float64
	Crashes      int
}

// Checkpoint captures the job's current state.
func (j *Job) Checkpoint() Checkpoint {
	return Checkpoint{
		Spec:         j.Spec,
		State:        j.state,
		DoneMB:       j.doneMB,
		Finish:       j.finish,
		GPUSecs:      j.gpuSecs,
		OverheadSecs: j.overheadS,
		Migrations:   j.migrations,
		Preemptions:  j.preempts,
		LastRan:      j.lastRan,
		FirstRun:     j.firstRun,
		EverRan:      j.everRan,
		CkptMB:       j.ckptMB,
		Crashes:      j.crashes,
	}
}

// FromCheckpoint rebuilds a job from a checkpoint, validating that
// the state is internally consistent.
func FromCheckpoint(cp Checkpoint) (*Job, error) {
	if err := cp.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("job: checkpoint: %w", err)
	}
	switch cp.State {
	case Runnable, Running, Done:
	default:
		return nil, fmt.Errorf("job %d: checkpoint with invalid state %d", cp.Spec.ID, cp.State)
	}
	if cp.DoneMB < 0 || cp.DoneMB > cp.Spec.TotalMB+1e-6 {
		return nil, fmt.Errorf("job %d: checkpoint done %v outside [0, %v]",
			cp.Spec.ID, cp.DoneMB, cp.Spec.TotalMB)
	}
	if cp.State == Done && cp.DoneMB < cp.Spec.TotalMB-1e-6 {
		return nil, fmt.Errorf("job %d: checkpoint done-state at %v of %v minibatches",
			cp.Spec.ID, cp.DoneMB, cp.Spec.TotalMB)
	}
	for _, s := range cp.GPUSecs {
		if s < 0 {
			return nil, fmt.Errorf("job %d: checkpoint with negative service", cp.Spec.ID)
		}
	}
	if cp.OverheadSecs < 0 || cp.Migrations < 0 || cp.Preemptions < 0 {
		return nil, fmt.Errorf("job %d: checkpoint with negative accounting", cp.Spec.ID)
	}
	if cp.CkptMB < 0 || cp.CkptMB > cp.DoneMB+1e-6 {
		return nil, fmt.Errorf("job %d: checkpoint progress %v outside [0, %v]",
			cp.Spec.ID, cp.CkptMB, cp.DoneMB)
	}
	if cp.Crashes < 0 {
		return nil, fmt.Errorf("job %d: checkpoint with negative crash count", cp.Spec.ID)
	}
	return &Job{
		Spec:       cp.Spec,
		state:      cp.State,
		doneMB:     cp.DoneMB,
		finish:     cp.Finish,
		gpuSecs:    cp.GPUSecs,
		overheadS:  cp.OverheadSecs,
		migrations: cp.Migrations,
		preempts:   cp.Preemptions,
		lastRan:    cp.LastRan,
		firstRun:   cp.FirstRun,
		everRan:    cp.EverRan,
		ckptMB:     cp.CkptMB,
		crashes:    cp.Crashes,
	}, nil
}
