package gpu

import (
	"testing"
	"testing/quick"
)

func TestGenerationString(t *testing.T) {
	cases := map[Generation]string{
		K80: "K80", P40: "P40", P100: "P100", V100: "V100",
		Generation(99): "Generation(99)",
	}
	for g, want := range cases {
		if got := g.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(g), got, want)
		}
	}
}

func TestParseGeneration(t *testing.T) {
	for _, g := range Generations() {
		got, err := ParseGeneration(g.String())
		if err != nil || got != g {
			t.Errorf("ParseGeneration(%q) = %v, %v", g.String(), got, err)
		}
	}
	if _, err := ParseGeneration("TPU"); err == nil {
		t.Error("ParseGeneration(TPU) succeeded, want error")
	}
}

func TestGenerationOrderAndValidity(t *testing.T) {
	if !(K80 < P40 && P40 < P100 && P100 < V100) {
		t.Fatal("generation ordering broken: must go oldest to newest")
	}
	for _, g := range Generations() {
		if !g.Valid() {
			t.Errorf("%v not valid", g)
		}
		if g.MemGB() <= 0 {
			t.Errorf("%v has no memory", g)
		}
	}
	if Generation(-1).Valid() || Generation(100).Valid() {
		t.Error("out-of-range generation reported valid")
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := New(Spec{Gen: K80, Servers: 0, GPUsPerSrv: 4}); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := New(Spec{Gen: K80, Servers: 1, GPUsPerSrv: 0}); err == nil {
		t.Error("zero GPUs accepted")
	}
	if _, err := New(Spec{Gen: Generation(50), Servers: 1, GPUsPerSrv: 1}); err == nil {
		t.Error("invalid generation accepted")
	}
}

func TestDefault200(t *testing.T) {
	c := Default200()
	if c.NumDevices() != 200 {
		t.Fatalf("NumDevices = %d, want 200", c.NumDevices())
	}
	if c.NumServers() != 50 {
		t.Fatalf("NumServers = %d, want 50", c.NumServers())
	}
	want := map[Generation]int{K80: 48, P40: 48, P100: 56, V100: 48}
	got := c.CapacityByGen()
	for g, n := range want {
		if got[g] != n {
			t.Errorf("capacity[%v] = %d, want %d", g, got[g], n)
		}
	}
	if len(c.GensPresent()) != 4 {
		t.Errorf("GensPresent = %v, want 4 generations", c.GensPresent())
	}
}

func TestInventoryConsistency(t *testing.T) {
	c := MustNew(
		Spec{Gen: K80, Servers: 2, GPUsPerSrv: 4},
		Spec{Gen: V100, Servers: 3, GPUsPerSrv: 8},
	)
	// Every device must be reachable through its server and agree on
	// generation.
	seen := make(map[DeviceID]bool)
	for _, srv := range c.Servers() {
		for _, id := range srv.Devices {
			d := c.Device(id)
			if d.Server != srv.ID {
				t.Errorf("device %d claims server %d, listed on %d", id, d.Server, srv.ID)
			}
			if d.Gen != srv.Gen {
				t.Errorf("device %d gen %v on server of gen %v", id, d.Gen, srv.Gen)
			}
			if seen[id] {
				t.Errorf("device %d listed on two servers", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != c.NumDevices() {
		t.Errorf("servers list %d devices, cluster has %d", len(seen), c.NumDevices())
	}
	// DevicesOf must partition the device space.
	total := 0
	for _, g := range Generations() {
		devs := c.DevicesOf(g)
		total += len(devs)
		for _, id := range devs {
			if c.Device(id).Gen != g {
				t.Errorf("DevicesOf(%v) contains device of gen %v", g, c.Device(id).Gen)
			}
		}
	}
	if total != c.NumDevices() {
		t.Errorf("DevicesOf partitions %d devices, want %d", total, c.NumDevices())
	}
	// ServersOf consistency.
	if n := len(c.ServersOf(V100)); n != 3 {
		t.Errorf("ServersOf(V100) = %d servers, want 3", n)
	}
	if n := len(c.ServersOf(P100)); n != 0 {
		t.Errorf("ServersOf(P100) = %d servers, want 0", n)
	}
}

func TestDeviceIDsDense(t *testing.T) {
	c := MustNew(Spec{Gen: P100, Servers: 3, GPUsPerSrv: 2})
	for i := 0; i < c.NumDevices(); i++ {
		if c.Device(DeviceID(i)).ID != DeviceID(i) {
			t.Fatalf("device %d has ID %d", i, c.Device(DeviceID(i)).ID)
		}
	}
}

func TestInvalidGenQueries(t *testing.T) {
	c := Default200()
	if c.DevicesOf(Generation(77)) != nil {
		t.Error("DevicesOf(invalid) != nil")
	}
	if c.Capacity(Generation(-3)) != 0 {
		t.Error("Capacity(invalid) != 0")
	}
}

func TestClusterString(t *testing.T) {
	s := Default200().String()
	want := "cluster{K80:48 P40:48 P100:56 V100:48 | 50 servers}"
	if s != want {
		t.Errorf("String = %q, want %q", s, want)
	}
}

// Property: for any small spec, capacities are servers × gpus and the
// per-generation device lists are sorted ascending.
func TestPropertyCapacity(t *testing.T) {
	f := func(nsrv, ngpu uint8, genRaw uint8) bool {
		ns := int(nsrv%6) + 1
		ng := int(ngpu%8) + 1
		g := Generation(int(genRaw) % NumGenerations)
		c, err := New(Spec{Gen: g, Servers: ns, GPUsPerSrv: ng})
		if err != nil {
			return false
		}
		if c.Capacity(g) != ns*ng {
			return false
		}
		devs := c.DevicesOf(g)
		for i := 1; i < len(devs); i++ {
			if devs[i] <= devs[i-1] {
				return false
			}
		}
		return c.NumServers() == ns
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
