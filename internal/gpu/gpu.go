// Package gpu models the hardware inventory of a heterogeneous GPU
// cluster: GPU generations, servers (each holding a small number of
// GPUs of a single generation), and the cluster as a whole.
//
// The package is pure inventory — who occupies which device is the
// placement layer's concern. Keeping inventory immutable after
// construction lets every scheduler component share one *Cluster
// without synchronization.
package gpu

import (
	"fmt"
	"sort"
)

// Generation identifies a GPU hardware generation. Order matters:
// higher values are newer/faster generations, which the trading
// mechanism relies on when enumerating (fast, slow) pairs.
type Generation int

// The generations evaluated in the paper's 200-GPU Azure cluster.
const (
	K80 Generation = iota
	P40
	P100
	V100
	numGenerations
)

// Generations lists all generations from oldest to newest.
func Generations() []Generation {
	g := make([]Generation, numGenerations)
	for i := range g {
		g[i] = Generation(i)
	}
	return g
}

// NumGenerations is the number of modeled GPU generations.
const NumGenerations = int(numGenerations)

func (g Generation) String() string {
	switch g {
	case K80:
		return "K80"
	case P40:
		return "P40"
	case P100:
		return "P100"
	case V100:
		return "V100"
	default:
		return fmt.Sprintf("Generation(%d)", int(g))
	}
}

// Valid reports whether g is one of the defined generations.
func (g Generation) Valid() bool { return g >= 0 && g < numGenerations }

// ParseGeneration converts a name like "V100" to a Generation.
func ParseGeneration(s string) (Generation, error) {
	for _, g := range Generations() {
		if g.String() == s {
			return g, nil
		}
	}
	return 0, fmt.Errorf("gpu: unknown generation %q", s)
}

// MemGB returns the device memory of the generation in gigabytes.
// (Used by the job model to bound which models fit; values are the
// common SKUs: K80 12 GB/die, P40 24 GB, P100 16 GB, V100 16 GB.)
func (g Generation) MemGB() float64 {
	switch g {
	case K80:
		return 12
	case P40:
		return 24
	case P100:
		return 16
	case V100:
		return 16
	default:
		return 0
	}
}

// DeviceID names a single GPU, unique cluster-wide.
type DeviceID int32

// ServerID names a server, unique cluster-wide.
type ServerID int32

// Device is one physical GPU.
type Device struct {
	ID     DeviceID
	Server ServerID
	Gen    Generation
}

// Server is one machine holding GPUs of a single generation (as in the
// paper's testbed, where each VM SKU carries one GPU type).
type Server struct {
	ID      ServerID
	Gen     Generation
	Devices []DeviceID // sorted ascending
}

// NumGPUs returns the number of GPUs on the server.
func (s *Server) NumGPUs() int { return len(s.Devices) }

// Spec describes a group of identical servers for cluster construction.
type Spec struct {
	Gen        Generation
	Servers    int // number of servers of this kind
	GPUsPerSrv int // GPUs on each
}

// Cluster is the full, immutable hardware inventory.
type Cluster struct {
	servers []*Server
	devices []Device // indexed by DeviceID
	byGen   [numGenerations][]DeviceID
	srvGen  [numGenerations][]ServerID
}

// New builds a cluster from server specs. Device and server IDs are
// assigned densely in spec order, so a given spec list always produces
// the same inventory (determinism).
func New(specs ...Spec) (*Cluster, error) {
	c := &Cluster{}
	for _, sp := range specs {
		if !sp.Gen.Valid() {
			return nil, fmt.Errorf("gpu: invalid generation %d in spec", int(sp.Gen))
		}
		if sp.Servers <= 0 || sp.GPUsPerSrv <= 0 {
			return nil, fmt.Errorf("gpu: spec %v must have positive servers and GPUs", sp.Gen)
		}
		for i := 0; i < sp.Servers; i++ {
			srv := &Server{ID: ServerID(len(c.servers)), Gen: sp.Gen}
			for j := 0; j < sp.GPUsPerSrv; j++ {
				id := DeviceID(len(c.devices))
				c.devices = append(c.devices, Device{ID: id, Server: srv.ID, Gen: sp.Gen})
				srv.Devices = append(srv.Devices, id)
				c.byGen[sp.Gen] = append(c.byGen[sp.Gen], id)
			}
			c.servers = append(c.servers, srv)
			c.srvGen[sp.Gen] = append(c.srvGen[sp.Gen], srv.ID)
		}
	}
	if len(c.devices) == 0 {
		return nil, fmt.Errorf("gpu: empty cluster")
	}
	return c, nil
}

// MustNew is New but panics on error; for tests and fixed fixtures.
func MustNew(specs ...Spec) *Cluster {
	c, err := New(specs...)
	if err != nil {
		panic(err)
	}
	return c
}

// Default200 returns the repository's default heterogeneous cluster,
// sized like the paper's 200-GPU testbed: 12×4 K80, 12×4 P40,
// 14×4 P100, 12×4 V100 = 48+48+56+48 = 200 GPUs on 50 servers.
func Default200() *Cluster {
	return MustNew(
		Spec{Gen: K80, Servers: 12, GPUsPerSrv: 4},
		Spec{Gen: P40, Servers: 12, GPUsPerSrv: 4},
		Spec{Gen: P100, Servers: 14, GPUsPerSrv: 4},
		Spec{Gen: V100, Servers: 12, GPUsPerSrv: 4},
	)
}

// NumDevices returns the total GPU count.
func (c *Cluster) NumDevices() int { return len(c.devices) }

// NumServers returns the server count.
func (c *Cluster) NumServers() int { return len(c.servers) }

// Device returns the device record for id.
func (c *Cluster) Device(id DeviceID) Device {
	return c.devices[id]
}

// Server returns the server record for id.
func (c *Cluster) Server(id ServerID) *Server {
	return c.servers[id]
}

// Servers returns all servers in ID order. Callers must not mutate.
func (c *Cluster) Servers() []*Server { return c.servers }

// DevicesOf returns the device IDs of a generation in ascending order.
// Callers must not mutate the returned slice.
func (c *Cluster) DevicesOf(g Generation) []DeviceID {
	if !g.Valid() {
		return nil
	}
	return c.byGen[g]
}

// ServersOf returns the server IDs holding a generation.
func (c *Cluster) ServersOf(g Generation) []ServerID {
	if !g.Valid() {
		return nil
	}
	return c.srvGen[g]
}

// CapacityByGen returns GPU counts per generation.
func (c *Cluster) CapacityByGen() map[Generation]int {
	m := make(map[Generation]int, numGenerations)
	for _, g := range Generations() {
		if n := len(c.byGen[g]); n > 0 {
			m[g] = n
		}
	}
	return m
}

// Capacity returns the GPU count of one generation.
func (c *Cluster) Capacity(g Generation) int {
	if !g.Valid() {
		return 0
	}
	return len(c.byGen[g])
}

// GensPresent returns the generations with at least one GPU, oldest
// first.
func (c *Cluster) GensPresent() []Generation {
	var out []Generation
	for _, g := range Generations() {
		if len(c.byGen[g]) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// String summarizes the inventory, e.g.
// "cluster{K80:48 P40:48 P100:56 V100:48 | 50 servers}".
func (c *Cluster) String() string {
	gens := c.GensPresent()
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	s := "cluster{"
	for i, g := range gens {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%v:%d", g, len(c.byGen[g]))
	}
	return s + fmt.Sprintf(" | %d servers}", len(c.servers))
}
