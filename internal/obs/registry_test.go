package obs

import (
	"strings"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "A counter.", "kind")
	c.With("a").Add(2)
	c.With("a").Inc()
	c.With("b").Inc()
	g := r.Gauge("test_gauge", "A gauge.")
	g.With().Set(1.5)
	g.With().Add(-0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_total A counter.",
		"# TYPE test_total counter",
		`test_total{kind="a"} 3`,
		`test_total{kind="b"} 1`,
		"# TYPE test_gauge gauge",
		"test_gauge 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono_total", "").With()
	c.Add(5)
	c.Add(-3)
	if v := c.Value(); v != 5 {
		t.Errorf("counter = %v, want 5 (negative add ignored)", v)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1}, "phase")
	ph := h.With("decide")
	ph.Observe(0.05)
	ph.Observe(0.5)
	ph.Observe(2)
	if ph.Count() != 3 {
		t.Fatalf("count = %d", ph.Count())
	}
	if s := ph.Sum(); s < 2.54 || s > 2.56 {
		t.Fatalf("sum = %v", s)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{phase="decide",le="0.1"} 1`,
		`lat_seconds_bucket{phase="decide",le="1"} 2`,
		`lat_seconds_bucket{phase="decide",le="+Inf"} 3`,
		`lat_seconds_count{phase="decide"} 3`,
		`lat_seconds_sum{phase="decide"} 2.55`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestExpositionDeterministicOrder(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		c := r.Counter("zzz_total", "", "u")
		r.Gauge("aaa", "").With().Set(1)
		c.With("y").Inc()
		c.With("x").Inc()
		var b strings.Builder
		_ = r.WritePrometheus(&b) // strings.Builder writes cannot fail
		return b.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("non-deterministic exposition:\n%s\nvs\n%s", a, b)
	}
	if strings.Index(a, "aaa") > strings.Index(a, "zzz_total") {
		t.Errorf("families not name-sorted:\n%s", a)
	}
	if strings.Index(a, `u="x"`) > strings.Index(a, `u="y"`) {
		t.Errorf("series not label-sorted:\n%s", a)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("esc", "", "v").With("a\"b\\c\nd").Set(1)
	var b strings.Builder
	_ = r.WritePrometheus(&b) // strings.Builder writes cannot fail
	if !strings.Contains(b.String(), `esc{v="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
}

func TestReregistrationReturnsSameFamily(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "", "k")
	bvec := r.Counter("dup_total", "", "k")
	a.With("x").Inc()
	bvec.With("x").Inc()
	if v := a.With("x").Value(); v != 2 {
		t.Errorf("same series not shared: %v", v)
	}

	defer func() {
		if recover() == nil {
			t.Error("type mismatch re-registration did not panic")
		}
	}()
	r.Gauge("dup_total", "")
}

func TestInvalidMetricNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad name did not panic")
		}
	}()
	NewRegistry().Counter("bad name", "")
}
