package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
)

// Handler serves the introspection surface for one Observer:
//
//	/metrics     Prometheus text exposition
//	/healthz     liveness ("ok")
//	/debug/sched recent explained decisions + phase timings as JSON
func Handler(o *Observer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		//gflint:ignore errdrop a client that hung up mid-response has no remedy
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg := o.Registry()
		if reg == nil {
			http.Error(w, "observability disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//gflint:ignore errdrop a client that hung up mid-response has no remedy
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/sched", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		//gflint:ignore errdrop a client that hung up mid-response has no remedy
		enc.Encode(o.Snapshot())
	})
	return mux
}

// Serve starts the introspection server on addr (e.g. ":9090" or
// "127.0.0.1:0") in a background goroutine and returns the server
// and the bound address. Callers own shutdown via srv.Close.
func Serve(addr string, o *Observer) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: %w", err)
	}
	srv := &http.Server{Handler: Handler(o)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
