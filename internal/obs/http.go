package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// MuxOptions selects optional surfaces on the introspection mux.
type MuxOptions struct {
	// PProf mounts net/http/pprof under /debug/pprof/ (CPU, heap,
	// goroutine profiles). Off by default: profiling endpoints on a
	// metrics port should be an explicit operator choice.
	PProf bool

	// Flight, when non-nil, is mounted at /debug/flight (the flight
	// recorder's live window; ?save=1 dumps it to disk).
	Flight http.Handler
}

// Handler serves the introspection surface for one Observer:
//
//	/metrics     Prometheus text exposition
//	/healthz     liveness ("ok")
//	/debug/sched recent explained decisions + phase timings as JSON
func Handler(o *Observer) http.Handler {
	return HandlerOpts(o, MuxOptions{})
}

// HandlerOpts is Handler with optional surfaces (pprof, flight
// recorder) enabled per MuxOptions.
func HandlerOpts(o *Observer, opt MuxOptions) http.Handler {
	mux := http.NewServeMux()
	if opt.PProf {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if opt.Flight != nil {
		mux.Handle("/debug/flight", opt.Flight)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		//gflint:ignore errdrop a client that hung up mid-response has no remedy
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg := o.Registry()
		if reg == nil {
			http.Error(w, "observability disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//gflint:ignore errdrop a client that hung up mid-response has no remedy
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/sched", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		//gflint:ignore errdrop a client that hung up mid-response has no remedy
		enc.Encode(o.Snapshot())
	})
	return mux
}

// Serve starts the introspection server on addr (e.g. ":9090" or
// "127.0.0.1:0") in a background goroutine and returns the server
// and the bound address. Callers own shutdown via srv.Close.
func Serve(addr string, o *Observer) (*http.Server, string, error) {
	return ServeOpts(addr, o, MuxOptions{})
}

// ServeOpts is Serve with optional surfaces per MuxOptions.
func ServeOpts(addr string, o *Observer, opt MuxOptions) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: %w", err)
	}
	srv := &http.Server{Handler: HandlerOpts(o, opt)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
