package flight

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/obs"
)

func snap(round int) obs.RoundSnapshot {
	return obs.RoundSnapshot{
		Round: round, SimAt: float64(round) * 360,
		Events: []obs.RoundEvent{{Kind: "fault", Name: "jobcrash"}},
		Shares: []obs.ShareSample{{User: "alice", Usage: 0.5, Fair: 0.5}},
	}
}

func TestRingKeepsLastN(t *testing.T) {
	r := New(3, filepath.Join(t.TempDir(), "flight.json"))
	for i := 0; i < 5; i++ {
		r.RecordRound(snap(i))
	}
	rounds := r.Rounds()
	if len(rounds) != 3 {
		t.Fatalf("retained %d rounds, want 3", len(rounds))
	}
	if rounds[0].Round != 2 || rounds[2].Round != 4 {
		t.Fatalf("window = %d..%d, want 2..4", rounds[0].Round, rounds[2].Round)
	}
}

func TestDumpAtomicAndParseable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	r := New(8, path)
	r.RecordRound(snap(0))
	r.RecordRound(snap(1))
	if err := r.Dump("audit-violation", "round 1: capacity: 9 > 8"); err != nil {
		t.Fatal(err)
	}
	d, err := ReadDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Reason != "audit-violation" || d.Detail == "" {
		t.Fatalf("dump header = %+v", d)
	}
	if len(d.Rounds) != 2 || d.Rounds[1].Round != 1 {
		t.Fatalf("dump rounds = %+v", d.Rounds)
	}
	if d.Rounds[0].Events[0].Name != "jobcrash" {
		t.Fatalf("events lost: %+v", d.Rounds[0])
	}
	if d.WrittenAt == "" {
		t.Fatal("missing timestamp")
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(filepath.Dir(path))
	for _, e := range entries {
		if e.Name() != "flight.json" {
			t.Fatalf("leftover file %s", e.Name())
		}
	}
	if r.Dumps() != 1 {
		t.Fatalf("dumps = %d", r.Dumps())
	}
}

func TestEmptyDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	if err := New(4, path).Dump("manual", ""); err != nil {
		t.Fatal(err)
	}
	d, err := ReadDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rounds == nil || len(d.Rounds) != 0 {
		t.Fatalf("empty dump rounds = %#v, want []", d.Rounds)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.RecordRound(snap(0))
	if err := r.Dump("manual", ""); err != nil {
		t.Fatal(err)
	}
	if r.Rounds() != nil || r.Dumps() != 0 || r.Path() != "" {
		t.Fatal("nil recorder leaked state")
	}
}

func TestObserverSinkIntegration(t *testing.T) {
	r := New(4, filepath.Join(t.TempDir(), "flight.json"))
	o := obs.New()
	o.SetSink(r)
	o.BeginRound(0, 0)
	o.NoteFault("jobcrash")
	o.SetShare("bob", 0.4, 0.5)
	o.RecordPlacement(1, "bob", "V100", 1, []int{0}, false, "")
	o.EndRound(1, 0)

	rounds := r.Rounds()
	if len(rounds) != 1 {
		t.Fatalf("sink got %d rounds", len(rounds))
	}
	got := rounds[0]
	if len(got.Decisions) != 1 || got.Decisions[0].User != "bob" {
		t.Fatalf("decisions = %+v", got.Decisions)
	}
	if len(got.Events) != 1 || got.Events[0].Name != "jobcrash" {
		t.Fatalf("events = %+v", got.Events)
	}
	if len(got.Shares) != 1 || got.Shares[0].User != "bob" {
		t.Fatalf("shares = %+v", got.Shares)
	}
}

func TestServeHTTP(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	r := New(4, path)
	r.RecordRound(snap(3))

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	var body struct {
		Rounds []obs.RoundSnapshot `json:"rounds"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(body.Rounds) != 1 || body.Rounds[0].Round != 3 {
		t.Fatalf("http rounds = %+v", body.Rounds)
	}

	// ?save=1 triggers a dump.
	r.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/debug/flight?save=1", nil))
	if _, err := ReadDump(path); err != nil {
		t.Fatalf("save=1 produced no parseable dump: %v", err)
	}

	// Nil recorder responds 503, not panic.
	rec = httptest.NewRecorder()
	(*Recorder)(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	if rec.Code != 503 {
		t.Fatalf("nil recorder status = %d", rec.Code)
	}
}

func TestConcurrentRecordAndDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	r := New(16, path)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.RecordRound(snap(g*50 + i))
				if i%10 == 0 {
					if err := r.Dump("manual", ""); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if _, err := ReadDump(path); err != nil {
		t.Fatal(err)
	}
}
