//go:build unix

package flight

import (
	"os"
	"os/signal"
	"syscall"
)

// DumpOnSignal arms a SIGUSR1 handler that dumps the recorder to its
// configured path — the operator's "what just happened" trigger on a
// live process. logf (nil OK) receives a note per dump or failure;
// route it to stderr so stdout stays byte-identical. The handler
// goroutine lives for the process: flight recording is an arm-once
// ops surface, not something runs toggle.
func (r *Recorder) DumpOnSignal(logf func(format string, args ...any)) {
	if r == nil {
		return
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGUSR1)
	go func() {
		for range ch {
			err := r.Dump("signal", "SIGUSR1")
			if logf == nil {
				continue
			}
			if err != nil {
				logf("flight: dump on SIGUSR1: %v", err)
			} else {
				logf("flight: dumped %s on SIGUSR1", r.Path())
			}
		}
	}()
}
