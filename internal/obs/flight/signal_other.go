//go:build !unix

package flight

// DumpOnSignal is a no-op where SIGUSR1 does not exist; the HTTP
// ?save=1 trigger remains available.
func (r *Recorder) DumpOnSignal(logf func(format string, args ...any)) {}
