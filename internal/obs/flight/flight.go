// Package flight is the engine's flight recorder: a bounded ring of
// the last N rounds' observability snapshots (spans, decisions,
// trades, fault events, per-user shares), dumped atomically to a
// JSON file when something goes wrong — an audit violation, a panic
// in the round loop, a soak-contract failure, or an operator trigger
// (SIGUSR1 / HTTP).
//
// The recorder is an obs.RoundSink: attach it with
// Observer.SetSink(rec) and every completed round flows in. It is
// strictly observe-only; nothing in the scheduler reads it back, so
// recording on vs off cannot change scheduling results.
package flight

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultRounds is the ring depth when New is given n <= 0.
const DefaultRounds = 64

// Dump is the on-disk artifact: why it was written, when, and the
// retained rounds oldest-first.
type Dump struct {
	// Reason is what triggered the dump: "audit-violation", "panic",
	// "soak-failure", "signal", "http", or "manual".
	Reason string `json:"reason"`
	// Detail carries the trigger's specifics (the violated invariant,
	// the panic value, ...).
	Detail string `json:"detail,omitempty"`
	// WrittenAt is the wall-clock dump time (RFC 3339).
	WrittenAt string `json:"written_at"`
	// RoundsDropped counts rounds evicted from the ring before the
	// dump; nonzero means the window did not reach back to round 0.
	RoundsDropped uint64 `json:"rounds_dropped"`
	// Rounds is the retained window, oldest-first.
	Rounds []obs.RoundSnapshot `json:"rounds"`
}

// Recorder keeps the last N rounds of observability state and writes
// them out on demand. All methods are safe for concurrent use and
// nil-safe, so wiring is flag-free.
type Recorder struct {
	mu      sync.Mutex
	path    string
	cap     int
	ring    []obs.RoundSnapshot
	next    int
	dropped uint64
	dumps   int
}

// New builds a Recorder keeping the last n rounds (DefaultRounds
// when n <= 0) that Dump writes to path.
func New(n int, path string) *Recorder {
	if n <= 0 {
		n = DefaultRounds
	}
	if path == "" {
		path = "flight.json"
	}
	return &Recorder{path: path, cap: n}
}

// Path returns the dump destination ("" for nil).
func (r *Recorder) Path() string {
	if r == nil {
		return ""
	}
	return r.path
}

// RecordRound implements obs.RoundSink.
func (r *Recorder) RecordRound(s obs.RoundSnapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) < r.cap {
		r.ring = append(r.ring, s)
		return
	}
	r.ring[r.next] = s
	r.next = (r.next + 1) % r.cap
	r.dropped++
}

// Rounds returns the retained snapshots oldest-first.
func (r *Recorder) Rounds() []obs.RoundSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.roundsLocked()
}

func (r *Recorder) roundsLocked() []obs.RoundSnapshot {
	out := make([]obs.RoundSnapshot, 0, len(r.ring))
	if len(r.ring) < r.cap {
		return append(out, r.ring...)
	}
	out = append(out, r.ring[r.next:]...)
	return append(out, r.ring[:r.next]...)
}

// Dumps returns how many times the recorder has written its file.
func (r *Recorder) Dumps() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dumps
}

// Dump writes the current window to the recorder's path atomically
// (tmp + rename), overwriting any previous dump. A nil Recorder
// dumps nothing and returns nil, so failure paths can call it
// unconditionally.
func (r *Recorder) Dump(reason, detail string) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	d := Dump{
		Reason:        reason,
		Detail:        detail,
		WrittenAt:     time.Now().UTC().Format(time.RFC3339Nano),
		RoundsDropped: r.dropped,
		Rounds:        r.roundsLocked(),
	}
	if d.Rounds == nil {
		d.Rounds = []obs.RoundSnapshot{}
	}
	path := r.path
	r.dumps++
	r.mu.Unlock()

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".flight-*.json")
	if err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("flight: encode: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("flight: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("flight: %w", err)
	}
	return nil
}

// ServeHTTP exposes the recorder at /debug/flight: GET returns the
// current window as JSON; GET with ?save=1 additionally dumps it to
// the recorder's file (reason "http").
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if r == nil {
		http.Error(w, "flight recorder disabled", http.StatusServiceUnavailable)
		return
	}
	if req.URL.Query().Get("save") != "" {
		if err := r.Dump("http", req.RemoteAddr); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	rounds := r.Rounds()
	if rounds == nil {
		rounds = []obs.RoundSnapshot{}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//gflint:ignore errdrop a client that hung up mid-response has no remedy
	enc.Encode(struct {
		Path          string              `json:"path"`
		RoundsDropped uint64              `json:"rounds_dropped"`
		Rounds        []obs.RoundSnapshot `json:"rounds"`
	}{r.Path(), r.droppedNow(), rounds})
}

func (r *Recorder) droppedNow() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// ReadDump parses a flight dump file, for tooling and tests.
func ReadDump(path string) (*Dump, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	var d Dump
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("flight: parse %s: %w", path, err)
	}
	return &d, nil
}
