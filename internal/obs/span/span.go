// Package span is a dependency-free tracing substrate for the
// scheduler's round loop. One logical scheduling round is one trace;
// every phase inside it — whether executed by the in-process engine
// or by a remote agent — is a span with a parent link, the simulated
// round it belongs to, and wall-anchored monotonic timestamps.
//
// Design constraints, in order:
//
//  1. Determinism: span IDs are a per-process sequence prefixed with
//     an FNV hash of the process name, so concurrent processes never
//     collide and a fixed-seed run produces the same ID sequence
//     every time. Timestamps are wall-clock and therefore vary, but
//     they are observe-only: nothing in the scheduler reads them.
//  2. Zero dependencies: the package imports only the standard
//     library, so internal/comm can carry spans across the wire
//     without an import cycle.
//  3. Bounded memory: the tracer keeps a ring of the last Cap spans
//     and counts what it dropped.
//
// Export formats: WriteJSON emits the retained spans as a JSON array;
// WriteChromeTrace emits Chrome trace_event JSON loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing, with flow arrows linking
// remote spans to their cross-process parents.
package span

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"time"
)

// ID identifies one span. The high 32 bits are an FNV-1a hash of the
// originating process name; the low 32 bits are a per-process
// sequence number starting at 1. Zero means "no span".
type ID uint64

// Span is one timed segment of work. Remote spans travel over the
// wire by value (gob/json), so every field is exported and plain.
type Span struct {
	// Trace groups spans of one logical round across processes. The
	// central scheduler (or the simulation core) sets it to the round
	// number + 1 so round 0 still gets a nonzero trace ID.
	Trace uint64 `json:"trace"`
	ID    ID     `json:"id"`
	// Parent is the enclosing span's ID; zero for a trace root. A
	// remote span's parent may live in another process.
	Parent ID     `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Proc names the originating process ("sim", "central",
	// "agent-3", ...); it becomes the Perfetto process row.
	Proc string `json:"proc"`
	// Round and SimAt anchor the span in simulated time.
	Round int     `json:"round"`
	SimAt float64 `json:"sim_at"`
	// StartNs is wall-clock Unix nanoseconds at span start; DurNs is
	// the monotonic duration. DurNs < 0 marks a span still open.
	StartNs int64 `json:"start_ns"`
	DurNs   int64 `json:"dur_ns"`
}

// Tracer records spans for one process into a bounded ring. All
// methods are safe for concurrent use, and every method is nil-safe
// so instrumented code needs no enablement checks.
type Tracer struct {
	mu      sync.Mutex
	proc    string
	procID  uint32
	seq     uint32
	cap     int
	ring    []Span
	next    int
	dropped uint64
	open    map[ID]int // open span ID → ring index (while not evicted)

	// Current round context.
	trace uint64
	round int
	simAt float64
	root  ID

	epoch     time.Time // wall anchor
	epochMono time.Time // monotonic anchor (same instant)
}

// DefaultCap bounds the span ring when the caller passes cap <= 0:
// at ~15 spans per round that retains several hundred rounds.
const DefaultCap = 8192

// New builds a Tracer for the named process keeping the last cap
// spans (DefaultCap when cap <= 0).
func New(proc string, cap int) *Tracer {
	if cap <= 0 {
		cap = DefaultCap
	}
	now := time.Now()
	return &Tracer{
		proc:      proc,
		procID:    hashProc(proc),
		cap:       cap,
		open:      make(map[ID]int),
		epoch:     now,
		epochMono: now,
	}
}

func hashProc(proc string) uint32 {
	h := fnv.New32a()
	//gflint:ignore errdrop fnv hash Write cannot fail
	h.Write([]byte(proc))
	v := h.Sum32()
	if v == 0 {
		v = 1 // keep IDs nonzero even for a pathological hash
	}
	return v
}

// Proc returns the tracer's process name ("" for nil).
func (t *Tracer) Proc() string {
	if t == nil {
		return ""
	}
	return t.proc
}

// nowNs returns wall-anchored monotonic nanoseconds since the Unix
// epoch: the wall epoch captured at construction plus the monotonic
// time elapsed since, immune to wall-clock steps.
func (t *Tracer) nowNs() int64 {
	return t.epoch.UnixNano() + int64(time.Since(t.epochMono))
}

func (t *Tracer) nextID() ID {
	t.seq++
	return ID(uint64(t.procID)<<32 | uint64(t.seq))
}

// push appends a span to the ring, evicting the oldest when full.
func (t *Tracer) push(s Span) int {
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, s)
		return len(t.ring) - 1
	}
	evicted := t.ring[t.next]
	if evicted.DurNs >= 0 {
		t.dropped++
	} else {
		// Evicting a still-open span: forget it so End becomes a
		// no-op rather than closing an unrelated slot.
		delete(t.open, evicted.ID)
		t.dropped++
	}
	idx := t.next
	t.ring[idx] = s
	t.next = (t.next + 1) % t.cap
	return idx
}

// begin opens a span under the lock and returns its ID.
func (t *Tracer) begin(trace uint64, name string, parent ID, round int, simAt float64) ID {
	id := t.nextID()
	idx := t.push(Span{
		Trace: trace, ID: id, Parent: parent, Name: name,
		Proc: t.proc, Round: round, SimAt: simAt,
		StartNs: t.nowNs(), DurNs: -1,
	})
	t.open[id] = idx
	return id
}

// BeginRound opens the root span of a new round-scoped trace. The
// trace ID is round+1 in every process, which is what stitches the
// central and agent halves of one round into a single trace.
func (t *Tracer) BeginRound(round int, simAt float64) ID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trace = uint64(round) + 1
	t.round = round
	t.simAt = simAt
	t.root = t.begin(t.trace, "round", 0, round, simAt)
	return t.root
}

// BeginRemote opens a span whose parent lives in another process:
// the agent side of a dispatched round. trace and parent come off
// the wire; the span still gets this process's ID prefix.
func (t *Tracer) BeginRemote(trace uint64, round int, simAt float64, name string, parent ID) ID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trace = trace
	t.round = round
	t.simAt = simAt
	t.root = t.begin(trace, name, parent, round, simAt)
	return t.root
}

// Start opens a child span of the current round root.
func (t *Tracer) Start(name string) ID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.begin(t.trace, name, t.root, t.round, t.simAt)
}

// StartUnder opens a child span of an explicit parent.
func (t *Tracer) StartUnder(name string, parent ID) ID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.begin(t.trace, name, parent, t.round, t.simAt)
}

// End closes an open span. Ending an unknown (or already-evicted)
// span is a no-op.
func (t *Tracer) End(id ID) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idx, ok := t.open[id]
	if !ok {
		return
	}
	delete(t.open, id)
	t.ring[idx].DurNs = t.nowNs() - t.ring[idx].StartNs
}

// EndRound closes the current round root span.
func (t *Tracer) EndRound() {
	if t == nil {
		return
	}
	t.mu.Lock()
	root := t.root
	t.root = 0
	t.mu.Unlock()
	t.End(root)
}

// Root returns the current round-root span ID (0 when no round is
// open or the tracer is nil).
func (t *Tracer) Root() ID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

// Trace returns the current trace ID (0 when none).
func (t *Tracer) Trace() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.trace
}

// Inject merges spans recorded by another process (an agent's report)
// into this tracer's ring, preserving their IDs and timestamps.
func (t *Tracer) Inject(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range spans {
		t.push(s)
	}
}

// Dropped returns how many spans the ring has evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns the retained spans oldest-first. Nil tracer → nil.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spansLocked()
}

func (t *Tracer) spansLocked() []Span {
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) < t.cap {
		return append(out, t.ring...)
	}
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// RoundSpans returns the retained spans belonging to one round
// (trace == round+1), oldest-first.
func (t *Tracer) RoundSpans(round int) []Span {
	if t == nil {
		return nil
	}
	want := uint64(round) + 1
	var out []Span
	for _, s := range t.Spans() {
		if s.Trace == want {
			out = append(out, s)
		}
	}
	return out
}

// WriteJSON writes the retained spans as an indented JSON array
// (oldest-first; `[]` when empty).
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.Spans()
	if spans == nil {
		spans = []Span{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}

// WriteChromeTrace renders spans in Chrome trace_event JSON (the
// object form with a traceEvents array), loadable in Perfetto. Each
// distinct Proc becomes a process row; cross-process parent links
// become flow arrows.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Spans())
}

// chromeEvent is one trace_event entry. Timestamps are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   uint32         `json:"pid"`
	Tid   uint32         `json:"tid"`
	ID    string         `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders an arbitrary span slice as Chrome
// trace_event JSON. Spans still open (DurNs < 0) render with zero
// duration.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	events := make([]chromeEvent, 0, len(spans)+8)

	// One metadata event per distinct process, named deterministically.
	procPid := make(map[string]uint32)
	var procs []string
	for _, s := range spans {
		if _, ok := procPid[s.Proc]; !ok {
			procPid[s.Proc] = hashProc(s.Proc)
			procs = append(procs, s.Proc)
		}
	}
	sort.Strings(procs)
	for _, p := range procs {
		events = append(events, chromeEvent{
			Name: "process_name", Phase: "M", Pid: procPid[p],
			Args: map[string]any{"name": p},
		})
	}

	byID := make(map[ID]Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		pid := procPid[s.Proc]
		ts := float64(s.StartNs) / 1e3
		dur := float64(s.DurNs) / 1e3
		if s.DurNs < 0 {
			dur = 0
		}
		events = append(events, chromeEvent{
			Name: s.Name, Phase: "X", Ts: ts, Dur: dur,
			Pid: pid, Tid: pid,
			Args: map[string]any{
				"trace": s.Trace, "round": s.Round, "sim_at": s.SimAt,
				"span": fmt.Sprintf("%#x", uint64(s.ID)),
			},
		})
		// Cross-process parent → flow arrow from the parent's start
		// to this span's start.
		if s.Parent != 0 {
			if p, ok := byID[s.Parent]; ok && p.Proc != s.Proc {
				flowID := fmt.Sprintf("%#x", uint64(s.ID))
				events = append(events, chromeEvent{
					Name: "dispatch", Phase: "s", Ts: float64(p.StartNs) / 1e3,
					Pid: procPid[p.Proc], Tid: procPid[p.Proc], ID: flowID,
				})
				events = append(events, chromeEvent{
					Name: "dispatch", Phase: "f", BP: "e", Ts: ts,
					Pid: pid, Tid: pid, ID: flowID,
				})
			}
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}
