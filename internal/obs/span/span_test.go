package span

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestIDsAreProcessPrefixed(t *testing.T) {
	a := New("central", 16)
	b := New("agent-1", 16)
	idA := a.BeginRound(0, 0)
	idB := b.BeginRound(0, 0)
	if idA == 0 || idB == 0 {
		t.Fatal("zero span ID")
	}
	if uint64(idA)>>32 == uint64(idB)>>32 {
		t.Fatalf("distinct processes share an ID prefix: %#x vs %#x", idA, idB)
	}
	if uint64(idA)&0xffffffff != 1 {
		t.Fatalf("first span sequence = %d, want 1", uint64(idA)&0xffffffff)
	}
}

func TestRoundTraceStructure(t *testing.T) {
	tr := New("sim", 64)
	root := tr.BeginRound(3, 1080)
	s1 := tr.Start("waterfill")
	tr.End(s1)
	s2 := tr.Start("placement")
	sub := tr.StartUnder("find-devices", s2)
	tr.End(sub)
	tr.End(s2)
	tr.EndRound()

	spans := tr.RoundSpans(3)
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.Trace != 4 {
			t.Errorf("span %s trace = %d, want 4", s.Name, s.Trace)
		}
		if s.Round != 3 || s.SimAt != 1080 {
			t.Errorf("span %s round/simAt = %d/%v", s.Name, s.Round, s.SimAt)
		}
		if s.DurNs < 0 {
			t.Errorf("span %s left open", s.Name)
		}
	}
	if byName["round"].ID != root || byName["round"].Parent != 0 {
		t.Errorf("root span malformed: %+v", byName["round"])
	}
	if byName["waterfill"].Parent != root || byName["placement"].Parent != root {
		t.Error("phase spans not parented to root")
	}
	if byName["find-devices"].Parent != byName["placement"].ID {
		t.Error("sub-span not parented to placement")
	}
}

func TestRingEviction(t *testing.T) {
	tr := New("sim", 4)
	for r := 0; r < 6; r++ {
		tr.BeginRound(r, 0)
		tr.EndRound()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	if spans[0].Round != 2 || spans[3].Round != 5 {
		t.Fatalf("ring not oldest-first: rounds %d..%d", spans[0].Round, spans[3].Round)
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
}

func TestEndEvictedSpanIsNoop(t *testing.T) {
	tr := New("sim", 2)
	old := tr.BeginRound(0, 0)
	// Push enough spans to evict the still-open root.
	s1 := tr.Start("a")
	s2 := tr.Start("b")
	tr.End(s1)
	tr.End(s2)
	tr.End(old) // must not corrupt an unrelated slot
	for _, s := range tr.Spans() {
		if s.Name != "a" && s.Name != "b" {
			t.Fatalf("unexpected span %q", s.Name)
		}
	}
}

func TestInjectAndRemote(t *testing.T) {
	central := New("central", 64)
	root := central.BeginRound(7, 2520)

	agent := New("agent-0", 64)
	agent.BeginRemote(central.Trace(), 7, 2520, "agent-round", root)
	ex := agent.Start("execute")
	agent.End(ex)
	agent.EndRound()

	central.Inject(agent.Spans())
	central.EndRound()

	spans := central.RoundSpans(7)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	var remote *Span
	for i := range spans {
		if spans[i].Name == "agent-round" {
			remote = &spans[i]
		}
	}
	if remote == nil {
		t.Fatal("agent span missing after Inject")
	}
	if remote.Parent != root {
		t.Fatalf("remote parent = %#x, want %#x", remote.Parent, root)
	}
	if remote.Proc != "agent-0" {
		t.Fatalf("remote proc = %q", remote.Proc)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if id := tr.BeginRound(0, 0); id != 0 {
		t.Fatal("nil tracer returned nonzero ID")
	}
	tr.Start("x")
	tr.StartUnder("y", 1)
	tr.BeginRemote(1, 0, 0, "z", 0)
	tr.End(1)
	tr.EndRound()
	tr.Inject([]Span{{}})
	if tr.Spans() != nil || tr.Root() != 0 || tr.Trace() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer leaked state")
	}
	if tr.Proc() != "" {
		t.Fatal("nil tracer proc")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	tr := New("sim", 16)
	tr.BeginRound(0, 0)
	tr.End(tr.Start("decide"))
	tr.EndRound()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got []Span
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("round-tripped %d spans, want 2", len(got))
	}

	// Empty tracer renders [] not null.
	var empty bytes.Buffer
	if err := New("x", 4).WriteJSON(&empty); err != nil {
		t.Fatal(err)
	}
	if string(bytes.TrimSpace(empty.Bytes())) != "[]" {
		t.Fatalf("empty export = %q, want []", empty.String())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	central := New("central", 64)
	root := central.BeginRound(0, 0)
	agent := New("agent-0", 64)
	agent.BeginRemote(central.Trace(), 0, 0, "agent-round", root)
	agent.EndRound()
	central.Inject(agent.Spans())
	central.EndRound()

	var buf bytes.Buffer
	if err := central.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	var metas, complete, flowS, flowF int
	pids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			metas++
		case "X":
			complete++
			pids[ev["pid"].(float64)] = true
		case "s":
			flowS++
		case "f":
			flowF++
		}
	}
	if metas != 2 {
		t.Errorf("process metadata events = %d, want 2", metas)
	}
	if complete != 2 {
		t.Errorf("complete events = %d, want 2", complete)
	}
	if len(pids) != 2 {
		t.Errorf("distinct pids = %d, want 2", len(pids))
	}
	if flowS != 1 || flowF != 1 {
		t.Errorf("flow events s=%d f=%d, want 1/1 (cross-process link)", flowS, flowF)
	}
}

func TestConcurrentUse(t *testing.T) {
	tr := New("sim", 128)
	tr.BeginRound(0, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := tr.Start("work")
				tr.End(id)
				tr.Spans()
				tr.RoundSpans(0)
			}
		}()
	}
	wg.Wait()
	tr.EndRound()
	seen := map[ID]bool{}
	for _, s := range tr.Spans() {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %#x", s.ID)
		}
		seen[s.ID] = true
	}
}
