package obs

import (
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/obs/span"
)

// Phase names one segment of a scheduling round. The simulation core
// and the distributed central scheduler share one namespace so grid
// sweeps and live deployments report comparable profiles.
type Phase string

// Phases of a scheduling round. The simulation core uses arrivals
// through audit; the distributed central scheduler additionally uses
// dispatch/collect/apply (its execute happens on remote agents).
const (
	PhaseArrivals   Phase = "arrivals"   // admit newly arrived jobs
	PhaseWaterfill  Phase = "waterfill"  // ticket water-filling (policy + fair reference)
	PhaseDecide     Phase = "decide"     // full policy decision
	PhaseTrade      Phase = "trade"      // resource-trading loop inside decide
	PhasePlacement  Phase = "placement"  // gang → device assignment
	PhaseMigrate    Phase = "migrate"    // migration bookkeeping
	PhaseExecute    Phase = "execute"    // advancing job progress
	PhaseAudit      Phase = "audit"      // invariant auditor
	PhaseDispatch   Phase = "dispatch"   // distrib: shipping round plans
	PhaseCollect    Phase = "collect"    // distrib: waiting for agent reports
	PhaseApply      Phase = "apply"      // distrib: applying agent reports
	PhaseFaultSweep Phase = "faultsweep" // injected-fault state sweep (crash, quarantine, repair)
)

// AllPhases lists every phase; the Observer pre-registers each so
// /metrics exposes the full histogram family from the first scrape.
var AllPhases = []Phase{
	PhaseArrivals, PhaseWaterfill, PhaseDecide, PhaseTrade,
	PhasePlacement, PhaseMigrate, PhaseExecute, PhaseAudit,
	PhaseDispatch, PhaseCollect, PhaseApply, PhaseFaultSweep,
}

// phaseBuckets spans sub-microsecond to multi-second phase times.
var phaseBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
}

// Decision is one explained scheduling decision: which job landed
// where, and the structured "why" behind it.
type Decision struct {
	Round int     `json:"round"`
	At    float64 `json:"sim_time_seconds"`
	Job   int64   `json:"job"`
	User  string  `json:"user"`
	Gen   string  `json:"gen"`
	Gang  int     `json:"gang"`
	// Devices are the concrete device IDs the gang was placed on
	// (absent in contexts that only know the generation).
	Devices []int `json:"devices,omitempty"`

	// Reason is how the slot was funded: "credit" (fair-share deficit
	// credit), "backfill" (work-conserving leftover capacity), or
	// "policy" for schedulers that do not explain themselves.
	Reason string `json:"reason"`
	// CreditBefore/CreditAfter are the user's deficit credit on the
	// chosen generation around this decision (credit-funded only).
	CreditBefore float64 `json:"credit_before,omitempty"`
	CreditAfter  float64 `json:"credit_after,omitempty"`

	// Migrated marks a generation/server change this round, with the
	// generation the job came from.
	Migrated bool   `json:"migrated,omitempty"`
	FromGen  string `json:"from_gen,omitempty"`
}

// TradeEvent is one executed resource trade.
type TradeEvent struct {
	Round    int     `json:"round"`
	At       float64 `json:"sim_time_seconds"`
	Buyer    string  `json:"buyer"`
	Seller   string  `json:"seller"`
	Fast     string  `json:"fast"`
	Slow     string  `json:"slow"`
	FastGPUs float64 `json:"fast_gpus"`
	SlowGPUs float64 `json:"slow_gpus"`
	Price    float64 `json:"price"`
}

// RoundEvent is one discrete event the Observer saw during a round:
// an injected fault ("fault") or a distributed-protocol event
// ("protocol").
type RoundEvent struct {
	Kind string `json:"kind"`
	Name string `json:"name"`
}

// ShareSample is one user's usage/fair share pair as published during
// a round.
type ShareSample struct {
	User  string  `json:"user"`
	Usage float64 `json:"usage_frac"`
	Fair  float64 `json:"fair_frac"`
}

// RoundSnapshot is everything the Observer learned about one round,
// handed to a RoundSink (the flight recorder) at EndRound.
type RoundSnapshot struct {
	Round     int                `json:"round"`
	SimAt     float64            `json:"sim_at"`
	Phases    map[string]float64 `json:"phase_seconds,omitempty"`
	Decisions []Decision         `json:"decisions,omitempty"`
	Trades    []TradeEvent       `json:"trades,omitempty"`
	Events    []RoundEvent       `json:"events,omitempty"`
	Shares    []ShareSample      `json:"shares,omitempty"`
	Spans     []span.Span        `json:"spans,omitempty"`
}

// RoundSink consumes per-round snapshots. Implementations must be
// safe for concurrent use with scrapes; the Observer calls
// RecordRound outside its own lock.
type RoundSink interface {
	RecordRound(RoundSnapshot)
}

// Snapshot is the /debug/sched payload: recent explained decisions
// and where round time went.
type Snapshot struct {
	Round             int                `json:"round"`
	SimTimeSeconds    float64            `json:"sim_time_seconds"`
	Rounds            float64            `json:"rounds_total"`
	PhaseTotals       map[string]float64 `json:"phase_totals_seconds"`
	LastRound         map[string]float64 `json:"last_round_seconds"`
	Decisions         []Decision         `json:"decisions"`
	Trades            []TradeEvent       `json:"trades"`
	DecisionsRecorded uint64             `json:"decisions_recorded"`
	TradesRecorded    uint64             `json:"trades_recorded"`
}

// choiceNote is the policy-side half of a decision explanation,
// buffered until the engine knows the concrete devices.
type choiceNote struct {
	reason       string
	creditBefore float64
	creditAfter  float64
}

// DefaultRingSize bounds the decision and trade rings.
const DefaultRingSize = 256

// Observer bundles a metrics registry, the per-round phase profiler,
// and the explained-decision ring. The zero value is not usable; use
// New. A nil *Observer is valid everywhere and does nothing, so
// instrumented code needs no flag checks.
type Observer struct {
	reg *Registry
	now func() time.Time

	roundsTotal    *Counter
	admittedTotal  *Counter
	decisionsTotal *Counter
	migrationsTot  *Counter
	tradesTotal    *Counter
	finishedTotal  *Counter
	unplacedTotal  *Counter
	jobsActive     *Gauge
	jobsPending    *Gauge
	simTime        *Gauge
	phaseHist      map[Phase]*Histogram
	shareUsage     *GaugeVec
	shareFair      *GaugeVec
	protoEvents    *CounterVec
	faultEvents    *CounterVec
	netFaults      map[string]*Counter
	epochGauge     *Gauge
	agentsDegraded *Gauge
	quarServers    *Gauge
	compDeficit    *GaugeVec
	compRepaid     *Counter
	sloRho         *GaugeVec
	sloJCT         *GaugeVec
	sloMakespan    *Gauge

	mu          sync.Mutex
	curRound    int
	curAt       float64
	phaseStarts map[Phase]time.Time
	building    map[Phase]float64 // this round's per-phase seconds
	lastRound   map[Phase]float64
	totals      map[Phase]float64
	pendingWhy  map[int64]choiceNote

	// Span tracing and the per-round sink (flight recorder). The
	// tracer pointer is set once before the run starts and read-only
	// afterwards; phaseSpans maps open phases to their span IDs.
	tracer     *span.Tracer
	sink       RoundSink
	phaseSpans map[Phase]span.ID

	// Per-round accumulation for the sink, reset at BeginRound and
	// flushed at EndRound. Only populated while sink != nil.
	curDecisions []Decision
	curTrades    []TradeEvent
	curEvents    []RoundEvent
	curShares    map[string]ShareSample

	decRing  []Decision
	decNext  int
	decSeen  uint64
	trRing   []TradeEvent
	trNext   int
	trSeen   uint64
	ringSize int
}

// New builds an Observer with DefaultRingSize.
func New() *Observer { return NewSized(DefaultRingSize) }

// NewSized builds an Observer whose decision/trade rings keep the
// last ringSize entries (minimum 1).
func NewSized(ringSize int) *Observer {
	if ringSize < 1 {
		ringSize = 1
	}
	reg := NewRegistry()
	o := &Observer{
		reg:         reg,
		now:         time.Now,
		phaseHist:   make(map[Phase]*Histogram, len(AllPhases)),
		phaseStarts: make(map[Phase]time.Time),
		building:    make(map[Phase]float64),
		lastRound:   make(map[Phase]float64),
		totals:      make(map[Phase]float64),
		pendingWhy:  make(map[int64]choiceNote),
		phaseSpans:  make(map[Phase]span.ID),
		curShares:   make(map[string]ShareSample),
		ringSize:    ringSize,
	}
	o.roundsTotal = reg.Counter("gf_rounds_total", "Scheduling rounds completed.").With()
	o.admittedTotal = reg.Counter("gf_jobs_admitted_total", "Jobs admitted into the active set.").With()
	o.decisionsTotal = reg.Counter("gf_decisions_total", "Job placement decisions recorded.").With()
	o.migrationsTot = reg.Counter("gf_migrations_total", "Job migrations executed.").With()
	o.tradesTotal = reg.Counter("gf_trades_total", "Resource trades executed.").With()
	o.finishedTotal = reg.Counter("gf_jobs_finished_total", "Jobs that reached completion.").With()
	o.unplacedTotal = reg.Counter("gf_unplaced_total", "Scheduled jobs fragmentation left unplaced.").With()
	o.jobsActive = reg.Gauge("gf_jobs_active", "Admitted, unfinished jobs.").With()
	o.jobsPending = reg.Gauge("gf_jobs_pending", "Jobs not yet arrived.").With()
	o.simTime = reg.Gauge("gf_sim_time_seconds", "Simulated (virtual) time.").With()
	hist := reg.Histogram("gf_round_phase_seconds",
		"Wall-clock time spent in each scheduler phase per round.", phaseBuckets, "phase")
	for _, p := range AllPhases {
		o.phaseHist[p] = hist.With(string(p))
	}
	o.shareUsage = reg.Gauge("gf_user_usage_fraction",
		"User's fraction of total occupied GPU-seconds so far.", "user")
	o.shareFair = reg.Gauge("gf_user_fair_fraction",
		"User's fraction under the water-filled fair reference.", "user")
	o.protoEvents = reg.Counter("gf_protocol_events_total",
		"Distributed-protocol events by type.", "event")
	o.faultEvents = reg.Counter("gf_faults_injected_total",
		"Injected fault events by kind (server-down, job-crash, migration-fail, quarantine, degrade).", "kind")
	o.netFaults = map[string]*Counter{
		"drop":      reg.Counter("gf_net_dropped_total", "Messages the network fault injector silently dropped.").With(),
		"dup":       reg.Counter("gf_net_duplicated_total", "Messages the network fault injector delivered twice.").With(),
		"reorder":   reg.Counter("gf_net_reordered_total", "Messages the network fault injector reordered.").With(),
		"delay":     reg.Counter("gf_net_delayed_total", "Messages the network fault injector delayed one round.").With(),
		"corrupt":   reg.Counter("gf_net_corrupted_total", "Messages the network fault injector corrupted in flight.").With(),
		"oneway":    reg.Counter("gf_net_oneway_refused_total", "Sends refused by an injected one-way partition.").With(),
		"partition": reg.Counter("gf_net_partition_refused_total", "Sends refused by an injected full partition.").With(),
	}
	o.epochGauge = reg.Gauge("gf_epoch",
		"Central scheduler epoch; increases across restarts and fences stale protocol traffic.").With()
	o.agentsDegraded = reg.Gauge("gf_agents_degraded",
		"Agents currently unheard-from but still inside their degraded-mode lease.").With()
	o.quarServers = reg.Gauge("gf_servers_quarantined",
		"Servers currently excluded by the quarantine circuit breaker.").With()
	o.compDeficit = reg.Gauge("gf_user_comp_deficit_seconds",
		"Outstanding failure-compensation debt per user, in occupied GPU-seconds.", "user")
	o.compRepaid = reg.Counter("gf_comp_repaid_gpu_seconds_total",
		"Cumulative failure-compensation repaid, in occupied GPU-seconds.").With()
	o.sloRho = reg.Gauge("gf_finish_time_fairness_rho",
		"Finish-time fairness ρ per user (Themis): mean JCT over standalone-time × active users; ≤ 1 is fair.", "user")
	o.sloJCT = reg.Gauge("gf_jct_seconds",
		"Job completion time quantiles over finished jobs, in simulated seconds.", "q")
	o.sloMakespan = reg.Gauge("gf_makespan_seconds",
		"Simulated time at which the last job finished.").With()
	bi := reg.Gauge("gf_build_info",
		"Build metadata; value is always 1.", "goversion", "revision")
	bi.With(runtime.Version(), vcsRevision()).Set(1)
	return o
}

// vcsRevision extracts the VCS commit the binary was built from
// ("unknown" when build info is absent, e.g. under `go test` before
// Go stamps test binaries).
func vcsRevision() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// SetTracer attaches a span tracer; phase starts/ends and round
// boundaries then emit spans automatically. Call before the run
// starts. A nil Observer ignores the call.
func (o *Observer) SetTracer(t *span.Tracer) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.tracer = t
	o.mu.Unlock()
}

// Tracer returns the attached tracer (nil when absent or o is nil).
func (o *Observer) Tracer() *span.Tracer {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.tracer
}

// SetSink attaches a per-round snapshot consumer (the flight
// recorder). Call before the run starts.
func (o *Observer) SetSink(s RoundSink) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.sink = s
	o.mu.Unlock()
}

// SetSLO publishes end-of-run fairness SLO metrics: per-user
// finish-time fairness ρ, JCT quantiles (q is "0.5", "0.95",
// "0.99"), and makespan. Pass a negative value to skip a gauge.
func (o *Observer) SetSLO(rhoByUser map[string]float64, jctByQ map[string]float64, makespan float64) {
	if o == nil {
		return
	}
	users := make([]string, 0, len(rhoByUser))
	for u := range rhoByUser {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		o.sloRho.With(u).Set(rhoByUser[u])
	}
	qs := make([]string, 0, len(jctByQ))
	for q := range jctByQ {
		qs = append(qs, q)
	}
	sort.Strings(qs)
	for _, q := range qs {
		o.sloJCT.With(q).Set(jctByQ[q])
	}
	if makespan >= 0 {
		o.sloMakespan.Set(makespan)
	}
}

// Registry exposes the underlying registry (nil for a nil Observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// BeginRound opens a round at the given simulated time. Explanation
// notes left by jobs that were never placed are discarded here.
func (o *Observer) BeginRound(round int, simNow float64) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.curRound = round
	o.curAt = simNow
	if len(o.pendingWhy) > 0 {
		o.pendingWhy = make(map[int64]choiceNote)
	}
	tracer, sink := o.tracer, o.sink
	if sink != nil {
		o.curDecisions = nil
		o.curTrades = nil
		o.curEvents = nil
		o.curShares = make(map[string]ShareSample)
	}
	o.mu.Unlock()
	tracer.BeginRound(round, simNow)
	o.simTime.Set(simNow)
}

// PhaseStart marks the beginning of a phase span. Spans of one phase
// may be split; their durations accumulate within the round.
func (o *Observer) PhaseStart(p Phase) {
	if o == nil {
		return
	}
	t := o.now()
	o.mu.Lock()
	o.phaseStarts[p] = t
	if o.tracer != nil {
		o.phaseSpans[p] = o.tracer.Start(string(p))
	}
	o.mu.Unlock()
}

// PhaseEnd closes the current span of a phase.
func (o *Observer) PhaseEnd(p Phase) {
	if o == nil {
		return
	}
	t := o.now()
	o.mu.Lock()
	if start, ok := o.phaseStarts[p]; ok {
		o.building[p] += t.Sub(start).Seconds()
		delete(o.phaseStarts, p)
	}
	if id, ok := o.phaseSpans[p]; ok {
		o.tracer.End(id)
		delete(o.phaseSpans, p)
	}
	o.mu.Unlock()
}

// EndRound closes the round: each phase touched this round gets one
// histogram observation, totals roll up, and job gauges refresh.
func (o *Observer) EndRound(active, pending int) {
	if o == nil {
		return
	}
	o.mu.Lock()
	built := o.building
	o.building = make(map[Phase]float64, len(built))
	o.lastRound = built
	phases := make([]Phase, 0, len(built))
	for p, secs := range built {
		o.totals[p] += secs
		phases = append(phases, p)
	}
	tracer, sink := o.tracer, o.sink
	var snap RoundSnapshot
	if sink != nil {
		snap = RoundSnapshot{
			Round:     o.curRound,
			SimAt:     o.curAt,
			Phases:    make(map[string]float64, len(built)),
			Decisions: o.curDecisions,
			Trades:    o.curTrades,
			Events:    o.curEvents,
			Shares:    sortedShares(o.curShares),
		}
		for p, secs := range built {
			snap.Phases[string(p)] = secs
		}
		o.curDecisions = nil
		o.curTrades = nil
		o.curEvents = nil
		o.curShares = make(map[string]ShareSample)
	}
	o.mu.Unlock()
	tracer.EndRound()
	sort.Slice(phases, func(i, j int) bool { return phases[i] < phases[j] })
	for _, p := range phases {
		if h := o.phaseHist[p]; h != nil {
			h.Observe(built[p])
		}
	}
	o.roundsTotal.Inc()
	o.jobsActive.Set(float64(active))
	o.jobsPending.Set(float64(pending))
	if sink != nil {
		if tracer != nil {
			snap.Spans = tracer.RoundSpans(snap.Round)
		}
		sink.RecordRound(snap)
	}
}

// sortedShares linearizes the per-round share map by user.
func sortedShares(m map[string]ShareSample) []ShareSample {
	if len(m) == 0 {
		return nil
	}
	out := make([]ShareSample, 0, len(m))
	for _, s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

// NoteChoice records the policy-side explanation for scheduling one
// job this round; the engine later completes it with the concrete
// devices via RecordPlacement.
func (o *Observer) NoteChoice(job int64, reason string, creditBefore, creditAfter float64) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.pendingWhy[job] = choiceNote{reason: reason, creditBefore: creditBefore, creditAfter: creditAfter}
	o.mu.Unlock()
}

// RecordPlacement finalizes one job's decision for the round,
// merging any policy explanation noted earlier. fromGen is the
// generation the job migrated off ("" when not migrated).
func (o *Observer) RecordPlacement(job int64, user, gen string, gang int, devices []int, migrated bool, fromGen string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	d := Decision{
		Round: o.curRound, At: o.curAt,
		Job: job, User: user, Gen: gen, Gang: gang,
		Devices: devices, Reason: "policy",
		Migrated: migrated, FromGen: fromGen,
	}
	if note, ok := o.pendingWhy[job]; ok {
		d.Reason = note.reason
		d.CreditBefore = note.creditBefore
		d.CreditAfter = note.creditAfter
		delete(o.pendingWhy, job)
	}
	if len(o.decRing) < o.ringSize {
		o.decRing = append(o.decRing, d)
	} else {
		o.decRing[o.decNext] = d
	}
	o.decNext = (o.decNext + 1) % o.ringSize
	o.decSeen++
	if o.sink != nil {
		o.curDecisions = append(o.curDecisions, d)
	}
	o.mu.Unlock()
	o.decisionsTotal.Inc()
	if migrated {
		o.migrationsTot.Inc()
	}
}

// NoteTrade records one executed resource trade.
func (o *Observer) NoteTrade(buyer, seller, fast, slow string, fastGPUs, slowGPUs, price float64) {
	if o == nil {
		return
	}
	o.mu.Lock()
	t := TradeEvent{
		Round: o.curRound, At: o.curAt,
		Buyer: buyer, Seller: seller, Fast: fast, Slow: slow,
		FastGPUs: fastGPUs, SlowGPUs: slowGPUs, Price: price,
	}
	if len(o.trRing) < o.ringSize {
		o.trRing = append(o.trRing, t)
	} else {
		o.trRing[o.trNext] = t
	}
	o.trNext = (o.trNext + 1) % o.ringSize
	o.trSeen++
	if o.sink != nil {
		o.curTrades = append(o.curTrades, t)
	}
	o.mu.Unlock()
	o.tradesTotal.Inc()
}

// NoteAdmitted counts jobs admitted into the active set.
func (o *Observer) NoteAdmitted(n int) {
	if o == nil || n <= 0 {
		return
	}
	o.admittedTotal.Add(float64(n))
}

// NoteFinish counts one completed job.
func (o *Observer) NoteFinish() {
	if o == nil {
		return
	}
	o.finishedTotal.Inc()
}

// NoteUnplaced counts jobs the placer could not fit this round.
func (o *Observer) NoteUnplaced(n int) {
	if o == nil || n <= 0 {
		return
	}
	o.unplacedTotal.Add(float64(n))
}

// SetShare publishes one user's observed and entitled usage
// fractions.
func (o *Observer) SetShare(user string, usageFrac, fairFrac float64) {
	if o == nil {
		return
	}
	o.mu.Lock()
	if o.sink != nil {
		o.curShares[user] = ShareSample{User: user, Usage: usageFrac, Fair: fairFrac}
	}
	o.mu.Unlock()
	o.shareUsage.With(user).Set(usageFrac)
	o.shareFair.With(user).Set(fairFrac)
}

// NoteProtocol counts one distributed-protocol event (plan_sent,
// report_received, report_timeout, register, ...).
func (o *Observer) NoteProtocol(event string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	if o.sink != nil {
		o.curEvents = append(o.curEvents, RoundEvent{Kind: "protocol", Name: event})
	}
	o.mu.Unlock()
	o.protoEvents.With(event).Inc()
}

// NoteFault counts one injected fault event of the given kind.
func (o *Observer) NoteFault(kind string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	if o.sink != nil {
		o.curEvents = append(o.curEvents, RoundEvent{Kind: "fault", Name: kind})
	}
	o.mu.Unlock()
	o.faultEvents.With(kind).Inc()
}

// NoteNet counts one injected network fault by kind (drop, dup,
// reorder, delay, corrupt, oneway, partition). Unknown kinds are
// ignored.
func (o *Observer) NoteNet(kind string) {
	if o == nil {
		return
	}
	c := o.netFaults[kind]
	if c == nil {
		return
	}
	o.mu.Lock()
	if o.sink != nil {
		o.curEvents = append(o.curEvents, RoundEvent{Kind: "net", Name: kind})
	}
	o.mu.Unlock()
	c.Inc()
}

// SetEpoch publishes the central scheduler's current epoch.
func (o *Observer) SetEpoch(e int) {
	if o == nil {
		return
	}
	o.epochGauge.Set(float64(e))
}

// SetDegradedAgents publishes how many agents are currently
// unheard-from but still covered by their lease.
func (o *Observer) SetDegradedAgents(n int) {
	if o == nil {
		return
	}
	o.agentsDegraded.Set(float64(n))
}

// Epoch returns the published central epoch (0 for a nil Observer or
// before any SetEpoch).
func (o *Observer) Epoch() float64 {
	if o == nil {
		return 0
	}
	return o.epochGauge.Value()
}

// DegradedAgents returns the published degraded-agent count.
func (o *Observer) DegradedAgents() float64 {
	if o == nil {
		return 0
	}
	return o.agentsDegraded.Value()
}

// ProtocolEvents returns the current count of one protocol event
// (NoteProtocol's counter), for harness assertions. Zero for a nil
// Observer.
func (o *Observer) ProtocolEvents(event string) float64 {
	if o == nil {
		return 0
	}
	return o.protoEvents.With(event).Value()
}

// NetFaults returns the current count of one injected network fault
// kind. Zero for a nil Observer or unknown kind.
func (o *Observer) NetFaults(kind string) float64 {
	if o == nil {
		return 0
	}
	c := o.netFaults[kind]
	if c == nil {
		return 0
	}
	return c.Value()
}

// SetQuarantined publishes the current quarantined-server count.
func (o *Observer) SetQuarantined(n int) {
	if o == nil {
		return
	}
	o.quarServers.Set(float64(n))
}

// SetCompDeficit publishes one user's outstanding compensation debt.
func (o *Observer) SetCompDeficit(user string, secs float64) {
	if o == nil {
		return
	}
	o.compDeficit.With(user).Set(secs)
}

// NoteRepaid accumulates repaid compensation GPU-seconds.
func (o *Observer) NoteRepaid(secs float64) {
	if o == nil || secs <= 0 {
		return
	}
	o.compRepaid.Add(secs)
}

// PhaseTotals returns cumulative seconds per phase (phases never
// touched are omitted). Nil for a nil Observer.
func (o *Observer) PhaseTotals() map[string]float64 {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]float64, len(o.totals))
	for p, s := range o.totals {
		out[string(p)] = s
	}
	return out
}

// Snapshot captures the introspection payload, decisions and trades
// oldest-first.
func (o *Observer) Snapshot() Snapshot {
	if o == nil {
		return Snapshot{}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	snap := Snapshot{
		Round:             o.curRound,
		SimTimeSeconds:    o.curAt,
		PhaseTotals:       make(map[string]float64, len(o.totals)),
		LastRound:         make(map[string]float64, len(o.lastRound)),
		Decisions:         ringSlice(o.decRing, o.decNext, o.ringSize),
		Trades:            ringSlice(o.trRing, o.trNext, o.ringSize),
		DecisionsRecorded: o.decSeen,
		TradesRecorded:    o.trSeen,
	}
	snap.Rounds = o.roundsTotal.Value()
	for p, s := range o.totals {
		snap.PhaseTotals[string(p)] = s
	}
	for p, s := range o.lastRound {
		snap.LastRound[string(p)] = s
	}
	return snap
}

// ringSlice linearizes a ring into oldest-first order.
func ringSlice[T any](ring []T, next, size int) []T {
	out := make([]T, 0, len(ring))
	if len(ring) < size {
		return append(out, ring...)
	}
	out = append(out, ring[next:]...)
	return append(out, ring[:next]...)
}
