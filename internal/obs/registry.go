// Package obs is the live-observability core: a dependency-free
// metrics registry with Prometheus text exposition, a per-round phase
// profiler, a bounded ring of explained scheduling decisions, and an
// opt-in HTTP introspection surface (/metrics, /healthz,
// /debug/sched).
//
// The package deliberately imports nothing from the rest of the
// repository — instrumented packages (core, distrib) hand it plain
// ints and strings — so it can sit below every layer without cycles.
// All Observer methods are nil-receiver safe: an uninstrumented run
// passes a nil *Observer and pays only a nil check per call site,
// and instrumentation never feeds back into simulation state, so a
// fixed-seed run is byte-identical with observability on or off.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Safe for concurrent use: simulation threads
// update series while an HTTP handler scrapes.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help string
	typ        metricType
	labels     []string
	buckets    []float64 // histogramType only

	mu     sync.Mutex
	series map[string]*series
}

type series struct {
	mu        sync.Mutex
	labelVals []string

	val float64 // counter / gauge

	counts []uint64 // histogram: cumulative per bucket excl. +Inf
	sum    float64
	n      uint64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, typ metricType, buckets []float64, labels []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q", l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with different type or labels", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...),
		series: make(map[string]*series),
	}
	if typ == histogramType {
		f.buckets = append([]float64(nil), buckets...)
		sort.Float64s(f.buckets)
	}
	r.families[name] = f
	return f
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (f *family) get(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelVals: append([]string(nil), vals...)}
		if f.typ == histogramType {
			s.counts = make([]uint64, len(f.buckets))
		}
		f.series[key] = s
	}
	return s
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, counterType, nil, labels)}
}

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, gaugeType, nil, labels)}
}

// Histogram registers (or fetches) a histogram family with the given
// upper bucket bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, histogramType, buckets, labels)}
}

// Counter is one counter series.
type Counter struct{ s *series }

// Gauge is one gauge series.
type Gauge struct{ s *series }

// Histogram is one histogram series.
type Histogram struct {
	s       *series
	buckets []float64
}

// With resolves one series; creating it (at zero) if absent.
func (v *CounterVec) With(vals ...string) *Counter { return &Counter{v.f.get(vals)} }

// With resolves one series; creating it (at zero) if absent.
func (v *GaugeVec) With(vals ...string) *Gauge { return &Gauge{v.f.get(vals)} }

// With resolves one series; creating it (at zero) if absent.
func (v *HistogramVec) With(vals ...string) *Histogram {
	return &Histogram{v.f.get(vals), v.f.buckets}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored (counters
// are monotone).
func (c *Counter) Add(d float64) {
	if d < 0 {
		return
	}
	c.s.mu.Lock()
	c.s.val += d
	c.s.mu.Unlock()
}

// Value reads the counter (for tests).
func (c *Counter) Value() float64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.val
}

// Set assigns the gauge.
func (g *Gauge) Set(v float64) {
	g.s.mu.Lock()
	g.s.val = v
	g.s.mu.Unlock()
}

// Add shifts the gauge.
func (g *Gauge) Add(d float64) {
	g.s.mu.Lock()
	g.s.val += d
	g.s.mu.Unlock()
}

// Value reads the gauge (for tests).
func (g *Gauge) Value() float64 {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.val
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.s.mu.Lock()
	for i, ub := range h.buckets {
		if v <= ub {
			h.s.counts[i]++
		}
	}
	h.s.sum += v
	h.s.n++
	h.s.mu.Unlock()
}

// Count returns the number of observations (for tests).
func (h *Histogram) Count() uint64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.n
}

// Sum returns the sum of observations (for tests).
func (h *Histogram) Sum() float64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.sum
}

// WritePrometheus renders every family in text exposition format
// (version 0.0.4). Families are emitted in name order and series in
// label-value order, so output is deterministic for a fixed state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) render(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	srs := make([]*series, 0, len(keys))
	for _, k := range keys {
		srs = append(srs, f.series[k])
	}
	f.mu.Unlock()

	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, s := range srs {
		s.mu.Lock()
		switch f.typ {
		case histogramType:
			for i, ub := range f.buckets {
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(b, f.labels, s.labelVals, "le", formatFloat(ub))
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(s.counts[i], 10))
				b.WriteByte('\n')
			}
			b.WriteString(f.name)
			b.WriteString("_bucket")
			writeLabels(b, f.labels, s.labelVals, "le", "+Inf")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(s.n, 10))
			b.WriteByte('\n')
			b.WriteString(f.name)
			b.WriteString("_sum")
			writeLabels(b, f.labels, s.labelVals, "", "")
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.sum))
			b.WriteByte('\n')
			b.WriteString(f.name)
			b.WriteString("_count")
			writeLabels(b, f.labels, s.labelVals, "", "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(s.n, 10))
			b.WriteByte('\n')
		default:
			b.WriteString(f.name)
			writeLabels(b, f.labels, s.labelVals, "", "")
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.val))
			b.WriteByte('\n')
		}
		s.mu.Unlock()
	}
}

// writeLabels renders {k="v",...}; extraK/extraV append one more pair
// (used for histogram le). Nothing is written when there are no pairs.
func writeLabels(b *strings.Builder, keys, vals []string, extraK, extraV string) {
	if len(keys) == 0 && extraK == "" {
		return
	}
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraV))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }
