package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilObserverIsSafe exercises every instrumentation entry point
// on a nil receiver — the disabled path used by uninstrumented runs.
func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	o.BeginRound(1, 0)
	o.PhaseStart(PhaseDecide)
	o.PhaseEnd(PhaseDecide)
	o.NoteChoice(1, "credit", 2, 1)
	o.RecordPlacement(1, "u", "V100", 1, []int{0}, true, "K80")
	o.NoteTrade("a", "b", "V100", "K80", 1, 2, 1.5)
	o.NoteFinish()
	o.NoteUnplaced(3)
	o.SetShare("u", 0.5, 0.5)
	o.NoteProtocol("plan_sent")
	o.EndRound(0, 0)
	if o.Registry() != nil {
		t.Error("nil observer returned a registry")
	}
	if o.PhaseTotals() != nil {
		t.Error("nil observer returned phase totals")
	}
	if s := o.Snapshot(); len(s.Decisions) != 0 {
		t.Error("nil observer returned decisions")
	}
}

func TestPhaseProfiling(t *testing.T) {
	o := New()
	// Deterministic fake clock: each call advances 1 ms.
	var tick int64
	o.now = func() time.Time {
		tick++
		return time.Unix(0, tick*int64(time.Millisecond))
	}

	o.BeginRound(1, 360)
	o.PhaseStart(PhaseDecide) // t=1ms
	o.PhaseEnd(PhaseDecide)   // t=2ms → 1ms
	o.PhaseStart(PhaseAudit)  // split span: two 1ms segments
	o.PhaseEnd(PhaseAudit)
	o.PhaseStart(PhaseAudit)
	o.PhaseEnd(PhaseAudit)
	o.EndRound(4, 2)

	totals := o.PhaseTotals()
	if d := totals[string(PhaseDecide)]; d < 0.0009 || d > 0.0011 {
		t.Errorf("decide total = %v, want ~1ms", d)
	}
	if d := totals[string(PhaseAudit)]; d < 0.0019 || d > 0.0021 {
		t.Errorf("audit total = %v, want ~2ms (split spans accumulate)", d)
	}
	// One histogram observation per touched phase per round.
	if n := o.phaseHist[PhaseAudit].Count(); n != 1 {
		t.Errorf("audit observations = %d, want 1", n)
	}
	if n := o.phaseHist[PhaseExecute].Count(); n != 0 {
		t.Errorf("untouched phase observed %d times", n)
	}

	snap := o.Snapshot()
	if snap.Round != 1 || snap.SimTimeSeconds != 360 || snap.Rounds != 1 {
		t.Errorf("snapshot header = %+v", snap)
	}
	if snap.LastRound[string(PhaseDecide)] == 0 {
		t.Error("last-round timings missing decide")
	}

	// PhaseEnd without a start is a no-op, not a crash.
	o.PhaseEnd(PhaseTrade)
}

func TestPhaseHistogramsPreRegistered(t *testing.T) {
	o := New()
	var b strings.Builder
	if err := o.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, p := range AllPhases {
		if !strings.Contains(out, `gf_round_phase_seconds_bucket{phase="`+string(p)+`"`) {
			t.Errorf("phase %s not pre-registered in /metrics output", p)
		}
	}
}

func TestDecisionRingMergesPolicyNotes(t *testing.T) {
	o := NewSized(3)
	o.BeginRound(7, 2520)
	o.NoteChoice(42, "credit", 3.5, 1.5)
	o.RecordPlacement(42, "alice", "V100", 2, []int{4, 5}, true, "K80")
	o.RecordPlacement(43, "bob", "K80", 1, []int{0}, false, "")

	snap := o.Snapshot()
	if len(snap.Decisions) != 2 {
		t.Fatalf("decisions = %d", len(snap.Decisions))
	}
	d := snap.Decisions[0]
	if d.Round != 7 || d.Job != 42 || d.Reason != "credit" ||
		d.CreditBefore != 3.5 || d.CreditAfter != 1.5 ||
		!d.Migrated || d.FromGen != "K80" || len(d.Devices) != 2 {
		t.Errorf("merged decision = %+v", d)
	}
	if snap.Decisions[1].Reason != "policy" {
		t.Errorf("unexplained decision reason = %q, want policy", snap.Decisions[1].Reason)
	}

	// Overflow keeps the newest entries, oldest-first.
	o.RecordPlacement(44, "c", "K80", 1, nil, false, "")
	o.RecordPlacement(45, "d", "K80", 1, nil, false, "")
	snap = o.Snapshot()
	if len(snap.Decisions) != 3 || snap.Decisions[0].Job != 43 || snap.Decisions[2].Job != 45 {
		t.Errorf("ring overflow wrong: %+v", snap.Decisions)
	}
	if snap.DecisionsRecorded != 4 {
		t.Errorf("recorded = %d, want 4", snap.DecisionsRecorded)
	}
}

func TestStaleChoiceNotesDroppedAtRoundStart(t *testing.T) {
	o := New()
	o.BeginRound(1, 0)
	o.NoteChoice(9, "credit", 1, 0) // job 9 ends up unplaced
	o.BeginRound(2, 360)
	o.RecordPlacement(9, "u", "K80", 1, nil, false, "")
	if d := o.Snapshot().Decisions[0]; d.Reason != "policy" {
		t.Errorf("stale note survived round boundary: %+v", d)
	}
}

func TestTradeRingAndCounters(t *testing.T) {
	o := New()
	o.BeginRound(3, 1080)
	o.NoteTrade("fastuser", "slowuser", "V100", "K80", 2, 3.1, 1.55)
	o.NoteFinish()
	o.NoteUnplaced(2)
	o.SetShare("fastuser", 0.6, 0.5)

	snap := o.Snapshot()
	if len(snap.Trades) != 1 || snap.Trades[0].Buyer != "fastuser" || snap.Trades[0].Price != 1.55 {
		t.Errorf("trades = %+v", snap.Trades)
	}
	var b strings.Builder
	_ = o.Registry().WritePrometheus(&b) // strings.Builder writes cannot fail
	out := b.String()
	for _, want := range []string{
		"gf_trades_total 1",
		"gf_jobs_finished_total 1",
		"gf_unplaced_total 2",
		`gf_user_usage_fraction{user="fastuser"} 0.6`,
		`gf_user_fair_fraction{user="fastuser"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestConcurrentScrape races instrumentation against exposition —
// the live-server situation. Run under -race in CI.
func TestConcurrentScrape(t *testing.T) {
	o := New()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			o.BeginRound(i, float64(i))
			o.PhaseStart(PhaseExecute)
			o.PhaseEnd(PhaseExecute)
			o.RecordPlacement(int64(i), "u", "K80", 1, []int{0}, false, "")
			o.NoteProtocol("dup_dropped")
			o.NoteNet("drop")
			o.NoteNet("dup")
			o.NoteNet("reorder")
			o.NoteNet("corrupt")
			o.SetEpoch(1 + i%3)
			o.SetDegradedAgents(i % 2)
			o.EndRound(1, 0)
		}
	}()
	var last string
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := o.Registry().WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		last = b.String()
		o.Snapshot()
	}
	close(stop)
	wg.Wait()
	// The partition-tolerance metrics are part of the scrape surface.
	for _, want := range []string{
		"gf_net_dropped_total", "gf_net_duplicated_total",
		"gf_net_reordered_total", "gf_net_corrupted_total",
		"gf_epoch", "gf_agents_degraded",
	} {
		if !strings.Contains(last, want) {
			t.Errorf("missing %q in scrape:\n%s", want, last)
		}
	}
}
