package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestEndpoints(t *testing.T) {
	o := New()
	o.BeginRound(1, 360)
	o.PhaseStart(PhaseDecide)
	o.PhaseEnd(PhaseDecide)
	o.RecordPlacement(5, "alice", "V100", 1, []int{2}, false, "")
	o.EndRound(1, 0)

	srv := httptest.NewServer(Handler(o))
	defer srv.Close()

	code, body, _ := get(t, srv, "/healthz")
	if code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body, ctype := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("content type = %q", ctype)
	}
	for _, want := range []string{
		"# TYPE gf_round_phase_seconds histogram",
		`gf_round_phase_seconds_bucket{phase="decide"`,
		"gf_rounds_total 1",
		"gf_decisions_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body, ctype = get(t, srv, "/debug/sched")
	if code != 200 || !strings.Contains(ctype, "application/json") {
		t.Fatalf("/debug/sched = %d %q", code, ctype)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if snap.Round != 1 || len(snap.Decisions) != 1 || snap.Decisions[0].User != "alice" {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.PhaseTotals["decide"] <= 0 {
		t.Errorf("phase totals missing decide: %+v", snap.PhaseTotals)
	}
}

func TestMetricsWithNilObserver(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	code, _, _ := get(t, srv, "/metrics")
	if code != http.StatusServiceUnavailable {
		t.Errorf("/metrics on nil observer = %d, want 503", code)
	}
	code, body, _ := get(t, srv, "/debug/sched")
	if code != 200 {
		t.Errorf("/debug/sched on nil observer = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Errorf("invalid JSON: %v", err)
	}
}

func TestServe(t *testing.T) {
	o := New()
	srv, addr, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz over real listener = %d", resp.StatusCode)
	}
}
