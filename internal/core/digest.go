package core

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"

	"repro/internal/job"
)

// CanonicalDigest renders a run outcome in a canonical text form
// (sorted users, fixed float formatting) and hashes it with SHA-256.
// Two runs of the same seed must produce identical digests — this is
// the engine's reproducibility contract, shared by the soak harness
// (internal/soak) and the rescan-vs-incremental differential tests.
//
// The digest covers counters first (rounds, trace events, finishes,
// migrations, fault statistics), then every user's occupied / fair /
// useful GPU-seconds and outstanding compensation deficit at %.6f.
// Because per-user floats are accumulated in sorted order inside the
// engine, equal digests mean bitwise-equal accumulation histories,
// not just nearby totals.
func CanonicalDigest(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rounds=%d events=%d finished=%d unfinished=%d migrations=%d\n",
		res.Rounds, res.Log.Len(), len(res.Finished), res.Unfinished, res.Migrations)
	fmt.Fprintf(&b, "crashes=%d migfail=%d quarantines=%d repaid=%.6f\n",
		res.Crashes, res.MigrationFailures, res.Quarantines, res.CompRepaidGPUSeconds)

	users := make(map[job.UserID]bool)
	occ := res.TotalUsageByUser()
	for u := range occ {
		users[u] = true
	}
	for u := range res.FairUsageByUser {
		users[u] = true
	}
	for u := range res.CompDeficitByUser {
		users[u] = true
	}
	sorted := make([]job.UserID, 0, len(users))
	for u := range users {
		sorted = append(sorted, u)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, u := range sorted {
		fmt.Fprintf(&b, "user=%s occ=%.6f fair=%.6f useful=%.6f deficit=%.6f\n",
			u, occ[u], res.FairUsageByUser[u], res.UsefulByUser[u], res.CompDeficitByUser[u])
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(b.String())))
}
