package core

import (
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/placement"
	"repro/internal/simclock"
	"repro/internal/workload"
)

var zoo = workload.DefaultZoo()

func k80Cluster(servers, gpus int) *gpu.Cluster {
	return gpu.MustNew(gpu.Spec{Gen: gpu.K80, Servers: servers, GPUsPerSrv: gpus})
}

func mixedCluster() *gpu.Cluster {
	return gpu.MustNew(
		gpu.Spec{Gen: gpu.K80, Servers: 2, GPUsPerSrv: 4},
		gpu.Spec{Gen: gpu.V100, Servers: 2, GPUsPerSrv: 4},
	)
}

func runFair(t *testing.T, cfg Config, fcfg FairConfig, until simclock.Time) *Result {
	t.Helper()
	sim, err := New(cfg, MustNewFairPolicy(fcfg))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(until)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func shares(res *Result) map[job.UserID]float64 {
	return metrics.ShareFractions(res.TotalUsageByUser())
}

func TestConfigValidation(t *testing.T) {
	good := Config{
		Cluster: k80Cluster(1, 4),
		Specs:   workload.BatchJobs("u", zoo.MustGet("vae"), 2, 1, 1),
	}
	good.Specs, _ = workload.AssignIDs(good.Specs)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Specs: good.Specs},     // nil cluster
		{Cluster: good.Cluster}, // no jobs
		{Cluster: good.Cluster, Specs: []job.Spec{good.Specs[0], good.Specs[0]}}, // dup IDs
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// Gang bigger than the cluster.
	huge := workload.BatchJobs("u", zoo.MustGet("vae"), 1, 99, 1)
	huge, _ = workload.AssignIDs(huge)
	if (Config{Cluster: good.Cluster, Specs: huge}).Validate() == nil {
		t.Error("oversized gang accepted")
	}
	if _, err := New(good, nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestSingleJobRunsToCompletion(t *testing.T) {
	specs := workload.BatchJobs("alice", zoo.MustGet("resnet50"), 1, 2, 1.0) // 1h standalone on K80
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{Cluster: k80Cluster(1, 4), Specs: specs, Seed: 1},
		FairConfig{}, simclock.Time(2*simclock.Day))
	if len(res.Finished) != 1 || res.Unfinished != 0 {
		t.Fatalf("finished=%d unfinished=%d", len(res.Finished), res.Unfinished)
	}
	j := res.Finished[0]
	// JCT ≈ standalone 3600 s plus one resume overhead, rounded up by
	// quantum granularity at most.
	if jct := j.JCT(); jct < 3600 || jct > 3600+2*360 {
		t.Errorf("JCT = %v, want ≈3600s", jct)
	}
	if j.Migrations() != 0 {
		t.Errorf("solo job migrated %d times", j.Migrations())
	}
	if res.Policy != "gandiva-fair-no-trade" {
		t.Errorf("policy name = %q", res.Policy)
	}
}

func TestEqualUsersEqualShares(t *testing.T) {
	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("a", zoo.MustGet("lstm"), 6, 1, 200)...)
	specs = append(specs, workload.BatchJobs("b", zoo.MustGet("gru"), 6, 1, 200)...)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{Cluster: k80Cluster(2, 4), Specs: specs, Seed: 2},
		FairConfig{}, simclock.Time(12*simclock.Hour))
	sh := shares(res)
	if math.Abs(sh["a"]-0.5) > 0.03 || math.Abs(sh["b"]-0.5) > 0.03 {
		t.Fatalf("shares = %v, want ≈0.5 each", sh)
	}
	if u := res.Utilization.Fraction(); u < 0.95 {
		t.Errorf("utilization %v, want ≥0.95 under full contention", u)
	}
}

func TestTicketProportionalShares(t *testing.T) {
	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("a", zoo.MustGet("lstm"), 8, 1, 200)...)
	specs = append(specs, workload.BatchJobs("b", zoo.MustGet("gru"), 8, 1, 200)...)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{
		Cluster: k80Cluster(2, 4),
		Specs:   specs,
		Tickets: map[job.UserID]float64{"a": 3, "b": 1},
		Seed:    3,
	}, FairConfig{}, simclock.Time(12*simclock.Hour))
	sh := shares(res)
	if math.Abs(sh["a"]-0.75) > 0.04 || math.Abs(sh["b"]-0.25) > 0.04 {
		t.Fatalf("shares = %v, want 0.75/0.25", sh)
	}
}

func TestSmallVsBigJobsUserFairness(t *testing.T) {
	// The paper's headline fairness scenario: a user with many small
	// jobs must not crowd out a user with few big gangs.
	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("many", zoo.MustGet("vae"), 16, 1, 400)...)
	specs = append(specs, workload.BatchJobs("big", zoo.MustGet("resnet50"), 2, 8, 400)...)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{Cluster: k80Cluster(8, 4), Specs: specs, Seed: 4},
		FairConfig{}, simclock.Time(24*simclock.Hour))
	sh := shares(res)
	if math.Abs(sh["many"]-0.5) > 0.06 || math.Abs(sh["big"]-0.5) > 0.06 {
		t.Fatalf("shares = %v, want ≈0.5 each despite gang asymmetry", sh)
	}
}

func TestWorkConservationSoloUser(t *testing.T) {
	specs := workload.BatchJobs("solo", zoo.MustGet("squeezenet"), 10, 1, 100)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{Cluster: k80Cluster(2, 4), Specs: specs, Seed: 5},
		FairConfig{}, simclock.Time(6*simclock.Hour))
	if u := res.Utilization.Fraction(); u < 0.95 {
		t.Fatalf("solo user utilization %v, want ≥0.95 (work conservation)", u)
	}
}

func TestShareReclaimedOnDeparture(t *testing.T) {
	// User a's jobs finish around hour 4 (2 jobs × 1-GPU × 8 K80-hours
	// at half the 4-GPU cluster... sized so they finish mid-run);
	// user b then inherits the whole cluster.
	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("a", zoo.MustGet("lstm"), 2, 1, 2)...)
	specs = append(specs, workload.BatchJobs("b", zoo.MustGet("gru"), 4, 1, 100)...)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{
		Cluster:        k80Cluster(1, 4),
		Specs:          specs,
		Seed:           6,
		TimelineWindow: simclock.Hour,
	}, FairConfig{}, simclock.Time(10*simclock.Hour))
	// a had 2 jobs × 2h standalone; with ≥half share they finish by
	// hour ~4. Afterwards b must hold ~100% of a fully busy cluster.
	ws := res.Timeline.Windows()
	if len(ws) < 8 {
		t.Fatalf("only %d timeline windows", len(ws))
	}
	last := ws[len(ws)-1]
	fr := metrics.ShareFractions(last.ByUser)
	if fr["b"] < 0.99 {
		t.Fatalf("after a departed, b's share = %v, want ≈1", fr["b"])
	}
	var busy float64
	for _, u := range job.SortedUsers(last.ByUser) {
		busy += last.ByUser[u]
	}
	if busy < 0.95*4*simclock.Hour {
		t.Fatalf("cluster not fully used after departure: %v GPU-s in last window", busy)
	}
	if len(res.Finished) < 2 {
		t.Fatalf("a's jobs did not finish")
	}
}

func TestTradingWinWin(t *testing.T) {
	// mem-bound user (vae ≈1.22× on V100) and compute-dense user
	// (resnext50 ≈4.46×) share a K80+V100 cluster. Trading must raise
	// both users' throughput versus the heterogeneity-blind fair
	// share.
	build := func() Config {
		var specs []job.Spec
		specs = append(specs, workload.BatchJobs("mem", zoo.MustGet("vae"), 12, 1, 300)...)
		specs = append(specs, workload.BatchJobs("dense", zoo.MustGet("resnext50"), 12, 1, 300)...)
		specs, _ = workload.AssignIDs(specs)
		return Config{Cluster: mixedCluster(), Specs: specs, Seed: 7}
	}
	horizon := simclock.Time(24 * simclock.Hour)
	blind := runFair(t, build(), FairConfig{EnableTrading: false}, horizon)
	traded := runFair(t, build(), FairConfig{EnableTrading: true}, horizon)

	if traded.TradeCount == 0 {
		t.Fatal("no trades executed")
	}
	for _, u := range []job.UserID{"mem", "dense"} {
		b, tr := blind.ThroughputByUser[u], traded.ThroughputByUser[u]
		if tr < b*0.99 {
			t.Errorf("user %s throughput fell with trading: %v → %v", u, b, tr)
		}
	}
	// Theory for this fixture: blind share is 4 K80 + 4 V100 per
	// user; the trade is capped by dense's K80 purse (4 GPUs) at the
	// geometric price α≈2.3, moving δ≈1.73 V100s, so dense's value
	// goes 21.8→25.6 K80-equivalents ⇒ ≈1.17×.
	if gain := traded.ThroughputByUser["dense"] / blind.ThroughputByUser["dense"]; gain < 1.10 {
		t.Errorf("dense user's trading gain = %v, want ≥1.10 (V100 concentration)", gain)
	}
}

func TestDeterminism(t *testing.T) {
	build := func() Config {
		specs := workload.MustGenerate(zoo, workload.Config{
			Seed: 11,
			Users: []workload.UserSpec{
				{User: "a", NumJobs: 20, ArrivalRatePerHour: 2},
				{User: "b", NumJobs: 20, ArrivalRatePerHour: 2},
			},
		})
		return Config{Cluster: mixedCluster(), Specs: specs, Seed: 11}
	}
	run := func() *Result {
		return runFair(t, build(), FairConfig{EnableTrading: true}, simclock.Time(20*simclock.Hour))
	}
	r1, r2 := run(), run()
	if len(r1.Finished) != len(r2.Finished) || r1.Migrations != r2.Migrations ||
		r1.TradeCount != r2.TradeCount || r1.Rounds != r2.Rounds {
		t.Fatalf("runs differ: %d/%d fin, %d/%d mig, %d/%d trades",
			len(r1.Finished), len(r2.Finished), r1.Migrations, r2.Migrations,
			r1.TradeCount, r2.TradeCount)
	}
	u1, u2 := r1.TotalUsageByUser(), r2.TotalUsageByUser()
	for u, v := range u1 {
		if math.Abs(u2[u]-v) > 1e-6 {
			t.Fatalf("usage differs for %s: %v vs %v", u, v, u2[u])
		}
	}
	for i := range r1.Finished {
		if r1.Finished[i].ID != r2.Finished[i].ID ||
			r1.Finished[i].FinishTime() != r2.Finished[i].FinishTime() {
			t.Fatalf("finish order/time differs at %d", i)
		}
	}
}

func TestArrivalFastForward(t *testing.T) {
	specs := workload.BatchJobs("late", zoo.MustGet("vae"), 1, 1, 0.5)
	specs[0].Arrival = simclock.Time(50 * simclock.Hour)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{Cluster: k80Cluster(1, 4), Specs: specs, Seed: 8},
		FairConfig{}, simclock.Time(60*simclock.Hour))
	if len(res.Finished) != 1 {
		t.Fatalf("late job did not finish")
	}
	// The engine must skip the idle 50 hours, not grind through them:
	// ~0.5 h of work ⇒ a handful of rounds.
	if res.Rounds > 20 {
		t.Errorf("engine ran %d rounds, idle fast-forward broken", res.Rounds)
	}
	if jct := res.Finished[0].JCT(); jct > simclock.Hour {
		t.Errorf("late job JCT = %v, want <1h", jct)
	}
}

func TestHorizonStopsUnfinishedJobs(t *testing.T) {
	specs := workload.BatchJobs("u", zoo.MustGet("transformer"), 2, 1, 100)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{Cluster: k80Cluster(1, 2), Specs: specs, Seed: 9},
		FairConfig{}, simclock.Time(2*simclock.Hour))
	if res.Unfinished != 2 {
		t.Fatalf("unfinished = %d, want 2", res.Unfinished)
	}
	if res.End > simclock.Time(2*simclock.Hour)+360 {
		t.Errorf("sim ran past horizon: %v", res.End)
	}
}

func TestBadHorizon(t *testing.T) {
	specs := workload.BatchJobs("u", zoo.MustGet("vae"), 1, 1, 1)
	specs, _ = workload.AssignIDs(specs)
	sim, err := New(Config{Cluster: k80Cluster(1, 1), Specs: specs}, MustNewFairPolicy(FairConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(0); err == nil {
		t.Error("zero horizon accepted")
	}
}

// badPolicy lets tests drive the engine's decision validation.
type badPolicy struct {
	decide func(st *RoundState) Decision
}

func (b *badPolicy) Name() string                   { return "bad" }
func (b *badPolicy) Decide(st *RoundState) Decision { return b.decide(st) }
func (b *badPolicy) Executed(*ExecReport)           {}
func (b *badPolicy) JobFinished(job.ID)             {}

func TestDecisionValidation(t *testing.T) {
	specs := workload.BatchJobs("u", zoo.MustGet("vae"), 3, 1, 10)
	specs, _ = workload.AssignIDs(specs)
	cfg := Config{Cluster: k80Cluster(1, 2), Specs: specs, Seed: 10}

	cases := map[string]func(st *RoundState) Decision{
		"overcommit": func(st *RoundState) Decision {
			var run []placement.Request
			for _, j := range st.Jobs {
				run = append(run, placement.Request{Job: j, Gen: gpu.K80})
			}
			return Decision{Run: run} // 3 > capacity 2
		},
		"duplicate": func(st *RoundState) Decision {
			return Decision{Run: []placement.Request{
				{Job: st.Jobs[0], Gen: gpu.K80},
				{Job: st.Jobs[0], Gen: gpu.K80},
			}}
		},
		"wrong generation": func(st *RoundState) Decision {
			return Decision{Run: []placement.Request{{Job: st.Jobs[0], Gen: gpu.V100}}}
		},
		"unknown job": func(st *RoundState) Decision {
			ghost := job.MustNew(job.Spec{ID: 999, User: "x", Perf: zoo.MustGet("vae"), Gang: 1, TotalMB: 1})
			return Decision{Run: []placement.Request{{Job: ghost, Gen: gpu.K80}}}
		},
	}
	for name, decide := range cases {
		sim, err := New(cfg, &badPolicy{decide: decide})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(simclock.Time(simclock.Hour)); err == nil {
			t.Errorf("%s decision accepted", name)
		}
	}
}

func TestNoMigrationAblationRuns(t *testing.T) {
	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("a", zoo.MustGet("vae"), 6, 1, 50)...)
	specs = append(specs, workload.BatchJobs("b", zoo.MustGet("resnext50"), 6, 1, 50)...)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{
		Cluster:          mixedCluster(),
		Specs:            specs,
		DisableMigration: true,
		Seed:             12,
	}, FairConfig{EnableTrading: true}, simclock.Time(10*simclock.Hour))
	if res.Migrations != 0 {
		t.Fatalf("migrations = %d with migration disabled", res.Migrations)
	}
}

func TestBigGangNoStarvationEndToEnd(t *testing.T) {
	// One user with a full-cluster 8-GPU gang vs one with eight
	// 1-GPU jobs: the credit mechanism must deliver ≈half the GPU
	// time to each despite the gang never fitting alongside anything.
	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("big", zoo.MustGet("resnet50"), 1, 8, 300)...)
	specs = append(specs, workload.BatchJobs("small", zoo.MustGet("vae"), 8, 1, 300)...)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{Cluster: k80Cluster(2, 4), Specs: specs, Seed: 13},
		FairConfig{}, simclock.Time(24*simclock.Hour))
	sh := shares(res)
	if math.Abs(sh["big"]-0.5) > 0.06 || math.Abs(sh["small"]-0.5) > 0.06 {
		t.Fatalf("shares = %v, want ≈0.5 each", sh)
	}
}

func TestTraceLogPopulated(t *testing.T) {
	specs := workload.BatchJobs("u", zoo.MustGet("dcgan"), 2, 1, 0.5)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{Cluster: k80Cluster(1, 2), Specs: specs, Seed: 14},
		FairConfig{}, simclock.Time(4*simclock.Hour))
	if n := len(res.Log.Filter("arrival")); n != 2 {
		t.Errorf("%d arrival events, want 2", n)
	}
	if n := len(res.Log.Filter("finish")); n != 2 {
		t.Errorf("%d finish events, want 2", n)
	}
	if n := len(res.Log.Filter("start")); n == 0 {
		t.Error("no start events")
	}
}
