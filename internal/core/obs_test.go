package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// TestObsDoesNotPerturbDeterminism is the acceptance check: a
// fixed-seed run must be byte-identical whether instrumentation is
// attached or not. It compares the full event trace and every
// user-visible metric.
func TestObsDoesNotPerturbDeterminism(t *testing.T) {
	run := func(o *obs.Observer) *Result {
		var specs = workload.BatchJobs("a", zoo.MustGet("resnet50"), 4, 1, 20)
		specs = append(specs, workload.BatchJobs("b", zoo.MustGet("vae"), 4, 2, 20)...)
		specs = append(specs, workload.BatchJobs("c", zoo.MustGet("lstm"), 3, 1, 20)...)
		specs, _ = workload.AssignIDs(specs)
		cfg := Config{
			Cluster: mixedCluster(),
			Specs:   specs,
			Seed:    7,
			Obs:     o,
		}
		sim, err := New(cfg, MustNewFairPolicy(FairConfig{EnableTrading: true}))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(simclock.Time(48 * simclock.Hour))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := run(nil)
	o := obs.New()
	instr := run(o)

	var a, b bytes.Buffer
	if err := plain.Log.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := instr.Log.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("event traces differ between obs-off and obs-on runs")
	}
	if plain.Rounds != instr.Rounds || plain.End != instr.End ||
		plain.Migrations != instr.Migrations || plain.TradeCount != instr.TradeCount {
		t.Errorf("scalars differ: off=%d/%v/%d/%d on=%d/%v/%d/%d",
			plain.Rounds, plain.End, plain.Migrations, plain.TradeCount,
			instr.Rounds, instr.End, instr.Migrations, instr.TradeCount)
	}
	if !reflect.DeepEqual(plain.UsageByUserGen, instr.UsageByUserGen) {
		t.Error("usage accounting differs with obs attached")
	}
	if !reflect.DeepEqual(plain.ThroughputByUser, instr.ThroughputByUser) {
		t.Error("throughput differs with obs attached")
	}
	if !reflect.DeepEqual(plain.JCTs(), instr.JCTs()) {
		t.Error("JCTs differ with obs attached")
	}

	// And the instrumented run actually observed things.
	if plain.PhaseTotalsSeconds != nil {
		t.Error("uninstrumented run reported phase totals")
	}
	if instr.PhaseTotalsSeconds == nil || instr.PhaseTotalsSeconds[string(obs.PhaseExecute)] <= 0 {
		t.Errorf("instrumented run missing phase totals: %v", instr.PhaseTotalsSeconds)
	}
	snap := o.Snapshot()
	if int(snap.Rounds) != instr.Rounds {
		t.Errorf("observer rounds %v != result rounds %d", snap.Rounds, instr.Rounds)
	}
	if len(snap.Decisions) == 0 {
		t.Error("no decisions recorded")
	}
	seenCredit := false
	for _, d := range snap.Decisions {
		if d.Reason == "credit" {
			seenCredit = true
		}
		if d.Gen == "" || d.User == "" || len(d.Devices) == 0 {
			t.Errorf("incomplete decision: %+v", d)
		}
	}
	if !seenCredit {
		t.Error("no credit-funded decision explained")
	}
	if instr.TradeCount > 0 && len(snap.Trades) == 0 {
		t.Error("trades happened but none recorded")
	}
}

// TestObsMigrationExplained checks migrations surface in the
// decision ring with their origin generation.
func TestObsMigrationExplained(t *testing.T) {
	o := obs.New()
	specs := workload.BatchJobs("fast", zoo.MustGet("resnet50"), 6, 1, 30)
	specs = append(specs, workload.BatchJobs("slow", zoo.MustGet("vae"), 6, 1, 30)...)
	specs, _ = workload.AssignIDs(specs)
	cfg := Config{Cluster: mixedCluster(), Specs: specs, Seed: 3, Obs: o}
	res := runFair(t, cfg, FairConfig{EnableTrading: true, MigrationCooldown: 2}, simclock.Time(48*simclock.Hour))
	if res.Migrations == 0 {
		t.Skip("scenario produced no migrations")
	}
	found := false
	for _, d := range o.Snapshot().Decisions {
		if d.Migrated && d.FromGen != "" && d.FromGen != d.Gen {
			found = true
			break
		}
	}
	if !found {
		t.Error("no migration decision carries its origin generation")
	}
}

func TestTraceCapBoundsSimLog(t *testing.T) {
	specs := workload.BatchJobs("u", zoo.MustGet("vae"), 8, 1, 10)
	specs, _ = workload.AssignIDs(specs)
	cfg := Config{Cluster: k80Cluster(1, 4), Specs: specs, Seed: 1, TraceCap: 5}
	res := runFair(t, cfg, FairConfig{}, simclock.Time(48*simclock.Hour))
	if res.Log.Len() != 5 {
		t.Errorf("log length = %d, want capped at 5", res.Log.Len())
	}
	if res.Log.Dropped() == 0 {
		t.Error("cap dropped nothing on a run with > 5 events")
	}
	// The kept events are the newest: the last one must be a finish
	// at the end of the run.
	evs := res.Log.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Errorf("ring order broken: %v after %v", evs[i].At, evs[i-1].At)
		}
	}

	if _, err := New(Config{Cluster: k80Cluster(1, 4), Specs: specs, TraceCap: -1},
		MustNewFairPolicy(FairConfig{})); err == nil {
		t.Error("negative TraceCap accepted")
	}
}
