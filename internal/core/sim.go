package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/fairshare"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/placement"
	"repro/internal/profiler"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Config drives one simulation.
type Config struct {
	Cluster *gpu.Cluster
	Specs   []job.Spec

	// Tickets per user; users missing from the map default to 1.
	Tickets map[job.UserID]float64

	// Quantum is the scheduling interval in seconds. Zero means the
	// default 360 s (minute-scale time-slicing, as in Gandiva).
	Quantum simclock.Duration

	// Costs is the suspend/resume/migration cost model. The zero
	// value means migrate.Default().
	Costs migrate.CostModel

	// DisableMigration pins previously-run jobs to their servers (the
	// no-migration ablation).
	DisableMigration bool

	// ProfilerNoise is the relative std-dev of one rate measurement;
	// ProfilerAlpha the EWMA weight. Zeros mean 0.03 and 0.25.
	ProfilerNoise float64
	ProfilerAlpha float64

	// TimelineWindow is the share-timeline bucket width; zero means
	// one hour.
	TimelineWindow simclock.Duration

	// Failures injects server outages: during [At, At+Duration) the
	// server's GPUs are unplaceable and jobs running there are
	// displaced — restarting from checkpoint elsewhere when migration
	// is allowed, waiting for the server otherwise.
	Failures []Failure

	// Faults enables the probabilistic fault model (generated server
	// crashes, flaky servers, GPU degradation, job crash-restart,
	// migration failure) plus the quarantine circuit breaker and
	// failure compensation. Declared Failures above are compiled into
	// the same schedule. Nil — the default — keeps the engine's
	// legacy behavior byte-identical; a non-nil zero Config enables
	// only the compensation accounting for declared failures.
	Faults *faults.Config

	// TicketChanges reconfigures a user's tickets at runtime (an
	// operator action the paper's ticket model supports); each change
	// applies from the first round at or after At.
	TicketChanges []TicketChange

	// Audit selects the runtime invariant auditor's mode. The zero
	// value is AuditStrict: every round is checked and the first
	// violation aborts the run. Use AuditCount for long production
	// sweeps (violations are tallied in Result.Audit instead) or
	// AuditOff to disable checking.
	Audit AuditMode

	// Obs attaches a live observer (metrics, phase profiling,
	// explained decisions). Nil — the default — disables
	// instrumentation entirely; with a fixed seed, output is
	// byte-identical either way because the observer only reads
	// engine state and never feeds anything back.
	Obs *obs.Observer

	// Flight attaches a flight recorder: the Observer feeds it one
	// snapshot per round (spans, decisions, trades, fault events,
	// shares), and Run dumps it to its file on an audit violation, any
	// other round-loop error, or a panic. Requires Obs to be set for
	// per-round capture; the failure-dump path works regardless. Like
	// Obs, it only ever reads engine state.
	Flight *flight.Recorder

	// AuditDrillRound, when positive, injects one synthetic "drill"
	// audit violation at that round (rounds count from 1). It
	// exercises the violation → flight-dump → abort path end to end
	// without corrupting any real invariant; CI uses it to assert a
	// red run leaves a parseable flight.json behind.
	AuditDrillRound int

	// TraceCap bounds the event log to the most recent TraceCap
	// events (ring semantics, oldest dropped). Zero means unlimited —
	// the historical behavior, which long sweeps may want to cap.
	TraceCap int

	// Seed feeds all randomness (profiling noise).
	Seed int64

	// Engine selects the round-loop implementation. The zero value is
	// EngineIncremental; EngineRescan keeps the legacy full-rescan
	// loop for differential testing. Both produce byte-identical
	// output for the same config and seed.
	Engine EngineMode
}

// Failure is one injected server outage.
type Failure struct {
	Server   gpu.ServerID
	At       simclock.Time
	Duration simclock.Duration
}

// TicketChange reassigns a user's tickets at a point in time.
type TicketChange struct {
	At      simclock.Time
	User    job.UserID
	Tickets float64
}

func (c Config) withDefaults() Config {
	if c.Quantum == 0 {
		c.Quantum = 360
	}
	if (c.Costs == migrate.CostModel{}) {
		c.Costs = migrate.Default()
	}
	if c.ProfilerNoise == 0 {
		c.ProfilerNoise = 0.03
	}
	if c.ProfilerAlpha == 0 {
		c.ProfilerAlpha = 0.25
	}
	if c.TimelineWindow == 0 {
		c.TimelineWindow = simclock.Hour
	}
	return c
}

// Validate checks the config.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Cluster == nil {
		return fmt.Errorf("core: nil cluster")
	}
	if len(c.Specs) == 0 {
		return fmt.Errorf("core: no jobs")
	}
	seen := make(map[job.ID]bool, len(c.Specs))
	for i := range c.Specs {
		if err := c.Specs[i].Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if seen[c.Specs[i].ID] {
			return fmt.Errorf("core: duplicate job ID %d", c.Specs[i].ID)
		}
		seen[c.Specs[i].ID] = true
		fits := false
		for _, g := range c.Cluster.GensPresent() {
			if c.Specs[i].Perf.FitsOn(g) {
				fits = true
				break
			}
		}
		if !fits {
			return fmt.Errorf("core: job %d fits no generation in the cluster", c.Specs[i].ID)
		}
		// A gang runs on devices of a single generation, so it must
		// fit within some one generation it can use — total cluster
		// size is not enough.
		placeable := false
		for _, g := range c.Cluster.GensPresent() {
			if c.Specs[i].Perf.FitsOn(g) && c.Specs[i].Gang <= c.Cluster.Capacity(g) {
				placeable = true
				break
			}
		}
		if !placeable {
			return fmt.Errorf("core: job %d gang %d exceeds every usable generation's capacity",
				c.Specs[i].ID, c.Specs[i].Gang)
		}
	}
	if c.Quantum <= 0 {
		return fmt.Errorf("core: non-positive quantum")
	}
	if err := c.Costs.Validate(); err != nil {
		return err
	}
	for u, t := range c.Tickets {
		if t < 0 {
			return fmt.Errorf("core: user %s has negative tickets", u)
		}
	}
	for _, f := range c.Failures {
		if int(f.Server) < 0 || int(f.Server) >= c.Cluster.NumServers() {
			return fmt.Errorf("core: failure names unknown server %d", f.Server)
		}
		if f.At < 0 || f.Duration <= 0 {
			return fmt.Errorf("core: failure on server %d has invalid window", f.Server)
		}
	}
	for _, tc := range c.TicketChanges {
		if tc.User == "" || tc.Tickets < 0 || tc.At < 0 {
			return fmt.Errorf("core: invalid ticket change %+v", tc)
		}
	}
	if c.Audit != AuditStrict && c.Audit != AuditCount && c.Audit != AuditOff {
		return fmt.Errorf("core: invalid audit mode %d", int(c.Audit))
	}
	if !c.Engine.valid() {
		return fmt.Errorf("core: invalid engine mode %d", int(c.Engine))
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if c.TraceCap < 0 {
		return fmt.Errorf("core: negative TraceCap %d", c.TraceCap)
	}
	if c.AuditDrillRound < 0 {
		return fmt.Errorf("core: negative AuditDrillRound %d", c.AuditDrillRound)
	}
	return nil
}

// Result collects a finished simulation's outputs.
type Result struct {
	Policy string

	// Finished jobs, in completion order; Unfinished counts jobs
	// still incomplete at the horizon.
	Finished   []*job.Job
	Unfinished int

	// UsageByUserGen is occupied GPU-seconds per user per generation
	// (the fairness currency: time GPUs were held, including
	// overheads).
	UsageByUserGen map[job.UserID]map[gpu.Generation]float64

	// UsefulByUser is minibatch-productive gang-GPU-seconds.
	UsefulByUser map[job.UserID]float64

	// FairUsageByUser is the policy-independent fairness reference:
	// each round the engine water-fills total capacity over the
	// active users' demands by tickets and integrates the result.
	// Comparing observed usage against this accounts for churn and
	// demand caps, unlike a static equal-split ideal.
	FairUsageByUser map[job.UserID]float64

	// ThroughputByUser is total minibatches completed per user.
	ThroughputByUser map[job.UserID]float64

	Utilization metrics.Utilization
	UtilByGen   map[gpu.Generation]metrics.Utilization

	Migrations int
	TradeCount int

	// Fault-model outcomes (all zero when Config.Faults was nil).
	Crashes           int // job crash-restart events
	MigrationFailures int // failed migration attempts
	Quarantines       int // quarantine circuit-breaker trips

	// CompDeficitByUser is the failure-compensation debt still
	// outstanding at the horizon, in occupied GPU-seconds (nil when
	// the fault model was off; empty when every loss was repaid or
	// forgiven on departure).
	CompDeficitByUser map[job.UserID]float64

	// CompRepaidGPUSeconds is the total failure-compensation debt
	// repaid over the run, in occupied GPU-seconds.
	CompRepaidGPUSeconds float64

	Timeline *metrics.Timeline
	Log      *trace.Log
	Rounds   int
	End      simclock.Time

	// SLO carries the run's service-level metrics: per-user
	// finish-time fairness ρ (Themis), makespan, and JCT quantiles
	// over finished jobs.
	SLO metrics.SLO

	// PhaseTotalsSeconds is cumulative wall-clock scheduler time per
	// phase (see obs.Phase) — nil unless Config.Obs was set.
	PhaseTotalsSeconds map[string]float64

	// Audit is the invariant auditor's report for the run; nil only
	// when the config disabled auditing (AuditOff).
	Audit *AuditReport
}

// TotalUsageByUser sums occupied GPU-seconds across generations.
func (r *Result) TotalUsageByUser() map[job.UserID]float64 {
	out := make(map[job.UserID]float64, len(r.UsageByUserGen))
	for u, byGen := range r.UsageByUserGen {
		for _, g := range gpu.Generations() {
			out[u] += byGen[g]
		}
	}
	return out
}

// TotalOccupied sums occupied GPU-seconds over all users and
// generations.
func (r *Result) TotalOccupied() float64 {
	var t float64
	for _, u := range job.SortedUsers(r.UsageByUserGen) {
		byGen := r.UsageByUserGen[u]
		for _, g := range gpu.Generations() {
			t += byGen[g]
		}
	}
	return t
}

// TotalUseful sums useful (non-overhead) GPU-seconds over all users.
func (r *Result) TotalUseful() float64 {
	var t float64
	for _, u := range job.SortedUsers(r.UsefulByUser) {
		t += r.UsefulByUser[u]
	}
	return t
}

// MaxShareError returns the largest per-user deviation between the
// observed usage fraction and the fair-reference fraction — the
// scalar fairness score reported across the experiments (0 = every
// user tracked their water-filled entitlement exactly).
func (r *Result) MaxShareError() float64 {
	obs := metrics.ShareFractions(r.TotalUsageByUser())
	ideal := metrics.ShareFractions(r.FairUsageByUser)
	worst := 0.0
	for u, want := range ideal {
		if d := math.Abs(obs[u] - want); d > worst {
			worst = d
		}
	}
	return worst
}

// JCTs returns completion times of finished jobs in seconds.
func (r *Result) JCTs() []float64 {
	out := make([]float64, 0, len(r.Finished))
	for _, j := range r.Finished {
		out = append(out, j.JCT())
	}
	return out
}

// QueueDelays returns, for each finished job, the wait from arrival
// to its first quantum in seconds.
func (r *Result) QueueDelays() []float64 {
	out := make([]float64, 0, len(r.Finished))
	for _, j := range r.Finished {
		if d, ok := j.QueueDelay(); ok {
			out = append(out, d)
		}
	}
	return out
}

// Sim is the simulation engine. Create with New, run with Run.
type Sim struct {
	cfg     Config
	clock   *simclock.Clock
	policy  Policy
	prof    *profiler.Profiler
	log     *trace.Log
	tl      *metrics.Timeline
	tickets map[job.UserID]float64

	evq      *eventCursor // arrivals and ticket changes, time-ordered
	active   map[job.ID]*job.Job
	finished []*job.Job

	// activeIDs mirrors s.active's key set in sorted order, maintained
	// on admission and retirement. Every ID-ordered walk in the round
	// loop (crash draws, RoundState.Jobs, the retirement sweep, the
	// execute order) reads it instead of rebuilding and re-sorting the
	// map's keys — same iteration order, no per-round sort.
	activeIDs []job.ID

	// Incremental-engine state (nil under EngineRescan).
	incremental bool
	pidx        *placement.Index      // free-capacity index owned by placement
	idxUnavail  map[gpu.ServerID]bool // unavail set currently applied to pidx
	fairSolver  *fairshare.Solver     // dirty-set water-filler for the fairness reference

	// Per-round scratch reused across rounds (contents die at round end).
	jobsBuf   []*job.Job //gflint:noretain per-round scratch
	placedBuf []job.ID   //gflint:noretain per-round scratch
	retireBuf []job.ID   //gflint:noretain per-round scratch
	pinBuf    []job.ID   //gflint:noretain per-round scratch

	prev    placement.Assignment
	prevGen map[job.ID]gpu.Generation

	usage      map[job.UserID]map[gpu.Generation]float64
	useful     map[job.UserID]float64
	fairUsage  map[job.UserID]float64
	mbByUser   map[job.UserID]float64
	busyByGen  map[gpu.Generation]float64
	capByGen   map[gpu.Generation]float64
	migrations int
	trades     int
	rounds     int
	aud        *auditor
	obs        *obs.Observer // nil when uninstrumented

	// Fault-model state. The timeline/sweep pair always exists (the
	// declared Failures list is compiled into it at New); everything
	// else is live only when cfg.Faults is non-nil.
	ftl      *faults.Timeline
	fsweep   *faults.Sweep
	down     map[gpu.ServerID]bool // current sampled down set
	faultsOn bool
	fcfg     faults.Config // defaults applied; valid when faultsOn
	finj     *faults.Injector
	breaker  *faults.Breaker

	migFails    map[job.ID]int           // consecutive failed migration attempts
	pinnedUntil map[job.ID]int           // migration backoff: pinned while rounds ≤ value
	lastCkpt    map[job.ID]simclock.Time // last durable checkpoint time
	compDeficit map[job.UserID]float64   // occupied GPU-seconds owed per user
	compRepaid  float64                  // total GPU-seconds repaid
	crashes     int
	migFailures int
	quarTrips   int
}

// New builds a simulation for a policy. The config is validated.
func New(cfg Config, policy Policy) (*Sim, error) {
	if policy == nil {
		return nil, fmt.Errorf("core: nil policy")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	prof, err := profiler.New(cfg.ProfilerAlpha, cfg.ProfilerNoise, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:       cfg,
		clock:     simclock.New(),
		policy:    policy,
		prof:      prof,
		log:       &trace.Log{},
		tl:        metrics.NewTimeline(cfg.TimelineWindow),
		tickets:   make(map[job.UserID]float64),
		active:    make(map[job.ID]*job.Job),
		prev:      placement.Assignment{},
		prevGen:   make(map[job.ID]gpu.Generation),
		usage:     make(map[job.UserID]map[gpu.Generation]float64),
		useful:    make(map[job.UserID]float64),
		fairUsage: make(map[job.UserID]float64),
		mbByUser:  make(map[job.UserID]float64),
		busyByGen: make(map[gpu.Generation]float64),
		capByGen:  make(map[gpu.Generation]float64),
		down:      make(map[gpu.ServerID]bool),
		aud:       newAuditor(cfg.Audit, cfg.Cluster, cfg.Quantum),
		obs:       cfg.Obs,
	}
	// Satellite of the fault model: the declared failure list is
	// compiled once into sorted per-server intervals instead of being
	// rescanned every quantum (see faults.Timeline).
	s.ftl = faults.Compile(declaredOutages(cfg.Failures), nil, cfg.Cluster.NumServers())
	s.fsweep = faults.NewSweep(s.ftl)
	if cfg.Faults != nil {
		s.faultsOn = true
		s.fcfg = cfg.Faults.WithDefaults()
		s.finj = faults.NewInjector(*cfg.Faults, cfg.Quantum, cfg.Seed)
		s.breaker = faults.NewBreaker(*cfg.Faults)
		s.migFails = make(map[job.ID]int)
		s.pinnedUntil = make(map[job.ID]int)
		s.lastCkpt = make(map[job.ID]simclock.Time)
		s.compDeficit = make(map[job.UserID]float64)
	}
	if cfg.TraceCap > 0 {
		s.log.SetCap(cfg.TraceCap)
	}
	// The nil check matters: SetSink takes an interface, and wrapping
	// a typed-nil *Recorder would defeat the sink == nil fast path.
	if cfg.Flight != nil {
		cfg.Obs.SetSink(cfg.Flight)
	}
	s.evq = newEventCursor(cfg.Specs, cfg.TicketChanges)
	for i := range cfg.Specs {
		u := cfg.Specs[i].User
		if t, ok := cfg.Tickets[u]; ok {
			s.tickets[u] = t
		} else {
			s.tickets[u] = 1
		}
	}
	s.incremental = cfg.Engine == EngineIncremental
	if s.incremental {
		s.pidx = placement.NewIndex(cfg.Cluster)
		s.idxUnavail = make(map[gpu.ServerID]bool)
		s.fairSolver = fairshare.NewSolver()
		for _, u := range job.SortedUsers(s.tickets) {
			s.fairSolver.SetTickets(u, s.tickets[u])
		}
	}
	return s, nil
}

// Run simulates until the horizon or until every job finishes,
// whichever comes first, and returns the result. Run may be called
// once per Sim. With a flight recorder configured, any round-loop
// error or panic dumps the recorder's window before surfacing.
func (s *Sim) Run(until simclock.Time) (res *Result, err error) {
	if until <= 0 {
		return nil, fmt.Errorf("core: non-positive horizon")
	}
	if s.cfg.Flight != nil {
		defer func() {
			if p := recover(); p != nil {
				_ = s.cfg.Flight.Dump("panic", fmt.Sprint(p))
				panic(p)
			}
			if err != nil {
				reason := "run-error"
				var av *AuditError
				if errors.As(err, &av) {
					reason = "audit-violation"
				}
				_ = s.cfg.Flight.Dump(reason, err.Error())
			}
		}()
	}
	if err := s.materializeFaults(until); err != nil {
		return nil, err
	}
	for s.clock.Now() < until {
		if len(s.active) == 0 {
			// Fast-forward idle gaps to the next arrival, aligned to
			// the quantum grid so rounds stay comparable. Waking only
			// for arrivals is sound: with nothing active, ticket and
			// fault events are observationally idempotent until then
			// (see eventCursor).
			next, ok := s.evq.nextArrival()
			if !ok {
				break // all done
			}
			if next >= until {
				break
			}
			aligned := simclock.Time(float64(int(float64(next)/s.cfg.Quantum)) * s.cfg.Quantum)
			if aligned > s.clock.Now() {
				s.clock.RunUntil(aligned)
			}
		}
		s.obs.PhaseStart(obs.PhaseArrivals)
		s.admitArrivals()
		s.obs.PhaseEnd(obs.PhaseArrivals)
		if len(s.active) == 0 {
			// Arrival strictly inside the coming quantum: step one
			// quantum and retry.
			s.clock.RunUntil(s.clock.Now().Add(s.cfg.Quantum))
			continue
		}
		if err := s.runRound(); err != nil {
			return nil, err
		}
		s.clock.RunUntil(s.clock.Now().Add(s.cfg.Quantum))
	}
	return s.result(), nil
}

func (s *Sim) admitArrivals() {
	now := s.clock.Now()
	s.evq.popArrivalsDue(now, func(spec job.Spec) {
		j, err := job.New(spec)
		if err != nil {
			panic(fmt.Sprintf("core: validated spec rejected: %v", err)) // unreachable
		}
		s.active[j.ID] = j
		s.activeIDs = insertSortedID(s.activeIDs, j.ID)
		if s.fairSolver != nil {
			s.fairSolver.AddDemand(j.User, float64(j.Gang))
		}
		s.log.Add(spec.Arrival, trace.KindArrival, j.ID, j.User,
			fmt.Sprintf("model=%s gang=%d", spec.Perf.Model, spec.Gang))
	})
}

// runRound executes one scheduling quantum.
func (s *Sim) runRound() error {
	now := s.clock.Now()
	s.rounds++
	s.obs.BeginRound(s.rounds, float64(now))
	s.evq.popTicketsDue(now, func(tc TicketChange) {
		s.tickets[tc.User] = tc.Tickets
		if s.fairSolver != nil {
			s.fairSolver.SetTickets(tc.User, tc.Tickets)
		}
	})
	s.obs.PhaseStart(obs.PhaseFaultSweep)
	down := s.updateFaultState(now)
	quar := s.breaker.Set()
	s.obs.PhaseEnd(obs.PhaseFaultSweep)
	s.obs.SetQuarantined(s.breaker.Count())
	// Servers unusable this round: physically down or quarantined.
	unavail := down
	if len(quar) > 0 {
		unavail = make(map[gpu.ServerID]bool, len(down)+len(quar))
		for sid := range down {
			unavail[sid] = true
		}
		for sid := range quar {
			unavail[sid] = true
		}
	}

	// Job crash-restart draws, in job-ID order: the injector consumes
	// one draw per job that held GPUs last quantum, so the visiting
	// order is part of the seed contract.
	var faultLoss, roundOcc map[job.UserID]float64
	if s.faultsOn {
		faultLoss = make(map[job.UserID]float64)
		roundOcc = make(map[job.UserID]float64)
		for _, id := range s.activeIDs {
			j := s.active[id]
			if j.Finished() || !j.RanLastQuantum() {
				continue
			}
			if s.finj.CrashNow() {
				lost := j.Crash()
				s.crashes++
				s.log.Add(now, trace.KindJobCrash, id, j.User,
					fmt.Sprintf("lostMB=%.1f crashes=%d", lost, j.Crashes()))
				s.obs.NoteFault("job-crash")
			}
		}
	}

	// The policy sees the deficit as of the round start; losses accrued
	// this round become visible (and repayable) next round.
	var decideDeficit map[job.UserID]float64
	if len(s.compDeficit) > 0 {
		decideDeficit = make(map[job.UserID]float64, len(s.compDeficit))
		for u, d := range s.compDeficit {
			decideDeficit[u] = d
		}
	}

	// Migration-failure backoff pinning, expiring lapsed entries.
	var pinned map[job.ID]bool
	if len(s.pinnedUntil) > 0 {
		pinned = make(map[job.ID]bool, len(s.pinnedUntil))
		s.pinBuf = sortedJobIDsInt(s.pinnedUntil, s.pinBuf)
		for _, id := range s.pinBuf {
			if s.rounds > s.pinnedUntil[id] {
				delete(s.pinnedUntil, id)
				continue
			}
			pinned[id] = true
		}
	}

	s.jobsBuf = s.jobsBuf[:0]
	for _, id := range s.activeIDs {
		s.jobsBuf = append(s.jobsBuf, s.active[id])
	}
	st := &RoundState{
		Now:     now,
		Quantum: s.cfg.Quantum,
		Cluster: s.cfg.Cluster,
		Jobs:    s.jobsBuf,
		Tickets: s.tickets,
		Prof:    s.prof,
		PrevGen: s.prevGen,

		MigrationDisabled: s.cfg.DisableMigration,
		Down:              down,
		Quarantined:       quar,
		Pinned:            pinned,
		Deficit:           decideDeficit,
		Obs:               s.obs,
	}
	capNow := st.CapacityByGen()
	s.aud.beginRound(s.rounds, now, capNow, s.tickets)
	if s.cfg.AuditDrillRound == s.rounds && s.aud.on() {
		s.aud.violate(InvDrill, "operator-requested audit drill")
	}
	// Policy-independent fairness reference for this round,
	// water-filled over the capacity actually available (failed
	// servers excluded).
	s.obs.PhaseStart(obs.PhaseWaterfill)
	availTotal := 0.0
	for _, g := range gpu.Generations() {
		availTotal += float64(capNow[g])
	}
	var shares map[job.UserID]float64
	if s.incremental {
		// Demand was maintained exactly at admission/retirement time and
		// tickets at change-application time; only capacity can still
		// have moved. The solver re-solves only when something really
		// changed — most rounds return the memoized water-fill.
		s.fairSolver.SetCapacity(availTotal)
		shares = s.fairSolver.Shares()
	} else {
		demand := make(map[job.UserID]float64)
		for _, j := range st.Jobs {
			demand[j.User] += float64(j.Gang)
		}
		shares = fairshare.Compute(s.tickets, demand, availTotal)
	}
	var roundFair map[job.UserID]float64
	if s.faultsOn {
		roundFair = make(map[job.UserID]float64, len(shares))
	}
	for u, sh := range shares {
		s.fairUsage[u] += sh * s.cfg.Quantum
		if roundFair != nil {
			roundFair[u] = sh * s.cfg.Quantum
		}
	}
	s.obs.PhaseEnd(obs.PhaseWaterfill)

	s.obs.PhaseStart(obs.PhaseDecide)
	dec := s.policy.Decide(st)
	if err := s.checkDecision(dec, capNow); err != nil {
		return err
	}
	s.obs.PhaseEnd(obs.PhaseDecide)
	s.trades += len(dec.Trades)
	for _, tr := range dec.Trades {
		s.log.Add(now, trace.KindTrade, 0, tr.Buyer,
			fmt.Sprintf("seller=%s fast=%v slow=%v dFast=%.2f dSlow=%.2f price=%.2f",
				tr.Seller, tr.Fast, tr.Slow, tr.FastGPUs, tr.SlowGPUs, tr.Price))
		s.obs.NoteTrade(string(tr.Buyer), string(tr.Seller),
			tr.Fast.String(), tr.Slow.String(), tr.FastGPUs, tr.SlowGPUs, tr.Price)
	}

	s.obs.PhaseStart(obs.PhasePlacement)
	var res placement.Result
	if s.incremental {
		// The index carries availability as baseline state; feed it the
		// delta against last round instead of passing the full down set.
		s.syncIndexAvail(unavail)
		res = placement.PlaceIndexed(s.pidx, s.prev, dec.Run,
			placement.Options{AllowMigration: !s.cfg.DisableMigration, Pinned: pinned})
	} else {
		res = placement.Place(s.cfg.Cluster, s.prev, dec.Run,
			placement.Options{AllowMigration: !s.cfg.DisableMigration, Down: unavail, Pinned: pinned})
	}
	if err := placement.Validate(s.cfg.Cluster, res.Assignment); err != nil {
		return fmt.Errorf("core: round %d: %w", s.rounds, err)
	}
	s.obs.PhaseEnd(obs.PhasePlacement)

	// Migration-failure injection: each migration attempt may fail —
	// the job pays the copy cost on its reserved target devices but
	// stays put, retrying later under capped exponential backoff. Draws
	// happen in res.Migrated order, which placement emits sorted.
	migFailedNow := make(map[job.ID]bool)
	if s.finj != nil && len(res.Migrated) > 0 {
		kept := res.Migrated[:0]
		for _, id := range res.Migrated {
			if !s.finj.MigrationFails() {
				kept = append(kept, id)
				delete(s.migFails, id)
				delete(s.pinnedUntil, id)
				continue
			}
			j := s.active[id]
			devs := res.Assignment[id]
			gen := s.cfg.Cluster.Device(devs[0]).Gen
			gang := float64(j.Gang)
			cost := s.cfg.Costs.MigrationCost(j.Perf)
			if cost > s.cfg.Quantum {
				cost = s.cfg.Quantum
			}
			// The attempt held its reserved target devices for the
			// checkpoint copy: occupied time is charged, no progress made,
			// and the rest of the quantum is lost to the fault.
			j.AddOverhead(cost)
			s.addUsage(j.User, gen, gang*cost)
			s.busyByGen[gen] += gang * cost
			s.tl.Add(now, j.User, gang*cost)
			s.aud.noteFaultCharge(gen, gang*cost)
			roundOcc[j.User] += gang * cost
			faultLoss[j.User] += gang * (s.cfg.Quantum - cost)
			s.migFails[id]++
			s.migFailures++
			backoff := faults.Backoff(s.fcfg, s.migFails[id])
			s.pinnedUntil[id] = s.rounds + backoff
			migFailedNow[id] = true
			delete(res.Assignment, id)
			res.Unplaced = append(res.Unplaced, id)
			s.log.Add(now, trace.KindMigFail, id, j.User,
				fmt.Sprintf("attempt=%d backoff=%d cost=%.0fs", s.migFails[id], backoff, cost))
			s.obs.NoteFault("migration-fail")
		}
		res.Migrated = kept
		sort.Slice(res.Unplaced, func(i, j int) bool { return res.Unplaced[i] < res.Unplaced[j] })
	}

	s.obs.PhaseStart(obs.PhaseAudit)
	s.aud.checkAssignment(res.Assignment, s.active, down, quar)
	s.obs.PhaseEnd(obs.PhaseAudit)

	s.obs.PhaseStart(obs.PhaseMigrate)
	migrated := make(map[job.ID]bool, len(res.Migrated))
	for _, id := range res.Migrated {
		migrated[id] = true
	}
	s.obs.PhaseEnd(obs.PhaseMigrate)
	s.obs.NoteUnplaced(len(res.Unplaced))

	rep := &ExecReport{Ran: make(map[job.ID]RanInfo, len(res.Assignment)), Unplaced: res.Unplaced}
	ranThisRound := make(map[job.ID]bool, len(res.Assignment))
	// Execute in job-ID order, not assignment-map order: executeJob
	// consumes draws from the shared profiling RNG, so the processing
	// order decides which job sees which noise sample. Map iteration
	// order varies between processes and would make runs with the same
	// seed diverge. activeIDs is already sorted; filtering it against
	// the assignment yields the same order a fresh sort would.
	placed := s.placedBuf[:0]
	for _, id := range s.activeIDs {
		if _, ok := res.Assignment[id]; ok {
			placed = append(placed, id)
		}
	}
	s.placedBuf = placed
	if len(placed) != len(res.Assignment) {
		for id := range res.Assignment {
			if s.active[id] == nil {
				return fmt.Errorf("core: placement returned unknown job %d", id)
			}
		}
	}
	s.obs.PhaseStart(obs.PhaseExecute)
	for _, id := range placed {
		devs := res.Assignment[id]
		j := s.active[id]
		gen := s.cfg.Cluster.Device(devs[0]).Gen
		if s.obs != nil {
			fromGen := ""
			if prev, ok := s.prevGen[id]; ok && migrated[id] {
				fromGen = prev.String()
			}
			ints := make([]int, len(devs))
			for i, d := range devs {
				ints[i] = int(d)
			}
			s.obs.RecordPlacement(int64(id), string(j.User), gen.String(),
				j.Gang, ints, migrated[id], fromGen)
		}
		info := s.executeJob(j, gen, devs, migrated[id])
		rep.Ran[id] = info
		ranThisRound[id] = true
		s.prevGen[id] = gen
	}
	s.obs.PhaseEnd(obs.PhaseExecute)

	// Capacity accounting for utilization, net of failed servers.
	for g, c := range capNow {
		s.capByGen[g] += float64(c) * s.cfg.Quantum
	}

	// Quantum bookkeeping on every active job, then retire finished
	// ones. Walk jobs in ID order, not map order: retirement appends
	// finish events to the trace, and map iteration would let two jobs
	// finishing in the same round swap log positions between runs.
	// Iterate a snapshot — retirement mutates activeIDs itself.
	s.retireBuf = append(s.retireBuf[:0], s.activeIDs...)
	for _, id := range s.retireBuf {
		j := s.active[id]
		if j.Finished() {
			s.finished = append(s.finished, j)
			s.log.Add(j.FinishTime(), trace.KindFinish, id, j.User,
				fmt.Sprintf("jct=%.0fs migrations=%d", j.JCT(), j.Migrations()))
			s.obs.NoteFinish()
			s.policy.JobFinished(id)
			s.prof.Remove(id)
			delete(s.active, id)
			s.activeIDs = removeSortedID(s.activeIDs, id)
			if s.fairSolver != nil {
				s.fairSolver.AddDemand(j.User, -float64(j.Gang))
			}
			delete(s.prev, id)
			delete(s.prevGen, id)
			if s.faultsOn {
				delete(s.migFails, id)
				delete(s.pinnedUntil, id)
				delete(s.lastCkpt, id)
			}
			continue
		}
		ran := ranThisRound[id]
		if j.State() == job.Running && !ran {
			j.SetRunning(false)
			if s.faultsOn {
				// Suspension serializes the job (Gandiva's suspend is
				// checkpoint-based), so its progress becomes durable.
				j.NoteCheckpoint()
				s.lastCkpt[id] = now
			}
		}
		if s.faultsOn && !ran && !migFailedNow[id] {
			// A job stranded because its servers are down or quarantined
			// loses the whole quantum of occupied share to the fault —
			// that shortfall becomes its user's compensation debt.
			// (Failed migrations were already charged above.)
			if devs, ok := s.prev[id]; ok {
				for _, d := range devs {
					if unavail[s.cfg.Cluster.Device(d).Server] {
						faultLoss[j.User] += float64(j.Gang) * s.cfg.Quantum
						break
					}
				}
			}
		}
		j.NoteQuantum(ran)
	}
	sort.Slice(s.finished, func(i, j int) bool {
		if s.finished[i].FinishTime() != s.finished[j].FinishTime() {
			return s.finished[i].FinishTime() < s.finished[j].FinishTime()
		}
		return s.finished[i].ID < s.finished[j].ID
	})

	// Next round's stability baseline: the latest placement of every
	// still-active job. Jobs that went unplaced this round keep their
	// old placement — their checkpoint state lives on that server, and
	// the no-migration mode pins them to it. The retirement sweep above
	// already dropped finished jobs from s.prev, so merging the round's
	// assignment in place (skipping jobs that finished this quantum)
	// completes the update without rebuilding the map.
	for id, devs := range res.Assignment {
		if _, alive := s.active[id]; alive {
			s.prev[id] = devs
		}
	}

	s.policy.Executed(rep)
	if s.faultsOn {
		// Cap each user's raw fault loss at their actual share shortfall
		// this round (fair entitlement minus occupied time). A user whose
		// other jobs soaked up their full water-filled share lost nothing
		// in the fairness currency, and compensating the per-job loss
		// anyway would push them above the reference.
		for _, id := range placed {
			if info, ok := rep.Ran[id]; ok {
				roundOcc[info.User] += float64(info.Gang) * info.OccupiedSecs
			}
		}
		for _, u := range job.SortedUsers(faultLoss) {
			shortfall := roundFair[u] - roundOcc[u]
			if shortfall < 0 {
				shortfall = 0
			}
			if faultLoss[u] > shortfall {
				faultLoss[u] = shortfall
			}
			if faultLoss[u] <= 0 {
				delete(faultLoss, u)
			}
		}
		s.settleCompensation(faultLoss, dec.Repaid, roundFair, roundOcc)
	}
	s.obs.PhaseStart(obs.PhaseAudit)
	err := s.aud.endRound()
	s.obs.PhaseEnd(obs.PhaseAudit)
	s.publishShares()
	s.obs.EndRound(len(s.active), s.evq.pendingCount())
	return err
}

// syncIndexAvail brings the placement index's baseline availability in
// line with the round's unavailable-server set, flipping only the
// servers whose state changed since last round.
func (s *Sim) syncIndexAvail(unavail map[gpu.ServerID]bool) {
	for sid := range s.idxUnavail {
		if !unavail[sid] {
			s.pidx.SetAvail(sid, true)
			delete(s.idxUnavail, sid)
		}
	}
	for sid := range unavail {
		if !s.idxUnavail[sid] {
			s.pidx.SetAvail(sid, false)
			s.idxUnavail[sid] = true
		}
	}
}

// settleCompensation closes the round's failure-compensation books:
// repayments drain the debt, this round's fault losses add to it, the
// auditor checks the arithmetic, and users who have fully departed are
// forgiven. Gauges are refreshed last.
//
// Repayment is recognized by materialization, not by grant: when the
// policy participates in compensation (Decision.Repaid non-nil), a
// debtor's occupied time beyond their fair reference this round drains
// the debt, capped at what is owed. Grants flow through the policy's
// credit accounting and surface as excess occupancy over the following
// rounds, so recognizing the excess — rather than the grant — keeps a
// deficit alive when placement could not realize the grant
// (fragmentation, pinned jobs) and retires it exactly as fast as the
// user actually catches up.
func (s *Sim) settleCompensation(lost, repaid, fair, occ map[job.UserID]float64) {
	users := make(map[job.UserID]float64, len(s.compDeficit)+len(lost)+len(repaid))
	for u := range s.compDeficit {
		users[u] = 0
	}
	for u := range lost {
		users[u] = 0
	}
	for u := range repaid {
		users[u] = 0
	}
	if len(users) == 0 {
		return
	}
	sorted := job.SortedUsers(users)
	before := make(map[job.UserID]float64, len(sorted))
	clamped := make(map[job.UserID]float64, len(sorted))
	after := make(map[job.UserID]float64, len(sorted))
	for _, u := range sorted {
		b := s.compDeficit[u]
		before[u] = b
		var r float64
		if repaid != nil && b > 0 {
			if r = occ[u] - fair[u]; r < 0 {
				r = 0
			}
			if r > b {
				r = b
			}
		}
		clamped[u] = r
		d := b + lost[u] - r
		if d <= 1e-9 {
			d = 0
		}
		after[u] = d
		if d == 0 {
			delete(s.compDeficit, u)
		} else {
			s.compDeficit[u] = d
		}
		s.compRepaid += r
		s.obs.SetCompDeficit(string(u), d)
		s.obs.NoteRepaid(r)
	}
	s.aud.checkCompensation(sorted, before, lost, clamped, after)
	// Forgive debt of users with no jobs left in the system — there is
	// no demand to repay into, and carrying the deficit forever would
	// poison the monotone-drain invariant for reappearing user names.
	if len(s.compDeficit) == 0 {
		return
	}
	present := make(map[job.UserID]bool, len(s.active))
	for _, j := range s.active {
		present[j.User] = true
	}
	s.evq.forEachPendingUser(func(u job.UserID) { present[u] = true })
	for _, u := range job.SortedUsers(s.compDeficit) {
		if !present[u] {
			delete(s.compDeficit, u)
			s.obs.SetCompDeficit(string(u), 0)
		}
	}
}

// publishShares refreshes the per-user share gauges (observed vs
// water-filled entitlement fractions). No-op when uninstrumented.
func (s *Sim) publishShares() {
	if s.obs == nil {
		return
	}
	var usedTotal, fairTotal float64
	used := make(map[job.UserID]float64, len(s.usage))
	for u, byGen := range s.usage {
		for _, g := range gpu.Generations() {
			used[u] += byGen[g]
		}
	}
	for _, u := range job.SortedUsers(used) {
		usedTotal += used[u]
	}
	for _, u := range job.SortedUsers(s.fairUsage) {
		fairTotal += s.fairUsage[u]
	}
	for _, u := range job.SortedUsers(used) {
		uf, ff := 0.0, 0.0
		if usedTotal > 0 {
			uf = used[u] / usedTotal
		}
		if fairTotal > 0 {
			ff = s.fairUsage[u] / fairTotal
		}
		s.obs.SetShare(string(u), uf, ff)
	}
}

// executeJob charges overheads and advances one job for the quantum.
func (s *Sim) executeJob(j *job.Job, gen gpu.Generation, devs []gpu.DeviceID, migrated bool) RanInfo {
	now := s.clock.Now()
	quantum := s.cfg.Quantum

	var overhead simclock.Duration
	switch {
	case migrated:
		overhead = s.cfg.Costs.MigrationCost(j.Perf)
		j.NoteMigration()
		s.migrations++
		s.log.Add(now, trace.KindMigration, j.ID, j.User,
			fmt.Sprintf("to=%v cost=%.0fs", gen, overhead))
	case !j.RanLastQuantum():
		overhead = s.cfg.Costs.ResumeCost()
	}
	if overhead > quantum {
		overhead = quantum
	}
	j.AddOverhead(overhead)

	span := placement.ServersUsed(s.cfg.Cluster, devs)
	penalty := s.cfg.Costs.SpanPenalty(span)
	// A degraded server slows the whole gang: synchronous SGD moves at
	// the slowest worker, so the effective rate is the minimum slowdown
	// factor over the servers spanned (1 when nothing is degraded).
	factor := 1.0
	for _, d := range devs {
		if f := s.fsweep.Factor(s.cfg.Cluster.Device(d).Server); f < factor {
			factor = f
		}
	}
	eff := penalty * factor
	avail := (quantum - overhead) * eff
	if lost := (quantum - overhead) * (1 - eff); lost > 0 {
		j.AddOverhead(lost)
	}

	if j.State() != job.Running {
		j.SetRunning(true)
		if !j.RanLastQuantum() && j.DoneMB() == 0 {
			s.log.Add(now, trace.KindStart, j.ID, j.User, fmt.Sprintf("gen=%v", gen))
		}
	}
	j.NoteFirstRun(now)
	if s.prof.Samples(j.ID, gen) == 0 {
		s.prof.ProbeAll(j)
	} else {
		s.prof.Observe(j, gen)
	}

	if s.faultsOn && migrated {
		// Migration serializes a checkpoint of the pre-move progress;
		// note it before advancing so a later crash rolls back to here.
		j.NoteCheckpoint()
		s.lastCkpt[j.ID] = now
	}

	used, finished := j.Advance(gen, avail, now.Add(overhead))
	// Occupied wall time: overhead plus useful time (de-scaled by the
	// span penalty and any degradation), capped at the quantum. A job
	// finishing mid-round releases its GPUs for accounting purposes.
	occupied := quantum
	if finished && eff > 0 {
		occupied = overhead + used/eff
		if occupied > quantum {
			occupied = quantum
		}
	}

	if s.faultsOn && !finished {
		// Periodic checkpointing: crash-restart loses at most
		// CheckpointSecs of progress once the first interval elapses.
		end := now.Add(quantum)
		if last, ok := s.lastCkpt[j.ID]; !ok {
			s.lastCkpt[j.ID] = now
		} else if end.Sub(last) >= s.fcfg.CheckpointSecs {
			j.NoteCheckpoint()
			s.lastCkpt[j.ID] = end
		}
	}

	gang := float64(j.Gang)
	s.addUsage(j.User, gen, gang*occupied)
	s.useful[j.User] += gang * used
	s.mbByUser[j.User] += j.GangRate(gen) * used
	s.busyByGen[gen] += gang * occupied
	s.tl.Add(now, j.User, gang*occupied)

	info := RanInfo{
		User: j.User, Gen: gen, Gang: j.Gang,
		OccupiedSecs: occupied, UsefulSecs: used,
		Migrated: migrated, Finished: finished,
	}
	s.aud.noteExec(j, gen, info)
	return info
}

func (s *Sim) addUsage(u job.UserID, g gpu.Generation, amount float64) {
	m := s.usage[u]
	if m == nil {
		m = make(map[gpu.Generation]float64)
		s.usage[u] = m
	}
	m[g] += amount
}

// declaredOutages converts the config's declared failure list into
// fault-schedule outages.
func declaredOutages(fs []Failure) []faults.Outage {
	if len(fs) == 0 {
		return nil
	}
	out := make([]faults.Outage, len(fs))
	for i, f := range fs {
		out[i] = faults.Outage{Server: f.Server, At: f.At, Duration: f.Duration, Kind: faults.OutageDeclared}
	}
	return out
}

// materializeFaults generates the probabilistic fault schedule for the
// run's horizon (if configured) and recompiles the timeline with the
// declared failures merged in. Called once at the top of Run.
func (s *Sim) materializeFaults(until simclock.Time) error {
	if !s.faultsOn {
		return nil
	}
	if s.fcfg.ServerMTBFHours == 0 && s.fcfg.FlakyServers == 0 && s.fcfg.DegradeMTBFHours == 0 {
		return nil // nothing probabilistic on the server timeline
	}
	// Exponential schedules are generated eagerly, so bound the horizon
	// against pathological callers (e.g. near-Forever).
	horizon := until
	if max := simclock.Time(365 * simclock.Day); horizon > max {
		horizon = max
	}
	sched, err := faults.Generate(*s.cfg.Faults, s.cfg.Cluster.NumServers(), horizon, s.cfg.Seed)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	outages := append(declaredOutages(s.cfg.Failures), sched.Outages...)
	s.ftl = faults.Compile(outages, sched.Degradations, s.cfg.Cluster.NumServers())
	s.fsweep = faults.NewSweep(s.ftl)
	return nil
}

// updateFaultState advances the compiled fault timeline to now,
// maintains the sampled down set incrementally, feeds the quarantine
// breaker, and logs every transition. It returns the round's down set
// (a copy — RoundState and placement must not alias mutable state).
func (s *Sim) updateFaultState(now simclock.Time) map[gpu.ServerID]bool {
	// Release expired quarantines before noting new failures so a
	// server can be re-observed the round it is freed.
	for _, sid := range s.breaker.ExpireStep(now) {
		s.log.Add(now, trace.KindUnquarantine, 0, "", fmt.Sprintf("server=%d", sid))
	}
	for _, tr := range s.fsweep.Advance(now) {
		if tr.Slow {
			if tr.Factor < 1 {
				s.log.Add(now, trace.KindDegrade, 0, "", fmt.Sprintf("server=%d factor=%.2f", tr.Server, tr.Factor))
				s.obs.NoteFault("degrade")
			} else {
				s.log.Add(now, trace.KindDegradeEnd, 0, "", fmt.Sprintf("server=%d", tr.Server))
			}
			continue
		}
		if tr.Down {
			s.down[tr.Server] = true
			s.log.Add(now, trace.KindFailure, 0, "", fmt.Sprintf("server=%d", tr.Server))
			s.obs.NoteFault("server-down")
			if s.breaker.NoteFailure(tr.Server, now) {
				s.quarTrips++
				s.log.Add(now, trace.KindQuarantine, 0, "", fmt.Sprintf("server=%d", tr.Server))
				s.obs.NoteFault("quarantine")
			}
		} else {
			delete(s.down, tr.Server)
			s.log.Add(now, trace.KindRecovery, 0, "", fmt.Sprintf("server=%d", tr.Server))
		}
	}
	down := make(map[gpu.ServerID]bool, len(s.down))
	for sid := range s.down {
		down[sid] = true
	}
	return down
}

// sortedJobIDsInt collects m's keys sorted ascending into buf
// (reused; contents overwritten).
func sortedJobIDsInt(m map[job.ID]int, buf []job.ID) []job.ID {
	ids := buf[:0]
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// checkDecision enforces the policy contract: known runnable jobs,
// no duplicates, per-generation gang totals within capacity, and
// every job placed on a generation it fits.
func (s *Sim) checkDecision(dec Decision, caps map[gpu.Generation]int) error {
	seen := make(map[job.ID]bool, len(dec.Run))
	width := make(map[gpu.Generation]int)
	for _, r := range dec.Run {
		if r.Job == nil {
			return fmt.Errorf("core: policy returned nil job")
		}
		j, ok := s.active[r.Job.ID]
		if !ok || j != r.Job {
			return fmt.Errorf("core: policy scheduled unknown job %d", r.Job.ID)
		}
		if seen[r.Job.ID] {
			return fmt.Errorf("core: policy scheduled job %d twice", r.Job.ID)
		}
		seen[r.Job.ID] = true
		if !r.Job.Perf.FitsOn(r.Gen) {
			return fmt.Errorf("core: policy put job %d on unusable generation %v", r.Job.ID, r.Gen)
		}
		width[r.Gen] += r.Job.Gang
	}
	for g, w := range width {
		if w > caps[g] {
			return fmt.Errorf("core: policy overcommitted %v: %d > %d", g, w, caps[g])
		}
	}
	return nil
}

// resultDeficit snapshots the outstanding compensation debt (nil when
// the fault model is off, so legacy results are unchanged).
func (s *Sim) resultDeficit() map[job.UserID]float64 {
	if !s.faultsOn {
		return nil
	}
	out := make(map[job.UserID]float64, len(s.compDeficit))
	for u, d := range s.compDeficit {
		out[u] = d
	}
	return out
}

// computeSLO derives the run's fairness SLO bundle. A job's
// standalone reference is its exclusive runtime on the fastest
// generation present in the cluster that it can use; Themis's N is
// the number of users the run was configured with.
func (s *Sim) computeSLO() metrics.SLO {
	runs := make([]metrics.JobRun, 0, len(s.finished))
	for _, j := range s.finished {
		best := math.Inf(1)
		for _, g := range s.cfg.Cluster.GensPresent() {
			if !j.Perf.FitsOn(g) {
				continue
			}
			if st := j.StandaloneTime(g); st < best {
				best = st
			}
		}
		runs = append(runs, metrics.JobRun{
			User: string(j.User), JCT: j.JCT(),
			Finish: float64(j.FinishTime()), Standalone: best,
		})
	}
	return metrics.ComputeSLO(runs, len(s.tickets))
}

func (s *Sim) result() *Result {
	var busy, capTotal float64
	utilByGen := make(map[gpu.Generation]metrics.Utilization, len(s.capByGen))
	for _, g := range gpu.Generations() {
		c, ok := s.capByGen[g]
		if !ok {
			continue
		}
		b := s.busyByGen[g]
		utilByGen[g] = metrics.Utilization{BusyGPUSeconds: b, CapacityGPUSeconds: c}
		busy += b
		capTotal += c
	}
	slo := s.computeSLO()
	if s.obs != nil {
		s.obs.SetSLO(slo.RhoByUser, map[string]float64{
			"0.5": slo.JCT.Median, "0.95": slo.JCT.P95, "0.99": slo.JCT.P99,
		}, slo.MakespanSeconds)
	}
	return &Result{
		Policy:               s.policy.Name(),
		Finished:             s.finished,
		Unfinished:           len(s.active) + s.evq.pendingCount(),
		UsageByUserGen:       s.usage,
		UsefulByUser:         s.useful,
		FairUsageByUser:      s.fairUsage,
		ThroughputByUser:     s.mbByUser,
		Utilization:          metrics.Utilization{BusyGPUSeconds: busy, CapacityGPUSeconds: capTotal},
		UtilByGen:            utilByGen,
		Migrations:           s.migrations,
		TradeCount:           s.trades,
		Crashes:              s.crashes,
		MigrationFailures:    s.migFailures,
		Quarantines:          s.quarTrips,
		CompDeficitByUser:    s.resultDeficit(),
		CompRepaidGPUSeconds: s.compRepaid,
		Timeline:             s.tl,
		Log:                  s.log,
		Rounds:               s.rounds,
		End:                  s.clock.Now(),
		SLO:                  slo,
		Audit:                s.aud.report(),
		PhaseTotalsSeconds:   s.obs.PhaseTotals(),
	}
}
