package core

import "fmt"

// EngineMode selects the round-loop implementation.
//
// The two engines are contractually byte-identical: for any fixed
// config and seed they produce the same trace, the same per-user
// usage, and the same CanonicalDigest. The incremental engine is the
// default because it is asymptotically cheaper (free-capacity indices
// in placement, a memoizing water-fill solver, event-cursor fault
// sweeps); the rescan engine recomputes everything from scratch each
// round and is kept as the differential-testing oracle — see
// TestDifferentialEngines and DESIGN.md §8.
type EngineMode int

const (
	// EngineIncremental (the zero value, hence the default) drives
	// the round loop off maintained incremental indices.
	EngineIncremental EngineMode = iota

	// EngineRescan is the legacy full-rescan loop: placement scans
	// every server, fair share re-solves every round, job lists are
	// rebuilt and re-sorted from the active map.
	EngineRescan
)

// String implements fmt.Stringer.
func (m EngineMode) String() string {
	switch m {
	case EngineIncremental:
		return "incremental"
	case EngineRescan:
		return "rescan"
	default:
		return fmt.Sprintf("EngineMode(%d)", int(m))
	}
}

// ParseEngineMode parses the -engine flag / scenario "engine" field.
// The empty string means the default (incremental).
func ParseEngineMode(s string) (EngineMode, error) {
	switch s {
	case "", "incremental":
		return EngineIncremental, nil
	case "rescan":
		return EngineRescan, nil
	default:
		return 0, fmt.Errorf("core: unknown engine mode %q (want incremental or rescan)", s)
	}
}

func (m EngineMode) valid() bool {
	return m == EngineIncremental || m == EngineRescan
}
