package core

import (
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestCompensationRepaysFaultLosses puts two oversubscribed users
// under sustained fault pressure — outages, a flaky server, failed
// migrations, crashes. The fault deficits must be (nearly fully)
// repaid by the horizon and fairness must come out measurably better
// than the uncompensated ablation.
func TestCompensationRepaysFaultLosses(t *testing.T) {
	cfg := compScenario(11)
	res := runFair(t, cfg, FairConfig{}, simclock.Time(2*simclock.Day))
	if !res.Audit.Clean() {
		t.Fatalf("audit: %s", res.Audit.Summary())
	}
	if res.CompRepaidGPUSeconds <= 0 {
		t.Fatalf("no compensation materialized despite sustained faults")
	}
	for u, d := range res.CompDeficitByUser {
		// Outstanding debt at the horizon must be a sliver of what was
		// repaid — losses right before the horizon may still be open.
		if d > 0.1*res.CompRepaidGPUSeconds {
			t.Errorf("user %s still owed %.0f GPU-s (repaid %.0f)", u, d, res.CompRepaidGPUSeconds)
		}
	}
	if err := resMaxShareErrBelow(res, 0.05); err != nil {
		t.Errorf("share error %.3f with compensation, want < 0.05", res.MaxShareError())
	}

	// The ablation: without compensation the deficit must sit unrepaid
	// and fairness must not be better.
	nc, err := New(compScenario(11), MustNewFairPolicy(FairConfig{DisableCompensation: true}))
	if err != nil {
		t.Fatal(err)
	}
	ncRes, err := nc.Run(simclock.Time(2 * simclock.Day))
	if err != nil {
		t.Fatal(err)
	}
	if ncRes.CompRepaidGPUSeconds != 0 {
		t.Errorf("DisableCompensation still repaid %.1f GPU-s", ncRes.CompRepaidGPUSeconds)
	}
	var owed float64
	for _, u := range job.SortedUsers(ncRes.CompDeficitByUser) {
		owed += ncRes.CompDeficitByUser[u]
	}
	if owed <= 0 {
		t.Errorf("uncompensated run accrued no deficit — losses untracked")
	}
	if res.MaxShareError() > ncRes.MaxShareError()+0.005 {
		t.Errorf("compensation hurt fairness: %.3f vs %.3f uncompensated",
			res.MaxShareError(), ncRes.MaxShareError())
	}
}

// compScenario is a contended two-user cluster under the full fault
// stack (fresh specs each call — Sim mutates jobs in place).
func compScenario(seed int64) Config {
	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("a", zoo.MustGet("lstm"), 8, 1, 1e6)...)
	specs = append(specs, workload.BatchJobs("b", zoo.MustGet("gru"), 8, 1, 1e6)...)
	specs, _ = workload.AssignIDs(specs)
	return Config{
		Cluster: k80Cluster(3, 4),
		Specs:   specs,
		Seed:    seed,
		Faults: &faults.Config{
			ServerMTBFHours:        8,
			ServerOutageMeanHours:  0.75,
			FlakyServers:           1,
			FlakyMTBFHours:         1.5,
			MigrationFailProb:      0.4,
			JobCrashMTBFHours:      6,
			QuarantineFailures:     3,
			QuarantineWindowHours:  2,
			QuarantineCooloffHours: 2,
		},
	}
}

// TestQuarantineTripsOnFlakyServer drives a flaky server through the
// circuit breaker: the breaker must trip, the trace must show the
// quarantine lifecycle, and the strict auditor (which fails the run on
// any placement touching a quarantined server) must stay clean.
func TestQuarantineTripsOnFlakyServer(t *testing.T) {
	specs := workload.BatchJobs("u", zoo.MustGet("lstm"), 10, 1, 1e6)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{
		Cluster: k80Cluster(3, 4),
		Specs:   specs,
		Seed:    7,
		Faults: &faults.Config{
			FlakyServers:           1,
			FlakyMTBFHours:         0.5,
			FlakyOutageMinutes:     8,
			QuarantineFailures:     2,
			QuarantineWindowHours:  2,
			QuarantineCooloffHours: 2,
		},
	}, FairConfig{}, simclock.Time(simclock.Day))
	if !res.Audit.Clean() {
		t.Fatalf("audit: %s", res.Audit.Summary())
	}
	if res.Quarantines < 1 {
		t.Fatalf("flaky server never quarantined (quarantines=%d)", res.Quarantines)
	}
	if got := len(res.Log.Filter(trace.KindQuarantine)); got != res.Quarantines {
		t.Errorf("%d quarantine events logged, counter says %d", got, res.Quarantines)
	}
	if len(res.Log.Filter(trace.KindUnquarantine)) < 1 {
		t.Errorf("quarantine never released over a full day")
	}
}

// TestCrashRestartKeepsJobsFinishing turns on job crash-restart with
// frequent checkpoints: crashes must happen, lose at most the
// checkpoint interval of progress, and every job must still finish.
func TestCrashRestartKeepsJobsFinishing(t *testing.T) {
	specs := workload.BatchJobs("u", zoo.MustGet("resnet50"), 6, 1, 1.5)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{
		Cluster: k80Cluster(2, 4),
		Specs:   specs,
		Seed:    5,
		Faults: &faults.Config{
			JobCrashMTBFHours: 1.5,
			CheckpointSecs:    720,
		},
	}, FairConfig{}, simclock.Time(2*simclock.Day))
	if !res.Audit.Clean() {
		t.Fatalf("audit: %s", res.Audit.Summary())
	}
	if res.Crashes == 0 {
		t.Fatalf("no crashes injected with a 1.5 h MTBF over 2 days")
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d jobs lost to crash-restart", res.Unfinished)
	}
	if got := len(res.Log.Filter(trace.KindJobCrash)); got != res.Crashes {
		t.Errorf("%d jobcrash events logged, counter says %d", got, res.Crashes)
	}
	for _, j := range res.Finished {
		if j.Crashes() > 0 && j.CheckpointedMB() == 0 {
			t.Errorf("job %d crashed %d times yet never checkpointed", j.ID, j.Crashes())
		}
	}
}

// TestMigrationFailureBacksOff makes every migration attempt fail: the
// displaced job must keep paying attempt costs under capped exponential
// backoff (bounding the attempt count), never complete a migration, and
// still finish once its server recovers.
func TestMigrationFailureBacksOff(t *testing.T) {
	specs := workload.BatchJobs("u", zoo.MustGet("resnet50"), 1, 2, 2.0)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{
		Cluster: k80Cluster(2, 2),
		Specs:   specs,
		Seed:    1,
		Failures: []Failure{
			{Server: 0, At: simclock.Time(simclock.Hour), Duration: 2 * simclock.Hour},
		},
		Faults: &faults.Config{
			MigrationFailProb:      1,
			MigrationBackoffRounds: 2,
		},
	}, FairConfig{}, simclock.Time(12*simclock.Hour))
	if !res.Audit.Clean() {
		t.Fatalf("audit: %s", res.Audit.Summary())
	}
	if len(res.Finished) != 1 {
		t.Fatalf("job lost to migration failures (finished=%d)", len(res.Finished))
	}
	if res.Migrations != 0 {
		t.Errorf("%d migrations completed despite MigrationFailProb=1", res.Migrations)
	}
	// A 2 h outage is 20 rounds; attempts spaced 2,4,8,... rounds apart
	// must stay well below one per round.
	if res.MigrationFailures < 2 || res.MigrationFailures > 6 {
		t.Errorf("%d failed attempts, want 2..6 under exponential backoff", res.MigrationFailures)
	}
	if got := len(res.Log.Filter(trace.KindMigFail)); got != res.MigrationFailures {
		t.Errorf("%d migfail events logged, counter says %d", got, res.MigrationFailures)
	}
	// Pinned to the dead server the whole outage: the job waits it out.
	if jct := res.Finished[0].JCT(); jct < 4*simclock.Hour-400 {
		t.Errorf("JCT %v — job should have ridden out the outage in place", jct)
	}
}

// TestMidMigrationSourceServerDeath is the regression test for a
// failure striking inside a job's migration window: the checkpoint the
// job migrates from lives in durable storage, not on the source server,
// so the copy succeeds even though the source is already down — the
// exact round the displacement migration happens. The job must keep all
// checkpointed progress.
func TestMidMigrationSourceServerDeath(t *testing.T) {
	specs := workload.BatchJobs("u", zoo.MustGet("resnet50"), 1, 2, 2.0)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{
		Cluster: k80Cluster(2, 2),
		Specs:   specs,
		Seed:    1,
		Failures: []Failure{
			// Dies exactly when the job is mid-run; the displacement
			// migration's source server is dead during the copy.
			{Server: 0, At: simclock.Time(simclock.Hour), Duration: 2 * simclock.Hour},
		},
		Faults: &faults.Config{},
	}, FairConfig{}, simclock.Time(12*simclock.Hour))
	if !res.Audit.Clean() {
		t.Fatalf("audit: %s", res.Audit.Summary())
	}
	if len(res.Finished) != 1 {
		t.Fatalf("job did not survive source-server death mid-migration")
	}
	j := res.Finished[0]
	if j.Migrations() < 1 {
		t.Fatalf("job recovered without migrating")
	}
	// Progress from before the failure survived: ~1 h of work done, so
	// finishing needs only ~1 h more plus the restart cost — far less
	// than restarting from zero (2 h) after the failure (1 h mark).
	if jct := j.JCT(); jct > 3*simclock.Hour {
		t.Errorf("JCT %v — checkpointed progress was lost in the migration", jct)
	}
	// The migration serialized a checkpoint while the source was down.
	if j.CheckpointedMB() == 0 {
		t.Errorf("no durable checkpoint recorded across the migration")
	}
	if res.Crashes != 0 {
		t.Errorf("spurious crash events: %d", res.Crashes)
	}
}

// TestFaultedRunsAreDeterministic runs the full fault model twice on
// one seed (identical outcomes required) and once on another (outcomes
// must differ — the schedule really is seed-driven).
func TestFaultedRunsAreDeterministic(t *testing.T) {
	mkCfg := func(seed int64) Config {
		var specs []job.Spec
		specs = append(specs, workload.BatchJobs("a", zoo.MustGet("lstm"), 6, 1, 1e6)...)
		specs = append(specs, workload.BatchJobs("b", zoo.MustGet("gru"), 6, 1, 1e6)...)
		specs, _ = workload.AssignIDs(specs)
		return Config{
			Cluster: k80Cluster(3, 4),
			Specs:   specs,
			Seed:    seed,
			Faults: &faults.Config{
				ServerMTBFHours:        6,
				ServerOutageMeanHours:  0.5,
				FlakyServers:           1,
				FlakyMTBFHours:         1,
				DegradeMTBFHours:       8,
				JobCrashMTBFHours:      4,
				MigrationFailProb:      0.3,
				QuarantineFailures:     3,
				QuarantineWindowHours:  2,
				QuarantineCooloffHours: 2,
			},
		}
	}
	run := func(seed int64) *Result {
		return runFair(t, mkCfg(seed), FairConfig{}, simclock.Time(simclock.Day))
	}
	a, b := run(42), run(42)
	if a.Crashes != b.Crashes || a.MigrationFailures != b.MigrationFailures ||
		a.Quarantines != b.Quarantines || a.Rounds != b.Rounds ||
		a.Log.Len() != b.Log.Len() {
		t.Fatalf("same seed diverged: %+v vs %+v",
			[]int{a.Crashes, a.MigrationFailures, a.Quarantines, a.Rounds, a.Log.Len()},
			[]int{b.Crashes, b.MigrationFailures, b.Quarantines, b.Rounds, b.Log.Len()})
	}
	ua, ub := a.TotalUsageByUser(), b.TotalUsageByUser()
	for u, v := range ua {
		if ub[u] != v {
			t.Fatalf("same seed: user %s usage %v vs %v", u, v, ub[u])
		}
	}
	c := run(43)
	if a.Crashes == c.Crashes && a.MigrationFailures == c.MigrationFailures &&
		a.Log.Len() == c.Log.Len() && math.Abs(a.TotalOccupied()-c.TotalOccupied()) < 1e-9 {
		t.Errorf("different seeds produced identical fault outcomes")
	}
}

// TestQuarantineAndDownCapacitySubtraction checks RoundState's net
// capacity treats down and quarantined servers as one union (a server
// in both states is subtracted once).
func TestQuarantineAndDownCapacitySubtraction(t *testing.T) {
	cl := k80Cluster(3, 4)
	st := &RoundState{
		Cluster:     cl,
		Down:        map[gpu.ServerID]bool{0: true, 1: true},
		Quarantined: map[gpu.ServerID]bool{1: true, 2: true},
	}
	caps := st.CapacityByGen()
	if got := caps[gpu.K80]; got != 0 {
		t.Errorf("all three servers out: capacity %d, want 0", got)
	}
	st.Quarantined = map[gpu.ServerID]bool{1: true}
	if got := st.CapacityByGen()[gpu.K80]; got != 4 {
		t.Errorf("two servers out: capacity %d, want 4", got)
	}
}
