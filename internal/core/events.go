package core

import (
	"sort"

	"repro/internal/job"
	"repro/internal/simclock"
)

// eventCursor is the engine's event queue: the time-ordered external
// event streams (job arrivals, operator ticket changes) behind
// monotone pop cursors. Both streams are sorted once at construction,
// so advancing to a round's timestamp costs O(1) per event popped —
// strictly better than the O(log n) a heap would give, because the
// streams are known ahead of time and never receive out-of-order
// inserts. Fault transitions, the third external stream, live in
// faults.Sweep, which keeps its own sorted boundary list (see
// Sweep.NextAt); the three cursors together mean a round's event
// processing never scans a whole stream.
//
// Idle-quantum skipping (Sim.Run) deliberately wakes only for the
// next ARRIVAL, not for ticket changes or fault transitions: with no
// active jobs there is nothing to schedule, charge, or crash, so
// those events are observationally idempotent until the next arrival
// — applying them at the first round after the gap produces
// byte-identical output to running empty rounds through them. The
// cursors make that catch-up O(events in the gap), not O(rounds
// skipped).
type eventCursor struct {
	specs    []job.Spec // sorted by arrival, stable
	nextSpec int

	changes    []TicketChange // sorted by At, stable
	nextChange int
}

// newEventCursor copies and stably sorts both streams (stability
// preserves config order among equal timestamps — part of the seed
// contract, since admission order decides job processing order).
func newEventCursor(specs []job.Spec, changes []TicketChange) *eventCursor {
	e := &eventCursor{
		specs:   make([]job.Spec, len(specs)),
		changes: make([]TicketChange, len(changes)),
	}
	copy(e.specs, specs)
	sort.SliceStable(e.specs, func(i, j int) bool {
		return e.specs[i].Arrival < e.specs[j].Arrival
	})
	copy(e.changes, changes)
	sort.SliceStable(e.changes, func(i, j int) bool { return e.changes[i].At < e.changes[j].At })
	return e
}

// nextArrival returns the next unadmitted job's arrival time.
func (e *eventCursor) nextArrival() (simclock.Time, bool) {
	if e.nextSpec >= len(e.specs) {
		return 0, false
	}
	return e.specs[e.nextSpec].Arrival, true
}

// popArrivalsDue hands every spec with Arrival ≤ now to fn, in
// arrival order, advancing the cursor past them.
func (e *eventCursor) popArrivalsDue(now simclock.Time, fn func(job.Spec)) {
	for e.nextSpec < len(e.specs) && e.specs[e.nextSpec].Arrival <= now {
		fn(e.specs[e.nextSpec])
		e.nextSpec++
	}
}

// popTicketsDue hands every ticket change with At ≤ now to fn, in
// time order, advancing the cursor past them.
func (e *eventCursor) popTicketsDue(now simclock.Time, fn func(TicketChange)) {
	for e.nextChange < len(e.changes) && e.changes[e.nextChange].At <= now {
		fn(e.changes[e.nextChange])
		e.nextChange++
	}
}

// pendingCount is the number of jobs not yet admitted.
func (e *eventCursor) pendingCount() int {
	return len(e.specs) - e.nextSpec
}

// forEachPendingUser visits the user of every unadmitted job (with
// repeats), for departure-forgiveness presence checks.
func (e *eventCursor) forEachPendingUser(fn func(job.UserID)) {
	for i := e.nextSpec; i < len(e.specs); i++ {
		fn(e.specs[i].User)
	}
}

// insertSortedID inserts id into the sorted slice, keeping it sorted.
func insertSortedID(ids []job.ID, id job.ID) []job.ID {
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// removeSortedID removes id from the sorted slice (no-op when
// absent).
func removeSortedID(ids []job.ID, id job.ID) []job.ID {
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	if i >= len(ids) || ids[i] != id {
		return ids
	}
	return append(ids[:i], ids[i+1:]...)
}
