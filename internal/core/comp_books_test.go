package core

import (
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/job"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// strandScenario is a deterministic two-user debt generator: alice and
// bob each pin one gang-2 job to their own 2-GPU server (migration
// disabled), and declared outages strand them. The zero-valued fault
// config enables compensation bookkeeping without any probabilistic
// fault; DisableCompensation on the policy freezes the books so the
// accrual itself can be asserted exactly.
func strandScenario(aliceHours float64, failures []Failure) Config {
	specs := workload.BatchJobs("alice", zoo.MustGet("lstm"), 1, 2, aliceHours)
	specs = append(specs, workload.BatchJobs("bob", zoo.MustGet("gru"), 1, 2, 1e6)...)
	specs, _ = workload.AssignIDs(specs)
	return Config{
		Cluster:          k80Cluster(2, 2),
		Specs:            specs,
		Seed:             3,
		DisableMigration: true,
		Faults:           &faults.Config{},
		Failures:         failures,
	}
}

// TestDepartureMidDrainForgivesDebt pins the departure-forgiveness
// path of settleCompensation: a user whose jobs have all left the
// system must have their outstanding compensation debt forgiven — not
// carried forever, where it would poison the monotone-drain audit for
// a later user of the same name — and the strict auditor must accept
// every round of the bookkeeping on the way.
func TestDepartureMidDrainForgivesDebt(t *testing.T) {
	outage := []Failure{{Server: 0, At: simclock.Time(simclock.Hour), Duration: simclock.Hour}}

	// Horizon inside the outage: alice is mid-strand, debt open. (Her
	// job is sized to outlive the outage start but finish well before
	// the full horizon: 4 standalone-K80 hours across a gang of 2.)
	mid := runFair(t, strandScenario(4, outage),
		FairConfig{DisableCompensation: true}, simclock.Time(1.5*simclock.Hour))
	if !mid.Audit.Clean() {
		t.Fatalf("audit: %s", mid.Audit.Summary())
	}
	if d := mid.CompDeficitByUser["alice"]; d <= 0 {
		t.Fatalf("stranded alice accrued no debt (deficit %v)", d)
	}

	// Full horizon: alice's job finishes after the server recovers and
	// she departs mid-drain (the policy never repays here). Her debt
	// must be forgiven, bob's books untouched.
	end := runFair(t, strandScenario(4, outage),
		FairConfig{DisableCompensation: true}, simclock.Time(simclock.Day))
	if !end.Audit.Clean() {
		t.Fatalf("audit: %s", end.Audit.Summary())
	}
	if len(end.Finished) != 1 || end.Finished[0].User != "alice" {
		t.Fatalf("alice's job did not finish: %d finished", len(end.Finished))
	}
	if d, ok := end.CompDeficitByUser["alice"]; ok {
		t.Errorf("departed alice still owed %v GPU-s; want entry forgiven", d)
	}
	if end.CompRepaidGPUSeconds != 0 {
		t.Errorf("uncompensated run repaid %v GPU-s", end.CompRepaidGPUSeconds)
	}
}

// TestZeroCapacityFreezesBooks drives the cluster's capacity to zero
// (every server down) with debt already on the books. With no capacity
// there is no fair entitlement, so the blackout rounds must neither
// accrue new debt (the loss cap is the share shortfall, which is zero)
// nor drain any (no occupancy can materialize) — the books are frozen
// bit for bit, whether or not the policy is compensating, and the
// strict auditor stays clean throughout.
func TestZeroCapacityFreezesBooks(t *testing.T) {
	failures := []Failure{
		// Phase 1: strand alice only — her debt accrues.
		{Server: 0, At: simclock.Time(simclock.Hour), Duration: simclock.Hour},
		// Phase 2: total blackout.
		{Server: 0, At: simclock.Time(3 * simclock.Hour), Duration: simclock.Hour},
		{Server: 1, At: simclock.Time(3 * simclock.Hour), Duration: simclock.Hour},
	}
	for _, fc := range []FairConfig{{DisableCompensation: true}, {}} {
		pre := runFair(t, strandScenario(1e6, failures), fc, simclock.Time(3*simclock.Hour))
		post := runFair(t, strandScenario(1e6, failures), fc, simclock.Time(4*simclock.Hour))
		for _, r := range []*Result{pre, post} {
			if !r.Audit.Clean() {
				t.Fatalf("audit (comp=%v): %s", !fc.DisableCompensation, r.Audit.Summary())
			}
		}
		if d := pre.CompDeficitByUser["alice"]; d <= 0 {
			t.Fatalf("no debt on the books before the blackout (comp=%v)", !fc.DisableCompensation)
		}
		users := make(map[string]bool)
		for u := range pre.CompDeficitByUser {
			users[string(u)] = true
		}
		for u := range post.CompDeficitByUser {
			users[string(u)] = true
		}
		for u := range users {
			before := pre.CompDeficitByUser[job.UserID(u)]
			after := post.CompDeficitByUser[job.UserID(u)]
			if math.Abs(before-after) > 1e-9 {
				t.Errorf("blackout moved user %s's deficit: %v -> %v (comp=%v)",
					u, before, after, !fc.DisableCompensation)
			}
		}
		if math.Abs(pre.CompRepaidGPUSeconds-post.CompRepaidGPUSeconds) > 1e-9 {
			t.Errorf("blackout drained debt: repaid %v -> %v (comp=%v)",
				pre.CompRepaidGPUSeconds, post.CompRepaidGPUSeconds, !fc.DisableCompensation)
		}
	}
}
