package core

import (
	"math"
	"testing"

	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/workload"
)

func TestTicketChangeFlipsShares(t *testing.T) {
	// Equal tickets for the first 6 hours, then a gives its priority
	// away: a drops to 1, b rises to 3. The timeline must show ~50/50
	// then ~25/75.
	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("a", zoo.MustGet("lstm"), 6, 1, 1e6)...)
	specs = append(specs, workload.BatchJobs("b", zoo.MustGet("gru"), 6, 1, 1e6)...)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{
		Cluster:        k80Cluster(2, 4),
		Specs:          specs,
		Seed:           30,
		TimelineWindow: 3 * simclock.Hour,
		TicketChanges: []TicketChange{
			{At: simclock.Time(6 * simclock.Hour), User: "b", Tickets: 3},
		},
	}, FairConfig{}, simclock.Time(12*simclock.Hour))

	ws := res.Timeline.Windows()
	if len(ws) < 4 {
		t.Fatalf("windows = %d", len(ws))
	}
	before := metrics.ShareFractions(ws[0].ByUser)
	after := metrics.ShareFractions(ws[3].ByUser)
	if math.Abs(before["a"]-0.5) > 0.05 {
		t.Errorf("before change: a=%v, want 0.5", before["a"])
	}
	if math.Abs(after["b"]-0.75) > 0.06 {
		t.Errorf("after change: b=%v, want 0.75", after["b"])
	}
}

func TestTicketChangeValidation(t *testing.T) {
	specs := workload.BatchJobs("u", zoo.MustGet("vae"), 1, 1, 1)
	specs, _ = workload.AssignIDs(specs)
	base := Config{Cluster: k80Cluster(1, 4), Specs: specs}
	bad := []TicketChange{
		{At: 0, User: "", Tickets: 1},
		{At: -1, User: "u", Tickets: 1},
		{At: 0, User: "u", Tickets: -1},
	}
	for i, tc := range bad {
		cfg := base
		cfg.TicketChanges = []TicketChange{tc}
		if cfg.Validate() == nil {
			t.Errorf("bad ticket change %d accepted", i)
		}
	}
}

func TestQueueDelays(t *testing.T) {
	// FIFO on a 2-GPU cluster with three sequential 2-GPU jobs: the
	// k-th job waits ≈(k−1)× the job runtime.
	specs := workload.BatchJobs("u", zoo.MustGet("dcgan"), 3, 2, 1.0)
	specs[1].Arrival, specs[2].Arrival = 10, 20
	specs, _ = workload.AssignIDs(specs)
	sim, err := New(Config{Cluster: k80Cluster(1, 2), Specs: specs, Seed: 31},
		MustNewFairPolicy(FairConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(simclock.Time(12 * simclock.Hour))
	if err != nil {
		t.Fatal(err)
	}
	delays := res.QueueDelays()
	if len(delays) != 3 {
		t.Fatalf("%d delays, want 3", len(delays))
	}
	// Under fair time-slicing all three start within the first few
	// quanta (stride rotates them), so delays are bounded by a few
	// rounds — the metric distinguishes this from FIFO-style waiting.
	st := metrics.Summarize(delays)
	if st.Max > 4*360 {
		t.Errorf("max queue delay %v under time-slicing, want ≤ a few quanta", st.Max)
	}
}

func TestQueueDelayNeverRan(t *testing.T) {
	j := job.MustNew(job.Spec{ID: 1, User: "u", Perf: zoo.MustGet("vae"), Gang: 1, TotalMB: 10})
	if _, ok := j.QueueDelay(); ok {
		t.Error("QueueDelay ok for a job that never ran")
	}
	j.NoteFirstRun(500)
	j.NoteFirstRun(900) // second call must not move it
	if d, ok := j.QueueDelay(); !ok || d != 500 {
		t.Errorf("QueueDelay = %v, %v; want 500, true", d, ok)
	}
}
