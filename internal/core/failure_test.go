package core

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/simclock"
	"repro/internal/workload"
)

func TestFailureValidation(t *testing.T) {
	specs := workload.BatchJobs("u", zoo.MustGet("vae"), 1, 1, 1)
	specs, _ = workload.AssignIDs(specs)
	base := Config{Cluster: k80Cluster(2, 4), Specs: specs}
	bad := [][]Failure{
		{{Server: 99, At: 0, Duration: 100}},
		{{Server: -1, At: 0, Duration: 100}},
		{{Server: 0, At: -5, Duration: 100}},
		{{Server: 0, At: 0, Duration: 0}},
	}
	for i, f := range bad {
		cfg := base
		cfg.Failures = f
		if cfg.Validate() == nil {
			t.Errorf("bad failure %d accepted", i)
		}
	}
	good := base
	good.Failures = []Failure{{Server: 1, At: 3600, Duration: 7200}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid failure rejected: %v", err)
	}
}

func TestJobSurvivesServerFailure(t *testing.T) {
	// One job on a 2-server cluster; its server fails mid-run. The job
	// must restart from checkpoint on the other server (one migration)
	// and still finish, paying only the restart cost.
	specs := workload.BatchJobs("u", zoo.MustGet("resnet50"), 1, 2, 2.0)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{
		Cluster: k80Cluster(2, 2),
		Specs:   specs,
		Seed:    1,
		Failures: []Failure{
			// The job lands on server 0 (best fit, lowest ID); kill it
			// after an hour for two hours.
			{Server: 0, At: simclock.Time(simclock.Hour), Duration: 2 * simclock.Hour},
		},
	}, FairConfig{}, simclock.Time(12*simclock.Hour))
	if len(res.Finished) != 1 {
		t.Fatalf("job did not survive the failure (finished=%d)", len(res.Finished))
	}
	j := res.Finished[0]
	if j.Migrations() < 1 {
		t.Errorf("job recovered without a migration?")
	}
	// 2 h of work plus a restart: must beat the 3 h it would take if
	// it had waited out the outage.
	if jct := j.JCT(); jct > 3*simclock.Hour {
		t.Errorf("JCT %v — recovery did not move the job off the dead server", jct)
	}
	// The job finishes before the server recovers, so only the failure
	// transition is observable.
	if len(res.Log.Filter("failure")) != 1 {
		t.Errorf("failure event not logged")
	}
}

func TestFailureWithMigrationDisabledStrands(t *testing.T) {
	specs := workload.BatchJobs("u", zoo.MustGet("resnet50"), 1, 2, 2.0)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{
		Cluster:          k80Cluster(2, 2),
		Specs:            specs,
		Seed:             1,
		DisableMigration: true,
		Failures: []Failure{
			{Server: 0, At: simclock.Time(simclock.Hour), Duration: 2 * simclock.Hour},
		},
	}, FairConfig{}, simclock.Time(12*simclock.Hour))
	if len(res.Finished) != 1 {
		t.Fatalf("job never finished")
	}
	// Pinned to the failed server: it must wait out the 2 h outage.
	if jct := res.Finished[0].JCT(); jct < 4*simclock.Hour-400 {
		t.Errorf("JCT %v — job should have waited out the outage when pinned", jct)
	}
	if res.Migrations != 0 {
		t.Errorf("migrated despite DisableMigration")
	}
}

func TestCapacityAccountingDuringFailure(t *testing.T) {
	// A solo saturating user: utilization should stay ≈1 because the
	// capacity denominator excludes the failed server.
	specs := workload.BatchJobs("u", zoo.MustGet("lstm"), 8, 1, 1e6)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{
		Cluster: k80Cluster(2, 4),
		Specs:   specs,
		Seed:    2,
		Failures: []Failure{
			{Server: 1, At: 0, Duration: 6 * simclock.Hour},
		},
	}, FairConfig{}, simclock.Time(6*simclock.Hour))
	if u := res.Utilization.Fraction(); u < 0.95 {
		t.Errorf("utilization %v with failure-adjusted capacity, want ≥0.95", u)
	}
	// And usage must fit within the surviving half.
	var total float64
	usage := res.TotalUsageByUser()
	for _, u := range job.SortedUsers(usage) {
		total += usage[u]
	}
	if total > 4*6*simclock.Hour*1.01 {
		t.Errorf("used %v GPU-s, more than the surviving server offers", total)
	}
}

func TestFairnessAcrossFailure(t *testing.T) {
	// Two equal users; one server dies for a while. Shares must stay
	// equal — the shrunken cluster is still split fairly.
	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("a", zoo.MustGet("lstm"), 6, 1, 1e6)...)
	specs = append(specs, workload.BatchJobs("b", zoo.MustGet("gru"), 6, 1, 1e6)...)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{
		Cluster: k80Cluster(3, 4),
		Specs:   specs,
		Seed:    3,
		Failures: []Failure{
			{Server: 1, At: simclock.Time(2 * simclock.Hour), Duration: 4 * simclock.Hour},
		},
	}, FairConfig{}, simclock.Time(12*simclock.Hour))
	sh := shares(res)
	if d := sh["a"] - sh["b"]; d > 0.05 || d < -0.05 {
		t.Fatalf("shares diverged across failure: %v", sh)
	}
	if err := resMaxShareErrBelow(res, 0.05); err != nil {
		t.Error(err)
	}
}

func resMaxShareErrBelow(res *Result, limit float64) error {
	if e := res.MaxShareError(); e > limit {
		return &shareErr{e}
	}
	return nil
}

type shareErr struct{ e float64 }

func (s *shareErr) Error() string { return "share error too high" }

func TestRepeatedFailuresDoNotLoseJobs(t *testing.T) {
	// Rolling outages across every server; all jobs must still finish
	// (checkpoint restart is lossless) and the engine must never
	// double-book a device.
	specs := workload.MustGenerate(zoo, workload.Config{
		Seed: 4,
		Users: []workload.UserSpec{{
			User: "u", NumJobs: 10, ArrivalRatePerHour: 2, MeanK80Hours: 1,
			GangDist: []workload.GangWeight{{Gang: 1, Weight: 0.7}, {Gang: 2, Weight: 0.3}},
		}},
		MaxK80Hours: 3,
	})
	var failures []Failure
	for s := 0; s < 3; s++ {
		failures = append(failures, Failure{
			Server:   gpu.ServerID(s),
			At:       simclock.Time(float64(s+1) * 2 * simclock.Hour),
			Duration: simclock.Hour,
		})
	}
	res := runFair(t, Config{
		Cluster:  k80Cluster(3, 4),
		Specs:    specs,
		Seed:     4,
		Failures: failures,
	}, FairConfig{}, simclock.Time(2*simclock.Day))
	if res.Unfinished != 0 {
		t.Fatalf("%d jobs lost to rolling failures", res.Unfinished)
	}
	if got := len(res.Log.Filter("failure")); got != 3 {
		t.Errorf("%d failure events, want 3", got)
	}
}
