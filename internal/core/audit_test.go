package core

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/workload"
)

// mkAuditor builds a strict auditor over a small cluster with one
// active gang-1 job, returning both plus the job's device assignment.
func mkAuditor(t *testing.T) (*auditor, map[job.ID]*job.Job, []gpu.DeviceID) {
	t.Helper()
	cl := gpu.MustNew(gpu.Spec{Gen: gpu.K80, Servers: 2, GPUsPerSrv: 2})
	specs := workload.BatchJobs("u", workload.DefaultZoo().MustGet("vae"), 1, 1, 1)
	specs, _ = workload.AssignIDs(specs)
	j, err := job.New(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	a := newAuditor(AuditStrict, cl, 360)
	a.beginRound(1, 0, map[gpu.Generation]int{gpu.K80: 4}, nil)
	return a, map[job.ID]*job.Job{j.ID: j}, cl.Server(0).Devices
}

func TestAuditQuarantineInvariant(t *testing.T) {
	a, active, devs := mkAuditor(t)
	var id job.ID
	for i := range active {
		id = i
	}
	asg := map[job.ID][]gpu.DeviceID{id: devs[:1]}

	// Placement on a healthy, unquarantined server is clean.
	a.checkAssignment(asg, active, nil, nil)
	if n := a.rep.Counts[InvQuarantine]; n != 0 {
		t.Fatalf("clean placement flagged: %d quarantine violations", n)
	}

	// The same placement with the server quarantined must violate
	// InvQuarantine — and only it (the server is not down).
	a.checkAssignment(asg, active, nil, map[gpu.ServerID]bool{0: true})
	if n := a.rep.Counts[InvQuarantine]; n != 1 {
		t.Errorf("quarantined-server placement: %d violations, want 1", n)
	}
	if n := a.rep.Counts[InvDownServer]; n != 0 {
		t.Errorf("quarantine misreported as down-server: %d", n)
	}

	// Down and quarantined are independent invariants: both fire when
	// both states hold.
	a.checkAssignment(asg, active, map[gpu.ServerID]bool{0: true}, map[gpu.ServerID]bool{0: true})
	if a.rep.Counts[InvQuarantine] != 2 || a.rep.Counts[InvDownServer] != 1 {
		t.Errorf("down+quarantined: got quarantine=%d down=%d, want 2 and 1",
			a.rep.Counts[InvQuarantine], a.rep.Counts[InvDownServer])
	}
}

func TestAuditCompensationInvariant(t *testing.T) {
	users := []job.UserID{"u"}
	cases := []struct {
		name                      string
		before, lost, repaid, aft float64
		violations                int
	}{
		{"clean accrual", 0, 720, 0, 720, 0},
		{"clean drain", 720, 0, 300, 420, 0},
		{"clean payoff", 500, 0, 500, 0, 0},
		{"negative repaid", 100, 0, -5, 105, 1},
		{"repaid exceeds deficit", 100, 0, 150, 0, 1}, // balance fine: want is negative-clamped
		{"books off", 100, 100, 0, 100, 1},
		{"negative after", 0, 0, 0, -50, 2}, // negative + balance
	}
	for _, tc := range cases {
		a, _, _ := mkAuditor(t)
		a.checkCompensation(users,
			map[job.UserID]float64{"u": tc.before},
			map[job.UserID]float64{"u": tc.lost},
			map[job.UserID]float64{"u": tc.repaid},
			map[job.UserID]float64{"u": tc.aft})
		if got := a.rep.Counts[InvCompensation]; got != tc.violations {
			t.Errorf("%s: %d violations, want %d", tc.name, got, tc.violations)
		}
	}
}

func TestAuditCompensationMonotoneDrain(t *testing.T) {
	// While a user is active and accrues no new losses, the deficit
	// must never rise: a round claiming it did is a violation.
	a, _, _ := mkAuditor(t)
	users := []job.UserID{"u"}
	deficit := 1000.0
	for round := 0; round < 5; round++ {
		repaid := 150.0
		after := deficit - repaid
		a.checkCompensation(users,
			map[job.UserID]float64{"u": deficit},
			nil,
			map[job.UserID]float64{"u": repaid},
			map[job.UserID]float64{"u": after})
		deficit = after
	}
	if n := a.rep.Counts[InvCompensation]; n != 0 {
		t.Fatalf("monotone drain flagged: %d violations", n)
	}
	// A deficit that grows without a loss must be flagged.
	a.checkCompensation(users,
		map[job.UserID]float64{"u": deficit},
		nil,
		nil,
		map[job.UserID]float64{"u": deficit + 1})
	if n := a.rep.Counts[InvCompensation]; n != 1 {
		t.Fatalf("spontaneous deficit growth not flagged (violations=%d)", n)
	}
}
