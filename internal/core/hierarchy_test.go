package core

import (
	"math"
	"testing"

	"repro/internal/fairshare"
	"repro/internal/job"
	"repro/internal/simclock"
	"repro/internal/workload"
)

func TestHierarchicalFairnessEndToEnd(t *testing.T) {
	// Org "research" (3 users) and org "prod" (1 user) hold equal org
	// tickets. Flat fairness would give prod's single user 25%;
	// hierarchical fairness must give each ORG half the cluster.
	h := fairshare.MustNewHierarchy(map[string]*fairshare.Org{
		"research": {Tickets: 1, Weights: map[job.UserID]float64{"r1": 1, "r2": 1, "r3": 1}},
		"prod":     {Tickets: 1, Weights: map[job.UserID]float64{"p1": 1}},
	})
	var specs []job.Spec
	for _, u := range []job.UserID{"r1", "r2", "r3", "p1"} {
		specs = append(specs, workload.BatchJobs(u, zoo.MustGet("lstm"), 6, 1, 200)...)
	}
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{Cluster: k80Cluster(2, 4), Specs: specs, Seed: 20},
		FairConfig{Hierarchy: h}, simclock.Time(12*simclock.Hour))

	sh := shares(res)
	research := sh["r1"] + sh["r2"] + sh["r3"]
	prod := sh["p1"]
	if math.Abs(research-0.5) > 0.04 || math.Abs(prod-0.5) > 0.04 {
		t.Fatalf("org shares research=%v prod=%v, want 0.5 each", research, prod)
	}
	// Intra-org equality among the research users.
	for _, u := range []job.UserID{"r1", "r2", "r3"} {
		if math.Abs(sh[u]-research/3) > 0.03 {
			t.Errorf("user %s share %v, want ≈%v", u, sh[u], research/3)
		}
	}
}

func TestHierarchyWorkConservationAcrossOrgs(t *testing.T) {
	// prod's user departs (short jobs); research must inherit the
	// whole cluster afterwards.
	h := fairshare.MustNewHierarchy(map[string]*fairshare.Org{
		"research": {Tickets: 1, Weights: map[job.UserID]float64{"r1": 1}},
		"prod":     {Tickets: 1, Weights: map[job.UserID]float64{"p1": 1}},
	})
	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("r1", zoo.MustGet("lstm"), 4, 1, 100)...)
	specs = append(specs, workload.BatchJobs("p1", zoo.MustGet("gru"), 4, 1, 1)...)
	specs, _ = workload.AssignIDs(specs)
	res := runFair(t, Config{Cluster: k80Cluster(1, 4), Specs: specs, Seed: 21},
		FairConfig{Hierarchy: h}, simclock.Time(8*simclock.Hour))
	if u := res.Utilization.Fraction(); u < 0.95 {
		t.Fatalf("utilization %v after prod departed, want work conservation", u)
	}
	// p1's 4 jobs at half share of 4 GPUs: 1h standalone each ⇒ done
	// by ~2-3h.
	finishedP1 := 0
	for _, j := range res.Finished {
		if j.User == "p1" {
			finishedP1++
		}
	}
	if finishedP1 != 4 {
		t.Fatalf("p1 finished %d of 4", finishedP1)
	}
}
