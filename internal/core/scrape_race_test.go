package core

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/span"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// TestScrapeWhileEngineSteps hammers the whole introspection surface
// — /metrics, /debug/sched, /debug/flight (including ?save=1 dumps)
// — from several goroutines while the engine runs rounds with the
// full observability stack attached. Its job is to fail under -race
// if any Observer/Tracer/Recorder path touches shared state without
// its lock; responses just need to be well-formed 200s.
func TestScrapeWhileEngineSteps(t *testing.T) {
	o := obs.New()
	o.SetTracer(span.New("race-test", 0))
	rec := flight.New(8, filepath.Join(t.TempDir(), "flight.json"))

	specs := workload.BatchJobs("a", zoo.MustGet("resnet50"), 6, 1, 30)
	specs = append(specs, workload.BatchJobs("b", zoo.MustGet("vae"), 6, 2, 30)...)
	specs, _ = workload.AssignIDs(specs)
	sim, err := New(Config{
		Cluster: mixedCluster(),
		Specs:   specs,
		Seed:    11,
		Obs:     o,
		Flight:  rec,
	}, MustNewFairPolicy(FairConfig{EnableTrading: true}))
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(obs.HandlerOpts(o, obs.MuxOptions{Flight: rec}))
	defer srv.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	paths := []string{"/metrics", "/debug/sched", "/debug/flight", "/debug/flight?save=1", "/healthz"}
	for _, p := range paths {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Error(err)
				}
				_ = resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status %d", url, resp.StatusCode)
					return
				}
			}
		}(srv.URL + p)
	}

	if _, err := sim.Run(simclock.Time(96 * simclock.Hour)); err != nil {
		t.Error(err)
	}
	close(done)
	wg.Wait()
}
