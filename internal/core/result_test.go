package core

import (
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// TestResultZeroValue pins down the metric methods on an empty Result:
// no panics, no NaNs, empty slices.
func TestResultZeroValue(t *testing.T) {
	var r Result
	if got := r.MaxShareError(); got != 0 {
		t.Errorf("MaxShareError on zero Result = %v, want 0", got)
	}
	if got := r.JCTs(); len(got) != 0 {
		t.Errorf("JCTs on zero Result = %v, want empty", got)
	}
	if got := r.QueueDelays(); len(got) != 0 {
		t.Errorf("QueueDelays on zero Result = %v, want empty", got)
	}
	if got := r.TotalUsageByUser(); len(got) != 0 {
		t.Errorf("TotalUsageByUser on zero Result = %v, want empty", got)
	}
	if got := r.Utilization.Fraction(); got != 0 {
		t.Errorf("Utilization.Fraction on zero Result = %v, want 0", got)
	}
}

// TestResultFairReferenceWithoutUsage: a fair reference exists but the
// user never ran (e.g. the run was cut before their first quantum) —
// the share error must be the full entitlement fraction, not NaN.
func TestResultFairReferenceWithoutUsage(t *testing.T) {
	r := Result{
		FairUsageByUser: map[job.UserID]float64{"ghost": 3600},
	}
	if got := r.MaxShareError(); math.IsNaN(got) || got != 1 {
		t.Errorf("MaxShareError with fair reference but no usage = %v, want 1", got)
	}
}

// TestResultSingleJob runs one 1-GPU job to completion and checks
// every metric has its degenerate single-sample shape.
func TestResultSingleJob(t *testing.T) {
	z := workload.DefaultZoo()
	specs, err := workload.AssignIDs(workload.BatchJobs("solo", z.MustGet("lstm"), 1, 1, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	cluster := gpu.MustNew(gpu.Spec{Gen: gpu.K80, Servers: 1, GPUsPerSrv: 1})
	sim, err := New(Config{Cluster: cluster, Specs: specs, Seed: 3}, MustNewFairPolicy(FairConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(simclock.Time(simclock.Day))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Finished) != 1 || res.Unfinished != 0 {
		t.Fatalf("finished %d unfinished %d, want 1/0", len(res.Finished), res.Unfinished)
	}
	jcts := res.JCTs()
	if len(jcts) != 1 || jcts[0] <= 0 {
		t.Fatalf("JCTs = %v", jcts)
	}
	delays := res.QueueDelays()
	if len(delays) != 1 || delays[0] < 0 {
		t.Fatalf("QueueDelays = %v", delays)
	}
	// One user alone: observed share and fair share are both 100%, so
	// the error must be ~0.
	if got := res.MaxShareError(); got > 1e-9 {
		t.Errorf("single-user MaxShareError = %v, want 0", got)
	}
	usage := res.TotalUsageByUser()
	if usage["solo"] <= 0 {
		t.Errorf("TotalUsageByUser = %v", usage)
	}
	if res.Audit == nil || !res.Audit.Clean() {
		t.Errorf("audit not clean on single-job run: %v", res.Audit)
	}
}

// TestResultAllUnfinished cuts the horizon long before any job can
// complete: JCTs and QueueDelays must be empty while usage metrics
// still accumulate.
func TestResultAllUnfinished(t *testing.T) {
	z := workload.DefaultZoo()
	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("a", z.MustGet("vae"), 3, 1, 1e6)...)
	specs = append(specs, workload.BatchJobs("b", z.MustGet("gru"), 3, 1, 1e6)...)
	specs, err := workload.AssignIDs(specs)
	if err != nil {
		t.Fatal(err)
	}
	cluster := gpu.MustNew(gpu.Spec{Gen: gpu.K80, Servers: 1, GPUsPerSrv: 4})
	sim, err := New(Config{Cluster: cluster, Specs: specs, Seed: 4}, MustNewFairPolicy(FairConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(simclock.Time(2 * simclock.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Finished) != 0 || res.Unfinished != 6 {
		t.Fatalf("finished %d unfinished %d, want 0/6", len(res.Finished), res.Unfinished)
	}
	if got := res.JCTs(); len(got) != 0 {
		t.Errorf("JCTs = %v, want empty", got)
	}
	if got := res.QueueDelays(); len(got) != 0 {
		t.Errorf("QueueDelays = %v, want empty", got)
	}
	usage := res.TotalUsageByUser()
	if usage["a"] <= 0 || usage["b"] <= 0 {
		t.Errorf("usage should accumulate for unfinished jobs: %v", usage)
	}
	if err := res.MaxShareError(); math.IsNaN(err) {
		t.Error("MaxShareError is NaN on all-unfinished run")
	}
	if res.Utilization.Fraction() <= 0 || res.Utilization.Fraction() > 1 {
		t.Errorf("utilization = %v", res.Utilization.Fraction())
	}
}
