// Package core contains the Gandiva_fair scheduler and the
// round-based cluster simulation engine that drives it (and the
// baseline policies) over the simulated GPU substrate.
//
// Architecture: the engine (Sim) owns ground truth — jobs, devices,
// the clock — and exposes a policy interface mirroring the paper's
// central scheduler: each scheduling quantum the policy is shown the
// runnable jobs and decides which of them run and on which GPU
// generation; the engine then places gangs onto concrete devices,
// charges suspend/resume/migration overheads, advances training
// progress, and reports back what actually ran so the policy can
// update its fairness accounting.
package core

import (
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/profiler"
	"repro/internal/simclock"
	"repro/internal/trade"
)

// RoundState is the snapshot a policy sees at the start of a round.
type RoundState struct {
	Now     simclock.Time
	Quantum simclock.Duration
	Cluster *gpu.Cluster

	// Jobs lists all runnable (arrived, unfinished) jobs. Policies
	// must not mutate them.
	Jobs []*job.Job

	// Tickets are the per-user fair-share weights.
	Tickets map[job.UserID]float64

	// Prof exposes profiled throughput estimates.
	Prof *profiler.Profiler

	// PrevGen maps each job to the generation it last ran on (absent
	// for never-run jobs) — for migration-aware decisions.
	PrevGen map[job.ID]gpu.Generation

	// MigrationDisabled tells policies the engine will refuse to move
	// previously-run jobs, so they should not request generation
	// changes (the no-migration ablation).
	MigrationDisabled bool

	// Down marks servers that are failed this round; their GPUs are
	// unplaceable. Use CapacityByGen for the net capacity.
	Down map[gpu.ServerID]bool

	// Obs is the engine's observer — nil when uninstrumented. All its
	// methods are nil-safe, so policies may call it unconditionally to
	// time sub-phases (waterfill, trade) and explain their choices.
	Obs *obs.Observer
}

// CapacityByGen returns per-generation GPU counts net of failed
// servers — the capacity policies must plan against.
func (st *RoundState) CapacityByGen() map[gpu.Generation]int {
	caps := st.Cluster.CapacityByGen()
	for sid, down := range st.Down {
		if !down {
			continue
		}
		srv := st.Cluster.Server(sid)
		caps[srv.Gen] -= srv.NumGPUs()
		if caps[srv.Gen] <= 0 {
			delete(caps, srv.Gen)
		}
	}
	return caps
}

// Decision is a policy's output for one round.
type Decision struct {
	// Run lists the jobs to execute this quantum and the generation
	// each should run on. Total gang width per generation must not
	// exceed cluster capacity; the engine validates this.
	Run []placement.Request

	// Trades logs the resource trades behind this decision (empty
	// for policies without trading).
	Trades []trade.Trade
}

// RanInfo describes one job's execution during a round.
type RanInfo struct {
	User         job.UserID
	Gen          gpu.Generation
	Gang         int
	OccupiedSecs simclock.Duration // wall time GPUs were held
	UsefulSecs   simclock.Duration // minibatch-productive time
	Migrated     bool
	Finished     bool
}

// ExecReport tells the policy what actually happened in the round
// (jobs can lose time to migration or finish early, and fragmentation
// can leave a requested job unplaced).
type ExecReport struct {
	Ran      map[job.ID]RanInfo
	Unplaced []job.ID
}

// Policy is a pluggable cluster scheduler. Implementations include
// the Gandiva_fair policy in this package and the baselines in
// internal/baselines. Policies are driven from the single simulation
// goroutine; no synchronization is needed.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string

	// Decide picks this round's job→generation assignments.
	Decide(st *RoundState) Decision

	// Executed reports the round's actual outcome for accounting.
	Executed(rep *ExecReport)

	// JobFinished tells the policy to drop state for a job.
	JobFinished(id job.ID)
}
