// Package core contains the Gandiva_fair scheduler and the
// round-based cluster simulation engine that drives it (and the
// baseline policies) over the simulated GPU substrate.
//
// Architecture: the engine (Sim) owns ground truth — jobs, devices,
// the clock — and exposes a policy interface mirroring the paper's
// central scheduler: each scheduling quantum the policy is shown the
// runnable jobs and decides which of them run and on which GPU
// generation; the engine then places gangs onto concrete devices,
// charges suspend/resume/migration overheads, advances training
// progress, and reports back what actually ran so the policy can
// update its fairness accounting.
package core

import (
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/profiler"
	"repro/internal/simclock"
	"repro/internal/trade"
)

// RoundState is the snapshot a policy sees at the start of a round.
type RoundState struct {
	Now     simclock.Time
	Quantum simclock.Duration
	Cluster *gpu.Cluster

	// Jobs lists all runnable (arrived, unfinished) jobs in ID order.
	// Policies must not mutate them, and must not retain the slice
	// past Decide — the engine reuses its backing array every round.
	//gflint:noretain backing array reused by the engine every round
	Jobs []*job.Job

	// Tickets are the per-user fair-share weights.
	Tickets map[job.UserID]float64

	// Prof exposes profiled throughput estimates.
	Prof *profiler.Profiler

	// PrevGen maps each job to the generation it last ran on (absent
	// for never-run jobs) — for migration-aware decisions.
	PrevGen map[job.ID]gpu.Generation

	// MigrationDisabled tells policies the engine will refuse to move
	// previously-run jobs, so they should not request generation
	// changes (the no-migration ablation).
	MigrationDisabled bool

	// Down marks servers that are failed this round; their GPUs are
	// unplaceable. Use CapacityByGen for the net capacity.
	Down map[gpu.ServerID]bool

	// Quarantined marks healthy servers the quarantine circuit
	// breaker has excluded from placement and backfill (flaky-server
	// cool-off). Disjoint concern from Down — a server can be in
	// either or both; CapacityByGen subtracts the union once.
	Quarantined map[gpu.ServerID]bool

	// Pinned marks jobs in migration-failure backoff: the engine will
	// refuse to move them this round, so policies should only fund
	// them on their previous generation.
	Pinned map[job.ID]bool

	// Deficit is each user's outstanding failure-compensation debt in
	// occupied GPU-seconds (GPU time lost to faults, not yet repaid).
	// Policies that honor it should report repayments via
	// Decision.Repaid.
	Deficit map[job.UserID]float64

	// Obs is the engine's observer — nil when uninstrumented. All its
	// methods are nil-safe, so policies may call it unconditionally to
	// time sub-phases (waterfill, trade) and explain their choices.
	Obs *obs.Observer
}

// CapacityByGen returns per-generation GPU counts net of failed
// servers — the capacity policies must plan against.
func (st *RoundState) CapacityByGen() map[gpu.Generation]int {
	caps := st.Cluster.CapacityByGen()
	seen := make(map[gpu.ServerID]bool, len(st.Down)+len(st.Quarantined))
	subtract := func(m map[gpu.ServerID]bool) {
		for sid, out := range m {
			if !out || seen[sid] {
				continue
			}
			seen[sid] = true
			srv := st.Cluster.Server(sid)
			caps[srv.Gen] -= srv.NumGPUs()
			if caps[srv.Gen] <= 0 {
				delete(caps, srv.Gen)
			}
		}
	}
	subtract(st.Down)
	subtract(st.Quarantined)
	return caps
}

// Decision is a policy's output for one round.
type Decision struct {
	// Run lists the jobs to execute this quantum and the generation
	// each should run on. Total gang width per generation must not
	// exceed cluster capacity; the engine validates this.
	Run []placement.Request

	// Trades logs the resource trades behind this decision (empty
	// for policies without trading).
	Trades []trade.Trade

	// Repaid, when non-nil, declares the policy is honoring
	// RoundState.Deficit this round; its values are the per-user
	// entitlement granted beyond the no-debt water-fill share, in
	// occupied GPU-seconds. The engine drains each participating
	// debtor's deficit by the catch-up that actually materializes
	// (occupied time beyond the fair reference, capped at the debt) —
	// grants surface as excess occupancy via the policy's own credit
	// accounting. Nil for policies without compensation.
	Repaid map[job.UserID]float64
}

// RanInfo describes one job's execution during a round.
type RanInfo struct {
	User         job.UserID
	Gen          gpu.Generation
	Gang         int
	OccupiedSecs simclock.Duration // wall time GPUs were held
	UsefulSecs   simclock.Duration // minibatch-productive time
	Migrated     bool
	Finished     bool
}

// ExecReport tells the policy what actually happened in the round
// (jobs can lose time to migration or finish early, and fragmentation
// can leave a requested job unplaced).
type ExecReport struct {
	Ran      map[job.ID]RanInfo
	Unplaced []job.ID
}

// Policy is a pluggable cluster scheduler. Implementations include
// the Gandiva_fair policy in this package and the baselines in
// internal/baselines. Policies are driven from the single simulation
// goroutine; no synchronization is needed.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string

	// Decide picks this round's job→generation assignments.
	Decide(st *RoundState) Decision

	// Executed reports the round's actual outcome for accounting.
	Executed(rep *ExecReport)

	// JobFinished tells the policy to drop state for a job.
	JobFinished(id job.ID)
}
