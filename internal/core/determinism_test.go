package core

import (
	"testing"

	"repro/internal/simclock"
	"repro/internal/workload"
)

// TestCrossRunBitExactAggregates tightens TestDeterminism to exact
// float equality on the aggregate results: after the sorted-iteration
// fixes (availTotal, publishShares, result, TotalUsageByUser,
// TotalOccupied/TotalUseful), two runs of one seed must agree to the
// last bit, not merely to 1e-6.
func TestCrossRunBitExactAggregates(t *testing.T) {
	run := func() *Result {
		specs := workload.MustGenerate(zoo, workload.Config{
			Seed: 23,
			Users: []workload.UserSpec{
				{User: "a", NumJobs: 12, ArrivalRatePerHour: 3},
				{User: "b", NumJobs: 12, ArrivalRatePerHour: 3},
				{User: "c", NumJobs: 6, ArrivalRatePerHour: 1},
			},
		})
		cfg := Config{Cluster: mixedCluster(), Specs: specs, Seed: 23}
		return runFair(t, cfg, FairConfig{EnableTrading: true}, simclock.Time(12*simclock.Hour))
	}
	r1, r2 := run(), run()

	if r1.Utilization != r2.Utilization {
		t.Errorf("Utilization differs: %+v vs %+v", r1.Utilization, r2.Utilization)
	}
	if a, b := r1.TotalOccupied(), r2.TotalOccupied(); a != b {
		t.Errorf("TotalOccupied differs: %v vs %v", a, b)
	}
	if a, b := r1.TotalUseful(), r2.TotalUseful(); a != b {
		t.Errorf("TotalUseful differs: %v vs %v", a, b)
	}
	if a, b := r1.MaxShareError(), r2.MaxShareError(); a != b {
		t.Errorf("MaxShareError differs: %v vs %v", a, b)
	}
	u1, u2 := r1.TotalUsageByUser(), r2.TotalUsageByUser()
	for u, v := range u1 {
		if u2[u] != v {
			t.Errorf("usage differs for %s: %v vs %v", u, v, u2[u])
		}
	}
	for g, a := range r1.UtilByGen {
		if b := r2.UtilByGen[g]; a != b {
			t.Errorf("UtilByGen[%v] differs: %+v vs %+v", g, a, b)
		}
	}
}

// TestResultAggregatesRepeatable calls the aggregate accessors many
// times on one Result: with sorted iteration the answers are
// bit-identical regardless of the map order each call happens to see.
func TestResultAggregatesRepeatable(t *testing.T) {
	specs := workload.MustGenerate(zoo, workload.Config{
		Seed: 5,
		Users: []workload.UserSpec{
			{User: "a", NumJobs: 10, ArrivalRatePerHour: 4},
			{User: "b", NumJobs: 10, ArrivalRatePerHour: 4},
		},
	})
	res := runFair(t, Config{Cluster: mixedCluster(), Specs: specs, Seed: 5},
		FairConfig{EnableTrading: true}, simclock.Time(8*simclock.Hour))

	occ, use, mse := res.TotalOccupied(), res.TotalUseful(), res.MaxShareError()
	usage := res.TotalUsageByUser()
	for trial := 1; trial < 100; trial++ {
		if got := res.TotalOccupied(); got != occ {
			t.Fatalf("trial %d: TotalOccupied %v vs %v", trial, got, occ)
		}
		if got := res.TotalUseful(); got != use {
			t.Fatalf("trial %d: TotalUseful %v vs %v", trial, got, use)
		}
		if got := res.MaxShareError(); got != mse {
			t.Fatalf("trial %d: MaxShareError %v vs %v", trial, got, mse)
		}
		for u, v := range res.TotalUsageByUser() {
			if usage[u] != v {
				t.Fatalf("trial %d: usage[%s] %v vs %v", trial, u, v, usage[u])
			}
		}
	}
}
