package core

import (
	"fmt"
	"sort"

	"repro/internal/fairshare"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/stride"
	"repro/internal/trade"
)

// FairConfig tunes the Gandiva_fair policy.
type FairConfig struct {
	// EnableTrading turns the automatic resource trading on (the
	// paper's full system). Off, the policy is the
	// heterogeneity-blind fair scheduler (the paper's no-trade
	// baseline).
	EnableTrading bool

	// Trade configures the trading loop when enabled.
	Trade trade.Config

	// MinSamples is how many profiler observations a job needs on a
	// generation before its estimate feeds trading. Zero means 1.
	MinSamples int

	// MigrationCooldown is the minimum number of rounds between
	// generation changes for one job, damping migration thrash when a
	// user's entitlement straddles generations. Zero means 10.
	MigrationCooldown int

	// Hierarchy, when set, replaces the flat per-user tickets with
	// two-level org → user fairness: each round the orgs' tickets are
	// flattened over the currently active users (see
	// fairshare.Hierarchy). RoundState tickets are then ignored.
	Hierarchy *fairshare.Hierarchy

	// DisableCompensation turns off failure compensation: deficits in
	// RoundState.Deficit are ignored and Decision.Repaid stays nil
	// (the compensation ablation).
	DisableCompensation bool

	// CompMaxShare caps per-round failure repayment at this fraction
	// of total capacity, so catch-up cannot crowd out live shares.
	// Zero means 0.25.
	CompMaxShare float64
}

// FairPolicy implements Gandiva_fair: ticket fair share with
// water-filling, per-user gang-aware stride scheduling realized
// through per-(user, generation) deficit credits, work-conserving
// backfill, and optional automatic trading.
//
// Fairness mechanics per round:
//
//  1. Water-filling splits cluster capacity among active users by
//     tickets, capped by demand (fairshare.ComputeAllocation), then
//     trading (optionally) exchanges entitlement between generations
//     at Pareto prices.
//  2. Each user's per-generation entitlement accrues into a credit
//     counter. A gang is scheduled against credits, so a user whose
//     big gang does not fit this round keeps accumulating credit and
//     catches up later — gang granularity cannot cause starvation.
//  3. Within a user, jobs are picked in gang-aware stride pass
//     order, so a user cannot bias their own jobs' shares by
//     splitting or merging work. Jobs stick to the generation they
//     last ran on when credit allows, and generation changes are
//     rate-limited by a cooldown to damp migration thrash.
//  4. Capacity left after all credits are spent is backfilled by a
//     global stride pass (charged, so chronic backfillers are
//     deprioritized) — work conservation without violating anyone's
//     guarantee.
type FairPolicy struct {
	cfg FairConfig

	userSched map[job.UserID]*stride.Scheduler
	backfill  *stride.Scheduler
	credit    map[job.UserID]fairshare.Entitlement
	jobUser   map[job.ID]job.UserID

	round     int
	noMigrate bool            // engine refuses migrations this run
	pinned    map[job.ID]bool // jobs in migration-failure backoff this round
	lastMig   map[job.ID]int  // round of the job's last generation change

	// pending maps jobs scheduled this round to their charging info,
	// consumed by Executed.
	pending map[job.ID]chargeInfo

	// waterfill memoizes the non-debt water-fill across rounds: most
	// rounds repeat the previous round's tickets/demand/capacity, so
	// the solve — and its map churn — amortizes away.
	waterfill *fairshare.AllocationSolver
}

type chargeInfo struct {
	user       job.UserID
	gen        gpu.Generation
	gang       int
	jobTickets float64
	viaCredit  bool
}

// NewFairPolicy constructs the policy.
func NewFairPolicy(cfg FairConfig) (*FairPolicy, error) {
	if cfg.MinSamples == 0 {
		cfg.MinSamples = 1
	}
	if cfg.MinSamples < 0 {
		return nil, fmt.Errorf("core: negative MinSamples")
	}
	if cfg.MigrationCooldown == 0 {
		cfg.MigrationCooldown = 10
	}
	if cfg.MigrationCooldown < 0 {
		return nil, fmt.Errorf("core: negative MigrationCooldown")
	}
	if cfg.CompMaxShare == 0 {
		cfg.CompMaxShare = 0.25
	}
	if cfg.CompMaxShare < 0 || cfg.CompMaxShare > 1 {
		return nil, fmt.Errorf("core: CompMaxShare %v outside (0,1]", cfg.CompMaxShare)
	}
	if err := cfg.Trade.Validate(); err != nil {
		return nil, err
	}
	return &FairPolicy{
		cfg:       cfg,
		userSched: make(map[job.UserID]*stride.Scheduler),
		backfill:  stride.New(stride.GangAware),
		credit:    make(map[job.UserID]fairshare.Entitlement),
		jobUser:   make(map[job.ID]job.UserID),
		lastMig:   make(map[job.ID]int),
		pending:   make(map[job.ID]chargeInfo),
		waterfill: fairshare.NewAllocationSolver(),
	}, nil
}

// MustNewFairPolicy is NewFairPolicy but panics on bad config.
func MustNewFairPolicy(cfg FairConfig) *FairPolicy {
	p, err := NewFairPolicy(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements Policy.
func (p *FairPolicy) Name() string {
	if p.cfg.EnableTrading {
		return "gandiva-fair"
	}
	return "gandiva-fair-no-trade"
}

// Decide implements Policy.
func (p *FairPolicy) Decide(st *RoundState) Decision {
	byUser := groupByUser(st.Jobs)
	users := sortedUsers(byUser)
	caps := st.CapacityByGen()

	// 1. Fair share.
	st.Obs.PhaseStart(obs.PhaseWaterfill)
	tickets := st.Tickets
	if p.cfg.Hierarchy != nil {
		tickets = p.cfg.Hierarchy.Flatten(users)
	}
	demand := make(map[job.UserID]float64, len(byUser))
	jobsPer := make(map[job.UserID]int, len(byUser))
	for u, js := range byUser {
		for _, j := range js {
			demand[u] += float64(j.Gang)
		}
		jobsPer[u] = len(js)
	}
	// Solve is memoized (fairshare.AllocationSolver); the result is
	// shared storage, but every consumer below either reads it or
	// replaces the local variable (trade.Run clones), never mutates.
	alloc := p.waterfill.Solve(tickets, demand, caps)
	// Failure compensation: repay users' fault deficits off the top
	// of the water-fill, before surplus redistribution, so GPU time
	// lost to faults is restored instead of diluted away.
	var repaid map[job.UserID]float64
	if !p.cfg.DisableCompensation && len(st.Deficit) > 0 && st.Quantum > 0 {
		debt := make(map[job.UserID]float64)
		for u, d := range st.Deficit {
			if d > 0 && demand[u] > 0 {
				debt[u] = d / st.Quantum // GPU-seconds owed → GPUs this round
			}
		}
		if len(debt) > 0 {
			withDebt, granted := fairshare.ComputeAllocationWithDebt(tickets, demand, caps, debt, p.cfg.CompMaxShare)
			alloc = withDebt
			// A non-nil map — even with zero grants — tells the engine
			// the policy is compensating, so materialized catch-up may
			// drain the deficit (see Sim.settleCompensation).
			repaid = make(map[job.UserID]float64, len(granted))
			for u, g := range granted {
				repaid[u] = g * st.Quantum
			}
		}
	}
	st.Obs.PhaseEnd(obs.PhaseWaterfill)

	// 2. Trading.
	var trades []trade.Trade
	if p.cfg.EnableTrading {
		st.Obs.PhaseStart(obs.PhaseTrade)
		vals := p.userValues(st, byUser)
		adjusted, log, err := trade.Run(alloc, vals, demand, p.cfg.Trade)
		if err == nil {
			alloc = adjusted
			trades = log
		}
		st.Obs.PhaseEnd(obs.PhaseTrade)
	}

	// 3. Accrue credits; drop departed users; cap per generation.
	for u := range p.credit {
		if _, active := byUser[u]; !active {
			delete(p.credit, u)
			delete(p.userSched, u)
		}
	}
	for _, u := range users {
		c := p.credit[u]
		if c == nil {
			c = fairshare.Entitlement{}
			p.credit[u] = c
		}
		for g, e := range alloc[u] {
			c[g] += e
			if limit := float64(caps[g]); c[g] > limit {
				c[g] = limit
			}
		}
	}

	// 4. Selection.
	p.round++
	p.noMigrate = st.MigrationDisabled
	p.pinned = st.Pinned
	jobTickets := fairshare.JobTickets(tickets, jobsPer)
	remaining := make(map[gpu.Generation]int, len(caps))
	for g, c := range caps {
		remaining[g] = c
	}
	scheduled := make(map[job.ID]bool)
	var run []placement.Request

	schedule := func(u job.UserID, j *job.Job, g gpu.Generation, viaCredit bool) {
		scheduled[j.ID] = true
		remaining[g] -= j.Gang
		if viaCredit {
			if st.Obs != nil {
				before := p.credit[u][g]
				st.Obs.NoteChoice(int64(j.ID), "credit", before, before-float64(j.Gang))
			}
			p.credit[u][g] -= float64(j.Gang)
		} else if st.Obs != nil {
			c := p.credit[u][g]
			st.Obs.NoteChoice(int64(j.ID), "backfill", c, c)
		}
		if prev, ok := st.PrevGen[j.ID]; ok && prev != g {
			p.lastMig[j.ID] = p.round
		}
		p.jobUser[j.ID] = u
		p.pending[j.ID] = chargeInfo{
			user: u, gen: g, gang: j.Gang,
			jobTickets: jobTickets[u], viaCredit: viaCredit,
		}
		run = append(run, placement.Request{Job: j, Gen: g})
	}

	// Pass 1 — credit-funded scheduling: per user, walk jobs in
	// gang-aware stride pass order and fund each from the credit of
	// the generation it should run on (previous generation when
	// possible; otherwise the user's most valuable generation, gated
	// by the migration cooldown).
	//
	// Users are served most-credit-first: when capacity is scarce the
	// user who has been shorted longest wins, so synchronized credit
	// cycles cannot starve whoever happens to sort last.
	serveOrder := make([]job.UserID, len(users))
	copy(serveOrder, users)
	sort.SliceStable(serveOrder, func(i, k int) bool {
		ci, ck := p.credit[serveOrder[i]].Total(), p.credit[serveOrder[k]].Total()
		if ci != ck {
			return ci > ck
		}
		return serveOrder[i] < serveOrder[k]
	})
	for _, u := range serveOrder {
		sched := p.schedFor(u)
		pref := p.genPreference(st, byUser[u], caps)
		for _, id := range sched.Order(candidates(byUser[u], jobTickets[u])) {
			j := findJob(byUser[u], id)
			g, ok := p.pickGen(j, st.PrevGen, pref, remaining, true)
			if ok {
				schedule(u, j, g, true)
			}
		}
	}

	// Pass 2 — work-conserving backfill of leftover capacity, charged
	// against a global stride so no user freeloads persistently. The
	// cooldown still applies: backfill must not cause thrash either.
	for _, g := range gensDesc(caps) {
		if remaining[g] <= 0 {
			continue
		}
		var cands []stride.Candidate
		var pool []*job.Job
		for _, u := range users {
			for _, j := range byUser[u] {
				if scheduled[j.ID] || !j.Perf.FitsOn(g) {
					continue
				}
				// Backfill uses a short cooldown: moving an otherwise
				// idle job onto idle capacity is a one-way move, not
				// thrash, so only back-to-back flapping is blocked.
				if !p.genAllowedWithin(j, st.PrevGen, g, backfillCooldown) {
					continue
				}
				cands = append(cands, stride.Candidate{ID: j.ID, Gang: j.Gang, Tickets: jobTickets[u]})
				pool = append(pool, j)
			}
		}
		if len(cands) == 0 {
			continue
		}
		for _, id := range p.backfill.Select(cands, remaining[g]) {
			j := findJob(pool, id)
			schedule(j.User, j, g, false)
		}
	}

	return Decision{Run: run, Trades: trades, Repaid: repaid}
}

// pickGen chooses the generation to fund a job from. Preference
// order: the job's previous generation (no migration), then the
// user's preferred generations, each requiring the job to fit,
// sufficient credit (when viaCredit), remaining capacity, and the
// migration cooldown for generation changes.
func (p *FairPolicy) pickGen(j *job.Job, prevGen map[job.ID]gpu.Generation, pref []gpu.Generation, remaining map[gpu.Generation]int, viaCredit bool) (gpu.Generation, bool) {
	try := func(g gpu.Generation) bool {
		if !j.Perf.FitsOn(g) || remaining[g] < j.Gang {
			return false
		}
		if viaCredit {
			c := p.credit[j.User]
			if c == nil || c[g] < float64(j.Gang)-1e-9 {
				return false
			}
		}
		return p.genAllowed(j, prevGen, g)
	}
	if prev, ok := prevGen[j.ID]; ok && try(prev) {
		return prev, true
	}
	for _, g := range pref {
		if try(g) {
			return g, true
		}
	}
	return 0, false
}

// backfillCooldown is the reduced generation-change cooldown used in
// the backfill pass (see Decide).
const backfillCooldown = 2

// genAllowed enforces the migration cooldown: a job may change
// generation only if it has not changed within the last cooldown
// rounds.
func (p *FairPolicy) genAllowed(j *job.Job, prevGen map[job.ID]gpu.Generation, g gpu.Generation) bool {
	return p.genAllowedWithin(j, prevGen, g, p.cfg.MigrationCooldown)
}

func (p *FairPolicy) genAllowedWithin(j *job.Job, prevGen map[job.ID]gpu.Generation, g gpu.Generation, cooldown int) bool {
	prev, ok := prevGen[j.ID]
	if !ok || prev == g {
		return true
	}
	if p.noMigrate || p.pinned[j.ID] {
		return false
	}
	return p.round-p.lastMig[j.ID] >= cooldown
}

// Executed implements Policy: charge stride pass for what actually
// ran and refund credits for capacity not consumed (unplaced jobs,
// early finishers).
func (p *FairPolicy) Executed(rep *ExecReport) {
	for id, ci := range p.pending {
		info, ran := rep.Ran[id]
		if !ran {
			// Fragmentation left it unplaced: full refund.
			if ci.viaCredit {
				p.refund(ci, float64(ci.gang))
			}
			continue
		}
		res := float64(ci.gang) * info.OccupiedSecs
		if ci.jobTickets > 0 {
			if s := p.userSched[ci.user]; s != nil && s.Has(id) {
				s.Charge(id, res, ci.jobTickets)
			}
			if p.backfill.Has(id) {
				p.backfill.Charge(id, res, ci.jobTickets)
			}
		}
	}
	p.pending = make(map[job.ID]chargeInfo)
}

// JobFinished implements Policy.
func (p *FairPolicy) JobFinished(id job.ID) {
	if u, ok := p.jobUser[id]; ok {
		if s := p.userSched[u]; s != nil {
			s.Remove(id)
		}
		delete(p.jobUser, id)
	}
	p.backfill.Remove(id)
	delete(p.pending, id)
	delete(p.lastMig, id)
}

// Credit exposes a user's current deficit credits (for tests and
// debugging).
func (p *FairPolicy) Credit(u job.UserID) fairshare.Entitlement {
	return p.credit[u].Clone()
}

func (p *FairPolicy) refund(ci chargeInfo, amount float64) {
	c := p.credit[ci.user]
	if c == nil {
		return
	}
	c[ci.gen] += amount
}

func (p *FairPolicy) schedFor(u job.UserID) *stride.Scheduler {
	s := p.userSched[u]
	if s == nil {
		s = stride.New(stride.GangAware)
		p.userSched[u] = s
	}
	return s
}

// userValues builds the trading value vectors: gang-weighted speedup
// of each generation over the oldest generation the job has an
// estimate on, across the user's runnable jobs.
func (p *FairPolicy) userValues(st *RoundState, byUser map[job.UserID][]*job.Job) trade.Values {
	gens := st.Cluster.GensPresent()
	vals := make(trade.Values, len(byUser))
	for u, js := range byUser {
		var num, den [gpu.NumGenerations]float64
		for _, j := range js {
			base := gpu.Generation(-1)
			var baseRate float64
			for _, g := range gens {
				if r, ok := st.Prof.Rate(j.ID, g); ok && st.Prof.Samples(j.ID, g) >= p.cfg.MinSamples {
					base, baseRate = g, r
					break
				}
			}
			if base < 0 || baseRate <= 0 {
				continue
			}
			w := float64(j.Gang)
			for _, g := range gens {
				if r, ok := st.Prof.Rate(j.ID, g); ok && st.Prof.Samples(j.ID, g) >= p.cfg.MinSamples {
					num[g] += w * r / baseRate
					den[g] += w
				}
			}
		}
		var v [gpu.NumGenerations]float64
		any := false
		for g := range v {
			if den[g] > 0 {
				v[g] = num[g] / den[g]
				any = true
			}
		}
		if any {
			vals[u] = v
		}
	}
	return vals
}

// genPreference orders generations for a user: profiled value per GPU
// descending (run where your jobs gain most), newest first on ties.
func (p *FairPolicy) genPreference(st *RoundState, js []*job.Job, caps map[gpu.Generation]int) []gpu.Generation {
	gens := gensDesc(caps)
	if len(js) == 0 {
		return gens
	}
	vals := p.userValues(st, map[job.UserID][]*job.Job{js[0].User: js})
	v, ok := vals[js[0].User]
	if !ok {
		return gens
	}
	sort.SliceStable(gens, func(i, k int) bool {
		vi, vk := v[gens[i]], v[gens[k]]
		if vi != vk {
			return vi > vk
		}
		return gens[i] > gens[k]
	})
	return gens
}

func groupByUser(jobs []*job.Job) map[job.UserID][]*job.Job {
	m := make(map[job.UserID][]*job.Job)
	for _, j := range jobs {
		m[j.User] = append(m[j.User], j)
	}
	return m
}

func sortedUsers(m map[job.UserID][]*job.Job) []job.UserID {
	users := make([]job.UserID, 0, len(m))
	for u := range m {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	return users
}

// gensDesc returns the present generations newest first.
func gensDesc(caps map[gpu.Generation]int) []gpu.Generation {
	gens := make([]gpu.Generation, 0, len(caps))
	for g := range caps {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	return gens
}

func candidates(js []*job.Job, tickets float64) []stride.Candidate {
	out := make([]stride.Candidate, len(js))
	for i, j := range js {
		out[i] = stride.Candidate{ID: j.ID, Gang: j.Gang, Tickets: tickets}
	}
	return out
}

func findJob(js []*job.Job, id job.ID) *job.Job {
	for _, j := range js {
		if j.ID == id {
			return j
		}
	}
	panic(fmt.Sprintf("core: selected job %d not in candidate pool", id))
}
