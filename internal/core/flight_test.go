package core

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/span"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// TestSpansAndFlightDoNotPerturb is the PR's acceptance check: a
// fixed-seed run must be byte-identical whether the FULL
// observability stack — observer, span tracer, flight-recorder sink —
// is attached or not. Tracing and recording are strictly read-only.
func TestSpansAndFlightDoNotPerturb(t *testing.T) {
	run := func(o *obs.Observer, rec *flight.Recorder) *Result {
		var specs = workload.BatchJobs("a", zoo.MustGet("resnet50"), 4, 1, 20)
		specs = append(specs, workload.BatchJobs("b", zoo.MustGet("vae"), 4, 2, 20)...)
		specs = append(specs, workload.BatchJobs("c", zoo.MustGet("lstm"), 3, 1, 20)...)
		specs, _ = workload.AssignIDs(specs)
		cfg := Config{
			Cluster: mixedCluster(),
			Specs:   specs,
			Seed:    7,
			Obs:     o,
			Flight:  rec,
		}
		sim, err := New(cfg, MustNewFairPolicy(FairConfig{EnableTrading: true}))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(simclock.Time(48 * simclock.Hour))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := run(nil, nil)

	o := obs.New()
	tr := span.New("core-test", 0)
	o.SetTracer(tr)
	rec := flight.New(16, filepath.Join(t.TempDir(), "flight.json"))
	instr := run(o, rec)

	var a, b bytes.Buffer
	if err := plain.Log.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := instr.Log.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("event traces differ between plain and spans+flight runs")
	}
	if plain.Rounds != instr.Rounds || plain.End != instr.End ||
		plain.Migrations != instr.Migrations || plain.TradeCount != instr.TradeCount {
		t.Errorf("scalars differ: off=%d/%v/%d/%d on=%d/%v/%d/%d",
			plain.Rounds, plain.End, plain.Migrations, plain.TradeCount,
			instr.Rounds, instr.End, instr.Migrations, instr.TradeCount)
	}
	for _, cmp := range []struct {
		name    string
		off, on any
	}{
		{"usage", plain.UsageByUserGen, instr.UsageByUserGen},
		{"throughput", plain.ThroughputByUser, instr.ThroughputByUser},
		{"JCTs", plain.JCTs(), instr.JCTs()},
		{"fair usage", plain.FairUsageByUser, instr.FairUsageByUser},
		{"SLO", plain.SLO, instr.SLO},
	} {
		if !reflect.DeepEqual(cmp.off, cmp.on) {
			t.Errorf("%s differs with spans+flight attached", cmp.name)
		}
	}

	// The instrumented run really traced and recorded: spans for every
	// round's phases, one flight snapshot per round (modulo the ring
	// cap), and the snapshots carry their rounds' spans.
	if len(tr.Spans()) == 0 {
		t.Fatal("tracer retained no spans")
	}
	rounds := rec.Rounds()
	if len(rounds) == 0 {
		t.Fatal("flight recorder saw no rounds")
	}
	if want := 16; len(rounds) != want && instr.Rounds >= want {
		t.Errorf("flight window = %d rounds, want %d", len(rounds), want)
	}
	last := rounds[len(rounds)-1]
	if last.Round != instr.Rounds {
		t.Errorf("last snapshot round = %d, want %d", last.Round, instr.Rounds)
	}
	if len(last.Spans) == 0 {
		t.Error("final snapshot carries no spans")
	}
	seen := map[string]bool{}
	for _, s := range last.Spans {
		seen[s.Name] = true
	}
	for _, phase := range []string{"round", string(obs.PhaseDecide), string(obs.PhaseExecute)} {
		if !seen[phase] {
			t.Errorf("final snapshot missing %q span; have %v", phase, seen)
		}
	}
}

// TestAuditViolationDumpsFlight pins the audit→flight trigger: a run
// failed by the auditor (here via the synthetic drill) returns an
// AuditError AND leaves a dump whose reason says so.
func TestAuditViolationDumpsFlight(t *testing.T) {
	specs := workload.BatchJobs("u", zoo.MustGet("vae"), 4, 1, 20)
	specs, _ = workload.AssignIDs(specs)
	path := filepath.Join(t.TempDir(), "flight.json")
	cfg := Config{
		Cluster:         k80Cluster(2, 4),
		Specs:           specs,
		Seed:            1,
		Audit:           AuditStrict,
		AuditDrillRound: 2,
		Obs:             obs.New(),
		Flight:          flight.New(8, path),
	}
	sim, err := New(cfg, MustNewFairPolicy(FairConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(simclock.Time(48 * simclock.Hour))
	if err == nil {
		t.Fatal("drill did not fail the run")
	}
	var av *AuditError
	if !errors.As(err, &av) {
		t.Fatalf("run error %v is not an AuditError", err)
	}
	if av.Violation.Invariant != InvDrill {
		t.Errorf("violation invariant = %q, want %q", av.Violation.Invariant, InvDrill)
	}
	d, err := flight.ReadDump(path)
	if err != nil {
		t.Fatalf("violation left no parseable dump: %v", err)
	}
	if d.Reason != "audit-violation" {
		t.Errorf("dump reason = %q, want audit-violation", d.Reason)
	}
	if n := len(d.Rounds); n == 0 || d.Rounds[n-1].Round != 2 {
		t.Errorf("dump window does not end at the drill round: %d rounds", n)
	}
}
