package core

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// Golden canonical digests captured from the pre-incremental (full
// rescan) engine. They pin the byte-identity contract across the
// event-driven rework: iteration order over jobs and users — and
// therefore shared profiler-RNG consumption, float accumulation
// order, and trace-event order — must not change. If one of these
// assertions fires, the engine's deterministic output changed; that
// is a correctness regression, not a test to update casually.
//
// Both engine modes are asserted against the SAME golden: the
// incremental engine's whole point is byte-identical output.
const (
	goldenChurnDigest  = "d12f3ac598033a27647f5e3233ba8c54eec1e1400ff9d22a1bc4f065736b7cb2"
	goldenFaultyDigest = "3a74983626660aba115e722bd53c4960e6db2aa3017321b52d7edf251da19325"
)

// goldenCluster builds the small heterogeneous cluster the golden
// scenarios run on: 5 K80 servers and 4 V100 servers, 4 GPUs each.
func goldenCluster(t *testing.T) *gpu.Cluster {
	t.Helper()
	c, err := gpu.New(
		gpu.Spec{Gen: gpu.K80, Servers: 5, GPUsPerSrv: 4},
		gpu.Spec{Gen: gpu.V100, Servers: 4, GPUsPerSrv: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// goldenSpecs generates a churny workload: staggered Poisson
// arrivals, finite jobs (finishes and departures), three users.
func goldenSpecs(t *testing.T, seed int64) []job.Spec {
	t.Helper()
	zoo := workload.DefaultZoo()
	names := zoo.Names()
	specs, err := workload.Generate(zoo, workload.Config{
		Seed: seed,
		Users: []workload.UserSpec{
			{User: "alice", NumJobs: 8, ArrivalRatePerHour: 2, MeanK80Hours: 1.5, Models: names[:2]},
			{User: "bob", NumJobs: 6, ArrivalRatePerHour: 1, MeanK80Hours: 2, Models: names[2:4]},
			{User: "carol", NumJobs: 5, ArrivalRatePerHour: 0.5, MeanK80Hours: 1, Models: names[1:3]},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

func goldenChurnConfig(t *testing.T, engine EngineMode) Config {
	return Config{
		Cluster: goldenCluster(t),
		Specs:   goldenSpecs(t, 1234),
		Tickets: map[job.UserID]float64{"alice": 2, "bob": 1, "carol": 1},
		Quantum: 360,
		TicketChanges: []TicketChange{
			{User: "bob", At: simclock.Time(4 * simclock.Hour), Tickets: 3},
			{User: "alice", At: simclock.Time(8 * simclock.Hour), Tickets: 0.5},
		},
		Engine: engine,
		Seed:   1234,
	}
}

func goldenFaultyConfig(t *testing.T, engine EngineMode) Config {
	return Config{
		Cluster: goldenCluster(t),
		Specs:   goldenSpecs(t, 99),
		Quantum: 360,
		Failures: []Failure{
			{Server: 1, At: simclock.Time(2 * simclock.Hour), Duration: 2 * simclock.Hour},
		},
		Faults: &faults.Config{
			ServerMTBFHours:        40,
			ServerOutageMeanHours:  0.5,
			FlakyServers:           1,
			FlakyMTBFHours:         2,
			FlakyOutageMinutes:     10,
			DegradeMTBFHours:       20,
			DegradeFactor:          0.6,
			DegradeMeanHours:       1,
			JobCrashMTBFHours:      8,
			MigrationFailProb:      0.3,
			QuarantineFailures:     3,
			QuarantineWindowHours:  2,
			QuarantineCooloffHours: 2,
		},
		Engine: engine,
		Seed:   99,
	}
}

func runGolden(t *testing.T, cfg Config, trading bool) string {
	t.Helper()
	sim, err := New(cfg, MustNewFairPolicy(FairConfig{EnableTrading: trading}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(simclock.Time(16 * simclock.Hour))
	if err != nil {
		t.Fatal(err)
	}
	return CanonicalDigest(res)
}

func TestGoldenDigestChurn(t *testing.T) {
	for _, mode := range []EngineMode{EngineIncremental, EngineRescan} {
		if got := runGolden(t, goldenChurnConfig(t, mode), true); got != goldenChurnDigest {
			t.Errorf("engine=%v churn digest = %s, want %s", mode, got, goldenChurnDigest)
		}
	}
}

func TestGoldenDigestFaulty(t *testing.T) {
	for _, mode := range []EngineMode{EngineIncremental, EngineRescan} {
		if got := runGolden(t, goldenFaultyConfig(t, mode), false); got != goldenFaultyDigest {
			t.Errorf("engine=%v faulty digest = %s, want %s", mode, got, goldenFaultyDigest)
		}
	}
}
