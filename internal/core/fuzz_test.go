package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// TestFuzzEngineInvariants drives many random small scenarios through
// the full engine under every policy and checks global invariants the
// engine must preserve regardless of workload shape:
//
//   - usage never exceeds capacity (per generation);
//   - useful time never exceeds occupied time;
//   - every job either finishes exactly once or remains counted;
//   - finished jobs completed no faster than physics allows
//     (standalone runtime on the fastest generation they fit);
//   - the fairness reference integrates to at most capacity.
func TestFuzzEngineInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			var specs []gpu.Spec
			gens := []gpu.Generation{gpu.K80, gpu.P40, gpu.P100, gpu.V100}
			nGens := 1 + rng.Intn(3)
			for i := 0; i < nGens; i++ {
				specs = append(specs, gpu.Spec{
					Gen:        gens[(trial+i)%len(gens)],
					Servers:    1 + rng.Intn(3),
					GPUsPerSrv: 1 + rng.Intn(4),
				})
			}
			cluster := gpu.MustNew(specs...)

			// Gangs must fit within a single generation's capacity or
			// the config is (correctly) rejected.
			maxGang := 0
			for _, g := range cluster.GensPresent() {
				if c := cluster.Capacity(g); c > maxGang {
					maxGang = c
				}
			}
			nUsers := 1 + rng.Intn(4)
			var users []workload.UserSpec
			for i := 0; i < nUsers; i++ {
				users = append(users, workload.UserSpec{
					User:               job.UserID(fmt.Sprintf("u%d", i)),
					NumJobs:            1 + rng.Intn(10),
					ArrivalRatePerHour: float64(rng.Intn(4)),
					MeanK80Hours:       0.5 + rng.Float64()*3,
					GangDist: []workload.GangWeight{
						{Gang: 1, Weight: 0.7},
						{Gang: 1 + rng.Intn(maxGang), Weight: 0.3},
					},
				})
			}
			trace := workload.MustGenerate(workload.DefaultZoo(), workload.Config{
				Seed: int64(trial), Users: users, MaxK80Hours: 6,
			})

			var failures []Failure
			if rng.Intn(2) == 0 && cluster.NumServers() > 1 {
				failures = append(failures, Failure{
					Server:   gpu.ServerID(rng.Intn(cluster.NumServers())),
					At:       simclock.Time(rng.Intn(10) * 3600),
					Duration: simclock.Duration(1+rng.Intn(4)) * simclock.Hour,
				})
			}

			cfg := Config{
				Cluster:          cluster,
				Specs:            trace,
				Seed:             int64(trial),
				Failures:         failures,
				DisableMigration: rng.Intn(4) == 0,
			}
			policies := []Policy{
				MustNewFairPolicy(FairConfig{EnableTrading: trial%2 == 0}),
			}
			for _, p := range policies {
				sim, err := New(cfg, p)
				if err != nil {
					t.Fatal(err)
				}
				horizon := simclock.Time((12 + rng.Intn(36)) * 3600)
				res, err := sim.Run(horizon)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				checkInvariants(t, cfg, res, len(trace))
			}
		})
	}
}

func checkInvariants(t *testing.T, cfg Config, res *Result, totalJobs int) {
	t.Helper()

	// Job conservation.
	if len(res.Finished)+res.Unfinished != totalJobs {
		t.Errorf("job conservation: %d finished + %d unfinished != %d",
			len(res.Finished), res.Unfinished, totalJobs)
	}
	seen := map[job.ID]bool{}
	for _, j := range res.Finished {
		if seen[j.ID] {
			t.Errorf("job %d finished twice", j.ID)
		}
		seen[j.ID] = true
		if !j.Finished() {
			t.Errorf("job %d in Finished but not done", j.ID)
		}
		// Physics: completion at least as slow as the fastest
		// generation allows, minus float slack.
		best := simclock.Duration(1e18)
		for _, g := range gpu.Generations() {
			if j.Perf.FitsOn(g) {
				if r := j.StandaloneTime(g); r < best {
					best = r
				}
			}
		}
		if j.JCT() < best-1 {
			t.Errorf("job %d JCT %v beats physics %v", j.ID, j.JCT(), best)
		}
	}

	// Usage ≤ capacity per generation (both occupied and the
	// engine-tracked busy seconds).
	for g, u := range res.UtilByGen {
		if u.BusyGPUSeconds > u.CapacityGPUSeconds+1e-6 {
			t.Errorf("generation %v: busy %v > capacity %v", g, u.BusyGPUSeconds, u.CapacityGPUSeconds)
		}
	}
	if res.Utilization.Fraction() > 1+1e-9 {
		t.Errorf("utilization %v > 1", res.Utilization.Fraction())
	}

	// Useful ≤ occupied, per user.
	occupied := res.TotalUsageByUser()
	for u, useful := range res.UsefulByUser {
		if useful > occupied[u]+1e-6 {
			t.Errorf("user %s useful %v > occupied %v", u, useful, occupied[u])
		}
	}

	// Fairness reference bounded by capacity.
	var fairTotal float64
	for _, u := range job.SortedUsers(res.FairUsageByUser) {
		fairTotal += res.FairUsageByUser[u]
	}
	capTotal := res.Utilization.CapacityGPUSeconds
	if fairTotal > capTotal*1.01+1e-6 {
		t.Errorf("fair reference %v exceeds capacity %v", fairTotal, capTotal)
	}

	// Migration ban respected.
	if cfg.DisableMigration && res.Migrations != 0 {
		t.Errorf("%d migrations despite DisableMigration", res.Migrations)
	}
}

// TestAuditCorpus drives the strict auditor through handpicked nasty
// scenarios: overlapping failures on the same server, mid-run ticket
// changes down to zero (and back), and their combination. Each run
// must complete without a strict-audit error and report a clean audit.
func TestAuditCorpus(t *testing.T) {
	cluster := func() *gpu.Cluster {
		return gpu.MustNew(
			gpu.Spec{Gen: gpu.K80, Servers: 2, GPUsPerSrv: 4},
			gpu.Spec{Gen: gpu.V100, Servers: 2, GPUsPerSrv: 4},
		)
	}
	trace := func(seed int64) []job.Spec {
		return workload.MustGenerate(workload.DefaultZoo(), workload.Config{
			Seed: seed,
			Users: []workload.UserSpec{
				{User: "a", NumJobs: 8, ArrivalRatePerHour: 2, MeanK80Hours: 2,
					GangDist: []workload.GangWeight{{Gang: 1, Weight: 0.7}, {Gang: 2, Weight: 0.3}}},
				{User: "b", NumJobs: 8, ArrivalRatePerHour: 2, MeanK80Hours: 2,
					GangDist: []workload.GangWeight{{Gang: 1, Weight: 1}}},
			},
			MaxK80Hours: 6,
		})
	}
	cases := []struct {
		name     string
		failures []Failure
		changes  []TicketChange
		faults   *faults.Config
	}{
		{
			name: "overlapping-failures-same-server",
			failures: []Failure{
				{Server: 0, At: simclock.Time(1 * simclock.Hour), Duration: 4 * simclock.Hour},
				{Server: 0, At: simclock.Time(2 * simclock.Hour), Duration: 4 * simclock.Hour},
				{Server: 0, At: simclock.Time(3 * simclock.Hour), Duration: 1 * simclock.Hour},
			},
		},
		{
			name: "tickets-to-zero-and-back",
			changes: []TicketChange{
				{At: simclock.Time(2 * simclock.Hour), User: "a", Tickets: 0},
				{At: simclock.Time(6 * simclock.Hour), User: "a", Tickets: 1},
			},
		},
		{
			name: "all-users-zeroed",
			changes: []TicketChange{
				{At: simclock.Time(3 * simclock.Hour), User: "a", Tickets: 0},
				{At: simclock.Time(3 * simclock.Hour), User: "b", Tickets: 0},
			},
		},
		{
			name: "failures-plus-ticket-churn",
			failures: []Failure{
				{Server: 1, At: simclock.Time(1 * simclock.Hour), Duration: 3 * simclock.Hour},
				{Server: 1, At: simclock.Time(2 * simclock.Hour), Duration: 6 * simclock.Hour},
				{Server: 3, At: simclock.Time(4 * simclock.Hour), Duration: 2 * simclock.Hour},
			},
			changes: []TicketChange{
				{At: simclock.Time(2 * simclock.Hour), User: "b", Tickets: 0},
				{At: simclock.Time(5 * simclock.Hour), User: "b", Tickets: 3},
			},
		},
		{
			name: "probabilistic-full-stack",
			faults: &faults.Config{
				ServerMTBFHours:        6,
				ServerOutageMeanHours:  0.5,
				FlakyServers:           1,
				FlakyMTBFHours:         1,
				DegradeMTBFHours:       8,
				DegradeFactor:          0.6,
				JobCrashMTBFHours:      4,
				MigrationFailProb:      0.4,
				QuarantineFailures:     2,
				QuarantineWindowHours:  2,
				QuarantineCooloffHours: 1,
			},
		},
		{
			name: "flaky-quarantine-storm",
			faults: &faults.Config{
				FlakyServers:           2,
				FlakyMTBFHours:         0.5,
				FlakyOutageMinutes:     8,
				QuarantineFailures:     2,
				QuarantineWindowHours:  2,
				QuarantineCooloffHours: 1,
			},
		},
		{
			// Every migration attempt fails while declared outages
			// force displacement — the backoff/pinning machinery under
			// maximum pressure.
			name: "certain-migration-failure-under-outages",
			failures: []Failure{
				{Server: 0, At: simclock.Time(1 * simclock.Hour), Duration: 2 * simclock.Hour},
				{Server: 2, At: simclock.Time(2 * simclock.Hour), Duration: 3 * simclock.Hour},
			},
			faults: &faults.Config{
				MigrationFailProb: 1,
				JobCrashMTBFHours: 6,
			},
		},
	}
	for _, tc := range cases {
		for _, trading := range []bool{false, true} {
			name := tc.name
			if trading {
				name += "/trading"
			}
			t.Run(name, func(t *testing.T) {
				cfg := Config{
					Cluster:       cluster(),
					Specs:         trace(7),
					Seed:          7,
					Failures:      tc.failures,
					TicketChanges: tc.changes,
					Faults:        tc.faults,
					Audit:         AuditStrict,
				}
				sim, err := New(cfg, MustNewFairPolicy(FairConfig{EnableTrading: trading}))
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run(simclock.Time(24 * simclock.Hour))
				if err != nil {
					t.Fatalf("strict audit failed: %v", err)
				}
				if res.Audit == nil || !res.Audit.Clean() {
					t.Fatalf("audit not clean: %s", res.Audit.Summary())
				}
				if res.Audit.Rounds != res.Rounds {
					t.Errorf("audited %d rounds, engine ran %d", res.Audit.Rounds, res.Rounds)
				}
				checkInvariants(t, cfg, res, len(cfg.Specs))
			})
		}
	}
}

// FuzzEngineAudit is a native fuzz target: the fuzzer mutates a
// compact byte recipe into a bounded scenario (cluster shape, jobs,
// overlapping failures, ticket changes to arbitrary values including
// zero, and a probabilistic fault schedule selected bit-by-bit from
// faultBits) and the strict auditor must stay clean on every input.
//
// Run with: go test -fuzz FuzzEngineAudit -fuzztime 30s ./internal/core
func FuzzEngineAudit(f *testing.F) {
	// Seed corpus: bytes are (seed, servers, gpusPerSrv, jobsA, jobsB,
	// failureCount, ticketChangeCount, faultBits, trading). faultBits
	// 0 keeps the legacy nil-Faults path in the corpus; bits 0..4
	// enable transient crashes, flaky+quarantine, migration failures,
	// job crashes and degradation respectively.
	f.Add(uint8(1), uint8(2), uint8(4), uint8(6), uint8(6), uint8(2), uint8(2), uint8(0), false)
	f.Add(uint8(7), uint8(1), uint8(2), uint8(3), uint8(0), uint8(0), uint8(1), uint8(0), true)
	f.Add(uint8(42), uint8(3), uint8(1), uint8(8), uint8(8), uint8(4), uint8(3), uint8(0x1f), true)
	f.Add(uint8(99), uint8(2), uint8(3), uint8(1), uint8(12), uint8(3), uint8(0), uint8(0x06), false)
	f.Add(uint8(13), uint8(2), uint8(2), uint8(6), uint8(6), uint8(1), uint8(0), uint8(0x0a), false)
	f.Add(uint8(5), uint8(3), uint8(4), uint8(9), uint8(4), uint8(0), uint8(2), uint8(0x11), true)
	f.Fuzz(func(t *testing.T, seed, servers, gpus, jobsA, jobsB, nFail, nChange, faultBits uint8, trading bool) {
		servers = 1 + servers%3
		gpus = 1 + gpus%4
		jobsA, jobsB = jobsA%12, jobsB%12
		if jobsA == 0 && jobsB == 0 {
			return
		}
		cluster := gpu.MustNew(
			gpu.Spec{Gen: gpu.K80, Servers: int(servers), GPUsPerSrv: int(gpus)},
			gpu.Spec{Gen: gpu.V100, Servers: int(servers), GPUsPerSrv: int(gpus)},
		)
		var users []workload.UserSpec
		gd := []workload.GangWeight{{Gang: 1, Weight: 1}}
		if jobsA > 0 {
			users = append(users, workload.UserSpec{
				User: "a", NumJobs: int(jobsA), ArrivalRatePerHour: 2, MeanK80Hours: 1, GangDist: gd})
		}
		if jobsB > 0 {
			users = append(users, workload.UserSpec{
				User: "b", NumJobs: int(jobsB), ArrivalRatePerHour: 1, MeanK80Hours: 1, GangDist: gd})
		}
		trace := workload.MustGenerate(workload.DefaultZoo(), workload.Config{
			Seed: int64(seed), Users: users, MaxK80Hours: 4,
		})
		rng := rand.New(rand.NewSource(int64(seed) + 1))
		var failures []Failure
		for i := 0; i < int(nFail%5); i++ {
			// Deliberately allowed to overlap on the same server.
			failures = append(failures, Failure{
				Server:   gpu.ServerID(rng.Intn(cluster.NumServers())),
				At:       simclock.Time(rng.Intn(10) * 3600),
				Duration: simclock.Duration(1+rng.Intn(5)) * simclock.Hour,
			})
		}
		var changes []TicketChange
		userIDs := []job.UserID{"a", "b"}
		for i := 0; i < int(nChange%4); i++ {
			changes = append(changes, TicketChange{
				At:      simclock.Time(rng.Intn(12) * 3600),
				User:    userIDs[rng.Intn(2)],
				Tickets: float64(rng.Intn(3)), // 0 is in range on purpose
			})
		}
		var fc *faults.Config
		if faultBits != 0 {
			fc = &faults.Config{}
			if faultBits&0x01 != 0 {
				fc.ServerMTBFHours = 6
				fc.ServerOutageMeanHours = 0.5
			}
			if faultBits&0x02 != 0 {
				fc.FlakyServers = 1
				fc.FlakyMTBFHours = 1
				fc.QuarantineFailures = 2
				fc.QuarantineWindowHours = 2
				fc.QuarantineCooloffHours = 1
			}
			if faultBits&0x04 != 0 {
				fc.MigrationFailProb = 0.5
			}
			if faultBits&0x08 != 0 {
				fc.JobCrashMTBFHours = 4
			}
			if faultBits&0x10 != 0 {
				fc.DegradeMTBFHours = 6
				fc.DegradeFactor = 0.7
			}
		}
		cfg := Config{
			Cluster:       cluster,
			Specs:         trace,
			Seed:          int64(seed),
			Failures:      failures,
			TicketChanges: changes,
			Faults:        fc,
			Audit:         AuditStrict,
		}
		// Differential: the same recipe runs through both engines; each
		// must pass the strict auditor AND both must produce the same
		// canonical digest, so the fuzzer hunts for inputs where the
		// incremental indices diverge from the rescan oracle.
		digests := make(map[EngineMode]string, 2)
		for _, mode := range []EngineMode{EngineIncremental, EngineRescan} {
			cfg := cfg
			cfg.Engine = mode
			sim, err := New(cfg, MustNewFairPolicy(FairConfig{EnableTrading: trading}))
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(simclock.Time(16 * simclock.Hour))
			if err != nil {
				t.Fatalf("strict audit failed (%v): %v", mode, err)
			}
			if res.Audit == nil || !res.Audit.Clean() {
				t.Fatalf("audit not clean (%v): %s", mode, res.Audit.Summary())
			}
			digests[mode] = CanonicalDigest(res)
		}
		if digests[EngineIncremental] != digests[EngineRescan] {
			t.Fatalf("engine digests diverge:\n  incremental %s\n  rescan      %s",
				digests[EngineIncremental], digests[EngineRescan])
		}
	})
}
