package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// TestFuzzEngineInvariants drives many random small scenarios through
// the full engine under every policy and checks global invariants the
// engine must preserve regardless of workload shape:
//
//   - usage never exceeds capacity (per generation);
//   - useful time never exceeds occupied time;
//   - every job either finishes exactly once or remains counted;
//   - finished jobs completed no faster than physics allows
//     (standalone runtime on the fastest generation they fit);
//   - the fairness reference integrates to at most capacity.
func TestFuzzEngineInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			var specs []gpu.Spec
			gens := []gpu.Generation{gpu.K80, gpu.P40, gpu.P100, gpu.V100}
			nGens := 1 + rng.Intn(3)
			for i := 0; i < nGens; i++ {
				specs = append(specs, gpu.Spec{
					Gen:        gens[(trial+i)%len(gens)],
					Servers:    1 + rng.Intn(3),
					GPUsPerSrv: 1 + rng.Intn(4),
				})
			}
			cluster := gpu.MustNew(specs...)

			// Gangs must fit within a single generation's capacity or
			// the config is (correctly) rejected.
			maxGang := 0
			for _, g := range cluster.GensPresent() {
				if c := cluster.Capacity(g); c > maxGang {
					maxGang = c
				}
			}
			nUsers := 1 + rng.Intn(4)
			var users []workload.UserSpec
			for i := 0; i < nUsers; i++ {
				users = append(users, workload.UserSpec{
					User:               job.UserID(fmt.Sprintf("u%d", i)),
					NumJobs:            1 + rng.Intn(10),
					ArrivalRatePerHour: float64(rng.Intn(4)),
					MeanK80Hours:       0.5 + rng.Float64()*3,
					GangDist: []workload.GangWeight{
						{Gang: 1, Weight: 0.7},
						{Gang: 1 + rng.Intn(maxGang), Weight: 0.3},
					},
				})
			}
			trace := workload.MustGenerate(workload.DefaultZoo(), workload.Config{
				Seed: int64(trial), Users: users, MaxK80Hours: 6,
			})

			var failures []Failure
			if rng.Intn(2) == 0 && cluster.NumServers() > 1 {
				failures = append(failures, Failure{
					Server:   gpu.ServerID(rng.Intn(cluster.NumServers())),
					At:       simclock.Time(rng.Intn(10) * 3600),
					Duration: simclock.Duration(1+rng.Intn(4)) * simclock.Hour,
				})
			}

			cfg := Config{
				Cluster:          cluster,
				Specs:            trace,
				Seed:             int64(trial),
				Failures:         failures,
				DisableMigration: rng.Intn(4) == 0,
			}
			policies := []Policy{
				MustNewFairPolicy(FairConfig{EnableTrading: trial%2 == 0}),
			}
			for _, p := range policies {
				sim, err := New(cfg, p)
				if err != nil {
					t.Fatal(err)
				}
				horizon := simclock.Time((12 + rng.Intn(36)) * 3600)
				res, err := sim.Run(horizon)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				checkInvariants(t, cfg, res, len(trace))
			}
		})
	}
}

func checkInvariants(t *testing.T, cfg Config, res *Result, totalJobs int) {
	t.Helper()

	// Job conservation.
	if len(res.Finished)+res.Unfinished != totalJobs {
		t.Errorf("job conservation: %d finished + %d unfinished != %d",
			len(res.Finished), res.Unfinished, totalJobs)
	}
	seen := map[job.ID]bool{}
	for _, j := range res.Finished {
		if seen[j.ID] {
			t.Errorf("job %d finished twice", j.ID)
		}
		seen[j.ID] = true
		if !j.Finished() {
			t.Errorf("job %d in Finished but not done", j.ID)
		}
		// Physics: completion at least as slow as the fastest
		// generation allows, minus float slack.
		best := simclock.Duration(1e18)
		for _, g := range gpu.Generations() {
			if j.Perf.FitsOn(g) {
				if r := j.StandaloneTime(g); r < best {
					best = r
				}
			}
		}
		if j.JCT() < best-1 {
			t.Errorf("job %d JCT %v beats physics %v", j.ID, j.JCT(), best)
		}
	}

	// Usage ≤ capacity per generation (both occupied and the
	// engine-tracked busy seconds).
	for g, u := range res.UtilByGen {
		if u.BusyGPUSeconds > u.CapacityGPUSeconds+1e-6 {
			t.Errorf("generation %v: busy %v > capacity %v", g, u.BusyGPUSeconds, u.CapacityGPUSeconds)
		}
	}
	if res.Utilization.Fraction() > 1+1e-9 {
		t.Errorf("utilization %v > 1", res.Utilization.Fraction())
	}

	// Useful ≤ occupied, per user.
	occupied := res.TotalUsageByUser()
	for u, useful := range res.UsefulByUser {
		if useful > occupied[u]+1e-6 {
			t.Errorf("user %s useful %v > occupied %v", u, useful, occupied[u])
		}
	}

	// Fairness reference bounded by capacity.
	var fairTotal float64
	for _, v := range res.FairUsageByUser {
		fairTotal += v
	}
	capTotal := res.Utilization.CapacityGPUSeconds
	if fairTotal > capTotal*1.01+1e-6 {
		t.Errorf("fair reference %v exceeds capacity %v", fairTotal, capTotal)
	}

	// Migration ban respected.
	if cfg.DisableMigration && res.Migrations != 0 {
		t.Errorf("%d migrations despite DisableMigration", res.Migrations)
	}
}
