package core

import (
	"fmt"
	"sort"

	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/placement"
	"repro/internal/simclock"
)

// AuditMode selects how the engine's runtime invariant auditor reacts
// to a violation. The zero value is AuditStrict, so every simulation —
// including the whole test suite — runs fully audited unless a caller
// explicitly opts out.
type AuditMode int

const (
	// AuditStrict fails the round (Run returns an error) on the first
	// violated invariant. This is the default and what all tests use.
	AuditStrict AuditMode = iota

	// AuditCount records violations and keeps simulating — the
	// production mode: one bad round should not abort a long sweep,
	// but it must show up in the report.
	AuditCount

	// AuditOff skips invariant checking entirely.
	AuditOff
)

func (m AuditMode) String() string {
	switch m {
	case AuditStrict:
		return "strict"
	case AuditCount:
		return "count"
	case AuditOff:
		return "off"
	default:
		return fmt.Sprintf("AuditMode(%d)", int(m))
	}
}

// ParseAuditMode converts a flag value ("strict", "count", "off") to a
// mode.
func ParseAuditMode(s string) (AuditMode, error) {
	switch s {
	case "strict":
		return AuditStrict, nil
	case "count":
		return AuditCount, nil
	case "off":
		return AuditOff, nil
	default:
		return 0, fmt.Errorf("core: unknown audit mode %q (want strict, count, or off)", s)
	}
}

// Invariant names as they appear in AuditReport.Counts.
const (
	InvCapacity     = "capacity"     // placed gang width ≤ per-generation capacity net of failures
	InvGang         = "gang"         // every gang fully placed on devices of a single generation it fits
	InvDoublePlace  = "double-place" // no device assigned to two jobs in one round
	InvDownServer   = "down-server"  // no placed device sits on a failed server
	InvTickets      = "tickets"      // runtime ticket state stays non-negative
	InvConservation = "conservation" // charged GPU-seconds per round ≤ capacity × quantum, per generation
	InvUsefulBound  = "useful-bound" // useful seconds ≤ occupied seconds ≤ quantum, per job
	InvQuarantine   = "quarantine"   // no placed device sits on a quarantined server
	InvCompensation = "compensation" // per-user fault deficit drains monotonically while the user is active
	InvDrill        = "drill"        // synthetic violation injected by Config.AuditDrillRound
)

// AuditViolation is one recorded invariant breach.
type AuditViolation struct {
	Round     int
	At        simclock.Time
	Invariant string
	Detail    string
}

func (v AuditViolation) String() string {
	return fmt.Sprintf("round %d (t=%v): %s: %s", v.Round, v.At, v.Invariant, v.Detail)
}

// AuditError is the error a strict-mode run aborts with; it wraps the
// round's first violation so callers (the flight recorder's dump
// trigger, tests) can distinguish audit failures from other
// round-loop errors with errors.As.
type AuditError struct {
	Violation AuditViolation
}

func (e *AuditError) Error() string {
	return fmt.Sprintf("core: audit: %s", e.Violation)
}

// maxRecordedViolations bounds the per-violation detail kept in
// counting mode; Counts keeps exact totals beyond it.
const maxRecordedViolations = 64

// AuditReport summarizes what the auditor saw over a run. It is
// carried in Result.Audit (nil only when auditing was off).
type AuditReport struct {
	Mode   AuditMode
	Rounds int // rounds audited
	Checks int // individual invariant evaluations

	// Counts is violations per invariant name; empty means clean.
	Counts map[string]int

	// Violations holds the first maxRecordedViolations breaches with
	// detail, in occurrence order.
	Violations []AuditViolation
}

// Total returns the total violation count across invariants.
func (r *AuditReport) Total() int {
	n := 0
	for _, c := range r.Counts {
		n += c
	}
	return n
}

// Clean reports whether no invariant was ever violated.
func (r *AuditReport) Clean() bool { return r.Total() == 0 }

// Summary renders a one-line digest, e.g. for CLI output.
func (r *AuditReport) Summary() string {
	if r.Clean() {
		return fmt.Sprintf("audit[%v]: %d rounds, %d checks, clean", r.Mode, r.Rounds, r.Checks)
	}
	names := make([]string, 0, len(r.Counts))
	for n := range r.Counts {
		names = append(names, n)
	}
	sort.Strings(names)
	s := fmt.Sprintf("audit[%v]: %d rounds, %d checks, %d VIOLATIONS:", r.Mode, r.Rounds, r.Checks, r.Total())
	for _, n := range names {
		s += fmt.Sprintf(" %s=%d", n, r.Counts[n])
	}
	return s
}

// auditor is the engine's always-on invariant checker. It is fed by
// runRound (placement, tickets, capacity) and executeJob (per-job
// accounting) and verifies conservation at every round boundary.
type auditor struct {
	mode    AuditMode
	cluster *gpu.Cluster
	quantum simclock.Duration
	rep     AuditReport

	// Per-round scratch, reset by beginRound.
	round   int
	now     simclock.Time
	caps    map[gpu.Generation]int
	busyGen map[gpu.Generation]float64
}

func newAuditor(mode AuditMode, cluster *gpu.Cluster, quantum simclock.Duration) *auditor {
	return &auditor{
		mode:    mode,
		cluster: cluster,
		quantum: quantum,
		rep:     AuditReport{Mode: mode, Counts: make(map[string]int)},
		busyGen: make(map[gpu.Generation]float64),
	}
}

func (a *auditor) on() bool { return a.mode != AuditOff }

func (a *auditor) violate(invariant, format string, args ...any) {
	a.rep.Counts[invariant]++
	if len(a.rep.Violations) < maxRecordedViolations {
		a.rep.Violations = append(a.rep.Violations, AuditViolation{
			Round: a.round, At: a.now, Invariant: invariant,
			Detail: fmt.Sprintf(format, args...),
		})
	}
}

// beginRound resets per-round state and checks the runtime ticket
// invariant after this round's ticket changes were applied.
func (a *auditor) beginRound(round int, now simclock.Time, caps map[gpu.Generation]int, tickets map[job.UserID]float64) {
	if !a.on() {
		return
	}
	a.round = round
	a.now = now
	a.caps = caps
	for g := range a.busyGen {
		delete(a.busyGen, g)
	}
	a.rep.Rounds++
	for u, t := range tickets {
		a.rep.Checks++
		if t < 0 {
			a.violate(InvTickets, "user %s has %v tickets", u, t)
		}
	}
}

// checkAssignment audits the concrete device placement of one round:
// gang integrity, capacity, double placement, and failed servers.
func (a *auditor) checkAssignment(asg placement.Assignment, active map[job.ID]*job.Job, down, quarantined map[gpu.ServerID]bool) {
	if !a.on() {
		return
	}
	used := make(map[gpu.DeviceID]job.ID, len(asg))
	width := make(map[gpu.Generation]int)
	for id, devs := range asg {
		j := active[id]
		if j == nil {
			a.violate(InvGang, "job %d placed but not active", id)
			continue
		}
		a.rep.Checks++
		if len(devs) != j.Gang {
			a.violate(InvGang, "job %d holds %d devices, gang is %d", id, len(devs), j.Gang)
		}
		var gen gpu.Generation
		if len(devs) > 0 {
			gen = a.cluster.Device(devs[0]).Gen
			width[gen] += len(devs)
		}
		for _, d := range devs {
			dev := a.cluster.Device(d)
			a.rep.Checks++
			if dev.Gen != gen {
				a.violate(InvGang, "job %d spans generations %v and %v", id, gen, dev.Gen)
			}
			if prev, dup := used[d]; dup {
				a.violate(InvDoublePlace, "device %d held by jobs %d and %d", d, prev, id)
			}
			used[d] = id
			if down[dev.Server] {
				a.violate(InvDownServer, "job %d placed on failed server %d (device %d)", id, dev.Server, d)
			}
			if quarantined[dev.Server] {
				a.violate(InvQuarantine, "job %d placed on quarantined server %d (device %d)", id, dev.Server, d)
			}
		}
		if len(devs) > 0 && !j.Perf.FitsOn(gen) {
			a.violate(InvGang, "job %d (%s) placed on unusable generation %v", id, j.Perf.Model, gen)
		}
	}
	for g, w := range width {
		a.rep.Checks++
		if w > a.caps[g] {
			a.violate(InvCapacity, "%d GPUs placed on %v, capacity %d", w, g, a.caps[g])
		}
	}
}

// noteExec audits one job's execution accounting and accrues the
// round's per-generation busy time for the conservation check.
func (a *auditor) noteExec(j *job.Job, gen gpu.Generation, info RanInfo) {
	if !a.on() {
		return
	}
	const tol = 1e-6
	a.rep.Checks++
	if info.OccupiedSecs > a.quantum+tol {
		a.violate(InvUsefulBound, "job %d occupied %v s > quantum %v s", j.ID, info.OccupiedSecs, a.quantum)
	}
	if info.UsefulSecs > info.OccupiedSecs+tol {
		a.violate(InvUsefulBound, "job %d useful %v s > occupied %v s", j.ID, info.UsefulSecs, info.OccupiedSecs)
	}
	if info.UsefulSecs < 0 || info.OccupiedSecs < 0 {
		a.violate(InvUsefulBound, "job %d negative accounting: useful %v, occupied %v", j.ID, info.UsefulSecs, info.OccupiedSecs)
	}
	a.busyGen[gen] += float64(j.Gang) * info.OccupiedSecs
}

// noteFaultCharge accrues occupied GPU-seconds charged outside
// executeJob (a failed migration attempt holds its reserved target
// devices for the attempt's duration) so conservation stays exact.
func (a *auditor) noteFaultCharge(gen gpu.Generation, gangSecs float64) {
	if !a.on() {
		return
	}
	a.busyGen[gen] += gangSecs
}

// checkCompensation audits one round of failure-compensation
// accounting per user: repayment is non-negative, never exceeds the
// deficit the policy was shown, and the deficit evolves exactly as
// before + lost − repaid ≥ 0. Together these make the deficit
// monotonically drain while the user is active and no new losses
// accrue. users must be sorted (deterministic violation order).
func (a *auditor) checkCompensation(users []job.UserID, before, lost, repaid, after map[job.UserID]float64) {
	if !a.on() {
		return
	}
	const tol = 1e-6
	for _, u := range users {
		a.rep.Checks++
		b, l, r, aft := before[u], lost[u], repaid[u], after[u]
		if r < -tol {
			a.violate(InvCompensation, "user %s repaid negative %v GPU-s", u, r)
		}
		if r > b+tol*(1+b) {
			a.violate(InvCompensation, "user %s repaid %v GPU-s exceeds deficit %v", u, r, b)
		}
		want := b + l - r
		if want < 0 {
			want = 0
		}
		if diff := aft - want; diff > tol*(1+want) || diff < -tol*(1+want) {
			a.violate(InvCompensation, "user %s deficit %v, want %v (= %v + %v − %v)", u, aft, want, b, l, r)
		}
		if aft < -tol {
			a.violate(InvCompensation, "user %s negative deficit %v", u, aft)
		}
	}
}

// endRound verifies GPU-second conservation for the round and, in
// strict mode, surfaces the round's first violation as an error.
func (a *auditor) endRound() error {
	if !a.on() {
		return nil
	}
	for g, busy := range a.busyGen {
		a.rep.Checks++
		bound := float64(a.caps[g]) * a.quantum
		if busy > bound+1e-6*(1+bound) {
			a.violate(InvConservation, "%v charged %v GPU-s, capacity %v GPU-s", g, busy, bound)
		}
	}
	if a.mode == AuditStrict && len(a.rep.Violations) > 0 {
		return &AuditError{Violation: a.rep.Violations[0]}
	}
	return nil
}

// report snapshots the accumulated audit state for Result.
func (a *auditor) report() *AuditReport {
	if !a.on() {
		return nil
	}
	rep := a.rep
	rep.Counts = make(map[string]int, len(a.rep.Counts))
	for k, v := range a.rep.Counts {
		rep.Counts[k] = v
	}
	rep.Violations = append([]AuditViolation(nil), a.rep.Violations...)
	return &rep
}
