package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func runQuick(t *testing.T, id string) *Table {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(Options{Quick: true})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tab.ID != id {
		t.Fatalf("table ID %q, want %q", tab.ID, id)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), id) {
		t.Fatalf("render missing ID header:\n%s", buf.String())
	}
	return tab
}

// cell parses a numeric cell that may carry a trailing % sign.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tab.Rows[row][col], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s row %d col %d: %q not numeric", tab.ID, row, col, tab.Rows[row][col])
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "A1", "A2", "A3", "A4", "A5"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	seen := map[string]bool{}
	for _, e := range all {
		seen[e.ID] = true
		if e.Title == "" || e.Artifact == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
	for _, id := range want {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	// Ordering: experiments before ablations, numeric within.
	if all[0].ID != "E1" || all[len(all)-1].ID != "A5" {
		t.Errorf("ordering wrong: first %s last %s", all[0].ID, all[len(all)-1].ID)
	}
	if _, err := Get("E99"); err == nil {
		t.Error("unknown ID resolved")
	}
}

func TestE1SpeedupShape(t *testing.T) {
	tab := runQuick(t, "E1")
	if len(tab.Rows) != zoo.Len() {
		t.Fatalf("%d rows, want %d models", len(tab.Rows), zoo.Len())
	}
	lo, hi := 99.0, 0.0
	for i := range tab.Rows {
		k80 := cell(t, tab, i, 1)
		v100 := cell(t, tab, i, 4)
		if k80 < 0.99 || k80 > 1.01 {
			t.Errorf("row %d: K80 speedup %v, want 1", i, k80)
		}
		if v100 < lo {
			lo = v100
		}
		if v100 > hi {
			hi = v100
		}
	}
	if lo > 1.5 || hi < 3.5 {
		t.Errorf("V100 speedup spread [%v, %v], want Table-1-like spread", lo, hi)
	}
}

func TestE2Composition(t *testing.T) {
	tab := runQuick(t, "E2")
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "total" || last[3] != "200" {
		t.Fatalf("total row = %v", last)
	}
}

func TestE3SingleServerFairness(t *testing.T) {
	tab := runQuick(t, "E3")
	for i := 0; i < 6; i++ {
		if sh := cell(t, tab, i, 2); sh < 14 || sh > 19.5 {
			t.Errorf("user %d share %v%%, want ≈16.7%%", i, sh)
		}
	}
	if jain := cell(t, tab, 6, 2); jain < 0.99 {
		t.Errorf("Jain = %v, want ≈1", jain)
	}
}

func TestE4GangAware(t *testing.T) {
	tab := runQuick(t, "E4")
	gaUtil := cell(t, tab, 0, 1)
	naiveUtil := cell(t, tab, 1, 1)
	// Greedy pass-order packing of {8,4,2,1,1,1} onto 8 GPUs tops out
	// around ~75% (rounds where the 4-gang is skipped leave gaps);
	// naive blocking drops another ≥10 points by idling on the 8-gang.
	if gaUtil < 70 {
		t.Errorf("gang-aware utilization %v%%, want ≥70%%", gaUtil)
	}
	if naiveUtil > gaUtil-8 {
		t.Errorf("naive utilization %v%% not clearly worse than %v%%", naiveUtil, gaUtil)
	}
	if bigShare := cell(t, tab, 0, 2); bigShare < 12 {
		t.Errorf("gang-aware big-job share %v%%, want no starvation (ideal 16.7%%)", bigShare)
	}
	if jain := cell(t, tab, 0, 3); jain < 0.95 {
		t.Errorf("gang-aware Jain %v, want ≥0.95", jain)
	}
	// Class-budgeted: better utilization than naive AND a fairer
	// big-gang share than greedy.
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 modes", len(tab.Rows))
	}
	classedUtil := cell(t, tab, 2, 1)
	classedBig := cell(t, tab, 2, 2)
	if classedUtil < naiveUtil+10 {
		t.Errorf("classed utilization %v%% not clearly above naive %v%%", classedUtil, naiveUtil)
	}
	if classedBig < cell(t, tab, 0, 2)+4 {
		t.Errorf("classed big-gang share %v%% not clearly above greedy %v%%", classedBig, cell(t, tab, 0, 2))
	}
}

func TestE5UserFairness(t *testing.T) {
	tab := runQuick(t, "E5")
	// Row 0 = gandiva-fair: both ≈50%.
	if m, b := cell(t, tab, 0, 1), cell(t, tab, 0, 2); m < 44 || m > 56 || b < 44 || b > 56 {
		t.Errorf("gandiva-fair shares %v/%v, want ≈50/50", m, b)
	}
	// Baselines hand the flooder much more.
	for i := 1; i < len(tab.Rows); i++ {
		if m := cell(t, tab, i, 1); m < 60 {
			t.Errorf("%s gives flooder %v%%, expected job-centric skew", tab.Rows[i][0], m)
		}
	}
}

func TestE6ShareError(t *testing.T) {
	tab := runQuick(t, "E6")
	if tab.Rows[0][0] != "gandiva-fair-no-trade" {
		t.Fatalf("row 0 = %v", tab.Rows[0][0])
	}
	fairErr := cell(t, tab, 0, 5)
	if fairErr > 6 {
		t.Errorf("gandiva-fair max share error %v%%, want ≤6%%", fairErr)
	}
	worstBaseline := 0.0
	for i := 1; i < len(tab.Rows); i++ {
		if e := cell(t, tab, i, 5); e > worstBaseline {
			worstBaseline = e
		}
	}
	if worstBaseline < 3*fairErr {
		t.Errorf("baselines' worst error %v%% vs fair %v%%: separation too small", worstBaseline, fairErr)
	}
}

func TestE7WorkConservation(t *testing.T) {
	tab := runQuick(t, "E7")
	// First window: a,b ≈50/50, c 0. Middle (after c arrives): c > 20%.
	if c0 := cell(t, tab, 0, 3); c0 > 1 {
		t.Errorf("c's share before arrival = %v%%", c0)
	}
	sawC := false
	for i := 1; i < len(tab.Rows); i++ {
		if c := cell(t, tab, i, 3); c > 20 {
			sawC = true
		}
	}
	if !sawC {
		t.Error("c never received a substantial share after arrival")
	}
	last := len(tab.Rows) - 1
	if c := cell(t, tab, last, 3); c > 5 {
		t.Errorf("c's share after departure = %v%%, want reclaimed", c)
	}
	if a := cell(t, tab, last, 1); a < 40 {
		t.Errorf("a's share after c departed = %v%%, want ≈50%%", a)
	}
}

func TestE8MigrationOverhead(t *testing.T) {
	tab := runQuick(t, "E8")
	// Per-model migration costs scale with checkpoint size; overhead
	// per 30-min residency stays below ~5%.
	for i := 0; i < zoo.Len(); i++ {
		if ov := cell(t, tab, i, 3); ov > 5 {
			t.Errorf("model row %d overhead %v%%, want ≤5%%", i, ov)
		}
	}
	// Measured end-to-end overhead in the trading run is small.
	meas := tab.Rows[len(tab.Rows)-1]
	ov, err := strconv.ParseFloat(strings.TrimSuffix(meas[3], "%"), 64)
	if err != nil || ov > 8 {
		t.Errorf("measured overhead = %v (%v), want ≤8%%", meas[3], err)
	}
}

func TestE9MigrationAblation(t *testing.T) {
	tab := runQuick(t, "E9")
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	onFinished := cell(t, tab, 0, 1)
	offFinished := cell(t, tab, 1, 1)
	if onFinished < offFinished {
		t.Errorf("migration on finished %v < off %v", onFinished, offFinished)
	}
	if mig := cell(t, tab, 1, 5); mig != 0 {
		t.Errorf("migration-off run migrated %v times", mig)
	}
}

func TestE10TradingWinWin(t *testing.T) {
	tab := runQuick(t, "E10")
	memGain := cell(t, tab, 0, 3)
	denseGain := cell(t, tab, 1, 3)
	if memGain < 0.99 {
		t.Errorf("mem user gain %v, trading must not hurt", memGain)
	}
	if denseGain < 1.05 {
		t.Errorf("dense user gain %v, want ≥1.05", denseGain)
	}
}

func TestE11TradingAtScale(t *testing.T) {
	tab := runQuick(t, "E11")
	worst := cell(t, tab, len(tab.Rows)-2, 1)
	if worst < 0.98 {
		t.Errorf("worst-case trading gain %v, want ≥0.98 (no user loses)", worst)
	}
	// The dense-model user should gain noticeably.
	for i := range tab.Rows {
		if tab.Rows[i][0] == "dense" {
			if g := cell(t, tab, i, 1); g < 1.03 {
				t.Errorf("dense user gain %v, want ≥1.03", g)
			}
		}
	}
}

func TestE12EndToEnd(t *testing.T) {
	tab := runQuick(t, "E12")
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 policies", len(tab.Rows))
	}
	byName := map[string]int{}
	for i, r := range tab.Rows {
		byName[r[0]] = i
	}
	fairRow, ok := byName["gandiva-fair"]
	if !ok {
		t.Fatal("gandiva-fair row missing")
	}
	fairErr := cell(t, tab, fairRow, 5)
	tirErr := cell(t, tab, byName["tiresias-l"], 5)
	if fairErr > 12 {
		t.Errorf("gandiva-fair share error %v%%", fairErr)
	}
	if tirErr < fairErr {
		t.Errorf("tiresias share error %v%% < gandiva-fair %v%%", tirErr, fairErr)
	}
	// Static quota must trail the sharing policies on utilization.
	staticUtil := cell(t, tab, byName["static-quota"], 4)
	fairUtil := cell(t, tab, fairRow, 4)
	if staticUtil > fairUtil {
		t.Errorf("static quota utilization %v%% > gandiva-fair %v%%", staticUtil, fairUtil)
	}
}

func TestA1PricePolicies(t *testing.T) {
	tab := runQuick(t, "A1")
	for i := range tab.Rows {
		mem, dense := cell(t, tab, i, 1), cell(t, tab, i, 2)
		if mem < 0.99 || dense < 0.99 {
			t.Errorf("%s: gains %v/%v — some user lost", tab.Rows[i][0], mem, dense)
		}
	}
}

func TestA2QuantumSweep(t *testing.T) {
	tab := runQuick(t, "A2")
	short := cell(t, tab, 0, 1)
	long := cell(t, tab, 2, 1)
	if long < short {
		t.Errorf("longer quantum has lower useful fraction: %v vs %v", long, short)
	}
}

func TestA3Noise(t *testing.T) {
	tab := runQuick(t, "A3")
	for i := range tab.Rows {
		if dense := cell(t, tab, i, 2); dense < 0.99 {
			t.Errorf("noise row %d: dense gain %v", i, dense)
		}
	}
}

func TestA4FaultTolerance(t *testing.T) {
	tab := runQuick(t, "A4")
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	none := cell(t, tab, 0, 1)
	injected := cell(t, tab, 1, 1)
	if none != injected {
		t.Errorf("failures lost jobs: %v finished vs %v", injected, none)
	}
	if err := cell(t, tab, 1, 4); err > 10 {
		t.Errorf("share error under failures = %v%%", err)
	}
}

func TestA5Scalability(t *testing.T) {
	tab := runQuick(t, "A5")
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Cost grows with scale but stays far below the quantum.
	for i := range tab.Rows {
		if ms := cell(t, tab, i, 3); ms > 1000 {
			t.Errorf("round cost %v ms at row %d — too slow for minute quanta", ms, i)
		}
	}
}

func TestTableAddRowPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched row accepted")
		}
	}()
	tab := &Table{ID: "X", Columns: []string{"a", "b"}}
	tab.AddRow("only-one")
}
