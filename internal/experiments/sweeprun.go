package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/simclock"
	"repro/internal/sweep"
)

// point builds one sweep cell from the pieces experiments already
// carry around: a config, a policy constructor, a horizon. The policy
// is constructed inside the worker so each run owns its instance.
func point(label string, cfg core.Config, mk func() core.Policy, horizon simclock.Time) sweep.Point {
	return sweep.Point{
		Label:   label,
		Config:  cfg,
		Policy:  func() (core.Policy, error) { return mk(), nil },
		Horizon: horizon,
	}
}

// runPoints fans the points across the sweep worker pool and unwraps
// the results back into input order, failing on the first per-point
// error. Experiments that used to run their policy/config loops
// serially route through here, so a multi-policy table costs one
// simulation of wall clock on a multi-core machine instead of the sum.
func runPoints(points []sweep.Point) ([]*core.Result, error) {
	out := make([]*core.Result, len(points))
	for i, r := range sweep.Run(context.Background(), points, sweep.Options{}) {
		if r.Err != nil {
			return nil, r.Err
		}
		out[i] = r.Result
	}
	return out, nil
}
