package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/migrate"
	"repro/internal/simclock"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// meanSlowdown averages JCT over each finished job's physics-optimal
// runtime (standalone on the fastest generation it fits) — the
// contention-plus-placement penalty jobs experienced.
func meanSlowdown(res *core.Result) float64 {
	var sum float64
	n := 0
	for _, j := range res.Finished {
		best := simclock.Duration(simclock.Forever)
		for _, g := range gpu.Generations() {
			if j.Perf.FitsOn(g) {
				if s := j.StandaloneTime(g); s < best {
					best = s
				}
			}
		}
		if best > 0 && best < simclock.Duration(simclock.Forever) {
			sum += metrics.Slowdown(j.JCT(), best)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func tiresias() core.Policy  { return baselines.NewTiresias(baselines.TiresiasConfig{}) }
func gandivaRR() core.Policy { return baselines.NewGandivaRR() }
func fifo() core.Policy      { return baselines.NewFIFO() }

func init() {
	register(Experiment{ID: "E7", Title: "Work conservation across user churn",
		Artifact: "Fig: share redistribution", Run: e07WorkConservation})
	register(Experiment{ID: "E8", Title: "Migration and suspend/resume overhead",
		Artifact: "Fig: migration overhead", Run: e08MigrationOverhead})
	register(Experiment{ID: "E9", Title: "Migration on/off under fragmentation",
		Artifact: "Fig: load balancing", Run: e09MigrationAblation})
	register(Experiment{ID: "E10", Title: "Automatic trading: two-user win-win",
		Artifact: "Fig: trading microbenchmark", Run: e10TradingWinWin})
	register(Experiment{ID: "E11", Title: "Automatic trading at cluster scale",
		Artifact: "Fig: trading efficiency gains", Run: e11TradingAtScale})
	register(Experiment{ID: "E12", Title: "End-to-end multi-user workload, all policies",
		Artifact: "Fig/Table: end-to-end evaluation", Run: e12EndToEnd})
}

// e07WorkConservation: three equal users; user c is only active in
// the middle third of the run. The timeline must show a,b at 50/50,
// then 33/33/33, then 50/50 again.
func e07WorkConservation(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	phase := 6 * simclock.Hour
	if opt.Quick {
		phase = 2 * simclock.Hour
	}
	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("a", zoo.MustGet("lstm"), 8, 1, 1e6)...)
	specs = append(specs, workload.BatchJobs("b", zoo.MustGet("gru"), 8, 1, 1e6)...)
	// c arrives at phase and runs jobs sized to finish near 2×phase.
	// Sized for a third of a 16-GPU cluster: 8 jobs × (phase × 2/3)
	// standalone hours each ⇒ demand ≈ phase of work at 1/3 share...
	// sizing only needs to be "clearly within the middle window".
	cJobs := workload.BatchJobs("c", zoo.MustGet("vae"), 8, 1, float64(phase)*0.55/simclock.Hour)
	for i := range cJobs {
		cJobs[i].Arrival = simclock.Time(phase)
	}
	specs = append(specs, cJobs...)
	specs, err := workload.AssignIDs(specs)
	if err != nil {
		return nil, err
	}
	cluster := gpu.MustNew(gpu.Spec{Gen: gpu.K80, Servers: 4, GPUsPerSrv: 4})
	res, err := runSim(core.Config{
		Cluster: cluster, Specs: specs, Seed: opt.Seed,
		TimelineWindow: phase / 2,
	}, core.MustNewFairPolicy(core.FairConfig{}), simclock.Time(3*phase))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E7", Title: "User c joins at T/3 and departs at 2T/3 (16 GPUs, equal tickets)",
		Columns: []string{"window", "a", "b", "c"},
		Notes:   "c's share is carved out on arrival and redistributed to a,b on departure — work conservation both ways",
	}
	users := []job.UserID{"a", "b", "c"}
	for i, w := range res.Timeline.Windows() {
		fr := metrics.ShareFractions(w.ByUser)
		t.AddRow(fmt.Sprintf("[%dh,%dh)", int(float64(w.Start)/3600), int(float64(w.End)/3600)),
			pct(fr[users[0]]), pct(fr[users[1]]), pct(fr[users[2]]))
		if i >= 5 {
			break
		}
	}
	return t, nil
}

// e08MigrationOverhead reports the cost model per model (checkpoint
// size → seconds) and a measured end-to-end overhead fraction from a
// trading run where jobs migrate between generations.
func e08MigrationOverhead(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	cm := migrate.Default()
	t := &Table{
		ID: "E8", Title: "Migration cost by model; suspend/resume amortization",
		Columns: []string{"model", "ckpt MB", "migration s", "overhead per 30-min residency"},
		Notes:   "tens of seconds per migration; a few percent when jobs move at most every ~30 min",
	}
	for _, p := range zoo.Models() {
		cost := cm.MigrationCost(p)
		t.AddRow(p.Model, f1(p.CheckpointMB), f1(cost),
			pct(migrate.OverheadFraction(cost, 30*simclock.Minute)))
	}
	t.AddRow("suspend/resume", "-", f1(cm.ResumeCost()),
		pct(migrate.OverheadFraction(cm.ResumeCost(), 6*simclock.Minute)))

	// Measured: overhead share of occupied GPU time in a migratory
	// trading scenario.
	horizon := simclock.Time(12 * simclock.Hour)
	if opt.Quick {
		horizon = simclock.Time(4 * simclock.Hour)
	}
	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("mem", zoo.MustGet("vae"), 12, 1, 1e6)...)
	specs = append(specs, workload.BatchJobs("dense", zoo.MustGet("resnext50"), 12, 1, 1e6)...)
	specs, _ = workload.AssignIDs(specs)
	cluster := gpu.MustNew(
		gpu.Spec{Gen: gpu.K80, Servers: 2, GPUsPerSrv: 4},
		gpu.Spec{Gen: gpu.V100, Servers: 2, GPUsPerSrv: 4},
	)
	res, err := runSim(core.Config{Cluster: cluster, Specs: specs, Seed: opt.Seed},
		core.MustNewFairPolicy(core.FairConfig{EnableTrading: true}), horizon)
	if err != nil {
		return nil, err
	}
	var overhead float64
	for _, j := range res.Finished {
		overhead += j.OverheadSeconds() * float64(j.Gang)
	}
	// Unfinished jobs (this workload never finishes): read overhead
	// via usage minus useful time.
	occupied, useful := res.TotalOccupied(), res.TotalUseful()
	t.AddRow("measured (trading run)", "-", fmt.Sprint(res.Migrations),
		pct((occupied-useful)/occupied))
	return t, nil
}

// e09MigrationAblation compares migration enabled/disabled under a
// churning mixed-gang workload: without migration, jobs pinned to
// servers cannot follow the allocation across generations and
// fragmentation strands capacity.
func e09MigrationAblation(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	horizon := simclock.Time(2 * simclock.Day)
	jobs := 160
	if opt.Quick {
		horizon = simclock.Time(simclock.Day)
		jobs = 80
	}
	build := func() []job.Spec {
		return workload.MustGenerate(zoo, workload.Config{
			Seed: opt.Seed,
			Users: []workload.UserSpec{
				{User: "a", NumJobs: jobs / 2, ArrivalRatePerHour: 6, MeanK80Hours: 5},
				{User: "b", NumJobs: jobs / 2, ArrivalRatePerHour: 6, MeanK80Hours: 5},
			},
			MaxK80Hours: 16,
		})
	}
	cluster := gpu.MustNew(
		gpu.Spec{Gen: gpu.K80, Servers: 5, GPUsPerSrv: 4},
		gpu.Spec{Gen: gpu.V100, Servers: 5, GPUsPerSrv: 4},
	)
	t := &Table{
		ID: "E9", Title: "Philly-like churn on 40 GPUs, migration on vs off",
		Columns: []string{"migration", "finished", "mean JCT h", "p95 JCT h", "utilization", "migrations"},
		Notes: "pinned jobs keep their GPUs busy but cannot follow entitlements onto faster generations " +
			"or defragment around gangs: mean JCT inflates ~25% with migration off",
	}
	var points []sweep.Point
	labels := []string{"on", "off"}
	for i, disabled := range []bool{false, true} {
		points = append(points, point("e09/migration="+labels[i],
			core.Config{Cluster: cluster, Specs: build(), Seed: opt.Seed, DisableMigration: disabled},
			func() core.Policy { return core.MustNewFairPolicy(core.FairConfig{EnableTrading: true}) },
			horizon))
	}
	results, err := runPoints(points)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		st := metrics.Summarize(res.JCTs())
		t.AddRow(labels[i], fmt.Sprint(len(res.Finished)), f1(st.Mean/3600), f1(st.P95/3600),
			pct(res.Utilization.Fraction()), fmt.Sprint(res.Migrations))
	}
	return t, nil
}

// e10TradingWinWin: the two-user microbenchmark — a memory-bound user
// and a compute-dense user split a K80+V100 cluster; trading must
// raise both users' throughput.
func e10TradingWinWin(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	horizon := simclock.Time(24 * simclock.Hour)
	if opt.Quick {
		horizon = simclock.Time(6 * simclock.Hour)
	}
	build := func() []job.Spec {
		var specs []job.Spec
		specs = append(specs, workload.BatchJobs("mem", zoo.MustGet("vae"), 12, 1, 1e6)...)
		specs = append(specs, workload.BatchJobs("dense", zoo.MustGet("resnext50"), 12, 1, 1e6)...)
		specs, _ = workload.AssignIDs(specs)
		return specs
	}
	cluster := gpu.MustNew(
		gpu.Spec{Gen: gpu.K80, Servers: 2, GPUsPerSrv: 4},
		gpu.Spec{Gen: gpu.V100, Servers: 2, GPUsPerSrv: 4},
	)
	results, err := runPoints([]sweep.Point{
		point("e10/blind", core.Config{Cluster: cluster, Specs: build(), Seed: opt.Seed},
			func() core.Policy { return core.MustNewFairPolicy(core.FairConfig{}) }, horizon),
		point("e10/traded", core.Config{Cluster: cluster, Specs: build(), Seed: opt.Seed},
			func() core.Policy { return core.MustNewFairPolicy(core.FairConfig{EnableTrading: true}) }, horizon),
	})
	if err != nil {
		return nil, err
	}
	blind, traded := results[0], results[1]
	t := &Table{
		ID: "E10", Title: "vae user vs resnext50 user on 8 K80 + 8 V100",
		Columns: []string{"user", "minibatches (blind)", "minibatches (traded)", "gain"},
		Notes:   "both gain: the dense user buys V100 time with K80 time at a price between the two speedups",
	}
	for _, u := range []job.UserID{"mem", "dense"} {
		b, tr := blind.ThroughputByUser[u], traded.ThroughputByUser[u]
		t.AddRow(string(u), f1(b), f1(tr), f2(tr/b))
	}
	t.AddRow("trades executed", "-", fmt.Sprint(traded.TradeCount), "-")
	return t, nil
}

// e11TradingAtScale: the full 200-GPU cluster with users whose model
// mixes create a wide speedup spread; trading must not hurt anyone
// and should lift aggregate progress.
func e11TradingAtScale(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	// jobsPer stays high even in quick mode: total demand must exceed
	// 200 GPUs or there is nothing to trade (uncontended water-fill
	// already hands everyone their full demand).
	horizon := simclock.Time(24 * simclock.Hour)
	jobsPer := 50
	if opt.Quick {
		horizon = simclock.Time(6 * simclock.Hour)
	}
	mixes := []struct {
		user   job.UserID
		models []string
	}{
		{"membound", []string{"vae", "superres", "squeezenet"}},
		{"gan", []string{"dcgan", "pix2pix", "cyclegan"}},
		{"rnn", []string{"lstm", "gru"}},
		{"cnn", []string{"resnet50", "densenet121"}},
		{"dense", []string{"resnext50", "transformer"}},
	}
	build := func() []job.Spec {
		var us []workload.UserSpec
		for _, m := range mixes {
			us = append(us, workload.UserSpec{
				User: m.user, NumJobs: jobsPer, Models: m.models, MeanK80Hours: 1e5,
				GangDist: []workload.GangWeight{{Gang: 1, Weight: 0.7}, {Gang: 2, Weight: 0.2}, {Gang: 4, Weight: 0.1}},
			})
		}
		return workload.MustGenerate(zoo, workload.Config{
			Seed: opt.Seed, Users: us, MinK80Hours: 1e5, MaxK80Hours: 1e5,
		})
	}
	cluster := gpu.Default200()
	results, err := runPoints([]sweep.Point{
		point("e11/blind", core.Config{Cluster: cluster, Specs: build(), Seed: opt.Seed},
			func() core.Policy { return core.MustNewFairPolicy(core.FairConfig{}) }, horizon),
		point("e11/traded", core.Config{Cluster: cluster, Specs: build(), Seed: opt.Seed},
			func() core.Policy { return core.MustNewFairPolicy(core.FairConfig{EnableTrading: true}) }, horizon),
	})
	if err != nil {
		return nil, err
	}
	blind, traded := results[0], results[1]
	t := &Table{
		ID: "E11", Title: "5 users with skewed model mixes on the 200-GPU cluster",
		Columns: []string{"user", "progress gain from trading", "share (traded)"},
		Notes:   "no user loses; users at the speedup extremes gain the most",
	}
	sh := metrics.ShareFractions(traded.TotalUsageByUser())
	worst := 1e9
	for _, m := range mixes {
		gain := traded.ThroughputByUser[m.user] / blind.ThroughputByUser[m.user]
		if gain < worst {
			worst = gain
		}
		t.AddRow(string(m.user), f2(gain), pct(sh[m.user]))
	}
	t.AddRow("worst-case gain", f2(worst), "-")
	t.AddRow("trades executed", fmt.Sprint(traded.TradeCount), "-")
	return t, nil
}

// e12EndToEnd: the headline evaluation — a Philly-shaped multi-user
// workload on the 200-GPU cluster under every policy.
func e12EndToEnd(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	horizon := simclock.Time(3 * simclock.Day)
	jobsPer := 70
	if opt.Quick {
		horizon = simclock.Time(simclock.Day)
		jobsPer = 35
	}
	users := []job.UserID{"u1", "u2", "u3", "u4", "u5", "u6", "u7", "u8", "u9", "u10"}
	modelPools := [][]string{
		{"vae", "superres"}, {"squeezenet", "dcgan"}, {"pix2pix", "cyclegan"},
		{"lstm", "gru"}, {"resnet50"}, {"densenet121", "resnet50"},
		{"resnext50"}, {"transformer"}, {"gru", "vae"}, {"resnext50", "transformer"},
	}
	build := func() []job.Spec {
		var us []workload.UserSpec
		for i, u := range users {
			// Skewed tenancy: later users flood the cluster with more,
			// faster-arriving jobs — the conditions under which
			// job-centric scheduling diverges from user fairness.
			us = append(us, workload.UserSpec{
				User: u, NumJobs: jobsPer + 15*i, ArrivalRatePerHour: 2 + float64(i),
				Models: modelPools[i], MeanK80Hours: 8, SigmaLog: 1.3,
			})
		}
		return workload.MustGenerate(zoo, workload.Config{Seed: opt.Seed, Users: us, MaxK80Hours: 40})
	}
	cluster := gpu.Default200()

	t := &Table{
		ID: "E12", Title: "10 users, Philly-shaped arrivals, 200 heterogeneous GPUs",
		Columns: []string{"policy", "finished", "mean JCT h", "p95 JCT h", "util", "max share err", "Jain", "migrations", "trades", "mean slowdown"},
		Notes: "share error is raw GPU-time vs the water-filled reference; the no-trade row shows the " +
			"fairness guarantee (trading deviates from raw GPU-time voluntarily — both sides prefer the " +
			"exchange in throughput terms, which the lower mean JCT reflects)",
	}
	mks := []func() core.Policy{
		func() core.Policy { return core.MustNewFairPolicy(core.FairConfig{EnableTrading: true}) },
		func() core.Policy { return core.MustNewFairPolicy(core.FairConfig{}) },
		tiresias, gandivaRR,
		func() core.Policy { return baselines.NewStaticQuota(users) },
		fifo,
	}
	var points []sweep.Point
	for i, mk := range mks {
		points = append(points, point(fmt.Sprintf("e12/%d", i),
			core.Config{Cluster: cluster, Specs: build(), Seed: opt.Seed}, mk, horizon))
	}
	results, err := runPoints(points)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		st := metrics.Summarize(res.JCTs())
		sh := metrics.ShareFractions(res.TotalUsageByUser())
		var vals []float64
		for _, u := range users {
			vals = append(vals, sh[u])
		}
		t.AddRow(res.Policy, fmt.Sprint(len(res.Finished)), f1(st.Mean/3600), f1(st.P95/3600),
			pct(res.Utilization.Fraction()), pct(res.MaxShareError()),
			f2(metrics.Jain(vals)), fmt.Sprint(res.Migrations), fmt.Sprint(res.TradeCount),
			f1(meanSlowdown(res)))
	}
	return t, nil
}
