package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/stride"
	"repro/internal/sweep"
	"repro/internal/workload"
)

var zoo = workload.DefaultZoo()

func init() {
	register(Experiment{ID: "E1", Title: "Per-model speedup across GPU generations",
		Artifact: "Table 1", Run: e01ModelSpeedups})
	register(Experiment{ID: "E2", Title: "Cluster composition",
		Artifact: "Table 2 (testbed description)", Run: e02ClusterComposition})
	register(Experiment{ID: "E3", Title: "Single-server time-slicing fairness",
		Artifact: "Fig: intra-server fairness", Run: e03SingleServerFairness})
	register(Experiment{ID: "E4", Title: "Gang-aware vs naive stride",
		Artifact: "Fig: gang-aware stride", Run: e04GangAwareStride})
	register(Experiment{ID: "E5", Title: "User-level fairness: many small vs few big jobs",
		Artifact: "Fig: user fairness", Run: e05UserFairness})
	register(Experiment{ID: "E6", Title: "User shares under Gandiva_fair vs baselines",
		Artifact: "Fig: fairness vs Tiresias", Run: e06VsBaselines})
}

// runSim is the shared driver.
func runSim(cfg core.Config, p core.Policy, until simclock.Time) (*core.Result, error) {
	sim, err := core.New(cfg, p)
	if err != nil {
		return nil, err
	}
	return sim.Run(until)
}

// e01ModelSpeedups measures, on the simulated substrate, each model's
// throughput on every generation by running it alone for a fixed
// horizon, reporting speedup over K80 — the shape of Table 1: wide
// spread of marginal utility across models.
func e01ModelSpeedups(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	horizon := simclock.Time(4 * simclock.Hour)
	if opt.Quick {
		horizon = simclock.Time(1 * simclock.Hour)
	}
	t := &Table{
		ID: "E1", Title: "Measured speedup over K80 (job run alone per generation)",
		Columns: []string{"model", "K80", "P40", "P100", "V100"},
		Notes:   "memory-bound models gain ≈1.1–1.5× on V100; compute-dense gain 2–5×",
	}
	models := zoo.Models()
	gens := gpu.Generations()
	var points []sweep.Point
	for _, perf := range models {
		for _, g := range gens {
			cluster := gpu.MustNew(gpu.Spec{Gen: g, Servers: 1, GPUsPerSrv: 1})
			specs := []job.Spec{{
				ID: 1, User: "probe", Perf: perf, Gang: 1,
				TotalMB: perf.RatePerGPU[g] * 1e7, // never finishes inside the horizon
			}}
			points = append(points, point(fmt.Sprintf("%s/%s", perf.Model, g),
				core.Config{Cluster: cluster, Specs: specs, Seed: opt.Seed},
				func() core.Policy { return core.MustNewFairPolicy(core.FairConfig{}) },
				horizon))
		}
	}
	results, err := runPoints(points)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, perf := range models {
		mb := make(map[gpu.Generation]float64)
		for _, g := range gens {
			mb[g] = results[i].ThroughputByUser["probe"]
			i++
		}
		base := mb[gpu.K80]
		t.AddRow(perf.Model, f2(mb[gpu.K80]/base), f2(mb[gpu.P40]/base),
			f2(mb[gpu.P100]/base), f2(mb[gpu.V100]/base))
	}
	return t, nil
}

func e02ClusterComposition(opt Options) (*Table, error) {
	c := gpu.Default200()
	t := &Table{
		ID: "E2", Title: "Default heterogeneous cluster (paper: 200-GPU Azure testbed)",
		Columns: []string{"generation", "servers", "GPUs/server", "GPUs", "mem GB"},
	}
	for _, g := range c.GensPresent() {
		srvs := c.ServersOf(g)
		perSrv := c.Server(srvs[0]).NumGPUs()
		t.AddRow(g.String(), fmt.Sprint(len(srvs)), fmt.Sprint(perSrv),
			fmt.Sprint(c.Capacity(g)), f1(g.MemGB()))
	}
	t.AddRow("total", fmt.Sprint(c.NumServers()), "-", fmt.Sprint(c.NumDevices()), "-")
	return t, nil
}

// e03SingleServerFairness time-slices six equal-ticket users' 1-GPU
// jobs on one 4-GPU server; each must receive ≈1/6 of the GPU time.
func e03SingleServerFairness(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	horizon := simclock.Time(24 * simclock.Hour)
	if opt.Quick {
		horizon = simclock.Time(6 * simclock.Hour)
	}
	var specs []job.Spec
	users := []job.UserID{"u1", "u2", "u3", "u4", "u5", "u6"}
	for _, u := range users {
		specs = append(specs, workload.BatchJobs(u, zoo.MustGet("lstm"), 1, 1, 1e6)...)
	}
	specs, err := workload.AssignIDs(specs)
	if err != nil {
		return nil, err
	}
	cluster := gpu.MustNew(gpu.Spec{Gen: gpu.K80, Servers: 1, GPUsPerSrv: 4})
	res, err := runSim(core.Config{Cluster: cluster, Specs: specs, Seed: opt.Seed},
		core.MustNewFairPolicy(core.FairConfig{}), horizon)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E3", Title: "6 users × one 1-GPU job on one 4-GPU server",
		Columns: []string{"user", "GPU-hours", "share", "ideal"},
		Notes:   "time-slicing delivers equal shares with >4× more jobs than GPUs impossible statically",
	}
	sh := metrics.ShareFractions(res.TotalUsageByUser())
	usage := res.TotalUsageByUser()
	for _, u := range users {
		t.AddRow(string(u), f1(usage[u]/3600), pct(sh[u]), pct(1.0/6))
	}
	var vals []float64
	for _, u := range users {
		vals = append(vals, sh[u])
	}
	t.AddRow("Jain index", "", f2(metrics.Jain(vals)), "1.00")
	return t, nil
}

// e04GangAwareStride compares gang-aware and naive-blocking stride on
// one shared pool with mixed gang sizes, using the stride scheduler
// directly.
func e04GangAwareStride(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	rounds := 20000
	if opt.Quick {
		rounds = 4000
	}
	cands := []stride.Candidate{
		{ID: 1, Gang: 8, Tickets: 1},
		{ID: 2, Gang: 4, Tickets: 1},
		{ID: 3, Gang: 2, Tickets: 1},
		{ID: 4, Gang: 1, Tickets: 1},
		{ID: 5, Gang: 1, Tickets: 1},
		{ID: 6, Gang: 1, Tickets: 1},
	}
	const capacity = 8
	type selector interface {
		Select(cands []stride.Candidate, capacity int) []job.ID
		Charge(id job.ID, gpuSeconds, tickets float64)
	}
	measure := func(s selector) (util float64, bigShare float64, jain float64) {
		acc := make(map[job.ID]float64)
		var used float64
		gang := map[job.ID]int{1: 8, 2: 4, 3: 2, 4: 1, 5: 1, 6: 1}
		for r := 0; r < rounds; r++ {
			for _, id := range s.Select(cands, capacity) {
				res := float64(gang[id])
				acc[id] += res
				used += res
				s.Charge(id, res*60, 1)
			}
		}
		var total float64
		var shares []float64
		for id := job.ID(1); id <= 6; id++ {
			total += acc[id]
		}
		for id := job.ID(1); id <= 6; id++ {
			shares = append(shares, acc[id]/total)
		}
		return used / float64(rounds*capacity), acc[1] / total, metrics.Jain(shares)
	}
	t := &Table{
		ID: "E4", Title: "Mixed gangs (8,4,2,1,1,1) on an 8-GPU pool, equal tickets",
		Columns: []string{"mode", "utilization", "8-GPU job share", "Jain over jobs"},
		Notes: "naive strict stride head-of-line blocks; greedy pass-order fills the pool but shorts the big " +
			"gang; class-budgeted stride (the split-stride variant) gets close to both ideals at once",
	}
	modes := []struct {
		name string
		s    selector
	}{
		{"gang-aware (greedy)", stride.New(stride.GangAware)},
		{"naive-blocking", stride.New(stride.NaiveBlocking)},
		{"class-budgeted", stride.NewClassed()},
	}
	for _, m := range modes {
		u, big, j := measure(m.s)
		t.AddRow(m.name, pct(u), pct(big), f2(j))
	}
	return t, nil
}

// e05UserFairness reproduces the paper's headline scenario: a user
// with 16 small jobs shares a 32-GPU cluster with a user running two
// 8-GPU gangs; both get half the GPU time.
func e05UserFairness(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	horizon := simclock.Time(24 * simclock.Hour)
	if opt.Quick {
		horizon = simclock.Time(6 * simclock.Hour)
	}
	build := func() []job.Spec {
		// 40 small jobs (demand 40) vs two 8-gangs (demand 16) on 24
		// GPUs: both demands exceed the 12-GPU fair share, so an
		// equal split is feasible — and only user-level scheduling
		// delivers it. Tiresias equalizes per-job service (flooder
		// wins ∝ job count); Gandiva-RR equalizes rounds (flooder
		// wins ∝ aggregate gang width).
		var specs []job.Spec
		specs = append(specs, workload.BatchJobs("many-small", zoo.MustGet("vae"), 40, 1, 1e6)...)
		specs = append(specs, workload.BatchJobs("few-big", zoo.MustGet("resnet50"), 2, 8, 1e6)...)
		specs, _ = workload.AssignIDs(specs)
		return specs
	}
	cluster := gpu.MustNew(gpu.Spec{Gen: gpu.K80, Servers: 6, GPUsPerSrv: 4})
	t := &Table{
		ID: "E5", Title: "40×1-GPU user vs 2×8-GPU user on 24 GPUs",
		Columns: []string{"policy", "many-small share", "few-big share", "ideal"},
		Notes:   "Gandiva_fair holds 50/50; job-centric baselines hand the flooding user far more",
	}
	var points []sweep.Point
	for i, mk := range []func() core.Policy{
		func() core.Policy { return core.MustNewFairPolicy(core.FairConfig{}) },
		tiresias, gandivaRR,
	} {
		points = append(points, point(fmt.Sprintf("e05/%d", i),
			core.Config{Cluster: cluster, Specs: build(), Seed: opt.Seed}, mk, horizon))
	}
	results, err := runPoints(points)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		sh := metrics.ShareFractions(res.TotalUsageByUser())
		t.AddRow(res.Policy, pct(sh["many-small"]), pct(sh["few-big"]), "50.0%")
	}
	return t, nil
}

// e06VsBaselines runs four users with skewed job counts (1, 2, 4, 8)
// and equal tickets under every policy, reporting each user's share
// and the worst-case deviation from the 25% entitlement.
func e06VsBaselines(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	horizon := simclock.Time(24 * simclock.Hour)
	if opt.Quick {
		horizon = simclock.Time(6 * simclock.Hour)
	}
	users := []job.UserID{"u1", "u2", "u3", "u4"}
	jobCounts := map[job.UserID]int{"u1": 1, "u2": 2, "u3": 4, "u4": 8}
	build := func() []job.Spec {
		var specs []job.Spec
		for _, u := range users {
			specs = append(specs, workload.BatchJobs(u, zoo.MustGet("gru"), jobCounts[u], 2, 1e6)...)
		}
		specs, _ = workload.AssignIDs(specs)
		return specs
	}
	cluster := gpu.MustNew(gpu.Spec{Gen: gpu.K80, Servers: 4, GPUsPerSrv: 4})
	t := &Table{
		ID: "E6", Title: "4 equal-ticket users with 1/2/4/8 jobs on 16 GPUs",
		Columns: []string{"policy", "u1", "u2", "u3", "u4", "max share error"},
		Notes: "water-filled entitlements are 12.5/25/31.25/31.25% (u1, u2 demand-capped); " +
			"share error is measured against that reference",
	}
	var points []sweep.Point
	for i, mk := range []func() core.Policy{
		func() core.Policy { return core.MustNewFairPolicy(core.FairConfig{}) },
		tiresias, gandivaRR, fifo,
	} {
		points = append(points, point(fmt.Sprintf("e06/%d", i),
			core.Config{Cluster: cluster, Specs: build(), Seed: opt.Seed}, mk, horizon))
	}
	results, err := runPoints(points)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		sh := metrics.ShareFractions(res.TotalUsageByUser())
		t.AddRow(res.Policy, pct(sh["u1"]), pct(sh["u2"]), pct(sh["u3"]), pct(sh["u4"]),
			pct(res.MaxShareError()))
	}
	return t, nil
}
