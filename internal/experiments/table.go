// Package experiments regenerates every table and figure of the
// paper's evaluation (as indexed in DESIGN.md §5) on the simulated
// substrate. Each experiment returns a Table — the textual equivalent
// of the paper's artifact — and is addressable by ID through the
// registry, which cmd/gfbench and the root bench suite drive.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is one regenerated paper artifact.
type Table struct {
	ID      string // experiment ID, e.g. "E10"
	Title   string // what the paper artifact shows
	Notes   string // interpretation: what shape to look for
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; it must match the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: %s row has %d cells, want %d", t.ID, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Options tunes experiment execution.
type Options struct {
	// Seed drives all randomness; experiments are deterministic for a
	// fixed seed. Zero means 42.
	Seed int64

	// Quick shrinks horizons and workloads ≈5× for use inside
	// benchmarks and smoke tests; the shapes still hold, the
	// confidence intervals are just wider.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Experiment couples an ID to its runner.
type Experiment struct {
	ID       string
	Title    string
	Artifact string // which paper table/figure it regenerates
	Run      func(Options) (*Table, error)
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return idLess(out[i].ID, out[j].ID) })
	return out
}

// idLess orders E1 < E2 < ... < E10 < A1 ... numerically within each
// letter prefix, experiments (E) before ablations (A).
func idLess(a, b string) bool {
	pa, pb := a[0], b[0]
	if pa != pb {
		return pa == 'E' // E before A
	}
	var na, nb int
	_, _ = fmt.Sscanf(a[1:], "%d", &na) // unparsable suffix sorts as 0
	_, _ = fmt.Sscanf(b[1:], "%d", &nb)
	return na < nb
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
