package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fairshare"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/sweep"
	"repro/internal/trade"
	"repro/internal/workload"
)

func init() {
	register(Experiment{ID: "A1", Title: "Trade price policy ablation",
		Artifact: "design choice: exchange rate", Run: a1PricePolicy})
	register(Experiment{ID: "A2", Title: "Scheduling quantum sweep",
		Artifact: "design choice: time-slice length", Run: a2QuantumSweep})
	register(Experiment{ID: "A3", Title: "Profiler noise sensitivity",
		Artifact: "design choice: conservative trade margin", Run: a3NoiseSensitivity})
	register(Experiment{ID: "A4", Title: "Fault tolerance under rolling server failures",
		Artifact: "extension: checkpoint recovery", Run: a4FaultTolerance})
	register(Experiment{ID: "A5", Title: "Central scheduler cost vs cluster size",
		Artifact: "scalability of one scheduling round", Run: a5SchedulerScalability})
}

// a1PricePolicy reruns the two-user trading microbenchmark under each
// exchange-rate policy: all are win-win; the policy only moves the
// split of the gains.
func a1PricePolicy(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	horizon := simclock.Time(12 * simclock.Hour)
	if opt.Quick {
		horizon = simclock.Time(4 * simclock.Hour)
	}
	cluster := gpu.MustNew(
		gpu.Spec{Gen: gpu.K80, Servers: 2, GPUsPerSrv: 4},
		gpu.Spec{Gen: gpu.V100, Servers: 2, GPUsPerSrv: 4},
	)
	build := func() []job.Spec {
		var specs []job.Spec
		specs = append(specs, workload.BatchJobs("mem", zoo.MustGet("vae"), 12, 1, 1e6)...)
		specs = append(specs, workload.BatchJobs("dense", zoo.MustGet("resnext50"), 12, 1, 1e6)...)
		specs, _ = workload.AssignIDs(specs)
		return specs
	}
	t := &Table{
		ID: "A1", Title: "Two-user trading gain by price policy",
		Columns: []string{"price policy", "mem gain", "dense gain"},
		Notes:   "seller-floor favors the buyer, buyer-ceiling the seller; geometric/midpoint split the surplus",
	}
	pols := []trade.PricePolicy{trade.Geometric, trade.Midpoint, trade.SellerFloor, trade.BuyerCeiling}
	points := []sweep.Point{point("a1/blind",
		core.Config{Cluster: cluster, Specs: build(), Seed: opt.Seed},
		func() core.Policy { return core.MustNewFairPolicy(core.FairConfig{}) }, horizon)}
	for _, pol := range pols {
		points = append(points, point("a1/"+pol.String(),
			core.Config{Cluster: cluster, Specs: build(), Seed: opt.Seed},
			func() core.Policy {
				return core.MustNewFairPolicy(core.FairConfig{
					EnableTrading: true,
					Trade:         trade.Config{Policy: pol},
				})
			}, horizon))
	}
	results, err := runPoints(points)
	if err != nil {
		return nil, err
	}
	blind := results[0]
	for i, pol := range pols {
		res := results[i+1]
		t.AddRow(pol.String(),
			f2(res.ThroughputByUser["mem"]/blind.ThroughputByUser["mem"]),
			f2(res.ThroughputByUser["dense"]/blind.ThroughputByUser["dense"]))
	}
	return t, nil
}

// a2QuantumSweep trades scheduling granularity against
// suspend/resume overhead: short quanta track fair shares tightly but
// pay more overhead.
func a2QuantumSweep(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	horizon := simclock.Time(12 * simclock.Hour)
	if opt.Quick {
		horizon = simclock.Time(4 * simclock.Hour)
	}
	users := []job.UserID{"a", "b", "c", "d"}
	build := func() []job.Spec {
		var specs []job.Spec
		for _, u := range users {
			specs = append(specs, workload.BatchJobs(u, zoo.MustGet("lstm"), 6, 1, 1e6)...)
		}
		specs, _ = workload.AssignIDs(specs)
		return specs
	}
	cluster := gpu.MustNew(gpu.Spec{Gen: gpu.K80, Servers: 3, GPUsPerSrv: 4})
	ideal := fairshare.FairFractions(fairshare.EqualTickets(users...), users)
	t := &Table{
		ID: "A2", Title: "4 users × 6 jobs on 12 GPUs, varying the quantum",
		Columns: []string{"quantum", "useful fraction", "max share err"},
		Notes:   "minute-scale quanta keep overhead within a few percent while preserving fairness — the paper's operating point",
	}
	quanta := []simclock.Duration{60, 360, 1800}
	var points []sweep.Point
	for _, q := range quanta {
		points = append(points, point(fmt.Sprintf("a2/q=%.0fs", q),
			core.Config{Cluster: cluster, Specs: build(), Seed: opt.Seed, Quantum: q},
			func() core.Policy { return core.MustNewFairPolicy(core.FairConfig{}) }, horizon))
	}
	results, err := runPoints(points)
	if err != nil {
		return nil, err
	}
	for i, q := range quanta {
		res := results[i]
		occupied, useful := res.TotalOccupied(), res.TotalUseful()
		sh := metrics.ShareFractions(res.TotalUsageByUser())
		t.AddRow(fmt.Sprintf("%.0fs", q), pct(useful/occupied),
			pct(fairshare.MaxShareError(sh, ideal)))
	}
	return t, nil
}

// a3NoiseSensitivity raises profiler noise and checks that the
// conservative trade margin keeps trading win-win.
func a3NoiseSensitivity(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	horizon := simclock.Time(12 * simclock.Hour)
	if opt.Quick {
		horizon = simclock.Time(4 * simclock.Hour)
	}
	cluster := gpu.MustNew(
		gpu.Spec{Gen: gpu.K80, Servers: 2, GPUsPerSrv: 4},
		gpu.Spec{Gen: gpu.V100, Servers: 2, GPUsPerSrv: 4},
	)
	build := func() []job.Spec {
		var specs []job.Spec
		specs = append(specs, workload.BatchJobs("mem", zoo.MustGet("vae"), 12, 1, 1e6)...)
		specs = append(specs, workload.BatchJobs("dense", zoo.MustGet("resnext50"), 12, 1, 1e6)...)
		specs, _ = workload.AssignIDs(specs)
		return specs
	}
	t := &Table{
		ID: "A3", Title: "Trading gains vs profiling noise (relative std-dev per measurement)",
		Columns: []string{"noise", "mem gain", "dense gain", "trades"},
		Notes:   "the 10% minimum speedup ratio absorbs realistic measurement noise; gains persist",
	}
	noises := []float64{0.01, 0.05, 0.15}
	var points []sweep.Point
	for _, noise := range noises {
		points = append(points,
			point(fmt.Sprintf("a3/blind/noise=%.2f", noise),
				core.Config{Cluster: cluster, Specs: build(), Seed: opt.Seed, ProfilerNoise: noise},
				func() core.Policy { return core.MustNewFairPolicy(core.FairConfig{}) }, horizon),
			point(fmt.Sprintf("a3/traded/noise=%.2f", noise),
				core.Config{Cluster: cluster, Specs: build(), Seed: opt.Seed, ProfilerNoise: noise},
				func() core.Policy { return core.MustNewFairPolicy(core.FairConfig{EnableTrading: true}) }, horizon))
	}
	results, err := runPoints(points)
	if err != nil {
		return nil, err
	}
	for i, noise := range noises {
		blind, traded := results[2*i], results[2*i+1]
		t.AddRow(pct(noise),
			f2(traded.ThroughputByUser["mem"]/blind.ThroughputByUser["mem"]),
			f2(traded.ThroughputByUser["dense"]/blind.ThroughputByUser["dense"]),
			fmt.Sprint(traded.TradeCount))
	}
	return t, nil
}

// a4FaultTolerance injects rolling server outages into a contended
// run: checkpoint recovery must finish every job, and the JCT/fairness
// penalty should track lost capacity, not lost work.
func a4FaultTolerance(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	horizon := simclock.Time(2 * simclock.Day)
	jobs := 80
	if opt.Quick {
		horizon = simclock.Time(simclock.Day)
		jobs = 40
	}
	build := func() []job.Spec {
		return workload.MustGenerate(zoo, workload.Config{
			Seed: opt.Seed,
			Users: []workload.UserSpec{
				{User: "a", NumJobs: jobs / 2, ArrivalRatePerHour: 5, MeanK80Hours: 4},
				{User: "b", NumJobs: jobs / 2, ArrivalRatePerHour: 5, MeanK80Hours: 4},
			},
			MaxK80Hours: 12,
		})
	}
	cluster := gpu.MustNew(
		gpu.Spec{Gen: gpu.K80, Servers: 4, GPUsPerSrv: 4},
		gpu.Spec{Gen: gpu.V100, Servers: 4, GPUsPerSrv: 4},
	)
	// Rolling outages: every 6 hours another server dies for 2 hours.
	var failures []core.Failure
	for i := 0; i < 6; i++ {
		failures = append(failures, core.Failure{
			Server:   gpu.ServerID(i % cluster.NumServers()),
			At:       simclock.Time(float64(i+1) * 6 * simclock.Hour),
			Duration: 2 * simclock.Hour,
		})
	}
	t := &Table{
		ID: "A4", Title: "Rolling server outages (2 h each) on 32 GPUs",
		Columns: []string{"failures", "finished", "mean JCT h", "p95 JCT h", "max share err", "migrations"},
		Notes:   "checkpoint restart loses no work: every job completes and fairness holds; the JCT cost tracks the capacity lost to outages",
	}
	labels := []string{"none", fmt.Sprintf("%d×2h", len(failures))}
	var points []sweep.Point
	for i, inject := range []bool{false, true} {
		cfg := core.Config{Cluster: cluster, Specs: build(), Seed: opt.Seed}
		if inject {
			cfg.Failures = failures
		}
		points = append(points, point("a4/failures="+labels[i], cfg,
			func() core.Policy { return core.MustNewFairPolicy(core.FairConfig{EnableTrading: true}) }, horizon))
	}
	results, err := runPoints(points)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		st := metrics.Summarize(res.JCTs())
		t.AddRow(labels[i], fmt.Sprint(len(res.Finished)), f1(st.Mean/3600), f1(st.P95/3600),
			pct(res.MaxShareError()), fmt.Sprint(res.Migrations))
	}
	return t, nil
}

// a5SchedulerScalability measures wall-clock cost per scheduling
// round as the cluster (and proportional job population) grows —
// the quantity that bounds how large a deployment one central
// scheduler instance can drive at minute-scale quanta. It stays
// serial on purpose: concurrent simulations would contend for cores
// and corrupt the timing.
func a5SchedulerScalability(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	rounds := 40
	if opt.Quick {
		rounds = 10
	}
	t := &Table{
		ID: "A5", Title: "Wall-clock cost of one Decide+Place round (trading on)",
		Columns: []string{"GPUs", "servers", "jobs", "ms/round"},
		Notes:   "sub-10ms rounds at thousands of GPUs: a 6-minute quantum leaves 4-5 orders of magnitude of headroom",
	}
	for _, scale := range []int{1, 4, 10} {
		cluster := gpu.MustNew(
			gpu.Spec{Gen: gpu.K80, Servers: 12 * scale, GPUsPerSrv: 4},
			gpu.Spec{Gen: gpu.P40, Servers: 12 * scale, GPUsPerSrv: 4},
			gpu.Spec{Gen: gpu.P100, Servers: 14 * scale, GPUsPerSrv: 4},
			gpu.Spec{Gen: gpu.V100, Servers: 12 * scale, GPUsPerSrv: 4},
		)
		var us []workload.UserSpec
		for i := 0; i < 5; i++ {
			us = append(us, workload.UserSpec{
				User: job.UserID(fmt.Sprintf("u%d", i)), NumJobs: 60 * scale,
				MeanK80Hours: 1e5,
			})
		}
		specs := workload.MustGenerate(zoo, workload.Config{
			Seed: opt.Seed, Users: us, MinK80Hours: 1e5, MaxK80Hours: 1e5,
		})
		sim, err := core.New(core.Config{Cluster: cluster, Specs: specs, Seed: opt.Seed},
			core.MustNewFairPolicy(core.FairConfig{EnableTrading: true}))
		if err != nil {
			return nil, err
		}
		//gflint:ignore wallclock this ablation measures real per-round scheduling cost
		start := time.Now()
		if _, err := sim.Run(simclock.Time(float64(rounds) * 360)); err != nil {
			return nil, err
		}
		//gflint:ignore wallclock this ablation measures real per-round scheduling cost
		perRound := time.Since(start).Seconds() * 1000 / float64(rounds)
		t.AddRow(fmt.Sprint(cluster.NumDevices()), fmt.Sprint(cluster.NumServers()),
			fmt.Sprint(len(specs)), f1(perRound))
	}
	return t, nil
}
