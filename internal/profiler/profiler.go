// Package profiler estimates each job's throughput on each GPU
// generation from noisy observations, the way Gandiva_fair profiles
// marginal utility: DLT jobs run the same minibatch millions of
// times, so a short run on a generation yields a low-cost, slightly
// noisy rate measurement that an EWMA quickly sharpens.
//
// The simulation knows the true rates (job.Perf); the profiler's role
// is to model the *measurement* process so that the trading mechanism
// consumes estimates, not oracle truth — estimation error is part of
// what the paper's design tolerates.
package profiler

import (
	"fmt"
	"math/rand"

	"repro/internal/gpu"
	"repro/internal/job"
)

// Profiler accumulates per-job, per-generation rate estimates. Not
// safe for concurrent use (single simulation goroutine).
type Profiler struct {
	alpha    float64 // EWMA weight of the newest sample, in (0,1]
	noiseStd float64 // relative std-dev of one measurement
	rng      *rand.Rand
	recs     map[job.ID]*record
}

type record struct {
	rate    [gpu.NumGenerations]float64 // per-GPU minibatches/sec estimates
	samples [gpu.NumGenerations]int
}

// New returns a profiler. alpha is the EWMA weight for new samples;
// noiseStd is the relative standard deviation of a single rate
// measurement (the paper's minibatch timings are stable, so a few
// percent is realistic).
func New(alpha, noiseStd float64, seed int64) (*Profiler, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("profiler: alpha %v outside (0,1]", alpha)
	}
	if noiseStd < 0 {
		return nil, fmt.Errorf("profiler: negative noiseStd %v", noiseStd)
	}
	return &Profiler{
		alpha:    alpha,
		noiseStd: noiseStd,
		rng:      rand.New(rand.NewSource(seed)),
		recs:     make(map[job.ID]*record),
	}, nil
}

// MustNew is New but panics on bad parameters; for fixtures.
func MustNew(alpha, noiseStd float64, seed int64) *Profiler {
	p, err := New(alpha, noiseStd, seed)
	if err != nil {
		panic(err)
	}
	return p
}

// Observe records one noisy measurement of j's per-GPU rate on
// generation g (the job just ran a quantum there). Observing a
// generation the job does not fit panics — the placement layer must
// never run it there.
func (p *Profiler) Observe(j *job.Job, g gpu.Generation) {
	if !j.Perf.FitsOn(g) {
		panic(fmt.Sprintf("profiler: observe job %d on unusable generation %v", j.ID, g))
	}
	truth := j.Perf.RatePerGPU[g]
	measured := truth * (1 + p.noiseStd*p.rng.NormFloat64())
	if measured <= 0 {
		measured = truth * 0.01 // measurement noise cannot produce a nonpositive rate
	}
	r := p.recs[j.ID]
	if r == nil {
		r = &record{}
		p.recs[j.ID] = r
	}
	if r.samples[g] == 0 {
		r.rate[g] = measured
	} else {
		r.rate[g] = (1-p.alpha)*r.rate[g] + p.alpha*measured
	}
	r.samples[g]++
}

// ProbeAll takes one measurement on every generation the job fits,
// modeling the paper's initial micro-profiling pass (a few
// minibatches on each GPU type when the job first runs).
func (p *Profiler) ProbeAll(j *job.Job) {
	for _, g := range gpu.Generations() {
		if j.Perf.FitsOn(g) {
			p.Observe(j, g)
		}
	}
}

// Rate returns the estimated per-GPU rate of job id on g and whether
// any observation exists.
func (p *Profiler) Rate(id job.ID, g gpu.Generation) (float64, bool) {
	r := p.recs[id]
	if r == nil || !g.Valid() || r.samples[g] == 0 {
		return 0, false
	}
	return r.rate[g], true
}

// Samples returns the observation count for (id, g).
func (p *Profiler) Samples(id job.ID, g gpu.Generation) int {
	r := p.recs[id]
	if r == nil || !g.Valid() {
		return 0
	}
	return r.samples[g]
}

// Speedup returns the estimated fast/slow per-GPU rate ratio for a
// job, and whether both estimates exist.
func (p *Profiler) Speedup(id job.ID, fast, slow gpu.Generation) (float64, bool) {
	rf, okf := p.Rate(id, fast)
	rs, oks := p.Rate(id, slow)
	if !okf || !oks || rs <= 0 {
		return 0, false
	}
	return rf / rs, true
}

// UserSpeedup aggregates a user's speedup of fast over slow across
// their runnable jobs, weighted by gang width (a user's marginal
// utility for a fast GPU is what their next GPU-hour would be spent
// on). Jobs lacking estimates on either generation are skipped; ok is
// false when no job contributes.
func (p *Profiler) UserSpeedup(jobs []*job.Job, fast, slow gpu.Generation) (speedup float64, ok bool) {
	var num, den float64
	for _, j := range jobs {
		s, have := p.Speedup(j.ID, fast, slow)
		if !have {
			continue
		}
		w := float64(j.Gang)
		num += w * s
		den += w
	}
	if den == 0 {
		return 0, false
	}
	return num / den, true
}

// Known reports whether the job has at least one observation on g.
func (p *Profiler) Known(id job.ID, g gpu.Generation) bool {
	return p.Samples(id, g) > 0
}

// Remove forgets a finished job.
func (p *Profiler) Remove(id job.ID) { delete(p.recs, id) }

// Len returns the number of tracked jobs.
func (p *Profiler) Len() int { return len(p.recs) }
