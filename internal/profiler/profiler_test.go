package profiler

import (
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/workload"
)

func testJob(model string, id job.ID) *job.Job {
	z := workload.DefaultZoo()
	return job.MustNew(job.Spec{
		ID: id, User: "u", Perf: z.MustGet(model), Gang: 2, TotalMB: 1e6,
	})
}

func TestNewValidation(t *testing.T) {
	for _, bad := range []struct{ a, n float64 }{{0, 0.1}, {-1, 0.1}, {1.5, 0.1}, {0.3, -0.1}} {
		if _, err := New(bad.a, bad.n, 1); err == nil {
			t.Errorf("New(%v, %v) accepted", bad.a, bad.n)
		}
	}
	if _, err := New(0.3, 0.05, 1); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func TestObserveNoiseless(t *testing.T) {
	p := MustNew(0.3, 0, 1)
	j := testJob("resnet50", 1)
	p.Observe(j, gpu.V100)
	r, ok := p.Rate(1, gpu.V100)
	if !ok {
		t.Fatal("no estimate after Observe")
	}
	if math.Abs(r-j.Perf.RatePerGPU[gpu.V100]) > 1e-12 {
		t.Fatalf("noiseless estimate %v, want truth %v", r, j.Perf.RatePerGPU[gpu.V100])
	}
	if p.Samples(1, gpu.V100) != 1 {
		t.Fatalf("Samples = %d", p.Samples(1, gpu.V100))
	}
}

func TestUnknownQueries(t *testing.T) {
	p := MustNew(0.3, 0, 1)
	if _, ok := p.Rate(99, gpu.K80); ok {
		t.Error("Rate for unknown job ok=true")
	}
	if p.Known(99, gpu.K80) {
		t.Error("Known for unknown job")
	}
	j := testJob("vae", 1)
	p.Observe(j, gpu.K80)
	if _, ok := p.Rate(1, gpu.V100); ok {
		t.Error("Rate for unobserved generation ok=true")
	}
	if _, ok := p.Rate(1, gpu.Generation(44)); ok {
		t.Error("Rate for invalid generation ok=true")
	}
	if _, ok := p.Speedup(1, gpu.V100, gpu.K80); ok {
		t.Error("Speedup with one side missing ok=true")
	}
}

func TestEWMAConvergesUnderNoise(t *testing.T) {
	p := MustNew(0.2, 0.05, 7)
	j := testJob("transformer", 3)
	for i := 0; i < 300; i++ {
		p.Observe(j, gpu.V100)
	}
	r, _ := p.Rate(3, gpu.V100)
	truth := j.Perf.RatePerGPU[gpu.V100]
	if math.Abs(r-truth)/truth > 0.05 {
		t.Fatalf("EWMA estimate %v vs truth %v: error > 5%%", r, truth)
	}
}

func TestProbeAllAndSpeedup(t *testing.T) {
	p := MustNew(0.3, 0, 1)
	j := testJob("resnext50", 5)
	p.ProbeAll(j)
	for _, g := range gpu.Generations() {
		if !p.Known(5, g) {
			t.Errorf("generation %v not probed", g)
		}
	}
	s, ok := p.Speedup(5, gpu.V100, gpu.K80)
	if !ok {
		t.Fatal("Speedup not available after ProbeAll")
	}
	want := j.Perf.Speedup(gpu.V100, gpu.K80)
	if math.Abs(s-want) > 1e-9 {
		t.Fatalf("Speedup = %v, want %v", s, want)
	}
}

func TestProbeAllSkipsUnusableGenerations(t *testing.T) {
	perf := &job.Perf{Model: "bigmem", ScalingEff: 0.9, MemGBPerGPU: 20, CheckpointMB: 10}
	perf.RatePerGPU = [gpu.NumGenerations]float64{1, 1, 1, 1} // but only P40 has 24 GB
	j := job.MustNew(job.Spec{ID: 6, User: "u", Perf: perf, Gang: 1, TotalMB: 10})
	p := MustNew(0.3, 0, 1)
	p.ProbeAll(j)
	if !p.Known(6, gpu.P40) {
		t.Error("P40 not probed")
	}
	if p.Known(6, gpu.V100) {
		t.Error("V100 probed despite memory misfit")
	}
}

func TestObserveUnusablePanics(t *testing.T) {
	perf := &job.Perf{Model: "k80only", ScalingEff: 1, CheckpointMB: 1}
	perf.RatePerGPU[gpu.K80] = 5
	j := job.MustNew(job.Spec{ID: 7, User: "u", Perf: perf, Gang: 1, TotalMB: 10})
	p := MustNew(0.3, 0, 1)
	defer func() {
		if recover() == nil {
			t.Error("Observe on unusable generation did not panic")
		}
	}()
	p.Observe(j, gpu.V100)
}

func TestUserSpeedupWeighting(t *testing.T) {
	z := workload.DefaultZoo()
	p := MustNew(0.3, 0, 1)
	// vae (low V100 speedup ≈1.22) gang 1; resnext50 (≈4.46) gang 3.
	j1 := job.MustNew(job.Spec{ID: 1, User: "u", Perf: z.MustGet("vae"), Gang: 1, TotalMB: 10})
	j2 := job.MustNew(job.Spec{ID: 2, User: "u", Perf: z.MustGet("resnext50"), Gang: 3, TotalMB: 10})
	p.ProbeAll(j1)
	p.ProbeAll(j2)
	s, ok := p.UserSpeedup([]*job.Job{j1, j2}, gpu.V100, gpu.K80)
	if !ok {
		t.Fatal("UserSpeedup unavailable")
	}
	s1 := j1.Perf.Speedup(gpu.V100, gpu.K80)
	s2 := j2.Perf.Speedup(gpu.V100, gpu.K80)
	want := (1*s1 + 3*s2) / 4
	if math.Abs(s-want) > 1e-9 {
		t.Fatalf("UserSpeedup = %v, want gang-weighted %v", s, want)
	}
	// No observations → not ok.
	j3 := job.MustNew(job.Spec{ID: 3, User: "u", Perf: z.MustGet("lstm"), Gang: 1, TotalMB: 10})
	if _, ok := p.UserSpeedup([]*job.Job{j3}, gpu.V100, gpu.K80); ok {
		t.Error("UserSpeedup ok with no observed jobs")
	}
	if _, ok := p.UserSpeedup(nil, gpu.V100, gpu.K80); ok {
		t.Error("UserSpeedup ok with no jobs")
	}
}

func TestRemove(t *testing.T) {
	p := MustNew(0.3, 0, 1)
	j := testJob("gru", 8)
	p.Observe(j, gpu.K80)
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
	p.Remove(8)
	if p.Len() != 0 || p.Known(8, gpu.K80) {
		t.Error("Remove did not clear the record")
	}
	p.Remove(8) // no-op
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		p := MustNew(0.2, 0.1, 99)
		j := testJob("dcgan", 4)
		for i := 0; i < 50; i++ {
			p.Observe(j, gpu.P100)
		}
		r, _ := p.Rate(4, gpu.P100)
		return r
	}
	if run() != run() {
		t.Error("same seed produced different estimates")
	}
}
