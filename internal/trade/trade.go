// Package trade implements Gandiva_fair's automatic resource trading.
//
// After fair-share entitlements are computed (heterogeneity-blind:
// every user gets a capacity-proportional slice of every GPU
// generation), trading exploits the fact that the marginal utility of
// a fast GPU differs across users: a user training compute-dense
// models gains 4–6× from a V100 over a K80, while a memory-bound
// user gains barely 1.2×.
//
// The mechanism greedily matches the user with the highest profiled
// speedup (the buyer) against the user with the lowest (the seller):
// the buyer receives δ fast GPUs from the seller and pays α·δ slow
// GPUs, with the exchange rate α chosen strictly between the two
// users' speedups. Both users' throughput-valued allocation then
// strictly increases — a Pareto improvement — so trading can only
// ever help, and no user's fairness guarantee is weakened. Trades are
// recomputed from fresh entitlements and fresh profiles every
// scheduling round, so they self-correct as jobs arrive and finish.
package trade

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fairshare"
	"repro/internal/gpu"
	"repro/internal/job"
)

// PricePolicy chooses the exchange rate α within (s_seller, s_buyer).
type PricePolicy int

const (
	// Geometric sets α = √(s_b·s_s): symmetric in ratio space, the
	// repository default.
	Geometric PricePolicy = iota
	// Midpoint sets α = (s_b+s_s)/2.
	Midpoint
	// SellerFloor sets α just above s_s, giving the buyer almost all
	// of the gains from trade.
	SellerFloor
	// BuyerCeiling sets α just below s_b, giving the seller almost
	// all of the gains.
	BuyerCeiling
)

func (p PricePolicy) String() string {
	switch p {
	case Geometric:
		return "geometric"
	case Midpoint:
		return "midpoint"
	case SellerFloor:
		return "seller-floor"
	case BuyerCeiling:
		return "buyer-ceiling"
	default:
		return fmt.Sprintf("PricePolicy(%d)", int(p))
	}
}

// Config tunes the trading loop.
type Config struct {
	Policy PricePolicy

	// MinRatio is the minimum s_buyer/s_seller ratio required to
	// trade; the conservative margin that keeps profiling noise from
	// triggering value-destroying trades. Zero means the default 1.10.
	MinRatio float64

	// MaxPasses bounds the outer fixpoint loop over generation
	// pairs. Zero means the default 8.
	MaxPasses int
}

func (c Config) withDefaults() Config {
	if c.MinRatio == 0 {
		c.MinRatio = 1.10
	}
	if c.MaxPasses == 0 {
		c.MaxPasses = 8
	}
	return c
}

// Validate checks the config.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.MinRatio <= 1 {
		return fmt.Errorf("trade: MinRatio %v must exceed 1", c.MinRatio)
	}
	if c.MaxPasses < 1 {
		return fmt.Errorf("trade: MaxPasses %d must be positive", c.MaxPasses)
	}
	return nil
}

// Values holds each user's profiled per-generation value: the
// gang-weighted speedup of generation g over the oldest generation,
// aggregated over the user's runnable jobs. A zero entry means "no
// estimate"; users without estimates on a pair simply do not trade on
// it (their entitlement is untouched, preserving their guarantee).
type Values map[job.UserID][gpu.NumGenerations]float64

// Trade records one executed exchange.
type Trade struct {
	Buyer, Seller job.UserID
	Fast, Slow    gpu.Generation
	FastGPUs      float64 // δ, moved seller → buyer
	SlowGPUs      float64 // α·δ, moved buyer → seller
	Price         float64 // α
	BuyerSpeedup  float64 // s_b = value_b(fast)/value_b(slow)
	SellerSpeedup float64 // s_s
}

const eps = 1e-9

// Run applies trading to a fair-share allocation and returns the
// adjusted allocation plus the executed trade log. The input
// allocation is not modified. Conservation holds per generation:
// column sums of the output equal those of the input.
//
// demands bounds each user's post-trade total entitlement: a seller
// receives α > 1 slow GPUs per fast GPU given, which only translates
// into throughput if the seller has runnable work for them, so trades
// are capped at the seller's spare demand (demand − current total).
// A nil demands map disables the bound (all users backlogged).
//
//gflint:noretain alloc
func Run(alloc fairshare.Allocation, vals Values, demands map[job.UserID]float64, cfg Config) (fairshare.Allocation, []Trade, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	cfg = cfg.withDefaults()
	out := alloc.Clone()
	var log []Trade

	pairs := genPairs()
	for pass := 0; pass < cfg.MaxPasses; pass++ {
		traded := false
		for _, pr := range pairs {
			for {
				tr, ok := bestTrade(out, vals, demands, pr.fast, pr.slow, cfg)
				if !ok {
					break
				}
				apply(out, tr)
				log = append(log, tr)
				traded = true
			}
		}
		if !traded {
			break
		}
	}
	return out, log, nil
}

type pair struct{ fast, slow gpu.Generation }

// genPairs enumerates (fast, slow) generation pairs, widest
// throughput gap first (newest vs oldest), so the most valuable
// trades execute before entitlements are consumed by lesser ones.
func genPairs() []pair {
	gens := gpu.Generations()
	var out []pair
	for _, f := range gens {
		for _, s := range gens {
			if f > s {
				out = append(out, pair{f, s})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di := int(out[i].fast) - int(out[i].slow)
		dj := int(out[j].fast) - int(out[j].slow)
		if di != dj {
			return di > dj
		}
		if out[i].fast != out[j].fast {
			return out[i].fast > out[j].fast
		}
		return out[i].slow > out[j].slow
	})
	return out
}

// speedupOn returns user u's value ratio fast/slow, or ok=false if
// either side lacks an estimate.
func speedupOn(vals Values, u job.UserID, fast, slow gpu.Generation) (float64, bool) {
	v, ok := vals[u]
	if !ok {
		return 0, false
	}
	if v[fast] <= eps || v[slow] <= eps {
		return 0, false
	}
	return v[fast] / v[slow], true
}

// bestTrade finds the most profitable single trade on one generation
// pair: buyer = max-speedup user holding slow currency, seller =
// min-speedup user holding fast entitlement.
func bestTrade(alloc fairshare.Allocation, vals Values, demands map[job.UserID]float64, fast, slow gpu.Generation, cfg Config) (Trade, bool) {
	type cand struct {
		u job.UserID
		s float64
	}
	var buyers, sellers []cand
	for u, e := range alloc {
		s, ok := speedupOn(vals, u, fast, slow)
		if !ok {
			continue
		}
		if e[slow] > eps {
			buyers = append(buyers, cand{u, s})
		}
		if e[fast] > eps {
			sellers = append(sellers, cand{u, s})
		}
	}
	if len(buyers) == 0 || len(sellers) == 0 {
		return Trade{}, false
	}
	// Deterministic extremes: ties broken by user ID.
	sort.Slice(buyers, func(i, j int) bool {
		if buyers[i].s != buyers[j].s {
			return buyers[i].s > buyers[j].s
		}
		return buyers[i].u < buyers[j].u
	})
	sort.Slice(sellers, func(i, j int) bool {
		if sellers[i].s != sellers[j].s {
			return sellers[i].s < sellers[j].s
		}
		return sellers[i].u < sellers[j].u
	})
	b, s := buyers[0], sellers[0]
	if b.u == s.u {
		// The extreme buyer and seller are the same user; try the
		// next-best on either side.
		if len(buyers) > 1 && (len(sellers) == 1 || buyers[1].s/s.s >= b.s/sellers[1].s) {
			b = buyers[1]
		} else if len(sellers) > 1 {
			s = sellers[1]
		} else {
			return Trade{}, false
		}
		if b.u == s.u {
			return Trade{}, false
		}
	}
	if b.s/s.s < cfg.MinRatio {
		return Trade{}, false
	}
	alpha := price(cfg.Policy, b.s, s.s)
	if alpha <= s.s+eps || alpha >= b.s-eps {
		return Trade{}, false
	}
	// δ bounded by the seller's fast holding and the buyer's slow
	// purse at rate α.
	delta := math.Min(alloc[s.u][fast], alloc[b.u][slow]/alpha)
	// One side's total GPU count grows: the seller's by (α−1)·δ when
	// α > 1, the buyer's by (1−α)·δ when α < 1 (possible only with
	// non-monotone valuations). Cap δ at the growing side's spare
	// demand so the gain is realizable as throughput.
	if demands != nil && alpha != 1 {
		grower := s.u
		rate := alpha - 1
		if alpha < 1 {
			grower, rate = b.u, 1-alpha
		}
		spare := demands[grower] - alloc[grower].Total()
		if spare < 0 {
			spare = 0
		}
		if lim := spare / rate; lim < delta {
			delta = lim
		}
	}
	if delta <= eps {
		return Trade{}, false
	}
	return Trade{
		Buyer: b.u, Seller: s.u, Fast: fast, Slow: slow,
		FastGPUs: delta, SlowGPUs: alpha * delta, Price: alpha,
		BuyerSpeedup: b.s, SellerSpeedup: s.s,
	}, true
}

func price(p PricePolicy, sb, ss float64) float64 {
	const margin = 0.02 // keep strictly inside (ss, sb)
	switch p {
	case Midpoint:
		return (sb + ss) / 2
	case SellerFloor:
		return math.Min(ss*(1+margin), (sb+ss)/2)
	case BuyerCeiling:
		return math.Max(sb*(1-margin), (sb+ss)/2)
	default: // Geometric
		return math.Sqrt(sb * ss)
	}
}

func apply(alloc fairshare.Allocation, t Trade) {
	eb, es := alloc[t.Buyer], alloc[t.Seller]
	eb[t.Fast] += t.FastGPUs
	es[t.Fast] -= t.FastGPUs
	eb[t.Slow] -= t.SlowGPUs
	es[t.Slow] += t.SlowGPUs
	// Clamp the tiny negatives floating point can leave behind.
	for _, e := range []fairshare.Entitlement{eb, es} {
		for g, v := range e {
			if v < 0 && v > -1e-6 {
				e[g] = 0
			}
		}
	}
}

// ValueOf computes a user's throughput-valued allocation Σ_g E(g)·v(g)
// under their own value vector — the quantity trading must strictly
// increase for both parties.
func ValueOf(e fairshare.Entitlement, v [gpu.NumGenerations]float64) float64 {
	var sum float64
	for _, g := range gpu.Generations() {
		sum += e[g] * v[g]
	}
	return sum
}

// GainSummary aggregates a trade log into per-user value deltas for
// reporting: positive for every participant by construction.
func GainSummary(log []Trade, vals Values) map[job.UserID]float64 {
	gains := make(map[job.UserID]float64)
	for _, t := range log {
		vb, vs := vals[t.Buyer], vals[t.Seller]
		gains[t.Buyer] += t.FastGPUs*vb[t.Fast] - t.SlowGPUs*vb[t.Slow]
		gains[t.Seller] += t.SlowGPUs*vs[t.Slow] - t.FastGPUs*vs[t.Fast]
	}
	return gains
}
