package trade

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/fairshare"
	"repro/internal/gpu"
	"repro/internal/job"
)

// TestTradingIsParetoImproving is the property behind the whole
// mechanism: across random valuations, allocations, demand bounds and
// every price policy, each executed trade must strictly increase both
// participants' throughput-valued allocation, conserve GPUs per
// generation, and leave no user worse off overall.
func TestTradingIsParetoImproving(t *testing.T) {
	rng := rand.New(rand.NewSource(2020))
	policies := []PricePolicy{Geometric, Midpoint, SellerFloor, BuyerCeiling}
	for draw := 0; draw < 100; draw++ {
		policy := policies[draw%len(policies)]
		nUsers := 2 + rng.Intn(5)

		vals := make(Values, nUsers)
		alloc := make(fairshare.Allocation, nUsers)
		demands := make(map[job.UserID]float64, nUsers)
		var users []job.UserID
		for i := 0; i < nUsers; i++ {
			u := job.UserID(fmt.Sprintf("u%d", i))
			users = append(users, u)
			var v [gpu.NumGenerations]float64
			v[gpu.K80] = 1
			for _, g := range []gpu.Generation{gpu.P40, gpu.P100, gpu.V100} {
				if rng.Intn(5) == 0 {
					continue // missing estimate: user sits out this pair
				}
				v[g] = 1 + rng.Float64()*5
			}
			vals[u] = v
			e := make(fairshare.Entitlement)
			for _, g := range gpu.Generations() {
				if rng.Intn(4) == 0 {
					continue // no entitlement on this generation
				}
				e[g] = rng.Float64() * 8
			}
			alloc[u] = e
			// Demand between current total (no headroom) and 2× it.
			demands[u] = e.Total() * (1 + rng.Float64())
		}
		dm := demands
		if draw%3 == 0 {
			dm = nil // all users backlogged: bound disabled
		}

		before := alloc.Clone()
		beforeByGen := alloc.TotalByGen()
		out, log, err := Run(alloc, vals, dm, Config{Policy: policy})
		if err != nil {
			t.Fatalf("draw %d (%s): %v", draw, policy, err)
		}

		// The input allocation is untouched.
		for u, e := range before {
			for g, v := range e {
				if alloc[u][g] != v {
					t.Fatalf("draw %d: input allocation mutated for %s/%v", draw, u, g)
				}
			}
		}

		// Every executed trade is individually Pareto-improving: the
		// price sits strictly between the two speedups, so the buyer
		// values what it got above what it paid and vice versa.
		for i, tr := range log {
			if tr.FastGPUs <= 0 || tr.SlowGPUs <= 0 {
				t.Fatalf("draw %d trade %d: non-positive volume %+v", draw, i, tr)
			}
			if !(tr.SellerSpeedup < tr.Price && tr.Price < tr.BuyerSpeedup) {
				t.Fatalf("draw %d trade %d (%s): price %v outside (%v, %v)",
					draw, i, policy, tr.Price, tr.SellerSpeedup, tr.BuyerSpeedup)
			}
			vb, vs := vals[tr.Buyer], vals[tr.Seller]
			buyerGain := tr.FastGPUs*vb[tr.Fast] - tr.SlowGPUs*vb[tr.Slow]
			sellerGain := tr.SlowGPUs*vs[tr.Slow] - tr.FastGPUs*vs[tr.Fast]
			if buyerGain <= 0 {
				t.Fatalf("draw %d trade %d: buyer %s loses %v", draw, i, tr.Buyer, buyerGain)
			}
			if sellerGain <= 0 {
				t.Fatalf("draw %d trade %d: seller %s loses %v", draw, i, tr.Seller, sellerGain)
			}
		}

		// Conservation: per-generation totals unchanged.
		afterByGen := out.TotalByGen()
		for _, g := range gpu.Generations() {
			if math.Abs(afterByGen[g]-beforeByGen[g]) > 1e-6 {
				t.Fatalf("draw %d: generation %v total %v → %v (not conserved)",
					draw, g, beforeByGen[g], afterByGen[g])
			}
		}

		// No user ends up valuing their allocation less than before;
		// trade participants end up strictly better.
		participated := make(map[job.UserID]bool)
		for _, tr := range log {
			participated[tr.Buyer] = true
			participated[tr.Seller] = true
		}
		for _, u := range users {
			pre := ValueOf(before[u], vals[u])
			post := ValueOf(out[u], vals[u])
			if post < pre-1e-6 {
				t.Fatalf("draw %d (%s): user %s value dropped %v → %v", draw, policy, u, pre, post)
			}
			if participated[u] && post <= pre+1e-9 {
				t.Fatalf("draw %d (%s): participant %s did not strictly gain (%v → %v)",
					draw, policy, u, pre, post)
			}
		}

		// Demand bound respected when enabled.
		if dm != nil {
			for _, u := range users {
				if tot := out[u].Total(); tot > dm[u]+1e-6 {
					t.Fatalf("draw %d: user %s total %v exceeds demand %v", draw, u, tot, dm[u])
				}
			}
		}
	}
}
