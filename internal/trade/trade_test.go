package trade

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fairshare"
	"repro/internal/gpu"
	"repro/internal/job"
)

// twoUserFixture: blind fair share on 40 K80 + 8 V100, equal split.
// fastUser values V100 at 4× K80; slowUser at 1.2×.
func twoUserFixture() (fairshare.Allocation, Values) {
	alloc := fairshare.Allocation{
		"fastUser": {gpu.K80: 20, gpu.V100: 4},
		"slowUser": {gpu.K80: 20, gpu.V100: 4},
	}
	vals := Values{
		"fastUser": valueVec(1, 0, 0, 4.0),
		"slowUser": valueVec(1, 0, 0, 1.2),
	}
	return alloc, vals
}

func valueVec(k80, p40, p100, v100 float64) [gpu.NumGenerations]float64 {
	var v [gpu.NumGenerations]float64
	v[gpu.K80] = k80
	v[gpu.P40] = p40
	v[gpu.P100] = p100
	v[gpu.V100] = v100
	return v
}

func genTotals(a fairshare.Allocation) map[gpu.Generation]float64 {
	return a.TotalByGen()
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	if err := (Config{MinRatio: 0.9}).Validate(); err == nil {
		t.Error("MinRatio < 1 accepted")
	}
	if err := (Config{MaxPasses: -1}).Validate(); err == nil {
		t.Error("negative MaxPasses accepted")
	}
}

func TestTwoUserWinWin(t *testing.T) {
	alloc, vals := twoUserFixture()
	out, log, err := Run(alloc, vals, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(log) == 0 {
		t.Fatal("no trades executed on a 4× vs 1.2× gap")
	}
	// Direction: fastUser gains V100, loses K80; slowUser the reverse.
	if out["fastUser"][gpu.V100] <= alloc["fastUser"][gpu.V100] {
		t.Errorf("buyer V100 %v, want > %v", out["fastUser"][gpu.V100], alloc["fastUser"][gpu.V100])
	}
	if out["slowUser"][gpu.K80] <= alloc["slowUser"][gpu.K80] {
		t.Errorf("seller K80 %v, want > %v", out["slowUser"][gpu.K80], alloc["slowUser"][gpu.K80])
	}
	// Pareto: both users' self-valued allocation strictly increases.
	for u, v := range vals {
		before := ValueOf(alloc[u], v)
		after := ValueOf(out[u], v)
		if after <= before+1e-9 {
			t.Errorf("user %s value %v → %v, want strict gain", u, before, after)
		}
	}
	// Conservation per generation.
	before, after := genTotals(alloc), genTotals(out)
	for g, b := range before {
		if math.Abs(after[g]-b) > 1e-6 {
			t.Errorf("generation %v total %v → %v (not conserved)", g, b, after[g])
		}
	}
	// Seller fully sold its V100 entitlement (buyer had ample K80).
	if out["slowUser"][gpu.V100] > 1e-6 {
		t.Errorf("seller still holds %v V100", out["slowUser"][gpu.V100])
	}
	// Input must not be mutated.
	if alloc["fastUser"][gpu.V100] != 4 {
		t.Error("Run mutated its input allocation")
	}
}

func TestNoTradeWithinMargin(t *testing.T) {
	alloc := fairshare.Allocation{
		"a": {gpu.K80: 10, gpu.V100: 2},
		"b": {gpu.K80: 10, gpu.V100: 2},
	}
	vals := Values{
		"a": valueVec(1, 0, 0, 2.0),
		"b": valueVec(1, 0, 0, 1.95), // ratio 1.026 < default MinRatio 1.10
	}
	out, log, err := Run(alloc, vals, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 0 {
		t.Fatalf("traded %d times inside the noise margin", len(log))
	}
	for u := range alloc {
		for g, v := range alloc[u] {
			if out[u][g] != v {
				t.Errorf("allocation changed without trades: %s %v", u, g)
			}
		}
	}
}

func TestUnprofiledUsersUntouched(t *testing.T) {
	alloc := fairshare.Allocation{
		"a": {gpu.K80: 10, gpu.V100: 2},
		"b": {gpu.K80: 10, gpu.V100: 2},
		"c": {gpu.K80: 10, gpu.V100: 2}, // no profile
	}
	vals := Values{
		"a": valueVec(1, 0, 0, 4.0),
		"b": valueVec(1, 0, 0, 1.2),
	}
	out, log, err := Run(alloc, vals, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(log) == 0 {
		t.Fatal("a and b should trade")
	}
	for g, v := range alloc["c"] {
		if out["c"][g] != v {
			t.Errorf("unprofiled user c changed on %v: %v → %v", g, v, out["c"][g])
		}
	}
}

func TestSingleUserNoTrade(t *testing.T) {
	alloc := fairshare.Allocation{"solo": {gpu.K80: 10, gpu.V100: 5}}
	vals := Values{"solo": valueVec(1, 0, 0, 5)}
	out, log, err := Run(alloc, vals, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 0 {
		t.Fatalf("a lone user traded with itself: %+v", log)
	}
	if out["solo"][gpu.V100] != 5 {
		t.Error("solo allocation changed")
	}
}

func TestPricePolicies(t *testing.T) {
	for _, pol := range []PricePolicy{Geometric, Midpoint, SellerFloor, BuyerCeiling} {
		alloc, vals := twoUserFixture()
		out, log, err := Run(alloc, vals, nil, Config{Policy: pol})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if len(log) == 0 {
			t.Fatalf("%v: no trades", pol)
		}
		for _, tr := range log {
			if tr.Price <= tr.SellerSpeedup || tr.Price >= tr.BuyerSpeedup {
				t.Errorf("%v: price %v outside (%v, %v)", pol, tr.Price, tr.SellerSpeedup, tr.BuyerSpeedup)
			}
		}
		// Pareto under every policy.
		for u, v := range vals {
			if ValueOf(out[u], v) <= ValueOf(alloc[u], v)+1e-9 {
				t.Errorf("%v: user %s did not gain", pol, u)
			}
		}
		if pol.String() == "" {
			t.Errorf("empty String for %d", int(pol))
		}
	}
	if PricePolicy(99).String() == "" {
		t.Error("unknown policy String empty")
	}
}

func TestPriceOrdering(t *testing.T) {
	// SellerFloor should hand the buyer a better (lower) price than
	// BuyerCeiling.
	sb, ss := 4.0, 1.2
	pf := price(SellerFloor, sb, ss)
	pc := price(BuyerCeiling, sb, ss)
	pg := price(Geometric, sb, ss)
	pm := price(Midpoint, sb, ss)
	if !(pf < pg && pg < pm && pm < pc) {
		t.Errorf("price ordering broken: floor %v geo %v mid %v ceil %v", pf, pg, pm, pc)
	}
	for _, p := range []float64{pf, pc, pg, pm} {
		if p <= ss || p >= sb {
			t.Errorf("price %v outside (%v,%v)", p, ss, sb)
		}
	}
}

func TestGainSummaryPositive(t *testing.T) {
	alloc, vals := twoUserFixture()
	_, log, err := Run(alloc, vals, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	gains := GainSummary(log, vals)
	for u, g := range gains {
		if g <= 0 {
			t.Errorf("user %s gain %v, want positive", u, g)
		}
	}
	if len(gains) != 2 {
		t.Errorf("gains for %d users, want 2", len(gains))
	}
}

func TestMultiGenerationCascade(t *testing.T) {
	// Three users, three generations with data; trades should flow
	// V100→compute user, K80→memory-bound user.
	alloc := fairshare.Allocation{
		"mem":   {gpu.K80: 16, gpu.P100: 8, gpu.V100: 4},
		"mid":   {gpu.K80: 16, gpu.P100: 8, gpu.V100: 4},
		"dense": {gpu.K80: 16, gpu.P100: 8, gpu.V100: 4},
	}
	vals := Values{
		"mem":   valueVec(1, 0, 1.1, 1.2),
		"mid":   valueVec(1, 0, 1.8, 2.5),
		"dense": valueVec(1, 0, 2.8, 5.0),
	}
	out, log, err := Run(alloc, vals, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(log) == 0 {
		t.Fatal("no trades")
	}
	for u, v := range vals {
		if ValueOf(out[u], v) < ValueOf(alloc[u], v)-1e-9 {
			t.Errorf("user %s lost value", u)
		}
	}
	if out["dense"][gpu.V100] <= alloc["dense"][gpu.V100] {
		t.Error("dense user did not gain V100s")
	}
	if out["mem"][gpu.K80] <= alloc["mem"][gpu.K80] {
		t.Error("memory-bound user did not gain K80s")
	}
	before, after := genTotals(alloc), genTotals(out)
	for g, b := range before {
		if math.Abs(after[g]-b) > 1e-6 {
			t.Errorf("generation %v not conserved: %v → %v", g, b, after[g])
		}
	}
}

func TestDemandBoundStopsPhantomGains(t *testing.T) {
	// The seller's demand equals its current total: it cannot use a
	// single extra slow GPU, so no trade may execute (any trade would
	// inflate its entitlement beyond usable demand and its realized
	// throughput would drop).
	alloc, vals := twoUserFixture() // each holds 24 total
	demands := map[job.UserID]float64{"fastUser": 24, "slowUser": 24}
	out, log, err := Run(alloc, vals, demands, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 0 {
		t.Fatalf("traded despite zero seller slack: %+v", log)
	}
	for u := range alloc {
		if out[u].Total() != alloc[u].Total() {
			t.Errorf("user %s total changed", u)
		}
	}
	// With slack, trades run but the seller's total never exceeds its
	// demand.
	demands["slowUser"] = 26 // 2 GPUs of spare demand
	out, log, err = Run(alloc, vals, demands, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(log) == 0 {
		t.Fatal("no trades despite seller slack")
	}
	if tot := out["slowUser"].Total(); tot > 26+1e-6 {
		t.Errorf("seller total %v exceeds demand 26", tot)
	}
}

// Property: trading reaches a fixpoint — rerunning on the output with
// the same values executes no further trades (no residual arbitrage
// above the margin that the algorithm could still exploit).
func TestPropertyFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	users := []job.UserID{"a", "b", "c", "d"}
	for trial := 0; trial < 100; trial++ {
		alloc := fairshare.Allocation{}
		vals := Values{}
		for _, u := range users {
			alloc[u] = fairshare.Entitlement{
				gpu.K80:  float64(rng.Intn(15)),
				gpu.V100: float64(rng.Intn(8)),
			}
			var v [gpu.NumGenerations]float64
			v[gpu.K80] = 1
			v[gpu.V100] = 1 + rng.Float64()*4
			vals[u] = v
		}
		out, _, err := Run(alloc, vals, nil, Config{})
		if err != nil {
			t.Fatal(err)
		}
		_, again, err := Run(out, vals, nil, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != 0 {
			t.Fatalf("trial %d: %d residual trades after fixpoint: %+v", trial, len(again), again)
		}
	}
}

func TestDeterminism(t *testing.T) {
	alloc, vals := twoUserFixture()
	_, log1, _ := Run(alloc, vals, nil, Config{})
	_, log2, _ := Run(alloc, vals, nil, Config{})
	if len(log1) != len(log2) {
		t.Fatalf("trade logs differ in length: %d vs %d", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("trade %d differs: %+v vs %+v", i, log1[i], log2[i])
		}
	}
}

// Property: over random allocations and values, trading conserves
// per-generation totals, never drives entitlements negative, and
// never reduces any user's self-valued allocation.
func TestPropertyParetoAndConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	users := []job.UserID{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 200; trial++ {
		alloc := fairshare.Allocation{}
		vals := Values{}
		n := 2 + rng.Intn(4)
		for i := 0; i < n; i++ {
			u := users[i]
			e := fairshare.Entitlement{}
			for _, g := range gpu.Generations() {
				if rng.Intn(3) > 0 {
					e[g] = float64(rng.Intn(20))
				}
			}
			alloc[u] = e
			if rng.Intn(4) > 0 { // some users unprofiled
				v := [gpu.NumGenerations]float64{}
				v[gpu.K80] = 1
				v[gpu.P40] = 1 + rng.Float64()*2
				v[gpu.P100] = 1 + rng.Float64()*3
				v[gpu.V100] = 1 + rng.Float64()*5
				vals[u] = v
			}
		}
		out, log, err := Run(alloc, vals, nil, Config{})
		if err != nil {
			t.Fatal(err)
		}
		before, after := genTotals(alloc), genTotals(out)
		for _, g := range gpu.Generations() {
			if math.Abs(after[g]-before[g]) > 1e-6 {
				t.Fatalf("trial %d: gen %v not conserved: %v → %v (%d trades)",
					trial, g, before[g], after[g], len(log))
			}
		}
		for u, e := range out {
			for g, v := range e {
				if v < -1e-9 {
					t.Fatalf("trial %d: user %s negative %v on %v", trial, u, v, g)
				}
			}
			if vv, ok := vals[u]; ok {
				if ValueOf(e, vv) < ValueOf(alloc[u], vv)-1e-6 {
					t.Fatalf("trial %d: user %s lost value", trial, u)
				}
			} else {
				for g, v := range alloc[u] {
					if e[g] != v {
						t.Fatalf("trial %d: unprofiled user %s was traded", trial, u)
					}
				}
			}
		}
	}
}
