package trade

import (
	"math"
	"testing"

	"repro/internal/fairshare"
	"repro/internal/gpu"
)

// TestValueOfRepeatable guards the fixed-order fix in ValueOf: the
// entitlement values span magnitudes, so summing Σ_g E(g)·v(g) in map
// order would round differently between calls — and trades trigger on
// strict value comparisons, so a single ULP can flip a decision.
func TestValueOfRepeatable(t *testing.T) {
	e := fairshare.Entitlement{}
	var v [gpu.NumGenerations]float64
	for i, g := range gpu.Generations() {
		e[g] = math.Exp2(float64(20*i-20)) * (1 + float64(i)/math.Pi)
		v[g] = math.Pi / float64(i+1)
	}
	want := ValueOf(e, v)
	for trial := 1; trial < 150; trial++ {
		if got := ValueOf(e, v); got != want {
			t.Fatalf("trial %d: ValueOf %v, first call %v", trial, got, want)
		}
	}
}
