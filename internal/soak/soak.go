// Package soak runs long randomized fault schedules through the full
// Gandiva_fair engine under the strict invariant auditor and verifies
// the robustness contract end to end: no job is ever lost, nothing is
// placed on a down or quarantined server, fairness stays inside a
// band despite injected failures, failure-compensation books balance,
// and every run is byte-identically reproducible from its seed.
//
// Each soak iteration derives an independent seed, builds a contended
// heterogeneous workload plus a full probabilistic fault
// configuration (transient crashes, a flaky server, GPU degradation,
// job crash-restart, migration failures, quarantine), runs the
// simulation TWICE, and compares canonical digests of the two runs —
// the determinism check is not a separate mode but part of every
// iteration.
package soak

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// Config parameterizes a soak run.
type Config struct {
	// Seed is the base seed; iteration i runs with
	// Seed + i*seedStride so iterations are independent streams.
	Seed int64

	// Iters is the number of fault schedules to soak (default 5).
	Iters int

	// Hours is the simulated horizon per iteration (default 24).
	Hours float64

	// ShareBand is the maximum tolerated MaxShareError per iteration
	// (default 0.08). The fairness reference already accounts for
	// capacity lost to failures, so injected faults must not push
	// observed shares outside this band when compensation works.
	ShareBand float64

	// Servers and GPUsPerSrv size the homogeneous K80 test cluster
	// (defaults 3 and 4). Small on purpose: a 3-server cluster makes
	// every outage and quarantine a large capacity event, which is
	// the hard case for the fairness band.
	Servers    int
	GPUsPerSrv int

	// Logf, when non-nil, receives one progress line per iteration.
	Logf func(format string, args ...any)

	// Flight, when non-nil, receives one snapshot per simulated round
	// (through a private Observer) and is dumped with reason
	// "soak-failure" the moment an iteration breaches the contract, so
	// the window on disk shows the rounds leading into the breach.
	Flight *flight.Recorder
}

const seedStride = 1000003 // prime stride keeps iteration seeds uncorrelated

func (c Config) withDefaults() Config {
	if c.Iters <= 0 {
		c.Iters = 5
	}
	if c.Hours <= 0 {
		c.Hours = 24
	}
	if c.ShareBand <= 0 {
		c.ShareBand = 0.08
	}
	if c.Servers <= 0 {
		c.Servers = 3
	}
	if c.GPUsPerSrv <= 0 {
		c.GPUsPerSrv = 4
	}
	return c
}

// IterResult records one soak iteration's outcome.
type IterResult struct {
	Iter int
	Seed int64

	Digest     string // canonical run digest (hex)
	ShareError float64
	Rounds     int

	Crashes           int
	MigrationFailures int
	Quarantines       int
	RepaidGPUSeconds  float64

	// Violations lists every contract breach this iteration; empty
	// means the iteration passed.
	Violations []string
}

// Report aggregates a soak run.
type Report struct {
	Iters []IterResult
}

// Violations counts contract breaches across all iterations.
func (r *Report) Violations() int {
	n := 0
	for _, it := range r.Iters {
		n += len(it.Violations)
	}
	return n
}

// Clean reports whether every iteration passed every check.
func (r *Report) Clean() bool { return r.Violations() == 0 }

// RunSoak executes the soak and returns the per-iteration report.
// Only setup errors (bad config) are returned as error; contract
// breaches are recorded per iteration so one bad schedule does not
// hide the rest.
func RunSoak(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{}
	for i := 0; i < cfg.Iters; i++ {
		it, err := cfg.iteration(i)
		if err != nil {
			return nil, err
		}
		rep.Iters = append(rep.Iters, it)
		if cfg.Logf != nil {
			status := "ok"
			if len(it.Violations) > 0 {
				status = "FAIL " + strings.Join(it.Violations, "; ")
			}
			cfg.Logf("iter %d seed=%d rounds=%d crashes=%d migfail=%d quarantines=%d repaid=%.0f shareErr=%.3f digest=%s %s",
				it.Iter, it.Seed, it.Rounds, it.Crashes, it.MigrationFailures,
				it.Quarantines, it.RepaidGPUSeconds, it.ShareError, it.Digest[:12], status)
		}
	}
	return rep, nil
}

func (c Config) iteration(i int) (IterResult, error) {
	seed := c.Seed + int64(i)*seedStride
	it := IterResult{Iter: i, Seed: seed}

	res, err := c.runOnce(seed)
	if err != nil {
		return it, fmt.Errorf("soak iter %d (seed %d): %w", i, seed, err)
	}
	it.Digest = core.CanonicalDigest(res)
	it.ShareError = res.MaxShareError()
	it.Rounds = res.Rounds
	it.Crashes = res.Crashes
	it.MigrationFailures = res.MigrationFailures
	it.Quarantines = res.Quarantines
	it.RepaidGPUSeconds = res.CompRepaidGPUSeconds

	// Contract 1: the strict auditor saw nothing — no placement on a
	// down or quarantined server, no capacity overshoot, balanced
	// compensation books, monotone deficit drain.
	if res.Audit == nil || !res.Audit.Clean() {
		it.Violations = append(it.Violations, "audit: "+res.Audit.Summary())
	}

	// Contract 2: no job lost. Every submitted job is either finished
	// or still alive at the horizon — crashes, outages and failed
	// migrations may delay jobs but never drop one.
	total := len(c.specs(seed))
	if got := len(res.Finished) + res.Unfinished; got != total {
		it.Violations = append(it.Violations,
			fmt.Sprintf("lost jobs: %d finished + %d unfinished != %d submitted",
				len(res.Finished), res.Unfinished, total))
	}

	// Contract 3: fairness stays in band despite the fault barrage.
	if it.ShareError > c.ShareBand {
		it.Violations = append(it.Violations,
			fmt.Sprintf("share error %.3f exceeds band %.3f", it.ShareError, c.ShareBand))
	}

	// Contract 4: compensation books are sane at the horizon —
	// repayment never negative and no deficit below zero.
	if res.CompRepaidGPUSeconds < 0 {
		it.Violations = append(it.Violations,
			fmt.Sprintf("negative total repayment %.1f", res.CompRepaidGPUSeconds))
	}
	debtors := make([]job.UserID, 0, len(res.CompDeficitByUser))
	for u := range res.CompDeficitByUser {
		debtors = append(debtors, u)
	}
	sort.Slice(debtors, func(i, j int) bool { return debtors[i] < debtors[j] })
	for _, u := range debtors {
		if d := res.CompDeficitByUser[u]; d < 0 {
			it.Violations = append(it.Violations,
				fmt.Sprintf("user %s negative deficit %.1f", u, d))
		}
	}

	// Contract 5: byte-identical rerun. Same seed, fresh Sim — the
	// canonical digest must match exactly.
	res2, err := c.runOnce(seed)
	if err != nil {
		return it, fmt.Errorf("soak iter %d rerun (seed %d): %w", i, seed, err)
	}
	if d2 := core.CanonicalDigest(res2); d2 != it.Digest {
		it.Violations = append(it.Violations,
			fmt.Sprintf("nondeterministic: digest %s != rerun %s", it.Digest[:12], d2[:12]))
	}

	if len(it.Violations) > 0 && c.Flight != nil {
		detail := fmt.Sprintf("iter %d seed %d: %s", i, seed, strings.Join(it.Violations, "; "))
		if err := c.Flight.Dump("soak-failure", detail); err != nil && c.Logf != nil {
			c.Logf("flight dump failed: %v", err)
		}
	}
	return it, nil
}

// specs builds the iteration workload: three users with contending
// long-running gang-1 jobs (two model families with different
// heterogeneous speedups) plus one user of short finite jobs that
// retire during the run, exercising departure-time deficit
// forgiveness. Specs are rebuilt per call — the engine mutates jobs
// in place, so the two determinism runs must not share them.
func (c Config) specs(seed int64) []job.Spec {
	zoo := workload.DefaultZoo()
	const long = 1e6 // effectively unbounded standalone K80-hours
	var specs []job.Spec
	specs = append(specs, workload.BatchJobs("alice", zoo.MustGet("lstm"), 6, 1, long)...)
	specs = append(specs, workload.BatchJobs("bob", zoo.MustGet("gru"), 6, 1, long)...)
	specs = append(specs, workload.BatchJobs("carol", zoo.MustGet("vae"), 4, 1, float64(2+seed%3))...)
	specs, _ = workload.AssignIDs(specs)
	return specs
}

// runOnce executes one full simulation for the derived seed under
// AuditStrict and the complete probabilistic fault stack.
func (c Config) runOnce(seed int64) (*core.Result, error) {
	cl, err := gpu.New(gpu.Spec{Gen: gpu.K80, Servers: c.Servers, GPUsPerSrv: c.GPUsPerSrv})
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Cluster: cl,
		Specs:   c.specs(seed),
		Seed:    seed,
		Audit:   core.AuditStrict,
		Flight:  c.Flight,
		// The snapshot feed needs an Observer; one per run keeps the
		// recorder wired without leaking metrics anywhere. Observation
		// is read-only, so the determinism contract (contract 5) still
		// holds with it attached.
		Obs: obsFor(c.Flight),
		Faults: &faults.Config{
			ServerMTBFHours:        10,
			ServerOutageMeanHours:  0.5,
			FlakyServers:           1,
			FlakyMTBFHours:         2,
			FlakyOutageMinutes:     10,
			DegradeMTBFHours:       12,
			DegradeFactor:          0.6,
			DegradeMeanHours:       1,
			JobCrashMTBFHours:      8,
			MigrationFailProb:      0.3,
			QuarantineFailures:     3,
			QuarantineWindowHours:  2,
			QuarantineCooloffHours: 2,
		},
	}
	sim, err := core.New(cfg, core.MustNewFairPolicy(core.FairConfig{}))
	if err != nil {
		return nil, err
	}
	return sim.Run(simclock.Time(c.Hours * simclock.Hour))
}

// obsFor returns a fresh Observer when a flight recorder needs its
// snapshot feed, nil otherwise (the common, observer-free soak).
func obsFor(rec *flight.Recorder) *obs.Observer {
	if rec == nil {
		return nil
	}
	return obs.New()
}
