package soak

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs/flight"
)

// TestSoakShortClean runs a short seeded soak end to end: every
// iteration must satisfy the full robustness contract (audit clean,
// no job lost, fairness in band, balanced books, deterministic
// rerun).
func TestSoakShortClean(t *testing.T) {
	rep, err := RunSoak(Config{Seed: 42, Iters: 2, Hours: 6, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		for _, it := range rep.Iters {
			for _, v := range it.Violations {
				t.Errorf("iter %d (seed %d): %s", it.Iter, it.Seed, v)
			}
		}
	}
	if len(rep.Iters) != 2 {
		t.Fatalf("got %d iterations, want 2", len(rep.Iters))
	}
	// A soak that injects nothing proves nothing: the fault stack
	// must actually fire.
	faults := 0
	for _, it := range rep.Iters {
		faults += it.Crashes + it.MigrationFailures + it.Quarantines
	}
	if faults == 0 {
		t.Error("soak injected no faults — schedule generation broken")
	}
}

// TestSoakDigestsDifferAcrossSeeds guards the digest against being a
// constant: distinct seeds must produce distinct outcomes.
func TestSoakDigestsDifferAcrossSeeds(t *testing.T) {
	rep, err := RunSoak(Config{Seed: 7, Iters: 2, Hours: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iters[0].Digest == rep.Iters[1].Digest {
		t.Fatalf("iterations with different seeds produced identical digest %s",
			rep.Iters[0].Digest)
	}
}

// TestSoakDetectsShareBandBreach checks the harness actually fails
// when the contract is violated — an absurdly tight band must trip.
func TestSoakDetectsShareBandBreach(t *testing.T) {
	rep, err := RunSoak(Config{Seed: 42, Iters: 1, Hours: 4, ShareBand: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("1e-9 share band not tripped — violation detection broken")
	}
	found := false
	for _, v := range rep.Iters[0].Violations {
		if strings.Contains(v, "share error") {
			found = true
		}
	}
	if !found {
		t.Errorf("band breach not reported as share-error violation: %v",
			rep.Iters[0].Violations)
	}
}

// TestSoakDumpsFlightOnBreach pins the soak→flight trigger: a
// contract breach with a recorder armed leaves a parseable dump with
// reason "soak-failure" and the rounds leading into the breach.
func TestSoakDumpsFlightOnBreach(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	rec := flight.New(8, path)
	rep, err := RunSoak(Config{Seed: 42, Iters: 1, Hours: 4, ShareBand: 1e-9, Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("1e-9 share band not tripped")
	}
	d, err := flight.ReadDump(path)
	if err != nil {
		t.Fatalf("breach left no parseable dump: %v", err)
	}
	if d.Reason != "soak-failure" {
		t.Errorf("dump reason = %q, want soak-failure", d.Reason)
	}
	if !strings.Contains(d.Detail, "share error") {
		t.Errorf("dump detail %q does not name the violation", d.Detail)
	}
	if len(d.Rounds) == 0 {
		t.Error("dump carries no rounds")
	}
}
