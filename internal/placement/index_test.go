package placement

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/gpu"
	"repro/internal/job"
)

// TestPlaceIndexedDifferential drives Place and PlaceIndexed through
// randomized multi-round sequences — churning prev assignments, down
// servers, pinned jobs, and migration settings — and requires
// byte-identical Results every round. This is the index's
// equivalence contract.
func TestPlaceIndexedDifferential(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))

		specs := []gpu.Spec{
			{Gen: gpu.K80, Servers: 2 + rng.Intn(6), GPUsPerSrv: 2 + rng.Intn(4)},
			{Gen: gpu.V100, Servers: 1 + rng.Intn(5), GPUsPerSrv: 2 + rng.Intn(4)},
		}
		if rng.Intn(2) == 0 {
			specs = append(specs, gpu.Spec{Gen: gpu.P100, Servers: 1 + rng.Intn(3), GPUsPerSrv: 4})
		}
		c, err := gpu.New(specs...)
		if err != nil {
			t.Fatal(err)
		}
		gens := c.GensPresent()
		idx := NewIndex(c)

		jobs := make([]*job.Job, 12)
		for i := range jobs {
			jobs[i] = &job.Job{Spec: job.Spec{ID: job.ID(i + 1), Gang: 1 + rng.Intn(6)}}
		}

		prev := Assignment{}
		unavail := map[gpu.ServerID]bool{}
		for round := 0; round < 8; round++ {
			// Churn availability and sync the index by diffing.
			next := map[gpu.ServerID]bool{}
			for _, srv := range c.Servers() {
				if rng.Float64() < 0.15 {
					next[srv.ID] = true
				}
			}
			for sid := range unavail {
				if !next[sid] {
					idx.SetAvail(sid, true)
				}
			}
			for sid := range next {
				idx.SetAvail(sid, false)
			}
			unavail = next

			var reqs []Request
			pinned := map[job.ID]bool{}
			for _, j := range jobs {
				if rng.Float64() < 0.8 {
					reqs = append(reqs, Request{Job: j, Gen: gens[rng.Intn(len(gens))]})
					if rng.Float64() < 0.1 {
						pinned[j.ID] = true
					}
				}
			}
			opt := Options{AllowMigration: rng.Float64() < 0.8, Down: unavail, Pinned: pinned}

			want := Place(c, prev, reqs, opt)
			got := PlaceIndexed(idx, prev, reqs, opt)

			if !assignEqual(want.Assignment, got.Assignment) ||
				!idsEqual(want.Migrated, got.Migrated) || !idsEqual(want.Unplaced, got.Unplaced) {
				t.Fatalf("trial %d round %d: indexed placement diverged\nscan: %v\nidx:  %v",
					trial, round, render(want), render(got))
			}
			if err := Validate(c, got.Assignment); err != nil {
				t.Fatalf("trial %d round %d: %v", trial, round, err)
			}
			// Index must be back at baseline: every available server
			// fully free.
			for _, srv := range c.Servers() {
				wantCnt := len(srv.Devices)
				if unavail[srv.ID] {
					wantCnt = 0
				}
				if int(idx.freeCnt[srv.ID]) != wantCnt {
					t.Fatalf("trial %d round %d: server %d freeCnt %d after restore, want %d",
						trial, round, srv.ID, idx.freeCnt[srv.ID], wantCnt)
				}
			}

			// Feed forward with churn: some jobs release their devices.
			prev = got.Assignment.Clone()
			for _, id := range job.SortedIDs(prev) {
				if rng.Float64() < 0.2 {
					delete(prev, id)
				}
			}
		}
	}
}

func assignEqual(a, b Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for id, devs := range a {
		if !reflect.DeepEqual(devs, b[id]) {
			return false
		}
	}
	return true
}

func idsEqual(a, b []job.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func render(r Result) string {
	ids := make([]job.ID, 0, len(r.Assignment))
	for id := range r.Assignment {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	s := ""
	for _, id := range ids {
		s += fmt.Sprintf("%d:%v ", id, r.Assignment[id])
	}
	return fmt.Sprintf("assign=[%s] migrated=%v unplaced=%v", s, r.Migrated, r.Unplaced)
}
