// Free-capacity index: the incremental engine's replacement for the
// per-round full-cluster scan in Place. The index keeps, across
// rounds, which devices are free and a per-(generation, free-count)
// bucket of servers, so one placement request costs O(prev servers +
// buckets + gang) instead of O(all servers of the generation).
//
// Equivalence contract: PlaceIndexed must produce byte-identical
// Results to Place for the same inputs (asserted by the randomized
// differential test in index_test.go and the engine-level golden and
// differential digest tests). Every tie-break below mirrors
// findDevices exactly:
//
//   - a previous server of the job ALWAYS beats a non-previous server
//     for the single-server best fit, regardless of fit quality;
//   - among previous (resp. non-previous) candidates: fewest free
//     devices first, then lowest server ID;
//   - spanning walks servers by free count descending, then server ID
//     ascending, taking each server's lowest-ID free devices;
//   - within a server, the lowest-ID free devices are taken (the
//     ascending srv.Devices scan).
package placement

import (
	"math/bits"
	"sort"

	"repro/internal/gpu"
)

// serverBitset is a fixed-size bitset over ServerIDs supporting O(1)
// add/remove and ascending-ID iteration via 64-bit words.
type serverBitset struct {
	words []uint64
}

func newServerBitset(n int) *serverBitset {
	return &serverBitset{words: make([]uint64, (n+63)/64)}
}

func (b *serverBitset) add(id gpu.ServerID)    { b.words[int(id)>>6] |= 1 << (uint(id) & 63) }
func (b *serverBitset) remove(id gpu.ServerID) { b.words[int(id)>>6] &^= 1 << (uint(id) & 63) }

// min returns the smallest ServerID present, or ok=false when empty.
func (b *serverBitset) min() (gpu.ServerID, bool) {
	for w, word := range b.words {
		if word != 0 {
			return gpu.ServerID(w<<6 + bits.TrailingZeros64(word)), true
		}
	}
	return 0, false
}

// forEach visits members in ascending ServerID order until fn returns
// false.
func (b *serverBitset) forEach(fn func(gpu.ServerID) bool) {
	for w, word := range b.words {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			if !fn(gpu.ServerID(w<<6 + bit)) {
				return
			}
			word &^= 1 << uint(bit)
		}
	}
}

// Index is the persistent free-capacity structure. Its baseline state
// is "every available server fully free"; PlaceIndexed temporarily
// takes devices while computing a round's assignment and releases
// them all before returning, so between calls the index always sits
// at baseline. Server availability (down or quarantined) is flipped
// at baseline via SetAvail — the caller owns the diffing (the engine
// calls SetAvail only for servers whose fault state changed).
//
// An Index is owned by one engine instance and is not safe for
// concurrent use.
type Index struct {
	c       *gpu.Cluster
	freeDev []bool  // by DeviceID: free right now
	freeCnt []int16 // by ServerID: number of free devices
	avail   []bool  // by ServerID: not down, not quarantined
	maxCnt  int     // largest GPUs-per-server in the cluster

	// buckets[gen][cnt] holds the available servers of gen with
	// exactly cnt free devices, cnt in 1..maxCnt (servers with zero
	// free devices live in no bucket). totalFree[gen] is the number
	// of free devices on available servers of gen.
	buckets   [gpu.NumGenerations][]*serverBitset
	totalFree [gpu.NumGenerations]int

	// Scratch reused across PlaceIndexed calls.
	taken    []gpu.DeviceID //gflint:noretain devices taken this call, for the baseline restore
	order    []Request      //gflint:noretain per-call scratch
	prevSrvs []gpu.ServerID //gflint:noretain per-call scratch
	spanOut  []gpu.DeviceID //gflint:noretain per-call scratch
}

// NewIndex builds the index at baseline: all servers available, all
// devices free.
func NewIndex(c *gpu.Cluster) *Index {
	idx := &Index{
		c:       c,
		freeDev: make([]bool, c.NumDevices()),
		freeCnt: make([]int16, c.NumServers()),
		avail:   make([]bool, c.NumServers()),
	}
	for _, srv := range c.Servers() {
		if n := len(srv.Devices); n > idx.maxCnt {
			idx.maxCnt = n
		}
	}
	for g := range idx.buckets {
		if len(c.DevicesOf(gpu.Generation(g))) == 0 {
			continue
		}
		idx.buckets[g] = make([]*serverBitset, idx.maxCnt+1)
		for cnt := 1; cnt <= idx.maxCnt; cnt++ {
			idx.buckets[g][cnt] = newServerBitset(c.NumServers())
		}
	}
	for i := range idx.freeDev {
		idx.freeDev[i] = true
	}
	for _, srv := range c.Servers() {
		idx.avail[srv.ID] = true
		idx.freeCnt[srv.ID] = int16(len(srv.Devices))
		idx.buckets[srv.Gen][len(srv.Devices)].add(srv.ID)
		idx.totalFree[srv.Gen] += len(srv.Devices)
	}
	return idx
}

// SetAvail flips one server's availability. Must be called at
// baseline (between PlaceIndexed calls), so an available server is
// always fully free. No-op when the state already matches.
func (idx *Index) SetAvail(id gpu.ServerID, avail bool) {
	if idx.avail[id] == avail {
		return
	}
	srv := idx.c.Server(id)
	n := len(srv.Devices)
	idx.avail[id] = avail
	if avail {
		for _, d := range srv.Devices {
			idx.freeDev[d] = true
		}
		idx.freeCnt[id] = int16(n)
		idx.buckets[srv.Gen][n].add(id)
		idx.totalFree[srv.Gen] += n
	} else {
		for _, d := range srv.Devices {
			idx.freeDev[d] = false
		}
		idx.freeCnt[id] = 0
		idx.buckets[srv.Gen][n].remove(id)
		idx.totalFree[srv.Gen] -= n
	}
}

// take marks one free device busy and moves its server down one
// bucket.
func (idx *Index) take(d gpu.DeviceID) {
	idx.freeDev[d] = false
	srv := idx.c.Device(d).Server
	g := idx.c.Server(srv).Gen
	cnt := int(idx.freeCnt[srv])
	idx.buckets[g][cnt].remove(srv)
	if cnt > 1 {
		idx.buckets[g][cnt-1].add(srv)
	}
	idx.freeCnt[srv]--
	idx.totalFree[g]--
	idx.taken = append(idx.taken, d)
}

// release undoes take.
func (idx *Index) release(d gpu.DeviceID) {
	idx.freeDev[d] = true
	srv := idx.c.Device(d).Server
	g := idx.c.Server(srv).Gen
	cnt := int(idx.freeCnt[srv])
	if cnt > 0 {
		idx.buckets[g][cnt].remove(srv)
	}
	idx.buckets[g][cnt+1].add(srv)
	idx.freeCnt[srv]++
	idx.totalFree[g]++
}

// restoreBaseline releases every device taken during one PlaceIndexed
// call.
func (idx *Index) restoreBaseline() {
	for _, d := range idx.taken {
		idx.release(d)
	}
	idx.taken = idx.taken[:0]
}

// allFreeIdx reports whether every listed device is free.
func (idx *Index) allFreeIdx(devs []gpu.DeviceID) bool {
	for _, d := range devs {
		if !idx.freeDev[d] {
			return false
		}
	}
	return true
}

// PlaceIndexed is Place driven by the index instead of a cluster
// scan. Server availability comes from the index (SetAvail), so
// Options.Down is ignored — the caller must have synced fault state
// into the index. Returned device slices for jobs that kept their
// previous devices ALIAS the prev slices (no copy); Place's output
// values are identical either way.
func PlaceIndexed(idx *Index, prev Assignment, reqs []Request, opt Options) Result {
	c := idx.c
	res := Result{Assignment: make(Assignment, len(reqs))}
	defer idx.restoreBaseline()

	// Deterministic processing order: gang desc, then job ID.
	if cap(idx.order) < len(reqs) {
		idx.order = make([]Request, 0, len(reqs)*2)
	}
	order := append(idx.order[:0], reqs...)
	sort.Slice(order, func(i, j int) bool {
		if order[i].Job.Gang != order[j].Job.Gang {
			return order[i].Job.Gang > order[j].Job.Gang
		}
		return order[i].Job.ID < order[j].Job.ID
	})

	// Phase 1 — stability.
	pending := order[:0]
	for _, r := range order {
		devs, ok := prev[r.Job.ID]
		if ok && len(devs) == r.Job.Gang && devicesOnGen(c, devs, r.Gen) && idx.allFreeIdx(devs) {
			for _, d := range devs {
				idx.take(d)
			}
			res.Assignment[r.Job.ID] = devs
			continue
		}
		pending = append(pending, r)
	}

	// Phase 2 — place the rest.
	for _, r := range pending {
		prevDevs, ranBefore := prev[r.Job.ID]
		if ranBefore && (!opt.AllowMigration || opt.Pinned[r.Job.ID]) {
			res.Unplaced = append(res.Unplaced, r.Job.ID)
			continue
		}
		devs := idx.findDevices(r, prevDevs)
		if devs == nil {
			res.Unplaced = append(res.Unplaced, r.Job.ID)
			continue
		}
		for _, d := range devs {
			idx.take(d)
		}
		res.Assignment[r.Job.ID] = devs
		if ranBefore && !sameServers(c, prevDevs, devs) {
			res.Migrated = append(res.Migrated, r.Job.ID)
		}
	}
	sort.Slice(res.Migrated, func(i, j int) bool { return res.Migrated[i] < res.Migrated[j] })
	sort.Slice(res.Unplaced, func(i, j int) bool { return res.Unplaced[i] < res.Unplaced[j] })
	return res
}

// findDevices mirrors the scanning findDevices through the index.
func (idx *Index) findDevices(r Request, prevDevs []gpu.DeviceID) []gpu.DeviceID {
	c := idx.c
	gang := r.Job.Gang
	g := r.Gen
	if idx.buckets[g] == nil || idx.totalFree[g] < gang {
		return nil
	}

	// Previous servers of the job, ascending (device IDs are dense per
	// server, so sorted devices yield non-decreasing server IDs).
	prevSrvs := idx.prevSrvs[:0]
	for _, d := range prevDevs {
		sid := c.Device(d).Server
		if len(prevSrvs) == 0 || prevSrvs[len(prevSrvs)-1] != sid {
			prevSrvs = append(prevSrvs, sid)
		}
	}
	idx.prevSrvs = prevSrvs

	// Single-server best fit. A previous server always beats a
	// non-previous one; among previous servers it is fewest-free then
	// lowest ID — exactly the rescan comparison, restricted here to
	// the (tiny) prev set plus one bucket probe.
	best := gpu.ServerID(-1)
	bestCnt := 0
	for _, sid := range prevSrvs {
		if !idx.avail[sid] {
			continue
		}
		srv := c.Server(sid)
		cnt := int(idx.freeCnt[sid])
		if srv.Gen != g || cnt < gang {
			continue
		}
		if best < 0 || cnt < bestCnt || (cnt == bestCnt && sid < best) {
			best, bestCnt = sid, cnt
		}
	}
	if best < 0 {
		// No previous server fits: best fit over all servers is the
		// lowest-ID member of the smallest sufficient bucket.
		for cnt := gang; cnt <= idx.maxCnt; cnt++ {
			if sid, ok := idx.buckets[g][cnt].min(); ok {
				best = sid
				break
			}
		}
	}
	if best >= 0 {
		return idx.takeFrom(best, gang, nil)
	}

	// Spanning: most-free servers first (free count descending, then
	// server ID ascending — the bucket walk from maxCnt down yields
	// exactly that order), each contributing its lowest-ID free
	// devices.
	out := idx.spanOut[:0]
	need := gang
	for cnt := idx.maxCnt; cnt >= 1 && need > 0; cnt-- {
		idx.buckets[g][cnt].forEach(func(sid gpu.ServerID) bool {
			n := cnt
			if n > need {
				n = need
			}
			out = idx.takeFrom(sid, n, out)
			need -= n
			return need > 0
		})
	}
	idx.spanOut = out[:0]
	sorted := make([]gpu.DeviceID, len(out))
	copy(sorted, out)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted
}

// takeFrom collects server sid's n lowest-ID free devices. With a nil
// dst it returns a fresh sorted slice (the single-server result);
// otherwise it appends to dst for the spanning path. Devices are NOT
// taken here — PlaceIndexed takes the returned set.
func (idx *Index) takeFrom(sid gpu.ServerID, n int, dst []gpu.DeviceID) []gpu.DeviceID {
	srv := idx.c.Server(sid)
	if dst == nil {
		dst = make([]gpu.DeviceID, 0, n)
	}
	for _, d := range srv.Devices {
		if n == 0 {
			break
		}
		if idx.freeDev[d] {
			dst = append(dst, d)
			n--
		}
	}
	return dst
}
