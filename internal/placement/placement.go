// Package placement maps the jobs selected for a scheduling round
// onto concrete GPUs. It prefers stability (a job keeps the devices
// it ran on), packs gangs onto as few servers as possible, and
// reports which jobs had to migrate (server set changed) so the core
// can charge migration overhead. Placement is a pure function of the
// round's inputs — all state (what ran where) is passed in, which
// keeps it trivially testable.
package placement

import (
	"fmt"
	"sort"

	"repro/internal/gpu"
	"repro/internal/job"
)

// Assignment maps each running job to the devices it holds. Device
// slices are sorted ascending.
type Assignment map[job.ID][]gpu.DeviceID

// Clone deep-copies the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for id, devs := range a {
		cp := make([]gpu.DeviceID, len(devs))
		copy(cp, devs)
		out[id] = cp
	}
	return out
}

// Request asks for one job to run this round on one generation.
type Request struct {
	Job *job.Job
	Gen gpu.Generation
}

// Options tunes placement behavior.
type Options struct {
	// AllowMigration permits moving a previously-running job to a
	// different server set when that is the only way to place it (or
	// a bigger gang). When false, a job that ran last round may only
	// be placed on exactly its previous devices — the
	// no-migration ablation, which strands capacity under
	// fragmentation.
	AllowMigration bool

	// Down marks failed servers; their devices are unplaceable this
	// round. A job whose previous devices are down is treated like
	// any displaced job: migrated if allowed, stranded otherwise.
	Down map[gpu.ServerID]bool

	// Pinned marks jobs that may not migrate this round even when
	// AllowMigration is set (migration-failure backoff): they either
	// keep their exact previous devices (phase-1 stability) or go
	// unplaced.
	Pinned map[job.ID]bool
}

// Result reports the round's placement.
type Result struct {
	Assignment Assignment
	// Migrated lists jobs whose server set changed relative to prev
	// (they pay checkpoint/restore cost).
	Migrated []job.ID
	// Unplaced lists requested jobs that could not be placed
	// (fragmentation or capacity); they do not run this round.
	Unplaced []job.ID
}

// Place computes the round's assignment. prev is last round's
// assignment (for stability and migration detection); requests may be
// in any order — big gangs are placed first internally.
func Place(c *gpu.Cluster, prev Assignment, reqs []Request, opt Options) Result {
	res := Result{Assignment: make(Assignment, len(reqs))}
	free := make(map[gpu.DeviceID]bool, c.NumDevices())
	for i := 0; i < c.NumDevices(); i++ {
		id := gpu.DeviceID(i)
		free[id] = !opt.Down[c.Device(id).Server]
	}

	// Deterministic processing order: gang desc, then job ID.
	order := make([]Request, len(reqs))
	copy(order, reqs)
	sort.Slice(order, func(i, j int) bool {
		if order[i].Job.Gang != order[j].Job.Gang {
			return order[i].Job.Gang > order[j].Job.Gang
		}
		return order[i].Job.ID < order[j].Job.ID
	})

	// Phase 1 — stability: keep jobs exactly where they were when the
	// previous devices still match the requested generation and gang.
	pending := order[:0]
	for _, r := range order {
		devs, ok := prev[r.Job.ID]
		if ok && len(devs) == r.Job.Gang && devicesOnGen(c, devs, r.Gen) && allFree(free, devs) {
			take(free, devs)
			res.Assignment[r.Job.ID] = sortedCopy(devs)
			continue
		}
		pending = append(pending, r)
	}

	// Phase 2 — place the rest.
	for _, r := range pending {
		_, ranBefore := prev[r.Job.ID]
		if ranBefore && (!opt.AllowMigration || opt.Pinned[r.Job.ID]) {
			// Previous devices unusable (wrong generation, wrong
			// count, or taken) and we may not move the job.
			res.Unplaced = append(res.Unplaced, r.Job.ID)
			continue
		}
		devs := findDevices(c, free, r, prev[r.Job.ID])
		if devs == nil {
			res.Unplaced = append(res.Unplaced, r.Job.ID)
			continue
		}
		take(free, devs)
		res.Assignment[r.Job.ID] = devs
		if ranBefore && !sameServers(c, prev[r.Job.ID], devs) {
			res.Migrated = append(res.Migrated, r.Job.ID)
		}
	}
	sort.Slice(res.Migrated, func(i, j int) bool { return res.Migrated[i] < res.Migrated[j] })
	sort.Slice(res.Unplaced, func(i, j int) bool { return res.Unplaced[i] < res.Unplaced[j] })
	return res
}

// findDevices picks gang devices of the requested generation:
// best-fit on a single server if possible (preferring the job's
// previous server, then fullest-fitting server), otherwise spanning
// the fewest servers, most-free first.
func findDevices(c *gpu.Cluster, free map[gpu.DeviceID]bool, r Request, prevDevs []gpu.DeviceID) []gpu.DeviceID {
	gang := r.Job.Gang
	prevServers := serverSet(c, prevDevs)

	type srvFree struct {
		id   gpu.ServerID
		devs []gpu.DeviceID
	}
	var servers []srvFree
	total := 0
	for _, sid := range c.ServersOf(r.Gen) {
		srv := c.Server(sid)
		var fd []gpu.DeviceID
		for _, d := range srv.Devices {
			if free[d] {
				fd = append(fd, d)
			}
		}
		if len(fd) > 0 {
			servers = append(servers, srvFree{sid, fd})
			total += len(fd)
		}
	}
	if total < gang {
		return nil
	}

	// Single-server candidates: best fit (fewest leftover GPUs), with
	// the job's previous server winning ties (cheap intra-server
	// shuffle instead of a migration).
	best := -1
	for i, s := range servers {
		if len(s.devs) < gang {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		bi, si := servers[best], s
		biPrev, siPrev := prevServers[bi.id], prevServers[si.id]
		switch {
		case siPrev && !biPrev:
			best = i
		case biPrev && !siPrev:
			// keep
		case len(si.devs) < len(bi.devs):
			best = i
		case len(si.devs) == len(bi.devs) && si.id < bi.id:
			best = i
		}
	}
	if best >= 0 {
		return sortedCopy(servers[best].devs[:gang])
	}

	// Spanning: greedily take from the most-free servers so the gang
	// touches as few machines as possible.
	sort.Slice(servers, func(i, j int) bool {
		if len(servers[i].devs) != len(servers[j].devs) {
			return len(servers[i].devs) > len(servers[j].devs)
		}
		return servers[i].id < servers[j].id
	})
	var out []gpu.DeviceID
	need := gang
	for _, s := range servers {
		n := len(s.devs)
		if n > need {
			n = need
		}
		out = append(out, s.devs[:n]...)
		need -= n
		if need == 0 {
			break
		}
	}
	return sortedCopy(out)
}

// ServersUsed returns how many distinct servers a device set spans.
func ServersUsed(c *gpu.Cluster, devs []gpu.DeviceID) int {
	return len(serverSet(c, devs))
}

// Validate checks assignment invariants against the cluster: no
// device assigned twice and every job's devices sharing one
// generation. It returns the first violation.
func Validate(c *gpu.Cluster, a Assignment) error {
	used := make(map[gpu.DeviceID]job.ID)
	for id, devs := range a {
		if len(devs) == 0 {
			return fmt.Errorf("placement: job %d assigned zero devices", id)
		}
		for _, d := range devs {
			if int(d) < 0 || int(d) >= c.NumDevices() {
				return fmt.Errorf("placement: job %d holds unknown device %d", id, d)
			}
		}
		gen := c.Device(devs[0]).Gen
		for _, d := range devs {
			if c.Device(d).Gen != gen {
				return fmt.Errorf("placement: job %d mixes generations", id)
			}
			if prev, dup := used[d]; dup {
				return fmt.Errorf("placement: device %d assigned to jobs %d and %d", d, prev, id)
			}
			used[d] = id
		}
	}
	return nil
}

// BusyPerServer returns the number of busy GPUs on each server under
// an assignment (servers with zero busy GPUs included).
func BusyPerServer(c *gpu.Cluster, a Assignment) map[gpu.ServerID]int {
	busy := make(map[gpu.ServerID]int, c.NumServers())
	for _, srv := range c.Servers() {
		busy[srv.ID] = 0
	}
	for _, devs := range a {
		for _, d := range devs {
			busy[c.Device(d).Server]++
		}
	}
	return busy
}

func devicesOnGen(c *gpu.Cluster, devs []gpu.DeviceID, g gpu.Generation) bool {
	for _, d := range devs {
		if c.Device(d).Gen != g {
			return false
		}
	}
	return true
}

func allFree(free map[gpu.DeviceID]bool, devs []gpu.DeviceID) bool {
	for _, d := range devs {
		if !free[d] {
			return false
		}
	}
	return true
}

func take(free map[gpu.DeviceID]bool, devs []gpu.DeviceID) {
	for _, d := range devs {
		free[d] = false
	}
}

func serverSet(c *gpu.Cluster, devs []gpu.DeviceID) map[gpu.ServerID]bool {
	m := make(map[gpu.ServerID]bool, len(devs))
	for _, d := range devs {
		m[c.Device(d).Server] = true
	}
	return m
}

func sameServers(c *gpu.Cluster, a, b []gpu.DeviceID) bool {
	sa, sb := serverSet(c, a), serverSet(c, b)
	if len(sa) != len(sb) {
		return false
	}
	for s := range sa {
		if !sb[s] {
			return false
		}
	}
	return true
}

func sortedCopy(devs []gpu.DeviceID) []gpu.DeviceID {
	out := make([]gpu.DeviceID, len(devs))
	copy(out, devs)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
