package placement

import (
	"math/rand"
	"testing"

	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/workload"
)

var zoo = workload.DefaultZoo()

func mkJob(id job.ID, gang int) *job.Job {
	return job.MustNew(job.Spec{
		ID: id, User: "u", Perf: zoo.MustGet("resnet50"), Gang: gang, TotalMB: 1e9,
	})
}

func smallCluster() *gpu.Cluster {
	// 2 K80 servers × 4, 2 V100 servers × 4.
	return gpu.MustNew(
		gpu.Spec{Gen: gpu.K80, Servers: 2, GPUsPerSrv: 4},
		gpu.Spec{Gen: gpu.V100, Servers: 2, GPUsPerSrv: 4},
	)
}

func opts() Options { return Options{AllowMigration: true} }

func TestPlaceSimple(t *testing.T) {
	c := smallCluster()
	j := mkJob(1, 4)
	res := Place(c, nil, []Request{{j, gpu.V100}}, opts())
	if len(res.Unplaced) != 0 || len(res.Migrated) != 0 {
		t.Fatalf("unexpected unplaced/migrated: %+v", res)
	}
	devs := res.Assignment[1]
	if len(devs) != 4 {
		t.Fatalf("got %d devices, want 4", len(devs))
	}
	if ServersUsed(c, devs) != 1 {
		t.Errorf("4-gang spans %d servers, want 1", ServersUsed(c, devs))
	}
	for _, d := range devs {
		if c.Device(d).Gen != gpu.V100 {
			t.Errorf("device %d has gen %v, want V100", d, c.Device(d).Gen)
		}
	}
	if err := Validate(c, res.Assignment); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceStability(t *testing.T) {
	c := smallCluster()
	j := mkJob(1, 2)
	r1 := Place(c, nil, []Request{{j, gpu.K80}}, opts())
	r2 := Place(c, r1.Assignment, []Request{{j, gpu.K80}}, opts())
	if len(r2.Migrated) != 0 {
		t.Fatalf("stable job migrated: %v", r2.Migrated)
	}
	a, b := r1.Assignment[1], r2.Assignment[1]
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("devices changed without need: %v → %v", a, b)
		}
	}
}

func TestPlaceBestFitPacking(t *testing.T) {
	c := smallCluster()
	// j1 takes 3 of server0's K80s; j2 (gang 4) must go to server1;
	// j3 (gang 1) should backfill server0 (best fit), not fragment
	// server1.
	j1, j2, j3 := mkJob(1, 3), mkJob(2, 4), mkJob(3, 1)
	res := Place(c, nil, []Request{{j1, gpu.K80}, {j2, gpu.K80}, {j3, gpu.K80}}, opts())
	if len(res.Unplaced) != 0 {
		t.Fatalf("unplaced: %v", res.Unplaced)
	}
	s1 := c.Device(res.Assignment[1][0]).Server
	s3 := c.Device(res.Assignment[3][0]).Server
	if s1 != s3 {
		t.Errorf("1-GPU job placed on server %d, want backfill on %d", s3, s1)
	}
	if err := Validate(c, res.Assignment); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceSpanningGang(t *testing.T) {
	c := smallCluster() // 8 K80s across 2 servers
	j := mkJob(1, 8)
	res := Place(c, nil, []Request{{j, gpu.K80}}, opts())
	if len(res.Unplaced) != 0 {
		t.Fatalf("8-gang unplaced despite 8 free K80s")
	}
	if n := ServersUsed(c, res.Assignment[1]); n != 2 {
		t.Errorf("spans %d servers, want 2", n)
	}
}

func TestPlaceInsufficientCapacity(t *testing.T) {
	c := smallCluster()
	j := mkJob(1, 9) // only 8 K80s exist
	res := Place(c, nil, []Request{{j, gpu.K80}}, opts())
	if len(res.Unplaced) != 1 || res.Unplaced[0] != 1 {
		t.Fatalf("Unplaced = %v, want [1]", res.Unplaced)
	}
	if len(res.Assignment) != 0 {
		t.Fatalf("assignment nonempty: %v", res.Assignment)
	}
}

func TestPlaceBigGangsFirst(t *testing.T) {
	c := smallCluster()
	// Capacity 8 K80. Requests: 4×1-GPU + 1×4-GPU + 1×2-GPU = 10 > 8.
	// Big-first placement must place the 4-gang and 2-gang; two 1-GPU
	// jobs fill the rest, and the remaining two are unplaced.
	reqs := []Request{
		{mkJob(10, 1), gpu.K80}, {mkJob(11, 1), gpu.K80},
		{mkJob(12, 1), gpu.K80}, {mkJob(13, 1), gpu.K80},
		{mkJob(1, 4), gpu.K80}, {mkJob(2, 2), gpu.K80},
	}
	res := Place(c, nil, reqs, opts())
	if _, ok := res.Assignment[1]; !ok {
		t.Error("4-gang not placed")
	}
	if _, ok := res.Assignment[2]; !ok {
		t.Error("2-gang not placed")
	}
	if len(res.Unplaced) != 2 {
		t.Errorf("Unplaced = %v, want two 1-GPU jobs", res.Unplaced)
	}
	if err := Validate(c, res.Assignment); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationDetection(t *testing.T) {
	c := smallCluster()
	jBig := mkJob(1, 4)
	jSmall := mkJob(2, 1)
	// Round 1: small job on K80 (server 0 or 1).
	r1 := Place(c, nil, []Request{{jSmall, gpu.K80}}, opts())
	// Round 2: move small job to V100 — a generation change is always
	// a server change here.
	r2 := Place(c, r1.Assignment, []Request{{jSmall, gpu.V100}, {jBig, gpu.K80}}, opts())
	if len(r2.Migrated) != 1 || r2.Migrated[0] != 2 {
		t.Fatalf("Migrated = %v, want [2]", r2.Migrated)
	}
}

func TestNoMigrationOptionStrandsGenerationChange(t *testing.T) {
	c := smallCluster()
	j := mkJob(1, 2)
	r1 := Place(c, nil, []Request{{j, gpu.K80}}, opts())
	// The scheduler now wants the job on V100 (e.g., after a trade).
	// Without migration the job is pinned to its K80 server and
	// cannot follow the allocation.
	res := Place(c, r1.Assignment, []Request{{j, gpu.V100}}, Options{AllowMigration: false})
	if len(res.Unplaced) != 1 || res.Unplaced[0] != 1 {
		t.Fatalf("no-migration: Unplaced = %v, want [1]", res.Unplaced)
	}
	// With migration the same request succeeds and is flagged.
	res2 := Place(c, r1.Assignment, []Request{{j, gpu.V100}}, opts())
	if len(res2.Unplaced) != 0 {
		t.Fatalf("with migration: Unplaced = %v", res2.Unplaced)
	}
	if len(res2.Migrated) != 1 || res2.Migrated[0] != 1 {
		t.Fatalf("Migrated = %v, want [1]", res2.Migrated)
	}
}

func TestSpanningDefragmentsViaSharedPool(t *testing.T) {
	// 2 servers × 2 K80. Two pinned 1-GPU jobs on different servers
	// leave one free GPU per server; a 2-gang still runs by spanning,
	// paying the cross-server penalty instead of being stranded.
	c := gpu.MustNew(gpu.Spec{Gen: gpu.K80, Servers: 2, GPUsPerSrv: 2})
	prev := Assignment{
		1: {c.Server(0).Devices[0]},
		2: {c.Server(1).Devices[0]},
	}
	j1, j2, j3 := mkJob(1, 1), mkJob(2, 1), mkJob(3, 2)
	res := Place(c, prev, []Request{{j1, gpu.K80}, {j2, gpu.K80}, {j3, gpu.K80}},
		Options{AllowMigration: false})
	if len(res.Unplaced) != 0 {
		t.Fatalf("Unplaced = %v, want none (spanning)", res.Unplaced)
	}
	if n := ServersUsed(c, res.Assignment[3]); n != 2 {
		t.Errorf("2-gang spans %d servers, want 2", n)
	}
	if err := Validate(c, res.Assignment); err != nil {
		t.Fatal(err)
	}
}

func TestPreferPreviousServerOnReplacement(t *testing.T) {
	c := smallCluster()
	j := mkJob(1, 2)
	r1 := Place(c, nil, []Request{{j, gpu.K80}}, opts())
	srv := c.Device(r1.Assignment[1][0]).Server
	// Same server, but pretend the job now needs different local GPUs
	// by occupying its old ones with another job of equal gang—
	// actually simpler: grow the gang so prev devices no longer match.
	jBig := mkJob(1, 3)
	r2 := Place(c, r1.Assignment, []Request{{jBig, gpu.K80}}, opts())
	if len(r2.Migrated) != 0 {
		t.Fatalf("intra-server reshuffle flagged as migration: %v", r2.Migrated)
	}
	if got := c.Device(r2.Assignment[1][0]).Server; got != srv {
		t.Errorf("job moved to server %d, want to stay on %d", got, srv)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c := smallCluster()
	if err := Validate(c, Assignment{1: {}}); err == nil {
		t.Error("empty device list validated")
	}
	if err := Validate(c, Assignment{1: {0, 1}, 2: {1, 2}}); err == nil {
		t.Error("double-booked device validated")
	}
	if err := Validate(c, Assignment{1: {0, 8}}); err == nil {
		t.Error("mixed-generation gang validated") // 0 is K80, 8 is V100
	}
	if err := Validate(c, Assignment{1: {999}}); err == nil {
		t.Error("unknown device validated")
	}
}

func TestBusyPerServer(t *testing.T) {
	c := smallCluster()
	j := mkJob(1, 4)
	res := Place(c, nil, []Request{{j, gpu.K80}}, opts())
	busy := BusyPerServer(c, res.Assignment)
	if len(busy) != c.NumServers() {
		t.Fatalf("busy map has %d servers, want %d", len(busy), c.NumServers())
	}
	total := 0
	for _, n := range busy {
		total += n
	}
	if total != 4 {
		t.Errorf("total busy %d, want 4", total)
	}
}

// Property: with an unchanged request set, repeated placement is
// perfectly stable — after round one, no job ever moves.
func TestPropertyStability(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		c := gpu.MustNew(
			gpu.Spec{Gen: gpu.K80, Servers: 1 + rng.Intn(4), GPUsPerSrv: 2 + rng.Intn(3)},
		)
		var reqs []Request
		budget := c.NumDevices()
		id := job.ID(1)
		for budget > 0 {
			gang := 1 + rng.Intn(3)
			if gang > budget {
				gang = budget
			}
			reqs = append(reqs, Request{mkJob(id, gang), gpu.K80})
			id++
			budget -= gang
		}
		prev := Assignment{}
		var first Assignment
		for round := 0; round < 4; round++ {
			res := Place(c, prev, reqs, opts())
			if len(res.Unplaced) != 0 {
				t.Fatalf("trial %d: unplaced %v in a fitting set", trial, res.Unplaced)
			}
			if round == 0 {
				first = res.Assignment.Clone()
			} else {
				if len(res.Migrated) != 0 {
					t.Fatalf("trial %d round %d: spurious migrations %v", trial, round, res.Migrated)
				}
				for jid, devs := range res.Assignment {
					for i, d := range devs {
						if first[jid][i] != d {
							t.Fatalf("trial %d: job %d devices changed %v → %v",
								trial, jid, first[jid], devs)
						}
					}
				}
			}
			prev = res.Assignment
		}
	}
}

// Property: random rounds over random clusters always produce valid,
// capacity-respecting assignments, and every unplaced job genuinely
// has no single-generation fit remaining... (weaker: total placed per
// generation never exceeds capacity).
func TestPropertyPlaceValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		c := gpu.MustNew(
			gpu.Spec{Gen: gpu.K80, Servers: 1 + rng.Intn(3), GPUsPerSrv: 1 + rng.Intn(4)},
			gpu.Spec{Gen: gpu.V100, Servers: 1 + rng.Intn(3), GPUsPerSrv: 1 + rng.Intn(4)},
		)
		prev := Assignment{}
		var reqs []Request
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			g := gpu.K80
			if rng.Intn(2) == 0 {
				g = gpu.V100
			}
			reqs = append(reqs, Request{mkJob(job.ID(i+1), 1+rng.Intn(5)), g})
		}
		// Two consecutive rounds to exercise stability paths.
		for round := 0; round < 2; round++ {
			res := Place(c, prev, reqs, opts())
			if err := Validate(c, res.Assignment); err != nil {
				t.Fatalf("trial %d round %d: %v", trial, round, err)
			}
			for _, r := range reqs {
				_, placed := res.Assignment[r.Job.ID]
				unplaced := false
				for _, id := range res.Unplaced {
					if id == r.Job.ID {
						unplaced = true
					}
				}
				if placed == unplaced {
					t.Fatalf("trial %d: job %d neither or both placed/unplaced", trial, r.Job.ID)
				}
				if placed && len(res.Assignment[r.Job.ID]) != r.Job.Gang {
					t.Fatalf("trial %d: job %d got %d devices, want %d",
						trial, r.Job.ID, len(res.Assignment[r.Job.ID]), r.Job.Gang)
				}
			}
			prev = res.Assignment
		}
	}
}
