package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatSumAnalyzer generalizes maprange's float-accumulation rule by
// one dataflow step: a slice filled in map-iteration order carries the
// nondeterminism with it, and summing THAT slice — in a later loop or
// via a sum-shaped helper — rounds in map order even though no map
// range is in sight at the accumulation site. This is the bug class
// fixed twice already (fairshare/stride water-fills in PR 1, the fault
// path in PR 5), each time one assignment removed from where maprange
// could see it.
//
// A local slice becomes "map-ordered" when elements that depend on the
// iteration are appended to it inside a range over a map (or over
// another map-ordered slice — the property is transitive, as are plain
// local aliases y := x). Sorting the slice after the building loop
// (sort.* / slices.*) restores determinism and clears the mark. A
// map-ordered slice is then reported when a range over it accumulates
// floats into an outer variable, or when it is passed to a function
// whose name promises a reduction (sum, total, mean, avg, average, or
// a *Sum suffix).
var FloatSumAnalyzer = &Analyzer{
	Name: "floatsum",
	Doc:  "float accumulation over slices whose element order came from map iteration (maprange, one dataflow step removed)",
	Run:  runFloatSum,
}

// mapOrdered records how a local slice acquired map iteration order.
type mapOrdered struct {
	origin token.Pos      // the append that copied map order into the slice
	rs     *ast.RangeStmt // the building loop, for the sorted-after check
}

func runFloatSum(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkFloatSumBody(pass, body)
			}
			return true
		})
	}
}

func checkFloatSumBody(pass *Pass, body *ast.BlockStmt) {
	ordered := findMapOrdered(pass, body)
	if len(ordered) == 0 {
		return
	}
	// The collect-then-sort idiom clears the mark.
	for obj, info := range ordered {
		if sortedAfter(pass, body, info.rs, obj) {
			delete(ordered, obj)
		}
	}
	if len(ordered) == 0 {
		return
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false // checked as its own function
		}
		switch v := n.(type) {
		case *ast.RangeStmt:
			id, ok := ast.Unparen(v.X).(*ast.Ident)
			if !ok {
				return true
			}
			info := ordered[pass.ObjectOf(id)]
			if info == nil {
				return true
			}
			reportFloatAccums(pass, v, id.Name, info)
		case *ast.CallExpr:
			checkSumCall(pass, v, ordered)
		}
		return true
	})
}

// findMapOrdered runs the fixpoint marking local slices that carry map
// iteration order: appends of iteration-dependent elements inside a
// range over a map or over an already-marked slice, plus plain local
// aliases. Only identifier-rooted destinations declared outside the
// building loop are tracked.
func findMapOrdered(pass *Pass, body *ast.BlockStmt) map[types.Object]*mapOrdered {
	ordered := make(map[types.Object]*mapOrdered)
	disorder := func(rs *ast.RangeStmt) *mapOrdered {
		if _, isMap := typeUnder(pass.TypeOf(rs.X)).(*types.Map); isMap {
			return &mapOrdered{rs: rs}
		}
		if id, ok := ast.Unparen(rs.X).(*ast.Ident); ok {
			return ordered[pass.ObjectOf(id)]
		}
		return nil
	}
	for {
		changed := false
		mark := func(obj types.Object, info *mapOrdered) {
			if obj != nil && ordered[obj] == nil {
				ordered[obj] = info
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
				return false
			}
			switch v := n.(type) {
			case *ast.RangeStmt:
				src := disorder(v)
				if src == nil {
					return true
				}
				vars := rangeVarObjs(pass, v)
				ast.Inspect(v.Body, func(m ast.Node) bool {
					st, ok := m.(*ast.AssignStmt)
					if !ok {
						return true
					}
					for i, rhs := range st.Rhs {
						call, ok := ast.Unparen(rhs).(*ast.CallExpr)
						if !ok || !pass.IsBuiltin(call, "append") || len(call.Args) < 2 {
							continue
						}
						dep := false
						for _, a := range call.Args[1:] {
							if loopDependent(pass, a, vars, v) {
								dep = true
								break
							}
						}
						if !dep {
							continue
						}
						var dest ast.Expr
						if len(st.Lhs) == len(st.Rhs) {
							dest = st.Lhs[i]
						} else if len(st.Lhs) == 1 {
							dest = st.Lhs[0]
						}
						id, ok := ast.Unparen(dest).(*ast.Ident)
						if !ok {
							continue
						}
						obj := pass.ObjectOf(id)
						if obj == nil || declaredWithin(obj, v.Body) {
							continue
						}
						origin := src.origin
						if !origin.IsValid() {
							origin = call.Pos()
						}
						// The sorted-after horizon is the loop that
						// filled THIS slice; the origin note keeps
						// pointing at where map order first leaked in.
						mark(obj, &mapOrdered{origin: origin, rs: v})
					}
					return true
				})
			case *ast.AssignStmt:
				// y := x aliases the marked backing and its order.
				if len(v.Lhs) != len(v.Rhs) {
					return true
				}
				for i := range v.Lhs {
					src := ast.Unparen(v.Rhs[i])
					if se, ok := src.(*ast.SliceExpr); ok {
						src = ast.Unparen(se.X)
					}
					id, ok := src.(*ast.Ident)
					if !ok {
						continue
					}
					info := ordered[pass.ObjectOf(id)]
					if info == nil {
						continue
					}
					if lid, ok := ast.Unparen(v.Lhs[i]).(*ast.Ident); ok && lid.Name != "_" {
						mark(pass.ObjectOf(lid), info)
					}
				}
			}
			return true
		})
		if !changed {
			return ordered
		}
	}
}

// reportFloatAccums flags float accumulation into outer variables
// inside a range over a map-ordered slice, mirroring maprange's rules
// (constant addends, range-var-keyed writes, and loop-local
// accumulators are order-insensitive and exempt).
func reportFloatAccums(pass *Pass, rs *ast.RangeStmt, sliceName string, info *mapOrdered) {
	vars := rangeVarObjs(pass, rs)
	report := func(lhs, rhs ast.Expr) {
		basic, ok := typeUnder(pass.TypeOf(lhs)).(*types.Basic)
		if !ok || basic.Info()&types.IsFloat == 0 {
			return
		}
		if pass.IsConst(rhs) || !loopDependent(pass, rhs, vars, rs) {
			return
		}
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && refersTo(pass, idx.Index, vars) {
			return
		}
		if obj := rootObj(pass, lhs); obj != nil && declaredWithin(obj, rs.Body) {
			return
		}
		pass.ReportRelated(lhs.Pos(),
			[]Related{pass.Note(orNoPos(info.origin, rs.Pos()), "element order set by map iteration here")},
			"float accumulation into %s over %s, whose element order follows a map iteration — sort %s before summing",
			destName(lhs), sliceName, sliceName)
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch {
		case len(st.Lhs) == 1 && (st.Tok == token.ADD_ASSIGN || st.Tok == token.SUB_ASSIGN ||
			st.Tok == token.MUL_ASSIGN || st.Tok == token.QUO_ASSIGN):
			report(st.Lhs[0], st.Rhs[0])
		case len(st.Lhs) == 1 && st.Tok == token.ASSIGN:
			if bin, ok := ast.Unparen(st.Rhs[0]).(*ast.BinaryExpr); ok {
				switch bin.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					lobj := rootObj(pass, st.Lhs[0])
					if lobj == nil {
						break
					}
					if sameRoot(pass, bin.X, lobj) {
						report(st.Lhs[0], bin.Y)
					} else if sameRoot(pass, bin.Y, lobj) {
						report(st.Lhs[0], bin.X)
					}
				}
			}
		}
		return true
	})
}

// checkSumCall flags a map-ordered slice handed to a function whose
// name promises an order-sensitive reduction.
func checkSumCall(pass *Pass, call *ast.CallExpr, ordered map[types.Object]*mapOrdered) {
	name := calleeName(pass, call)
	if !sumLikeName(name) {
		return
	}
	for _, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		info := ordered[pass.ObjectOf(id)]
		if info == nil {
			continue
		}
		pass.ReportRelated(arg.Pos(),
			[]Related{pass.Note(orNoPos(info.origin, info.rs.Pos()), "element order set by map iteration here")},
			"%s, whose element order follows a map iteration, is passed to %s — sort it before reducing",
			id.Name, name)
	}
}

func calleeName(pass *Pass, call *ast.CallExpr) string {
	if fn := pass.CalleeFunc(call); fn != nil {
		return fn.Name()
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// sumLikeName reports names that read as order-sensitive reductions.
func sumLikeName(name string) bool {
	l := strings.ToLower(name)
	switch l {
	case "sum", "total", "mean", "avg", "average":
		return true
	}
	return strings.HasSuffix(l, "sum")
}

func orNoPos(pos, fallback token.Pos) token.Pos {
	if pos.IsValid() {
		return pos
	}
	return fallback
}
