package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RetainAnalyzer enforces //gflint:noretain contracts: values whose
// backing storage the producer reuses (RoundState.Jobs, the engine's
// scratch buffers, the fairshare solvers' cached maps) must not flow
// into anything that outlives the call — a struct field, package-level
// variable, closure, channel, or return value — without an explicit
// copy.
//
// Taint enters through reads of annotated struct fields, uses of
// annotated parameters, and calls to functions whose result carries
// the annotation; it propagates through local assignments, reslices,
// composite literals, and conversions (see taintEngine). Copies break
// it: append into a fresh slice, the x[:0:0] idiom, or any ordinary
// call result.
//
// Two flows are contracts rather than violations and are exempt: a
// store INTO an annotated field (the owner refreshing its own buffer,
// or a producer handing the buffer to its consumers), and a return
// from a function whose own doc comment declares //gflint:noretain —
// that passes the obligation to its callers, where this analyzer picks
// it up again.
var RetainAnalyzer = &Analyzer{
	Name: "retain",
	Doc:  "values under a //gflint:noretain contract escaping into fields, globals, closures, channels, or returns without a copy",
	Run:  runRetain,
}

func runRetain(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRetainFunc(pass, fd)
		}
	}
}

func checkRetainFunc(pass *Pass, fd *ast.FuncDecl) {
	fnObj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)

	t := &taintEngine{
		pass:    pass,
		decl:    fd,
		tainted: make(map[types.Object]*Annotation),
		source: func(e ast.Expr) *Annotation {
			switch v := e.(type) {
			case *ast.SelectorExpr:
				return pass.Pkg.NoRetain(pass.ObjectOf(v.Sel))
			case *ast.CallExpr:
				return pass.Pkg.NoRetainResult(pass.CalleeFunc(v))
			}
			return nil
		},
		exemptStore: func(target ast.Expr) bool {
			sel, ok := ast.Unparen(target).(*ast.SelectorExpr)
			return ok && pass.Pkg.NoRetain(pass.ObjectOf(sel.Sel)) != nil
		},
		allowReturn: fnObj != nil && pass.Pkg.NoRetainResult(fnObj) != nil,
	}

	// Annotated parameters of this function are tainted from entry.
	if fnObj != nil {
		sig := fnObj.Type().(*types.Signature)
		params := sig.Params()
		for i := 0; i < params.Len(); i++ {
			if a := pass.Pkg.NoRetain(params.At(i)); a != nil {
				t.tainted[params.At(i)] = a
			}
		}
	}

	t.sink = func(pos token.Pos, action string, a *Annotation) {
		pass.ReportRelated(pos,
			[]Related{pass.Note(a.Pos, "noretain contract declared here")},
			"%s must not be retained, but is %s — copy it first",
			a.Desc, action)
	}
	t.run()
}
