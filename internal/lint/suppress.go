package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// directivePrefix introduces a suppression comment:
//
//	//gflint:ignore <check> <one-line justification>
//
// The directive suppresses findings of the named check on the same
// line (trailing comment) or on the line directly below (own-line
// comment above the flagged statement).
const directivePrefix = "//gflint:ignore"

// Directive is one parsed suppression comment.
type Directive struct {
	Check  string // analyzer name the directive targets
	Reason string // mandatory one-line justification
	Line   int
	File   string
	pos    token.Pos
}

// collectDirectives scans all comments for gflint:ignore directives,
// keyed by file and line. Malformed directives (missing check or
// reason) are kept with the zero Check/Reason so directiveProblems can
// report them.
func collectDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int][]Directive {
	out := make(map[string]map[int][]Directive)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				pos := fset.Position(c.Pos())
				d := Directive{Line: pos.Line, File: pos.Filename, pos: c.Pos()}
				if fields := strings.Fields(rest); len(fields) > 0 {
					d.Check = fields[0]
					d.Reason = strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
				}
				m := out[pos.Filename]
				if m == nil {
					m = make(map[int][]Directive)
					out[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], d)
			}
		}
	}
	return out
}

func (p *Package) directivesByFile(file string) (map[int][]Directive, bool) {
	m, ok := p.directives[file]
	return m, ok
}

// directiveKey identifies one well-formed directive for usage
// tracking (stale-suppression detection).
type directiveKey struct {
	File  string
	Line  int
	Check string
}

// suppressedBy resolves the directive in pkg covering the diagnostic —
// same check name, on the diagnostic's line or the line above — so Run
// can record that the directive earned its keep.
func suppressedBy(pkg *Package, d Diagnostic) (directiveKey, bool) {
	if pkg == nil {
		return directiveKey{}, false
	}
	byLine, ok := pkg.directivesByFile(d.File)
	if !ok {
		return directiveKey{}, false
	}
	for _, line := range []int{d.Line, d.Line - 1} {
		for _, dir := range byLine[line] {
			if dir.Check == d.Check && dir.Reason != "" {
				return directiveKey{File: dir.File, Line: dir.Line, Check: dir.Check}, true
			}
		}
	}
	return directiveKey{}, false
}

// staleDirectives reports well-formed directives whose check actually
// ran (was among the selected analyzers) but suppressed nothing on the
// covered lines. A stale directive means the hazard it excused is gone
// — or was never there — and the justification now misleads readers.
// Directives for checks outside the selected set are left alone, so a
// -checks subset run never calls a directive stale.
func staleDirectives(pkg *Package, ran map[string]bool, used map[directiveKey]bool) []Diagnostic {
	var out []Diagnostic
	for _, byLine := range pkg.directives {
		for _, dirs := range byLine {
			for _, dir := range dirs {
				if dir.Check == "" || dir.Reason == "" || !ran[dir.Check] {
					continue // malformed ones are reported by directiveProblems
				}
				if used[directiveKey{File: dir.File, Line: dir.Line, Check: dir.Check}] {
					continue
				}
				out = append(out, Diagnostic{
					Check:   "directive",
					File:    dir.File,
					Line:    dir.Line,
					Col:     pkg.Fset.Position(dir.pos).Column,
					Message: "stale suppression: " + dir.Check + " reports nothing here; delete the directive",
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return out
}

// directiveProblems reports malformed suppression directives: missing
// check name, unknown check name, or missing justification. These are
// emitted under check "directive" and cannot themselves be suppressed.
func directiveProblems(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, byLine := range pkg.directives {
		for _, dirs := range byLine {
			for _, dir := range dirs {
				var msg string
				switch {
				case dir.Check == "":
					msg = "suppression directive names no check: want //gflint:ignore <check> <reason>"
				case !known[dir.Check]:
					msg = "suppression directive names unknown check " + dir.Check
				case dir.Reason == "":
					msg = "suppression of " + dir.Check + " carries no justification"
				default:
					continue
				}
				out = append(out, Diagnostic{
					Check:   "directive",
					File:    dir.File,
					Line:    dir.Line,
					Col:     pkg.Fset.Position(dir.pos).Column,
					Message: msg,
				})
			}
		}
	}
	// The nested ranges above follow map order; Run's final sort keys
	// on position only, so order ties here (two directives on one
	// line) by message as well.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
	return out
}
