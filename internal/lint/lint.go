// Package lint is a stdlib-only static-analysis framework for this
// repository's determinism and correctness rules. It parses and
// typechecks packages with go/parser and go/types (no external
// dependencies, matching the module's zero-dependency style), runs a
// registry of analyzers over them, and reports file/line diagnostics.
//
// The analyzers encode the failure modes that have actually bitten
// this codebase: map-iteration-order nondeterminism in float sums,
// appends, trace/obs emission and RNG draws (maprange); wall-clock
// reads in simulation logic that must run on virtual time (wallclock);
// use of the shared global math/rand RNG (globalrand); and silently
// discarded error returns (errdrop).
//
// Findings can be suppressed with a directive comment on the flagged
// line or the line directly above it:
//
//	//gflint:ignore <check> <one-line justification>
//
// A directive must name the check and carry a justification; malformed
// directives are themselves reported (check "directive").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check. Run inspects a typechecked package via
// the Pass and reports findings with Pass.Report.
type Analyzer struct {
	// Name identifies the check in output and in suppression
	// directives (e.g. "maprange").
	Name string
	// Doc is a one-line description shown by gflint -list.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass)
}

// Analyzers returns the built-in analyzer registry in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapRangeAnalyzer,
		WallClockAnalyzer,
		GlobalRandAnalyzer,
		ErrDropAnalyzer,
	}
}

// AnalyzerByName resolves one registry entry; nil if unknown.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Diagnostic is one finding, located at a concrete file position.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Pass carries one analyzer's view of one typechecked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	diags *[]Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes (uses or defs).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// IsConst reports whether the expression has a compile-time constant
// value — order-insensitive by definition.
func (p *Pass) IsConst(e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, conversions, and
// indirect calls through function values.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.ObjectOf(fun).(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := p.ObjectOf(fun.Sel).(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsBuiltin reports whether the call invokes the named builtin.
func (p *Pass) IsBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == name
}

// Run executes the given analyzers over the packages, applies
// suppression directives, and returns the surviving diagnostics in
// stable (file, line, col, check) order. Malformed directives are
// appended as check "directive" findings.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Fset: pkg.Fset, Pkg: pkg, diags: &diags})
		}
		diags = append(diags, directiveProblems(pkg, Analyzers())...)
	}
	var out []Diagnostic
	seen := make(map[Diagnostic]bool, len(diags))
	for _, d := range diags {
		// Nested map ranges can charge one statement to two loops;
		// identical diagnostics collapse to one.
		if seen[d] {
			continue
		}
		seen[d] = true
		if d.Check != "directive" && suppressed(pkgsByFile(pkgs, d.File), d) {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return out
}

func pkgsByFile(pkgs []*Package, file string) *Package {
	for _, pkg := range pkgs {
		if _, ok := pkg.directivesByFile(file); ok {
			return pkg
		}
	}
	return nil
}
