// Package lint is a stdlib-only static-analysis framework for this
// repository's determinism and correctness rules. It parses and
// typechecks packages with go/parser and go/types (no external
// dependencies, matching the module's zero-dependency style), runs a
// registry of analyzers over them, and reports file/line diagnostics.
//
// The analyzers encode the failure modes that have actually bitten
// this codebase, plus the aliasing and concurrency contracts the
// incremental engine depends on:
//
//   - maprange: map-iteration-order nondeterminism in float sums,
//     appends, trace/obs emission and RNG draws;
//   - wallclock: wall-clock reads in simulation logic that must run
//     on virtual time;
//   - globalrand: use of the shared global math/rand RNG;
//   - errdrop: silently discarded error returns;
//   - retain: values covered by a //gflint:noretain contract escaping
//     into fields, globals, closures, channels, or returns;
//   - floatsum: float accumulation over slices whose element order
//     came from map iteration (the maprange bug class, one assignment
//     removed);
//   - rngorder: seeded RNG draws from goroutines, sort comparators,
//     or map-range bodies, which reorder the shared stream;
//   - lockcopy: by-value copies of structs containing sync mutexes;
//   - lockhold: locks held across blocking channel operations;
//   - scratchalias: functions that reuse a scratch slice ([:0] on a
//     field or global) and let an alias of it escape.
//
// Findings can be suppressed with a directive comment on the flagged
// line or the line directly above it:
//
//	//gflint:ignore <check> <one-line justification>
//
// A directive must name the check and carry a justification; malformed
// directives are themselves reported (check "directive"), as are stale
// directives whose check ran but matched nothing on the covered lines.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a typechecked package via
// the Pass and reports findings with Pass.Report.
type Analyzer struct {
	// Name identifies the check in output and in suppression
	// directives (e.g. "maprange").
	Name string
	// Doc is a one-line description shown by gflint -list.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass)
}

// Analyzers returns the built-in analyzer registry in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapRangeAnalyzer,
		WallClockAnalyzer,
		GlobalRandAnalyzer,
		ErrDropAnalyzer,
		RetainAnalyzer,
		FloatSumAnalyzer,
		RngOrderAnalyzer,
		LockCopyAnalyzer,
		LockHoldAnalyzer,
		ScratchAliasAnalyzer,
	}
}

// AnalyzerByName resolves one registry entry; nil if unknown.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Related is a secondary position attached to a diagnostic — e.g. the
// declaration site of the //gflint:noretain annotation a retain
// finding enforces, or the Lock() a blocked channel op still holds.
type Related struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// Diagnostic is one finding, located at a concrete file position.
type Diagnostic struct {
	Check   string    `json:"check"`
	File    string    `json:"file"`
	Line    int       `json:"line"`
	Col     int       `json:"col"`
	Message string    `json:"message"`
	Related []Related `json:"related,omitempty"`
}

func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
	for _, r := range d.Related {
		fmt.Fprintf(&b, "\n\t%s:%d:%d: %s", r.File, r.Line, r.Col, r.Message)
	}
	return b.String()
}

// key is the comparable identity of a diagnostic, used for
// deduplication (Related carries no identity: two analyses reporting
// the same position and message are the same finding).
type diagKey struct {
	Check   string
	File    string
	Line    int
	Col     int
	Message string
}

func (d Diagnostic) key() diagKey {
	return diagKey{d.Check, d.File, d.Line, d.Col, d.Message}
}

// Pass carries one analyzer's view of one typechecked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	diags *[]Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.ReportRelated(pos, nil, format, args...)
}

// ReportRelated records a finding at pos with secondary positions.
func (p *Pass) ReportRelated(pos token.Pos, related []Related, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
		Related: related,
	})
}

// Note builds a Related entry for pos.
func (p *Pass) Note(pos token.Pos, format string, args ...any) Related {
	position := p.Fset.Position(pos)
	return Related{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	}
}

// TypeOf returns the type of an expression, nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes (uses or defs).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// IsConst reports whether the expression has a compile-time constant
// value — order-insensitive by definition.
func (p *Pass) IsConst(e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, conversions, and
// indirect calls through function values.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.ObjectOf(fun).(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := p.ObjectOf(fun.Sel).(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsBuiltin reports whether the call invokes the named builtin.
func (p *Pass) IsBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == name
}

// Run executes the given analyzers over the packages in passes:
//
//  1. every analyzer over every package (annotation facts were already
//     collected at load time, before any analyzer ran);
//  2. malformed suppression directives and malformed //gflint:noretain
//     annotations, as check "directive";
//  3. deduplication, then suppression — recording which directives
//     actually matched a finding;
//  4. stale-directive reporting: a well-formed directive whose check
//     was among the analyzers that ran but suppressed nothing.
//
// Surviving diagnostics come back in stable (file, line, col, check)
// order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Fset: pkg.Fset, Pkg: pkg, diags: &diags})
		}
		diags = append(diags, directiveProblems(pkg, Analyzers())...)
		if pkg.annot != nil {
			diags = append(diags, pkg.annot.problems[pkg.Path]...)
		}
	}

	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}

	var out []Diagnostic
	seen := make(map[diagKey]bool, len(diags))
	used := make(map[directiveKey]bool)
	for _, d := range diags {
		// Nested map ranges can charge one statement to two loops;
		// identical diagnostics collapse to one.
		if seen[d.key()] {
			continue
		}
		seen[d.key()] = true
		if d.Check != "directive" {
			if dir, ok := suppressedBy(pkgsByFile(pkgs, d.File), d); ok {
				used[dir] = true
				continue
			}
		}
		out = append(out, d)
	}
	for _, pkg := range pkgs {
		out = append(out, staleDirectives(pkg, ran, used)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return out
}

func pkgsByFile(pkgs []*Package, file string) *Package {
	for _, pkg := range pkgs {
		if _, ok := pkg.directivesByFile(file); ok {
			return pkg
		}
	}
	return nil
}
