package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockCopyAnalyzer flags by-value copies of structs containing
// sync.Mutex or sync.RWMutex: by-value parameters, results, and
// receivers; assignments and returns of addressable lock-carrying
// expressions; range value variables over slices of them; and
// lock-carrying arguments passed by value. A copied mutex forks the
// lock state — both copies think they own (or don't own) the lock —
// which is exactly the hazard the retry paths about to grow more
// concurrency cannot afford.
var LockCopyAnalyzer = &Analyzer{
	Name: "lockcopy",
	Doc:  "by-value copies of structs containing sync.Mutex or sync.RWMutex (parameters, assignments, ranges, returns, call arguments)",
	Run:  runLockCopy,
}

func runLockCopy(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				checkLockSignature(pass, v.Recv, v.Type)
			case *ast.FuncLit:
				checkLockSignature(pass, nil, v.Type)
			case *ast.AssignStmt:
				if len(v.Lhs) == len(v.Rhs) {
					for _, rhs := range v.Rhs {
						checkLockCopyExpr(pass, rhs, "assignment copies")
					}
				}
			case *ast.RangeStmt:
				if v.Value != nil {
					if lock := lockIn(pass.TypeOf(v.Value)); lock != "" {
						pass.Report(v.Value.Pos(),
							"range value variable copies a struct containing %s each iteration; range over indices or pointers", lock)
					}
				}
			case *ast.ReturnStmt:
				for _, r := range v.Results {
					checkLockCopyExpr(pass, r, "return copies")
				}
			case *ast.CallExpr:
				// Conversions are CallExprs too; T(x) copies like a call.
				for _, a := range v.Args {
					checkLockCopyExpr(pass, a, "argument copies")
				}
			}
			return true
		})
	}
}

// checkLockSignature flags by-value lock-carrying receivers,
// parameters, and results in a function signature.
func checkLockSignature(pass *Pass, recv *ast.FieldList, ftype *ast.FuncType) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypeOf(field.Type)
			if lock := lockIn(t); lock != "" {
				pass.Report(field.Type.Pos(),
					"%s passes a struct containing %s by value; use a pointer", kind, lock)
			}
		}
	}
	check(recv, "receiver")
	check(ftype.Params, "parameter")
	check(ftype.Results, "result")
}

// checkLockCopyExpr flags an addressable lock-carrying expression used
// where its value is copied. Composite literals and function results
// are not addressable — those are first initializations, not copies of
// a live lock.
func checkLockCopyExpr(pass *Pass, e ast.Expr, what string) {
	if !addressableExpr(pass, e) {
		return
	}
	if lock := lockIn(pass.TypeOf(e)); lock != "" {
		pass.Report(e.Pos(), "%s a struct containing %s; use a pointer", what, lock)
	}
}

// lockIn reports the mutex type a value of t would copy, "" for none.
// Pointers stop the search: copying a pointer shares the lock.
func lockIn(t types.Type) string {
	return lockInRec(t, make(map[types.Type]bool))
}

func lockInRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex":
				return "sync." + obj.Name()
			}
		}
		return lockInRec(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := lockInRec(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockInRec(u.Elem(), seen)
	}
	return ""
}

// addressableExpr approximates Go addressability: an existing variable
// or a projection of one — the cases where reading the expression
// copies a live value rather than initializing a new one.
func addressableExpr(pass *Pass, e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		_, ok := pass.ObjectOf(v).(*types.Var)
		return ok
	case *ast.SelectorExpr:
		if sel, ok := pass.Pkg.Info.Selections[v]; ok {
			if sel.Kind() != types.FieldVal {
				return false
			}
			if _, isPtr := typeUnder(pass.TypeOf(v.X)).(*types.Pointer); isPtr {
				return true
			}
			return addressableExpr(pass, v.X)
		}
		// package-qualified variable (pkg.Var)
		_, ok := pass.ObjectOf(v.Sel).(*types.Var)
		return ok
	case *ast.IndexExpr:
		switch typeUnder(pass.TypeOf(v.X)).(type) {
		case *types.Slice, *types.Pointer:
			return true
		case *types.Array:
			return addressableExpr(pass, v.X)
		}
		return false
	case *ast.StarExpr:
		return true
	}
	return false
}

// LockHoldAnalyzer flags blocking channel operations — sends,
// receives, selects without a default, ranges over channels — executed
// while a sync mutex is held. A goroutine parked on a channel keeps
// the lock, so every other goroutine needing it parks too; with the
// channel's peer among them, that is a deadlock. The scan is a linear,
// intra-procedural walk per function: X.Lock()/X.RLock() marks X held,
// X.Unlock()/X.RUnlock() releases, defer X.Unlock() keeps X held to
// the end of the function (which is precisely why a blocking op after
// it is flagged). Function literals start with no locks held.
var LockHoldAnalyzer = &Analyzer{
	Name: "lockhold",
	Doc:  "blocking channel operations (send, receive, empty-default select, channel range) while a sync lock is held",
	Run:  runLockHold,
}

func runLockHold(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				scanLockHold(pass, body, make(map[string]token.Pos))
			}
			return true
		})
	}
}

// scanLockHold walks one block linearly, tracking held locks by the
// printed form of their receiver expression. Branch bodies get cloned
// sets (a lock taken in one arm is not held after the branch; a lock
// released in one arm is conservatively still held after — early
// returns make that the common safe pattern).
func scanLockHold(pass *Pass, block *ast.BlockStmt, held map[string]token.Pos) {
	for _, stmt := range block.List {
		lockHoldStmt(pass, stmt, held)
	}
}

func lockHoldStmt(pass *Pass, stmt ast.Stmt, held map[string]token.Pos) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if target, op, ok := lockCall(pass, s.X); ok {
			switch op {
			case "Lock", "RLock":
				if _, already := held[target]; !already {
					held[target] = s.Pos()
				}
			case "Unlock", "RUnlock":
				delete(held, target)
			}
			return
		}
		reportBlockingExprs(pass, s.X, held)
	case *ast.DeferStmt:
		// defer X.Unlock() means X stays held for the REST of the
		// function — that is the point of tracking it. Other deferred
		// calls run at exit; their receives are out of scope here.
	case *ast.SendStmt:
		reportHeld(pass, s.Arrow, "channel send", held)
		reportBlockingExprs(pass, s.Value, held)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			reportBlockingExprs(pass, r, held)
		}
	case *ast.DeclStmt:
		reportBlockingExprs(pass, s.Decl, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			reportBlockingExprs(pass, r, held)
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			reportBlockingExprs(pass, a, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			lockHoldStmt(pass, s.Init, held)
		}
		reportBlockingExprs(pass, s.Cond, held)
		scanLockHold(pass, s.Body, cloneHeld(held))
		if s.Else != nil {
			lockHoldStmt(pass, s.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lockHoldStmt(pass, s.Init, held)
		}
		if s.Cond != nil {
			reportBlockingExprs(pass, s.Cond, held)
		}
		scanLockHold(pass, s.Body, cloneHeld(held))
	case *ast.RangeStmt:
		if _, isChan := typeUnder(pass.TypeOf(s.X)).(*types.Chan); isChan {
			reportHeld(pass, s.Pos(), "range over a channel", held)
		}
		scanLockHold(pass, s.Body, cloneHeld(held))
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			reportHeld(pass, s.Pos(), "select with no default case", held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				branch := cloneHeld(held)
				for _, st := range cc.Body {
					lockHoldStmt(pass, st, branch)
				}
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			lockHoldStmt(pass, s.Init, held)
		}
		if s.Tag != nil {
			reportBlockingExprs(pass, s.Tag, held)
		}
		lockHoldCases(pass, s.Body, held)
	case *ast.TypeSwitchStmt:
		lockHoldCases(pass, s.Body, held)
	case *ast.BlockStmt:
		scanLockHold(pass, s, held)
	case *ast.LabeledStmt:
		lockHoldStmt(pass, s.Stmt, held)
	}
}

func lockHoldCases(pass *Pass, body *ast.BlockStmt, held map[string]token.Pos) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			branch := cloneHeld(held)
			for _, st := range cc.Body {
				lockHoldStmt(pass, st, branch)
			}
		}
	}
}

func cloneHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// lockCall resolves X.Lock / X.RLock / X.Unlock / X.RUnlock calls on
// sync types to (printed receiver, method).
func lockCall(pass *Pass, e ast.Expr) (target, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

// reportBlockingExprs flags channel receives (<-ch) inside an
// expression evaluated while locks are held. Function literals are
// skipped: their bodies run later, with their own lock discipline.
func reportBlockingExprs(pass *Pass, n ast.Node, held map[string]token.Pos) {
	if len(held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			reportHeld(pass, u.Pos(), "channel receive", held)
		}
		return true
	})
}

// reportHeld emits one finding per blocking operation, naming every
// held lock (sorted for stable output) with its acquisition site.
func reportHeld(pass *Pass, pos token.Pos, what string, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	names := make([]string, 0, len(held))
	for name := range held {
		names = append(names, name)
	}
	sort.Strings(names)
	related := make([]Related, 0, len(names))
	for _, name := range names {
		related = append(related, pass.Note(held[name], "%s acquired here", name))
	}
	list := names[0]
	for _, n := range names[1:] {
		list += ", " + n
	}
	pass.ReportRelated(pos, related,
		"%s while holding %s; a parked goroutine keeps the lock and can deadlock its peer — release before blocking",
		what, list)
}
