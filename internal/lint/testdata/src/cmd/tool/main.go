// Command tool exercises the wallclock cmd/ allowlist: entry points
// may read the wall clock.
package main

import (
	"fmt"
	"time"
)

func main() {
	fmt.Println(time.Now())
}
