// Command tool exercises the cmd/ scope rules: wallclock and the
// terminal printers are allowed, but a silently dropped error is
// still errdrop's business.
package main

import (
	"fmt"
	"os"
	"time"
)

func main() {
	fmt.Println(time.Now())
	fmt.Fprintln(os.Stderr, "starting")
	os.Remove("state.tmp")
}
