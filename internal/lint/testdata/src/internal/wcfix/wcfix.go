// Package wcfix exercises the wallclock analyzer: every time.Now /
// Sleep / Since here is a finding (the package is not allowlisted).
package wcfix

import "time"

func BadMeasure() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}

// FuncValue stores a wall-clock reader without calling it; still a
// finding (the value escapes into sim logic).
func FuncValue() func() time.Time {
	return time.Now
}

// DurationMath only manipulates durations, never reads the clock.
func DurationMath(d time.Duration) time.Duration {
	return d * 2
}
