//go:build !unix

package tagpair

// Arm reports whether the platform hook is armed.
func Arm() bool { return false }
