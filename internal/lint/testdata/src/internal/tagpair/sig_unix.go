//go:build unix

// Package tagpair declares the same function under mutually exclusive
// build constraints; the loader must pick exactly one file or
// typechecking fails with a duplicate declaration.
package tagpair

// Arm reports whether the platform hook is armed.
func Arm() bool { return true }
