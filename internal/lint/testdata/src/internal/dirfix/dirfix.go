// Package dirfix exercises //gflint:ignore against the dataflow
// analyzers: every finding below carries a justified suppression, so
// this package must produce zero diagnostics. If an analyzer
// regresses and stops reporting, its directive goes stale and the
// stale-suppression check resurfaces it — the fixture is self-arming.
package dirfix

import (
	"math/rand"
	"sync"
)

type state struct {
	//gflint:noretain fixture contract
	items []int
}

var hold []int

func retainIgnored(st *state) {
	//gflint:ignore retain fixture demonstrates a justified suppression
	hold = st.items
}

func floatsumIgnored(m map[string]float64) float64 {
	var vals []float64
	for _, v := range m {
		//gflint:ignore maprange order documented as irrelevant here
		vals = append(vals, v)
	}
	var total float64
	for _, v := range vals {
		//gflint:ignore floatsum tolerance below accepts any rounding
		total += v
	}
	return total
}

func rngorderIgnored(rng *rand.Rand, done chan struct{}) {
	go func() {
		//gflint:ignore rngorder single goroutine in this fixture, order fixed
		_ = rng.Float64()
		close(done)
	}()
}

type guarded struct {
	mu sync.Mutex
	n  int
}

func lockcopyIgnored(g *guarded) {
	//gflint:ignore lockcopy copy of a never-locked prototype
	cp := *g
	cp.n++
}

func lockholdIgnored(g *guarded, ch chan int) {
	g.mu.Lock()
	//gflint:ignore lockhold the peer never blocks in this fixture
	ch <- g.n
	g.mu.Unlock()
}

var buf []int

func scratchIgnored(xs []int) []int {
	s := buf[:0]
	s = append(s, xs...)
	buf = s
	//gflint:ignore scratchalias caller consumes before the next call
	return s
}
