// Package retainpolicy is the fixture policy that violates the
// noretain contract declared in another package: the annotation on
// retainfix.State.Jobs travels with the field object, so a retaining
// Decide in a different package is still caught.
package retainpolicy

import "repro/internal/retainfix"

// Sticky keeps the round's job slice across rounds — the bug.
type Sticky struct {
	lastJobs []int
}

// Decide stores st.Jobs in a field that outlives the round.
func (p *Sticky) Decide(st *retainfix.State) int {
	p.lastJobs = st.Jobs
	return len(p.lastJobs)
}

// Careful copies before keeping; clean.
type Careful struct {
	lastJobs []int
}

// Decide stores a forced copy of st.Jobs.
func (p *Careful) Decide(st *retainfix.State) int {
	p.lastJobs = append(p.lastJobs[:0:0], st.Jobs...)
	return len(p.lastJobs)
}
