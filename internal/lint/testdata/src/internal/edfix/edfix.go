// Package edfix exercises errdrop: bare calls that return an error
// are findings; explicit discards, defers, handled errors, and
// never-failing in-memory writers are not.
package edfix

import (
	"fmt"
	"os"
	"strings"
)

func BadDrop(name string) {
	os.Remove(name)
}

func ExplicitDiscard(name string) {
	_ = os.Remove(name)
}

func DeferredClose(f *os.File) {
	defer f.Close()
}

func Handled(name string) error {
	if err := os.Remove(name); err != nil {
		return err
	}
	return nil
}

func MemWriter() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x=%d", 1)
	return b.String()
}
