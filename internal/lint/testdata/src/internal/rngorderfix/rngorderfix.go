// Package rngorderfix exercises rngorder: draws from a seeded RNG
// stream inside contexts whose execution order is not the program
// order, which silently reassigns samples between runs.
package rngorderfix

import (
	"math/rand"
	"sort"

	"repro/internal/profiler"
)

// BadGoroutine draws on the scheduler's clock.
func BadGoroutine(rng *rand.Rand, done chan struct{}) {
	go func() {
		_ = rng.Float64()
		close(done)
	}()
}

// BadComparator draws inside a sort comparator; the comparison
// sequence depends on the input permutation.
func BadComparator(rng *rand.Rand, xs []int) {
	sort.Slice(xs, func(i, j int) bool {
		return rng.Float64() < 0.5
	})
}

// BadMapRange draws once per map iteration; which key gets which
// sample follows the map.
func BadMapRange(rng *rand.Rand, m map[string]int) int {
	n := 0
	for range m {
		n += rng.Intn(3)
	}
	return n
}

// BadProfilerGoroutine consumes the shared profiler stream from a
// goroutine.
func BadProfilerGoroutine(p *profiler.Profiler, done chan struct{}) {
	go func() {
		p.ProbeAll(1)
		close(done)
	}()
}

// DrawOutsideOK draws in program order and hands the value in.
func DrawOutsideOK(rng *rand.Rand, xs []float64) {
	jitter := rng.Float64()
	go func() {
		_ = jitter
	}()
	for i := range xs {
		xs[i] = jitter
	}
}

// SliceRangeOK draws inside a slice range — program order.
func SliceRangeOK(rng *rand.Rand, xs []float64) {
	for i := range xs {
		xs[i] = rng.Float64()
	}
}
