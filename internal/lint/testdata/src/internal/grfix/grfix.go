// Package grfix exercises globalrand: top-level math/rand calls hit
// the shared global RNG; a seeded local *rand.Rand is fine.
package grfix

import "math/rand"

func BadGlobal() int {
	return rand.Intn(6)
}

func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

func SeededLocal(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}
