// Package annotfix exercises malformed //gflint:noretain
// declarations; every annotation below is reported under check
// "directive" instead of silently doing nothing.
package annotfix

type base struct{}

// Wrapper puts the annotation on an embedded field, which has no
// explicit name to bind the contract to.
type Wrapper struct {
	//gflint:noretain embedded fields are ambiguous
	base
}

// VoidFunc has no result for a bare annotation to cover.
//
//gflint:noretain
func VoidFunc() {}

// WrongName names a parameter that does not exist.
//
//gflint:noretain nosuchparam
func WrongName(buf []int) []int { return buf }

//gflint:noretain a var declaration is neither a field nor a function
var Floating int
