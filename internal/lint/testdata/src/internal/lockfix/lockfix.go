// Package lockfix exercises lockcopy (by-value copies of
// mutex-bearing structs) and lockhold (blocking channel operations
// with a lock held).
package lockfix

import "sync"

// Counter carries a mutex; copying it forks the lock state.
type Counter struct {
	mu sync.Mutex
	n  int
}

// BadValueParam receives the lock by value.
func BadValueParam(c Counter) int { return c.n }

// BadValueReceiver copies the lock on every call.
func (c Counter) BadValueReceiver() int { return c.n }

// BadAssign copies a live lock into a local.
func BadAssign(c *Counter) {
	cp := *c
	cp.n++
}

// BadRange copies the lock once per iteration.
func BadRange(cs []Counter) int {
	total := 0
	for _, c := range cs {
		total += c.n
	}
	return total
}

// BadArg passes a live lock by value.
func BadArg(c *Counter) int {
	return BadValueParam(*c)
}

// PointerOK shares the lock through a pointer everywhere.
func PointerOK(cs []*Counter) int {
	total := 0
	for _, c := range cs {
		c.mu.Lock()
		total += c.n
		c.mu.Unlock()
	}
	return total
}

// BadSendHeld sends on a channel while holding the lock.
func (c *Counter) BadSendHeld(ch chan int) {
	c.mu.Lock()
	ch <- c.n
	c.mu.Unlock()
}

// BadRecvHeld receives while holding the lock.
func (c *Counter) BadRecvHeld(ch chan int) {
	c.mu.Lock()
	c.n = <-ch
	c.mu.Unlock()
}

// BadSelectHeld parks in a no-default select with the lock held (the
// deferred unlock keeps it held to function exit).
func (c *Counter) BadSelectHeld(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case v := <-ch:
		c.n = v
	}
}

// ReleaseFirstOK unlocks before blocking.
func (c *Counter) ReleaseFirstOK(ch chan int) {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	ch <- n
}

// TrySelectOK polls with a default case; never parks.
func (c *Counter) TrySelectOK(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case v := <-ch:
		c.n = v
	default:
	}
}
