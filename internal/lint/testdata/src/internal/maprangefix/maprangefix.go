// Package maprangefix exercises every maprange trigger and every
// exemption. Functions prefixed Bad produce findings; the rest are
// clean.
package maprangefix

import (
	"math/rand"
	"sort"

	"repro/internal/obs"
	"repro/internal/profiler"
	"repro/internal/trace"
)

func BadFloatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

func BadAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func BadAppendDerived(m map[string]int) []int {
	var out []int
	for k := range m {
		v := m[k] * 2
		out = append(out, v)
	}
	return out
}

func BadEmission(o *obs.Observer, m map[string]float64) {
	for u, v := range m {
		o.SetShare(u, v, v)
	}
}

func BadTrace(m map[string]int) {
	for k := range m {
		trace.Emit(k)
	}
}

func BadRand(m map[string]int, rng *rand.Rand) int {
	n := 0
	for range m {
		n += rng.Intn(10)
	}
	return n
}

func BadProfiler(p *profiler.Profiler, m map[int]int) {
	for id := range m {
		p.Observe(id, 0)
	}
}

func KeyedWrite(m map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range m {
		out[k] += v
	}
	return out
}

func KeyedAppend(m map[string][]int) map[string][]int {
	out := make(map[string][]int)
	for k, vs := range m {
		out[k] = append(out[k], vs...)
	}
	return out
}

func CollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func ConstAccum(m map[string]int) float64 {
	var n float64
	for range m {
		n += 1.5
	}
	return n
}

func IntAccum(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

func LoopLocalAccum(m map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range m {
		acc := 0.0
		acc += v * 2
		out[k] = acc
	}
	return out
}

func ProfilerRead(p *profiler.Profiler, m map[int]int) int {
	n := 0
	for id := range m {
		if _, ok := p.Rate(id); ok {
			n++
		}
	}
	return n
}
