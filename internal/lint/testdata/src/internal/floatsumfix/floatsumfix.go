// Package floatsumfix exercises floatsum: float accumulation over
// slices whose element order was set by a map iteration one dataflow
// step earlier. The filling appends are maprange's findings; the
// downstream sums are floatsum's.
package floatsumfix

import "sort"

// BadCollectThenSum sums a slice filled in map order.
func BadCollectThenSum(m map[string]float64) float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	var total float64
	for _, v := range vals {
		total += v
	}
	return total
}

// BadAliasSum sums through a local alias of a map-ordered slice.
func BadAliasSum(m map[string]float64) float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	view := vals
	var total float64
	for _, v := range view {
		total += v
	}
	return total
}

// BadSumCall hands a map-ordered slice to a sum-shaped reducer.
func BadSumCall(m map[string]float64) float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	return sum(vals)
}

func sum(vs []float64) float64 {
	var t float64
	for _, v := range vs {
		t += v
	}
	return t
}

// SortedOK sorts between collecting and summing; clean for both
// maprange and floatsum.
func SortedOK(m map[string]float64) float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	var total float64
	for _, v := range vals {
		total += v
	}
	return total
}

// IntSumOK accumulates ints over a map-ordered slice — exact, so
// order-insensitive and exempt from floatsum.
func IntSumOK(m map[string]int) int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	n := 0
	for _, v := range vals {
		n += v
	}
	return n
}
