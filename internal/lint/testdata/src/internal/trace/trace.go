// Package trace is a stub of the real trace package: maprange matches
// emission calls by import path, so the fixture module mirrors it.
package trace

// Emit records one event.
func Emit(args ...any) {}
