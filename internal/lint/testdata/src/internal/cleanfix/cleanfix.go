// Package cleanfix is the corpus's clean file: deterministic idioms
// only, so no analyzer may report anything here.
package cleanfix

import (
	"math/rand"
	"sort"
)

// Fractions normalizes values over sorted keys.
func Fractions(m map[string]float64) map[string]float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	out := make(map[string]float64, len(m))
	if total <= 0 {
		return out
	}
	for _, k := range keys {
		out[k] = m[k] / total
	}
	return out
}

// Sample draws from a caller-seeded RNG outside any map iteration.
func Sample(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}
