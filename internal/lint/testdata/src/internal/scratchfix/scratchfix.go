// Package scratchfix exercises scratchalias: functions that reuse a
// long-lived backing array via buf[:0] while also letting an alias of
// it escape the call.
package scratchfix

// Pool owns a per-call scratch slice (deliberately unannotated: the
// analyzer detects the reuse pattern itself).
type Pool struct {
	buf []int
}

// BadReturnAlias reuses p.buf and returns a view of it.
func (p *Pool) BadReturnAlias(xs []int) []int {
	out := p.buf[:0]
	for _, x := range xs {
		if x > 0 {
			out = append(out, x)
		}
	}
	p.buf = out
	return out
}

// CopyOK reuses p.buf but returns a fresh copy.
func (p *Pool) CopyOK(xs []int) []int {
	out := p.buf[:0]
	for _, x := range xs {
		if x > 0 {
			out = append(out, x)
		}
	}
	p.buf = out
	res := make([]int, len(out))
	copy(res, out)
	return res
}

var scratch []int

// BadGlobalScratch reuses package-level scratch and sends an alias
// to another goroutine.
func BadGlobalScratch(xs []int, ch chan []int) {
	s := scratch[:0]
	s = append(s, xs...)
	scratch = s
	ch <- s
}

// View reuses p.buf and returns it under an explicit noretain
// contract — the obligation moves to the callers.
//
//gflint:noretain
func (p *Pool) View(xs []int) []int {
	out := p.buf[:0]
	out = append(out, xs...)
	p.buf = out
	return out
}

var kept []int

// BadViewCaller retains View's contracted result (a retain finding,
// proving the handoff from scratchalias to retain).
func BadViewCaller(p *Pool) {
	kept = p.View(nil)
}

// ZeroCapOK caps capacity at zero: every append reallocates, so this
// is a copy, not reuse.
func ZeroCapOK(p *Pool) []int {
	return append(p.buf[:0:0], p.buf...)
}
