// Package retainfix exercises //gflint:noretain contracts in the
// declaring package: annotated struct fields, annotated parameters,
// and annotated-result functions. Functions prefixed Bad produce
// retain findings; the rest demonstrate the sanctioned copy idioms.
package retainfix

// State is the fixture mirror of core.RoundState.
type State struct {
	//gflint:noretain backing array reused every round
	Jobs []int

	Tickets map[string]float64
}

// Engine owns a per-round scratch buffer.
type Engine struct {
	jobsBuf []int //gflint:noretain per-round scratch
}

var leaked []int

// BadStoreGlobal parks the annotated field in a package-level var.
func BadStoreGlobal(st *State) {
	leaked = st.Jobs
}

// BadAlias retains through a local alias of a reslice.
func BadAlias(st *State) {
	view := st.Jobs[1:]
	leaked = view
}

// BadReturn returns the annotated field without a copy.
func BadReturn(st *State) []int {
	return st.Jobs
}

// BadChannel sends the annotated field to another goroutine.
func BadChannel(st *State, ch chan []int) {
	ch <- st.Jobs
}

// BadGoroutine hands the annotated field to a spawned goroutine.
func BadGoroutine(st *State) {
	go func(js []int) { _ = js }(st.Jobs)
}

// BadCapture closes over the annotated field in a goroutine.
func BadCapture(st *State) {
	go func() { _ = len(st.Jobs) }()
}

// BadParamRetain violates its own declared parameter contract.
//
//gflint:noretain buf
func BadParamRetain(buf []int) {
	leaked = buf
}

// Scratch returns the engine's internal buffer; the annotation passes
// the retention obligation to the callers.
//
//gflint:noretain
func (e *Engine) Scratch() []int {
	e.jobsBuf = e.jobsBuf[:0]
	return e.jobsBuf
}

// BadScratchCaller retains an annotated-result value.
func BadScratchCaller(e *Engine) {
	leaked = e.Scratch()
}

// CopyOK copies before retaining.
func CopyOK(st *State) {
	cp := make([]int, len(st.Jobs))
	copy(cp, st.Jobs)
	leaked = cp
}

// ZeroCapOK copies via the append-to-x[:0:0] idiom.
func ZeroCapOK(st *State) []int {
	return append(st.Jobs[:0:0], st.Jobs...)
}

// ElementOK retains an element; the contract covers the backing
// array, not what it points at.
func ElementOK(st *State) int {
	return st.Jobs[0]
}

// ConsumeOK reads the field in place — no retention.
func ConsumeOK(st *State) int {
	total := 0
	for _, j := range st.Jobs {
		total += j
	}
	return total
}
