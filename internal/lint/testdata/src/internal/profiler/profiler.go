// Package profiler is a stub of the real profiler: Observe and
// ProbeAll consume a shared RNG stream, Rate is a pure read.
package profiler

// Profiler is a stub estimator.
type Profiler struct{}

// Observe records one noisy measurement (consumes the RNG).
func (p *Profiler) Observe(id int, gen int) {}

// ProbeAll measures every generation (consumes the RNG).
func (p *Profiler) ProbeAll(id int) {}

// Rate returns an estimate without touching the RNG.
func (p *Profiler) Rate(id int) (float64, bool) { return 0, false }
