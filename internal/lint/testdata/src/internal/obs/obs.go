// Package obs is a stub of the real observability package. It doubles
// as the wallclock-allowlist fixture: obs may read the wall clock.
package obs

import "time"

// Observer is a stub metrics sink.
type Observer struct{}

// SetShare refreshes a per-user gauge pair.
func (o *Observer) SetShare(user string, used, fair float64) {}

// Stamp reads the wall clock; allowlisted, so not a finding.
func Stamp() time.Time { return time.Now() }
