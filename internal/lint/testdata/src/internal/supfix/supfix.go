// Package supfix exercises the suppression directive: justified
// directives silence a finding; malformed ones are themselves
// reported under check "directive".
package supfix

import "os"

func SuppressedAbove(name string) {
	//gflint:ignore errdrop fixture demonstrates a justified suppression
	os.Remove(name)
}

func SuppressedSameLine(name string) {
	os.Remove(name) //gflint:ignore errdrop trailing-comment form
}

func MissingReason(name string) {
	//gflint:ignore errdrop
	os.Remove(name)
}

func UnknownCheck(name string) {
	//gflint:ignore nosuchcheck the named check does not exist
	_ = os.Remove(name)
}

//gflint:ignore
func MissingCheckName() {}

func StaleDirective(name string) error {
	//gflint:ignore errdrop nothing below actually drops the error
	return os.Remove(name)
}
