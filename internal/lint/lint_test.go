package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureDir is the corpus module analyzed by the golden test.
func fixtureDir(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// repoRoot is the real module, target of the mutation tests.
func repoRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func runOver(t *testing.T, cfg LoadConfig, patterns ...string) []Diagnostic {
	t.Helper()
	loader, err := NewLoader(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		t.Fatal(err)
	}
	return Run(pkgs, Analyzers())
}

// TestLoaderRespectsBuildConstraints pins the loader's build-tag
// filtering: internal/tagpair declares the same function in a
// //go:build unix file and a //go:build !unix file, so loading it
// only typechecks if exactly one of the pair is selected.
func TestLoaderRespectsBuildConstraints(t *testing.T) {
	loader, err := NewLoader(LoadConfig{Dir: fixtureDir(t)})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./internal/tagpair")
	if err != nil {
		t.Fatalf("build-tag pair failed to load: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("want 1 package with 1 selected file, got %d packages", len(pkgs))
	}
}

// TestGoldenCorpus locks the analyzer suite's output over the fixture
// module: every analyzer's positive cases, the suppression directive
// (justified, unjustified, malformed), and the clean file.
func TestGoldenCorpus(t *testing.T) {
	root := fixtureDir(t)
	diags := runOver(t, LoadConfig{Dir: root}, "./...")

	var b strings.Builder
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.File)
		if err != nil {
			t.Fatal(err)
		}
		d.File = filepath.ToSlash(rel)
		for i := range d.Related {
			rrel, err := filepath.Rel(root, d.Related[i].File)
			if err != nil {
				t.Fatal(err)
			}
			d.Related[i].File = filepath.ToSlash(rrel)
		}
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	got := b.String()

	want, err := os.ReadFile("testdata/golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("corpus output diverged from testdata/golden.txt\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	for _, d := range diags {
		if strings.Contains(d.File, "cleanfix") {
			t.Errorf("clean fixture produced a finding: %s", d)
		}
	}
	checks := make(map[string]bool)
	for _, d := range diags {
		checks[d.Check] = true
	}
	for _, want := range []string{
		"maprange", "wallclock", "globalrand", "errdrop", "directive",
		"retain", "floatsum", "rngorder", "lockcopy", "lockhold", "scratchalias",
	} {
		if !checks[want] {
			t.Errorf("corpus exercises no %s finding", want)
		}
	}
}

// TestDirectiveFixtureClean pins the //gflint:ignore interaction with
// the dataflow analyzers: every finding in dirfix carries a justified
// suppression, so the package must produce nothing — and because a
// directive whose check reports nothing goes stale (a finding), this
// also proves each suppressed analyzer still fires there.
func TestDirectiveFixtureClean(t *testing.T) {
	diags := runOver(t, LoadConfig{Dir: fixtureDir(t)}, "./internal/dirfix")
	if len(diags) != 0 {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString(d.String())
			b.WriteString("\n")
		}
		t.Fatalf("dirfix should be fully suppressed, got:\n%s", b.String())
	}
}

// TestCleanFixtureStandalone double-checks the zero-findings path
// (and the CLI's zero exit) on the clean package alone.
func TestCleanFixtureStandalone(t *testing.T) {
	if diags := runOver(t, LoadConfig{Dir: fixtureDir(t)}, "./internal/cleanfix"); len(diags) != 0 {
		t.Fatalf("clean fixture: %v", diags)
	}
	var out, errb bytes.Buffer
	if code := Main([]string{"-C", fixtureDir(t), "./internal/cleanfix"}, &out, &errb); code != ExitClean {
		t.Fatalf("CLI exit %d on clean package, want %d (stderr: %s)", code, ExitClean, errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("CLI wrote %q for a clean package", out.String())
	}
}

// TestCLI covers exit codes and the JSON output mode end to end.
func TestCLI(t *testing.T) {
	root := fixtureDir(t)

	var out, errb bytes.Buffer
	if code := Main([]string{"-C", root, "./..."}, &out, &errb); code != ExitFindings {
		t.Fatalf("exit %d over corpus, want %d (stderr: %s)", code, ExitFindings, errb.String())
	}
	if !strings.Contains(out.String(), "maprange") || !strings.Contains(out.String(), "finding(s)") {
		t.Fatalf("text output missing findings summary:\n%s", out.String())
	}

	out.Reset()
	if code := Main([]string{"-C", root, "-json", "./..."}, &out, &errb); code != ExitFindings {
		t.Fatalf("json exit %d, want %d", code, ExitFindings)
	}
	var diags []Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("JSON output does not parse: %v\n%s", err, out.String())
	}
	if len(diags) == 0 || diags[0].Check == "" || diags[0].Line == 0 {
		t.Fatalf("JSON diagnostics incomplete: %+v", diags)
	}

	out.Reset()
	if code := Main([]string{"-C", root, "-json", "./internal/cleanfix"}, &out, &errb); code != ExitClean {
		t.Fatalf("json clean exit %d, want %d", code, ExitClean)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("clean JSON output = %q, want []", out.String())
	}

	out.Reset()
	if code := Main([]string{"-list"}, &out, &errb); code != ExitClean {
		t.Fatalf("-list exit %d", code)
	}
	for _, a := range Analyzers() {
		if !strings.Contains(out.String(), a.Name) {
			t.Fatalf("-list output missing %s:\n%s", a.Name, out.String())
		}
	}

	if code := Main([]string{"-checks", "nosuchcheck", "."}, &out, &errb); code != ExitError {
		t.Fatalf("unknown check exit %d, want %d", code, ExitError)
	}
}

// TestChecksSubset runs a single analyzer and confirms other checks'
// findings (and their suppression directives) stay out of the way.
func TestChecksSubset(t *testing.T) {
	root := fixtureDir(t)
	var out, errb bytes.Buffer
	if code := Main([]string{"-C", root, "-checks", "globalrand", "-json", "./internal/grfix"}, &out, &errb); code != ExitFindings {
		t.Fatalf("exit %d (stderr: %s)", code, errb.String())
	}
	var diags []Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("want the 2 globalrand findings, got %+v", diags)
	}
	for _, d := range diags {
		if d.Check != "globalrand" {
			t.Fatalf("subset run leaked check %s", d.Check)
		}
	}
}

// mutation is one deleted-guard (or injected-hazard) scenario: edit
// the real source in memory, then require a diagnostic of the named
// check at the exact line of the now-unguarded statement.
type mutation struct {
	file    string // repo-relative source file
	pkg     string // pattern to load
	check   string // analyzer that must catch the mutation
	old     string // guard text to replace
	new     string // replacement without the guard
	flagged string // statement that must be flagged, located by text
}

// TestMutationDeletedGuardsAreCaught is the acceptance criterion for
// the suite: deleting any one determinism or ownership guard in the
// real engine — a sorted-keys loop, a defensive copy, a draw outside
// a goroutine — must fail gflint with a diagnostic of the right check
// pointing at the exact line.
func TestMutationDeletedGuardsAreCaught(t *testing.T) {
	root := repoRoot(t)
	muts := []mutation{
		{
			file:  "internal/fairshare/fairshare.go",
			pkg:   "./internal/fairshare",
			check: "maprange",
			old:   "for _, g := range gpu.Generations() {\n\t\tsum += float64(capacities[g])\n\t}",
			new:   "for _, c := range capacities {\n\t\tsum += float64(c)\n\t}",
			// int-valued RHS converted to float64 accumulates into a
			// float: order-sensitive again.
			flagged: "sum += float64(c)",
		},
		{
			file:    "internal/fairshare/fairshare.go",
			pkg:     "./internal/fairshare",
			check:   "maprange",
			old:     "\t// Deterministic iteration order regardless of map layout.\n\tsort.Slice(active, func(i, j int) bool { return active[i].id < active[j].id })\n",
			new:     "\t_ = sort.Slice // keep the import\n",
			flagged: "active = append(active, user{id, t, d})",
		},
		{
			file:    "internal/stride/classed.go",
			pkg:     "./internal/stride",
			check:   "maprange",
			old:     "\tsort.Sort(sort.Reverse(sort.IntSlice(gangs)))\n",
			new:     "\t_ = sort.Sort // keep the import\n",
			flagged: "gangs = append(gangs, g)",
		},
		{
			// Collect-then-sum one step removed from the map range:
			// out of maprange's sight, floatsum's whole point.
			file:    "internal/fairshare/fairshare.go",
			pkg:     "./internal/fairshare",
			check:   "floatsum",
			old:     "for _, g := range gpu.Generations() {\n\t\tsum += float64(capacities[g])\n\t}",
			new:     "var coll []float64\n\tfor _, cv := range capacities {\n\t\tcoll = append(coll, float64(cv))\n\t}\n\tfor _, cv := range coll {\n\t\tsum += cv\n\t}",
			flagged: "sum += cv",
		},
		{
			// Deleting trade.Run's defensive clone returns the caller's
			// annotated allocation — the noretain param contract.
			file:    "internal/trade/trade.go",
			pkg:     "./internal/trade",
			check:   "retain",
			old:     "out := alloc.Clone()",
			new:     "out := alloc",
			flagged: "return out, log, nil",
		},
		{
			// Retaining the fairshare solver's cached map beyond the
			// round — the noretain result contract on Shares.
			file:    "internal/core/sim.go",
			pkg:     "./internal/core",
			check:   "retain",
			old:     "shares = s.fairSolver.Shares()",
			new:     "shares = s.fairSolver.Shares()\n\t\tgo func() { _ = len(shares) }()",
			flagged: "go func() { _ = len(shares) }()",
		},
		{
			// A crash draw moved onto the scheduler's clock.
			file:    "internal/faults/faults.go",
			pkg:     "./internal/faults",
			check:   "rngorder",
			old:     "return in.rng.Float64() < in.crashProb",
			new:     "go func() { _ = in.rng.Float64() }()\n\treturn in.rng.Float64() < in.crashProb",
			flagged: "go func() { _ = in.rng.Float64() }()",
		},
		{
			// Copying the registry copies its mutex.
			file:    "internal/obs/registry.go",
			pkg:     "./internal/obs",
			check:   "lockcopy",
			old:     "r.mu.Lock()\n\tdefer r.mu.Unlock()",
			new:     "r.mu.Lock()\n\tdefer r.mu.Unlock()\n\tcp := *r\n\t_ = cp",
			flagged: "cp := *r",
		},
		{
			// Parking on a channel with the registry lock held.
			file:    "internal/obs/registry.go",
			pkg:     "./internal/obs",
			check:   "lockhold",
			old:     "r.mu.Lock()\n\tdefer r.mu.Unlock()",
			new:     "r.mu.Lock()\n\tdefer r.mu.Unlock()\n\twaitCh := make(chan struct{})\n\t<-waitCh",
			flagged: "<-waitCh",
		},
		{
			// Deleting the placement span copy returns a view of the
			// index's reused scratch buffer.
			file:    "internal/placement/index.go",
			pkg:     "./internal/placement",
			check:   "scratchalias",
			old:     "idx.spanOut = out[:0]\n\tsorted := make([]gpu.DeviceID, len(out))\n\tcopy(sorted, out)\n\tsort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })\n\treturn sorted",
			new:     "idx.spanOut = out[:0]\n\tsort.Slice(out, func(i, j int) bool { return out[i] < out[j] })\n\treturn out",
			flagged: "\treturn out",
		},
	}
	for _, m := range muts {
		t.Run(m.check+"/"+m.file, func(t *testing.T) {
			full := filepath.Join(root, filepath.FromSlash(m.file))
			src, err := os.ReadFile(full)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Contains(src, []byte(m.old)) {
				t.Fatalf("guard text not found in %s; keep this test in sync with the source:\n%s", m.file, m.old)
			}
			mutated := bytes.Replace(src, []byte(m.old), []byte(m.new), 1)
			wantLine := lineOf(t, mutated, m.flagged)

			diags := runOver(t, LoadConfig{
				Dir:     root,
				Overlay: map[string][]byte{full: mutated},
			}, m.pkg)

			for _, d := range diags {
				if d.Check == m.check && strings.HasSuffix(filepath.ToSlash(d.File), m.file) && d.Line == wantLine {
					return // caught at the exact line
				}
			}
			t.Fatalf("deleting the guard produced no %s diagnostic at %s:%d; got %v", m.check, m.file, wantLine, diags)
		})
	}
}

// lineOf returns the 1-based line of the first occurrence of substr.
func lineOf(t *testing.T, src []byte, substr string) int {
	t.Helper()
	idx := bytes.Index(src, []byte(substr))
	if idx < 0 {
		t.Fatalf("statement %q not found in mutated source", substr)
	}
	return 1 + bytes.Count(src[:idx], []byte("\n"))
}

// TestRealModuleClean is the CI contract run in-process: the
// repository itself — test files included, exactly as CI invokes
// gflint — must stay free of findings.
func TestRealModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	if diags := runOver(t, LoadConfig{Dir: repoRoot(t), Tests: true}, "./..."); len(diags) != 0 {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString(d.String())
			b.WriteString("\n")
		}
		t.Fatalf("gflint findings in the repository:\n%s", b.String())
	}
}
