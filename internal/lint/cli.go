package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// CLI exit codes.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one diagnostic
	ExitError    = 2 // usage, load, or typecheck failure
)

// Main is the gflint entry point, factored out of package main so
// tests can drive the full CLI in-process. It returns the exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gflint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
		tests   = fs.Bool("tests", false, "also analyze in-package _test.go files")
		checks  = fs.String("checks", "", "comma-separated analyzer names to run (default: all)")
		list    = fs.Bool("list", false, "list available analyzers and exit")
		dir     = fs.String("C", "", "module root to analyze (default: current directory)")
	)
	fs.Usage = func() {
		printf(stderr, "usage: gflint [flags] [patterns]\n\n"+
			"Patterns are package directories relative to the module root\n"+
			"(default \"./...\"). Exit status: 0 clean, 1 findings, 2 errors.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}
	if *list {
		for _, a := range Analyzers() {
			printf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return ExitClean
	}

	selected := Analyzers()
	if *checks != "" {
		selected = nil
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			a := AnalyzerByName(name)
			if a == nil {
				printf(stderr, "gflint: unknown check %q (try -list)\n", name)
				return ExitError
			}
			selected = append(selected, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := NewLoader(LoadConfig{Dir: *dir, Tests: *tests})
	if err != nil {
		printf(stderr, "gflint: %v\n", err)
		return ExitError
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		printf(stderr, "gflint: %v\n", err)
		return ExitError
	}

	diags := Run(pkgs, selected)
	relativize(diags)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			printf(stderr, "gflint: %v\n", err)
			return ExitError
		}
	} else {
		for _, d := range diags {
			printline(stdout, d.String())
		}
		if len(diags) > 0 {
			printf(stdout, "gflint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return ExitFindings
	}
	return ExitClean
}

// printf/printline write CLI output, explicitly discarding write
// errors: a broken stdout/stderr pipe has no in-band remedy.
func printf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

func printline(w io.Writer, args ...any) {
	_, _ = fmt.Fprintln(w, args...)
}

// relativize rewrites absolute diagnostic paths relative to the
// working directory when possible, for stable readable output.
func relativize(diags []Diagnostic) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	shorten := func(file string) string {
		if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
		return file
	}
	for i := range diags {
		diags[i].File = shorten(diags[i].File)
		for j := range diags[i].Related {
			diags[i].Related[j].File = shorten(diags[i].Related[j].File)
		}
	}
}
