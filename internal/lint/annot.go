package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// noRetainPrefix introduces a retention-contract annotation:
//
//	//gflint:noretain [note | param names]
//
// Placement decides what it annotates:
//
//   - On a struct field (doc comment or trailing line comment): the
//     field's value is not retainable by readers — the owner reuses
//     the backing storage. Any trailing text is a free-form note.
//   - In a function's doc comment with no arguments: the function's
//     RESULT carries the contract — callers must not retain it (the
//     function may return its own internal buffer).
//   - In a function's doc comment with arguments: each argument names
//     a PARAMETER the function must not retain (the caller keeps
//     ownership of the backing storage).
//
// Annotations are collected for every package the loader parses —
// roots and intra-module dependencies alike — into one loader-wide
// registry, so an analyzer checking package B sees the annotations
// declared on package A's types (e.g. core.RoundState.Jobs read from
// internal/baselines). The retain and scratchalias analyzers consume
// the registry.
const noRetainPrefix = "//gflint:noretain"

// annotations is the loader-wide fact registry (lint's first analysis
// pass, built during loading, before any analyzer runs).
type annotations struct {
	// noRetain holds annotated struct fields and function parameters.
	noRetain map[types.Object]*Annotation
	// noRetainFn holds functions whose result is annotated.
	noRetainFn map[*types.Func]*Annotation
	// problems are malformed annotations, reported under check
	// "directive" for the package that declares them.
	problems map[string][]Diagnostic // by package import path
}

// Annotation is one resolved //gflint:noretain declaration.
type Annotation struct {
	// Desc names the annotated thing for diagnostics, e.g.
	// "core.RoundState.Jobs" or "parameter alloc of trade.Run".
	Desc string
	// Pos is where the annotation's comment sits.
	Pos token.Pos
}

func newAnnotations() *annotations {
	return &annotations{
		noRetain:   make(map[types.Object]*Annotation),
		noRetainFn: make(map[*types.Func]*Annotation),
		problems:   make(map[string][]Diagnostic),
	}
}

// NoRetain reports the annotation covering an object (struct field or
// function parameter), nil when unannotated.
func (p *Package) NoRetain(obj types.Object) *Annotation {
	if obj == nil || p.annot == nil {
		return nil
	}
	return p.annot.noRetain[obj]
}

// NoRetainResult reports the annotation on a function's result, nil
// when unannotated.
func (p *Package) NoRetainResult(fn *types.Func) *Annotation {
	if fn == nil || p.annot == nil {
		return nil
	}
	return p.annot.noRetainFn[fn]
}

// noRetainComment extracts the argument list of a noretain comment, or
// ok=false for other comments.
func noRetainComment(c *ast.Comment) (args []string, ok bool) {
	text := strings.TrimSpace(c.Text)
	if !strings.HasPrefix(text, noRetainPrefix) {
		return nil, false
	}
	rest := text[len(noRetainPrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false // e.g. //gflint:noretainx
	}
	return strings.Fields(rest), true
}

// collectAnnotations resolves every //gflint:noretain comment in the
// package's files against its typechecked objects and registers the
// results in the loader-wide registry. Malformed annotations become
// "directive" problems attached to the package.
func (a *annotations) collectAnnotations(pkg *Package) {
	fset := pkg.Fset
	consumed := make(map[*ast.Comment]bool)
	problem := func(pos token.Pos, msg string) {
		position := fset.Position(pos)
		a.problems[pkg.Path] = append(a.problems[pkg.Path], Diagnostic{
			Check: "directive", File: position.Filename,
			Line: position.Line, Col: position.Column, Message: msg,
		})
	}

	register := func(obj types.Object, desc string, pos token.Pos) {
		if _, dup := a.noRetain[obj]; !dup {
			a.noRetain[obj] = &Annotation{Desc: desc, Pos: pos}
		}
	}

	fieldComment := func(f *ast.Field) *ast.Comment {
		for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				if _, ok := noRetainComment(c); ok {
					return c
				}
			}
		}
		return nil
	}

	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.StructType:
				for _, f := range v.Fields.List {
					c := fieldComment(f)
					if c == nil {
						continue
					}
					consumed[c] = true
					names := f.Names
					if len(names) == 0 {
						problem(c.Pos(), "gflint:noretain on an embedded field; name the field explicitly")
						continue
					}
					for _, name := range names {
						obj := pkg.Info.Defs[name]
						if obj == nil {
							continue
						}
						register(obj, qualifiedField(pkg, obj), c.Pos())
					}
				}
			case *ast.FuncDecl:
				if v.Doc == nil {
					return true
				}
				for _, c := range v.Doc.List {
					args, ok := noRetainComment(c)
					if !ok {
						continue
					}
					consumed[c] = true
					fn, _ := pkg.Info.Defs[v.Name].(*types.Func)
					if fn == nil {
						continue
					}
					if len(args) == 0 {
						if fn.Type().(*types.Signature).Results().Len() == 0 {
							problem(c.Pos(), "gflint:noretain on "+fn.Name()+", which returns nothing; name the parameters instead")
							continue
						}
						if _, dup := a.noRetainFn[fn]; !dup {
							a.noRetainFn[fn] = &Annotation{
								Desc: pkg.Types.Name() + "." + fn.Name() + " result",
								Pos:  c.Pos(),
							}
						}
						continue
					}
					params := fn.Type().(*types.Signature).Params()
					byName := make(map[string]*types.Var, params.Len())
					for i := 0; i < params.Len(); i++ {
						byName[params.At(i).Name()] = params.At(i)
					}
					for _, arg := range args {
						pv, ok := byName[arg]
						if !ok {
							problem(c.Pos(), "gflint:noretain names "+arg+", not a parameter of "+fn.Name())
							continue
						}
						register(pv, "parameter "+arg+" of "+pkg.Types.Name()+"."+fn.Name(), c.Pos())
					}
				}
			}
			return true
		})
	}

	// A noretain comment that attached to neither a struct field nor a
	// function doc silently does nothing; make that loud.
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if _, ok := noRetainComment(c); ok && !consumed[c] {
					problem(c.Pos(), "gflint:noretain attaches to nothing; put it on a struct field or in a function's doc comment")
				}
			}
		}
	}
}

// qualifiedField renders a field object as Pkg.Type.Field when the
// owning struct is nameable, falling back to Pkg.Field.
func qualifiedField(pkg *Package, obj types.Object) string {
	name := pkg.Types.Name() + "." + obj.Name()
	// Walk named types for one declaring this field (best effort —
	// purely cosmetic for diagnostics).
	scope := pkg.Types.Scope()
	for _, tn := range scope.Names() {
		named, ok := scope.Lookup(tn).Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == obj {
				return pkg.Types.Name() + "." + tn + "." + obj.Name()
			}
		}
	}
	return name
}
