package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRandAnalyzer flags top-level math/rand functions (rand.Intn,
// rand.Float64, rand.Shuffle, ...) that draw from the package's shared
// global RNG. The global source is process-wide state: any other
// consumer (a test, a library, a second simulation in the same
// process) shifts the stream and breaks seed reproducibility. All
// randomness must flow through an explicitly seeded *rand.Rand.
//
// Constructors (rand.New, rand.NewSource, rand.NewZipf) and methods on
// an explicit *rand.Rand are fine.
var GlobalRandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc:  "top-level math/rand calls hit the shared global RNG; use an explicitly seeded *rand.Rand",
	Run:  runGlobalRand,
}

func runGlobalRand(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // method on an explicit *rand.Rand / Source
			}
			switch fn.Name() {
			case "New", "NewSource", "NewZipf":
				return true
			}
			pass.Report(sel.Pos(),
				"rand.%s draws from the shared global RNG; use an explicitly seeded *rand.Rand",
				fn.Name())
			return true
		})
	}
}
