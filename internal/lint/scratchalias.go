package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ScratchAliasAnalyzer flags the append-to-shared-backing hazard: a
// function that reuses a scratch slice — reslicing a struct field or
// package-level variable to zero length (buf[:0]) so later appends
// overwrite the old contents — while also letting a view of that
// backing array escape the call. The next reuse silently rewrites
// whatever the escaped slice points at; this is exactly the corruption
// mode the incremental engine's per-round buffers would hit with a
// retaining caller.
//
// Detection is two-step: every v[:0] whose root is a struct field
// (reached through a receiver or parameter) or a package-level
// variable marks that storage as scratch for the whole function; then
// the shared taint engine tracks every read of that storage and
// reports escapes. Storing back into a scratch field (s.buf = buf, the
// owner's refresh) is the expected idiom and exempt, as is returning
// from a function whose doc carries //gflint:noretain (the contract is
// passed to callers, where the retain analyzer enforces it). The
// v[:0:0] three-index form caps capacity at zero, forcing append to
// reallocate — that is a copy, not reuse, and never marks scratch.
var ScratchAliasAnalyzer = &Analyzer{
	Name: "scratchalias",
	Doc:  "scratch-slice reuse ([:0] on a field or global) in a function that also lets an alias of the backing array escape",
	Run:  runScratchAlias,
}

func runScratchAlias(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkScratchFunc(pass, fd)
		}
	}
}

// scratchSites finds the function's scratch reslices: zero-length
// reslices of storage that outlives the call. Keyed by the storage
// object (field or package-level var); the annotation points at the
// first reslice site.
func scratchSites(pass *Pass, fd *ast.FuncDecl) map[types.Object]*Annotation {
	sites := make(map[types.Object]*Annotation)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		se, ok := n.(*ast.SliceExpr)
		if !ok || !isZeroLenReslice(pass, se) || isZeroCapReslice(pass, se) {
			return true
		}
		obj := scratchStorageObj(pass, fd, se.X)
		if obj == nil {
			return true
		}
		if _, dup := sites[obj]; !dup {
			sites[obj] = &Annotation{
				Desc: "scratch slice " + destName(se.X),
				Pos:  se.Pos(),
			}
		}
		return true
	})
	return sites
}

// isZeroLenReslice reports v[:0] / v[0:0]: the truncation that makes
// later appends overwrite the previous contents in place.
func isZeroLenReslice(pass *Pass, se *ast.SliceExpr) bool {
	if se.High == nil {
		return false
	}
	tv, ok := pass.Pkg.Info.Types[se.High]
	if !ok || tv.Value == nil {
		return false
	}
	if high, exact := intConstVal(tv); !exact || high != 0 {
		return false
	}
	if se.Low == nil {
		return true
	}
	ltv, ok := pass.Pkg.Info.Types[se.Low]
	if !ok || ltv.Value == nil {
		return false
	}
	low, exact := intConstVal(ltv)
	return exact && low == 0
}

// scratchStorageObj resolves the resliced expression to storage that
// outlives the call: the field object for x.f rooted at a receiver or
// parameter (or anything unresolvable — conservatively long-lived), or
// a package-level variable. Locals return nil — reslicing a local is
// the caller-owned-buffer pattern (sortedJobIDsInt-style) and the
// local's escape is its own function's concern.
func scratchStorageObj(pass *Pass, fd *ast.FuncDecl, x ast.Expr) types.Object {
	switch v := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		field, ok := pass.ObjectOf(v.Sel).(*types.Var)
		if !ok || !field.IsField() {
			return nil
		}
		if root := rootObjThroughSlices(pass, v.X); root != nil && bodyLocalOf(fd, root) {
			return nil
		}
		return field
	case *ast.Ident:
		if obj := pass.ObjectOf(v); isPackageLevel(obj) {
			return obj
		}
	}
	return nil
}

// bodyLocalOf reports a variable declared inside the function body.
func bodyLocalOf(fd *ast.FuncDecl, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || isPackageLevel(v) {
		return false
	}
	return declaredWithin(v, fd.Body)
}

func checkScratchFunc(pass *Pass, fd *ast.FuncDecl) {
	sites := scratchSites(pass, fd)
	if len(sites) == 0 {
		return
	}
	fnObj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)

	t := &taintEngine{
		pass:    pass,
		decl:    fd,
		tainted: make(map[types.Object]*Annotation),
		source: func(e ast.Expr) *Annotation {
			switch v := e.(type) {
			case *ast.SelectorExpr:
				return sites[pass.ObjectOf(v.Sel)]
			case *ast.Ident:
				return sites[pass.ObjectOf(v)]
			}
			return nil
		},
		exemptStore: func(target ast.Expr) bool {
			// The owner's refresh: storing the (possibly regrown)
			// buffer back into its scratch home.
			switch v := ast.Unparen(target).(type) {
			case *ast.SelectorExpr:
				return sites[pass.ObjectOf(v.Sel)] != nil
			case *ast.Ident:
				return sites[pass.ObjectOf(v)] != nil
			}
			return false
		},
		allowReturn: fnObj != nil && pass.Pkg.NoRetainResult(fnObj) != nil,
	}
	t.sink = func(pos token.Pos, action string, a *Annotation) {
		pass.ReportRelated(pos,
			[]Related{pass.Note(a.Pos, "backing array reused here ([:0])")},
			"%s escapes — %s — while this function reuses its backing array; copy before it escapes",
			a.Desc, action)
	}
	t.run()
}
