package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and typechecked package, ready for analysis.
type Package struct {
	Path  string // import path, e.g. "repro/internal/fairshare"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // files analyzed (in-package test files when Tests)
	Types *types.Package
	Info  *types.Info

	directives map[string]map[int][]Directive // file → line → directives
	annot      *annotations                   // loader-wide annotation registry
}

// LoadConfig controls package loading.
type LoadConfig struct {
	// Dir is the module root (must contain go.mod). Empty means the
	// current working directory.
	Dir string
	// Tests adds in-package _test.go files to analysis. External test
	// packages (package foo_test) are never loaded.
	Tests bool
	// Overlay substitutes file contents by absolute path, used by
	// tests to analyze modified sources without touching disk.
	Overlay map[string][]byte
}

// Loader parses and typechecks packages of one module, resolving
// intra-module imports itself and delegating the rest (stdlib) to a
// go/types source importer. It is not safe for concurrent use.
type Loader struct {
	cfg     LoadConfig
	fset    *token.FileSet
	modPath string
	modDir  string
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle guard
	annot   *annotations        // //gflint:noretain facts across all loads
}

// NewLoader builds a loader for the module rooted at cfg.Dir.
func NewLoader(cfg LoadConfig) (*Loader, error) {
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.Getwd(); err != nil {
			return nil, err
		}
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer is not an ImporterFrom")
	}
	return &Loader{
		cfg:     cfg,
		fset:    fset,
		modPath: modPath,
		modDir:  abs,
		std:     std,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		annot:   newAnnotations(),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Load resolves the patterns ("./...", "./internal/core", ...) to
// package directories and returns them parsed and typechecked.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// expand turns patterns into a sorted list of package directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(l.modDir, root)
		}
		clean := filepath.Clean(root)
		if clean != l.modDir && !strings.HasPrefix(clean, l.modDir+string(filepath.Separator)) {
			return nil, fmt.Errorf("lint: pattern %q leaves module root %s", pat, l.modDir)
		}
		if !recursive {
			if hasGoFiles(clean) {
				add(clean)
			} else {
				return nil, fmt.Errorf("lint: no Go files in %s", clean)
			}
			continue
		}
		err := filepath.WalkDir(clean, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != clean && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// importPathFor maps a module-internal directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir loads the package in dir for analysis (with test files when
// configured). Returns nil for directories with no buildable files.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, true)
}

// importPkg satisfies intra-module imports during typechecking;
// dependencies never include test files.
func (l *Loader) importPkg(path string) (*Package, error) {
	return l.load(path, false)
}

func (l *Loader) load(path string, asRoot bool) (*Package, error) {
	key := path
	if asRoot && l.cfg.Tests {
		key = path + " [test]"
	}
	if pkg, ok := l.pkgs[key]; ok {
		return pkg, nil
	}
	if l.loading[key] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[key] = true
	defer delete(l.loading, key)

	dir := l.modDir
	if path != l.modPath {
		rel, ok := strings.CutPrefix(path, l.modPath+"/")
		if !ok {
			return nil, fmt.Errorf("lint: %s is outside module %s", path, l.modPath)
		}
		dir = filepath.Join(l.modDir, filepath.FromSlash(rel))
	}

	files, err := l.parseDir(dir, asRoot && l.cfg.Tests)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: moduleImporter{l},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: typecheck %s: %v", path, typeErrs[0])
	}

	pkg := &Package{
		Path:       path,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		directives: collectDirectives(l.fset, files),
		annot:      l.annot,
	}
	// Annotations are collected for dependencies too, so analyzers on
	// root packages see contracts declared by the packages they import.
	// A package loaded both as dep and as root-with-tests contributes
	// twice (two object sets); duplicate problems collapse in Run.
	l.annot.collectAnnotations(pkg)
	l.pkgs[key] = pkg
	return pkg, nil
}

// parseDir parses the directory's buildable files: the package's own
// files plus, when withTests, its in-package _test.go files. External
// test packages (package foo_test) are skipped, as are files excluded
// from the current build context by //go:build constraints or _GOOS
// filename suffixes (otherwise e.g. a signal_unix.go/signal_other.go
// pair typechecks as a duplicate declaration).
func (l *Loader) parseDir(dir string, withTests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !withTests {
			continue
		}
		if match, err := build.Default.MatchFile(dir, name); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", filepath.Join(dir, name), err)
		} else if !match {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		full := filepath.Join(dir, name)
		var src any
		if data, ok := l.cfg.Overlay[full]; ok {
			src = data
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if strings.HasSuffix(name, "_test.go") && strings.HasSuffix(f.Name.Name, "_test") {
			continue // external test package
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName && !strings.HasSuffix(f.Name.Name, "_test") {
			return nil, fmt.Errorf("lint: %s: package %s conflicts with %s", full, f.Name.Name, pkgName)
		}
		files = append(files, f)
	}
	return files, nil
}

// moduleImporter resolves intra-module imports through the Loader and
// everything else (stdlib) through the source importer.
type moduleImporter struct{ l *Loader }

func (m moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == m.l.modPath || strings.HasPrefix(path, m.l.modPath+"/") {
		pkg, err := m.l.importPkg(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files for import %s", path)
		}
		return pkg.Types, nil
	}
	return m.l.std.ImportFrom(path, dir, mode)
}
