package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RngOrderAnalyzer flags draws from a seeded RNG stream in contexts
// whose execution order is not the program order: goroutine bodies
// (scheduling order), sort comparators (the algorithm's comparison
// sequence, which varies with input permutation and implementation),
// and map-range bodies (randomized iteration order). A seeded
// *rand.Rand replays byte-identically only if the Nth draw always
// belongs to the same consumer; any of these contexts reassigns draws
// between runs and silently breaks digest identity even though every
// RNG in the repo is explicitly seeded.
//
// Scope: method calls on math/rand types (a seeded stream; the global
// top-level funcs are globalrand's department) and the module-internal
// shared-RNG consumers (profiler.Observe/ProbeAll). The analysis is
// lexical and intra-procedural: a named function launched with go is
// not followed into.
var RngOrderAnalyzer = &Analyzer{
	Name: "rngorder",
	Doc:  "seeded RNG draws inside goroutines, sort comparators, or map-range bodies (execution order reassigns the stream's samples)",
	Run:  runRngOrder,
}

// comparatorCallees are sort/slices entry points whose function-literal
// argument is invoked in algorithm-determined order.
var comparatorCallees = map[string]bool{
	"Slice": true, "SliceStable": true, "SliceIsSorted": true, "Search": true,
	"SortFunc": true, "SortStableFunc": true, "IsSortedFunc": true,
	"BinarySearchFunc": true, "MinFunc": true, "MaxFunc": true, "CompactFunc": true,
}

func runRngOrder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		rngWalk(pass, f, "", token.NoPos)
	}
}

// rngWalk traverses n reporting RNG draws when ctx names an
// order-scrambling context; entering a nested context narrows ctx to
// the innermost one (a draw is reported once, against the context
// closest to it).
func rngWalk(pass *Pass, n ast.Node, ctx string, ctxPos token.Pos) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.GoStmt:
			// Arguments are evaluated in program order by the spawner;
			// only the body runs on the scheduler's clock.
			for _, a := range v.Call.Args {
				rngWalk(pass, a, ctx, ctxPos)
			}
			if fl, ok := v.Call.Fun.(*ast.FuncLit); ok {
				rngWalk(pass, fl.Body, "a goroutine", v.Pos())
			}
			return false
		case *ast.CallExpr:
			if fl, ok := comparatorLit(pass, v); ok {
				for _, a := range v.Args {
					if a != fl {
						rngWalk(pass, a, ctx, ctxPos)
					}
				}
				rngWalk(pass, fl.Body, "a sort comparator", fl.Pos())
				return false
			}
			if ctx != "" {
				reportRngDraw(pass, v, ctx, ctxPos)
			}
			return true
		case *ast.RangeStmt:
			rngWalk(pass, v.X, ctx, ctxPos)
			if _, isMap := typeUnder(pass.TypeOf(v.X)).(*types.Map); isMap {
				rngWalk(pass, v.Body, "a map-range body", v.Pos())
			} else {
				rngWalk(pass, v.Body, ctx, ctxPos)
			}
			return false
		}
		return true
	})
}

// comparatorLit resolves a call to a sort/slices comparator-taking
// entry point and returns its function-literal argument.
func comparatorLit(pass *Pass, call *ast.CallExpr) (*ast.FuncLit, bool) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return nil, false
	}
	if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
		return nil, false
	}
	if !comparatorCallees[fn.Name()] {
		return nil, false
	}
	for _, a := range call.Args {
		if fl, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			return fl, true
		}
	}
	return nil, false
}

// reportRngDraw flags the call if it consumes a seeded RNG stream.
func reportRngDraw(pass *Pass, call *ast.CallExpr, ctx string, ctxPos token.Pos) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	sig, _ := fn.Type().(*types.Signature)
	switch {
	case (path == "math/rand" || path == "math/rand/v2") && sig != nil && sig.Recv() != nil:
		pass.ReportRelated(call.Pos(),
			[]Related{pass.Note(ctxPos, "%s begins here", ctx)},
			"%s draw inside %s; execution order decides which call gets which sample — draw outside, or give the context its own RNG",
			fn.Name(), ctx)
	case rngConsumers[path] != nil && rngConsumers[path][fn.Name()]:
		pass.ReportRelated(call.Pos(),
			[]Related{pass.Note(ctxPos, "%s begins here", ctx)},
			"%s.%s consumes the shared %s RNG inside %s; execution order decides which call gets which sample",
			fn.Pkg().Name(), fn.Name(), fn.Pkg().Name(), ctx)
	}
}
