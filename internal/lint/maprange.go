package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRangeAnalyzer flags ranges over maps whose body does
// order-sensitive work. Go randomizes map iteration order per range,
// so any of the following inside the body makes the result (or the
// emitted event stream) differ between runs with the same seed:
//
//   - float accumulation across iterations (rounding depends on the
//     summation order);
//   - append to a slice that outlives the loop and is never sorted
//     afterwards in the same function (element order is the iteration
//     order);
//   - calls into internal/trace or internal/obs that mention a range
//     variable (event order is the iteration order);
//   - any math/rand draw (which iteration consumes which sample from
//     the shared stream depends on the order).
//
// Writes keyed by the loop's own range variable (m2[k] = ..., or
// acc[k] += v) are order-insensitive and not flagged, as are
// accumulations into variables declared inside the loop body and
// appends whose elements do not depend on a range variable.
var MapRangeAnalyzer = &Analyzer{
	Name: "maprange",
	Doc:  "order-sensitive work (float sums, appends, trace/obs emission, RNG draws) inside map iteration",
	Run:  runMapRange,
}

// Packages whose calls count as trace/obs emission under maprange.
var emissionPkgs = map[string]bool{
	"repro/internal/trace": true,
	"repro/internal/obs":   true,
}

// Module-internal methods that consume a shared RNG stream, treated
// like math/rand draws: calling them in map order changes which
// iteration gets which sample.
var rngConsumers = map[string]map[string]bool{
	"repro/internal/profiler": {"Observe": true, "ProbeAll": true},
}

func runMapRange(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			checkFuncBody(pass, body)
			return true
		})
	}
}

// checkFuncBody examines every map range directly inside one function
// body (nested function literals are visited by the outer Inspect).
func checkFuncBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false // its body is checked as its own function
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := typeUnder(pass.TypeOf(rs.X)).(*types.Map); !isMap {
			return true
		}
		vars := rangeVarObjs(pass, rs)
		if len(vars) == 0 {
			// Without range variables every iteration is identical, so
			// order cannot be observed (unless the body draws RNG,
			// which the walk below still catches against an empty set).
			vars = map[types.Object]bool{}
		}
		checkMapRangeBody(pass, body, rs, vars)
		return true
	})
}

func rangeVarObjs(pass *Pass, rs *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// checkMapRangeBody walks one map-range body and reports
// order-sensitive operations, judged relative to this loop's range
// variables.
func checkMapRangeBody(pass *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, vars map[types.Object]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, funcBody, rs, vars, st)
		case *ast.CallExpr:
			checkCall(pass, rs, vars, st)
		}
		return true
	})
}

func checkAssign(pass *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, vars map[types.Object]bool, st *ast.AssignStmt) {
	// Appends: x = append(x, ...) in any assignment form.
	for i, rhs := range st.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !pass.IsBuiltin(call, "append") || len(call.Args) < 2 {
			continue
		}
		argsDepend := false
		for _, a := range call.Args[1:] {
			if loopDependent(pass, a, vars, rs) {
				argsDepend = true
				break
			}
		}
		if !argsDepend {
			continue // loop-invariant elements: content independent of order
		}
		var dest ast.Expr
		if len(st.Lhs) == len(st.Rhs) {
			dest = st.Lhs[i]
		} else if len(st.Lhs) == 1 {
			dest = st.Lhs[0]
		}
		if idx, ok := ast.Unparen(dest).(*ast.IndexExpr); ok && refersTo(pass, idx.Index, vars) {
			continue // m2[k] = append(m2[k], ...): per-key, order-insensitive
		}
		destObj := rootObj(pass, dest)
		if destObj != nil && declaredWithin(destObj, rs.Body) {
			continue // per-iteration slice, discarded or keyed elsewhere
		}
		if destObj != nil && sortedAfter(pass, funcBody, rs, destObj) {
			continue // collect-then-sort idiom
		}
		pass.Report(call.Pos(),
			"append of range-dependent elements inside map iteration; order follows the map — collect and sort, or sort %s after the loop",
			destName(dest))
	}

	// Float accumulation: x op= expr, or x = x op expr.
	switch {
	case len(st.Lhs) == 1 && (st.Tok == token.ADD_ASSIGN || st.Tok == token.SUB_ASSIGN ||
		st.Tok == token.MUL_ASSIGN || st.Tok == token.QUO_ASSIGN):
		checkFloatAccum(pass, rs, vars, st.Lhs[0], st.Rhs[0])
	case len(st.Lhs) == 1 && st.Tok == token.ASSIGN:
		if bin, ok := ast.Unparen(st.Rhs[0]).(*ast.BinaryExpr); ok {
			switch bin.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				lobj := rootObj(pass, st.Lhs[0])
				if lobj == nil {
					break
				}
				if sameRoot(pass, bin.X, lobj) {
					checkFloatAccum(pass, rs, vars, st.Lhs[0], bin.Y)
				} else if sameRoot(pass, bin.Y, lobj) {
					checkFloatAccum(pass, rs, vars, st.Lhs[0], bin.X)
				}
			}
		}
	}
}

// checkFloatAccum reports lhs accumulating a non-constant float across
// map iterations, unless the write is keyed by a range variable or the
// accumulator lives inside the loop body.
func checkFloatAccum(pass *Pass, rs *ast.RangeStmt, vars map[types.Object]bool, lhs, rhs ast.Expr) {
	t := typeUnder(pass.TypeOf(lhs))
	basic, ok := t.(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return
	}
	if pass.IsConst(rhs) {
		return // adding a constant N times is order-insensitive
	}
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && refersTo(pass, idx.Index, vars) {
		return // keyed by this loop's range variable: per-key, order-insensitive
	}
	if obj := rootObj(pass, lhs); obj != nil && declaredWithin(obj, rs.Body) {
		return // accumulator reset every iteration
	}
	pass.Report(lhs.Pos(),
		"float accumulation into %s inside map iteration; summation order follows the map — iterate sorted keys",
		destName(lhs))
}

func checkCall(pass *Pass, rs *ast.RangeStmt, vars map[types.Object]bool, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if emissionPkgs[path] && loopDependent(pass, call, vars, rs) {
		pass.Report(call.Pos(),
			"%s.%s inside map iteration; emission order follows the map — iterate sorted keys",
			fn.Pkg().Name(), fn.Name())
		return
	}
	if path == "math/rand" && consumesRandomness(fn) {
		pass.Report(call.Pos(),
			"%s draw inside map iteration; which iteration gets which sample follows the map — iterate sorted keys",
			fn.Name())
		return
	}
	if methods, ok := rngConsumers[path]; ok && methods[fn.Name()] {
		pass.Report(call.Pos(),
			"%s.%s consumes the shared %s RNG inside map iteration; sample order follows the map — iterate sorted keys",
			fn.Pkg().Name(), fn.Name(), fn.Pkg().Name())
	}
}

// consumesRandomness reports whether the math/rand function or method
// advances an RNG stream (constructors do not).
func consumesRandomness(fn *types.Func) bool {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return true // every *rand.Rand / rand.Source method consumes or reseeds
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf":
		return false
	}
	return true
}

// sortedAfter reports whether obj is passed to a sort/slices call
// after the range statement within the same function body — the
// collect-then-sort idiom that restores determinism.
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, a := range call.Args {
			if mentionsObj(pass, a, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// --- small shared helpers ---

func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// refersTo reports whether any identifier in the expression resolves
// to one of the given objects.
func refersTo(pass *Pass, e ast.Node, objs map[types.Object]bool) bool {
	if len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[pass.ObjectOf(id)] {
			found = true
			return false
		}
		return !found
	})
	return found
}

func mentionsObj(pass *Pass, e ast.Node, obj types.Object) bool {
	return refersTo(pass, e, map[types.Object]bool{obj: true})
}

// loopDependent reports whether the expression mentions a range
// variable of the loop or any variable declared inside the loop body
// (derived per-iteration state, e.g. j := m[id] followed by a use of
// j). Keyed-write exemptions deliberately do NOT use this: an index
// derived from a range variable (m[j.User]) can collide across
// iterations, so only a direct range-variable key is order-safe.
func loopDependent(pass *Pass, e ast.Node, vars map[types.Object]bool, rs *ast.RangeStmt) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !found
		}
		obj := pass.ObjectOf(id)
		if obj == nil {
			return true
		}
		if vars[obj] {
			found = true
			return false
		}
		if v, isVar := obj.(*types.Var); isVar && declaredWithin(v, rs.Body) {
			found = true
			return false
		}
		return true
	})
	return found
}

// rootObj resolves the variable at the root of an lvalue expression:
// x, x[i], x.f, *x all root at x. Returns nil for anything else.
func rootObj(pass *Pass, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.ObjectOf(v)
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func sameRoot(pass *Pass, e ast.Expr, obj types.Object) bool {
	r := rootObj(pass, e)
	return r != nil && r == obj
}

// declaredWithin reports whether the object's declaration lies inside
// the node's source range.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}

func destName(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return destName(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return destName(v.X) + "[...]"
	case *ast.StarExpr:
		return "*" + destName(v.X)
	case nil:
		return "the slice"
	default:
		return "the target"
	}
}
