package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// taintEngine is the intra-procedural escape analysis shared by the
// retain and scratchalias analyzers. It is flow-insensitive: a local
// that ever aliases a protected value is treated as aliasing it for
// the whole function (reassignment does not clear taint — cheap, and
// safe in the conservative direction).
//
// Taint enters through the analyzer's source classifier (annotated
// fields/params, noretain-result calls, scratch reslices) and
// propagates through assignments, reslices, address-of, conversions,
// append-to-tainted, composite literals, and closure captures. It does
// NOT propagate through element reads (x[i]) — the contracts protect
// the backing array, not the elements — nor through ordinary calls
// (callees are trusted; their own bodies are analyzed separately).
//
// Sinks are the ways a value outlives the call: stores to
// package-level variables or to fields/elements rooted outside the
// function's locals, channel sends, returns, and goroutine handoffs.
// Two escapes are deliberately not sinks: a plain call argument (the
// callee's contract is its own analysis) and a deferred call (it runs
// before the frame dies).
type taintEngine struct {
	pass *Pass
	decl *ast.FuncDecl
	// source classifies an expression as directly tainted, nil when
	// not. Called on every sub-expression the engine evaluates.
	source func(ast.Expr) *Annotation
	// exemptStore reports whether a store of a tainted value into
	// target is the owner's refresh pattern (e.g. s.buf = buf) and
	// therefore not an escape.
	exemptStore func(target ast.Expr) bool
	// allowReturn permits returning tainted values — set when the
	// enclosing function's own //gflint:noretain result annotation
	// passes the contract on to its callers.
	allowReturn bool
	// sink receives each escape: the position, a past-tense action
	// ("stored in ...", "returned to the caller"), and the origin.
	sink func(pos token.Pos, action string, a *Annotation)

	tainted map[types.Object]*Annotation
}

func (t *taintEngine) run() {
	if t.decl == nil || t.decl.Body == nil {
		return
	}
	if t.tainted == nil {
		t.tainted = make(map[types.Object]*Annotation)
	}
	t.propagate()
	t.findSinks()
}

// taintOf resolves the origin an expression's value aliases, nil when
// it is clean.
func (t *taintEngine) taintOf(e ast.Expr) *Annotation {
	if e == nil {
		return nil
	}
	e = ast.Unparen(e)
	if a := t.source(e); a != nil {
		return a
	}
	switch v := e.(type) {
	case *ast.Ident:
		if obj := t.pass.ObjectOf(v); obj != nil {
			return t.tainted[obj]
		}
	case *ast.SelectorExpr:
		// Annotated fields are the source classifier's job; beyond
		// that, a field of a tainted composite shares its storage.
		return t.taintOf(v.X)
	case *ast.SliceExpr:
		if isZeroCapReslice(t.pass, v) {
			return nil // x[:0:0]: append must reallocate — the copy idiom
		}
		return t.taintOf(v.X)
	case *ast.StarExpr:
		return t.taintOf(v.X)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return t.taintOf(v.X)
		}
	case *ast.IndexExpr:
		return nil // element access: the contract covers the backing array
	case *ast.CallExpr:
		if t.pass.IsBuiltin(v, "append") && len(v.Args) > 0 {
			// The result shares the destination's backing array. A
			// tainted source spread into a clean destination copies
			// elements and stays clean.
			return t.taintOf(v.Args[0])
		}
		if tv, ok := t.pass.Pkg.Info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			return t.taintOf(v.Args[0]) // conversion keeps the backing array
		}
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if a := t.taintOf(el); a != nil {
				return a
			}
		}
	case *ast.FuncLit:
		return t.captures(v)
	}
	return nil
}

// captures resolves the origin a function literal closes over, nil
// when its body touches no tainted value.
func (t *taintEngine) captures(fl *ast.FuncLit) *Annotation {
	var found *Annotation
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			if a := t.source(e); a != nil {
				found = a
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := t.pass.ObjectOf(id); obj != nil {
				if a := t.tainted[obj]; a != nil {
					found = a
					return false
				}
			}
		}
		return true
	})
	return found
}

// propagate runs the alias fixpoint over assignments and var
// declarations. The tainted set only grows, so this terminates.
func (t *taintEngine) propagate() {
	for {
		changed := false
		ast.Inspect(t.decl.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i := range st.Lhs {
						if t.assign(st.Lhs[i], st.Rhs[i]) {
							changed = true
						}
					}
				} else if len(st.Rhs) == 1 {
					// a, b := f() — a tainted single source (e.g. a
					// noretain-result call) taints every destination.
					if t.taintOf(st.Rhs[0]) != nil {
						for _, l := range st.Lhs {
							if t.assign(l, st.Rhs[0]) {
								changed = true
							}
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range st.Names {
					if i < len(st.Values) && t.assign(name, st.Values[i]) {
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// assign records taint flowing into an assignable destination:
// directly for a local identifier, and by tainting the root local for
// keyed or field stores into locally-rooted composites (m[k] = v,
// x.f = v). Stores rooted outside the function are sinks, handled by
// findSinks, not here.
func (t *taintEngine) assign(lhs, rhs ast.Expr) bool {
	a := t.taintOf(rhs)
	if a == nil {
		return false
	}
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return false
		}
		obj := t.pass.ObjectOf(id)
		if obj == nil || isPackageLevel(obj) {
			return false
		}
		if t.tainted[obj] == nil {
			t.tainted[obj] = a
			return true
		}
		return false
	}
	if root := rootObjThroughSlices(t.pass, lhs); root != nil && t.isBodyLocal(root) {
		if t.tainted[root] == nil {
			t.tainted[root] = a
			return true
		}
	}
	return false
}

// findSinks walks the body reporting escapes of tainted values.
// Return statements inside nested function literals are skipped (the
// literal itself escaping is what matters, and is tracked as a value);
// every other sink kind counts regardless of nesting.
func (t *taintEngine) findSinks() {
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if fl, ok := m.(*ast.FuncLit); ok && m != n {
				walk(fl.Body, true)
				return false
			}
			switch st := m.(type) {
			case *ast.AssignStmt:
				t.assignSinks(st)
			case *ast.SendStmt:
				if a := t.taintOf(st.Value); a != nil {
					t.sink(st.Value.Pos(), "sent on a channel", a)
				}
			case *ast.ReturnStmt:
				if inLit || t.allowReturn {
					break
				}
				for _, r := range st.Results {
					if a := t.taintOf(r); a != nil {
						t.sink(r.Pos(), "returned to the caller", a)
					}
				}
				if len(st.Results) == 0 {
					t.namedResultSinks(st)
				}
			case *ast.GoStmt:
				if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
					if a := t.captures(fl); a != nil {
						t.sink(st.Pos(), "captured by a spawned goroutine", a)
					}
				}
				for _, arg := range st.Call.Args {
					if a := t.taintOf(arg); a != nil {
						t.sink(arg.Pos(), "handed to a spawned goroutine", a)
					}
				}
			}
			return true
		})
	}
	walk(t.decl.Body, false)
}

// assignSinks flags tainted values stored where they outlive the
// call: package-level variables, or fields/elements whose root is a
// parameter, receiver, global, or unresolvable expression. Stores
// rooted at body locals were folded into the fixpoint instead.
func (t *taintEngine) assignSinks(st *ast.AssignStmt) {
	report := func(lhs, rhs ast.Expr) {
		a := t.taintOf(rhs)
		if a == nil {
			return
		}
		lhs = ast.Unparen(lhs)
		if t.exemptStore != nil && t.exemptStore(lhs) {
			return
		}
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := t.pass.ObjectOf(id); obj != nil && isPackageLevel(obj) {
				t.sink(lhs.Pos(), "stored in package-level variable "+id.Name, a)
			}
			return
		}
		root := rootObjThroughSlices(t.pass, lhs)
		if root != nil && t.isBodyLocal(root) {
			return // tainted the root instead (fixpoint)
		}
		t.sink(lhs.Pos(), "stored in "+destName(lhs)+", which outlives the call", a)
	}
	if len(st.Lhs) == len(st.Rhs) {
		for i := range st.Lhs {
			report(st.Lhs[i], st.Rhs[i])
		}
	} else if len(st.Rhs) == 1 {
		for _, l := range st.Lhs {
			report(l, st.Rhs[0])
		}
	}
}

// namedResultSinks handles a naked return in a function with named
// results: any tainted named result escapes.
func (t *taintEngine) namedResultSinks(ret *ast.ReturnStmt) {
	if t.decl.Type.Results == nil {
		return
	}
	for _, f := range t.decl.Type.Results.List {
		for _, name := range f.Names {
			obj := t.pass.ObjectOf(name)
			if obj == nil {
				continue
			}
			if a := t.tainted[obj]; a != nil {
				t.sink(ret.Pos(), "returned to the caller (named result "+name.Name+")", a)
			}
		}
	}
}

// isBodyLocal reports whether the object is a variable declared inside
// the function body — not a parameter, receiver, named result, or
// package-level variable. Stores into composites rooted at body locals
// stay inside the frame unless the local itself escapes.
func (t *taintEngine) isBodyLocal(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || isPackageLevel(v) {
		return false
	}
	return declaredWithin(v, t.decl.Body)
}

func isPackageLevel(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// rootObjThroughSlices is rootObj extended to look through slice
// expressions (x[i:j].f roots at x).
func rootObjThroughSlices(pass *Pass, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = v.X
		default:
			return rootObj(pass, e)
		}
	}
}

// isZeroCapReslice reports the x[:0:0] idiom: a zero-length,
// zero-capacity view whose every append reallocates — the standard
// copy-on-append guarantee, treated as fresh storage.
func isZeroCapReslice(pass *Pass, se *ast.SliceExpr) bool {
	if !se.Slice3 || se.Max == nil {
		return false
	}
	tv, ok := pass.Pkg.Info.Types[se.Max]
	if !ok || tv.Value == nil {
		return false
	}
	max, exact := intConstVal(tv)
	return exact && max == 0
}

// intConstVal extracts an exact int64 from a constant expression
// value; ok is false for non-integer or out-of-range constants.
func intConstVal(tv types.TypeAndValue) (int64, bool) {
	return constant.Int64Val(constant.ToInt(tv.Value))
}
