package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDropAnalyzer flags expression statements inside internal/ that
// call a function returning an error and let the value fall on the
// floor — the bug class behind the silent admit() job loss fixed in
// the distributed runtime. An explicit `_ =` discard, a defer, or a go
// statement is visible intent and is not flagged; a bare call is not.
//
// Never-fail writers are exempt: fmt.Fprint* into a *strings.Builder
// or *bytes.Buffer, and Write* methods on those types, return errors
// only to satisfy io interfaces.
var ErrDropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "silently discarded error returns in internal/ (bare call statements; use _ = or handle the error)",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	if !strings.HasPrefix(pass.Pkg.Path, "repro/internal/") {
		return
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(st.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call, errType) || neverFails(pass, call) {
				return true
			}
			name := "call"
			if fn := pass.CalleeFunc(call); fn != nil {
				name = fn.Name()
			}
			pass.Report(call.Pos(),
				"%s returns an error that is silently dropped; handle it or discard explicitly with _ =", name)
			return true
		})
	}
}

// returnsError reports whether the call's (last) result is an error.
func returnsError(pass *Pass, call *ast.CallExpr, errType *types.Interface) bool {
	t := pass.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		return types.Implements(t.At(t.Len()-1).Type(), errType)
	default:
		return types.Implements(t, errType)
	}
}

// neverFails exempts error returns that exist only to satisfy io
// interfaces: writes into in-memory buffers.
func neverFails(pass *Pass, call *ast.CallExpr) bool {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		return isMemWriter(pass.TypeOf(call.Args[0]))
	}
	if sig != nil && sig.Recv() != nil {
		return isMemWriter(sig.Recv().Type())
	}
	return false
}

// isMemWriter reports *strings.Builder or *bytes.Buffer.
func isMemWriter(t types.Type) bool {
	ptr, ok := typeUnder(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}
