package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDropAnalyzer flags expression statements inside internal/ and
// cmd/ that call a function returning an error and let the value fall
// on the floor — the bug class behind the silent admit() job loss
// fixed in the distributed runtime. An explicit `_ =` discard, a
// defer, or a go statement is visible intent and is not flagged; a
// bare call is not.
//
// Never-fail writers are exempt: fmt.Fprint* into a *strings.Builder
// or *bytes.Buffer, and Write* methods on those types, return errors
// only to satisfy io interfaces. In cmd/ the terminal printers
// (fmt.Print*, and fmt.Fprint* to os.Stdout/os.Stderr) are exempt
// too: a broken terminal pipe has no in-band remedy for a CLI, and
// demanding `_ =` on every status line would bury the real findings.
var ErrDropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "silently discarded error returns in internal/ and cmd/ (bare call statements; use _ = or handle the error)",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	inCmd := strings.HasPrefix(pass.Pkg.Path, "repro/cmd/")
	if !inCmd && !strings.HasPrefix(pass.Pkg.Path, "repro/internal/") {
		return
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(st.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call, errType) || neverFails(pass, call) {
				return true
			}
			if inCmd && isTerminalPrint(pass, call) {
				return true
			}
			name := "call"
			if fn := pass.CalleeFunc(call); fn != nil {
				name = fn.Name()
			}
			pass.Report(call.Pos(),
				"%s returns an error that is silently dropped; handle it or discard explicitly with _ =", name)
			return true
		})
	}
}

// returnsError reports whether the call's (last) result is an error.
func returnsError(pass *Pass, call *ast.CallExpr, errType *types.Interface) bool {
	t := pass.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		return types.Implements(t.At(t.Len()-1).Type(), errType)
	default:
		return types.Implements(t, errType)
	}
}

// neverFails exempts error returns that exist only to satisfy io
// interfaces: writes into in-memory buffers.
func neverFails(pass *Pass, call *ast.CallExpr) bool {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		return isMemWriter(pass.TypeOf(call.Args[0]))
	}
	if sig != nil && sig.Recv() != nil {
		return isMemWriter(sig.Recv().Type())
	}
	return false
}

// isTerminalPrint reports fmt.Print*/Println/Printf, and fmt.Fprint*
// writing to os.Stdout or os.Stderr — CLI status output whose write
// errors a command-line tool cannot meaningfully handle.
func isTerminalPrint(pass *Pass, call *ast.CallExpr) bool {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	if strings.HasPrefix(fn.Name(), "Print") {
		return true
	}
	if !strings.HasPrefix(fn.Name(), "Fprint") || len(call.Args) == 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	return obj.Name() == "Stdout" || obj.Name() == "Stderr"
}

// isMemWriter reports *strings.Builder or *bytes.Buffer.
func isMemWriter(t types.Type) bool {
	ptr, ok := typeUnder(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}
