package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallClockAnalyzer flags wall-clock time usage outside the packages
// that legitimately deal in real time. Simulation logic must run on
// internal/simclock virtual time: a time.Now or time.Sleep in the
// scheduler couples results to the host machine and breaks the
// byte-identical reproducibility the experiments depend on.
//
// Allowlisted packages: internal/obs (phase profiling measures real
// scheduler latency), internal/comm (a real network transport), and
// everything under cmd/ (operator-facing tooling). Test files are
// skipped by design: tests legitimately guard against hangs with
// real-time timeouts (time.After in a select around a blocking call),
// and none of that runs inside the simulation.
var WallClockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "wall-clock time (time.Now/Since/Sleep/...) outside obs, comm, and cmd; sim logic uses internal/simclock",
	Run:  runWallClock,
}

// wallClockAllowed lists import-path prefixes where real time is fine.
var wallClockAllowed = []string{
	"repro/internal/obs",
	"repro/internal/comm",
	"repro/cmd/",
}

// wallClockFuncs are the time package entry points that read or wait
// on the host clock. Pure constructors and conversions (time.Duration,
// time.Unix) are not listed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func runWallClock(pass *Pass) {
	for _, prefix := range wallClockAllowed {
		if pass.Pkg.Path == strings.TrimSuffix(prefix, "/") || strings.HasPrefix(pass.Pkg.Path, prefix) {
			return
		}
	}
	for _, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue // real-time test timeouts are not simulation logic
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if wallClockFuncs[fn.Name()] {
				pass.Report(sel.Pos(),
					"time.%s reads the wall clock; simulation logic must use internal/simclock virtual time",
					fn.Name())
			}
			return true
		})
	}
}
