package metrics

import (
	"math"
	"testing"
)

func TestComputeSLO(t *testing.T) {
	runs := []JobRun{
		{User: "alice", JCT: 2000, Finish: 2500, Standalone: 1000},
		{User: "alice", JCT: 4000, Finish: 4200, Standalone: 1000},
		{User: "bob", JCT: 1000, Finish: 6000, Standalone: 1000},
	}
	slo := ComputeSLO(runs, 2)
	// alice: mean of 2000/2000 and 4000/2000 = 1.5; bob: 1000/2000 = 0.5.
	if got := slo.RhoByUser["alice"]; math.Abs(got-1.5) > 1e-12 {
		t.Errorf("alice rho = %v, want 1.5", got)
	}
	if got := slo.RhoByUser["bob"]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("bob rho = %v, want 0.5", got)
	}
	if slo.RhoMax != slo.RhoByUser["alice"] {
		t.Errorf("rho max = %v", slo.RhoMax)
	}
	if slo.MakespanSeconds != 6000 {
		t.Errorf("makespan = %v, want 6000 (last absolute finish)", slo.MakespanSeconds)
	}
	if slo.JCT.N != 3 || slo.JCT.Max != 4000 || slo.JCT.Min != 1000 {
		t.Errorf("jct stats = %+v", slo.JCT)
	}
}

func TestComputeSLOSkipsUnboundedStandalone(t *testing.T) {
	runs := []JobRun{
		{User: "a", JCT: 100, Finish: 100, Standalone: math.Inf(1)},
		{User: "a", JCT: 300, Finish: 300, Standalone: 0},
	}
	slo := ComputeSLO(runs, 3)
	if len(slo.RhoByUser) != 0 || slo.RhoMax != 0 {
		t.Errorf("rho from unbounded standalone: %+v", slo)
	}
	// Excluded jobs still count toward JCT and makespan.
	if slo.JCT.N != 2 || slo.MakespanSeconds != 300 {
		t.Errorf("jct/makespan = %+v", slo)
	}
}

func TestComputeSLOEmptyAndClamps(t *testing.T) {
	slo := ComputeSLO(nil, 0)
	if slo.RhoMax != 0 || slo.MakespanSeconds != 0 || slo.JCT.N != 0 {
		t.Errorf("empty SLO = %+v", slo)
	}
	// numUsers < 1 clamps to 1.
	one := ComputeSLO([]JobRun{{User: "u", JCT: 10, Finish: 10, Standalone: 10}}, -5)
	if got := one.RhoByUser["u"]; got != 1 {
		t.Errorf("clamped rho = %v, want 1", got)
	}
}

func TestSummarizeP99(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.P99 != 99 {
		t.Errorf("p99 = %v, want 99", s.P99)
	}
	if one := Summarize([]float64{7}); one.P99 != 7 {
		t.Errorf("singleton p99 = %v", one.P99)
	}
}
