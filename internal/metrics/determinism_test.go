package metrics

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/job"
)

// TestShareFractionsRepeatable guards the sorted-keys fix in
// ShareFractions: the usage values span many orders of magnitude, so a
// total summed in map-iteration order would round differently between
// calls and shift every fraction.
func TestShareFractionsRepeatable(t *testing.T) {
	byUser := make(map[job.UserID]float64, 40)
	for i := 0; i < 40; i++ {
		byUser[job.UserID(fmt.Sprintf("u%03d", i))] = math.Exp2(float64(i%60-30)) * (1 + float64(i)/math.Pi)
	}
	want := ShareFractions(byUser)
	for trial := 1; trial < 150; trial++ {
		got := ShareFractions(byUser)
		for u, v := range want {
			if got[u] != v {
				t.Fatalf("trial %d differs at %s: %v vs %v", trial, u, got[u], v)
			}
		}
	}
}
