package metrics

import (
	"math"
	"sort"
)

// JobRun is one finished job's contribution to the fairness SLO: its
// observed completion time and its best-case standalone runtime (the
// exclusive-cluster time on the fastest generation it can use).
type JobRun struct {
	User       string
	JCT        float64 // observed completion time (finish − arrival), seconds
	Finish     float64 // absolute finish time on the simulated clock, seconds
	Standalone float64 // exclusive best-generation runtime, seconds
}

// SLO bundles the run-level service-level metrics the evaluation
// reports: Themis's finish-time fairness ρ, makespan, and JCT
// quantiles.
type SLO struct {
	// RhoByUser is each user's mean finish-time fairness ρ over their
	// finished jobs: JCT / (standalone × N users). Under perfect
	// 1/N sharing of a homogeneous cluster ρ ≈ 1; ρ > 1 means the
	// user finished later than their fair share warrants.
	RhoByUser map[string]float64

	// RhoMax is the worst per-user ρ — the single fairness SLO
	// number (Themis minimizes exactly this).
	RhoMax float64

	// MakespanSeconds is when the last finished job completed (0 when
	// nothing finished).
	MakespanSeconds float64

	// JCT summarizes completion times over finished jobs.
	JCT Stats
}

// ComputeSLO derives the SLO bundle from per-job outcomes. numUsers
// is the number of users contending over the run (Themis's N); values
// < 1 are treated as 1. Jobs with a non-positive or infinite
// standalone time are excluded from ρ but still count toward JCT and
// makespan.
func ComputeSLO(runs []JobRun, numUsers int) SLO {
	if numUsers < 1 {
		numUsers = 1
	}
	n := float64(numUsers)
	rhoSum := make(map[string]float64)
	rhoCnt := make(map[string]int)
	jcts := make([]float64, 0, len(runs))
	makespan := 0.0
	for _, r := range runs {
		jcts = append(jcts, r.JCT)
		if r.Finish > makespan {
			makespan = r.Finish
		}
		if r.Standalone <= 0 || math.IsInf(r.Standalone, 0) {
			continue
		}
		rhoSum[r.User] += r.JCT / (r.Standalone * n)
		rhoCnt[r.User]++
	}
	out := SLO{
		RhoByUser:       make(map[string]float64, len(rhoSum)),
		MakespanSeconds: makespan,
		JCT:             Summarize(jcts),
	}
	users := make([]string, 0, len(rhoSum))
	for u := range rhoSum {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		rho := rhoSum[u] / float64(rhoCnt[u])
		out.RhoByUser[u] = rho
		if rho > out.RhoMax {
			out.RhoMax = rho
		}
	}
	return out
}
