package metrics

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/job"
)

func vizFixture() *Timeline {
	tl := NewTimeline(3600)
	// Window 0: a and b split evenly, half the 4-GPU capacity busy.
	tl.Add(0, "a", 3600)
	tl.Add(0, "b", 3600)
	// Window 1: a alone at full capacity.
	tl.Add(3600, "a", 4*3600)
	// Window 2: idle (forced into existence by window 3).
	// Window 3: b only.
	tl.Add(3*3600+10, "b", 1800)
	return tl
}

// bar extracts the width-rune bar segment of a rendered line.
func bar(t *testing.T, line string, width int) string {
	t.Helper()
	i := strings.Index(line, ") ")
	if i < 0 {
		t.Fatalf("no bar in %q", line)
	}
	runes := []rune(line[i+2:])
	if len(runes) < width {
		t.Fatalf("bar too short in %q", line)
	}
	return string(runes[:width])
}

func TestRenderTimeline(t *testing.T) {
	var buf bytes.Buffer
	users := []job.UserID{"a", "b"}
	if err := RenderTimeline(&buf, vizFixture(), users, 40, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // legend + 4 windows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "a=a") || !strings.Contains(lines[0], "b=b") {
		t.Errorf("legend = %q", lines[0])
	}
	// Window 0: 25% a, 25% b, 50% idle → 10 a's, 10 b's, 20 dots.
	b0 := bar(t, lines[1], 40)
	if got := strings.Count(b0, "a"); got != 10 {
		t.Errorf("window 0 has %d a-cells, want 10:\n%s", got, lines[1])
	}
	if got := strings.Count(b0, "·"); got != 20 {
		t.Errorf("window 0 has %d idle cells, want 20", got)
	}
	if !strings.Contains(lines[1], "a:50%") || !strings.Contains(lines[1], "b:50%") {
		t.Errorf("window 0 shares missing: %q", lines[1])
	}
	// Window 1: all a.
	if got := strings.Count(bar(t, lines[2], 40), "a"); got != 40 {
		t.Errorf("window 1 has %d a-cells, want 40 (%q)", got, lines[2])
	}
	// Window 2: idle marker.
	if !strings.Contains(lines[3], "idle") {
		t.Errorf("window 2 not marked idle: %q", lines[3])
	}
}

func TestRenderTimelineNoCapacity(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, vizFixture(), []job.UserID{"a", "b"}, 20, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	// Without capacity, window 0 normalizes to its own total: 10 a's
	// and 10 b's on a 20-wide bar.
	if got := strings.Count(bar(t, lines[1], 20), "a"); got != 10 {
		t.Errorf("normalized window 0 has %d a-cells, want 10: %q", got, lines[1])
	}
}

func TestRenderTimelineDefaults(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, vizFixture(), []job.UserID{"a"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[  0h–  1h)") {
		t.Errorf("time labels missing:\n%s", buf.String())
	}
}
