// Package metrics computes the quantities the paper's evaluation
// reports: fairness (share fractions, Jain's index, worst-case share
// error), efficiency (utilization), and job completion time
// statistics, plus a windowed timeline for share-over-time figures.
package metrics

import (
	"math"
	"sort"

	"repro/internal/job"
	"repro/internal/simclock"
)

// Jain returns Jain's fairness index of the values:
// (Σx)² / (n·Σx²), in (0, 1], 1 = perfectly equal. Empty or all-zero
// input returns 0.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Stats summarizes a sample.
type Stats struct {
	N                                int
	Mean, Median, P95, P99, Min, Max float64
}

// Summarize computes order statistics of xs (which it does not
// modify). Empty input returns the zero Stats.
func Summarize(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	return Stats{
		N:      len(s),
		Mean:   sum / float64(len(s)),
		Median: quantile(s, 0.5),
		P95:    quantile(s, 0.95),
		P99:    quantile(s, 0.99),
		Min:    s[0],
		Max:    s[len(s)-1],
	}
}

// quantile interpolates the q-quantile of sorted data.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ShareFractions normalizes per-user usage to fractions of the total.
// All-zero usage returns an empty map.
func ShareFractions(byUser map[job.UserID]float64) map[job.UserID]float64 {
	var total float64
	for _, u := range job.SortedUsers(byUser) {
		total += byUser[u]
	}
	out := make(map[job.UserID]float64, len(byUser))
	if total <= 0 {
		return out
	}
	for u, v := range byUser {
		out[u] = v / total
	}
	return out
}

// Window is one timeline bucket: usage per user accumulated over
// [Start, End).
type Window struct {
	Start, End simclock.Time
	ByUser     map[job.UserID]float64
}

// Timeline accumulates per-user usage into fixed-width windows for
// share-over-time figures. Add times must be non-decreasing (the
// simulation clock guarantees this).
type Timeline struct {
	width   simclock.Duration
	windows []Window
}

// NewTimeline creates a timeline with the given window width in
// seconds; non-positive widths panic.
func NewTimeline(width simclock.Duration) *Timeline {
	if width <= 0 {
		panic("metrics: non-positive timeline width")
	}
	return &Timeline{width: width}
}

// Add accumulates amount for user u at virtual time at.
func (t *Timeline) Add(at simclock.Time, u job.UserID, amount float64) {
	idx := int(float64(at) / t.width)
	for len(t.windows) <= idx {
		start := simclock.Time(float64(len(t.windows)) * t.width)
		t.windows = append(t.windows, Window{
			Start:  start,
			End:    start.Add(t.width),
			ByUser: make(map[job.UserID]float64),
		})
	}
	t.windows[idx].ByUser[u] += amount
}

// Windows returns the accumulated windows (possibly with empty
// buckets between active periods). Callers must not mutate.
func (t *Timeline) Windows() []Window { return t.windows }

// SharesOver returns each listed user's share fraction per window.
func (t *Timeline) SharesOver(users []job.UserID) [][]float64 {
	out := make([][]float64, len(t.windows))
	for i, w := range t.windows {
		fr := ShareFractions(w.ByUser)
		row := make([]float64, len(users))
		for j, u := range users {
			row[j] = fr[u]
		}
		out[i] = row
	}
	return out
}

// Utilization is busy capacity over total capacity for some interval.
type Utilization struct {
	BusyGPUSeconds     float64
	CapacityGPUSeconds float64
}

// Fraction returns busy/capacity, 0 when capacity is zero.
func (u Utilization) Fraction() float64 {
	if u.CapacityGPUSeconds <= 0 {
		return 0
	}
	return u.BusyGPUSeconds / u.CapacityGPUSeconds
}

// Slowdown returns JCT divided by the job's standalone runtime — the
// contention penalty a job experienced. Values < 1 are possible on
// faster-than-reference GPUs.
func Slowdown(jct, standalone simclock.Duration) float64 {
	if standalone <= 0 {
		return math.Inf(1)
	}
	return jct / standalone
}
